#!/usr/bin/env python3
"""gaia-lint: repo-specific invariant enforcement for the gaia tree.

The general-purpose static analyzers CI runs (clang-tidy, the
sanitizers) cannot see gaia's *domain* invariants -- the contracts the
frozen shared-cache tiers, the derived-cache epoch scheme and the
scratch-buffer discipline rest on. This linter encodes them as checks
over the real sources:

  freeze-fields            every data member of a Frozen*Tier type must
                           be const (or std::atomic): tiers are shared
                           by unsynchronized concurrent readers, so a
                           writable field is a latent race.
  freeze-methods           Frozen*Tier types must not declare non-const
                           member functions (constructors/destructors
                           exempt): a mutating entry point on a frozen
                           tier defeats the compiler-checked half of the
                           never-written-after-freeze contract.
  epoch-invalidate         every non-const member function of TypeGraph
                           must call invalidateDerived(): a mutator that
                           forgets the hook leaves stale certificates /
                           canonical ids behind, which the interner then
                           trusts (wrong analysis results, not a crash).
  scratch-local-container  functions taking a *Scratch& parameter exist
                           to reuse buffers across the hot loop; a local
                           std::vector/std::unordered_map/std::map
                           declaration inside one reintroduces exactly
                           the per-call allocation the scratch removes.
  banned-container         std::map/std::multimap anywhere in the hot
                           directories (src/typegraph/, src/gaia/):
                           node-based ordered maps are never the right
                           container on these paths, and their iteration
                           order invites accidental ordering dependence.
  banned-rand              rand()/srand() in the hot directories: the
                           analysis must be bit-reproducible; anything
                           stochastic must use a seeded local RNG.
  relocation-remap         a function that builds a FrozenInternTier or
                           FrozenPfTier from an existing tier (the
                           refreeze/compaction paths in src/support and
                           src/runtime) must route ids through the
                           RelocationTable API: raw id arithmetic across
                           tier boundaries silently breaks the moment a
                           rebuild renumbers the dense id spaces.
  worker-noexcept          the serving runtime (src/runtime/) contains
                           every per-job failure behind noexcept worker
                           entry points; a naked `throw` or a
                           process-killing call (abort/exit/_exit/_Exit/
                           quick_exit/terminate) there either terminates
                           the process at the noexcept boundary or takes
                           all in-flight jobs down with it. Failures must
                           be returned as structured AnalysisResults.
  no-detached-thread       .detach() calls and never-joined std::thread
                           data members in the serving runtime: a
                           detached thread outlives every owner that
                           could observe it (shutdown races, use-after-
                           free of captured state), and a thread member
                           nobody joins is a detach spelled differently
                           (std::terminate at destruction, or a leak via
                           suppressed destructors). Threads must be
                           joined on a drain/shutdown path; the one
                           argued exception is the AnalysisService
                           watchdog's poisoned-slot replacement, where
                           joining would block the watchdog on the very
                           thread it is declaring stuck (suppressed with
                           that justification).
  engine-shared-state      the intra-analysis parallel engine
                           (src/gaia/SccScheduler*) has exactly one
                           sanctioned communication shape: workers
                           publish through the mutex-guarded queue, the
                           parent consumes. Two shapes break it
                           silently: (a) a mutable static (namespace,
                           function or class scope) that is not
                           const/constexpr/atomic -- shared by every
                           worker with no lock; (b) a thread-entry
                           lambda that touches a non-synchronized data
                           member without taking a lock -- state the
                           single-consumer ownership argument never
                           covers. Entry lambdas must delegate to a
                           member function (`[this] { workerLoop(); }`)
                           or touch only atomics / lock-guarded state.

plus two meta-rules over the suppression file itself:

  suppression-syntax       every suppression must carry a justification
                           (`-- why`); an unexplained suppression is a
                           finding, not an escape hatch.
  unused-suppression       suppressions that no longer match anything
                           must be deleted, so the file stays an honest
                           inventory of known exceptions.

The frontend is a self-contained C++ tokenizer (comments, strings, raw
strings and preprocessor lines stripped; token/line stream with brace
scoping). The file list comes from a compile_commands.json produced by
CMAKE_EXPORT_COMPILE_COMMANDS, restricted to the repo's src/ tree, plus
the headers next to those sources; fixture/test runs may instead pass
explicit file arguments. The command-line surface (compdb in,
findings + JSON report out) matches the clang tools so a libclang
backend can replace the tokenizer without touching CI.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

TIER_CLASS_RE = re.compile(r"^Frozen\w*Tier$")
EPOCH_CLASS = "TypeGraph"
EPOCH_HOOK = "invalidateDerived"
SCRATCH_PARAM_RE = re.compile(r"^\w*Scratch$")
LOCAL_CONTAINER_BAN = ("vector", "unordered_map", "map")
HOT_CONTAINER_BAN = ("map", "multimap")
DEFAULT_HOT_PATHS = ("src/typegraph", "src/gaia")
# Directories where tier-from-tier rebuilds live; the relocation-remap
# rule runs only there (a Builder constructed from nothing needs no
# relocation table).
DEFAULT_RELOC_PATHS = ("src/support", "src/runtime")
RELOC_BUILDER_CLASSES = ("FrozenInternTier", "FrozenPfTier")
# Identifiers that mark "this build reads an existing tier": the shared
# tier member (Shared) or a previous-tier parameter (Prev).
RELOC_TIER_REFS = ("Shared", "Prev")
# Directories whose code runs under the worker pool's noexcept
# containment boundary; the worker-noexcept rule runs only there.
DEFAULT_WORKER_PATHS = ("src/runtime",)
WORKER_BANNED_CALLS = ("abort", "exit", "_exit", "_Exit", "quick_exit",
                       "terminate")
# `void exit() {}` is a declaration, not a call; an id-followed-by-paren
# preceded by one of these is a declarator shape and is exempt.
WORKER_DECL_PRECEDERS = ("void", "int", "auto", "bool", "char", "unsigned",
                         "signed", "long", "short", "float", "double")
# Path *prefixes* (not directories: they name a file stem) holding the
# intra-analysis parallel engine; the engine-shared-state rule runs only
# there. Headers declare the members, the TU spawns the threads, so the
# rule is checked across all matching files together.
DEFAULT_ENGINE_PATHS = ("src/gaia/SccScheduler",)
# A data member whose declaration names one of these is its own
# synchronization (or the synchronization primitive itself) and is a
# legitimate thing for a thread-entry lambda to touch.
ENGINE_SYNC_MEMBER_TOKENS = ("atomic", "mutex", "condition_variable",
                             "shared_mutex", "once_flag", "thread")
# A lambda body containing one of these is taking a lock; what it
# touches under that lock is the mutex's business, not the linter's.
ENGINE_LOCK_TOKENS = ("lock_guard", "unique_lock", "scoped_lock",
                      "shared_lock")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    symbol: str
    message: str

    def key(self):
        return (self.rule, os.path.basename(self.file), self.symbol)


@dataclass
class Suppression:
    rule: str
    file_pat: str
    symbol: str
    justification: str
    line: int
    used: bool = False

    def matches(self, f: Finding) -> bool:
        return (
            self.rule == f.rule
            and f.file.endswith(self.file_pat)
            and self.symbol == f.symbol
        )


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'punct' | 'str' | 'char'
    text: str
    line: int


_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")


def tokenize(src: str):
    """C++ token stream with comments, literals' contents and preprocessor
    directives removed. String/char literals survive as single opaque
    tokens so declaration shapes stay parseable."""
    toks = []
    i, n, line = 0, len(src), 1
    at_line_start = True
    while i < n:
        c = src[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if at_line_start and c == "#":
            # Preprocessor directive: skip to end of line, honoring
            # backslash continuations.
            while i < n:
                if src[i] == "\\" and i + 1 < n and src[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if src[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            while i < n and src[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and src[i + 1] == "*":
            i += 2
            while i + 1 < n and not (src[i] == "*" and src[i + 1] == "/"):
                if src[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            continue
        if c == "R" and src[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]*)\(', src[i:])
            if m:
                end = src.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                line += src.count("\n", i, end)
                toks.append(Tok("str", '""', line))
                i = end
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and src[j] != quote:
                if src[j] == "\\":
                    j += 1
                elif src[j] == "\n":
                    line += 1
                j += 1
            toks.append(Tok("str" if quote == '"' else "char", quote * 2, line))
            i = j + 1
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and src[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", src[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (src[j] in _ID_CONT or src[j] in ".'+-"):
                if src[j] in "+-" and src[j - 1] not in "eEpP":
                    break
                j += 1
            toks.append(Tok("num", src[i:j], line))
            i = j
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks


def skip_template_args(toks, i):
    """toks[i] == '<': index just past the matching '>'. Returns i + 1 on
    a non-template '<' (comparison) -- callers only use this where a
    template argument list is the grammatical reading."""
    depth = 0
    j = i
    while j < len(toks):
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t in ";{}":
            return i + 1  # not a template argument list after all
        j += 1
    return i + 1


def match_paren(toks, i):
    """toks[i] == '(': index of the matching ')' (len(toks) if unbalanced)."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def match_brace(toks, i):
    """toks[i] == '{': index of the matching '}' (len(toks) if unbalanced)."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "{":
            depth += 1
        elif toks[j].text == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


# ---------------------------------------------------------------------------
# Class-body model
# ---------------------------------------------------------------------------

@dataclass
class Member:
    """One member declaration: the token slice from the start of the
    declaration up to (not including) its terminator, plus the body
    slice when the member is a function with an in-class body."""
    toks: list
    body: tuple | None  # (start, end) token indices into the file stream
    line: int


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    members: list = field(default_factory=list)
    nested: list = field(default_factory=list)


def parse_class_bodies(toks, file):
    """All class/struct definitions (including nested ones) with their
    direct member declarations split out."""
    classes = []

    def scan(lo, hi, out):
        i = lo
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.text == "namespace":
                # Step *inside* the namespace: class definitions there
                # must be found (the whole tree lives in namespace gaia).
                while i < hi and toks[i].text not in "{;":
                    i += 1
                i += 1
                continue
            if t.kind == "id" and t.text == "enum":
                # `enum class X : base { ... };` must not be misread as a
                # class definition.
                while i < hi and toks[i].text not in "{;":
                    i += 1
                if i < hi and toks[i].text == "{":
                    i = match_brace(toks, i)
                i += 1
                continue
            if t.kind == "id" and t.text in ("class", "struct"):
                info = try_class(i, hi, out)
                if info is not None:
                    i = info
                    continue
            if t.text == "{":
                i = match_brace(toks, i) + 1
                continue
            i += 1

    def try_class(i, hi, out):
        """Parse a class-head at i; returns index past the body, or None
        if this `class`/`struct` is not a definition (fwd decl, elaborated
        type specifier)."""
        j = i + 1
        # Optional attributes / API macros before the name.
        while j < hi and toks[j].text == "[":
            while j < hi and toks[j].text != "]":
                j += 1
            j += 1
        if j >= hi or toks[j].kind != "id":
            return None
        name = toks[j].text
        j += 1
        if j < hi and toks[j].kind == "id" and toks[j].text == "final":
            j += 1
        if j < hi and toks[j].text == ":":  # base clause
            while j < hi and toks[j].text != "{":
                if toks[j].text == "<":
                    j = skip_template_args(toks, j)
                    continue
                if toks[j].text == ";":
                    return None
                j += 1
        if j >= hi or toks[j].text != "{":
            return None
        body_end = match_brace(toks, j)
        info = ClassInfo(name=name, file=file, line=toks[i].line)
        parse_members(j + 1, body_end, info)
        out.append(info)
        return body_end + 1

    def parse_members(lo, hi, info):
        i = lo
        decl_start = lo
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.text in ("class", "struct", "enum", "union"):
                # Possibly a nested definition.
                k = i
                if t.text == "enum" and i + 1 < hi and toks[i + 1].text == "class":
                    k = i + 1
                nxt = try_class(k if t.text != "enum" else i, hi, info.nested) \
                    if t.text in ("class", "struct") else None
                if nxt is not None:
                    i = nxt
                    decl_start = i
                    continue
                if t.text in ("enum", "union"):
                    # Skip enum/union body wholesale.
                    j = i
                    while j < hi and toks[j].text not in "{;":
                        j += 1
                    if j < hi and toks[j].text == "{":
                        j = match_brace(toks, j)
                        while j < hi and toks[j].text != ";":
                            j += 1
                    i = j + 1
                    decl_start = i
                    continue
            if t.text == ":" and i > decl_start and toks[i - 1].kind == "id" \
                    and toks[i - 1].text in ("public", "private", "protected"):
                decl_start = i + 1
                i += 1
                continue
            if t.text == "<":
                i = skip_template_args(toks, i)
                continue
            if t.text == "(":
                i = match_paren(toks, i) + 1
                continue
            if t.text == "{":
                body_end = match_brace(toks, i)
                info.members.append(
                    Member(toks[decl_start:i], (i + 1, body_end),
                           toks[decl_start].line if decl_start < i else t.line))
                i = body_end + 1
                # Function bodies need no ';'.
                if i < hi and toks[i].text == ";":
                    i += 1
                decl_start = i
                continue
            if t.text == ";":
                if i > decl_start:
                    info.members.append(
                        Member(toks[decl_start:i], None, toks[decl_start].line))
                i += 1
                decl_start = i
                continue
            i += 1

    scan(0, len(toks), classes)
    # Flatten nested classes into the result (they are also checked).
    flat = []

    def walk(cs):
        for c in cs:
            flat.append(c)
            walk(c.nested)

    walk(classes)
    return flat


def member_texts(m: Member):
    return [t.text for t in m.toks]


def is_function_member(m: Member):
    """True if the declaration slice contains a parameter list."""
    return "(" in member_texts(m)


def is_static(m: Member):
    return "static" in member_texts(m)


def is_using_or_friend(m: Member):
    txts = member_texts(m)
    return txts and txts[0] in ("using", "typedef", "friend")


def function_name(m: Member):
    """Name token immediately before the first top-level '(' -- good
    enough for the declaration shapes in this tree."""
    depth = 0
    for i, t in enumerate(m.toks):
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth = max(0, depth - 1)
        elif t.text == "(" and depth == 0:
            j = i - 1
            if j >= 0 and m.toks[j].kind == "id":
                if j >= 1 and m.toks[j - 1].text == "~":
                    return "~" + m.toks[j].text
                return m.toks[j].text
            if j >= 0 and m.toks[j].text == "]":  # operator[]
                return "operator[]"
            # operator foo
            k = j
            while k >= 0 and m.toks[k].kind != "id":
                k -= 1
            if k >= 0 and m.toks[k].text == "operator":
                return "operator" + "".join(t.text for t in m.toks[k + 1 : j + 1])
            return m.toks[j].text if j >= 0 else "?"
    return "?"


def is_const_member_fn(m: Member):
    """True if a cv-qualifier follows the parameter list."""
    depth = 0
    seen_params = False
    for t in m.toks:
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                seen_params = True
                continue
        elif seen_params and depth == 0:
            if t.text == "const":
                return True
            if t.text in ("{", ";", "=", "->"):
                return False
    return False


def field_is_immutable(m: Member):
    txts = member_texts(m)
    return "const" in txts or "constexpr" in txts or "atomic" in txts


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def check_tier_classes(classes, findings):
    for c in classes:
        if not TIER_CLASS_RE.match(c.name):
            continue
        for m in c.members:
            if is_using_or_friend(m) or not m.toks:
                continue
            if is_function_member(m):
                name = function_name(m)
                if name == c.name or name.startswith("~"):
                    continue  # constructors/destructors
                if is_static(m):
                    continue
                txts = member_texts(m)
                if "=" in txts and "delete" in txts:
                    continue
                if not is_const_member_fn(m):
                    findings.append(Finding(
                        "freeze-methods", c.file, m.line, name,
                        f"{c.name}::{name} is a non-const member function on a "
                        "frozen tier type; tiers are shared by unsynchronized "
                        "concurrent readers and must expose no mutating entry "
                        "point"))
            else:
                # Data member: last identifier before any '=' / '{' init.
                txts = member_texts(m)
                name = None
                for t in reversed(m.toks):
                    if t.text in ("=",):
                        continue
                    if t.kind == "id":
                        name = t.text
                        break
                if name is None:
                    continue
                if not field_is_immutable(m):
                    findings.append(Finding(
                        "freeze-fields", c.file, m.line, name,
                        f"{c.name}::{name} is a mutable field of a frozen tier "
                        "type; every tier field must be const or std::atomic "
                        "so the never-written-after-freeze contract is "
                        "compiler-checked"))


def check_epoch_class(classes, toks, findings):
    """In-class bodies of TypeGraph's non-const member functions, plus
    out-of-class `TypeGraph::name` definitions, must call the
    derived-cache invalidation hook."""
    for c in classes:
        if c.name != EPOCH_CLASS:
            continue
        for m in c.members:
            if not is_function_member(m) or is_using_or_friend(m):
                continue
            if is_static(m) or is_const_member_fn(m):
                continue
            name = function_name(m)
            if name == c.name or name.startswith("~") or name.startswith("operator"):
                continue
            if m.body is None:
                continue  # checked at the out-of-class definition
            lo, hi = m.body
            if not any(t.text == EPOCH_HOOK for t in toks[c.file][lo:hi]):
                findings.append(Finding(
                    "epoch-invalidate", c.file, m.line, name,
                    f"{EPOCH_CLASS}::{name} mutates the graph without calling "
                    f"{EPOCH_HOOK}(); stale certificates/canonical ids are "
                    "silent wrong-result bugs"))


def epoch_class_static_members(classes):
    """Names declared static inside TypeGraph: out-of-class definitions
    do not repeat `static`, so the definition checker needs the roster."""
    names = set()
    for c in classes:
        if c.name != EPOCH_CLASS:
            continue
        for m in c.members:
            if is_function_member(m) and is_static(m):
                names.add(function_name(m))
    return names


def check_epoch_definitions(file, toks, findings, static_names):
    """Out-of-class `TypeGraph::name(...) ... { body }` definitions."""
    i = 0
    n = len(toks)
    while i + 4 < n:
        if (toks[i].kind == "id" and toks[i].text == EPOCH_CLASS
                and toks[i + 1].text == ":" and toks[i + 2].text == ":"
                and toks[i + 3].kind == "id"):
            name = toks[i + 3].text
            j = i + 4
            if j < n and toks[j].text == "<":
                j = skip_template_args(toks, j)
            if j < n and toks[j].text == "(":
                close = match_paren(toks, j)
                k = close + 1
                is_const = False
                while k < n and toks[k].text not in "{;":
                    if toks[k].text == "const":
                        is_const = True
                    k += 1
                if k < n and toks[k].text == "{" and not is_const \
                        and name != EPOCH_CLASS and not name.startswith("~") \
                        and name not in static_names:
                    # Qualified return types (TypeGraph::Topology
                    # TypeGraph::computeTopology() ...) put a second
                    # qualified id earlier on the line; only the id
                    # directly before '(' is the function.
                    body_end = match_brace(toks, k)
                    if not any(t.text == EPOCH_HOOK
                               for t in toks[k + 1 : body_end]):
                        findings.append(Finding(
                            "epoch-invalidate", file, toks[i].line, name,
                            f"{EPOCH_CLASS}::{name} mutates the graph without "
                            f"calling {EPOCH_HOOK}(); stale certificates/"
                            "canonical ids are silent wrong-result bugs"))
                    i = body_end + 1
                    continue
        i += 1


def iter_function_defs(toks):
    """(name, params_slice, body_range) for every function definition,
    top-level or member, found by paren+brace shape."""
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "(":
            close = match_paren(toks, i)
            j = close + 1
            # Allow cv/ref/noexcept/trailing-return between ')' and '{'.
            guard = 0
            while j < n and toks[j].text not in "{;=" and guard < 24:
                if toks[j].text == "(":  # noexcept(...)
                    j = match_paren(toks, j) + 1
                    guard += 1
                    continue
                j += 1
                guard += 1
            if j < n and toks[j].text == "{" and guard < 24:
                name_tok = toks[i - 1] if i > 0 else None
                if name_tok is not None and name_tok.kind == "id" and \
                        name_tok.text not in ("if", "for", "while", "switch",
                                              "return", "catch", "sizeof",
                                              "alignof", "decltype"):
                    body_end = match_brace(toks, j)
                    yield (name_tok.text, toks[i : close + 1],
                           (j + 1, body_end), name_tok.line)
                    # Do not skip the body: nested lambdas/locals also
                    # parse as defs, which is harmless for our rules.
        i += 1


def params_have_scratch_ref(params):
    for i, t in enumerate(params):
        if t.kind == "id" and SCRATCH_PARAM_RE.match(t.text) and t.text != "":
            j = i + 1
            while j < len(params) and params[j].text in ("const",):
                j += 1
            if j < len(params) and params[j].text == "&":
                return True
    return False


def body_container_decls(toks, lo, hi, names):
    """Occurrences of std::NAME<...> in [lo,hi) that declare an object
    (not a reference/pointer binding or nested-type access)."""
    out = []
    i = lo
    while i < hi - 3:
        if (toks[i].text == "std" and toks[i + 1].text == ":"
                and toks[i + 2].text == ":" and toks[i + 3].kind == "id"
                and toks[i + 3].text in names):
            name = toks[i + 3].text
            line = toks[i].line
            j = i + 4
            if j < hi and toks[j].text == "<":
                j = skip_template_args(toks, j)
            if j < hi and toks[j].text in ("&", "*"):
                i = j  # reference/pointer: binds existing storage
                continue
            if j + 1 < hi and toks[j].text == ":" and toks[j + 1].text == ":":
                i = j  # nested type / static member access
                continue
            out.append((name, line))
            i = j
            continue
        i += 1
    return out


def check_scratch_functions(file, toks, findings):
    for name, params, (lo, hi), line in iter_function_defs(toks):
        if not params_have_scratch_ref(params):
            continue
        for cont, cline in body_container_decls(toks, lo, hi,
                                                LOCAL_CONTAINER_BAN):
            findings.append(Finding(
                "scratch-local-container", file, cline, f"{name}:{cont}",
                f"{name} takes a *Scratch& precisely to avoid per-call "
                f"allocation, but declares a local std::{cont}; route the "
                "buffer through the scratch struct instead"))


def check_relocation_remap(file, toks, findings):
    """Functions that construct a FrozenInternTier/FrozenPfTier Builder
    while reading an existing tier must use the RelocationTable API --
    the only sanctioned way to carry ids across a tier boundary."""
    for name, _params, (lo, hi), line in iter_function_defs(toks):
        body = toks[lo:hi]
        builds_tier = any(
            body[i].text in RELOC_BUILDER_CLASSES
            and i + 3 < len(body)
            and body[i + 1].text == ":" and body[i + 2].text == ":"
            and body[i + 3].text == "Builder"
            for i in range(len(body)))
        if not builds_tier:
            continue
        reads_tier = any(t.kind == "id" and t.text in RELOC_TIER_REFS
                         for t in body)
        if not reads_tier:
            continue  # fresh build: ids are born here, nothing to remap
        if any(t.text == "RelocationTable" for t in body):
            continue
        findings.append(Finding(
            "relocation-remap", file, line, name,
            f"{name} builds a frozen tier from an existing tier without a "
            "RelocationTable; raw id arithmetic across tier boundaries "
            "breaks silently when a rebuild (promotion/compaction) "
            "renumbers the dense id spaces"))


def check_worker_noexcept(file, toks, findings):
    """The serving runtime's workers are noexcept at the job boundary
    (AnalysisPool::runOne): a `throw` that reaches them terminates the
    process, and abort()/exit() kill it outright — along with every
    in-flight job of every other worker. Failures in src/runtime/ must
    be structured AnalysisResults, never control-flow escapes."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text == "throw":
            findings.append(Finding(
                "worker-noexcept", file, t.line, "throw",
                "naked `throw` in the serving runtime: the worker pool is "
                "noexcept at the job boundary, so an escaping exception "
                "terminates the whole process; return a structured "
                "AnalysisResult failure instead"))
            continue
        if t.text in WORKER_BANNED_CALLS and i + 1 < n \
                and toks[i + 1].text == "(":
            qualified_std = (i >= 2 and toks[i - 1].text == ":"
                             and toks[i - 2].text == ":")
            prev_member = i >= 1 and toks[i - 1].text in (".", "->")
            prev_decl = (i >= 1 and toks[i - 1].kind == "id"
                         and toks[i - 1].text in WORKER_DECL_PRECEDERS)
            if (not prev_member and not prev_decl) or qualified_std:
                findings.append(Finding(
                    "worker-noexcept", file, t.line, t.text,
                    f"{t.text}() in the serving runtime kills the process "
                    "and every in-flight job with it; per-job failures "
                    "must be contained as structured AnalysisResults"))


def check_detach_calls(file, toks, findings):
    """Member calls of .detach() / ->detach() in the serving runtime."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "detach":
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        prev_dot = i >= 1 and toks[i - 1].text == "."
        prev_arrow = (i >= 2 and toks[i - 1].text == ">"
                      and toks[i - 2].text == "-")
        if prev_dot or prev_arrow:
            findings.append(Finding(
                "no-detached-thread", file, t.line, "detach",
                "detach() in the serving runtime: a detached thread "
                "outlives every owner that could observe it (shutdown "
                "races, use-after-free of captured state); join on a "
                "drain/shutdown path instead, or argue the exception in "
                "the suppressions file"))


def class_thread_members(classes):
    """(class, member-name, line) for every std::thread (or
    container-of-std::thread) data member."""
    out = []
    for c in classes:
        for m in c.members:
            if is_function_member(m) or is_using_or_friend(m) or is_static(m):
                continue
            txts = member_texts(m)
            if "thread" not in txts:
                continue
            name = None
            for t in reversed(m.toks):
                if t.kind == "id":
                    name = t.text
                    break
            if name and name != "thread":
                out.append((c, name, m.line))
    return out


def check_unjoined_thread_members(worker_files, toks_by_file, classes_by_file,
                                  findings):
    """A std::thread data member in the serving runtime must be joined
    somewhere: in the declaring file or in its same-stem .cpp/.h
    counterpart (headers declare, the TU drains). A member nobody joins
    is a detach spelled differently — std::terminate at destruction, or
    a leak behind a suppressed destructor."""
    def counterpart(f):
        base, ext = os.path.splitext(f)
        if ext in (".h", ".hpp"):
            return base + ".cpp"
        return base + ".h"

    def has_join(f):
        return f in toks_by_file and any(
            t.kind == "id" and t.text == "join" for t in toks_by_file[f])

    for f in worker_files:
        for c, name, line in class_thread_members(classes_by_file[f]):
            if has_join(f) or has_join(counterpart(f)):
                continue
            findings.append(Finding(
                "no-detached-thread", f, line, name,
                f"{c.name}::{name} is a std::thread member that is never "
                "joined in this file or its header/source counterpart; an "
                "un-joined thread member is a detach spelled differently "
                "(std::terminate at destruction) — join it on the "
                "drain/shutdown path"))


def check_banned_tokens(file, toks, findings):
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if (t.text == "std" and i + 3 < n and toks[i + 1].text == ":"
                and toks[i + 2].text == ":"
                and toks[i + 3].text in HOT_CONTAINER_BAN):
            # std::map<...> usage (not std::map<...>::iterator of some
            # already-flagged decl -- each textual use is one finding).
            j = i + 4
            if j < n and toks[j].text == "<":
                findings.append(Finding(
                    "banned-container", file, t.line, f"std::{toks[i+3].text}",
                    f"std::{toks[i+3].text} on a hot path: node-based ordered "
                    "maps are banned in src/typegraph/ and src/gaia/ "
                    "(allocation-heavy, and ordered iteration invites "
                    "accidental ordering dependence)"))
                i = j
                continue
        if t.kind == "id" and t.text in ("rand", "srand") and i + 1 < n \
                and toks[i + 1].text == "(":
            qualified_std = (i >= 2 and toks[i - 1].text == ":"
                             and toks[i - 2].text == ":")
            prev_member = i >= 1 and toks[i - 1].text in (".", "->")
            if not prev_member or qualified_std:
                findings.append(Finding(
                    "banned-rand", file, t.line, t.text,
                    f"{t.text}() on a hot path: the analysis must be "
                    "bit-reproducible; use a seeded std::mt19937 local to "
                    "the caller instead"))
        i += 1


def check_mutable_statics(file, toks, findings):
    """Non-const/constexpr/atomic `static` variables at any scope in the
    parallel engine: every worker shares them with no lock."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text != "static":
            i += 1
            continue
        # Collect the declaration head up to its initializer or
        # terminator; a parameter list before that makes it a function
        # (whose body is still scanned for local statics).
        head = []
        is_func = False
        j = i + 1
        while j < n and toks[j].text not in (";", "=", "{"):
            if toks[j].text == "<":
                j = skip_template_args(toks, j)
                continue
            if toks[j].text == "(":
                is_func = True
                j = match_paren(toks, j) + 1
                continue
            head.append(toks[j])
            j += 1
        texts = [h.text for h in head]
        synchronized = any(s in texts for s in ("const", "constexpr")
                           + ENGINE_SYNC_MEMBER_TOKENS)
        if not is_func and not synchronized:
            name = next((h.text for h in reversed(head) if h.kind == "id"),
                        None)
            if name:
                findings.append(Finding(
                    "engine-shared-state", file, t.line, name,
                    f"mutable static `{name}` in the parallel engine: "
                    "every solver worker shares it with no lock; make it "
                    "const/std::atomic, or route it through the published "
                    "queue like all other worker->parent traffic"))
        i = j + 1
    return findings


def check_engine_shared_state(engine_files, toks_by_file, classes_by_file,
                              findings):
    """Thread-entry lambdas in the parallel engine may only delegate to a
    member function or touch synchronized state. The member roster comes
    from every engine file (the header declares, the TU spawns)."""
    unsync = {}
    for f in engine_files:
        for c in classes_by_file[f]:
            for m in c.members:
                if is_function_member(m) or is_using_or_friend(m) \
                        or is_static(m) or not m.toks:
                    continue
                txts = member_texts(m)
                if any(s in txts for s in ENGINE_SYNC_MEMBER_TOKENS):
                    continue
                if "const" in txts or "constexpr" in txts:
                    continue
                name = None
                for t in reversed(m.toks):
                    if t.kind == "id":
                        name = t.text
                        break
                if name:
                    unsync[name] = c.name
    for f in engine_files:
        toks = toks_by_file[f]
        check_mutable_statics(f, toks, findings)
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            spawns = False
            if t.kind == "id" and t.text == "thread":
                spawns = True  # std::thread W(<lambda>)
            elif t.kind == "id" and t.text in ("emplace_back", "push_back") \
                    and i >= 2 and toks[i - 1].text == "." \
                    and toks[i - 2].kind == "id" \
                    and "thread" in toks[i - 2].text.lower():
                spawns = True  # Threads.emplace_back(<lambda>)
            if not spawns:
                i += 1
                continue
            # The argument list opens within a couple of tokens
            # (optionally a variable name for std::thread W(...)).
            j = i + 1
            hops = 0
            while j < n and toks[j].text != "(" and hops < 2:
                j += 1
                hops += 1
            if j >= n or toks[j].text != "(":
                i += 1
                continue
            close = match_paren(toks, j)
            k = j
            while k < close and toks[k].text != "[":
                k += 1
            while k < close and toks[k].text != "]":
                k += 1
            while k < close and toks[k].text != "{":
                if toks[k].text == "(":
                    k = match_paren(toks, k) + 1
                    continue
                k += 1
            if k >= close:
                i = close + 1
                continue
            body_end = match_brace(toks, k)
            body = toks[k + 1 : body_end]
            if any(b.kind == "id" and b.text in ENGINE_LOCK_TOKENS
                   for b in body):
                i = body_end + 1
                continue
            reported = set()
            for b in body:
                if b.kind == "id" and b.text in unsync \
                        and b.text not in reported:
                    reported.add(b.text)
                    findings.append(Finding(
                        "engine-shared-state", f, b.line, b.text,
                        f"thread-entry lambda touches "
                        f"{unsync[b.text]}::{b.text}, a non-synchronized "
                        "data member, without taking a lock; the "
                        "single-consumer ownership argument does not "
                        "cover it -- delegate to a member function, use "
                        "an atomic, or publish through the guarded queue"))
            i = body_end + 1


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def load_suppressions(path, findings):
    sups = []
    if path is None:
        return sups
    try:
        text = open(path, encoding="utf-8").read()
    except OSError as e:
        print(f"gaia-lint: cannot read suppressions file: {e}",
              file=sys.stderr)
        sys.exit(2)
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            findings.append(Finding(
                "suppression-syntax", path, lineno, line.split()[0],
                "suppression without a justification (`<rule> "
                "<file>:<symbol> -- <why>`); an unexplained suppression "
                "is a finding, not an escape hatch"))
            continue
        head, justification = line.split(" -- ", 1)
        parts = head.split(None, 1)
        if len(parts) != 2 or ":" not in parts[1]:
            findings.append(Finding(
                "suppression-syntax", path, lineno, head,
                "malformed suppression; expected `<rule> <file>:<symbol> "
                "-- <why>`"))
            continue
        rule = parts[0]
        file_pat, symbol = parts[1].rsplit(":", 1)
        if not justification.strip():
            findings.append(Finding(
                "suppression-syntax", path, lineno, symbol,
                "suppression with an empty justification"))
            continue
        sups.append(Suppression(rule, file_pat, symbol,
                                justification.strip(), lineno))
    return sups


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def files_from_compdb(compdb_path):
    try:
        entries = json.load(open(compdb_path, encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"gaia-lint: cannot read compilation database "
              f"{compdb_path}: {e}", file=sys.stderr)
        sys.exit(2)
    files = set()
    src_roots = set()
    for e in entries:
        f = e.get("file")
        if not f:
            continue
        if not os.path.isabs(f):
            f = os.path.join(e.get("directory", "."), f)
        f = os.path.normpath(f)
        parts = f.replace(os.sep, "/").split("/")
        if "src" in parts:
            files.add(f)
            src_roots.add("/".join(parts[: parts.index("src") + 1]))
    # Headers are not TUs; pull in every header under the src roots the
    # database references, so header-only invariants are linted too.
    for root in src_roots:
        for dirpath, _, names in os.walk(root):
            for name in names:
                if name.endswith(".h") or name.endswith(".hpp"):
                    files.add(os.path.normpath(os.path.join(dirpath, name)))
    return sorted(files)


def in_hot_path(file, hot_paths):
    norm = file.replace(os.sep, "/")
    return any(("/" + hp.strip("/") + "/") in norm or
               norm.startswith(hp.strip("/") + "/")
               for hp in hot_paths)


def in_engine_path(file, engine_paths):
    """Engine paths are file-stem prefixes (src/gaia/SccScheduler
    matches both the .h and the .cpp), or directories in fixture runs."""
    norm = file.replace(os.sep, "/")
    return any(("/" + ep.strip("/")) in norm or
               norm.startswith(ep.strip("/"))
               for ep in engine_paths)


def lint_files(files, hot_paths, reloc_paths, worker_paths, engine_paths):
    findings = []
    toks_by_file = {}
    classes_by_file = {}
    for f in files:
        try:
            src = open(f, encoding="utf-8", errors="replace").read()
        except OSError as e:
            print(f"gaia-lint: cannot read {f}: {e}", file=sys.stderr)
            sys.exit(2)
        toks = tokenize(src)
        toks_by_file[f] = toks
        classes_by_file[f] = parse_class_bodies(toks, f)
    static_names = set()
    for classes in classes_by_file.values():
        static_names |= epoch_class_static_members(classes)
    for f in files:
        toks = toks_by_file[f]
        classes = classes_by_file[f]
        check_tier_classes(classes, findings)
        check_epoch_class(classes, toks_by_file, findings)
        check_epoch_definitions(f, toks, findings, static_names)
        if in_hot_path(f, hot_paths):
            check_scratch_functions(f, toks, findings)
            check_banned_tokens(f, toks, findings)
        if in_hot_path(f, reloc_paths):
            check_relocation_remap(f, toks, findings)
        if in_hot_path(f, worker_paths):
            check_worker_noexcept(f, toks, findings)
            check_detach_calls(f, toks, findings)
    worker_files = [f for f in files if in_hot_path(f, worker_paths)]
    check_unjoined_thread_members(worker_files, toks_by_file,
                                  classes_by_file, findings)
    engine_files = [f for f in files if in_engine_path(f, engine_paths)]
    check_engine_shared_state(engine_files, toks_by_file, classes_by_file,
                              findings)
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="gaia-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit files to lint (fixture/test mode); "
                         "omit and pass --compdb for a tree run")
    ap.add_argument("--compdb", metavar="JSON",
                    help="compile_commands.json to derive the file list from")
    ap.add_argument("--suppressions", metavar="FILE",
                    help="suppression file (one `<rule> <file>:<symbol> -- "
                         "<why>` per line)")
    ap.add_argument("--hot-path", action="append", default=[],
                    metavar="DIR",
                    help="directory (repo-relative) treated as a hot path "
                         "for the scratch/banned rules; default: "
                         + ", ".join(DEFAULT_HOT_PATHS))
    ap.add_argument("--reloc-path", action="append", default=[],
                    metavar="DIR",
                    help="directory (repo-relative) where the "
                         "relocation-remap rule applies; default: "
                         + ", ".join(DEFAULT_RELOC_PATHS))
    ap.add_argument("--worker-path", action="append", default=[],
                    metavar="DIR",
                    help="directory (repo-relative) where the "
                         "worker-noexcept rule applies; default: "
                         + ", ".join(DEFAULT_WORKER_PATHS))
    ap.add_argument("--engine-path", action="append", default=[],
                    metavar="PREFIX",
                    help="path prefix (repo-relative file stem or "
                         "directory) where the engine-shared-state rule "
                         "applies; default: "
                         + ", ".join(DEFAULT_ENGINE_PATHS))
    ap.add_argument("--json", metavar="OUT",
                    help="write a JSON report to OUT")
    args = ap.parse_args(argv)

    if bool(args.files) == bool(args.compdb):
        print("gaia-lint: pass either explicit files or --compdb, not both "
              "or neither", file=sys.stderr)
        return 2

    hot_paths = args.hot_path or list(DEFAULT_HOT_PATHS)
    reloc_paths = args.reloc_path or list(DEFAULT_RELOC_PATHS)
    worker_paths = args.worker_path or list(DEFAULT_WORKER_PATHS)
    engine_paths = args.engine_path or list(DEFAULT_ENGINE_PATHS)
    files = args.files if args.files else files_from_compdb(args.compdb)
    if not files:
        print("gaia-lint: no files to lint", file=sys.stderr)
        return 2

    findings = lint_files(files, hot_paths, reloc_paths, worker_paths,
                          engine_paths)

    meta_findings = []
    sups = load_suppressions(args.suppressions, meta_findings)
    kept = []
    for f in findings:
        sup = next((s for s in sups if s.matches(f)), None)
        if sup is not None:
            sup.used = True
        else:
            kept.append(f)
    for s in sups:
        if not s.used:
            meta_findings.append(Finding(
                "unused-suppression", args.suppressions, s.line,
                f"{s.rule}:{s.symbol}",
                f"suppression `{s.rule} {s.file_pat}:{s.symbol}` matches "
                "nothing; delete it so the file stays an honest inventory"))
    kept.extend(meta_findings)
    kept.sort(key=lambda f: (f.file, f.line, f.rule))

    for f in kept:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")

    if args.json:
        report = {
            "tool": "gaia-lint",
            "files_scanned": len(files),
            "suppressions_used": sum(1 for s in sups if s.used),
            "findings": [
                {"rule": f.rule, "file": f.file, "line": f.line,
                 "symbol": f.symbol, "message": f.message}
                for f in kept
            ],
        }
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    if kept:
        print(f"gaia-lint: {len(kept)} finding(s) across {len(files)} "
              "file(s)", file=sys.stderr)
        return 1
    print(f"gaia-lint: clean ({len(files)} files, "
          f"{sum(1 for s in sups if s.used)} suppression(s) in use)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
