#!/usr/bin/env python3
"""Fixture suite for gaia-lint.

Each fixture under fixtures/ seeds exactly the violations its header
comment names; the lint must flag 100% of them (rule AND symbol), must
not flag the deliberately-adjacent allowed shapes, and must report the
suppression meta-rules on the malformed/stale suppression fixtures.
Registered with ctest as GaiaLintFixtures.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
LINT = os.path.join(HERE, os.pardir, "gaia_lint.py")

# fixture -> (findings that MUST be present, symbols that MUST be absent)
CASES = {
    "freeze_fields_bad.cpp": (
        [("freeze-fields", "Count")],
        ["Ids", "Readers", "size"],
    ),
    "freeze_methods_bad.cpp": (
        [("freeze-methods", "bump")],
        ["value", "FrozenCounterTier", "~FrozenCounterTier"],
    ),
    "epoch_invalidate_bad.cpp": (
        [("epoch-invalidate", "setRoot"), ("epoch-invalidate", "clearNodes")],
        ["addNode", "root"],
    ),
    "scratch_local_container_bad.cpp": (
        [("scratch-local-container", "widenStep:vector")],
        ["widenOk:vector"],
    ),
    "banned_container_bad.cpp": (
        [("banned-container", "std::map")],
        [],
    ),
    "banned_rand_bad.cpp": (
        [("banned-rand", "rand")],
        ["Rng", "mt19937"],
    ),
    "relocation_remap_bad.cpp": (
        [("relocation-remap", "refreezeStacked")],
        ["freezeFresh", "refreezeRelocated"],
    ),
    "worker_noexcept_bad.cpp": (
        [("worker-noexcept", "throw"), ("worker-noexcept", "abort")],
        ["exit", "runJobContained"],
    ),
    "no_detached_thread_bad.cpp": (
        [("no-detached-thread", "detach"),
         ("no-detached-thread", "Pump"),
         ("no-detached-thread", "Crew")],
        ["start", "fireAndForget"],
    ),
}


def run_lint(files, extra=()):
    with tempfile.NamedTemporaryFile("r", suffix=".json",
                                     delete=False) as tmp:
        report_path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, *files, "--hot-path", FIXTURES,
             "--reloc-path", FIXTURES, "--worker-path", FIXTURES,
             "--json", report_path, *extra],
            capture_output=True, text=True)
        with open(report_path, encoding="utf-8") as fp:
            report = json.load(fp)
        return proc.returncode, report
    finally:
        os.unlink(report_path)


def main():
    failures = []

    def check(cond, what):
        if cond:
            print(f"  ok    {what}")
        else:
            print(f"  FAIL  {what}")
            failures.append(what)

    for fixture, (must, must_not) in sorted(CASES.items()):
        print(f"[{fixture}]")
        rc, report = run_lint([os.path.join(FIXTURES, fixture)])
        found = {(f["rule"], f["symbol"]) for f in report["findings"]}
        check(rc == 1, "exit code 1 (findings present)")
        for want in must:
            check(want in found, f"flags {want[0]} on {want[1]}")
        for sym in must_not:
            hits = [f for f in found if f[1] == sym]
            check(not hits, f"does not flag allowed symbol {sym}")
        # The epoch-invalidate hook helper in the epoch fixture is a
        # known extra (mirrors the real tree's suppression); every other
        # fixture must flag nothing beyond its seeded violations.
        if fixture != "epoch_invalidate_bad.cpp":
            extras = found - set(must)
            check(not extras, f"no extra findings (got {sorted(extras)})")

    # engine-shared-state needs its own block: the rule's path option is
    # a file-stem prefix, so the fixture run must point --engine-path at
    # the fixtures dir explicitly (the default targets the real tree).
    print("[engine_shared_state_bad.cpp]")
    rc, report = run_lint(
        [os.path.join(FIXTURES, "engine_shared_state_bad.cpp")],
        extra=["--engine-path", FIXTURES])
    found = {(f["rule"], f["symbol"]) for f in report["findings"]}
    check(rc == 1, "exit code 1 (findings present)")
    engine_must = [("engine-shared-state", "GTaskTally"),
                   ("engine-shared-state", "Calls"),
                   ("engine-shared-state", "Published")]
    for want in engine_must:
        check(want in found, f"flags {want[0]} on {want[1]}")
    for sym in ("GEngineName", "GMaxWorkers", "GSpawnSeq", "Guarded",
                "Busy", "workerLoop", "Threads"):
        hits = [f for f in found if f[1] == sym]
        check(not hits, f"does not flag allowed symbol {sym}")
    extras = found - set(engine_must)
    check(not extras, f"no extra findings (got {sorted(extras)})")

    print("[clean_ok.cpp]")
    rc, report = run_lint(
        [os.path.join(FIXTURES, "clean_ok.cpp")],
        extra=["--suppressions",
               os.path.join(FIXTURES, "clean_suppressions.txt")])
    check(rc == 0, "exit code 0 (clean)")
    check(not report["findings"], "zero findings")
    check(report["suppressions_used"] == 1, "hook suppression consumed")

    print("[bad_suppressions.txt]")
    rc, report = run_lint(
        [os.path.join(FIXTURES, "clean_ok.cpp")],
        extra=["--suppressions",
               os.path.join(FIXTURES, "bad_suppressions.txt")])
    rules = {f["rule"] for f in report["findings"]}
    check(rc == 1, "exit code 1")
    check("suppression-syntax" in rules,
          "missing justification is reported")

    print("[unused_suppressions.txt]")
    rc, report = run_lint(
        [os.path.join(FIXTURES, "clean_ok.cpp")],
        extra=["--suppressions",
               os.path.join(FIXTURES, "unused_suppressions.txt")])
    rules = {f["rule"] for f in report["findings"]}
    check(rc == 1, "exit code 1")
    check("unused-suppression" in rules, "stale suppression is reported")
    check("suppression-syntax" not in rules, "justified lines parse")

    print()
    if failures:
        print(f"{len(failures)} fixture check(s) FAILED")
        return 1
    print("all fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
