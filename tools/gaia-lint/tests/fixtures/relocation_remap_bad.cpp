// gaia-lint fixture: relocation-remap violations.
//
// Seeded violations (the lint MUST flag):
//   relocation-remap : refreezeStacked -- builds a FrozenInternTier
//     Builder while reading the existing tier (Shared) with raw id
//     arithmetic, no RelocationTable in sight.
//
// Deliberately-adjacent allowed shapes (the lint MUST NOT flag):
//   freezeFresh      -- builds a tier from nothing; ids are born here.
//   refreezeRelocated -- reads the existing tier but routes every id
//     through the RelocationTable API.

#include <cstdint>
#include <memory>
#include <vector>

using CanonId = uint32_t;

struct FrozenInternTier {
  struct Builder {
    std::vector<int> Canon;
  };
  const std::vector<int> Canon;
  explicit FrozenInternTier(Builder &&B) : Canon(std::move(B.Canon)) {}
  uint32_t size() const { return static_cast<uint32_t>(Canon.size()); }
};

template <class IdT> class RelocationTable {
public:
  static RelocationTable identity(size_t N) { return RelocationTable(N); }
  explicit RelocationTable(size_t N) : Map(N) {}
  IdT map(IdT Id) const { return Map[Id]; }

private:
  std::vector<IdT> Map;
};

struct Refreezer {
  std::shared_ptr<const FrozenInternTier> Shared;
  std::vector<int> Delta;

  // BAD: stacks the delta on the shared tier by raw offset arithmetic.
  std::shared_ptr<FrozenInternTier> refreezeStacked() {
    FrozenInternTier::Builder B;
    for (size_t I = 0; I != Shared->Canon.size(); ++I)
      B.Canon.push_back(Shared->Canon[I]);
    for (size_t I = 0; I != Delta.size(); ++I)
      B.Canon.push_back(Delta[I] + static_cast<int>(Shared->size()));
    return std::make_shared<FrozenInternTier>(std::move(B));
  }

  // OK: a fresh build references no existing tier.
  std::shared_ptr<FrozenInternTier> freezeFresh() {
    FrozenInternTier::Builder B;
    for (size_t I = 0; I != Delta.size(); ++I)
      B.Canon.push_back(Delta[I]);
    return std::make_shared<FrozenInternTier>(std::move(B));
  }

  // OK: ids cross the tier boundary through the relocation table.
  std::shared_ptr<FrozenInternTier> refreezeRelocated() {
    const RelocationTable<CanonId> Reloc =
        RelocationTable<CanonId>::identity(Shared->size() + Delta.size());
    FrozenInternTier::Builder B;
    for (size_t I = 0; I != Shared->Canon.size(); ++I)
      B.Canon.push_back(Shared->Canon[Reloc.map(static_cast<CanonId>(I))]);
    for (size_t I = 0; I != Delta.size(); ++I)
      B.Canon.push_back(Delta[I]);
    return std::make_shared<FrozenInternTier>(std::move(B));
  }
};
