// Fixture: seeds [no-detached-thread] violations.
// Expect: a finding on the detach() call, and one each on the Pump and
// Crew members (std::thread members nobody joins — note there is no
// join() anywhere in this file, and no counterpart file exists). The
// start() method itself must not be flagged. The *allowed* shape — a
// thread member joined in its declaring file — lives in clean_ok.cpp.

#include <thread>
#include <vector>

namespace gaia {

// BAD: fire-and-forget. The thread outlives every owner that could
// observe it finish; anything it captured can dangle at shutdown.
inline void fireAndForget() {
  std::thread([] {}).detach();
}

// BAD: Pump and Crew are thread members with no join on any path; their
// destructor is one early return away from std::terminate.
class Pumper {
public:
  void start() {
    Pump = std::thread([] {});
    Crew.emplace_back([] {});
  }

private:
  std::thread Pump;
  std::vector<std::thread> Crew;
};

} // namespace gaia
