// Fixture: a scratch-taking function that reintroduces per-call
// allocation. Expect: scratch-local-container on the local vector in
// `widenStep`; `widenOk` only binds references and must not be flagged.

#include <cstdint>
#include <vector>

namespace gaia {

struct WideningScratch {
  std::vector<uint32_t> Stack;
  std::vector<uint32_t> Marks;
};

uint32_t widenStep(WideningScratch &W) {
  std::vector<uint32_t> Tmp; // BAD: per-call allocation beside a scratch
  Tmp.push_back(1);
  W.Stack.push_back(Tmp.back());
  return static_cast<uint32_t>(W.Stack.size());
}

uint32_t widenOk(WideningScratch &W) {
  std::vector<uint32_t> &Stack = W.Stack; // ok: reference into the scratch
  Stack.clear();
  return static_cast<uint32_t>(Stack.size());
}

} // namespace gaia
