// Fixture: rand() on a hot path. Expect: banned-rand. The seeded
// local mt19937 is the sanctioned pattern and must not be flagged.

#include <cstdlib>
#include <random>

namespace gaia {

int pickAlt(int N) {
  return rand() % N; // BAD: non-reproducible randomness on a hot path
}

int pickAltSeeded(int N, unsigned Seed) {
  std::mt19937 Rng(Seed); // ok: deterministic under a fixed seed
  return static_cast<int>(Rng() % static_cast<unsigned>(N));
}

} // namespace gaia
