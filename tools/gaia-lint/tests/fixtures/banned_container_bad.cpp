// Fixture: std::map on a hot path. Expect: banned-container.

#include <cstdint>
#include <map>
#include <string>

namespace gaia {

uint32_t countRules(const std::string &Name) {
  std::map<std::string, uint32_t> Rules; // BAD: ordered map on a hot path
  Rules[Name] = 1;
  return Rules.size();
}

} // namespace gaia
