// Fixture: a frozen tier type with a writable field.
// Expect: freeze-fields on `Count`.

#include <atomic>
#include <cstdint>
#include <vector>

namespace gaia {

struct FrozenDemoTier {
  const std::vector<uint32_t> Ids; // ok: const
  std::atomic<uint64_t> Readers;   // ok: atomic
  uint64_t Count = 0;              // BAD: mutable field on a frozen tier

  uint32_t size() const { return static_cast<uint32_t>(Ids.size()); }
};

} // namespace gaia
