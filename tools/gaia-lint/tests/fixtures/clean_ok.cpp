// Fixture: a file exercising the *allowed* shapes near every rule.
// Expect: zero findings.

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

namespace gaia {

// Thread member done right: joined on the shutdown path in the same
// file (no-detached-thread stays quiet).
class Reaper {
public:
  void start() { Loop = std::thread([] {}); }
  void stop() {
    if (Loop.joinable())
      Loop.join();
  }

private:
  std::thread Loop;
};

// Frozen tier done right: const/atomic fields, const methods only.
struct FrozenOkTier {
  struct Builder { // nested builder may be mutable: it is pre-freeze
    std::vector<uint32_t> Ids;
    uint64_t Epoch = 0;
  };

  explicit FrozenOkTier(Builder &&B)
      : Epoch(B.Epoch), Ids(std::move(B.Ids)) {}

  const uint64_t Epoch;
  const std::vector<uint32_t> Ids;
  std::atomic<uint64_t> Lookups{0};

  uint32_t size() const { return static_cast<uint32_t>(Ids.size()); }
};

// TypeGraph mutators calling the hook; const readers left alone.
class TypeGraph {
public:
  void setRoot(uint32_t Root) {
    invalidateDerived();
    RootId = Root;
  }
  uint32_t root() const { return RootId; }

private:
  void invalidateDerived() { Sig = 0; } // suppressed in the real tree

  uint32_t RootId = 0;
  uint64_t Sig = 0;
};

// Scratch-taking function that only uses scratch-owned buffers.
struct NormalizeScratch {
  std::vector<uint32_t> Order;
  std::unordered_map<uint32_t, uint32_t> Remap;
};

uint32_t renumber(NormalizeScratch &S, uint32_t N) {
  S.Order.clear();
  S.Remap.clear();
  for (uint32_t I = 0; I != N; ++I) {
    S.Order.push_back(I);
    S.Remap[I] = I;
  }
  return static_cast<uint32_t>(S.Order.size());
}

} // namespace gaia
