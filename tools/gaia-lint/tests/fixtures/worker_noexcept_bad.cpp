// Fixture: control-flow escapes inside the serving runtime's noexcept
// containment boundary. Expect: worker-noexcept on the naked `throw`
// and on the abort() call. Member functions that merely *name* exit
// (Pool.exit(), State->abort()) are calls on runtime objects, not
// process-killers, and must not be flagged.

#include <cstdlib>
#include <stdexcept>

namespace gaia {

struct FakePool {
  void exit() {}
  void abort() {}
};

int runJobBad(int JobIndex) {
  if (JobIndex < 0)
    throw std::runtime_error("bad job"); // BAD: escapes the noexcept worker
  return JobIndex;
}

int runJobWorse(int JobIndex) {
  if (JobIndex < 0)
    std::abort(); // BAD: kills every in-flight job with the process
  return JobIndex;
}

int runJobContained(FakePool &Pool, int JobIndex) {
  if (JobIndex < 0) {
    Pool.exit();  // ok: member call, not the process-killer
    Pool.abort(); // ok: member call, not the process-killer
    return -1;    // structured failure path
  }
  return JobIndex;
}

} // namespace gaia
