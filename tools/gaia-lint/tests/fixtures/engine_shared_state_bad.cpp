// engine-shared-state fixture. Seeded violations (all must be flagged):
//   GTaskTally  -- mutable namespace-scope static shared by every worker
//   Calls       -- mutable function-local static (same race, hidden deeper)
//   Published   -- non-synchronized data member touched from a
//                  thread-entry lambda without a lock
// Adjacent allowed shapes (must NOT be flagged): const/constexpr/atomic
// statics, an atomic member bumped from a lambda, a member touched only
// under a lock_guard, and the sanctioned delegate-to-member-function
// entry shape `[this] { workerLoop(); }`.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace gaia {

static uint64_t GTaskTally = 0; // BAD: every worker bumps this, no lock

static const char *GEngineName = "scc-scheduler";  // ok: const
static constexpr uint32_t GMaxWorkers = 16;        // ok: constexpr
static std::atomic<uint64_t> GSpawnSeq{0};         // ok: atomic

static void bumpTally() {
  static int Calls = 0; // BAD: function-local static, still shared
  ++Calls;
  ++GTaskTally;
}

class MiniScheduler {
public:
  void spawnBad() {
    // BAD: Published is plain uint64_t; the worker writes it while the
    // parent reads it -- exactly the race the published queue exists
    // to prevent.
    Threads.emplace_back([this] { ++Published; });
  }

  void spawnLocked() {
    // ok: the touch of Guarded happens under the engine mutex.
    Threads.emplace_back([this] {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Guarded;
    });
  }

  void spawnAtomic() {
    // ok: Busy is atomic; lock-free counters are a sanctioned shape.
    Threads.emplace_back([this] { Busy.fetch_add(1); });
  }

  void spawnDelegate() {
    // ok: the sanctioned entry shape -- delegate straight to a member
    // function and let it manage its own synchronization.
    std::thread Worker([this] { workerLoop(); });
    Worker.join();
  }

  void drain() {
    for (std::thread &T : Threads)
      T.join();
  }

private:
  void workerLoop() { bumpTally(); }

  uint64_t Published = 0;
  uint64_t Guarded = 0;
  std::atomic<uint32_t> Busy{0};
  std::mutex Mu;
  std::vector<std::thread> Threads;
};

} // namespace gaia
