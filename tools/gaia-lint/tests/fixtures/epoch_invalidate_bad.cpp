// Fixture: a TypeGraph mutator that forgets the derived-cache
// invalidation hook. Expect: epoch-invalidate on `setRoot` (in-class
// body) and on `clearNodes` (out-of-class definition); `addNode`
// invalidates and must not be flagged.

#include <cstdint>
#include <vector>

namespace gaia {

class TypeGraph {
public:
  void setRoot(uint32_t Root) {
    RootId = Root; // BAD: mutation without invalidateDerived()
  }

  uint32_t addNode() { // ok: calls the hook
    invalidateDerived();
    Nodes.push_back(0);
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

  void clearNodes();

  uint32_t root() const { return RootId; } // ok: const

private:
  void invalidateDerived() { Sig = 0; }

  std::vector<uint32_t> Nodes;
  uint32_t RootId = 0;
  uint64_t Sig = 0;
};

void TypeGraph::clearNodes() {
  Nodes.clear(); // BAD: mutation without invalidateDerived()
}

} // namespace gaia
