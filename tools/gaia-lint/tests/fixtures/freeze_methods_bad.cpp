// Fixture: a frozen tier type exposing a mutating entry point.
// Expect: freeze-methods on `bump`.

#include <cstdint>

namespace gaia {

struct FrozenCounterTier {
  explicit FrozenCounterTier(uint64_t N) : N(N) {} // ok: constructor
  ~FrozenCounterTier() = default;                  // ok: destructor

  uint64_t value() const { return N; } // ok: const
  void bump() { /* BAD: non-const member function on a frozen tier */ }

  const uint64_t N;
};

} // namespace gaia
