//===- tests/NormalizeMetricsTest.cpp - Normalization & metrics tests -----==//
///
/// \file
/// Tests for clause normalization (the GAIA primitive-operation form)
/// and the Table 1/2 program metrics.
///
//===----------------------------------------------------------------------===//

#include "prolog/Metrics.h"
#include "prolog/Normalize.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class NormalizeTest : public ::testing::Test {
protected:
  void load(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    ASSERT_TRUE(P.has_value()) << Err;
    Prog = *P;
    NProg = NProgram::fromProgram(Prog, Syms);
  }

  const NClause &clause(const char *Name, uint32_t Arity, size_t Idx) {
    const NProcedure *P = NProg.find(Syms.functor(Name, Arity));
    EXPECT_NE(P, nullptr);
    return P->Clauses[Idx];
  }

  SymbolTable Syms;
  Program Prog;
  NProgram NProg;
};

TEST_F(NormalizeTest, FactWithDistinctVarsHasNoOps) {
  load("p(X,Y).\n");
  const NClause &C = clause("p", 2, 0);
  EXPECT_EQ(C.Arity, 2u);
  EXPECT_EQ(C.NumVars, 2u);
  EXPECT_TRUE(C.Ops.empty());
}

TEST_F(NormalizeTest, RepeatedHeadVarsEmitUnifyVar) {
  load("p(X,X).\n");
  const NClause &C = clause("p", 2, 0);
  ASSERT_EQ(C.Ops.size(), 1u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::UnifyVar);
  EXPECT_EQ(C.Ops[0].A, 1u);
  EXPECT_EQ(C.Ops[0].B, 0u);
}

TEST_F(NormalizeTest, HeadStructureIsFlattened) {
  load("append([],X,X).\n");
  const NClause &C = clause("append", 3, 0);
  // Arg0 = [] and Arg2 = Arg1.
  ASSERT_EQ(C.Ops.size(), 2u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(C.Ops[0].A, 0u);
  EXPECT_EQ(C.Ops[0].Fn, Syms.nilFunctor());
  EXPECT_EQ(C.Ops[1].K, NOp::Kind::UnifyVar);
}

TEST_F(NormalizeTest, NestedStructuresUseFreshVars) {
  load("p(f(g(X))).\n");
  const NClause &C = clause("p", 1, 0);
  ASSERT_EQ(C.Ops.size(), 2u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(Syms.functorName(C.Ops[0].Fn), "f");
  EXPECT_EQ(C.Ops[1].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(Syms.functorName(C.Ops[1].Fn), "g");
  // g binds the fresh variable introduced for f's argument.
  EXPECT_EQ(C.Ops[1].A, C.Ops[0].Args[0]);
}

TEST_F(NormalizeTest, CallArgumentsAreFlattened) {
  load("p(X) :- q(f(X), Y).\nq(_,_).\n");
  const NClause &C = clause("p", 1, 0);
  ASSERT_EQ(C.Ops.size(), 2u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(C.Ops[1].K, NOp::Kind::Call);
  EXPECT_EQ(C.Ops[1].Args.size(), 2u);
  EXPECT_EQ(C.Ops[1].Args[0], C.Ops[0].A);
}

TEST_F(NormalizeTest, IntegersBecomeFunctors) {
  load("p(0).\n");
  const NClause &C = clause("p", 1, 0);
  ASSERT_EQ(C.Ops.size(), 1u);
  EXPECT_EQ(Syms.functorName(C.Ops[0].Fn), "0");
  EXPECT_TRUE(Syms.isIntegerLiteral(C.Ops[0].Fn));
}

TEST_F(NormalizeTest, BuiltinClassification) {
  load("p(X,Y) :- X < Y, Z is X + 1, q(Z).\nq(_).\n");
  const NClause &C = clause("p", 2, 0);
  // ops: Builtin(<), UnifyFunc(T = +(X,V)), UnifyFunc(V = 1),
  //      Builtin(is), Call(q).
  ASSERT_EQ(C.Ops.size(), 5u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::Builtin);
  EXPECT_EQ(C.Ops[0].BK, BuiltinKind::ArithTest);
  EXPECT_EQ(C.Ops[1].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(Syms.functorName(C.Ops[1].Fn), "+");
  EXPECT_EQ(C.Ops[2].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(Syms.functorName(C.Ops[2].Fn), "1");
  EXPECT_EQ(C.Ops[3].K, NOp::Kind::Builtin);
  EXPECT_EQ(C.Ops[3].BK, BuiltinKind::Is);
  EXPECT_EQ(C.Ops[4].K, NOp::Kind::Call);
}

TEST_F(NormalizeTest, EqualsBecomesUnification) {
  load("p(X,Y) :- X = f(Y).\n");
  const NClause &C = clause("p", 2, 0);
  ASSERT_EQ(C.Ops.size(), 1u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::UnifyFunc);
  EXPECT_EQ(Syms.functorName(C.Ops[0].Fn), "f");
}

TEST_F(NormalizeTest, DisjunctionExpandsClauses) {
  load("p(X) :- (X = a ; X = b).\n");
  const NProcedure *P = NProg.find(Syms.functor("p", 1));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Clauses.size(), 2u);
}

TEST_F(NormalizeTest, IfThenElseExpandsClauses) {
  load("p(X) :- (q -> X = a ; X = b).\nq.\n");
  const NProcedure *P = NProg.find(Syms.functor("p", 1));
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(P->Clauses.size(), 2u);
  // First path contains the call to q then the unification.
  EXPECT_EQ(P->Clauses[0].Ops.size(), 2u);
  EXPECT_EQ(P->Clauses[1].Ops.size(), 1u);
}

TEST_F(NormalizeTest, NegationIsOpaque) {
  load("p(X) :- \\+ q(X).\nq(_).\n");
  const NClause &C = clause("p", 1, 0);
  ASSERT_EQ(C.Ops.size(), 1u);
  EXPECT_EQ(C.Ops[0].K, NOp::Kind::Builtin);
  EXPECT_EQ(C.Ops[0].BK, BuiltinKind::Opaque);
}

TEST_F(NormalizeTest, UnknownPredicatesAreRecorded) {
  load("p :- mystery(1).\n");
  EXPECT_EQ(NProg.unknownPredicates().size(), 1u);
  const NClause &C = clause("p", 0, 0);
  // UnifyFunc for the argument, then the opaque builtin.
  ASSERT_EQ(C.Ops.size(), 2u);
  EXPECT_EQ(C.Ops[1].K, NOp::Kind::Builtin);
  EXPECT_EQ(C.Ops[1].BK, BuiltinKind::True);
}

class MetricsTest : public ::testing::Test {
protected:
  void load(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    ASSERT_TRUE(P.has_value()) << Err;
    Prog = *P;
    NProg = NProgram::fromProgram(Prog, Syms);
  }

  SymbolTable Syms;
  Program Prog;
  NProgram NProg;
};

TEST_F(MetricsTest, NreverseSizes) {
  load("nreverse([],[]).\n"
       "nreverse([F|T],R) :- nreverse(T,RT), append(RT,[F],R).\n"
       "append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  SizeMetrics M = computeSizeMetrics(Prog, NProg, Syms,
                                     Syms.functor("nreverse", 2));
  EXPECT_EQ(M.NumProcedures, 2u);
  EXPECT_EQ(M.NumClauses, 4u);
  EXPECT_EQ(M.NumGoals, 3u);
  // nreverse -> append, recursion cut: 2 nodes.
  EXPECT_EQ(M.StaticCallTreeSize, 2u);
  EXPECT_GT(M.NumProgramPoints, M.NumClauses);
}

TEST_F(MetricsTest, RecursionClassification) {
  load(// tail recursive
       "last([X],X).\n"
       "last([_|T],X) :- last(T,X).\n"
       // locally recursive (nonterminal recursive call)
       "nrev([],[]).\n"
       "nrev([F|T],R) :- nrev(T,RT), app(RT,[F],R).\n"
       // tail recursive
       "app([],X,X).\n"
       "app([F|T],S,[F|R]) :- app(T,S,R).\n"
       // mutually recursive pair
       "even(0).\n"
       "even(s(X)) :- odd(X).\n"
       "odd(s(X)) :- even(X).\n"
       // non-recursive
       "main(X) :- nrev([1,2],X).\n");
  RecursionMetrics R = classifyRecursion(Prog, Syms);
  EXPECT_EQ(R.TailRecursive, 2u);
  EXPECT_EQ(R.LocallyRecursive, 1u);
  EXPECT_EQ(R.MutuallyRecursive, 2u);
  EXPECT_EQ(R.NonRecursive, 1u);
}

TEST_F(MetricsTest, LocallyRecursiveByMultipleCalls) {
  // Two recursive calls (divide and conquer, like PR in the paper).
  load("split(_,[],[],[]).\n"
       "qs([],[]).\n"
       "qs([P|T],S) :- split(P,T,A,B), qs(A,SA), qs(B,SB), app(SA,SB,S).\n"
       "app([],X,X).\n"
       "app([F|T],S,[F|R]) :- app(T,S,R).\n");
  RecursionMetrics R = classifyRecursion(Prog, Syms);
  EXPECT_EQ(R.LocallyRecursive, 1u);
  EXPECT_EQ(R.TailRecursive, 1u);
  EXPECT_EQ(R.NonRecursive, 1u);
}

TEST_F(MetricsTest, CallsInsideControlAreCounted) {
  load("p :- (a ; b), \\+ c.\na.\nb.\nc.\n");
  SizeMetrics M =
      computeSizeMetrics(Prog, NProg, Syms, Syms.functor("p", 0));
  EXPECT_EQ(M.NumGoals, 3u);
}

TEST_F(MetricsTest, SCCsAreComputed) {
  load("a :- b.\nb :- c.\nc :- a.\nd :- a.\ne.\n");
  CallGraph CG(Prog, Syms);
  auto SCCs = CG.stronglyConnectedComponents();
  size_t Big = 0, Single = 0;
  for (const auto &S : SCCs)
    (S.size() > 1 ? Big : Single) += 1;
  EXPECT_EQ(Big, 1u);
  EXPECT_EQ(Single, 2u);
}

} // namespace
