//===- tests/InternerPropertyTest.cpp - Hash-consing / op-cache tests -----==//
///
/// \file
/// Seeded, deterministic property tests for the canonical-id layer:
///
///   - interning is language-preserving: the canonical representative of
///     intern(G) is language-equal to G;
///   - the canonical-id invariant: language-equal graphs (including
///     structurally different hand-built ones) receive equal ids, and
///     OpCache::equals is therefore an O(1) id comparison agreeing with
///     the two-walk graphEquals;
///   - cached operation results equal uncached recomputation across
///     union / intersection / inclusion / widening on generated graphs.
///
//===----------------------------------------------------------------------===//

#include "support/GraphInterner.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/OpCache.h"

#include <gtest/gtest.h>

#include <random>

using namespace gaia;

namespace {

/// Random raw (pre-normalization) graph over a small functor alphabet.
/// Depth-bounded recursive construction; normalizeGraph turns the result
/// into the canonical form all analyzer values are in.
class GraphGen {
public:
  GraphGen(SymbolTable &Syms, uint32_t Seed) : Syms(Syms), Rng(Seed) {}

  TypeGraph graph(unsigned Depth) {
    TypeGraph G;
    NodeId Root = genOr(G, Depth);
    G.setRoot(Root);
    return normalizeGraph(G, Syms);
  }

private:
  NodeId genOr(TypeGraph &G, unsigned Depth) {
    std::vector<NodeId> Alts;
    unsigned NumAlts = 1 + Rng() % 3;
    for (unsigned I = 0; I != NumAlts; ++I)
      Alts.push_back(genAlt(G, Depth));
    return G.addOr(std::move(Alts));
  }

  NodeId genAlt(TypeGraph &G, unsigned Depth) {
    switch (Rng() % (Depth == 0 ? 4u : 7u)) {
    case 0:
      return G.addAny();
    case 1:
      return G.addInt();
    case 2:
      return G.addFunc(Syms.nilFunctor(), {});
    case 3:
      return G.addFunc(Syms.functor("a", 0), {});
    case 4:
      return G.addFunc(Syms.consFunctor(),
                       {genOr(G, Depth - 1), genOr(G, Depth - 1)});
    case 5:
      return G.addFunc(Syms.functor("s", 1), {genOr(G, Depth - 1)});
    default:
      return G.addFunc(Syms.functor("f", 2),
                       {genOr(G, Depth - 1), genOr(G, Depth - 1)});
    }
  }

  SymbolTable &Syms;
  std::mt19937 Rng;
};

class InternerPropertyTest : public ::testing::TestWithParam<uint32_t> {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_P(InternerPropertyTest, InternIsLanguagePreserving) {
  GraphGen Gen(Syms, GetParam());
  GraphInterner Interner(Syms);
  for (unsigned I = 0; I != 20; ++I) {
    TypeGraph G = Gen.graph(1 + I % 3);
    CanonId Id = Interner.intern(G);
    EXPECT_TRUE(graphEquals(Interner.graph(Id), G, Syms))
        << "canonical representative changed the language of\n"
        << printGrammar(G, Syms);
    // Interning the same graph again is stable.
    EXPECT_EQ(Interner.intern(G), Id);
  }
}

TEST_P(InternerPropertyTest, LanguageEqualGraphsShareIds) {
  GraphGen Gen(Syms, GetParam() * 7919 + 17);
  GraphInterner Interner(Syms);
  for (unsigned I = 0; I != 12; ++I) {
    TypeGraph G = Gen.graph(1 + I % 3);
    CanonId Id = Interner.intern(G);
    // Language-preserving transformations must not mint new ids.
    EXPECT_EQ(Interner.intern(normalizeGraph(G, Syms)), Id);
    EXPECT_EQ(Interner.intern(graphUnion(G, G, Syms)), Id);
    EXPECT_EQ(Interner.intern(graphIntersect(G, G, Syms)), Id);
  }
}

TEST_P(InternerPropertyTest, CachedOpsEqualUncachedRecomputation) {
  GraphGen Gen(Syms, GetParam() * 104729 + 3);
  OpCache Ops(Syms, NormalizeOptions{});
  WideningOptions WOpts;
  for (unsigned I = 0; I != 10; ++I) {
    TypeGraph A = Gen.graph(1 + I % 3);
    TypeGraph B = Gen.graph(1 + (I + 1) % 3);

    TypeGraph U = Ops.unionOf(A, B);
    EXPECT_TRUE(graphEquals(U, graphUnion(A, B, Syms), Syms));
    TypeGraph M = Ops.intersectOf(A, B);
    EXPECT_TRUE(graphEquals(M, graphIntersect(A, B, Syms), Syms));
    EXPECT_EQ(Ops.includes(A, B), graphIncludes(A, B, Syms));
    EXPECT_EQ(Ops.includes(B, A), graphIncludes(B, A, Syms));
    TypeGraph W = Ops.widenOf(A, B, WOpts, nullptr);
    EXPECT_TRUE(graphEquals(W, graphWiden(A, B, Syms, WOpts), Syms));

    // Second round: answered from the cache, same results.
    uint64_t HitsBefore = Ops.stats().Hits;
    EXPECT_TRUE(graphEquals(Ops.unionOf(A, B), U, Syms));
    EXPECT_TRUE(graphEquals(Ops.unionOf(B, A), U, Syms)); // commutative key
    EXPECT_TRUE(graphEquals(Ops.intersectOf(A, B), M, Syms));
    EXPECT_TRUE(graphEquals(Ops.widenOf(A, B, WOpts, nullptr), W, Syms));
    EXPECT_GE(Ops.stats().Hits, HitsBefore + 4);
  }
}

TEST_P(InternerPropertyTest, EqualsMatchesGraphEquals) {
  GraphGen Gen(Syms, GetParam() * 31 + 5);
  OpCache Ops(Syms, NormalizeOptions{});
  std::vector<TypeGraph> Pool;
  for (unsigned I = 0; I != 8; ++I)
    Pool.push_back(Gen.graph(1 + I % 3));
  for (const TypeGraph &A : Pool)
    for (const TypeGraph &B : Pool)
      EXPECT_EQ(Ops.equals(A, B), graphEquals(A, B, Syms));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternerPropertyTest,
                         ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===//
// Deterministic corner cases.
//===----------------------------------------------------------------------===//

class InternerTest : public ::testing::Test {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_F(InternerTest, HandBuiltConstructorsInternCanonically) {
  GraphInterner Interner(Syms);
  // The hand-built make* graphs and their normalized forms must share
  // ids — this is what makes the structural fast path safe.
  EXPECT_EQ(Interner.intern(TypeGraph::makeAny()),
            Interner.intern(normalizeGraph(TypeGraph::makeAny(), Syms)));
  EXPECT_EQ(Interner.intern(TypeGraph::makeInt()),
            Interner.intern(normalizeGraph(TypeGraph::makeInt(), Syms)));
  EXPECT_EQ(Interner.intern(TypeGraph::makeBottom()),
            Interner.intern(normalizeGraph(TypeGraph::makeBottom(), Syms)));
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  EXPECT_EQ(Interner.intern(List),
            Interner.intern(normalizeGraph(List, Syms)));
  // Distinct languages get distinct ids.
  EXPECT_NE(Interner.intern(TypeGraph::makeAny()),
            Interner.intern(TypeGraph::makeInt()));
  EXPECT_NE(Interner.intern(List), Interner.intern(TypeGraph::makeAny()));
}

TEST_F(InternerTest, StructurallyDifferentSpellingsShareAnId) {
  GraphInterner Interner(Syms);
  // Two grammars for the same language written differently: the second
  // has a redundant unfolding that normalization collapses, but we
  // intern a *hand-built* pre-collapse variant via parseGrammar (which
  // normalizes) plus the canonical list constructor.
  TypeGraph A = parse("T ::= [] | cons(Any,T).");
  TypeGraph B = TypeGraph::makeAnyList(Syms);
  EXPECT_EQ(Interner.intern(A), Interner.intern(B));
  EXPECT_EQ(Interner.stats().Misses, 1u);
}

TEST_F(InternerTest, StructuralHashIsBfsCanonical) {
  // makeAny builds [Any, Or] with root 1; the normalized form is
  // [Or, Any] with root 0. Same BFS shape, same hash.
  TypeGraph A = TypeGraph::makeAny();
  TypeGraph B = normalizeGraph(A, Syms);
  EXPECT_EQ(structuralHash(A), structuralHash(B));
  EXPECT_TRUE(structuralEqual(A, B));
  EXPECT_FALSE(structuralEqual(A, TypeGraph::makeInt()));
}

} // namespace
