//===- tests/WideningExtensionsTest.cpp - Extensions of Section 7 ---------==//
///
/// \file
/// Tests for the two widening variants beyond the paper's measured
/// configuration:
///   - the depth-k truncation baseline (the finite-subdomain approach
///     Section 7 contrasts the widening against), and
///   - the type database of the paper's conclusion ("providing a
///     database of types that the widening can use whenever an ancestor
///     must be selected and/or replaced").
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "programs/Benchmarks.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Widening.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class WideningExtensionsTest : public ::testing::Test {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_F(WideningExtensionsTest, DepthKTruncatesInsteadOfCycling) {
  // The paper's widening turns the growing list iterates into the
  // recursive list type; depth-k truncation yields a bounded prefix
  // with an Any tail — strictly less precise.
  TypeGraph Old = parse("T ::= [] | cons(Any,T1).\nT1 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [] | cons(Any,T2).\nT2 ::= [].");
  WideningOptions DepthOpts;
  DepthOpts.Mode = WidenMode::DepthK;
  DepthOpts.DepthK = 2;
  TypeGraph WDepth = graphWiden(Old, New, Syms, DepthOpts);
  TypeGraph WPaper = graphWiden(Old, New, Syms);
  // Both are upper bounds...
  EXPECT_TRUE(graphIncludes(WDepth, New, Syms));
  EXPECT_TRUE(graphIncludes(WPaper, New, Syms));
  // ...but depth-k is strictly coarser: it contains the paper's result
  // and also junk like cons(Any, cons(Any, f(Any))).
  EXPECT_TRUE(graphIncludes(WDepth, WPaper, Syms));
  EXPECT_FALSE(graphIncludes(WPaper, WDepth, Syms))
      << printGrammar(WDepth, Syms);
}

TEST_F(WideningExtensionsTest, DepthKChainsTerminate) {
  WideningOptions Opts;
  Opts.Mode = WidenMode::DepthK;
  Opts.DepthK = 3;
  TypeGraph Acc = TypeGraph::makeBottom();
  unsigned Changes = 0;
  for (unsigned Depth = 1; Depth <= 10; ++Depth) {
    // Ever deeper exact lists.
    TypeGraph Step = TypeGraph::makeBottom();
    {
      TypeGraph G;
      NodeId Tail = G.addOr({G.addFunc(Syms.nilFunctor(), {})});
      for (unsigned D = 0; D != Depth; ++D) {
        NodeId Elem = G.addOr({G.addAny()});
        NodeId Cons = G.addFunc(Syms.consFunctor(), {Elem, Tail});
        Tail = G.addOr({G.addFunc(Syms.nilFunctor(), {}), Cons});
      }
      G.setRoot(Tail);
      Step = normalizeGraph(G, Syms);
    }
    TypeGraph Next = graphWiden(Acc, Step, Syms, Opts);
    if (!graphEquals(Next, Acc, Syms))
      ++Changes;
    Acc = Next;
  }
  // Must stabilize well before the end (the domain is finite).
  EXPECT_LE(Changes, 4u);
}

TEST_F(WideningExtensionsTest, DatabaseGuidesReplacement) {
  // Figure 6 scenario with the list type poisoned out: give the
  // database the exact arithmetic-expression type; the replacement rule
  // must pick it (DatabaseHits > 0) and produce at least as precise a
  // result as the collapsing union.
  TypeGraph Old = parse("To ::= 0 | +(Z,T1).\nZ ::= 0.\n"
                        "T1 ::= 1 | *(T1,T2).\n"
                        "T2 ::= cst(Any) | par(To) | var(Any).");
  TypeGraph New = parse("Tn ::= 0 | +(T3,T6).\n"
                        "T3 ::= 0 | +(Z,T4).\nZ ::= 0.\n"
                        "T4 ::= 1 | *(T4,T5).\n"
                        "T5 ::= cst(Any) | par(Tn) | var(Any).\n"
                        "T6 ::= 1 | *(T6,T7).\n"
                        "T7 ::= cst(Any) | par(T3) | var(Any).");
  std::vector<TypeGraph> DB;
  DB.push_back(parse("Tr ::= 0 | +(Tr,T1).\n"
                     "T1 ::= 1 | *(T1,T2).\n"
                     "T2 ::= cst(Any) | par(Tr) | var(Any)."));
  WideningOptions Opts;
  Opts.Database = &DB;
  WideningStats Stats;
  TypeGraph W = graphWiden(Old, New, Syms, Opts, &Stats);
  EXPECT_GE(Stats.DatabaseHits, 1u);
  EXPECT_TRUE(graphEquals(W, DB[0], Syms)) << printGrammar(W, Syms);
}

TEST_F(WideningExtensionsTest, DatabaseIgnoredWhenNotCovering) {
  // A database type that does not cover the clash vertices must not be
  // used; the result equals the plain widening.
  TypeGraph Old = parse("T ::= cst(Any) | var(Any).");
  TypeGraph New = parse("T ::= cst(Any) | par(Z) | var(Any).\nZ ::= 0.");
  std::vector<TypeGraph> DB;
  DB.push_back(TypeGraph::makeAnyList(Syms)); // irrelevant list type
  WideningOptions Opts;
  Opts.Database = &DB;
  WideningStats Stats;
  TypeGraph W = graphWiden(Old, New, Syms, Opts, &Stats);
  EXPECT_EQ(Stats.DatabaseHits, 0u);
  EXPECT_TRUE(graphEquals(W, New, Syms));
}

TEST_F(WideningExtensionsTest, AnalyzerDepthKLosesListTypes) {
  const BenchmarkProgram *B = findBenchmark("nreverse");
  AnalyzerOptions DepthOpts;
  DepthOpts.Widening = WidenMode::DepthK;
  DepthOpts.DepthK = 3;
  AnalysisResult RDepth = analyzeProgram(B->Source, B->GoalSpec,
                                         DepthOpts);
  AnalysisResult RPaper = analyzeProgram(B->Source, B->GoalSpec);
  ASSERT_TRUE(RDepth.Ok);
  ASSERT_TRUE(RPaper.Ok);
  ASSERT_TRUE(RDepth.QuerySucceeds);
  // Paper widening: exact list type. Depth-k: strictly coarser.
  EXPECT_TRUE(graphIncludes(RDepth.QueryOutput[0], RPaper.QueryOutput[0],
                            *RDepth.Syms));
  EXPECT_FALSE(graphEquals(RDepth.QueryOutput[0], RPaper.QueryOutput[0],
                           *RDepth.Syms))
      << printGrammar(RDepth.QueryOutput[0], *RDepth.Syms);
}

TEST_F(WideningExtensionsTest, AnalyzerTypeDatabaseOption) {
  const BenchmarkProgram *B = findBenchmark("AR1");
  AnalyzerOptions Opts;
  Opts.TypeDatabase.push_back(
      "T ::= *(T1,T2) | +(T,T1) | cst(Any) | par(T) | var(Any).\n"
      "T1 ::= *(T1,T2) | cst(Any) | par(T) | var(Any).\n"
      "T2 ::= cst(Any) | par(T) | var(Any).");
  AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.QuerySucceeds);
  // The result is still the paper-optimal one.
  std::string Err;
  TypeGraph Want = *parseGrammar(
      "T ::= *(T1,T2) | +(T,T1) | cst(Any) | par(T) | var(Any).\n"
      "T1 ::= *(T1,T2) | cst(Any) | par(T) | var(Any).\n"
      "T2 ::= cst(Any) | par(T) | var(Any).",
      *R.Syms, &Err);
  EXPECT_TRUE(graphEquals(R.QueryOutput[0], Want, *R.Syms));
}

TEST_F(WideningExtensionsTest, BadDatabaseGrammarIsReported) {
  const BenchmarkProgram *B = findBenchmark("nreverse");
  AnalyzerOptions Opts;
  Opts.TypeDatabase.push_back("not a grammar ::=");
  AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("type database"), std::string::npos);
}

} // namespace
