//===- tests/BenchmarkSuiteTest.cpp - Section 9 benchmark smoke tests -----==//
///
/// \file
/// Integration tests over the ten medium-sized benchmarks: every program
/// parses, normalizes, analyzes to a non-bottom result under both
/// domains, produces sane metrics, and the type analysis never loses to
/// the principal-functor baseline (Section 9: "The type analysis
/// described here is always more precise than the pattern domain").
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/InputPattern.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "programs/PaperData.h"

#include <gtest/gtest.h>

#include <set>

using namespace gaia;

namespace {

AnalyzerOptions optionsFor(const std::string &Key, DomainKind Domain) {
  AnalyzerOptions Opts;
  Opts.Domain = Domain;
  // PR's polyvariance explosion (the pathology Section 9 discusses for
  // RE) is trimmed harder in unit tests to keep them fast.
  if (Key == "PR")
    Opts.MaxInputPatterns = 2;
  return Opts;
}

class BenchmarkSuiteTest : public ::testing::TestWithParam<const char *> {};

TEST_P(BenchmarkSuiteTest, TypeAnalysisSucceeds) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  AnalysisResult R = analyzeProgram(
      B->Source, B->GoalSpec, optionsFor(B->Key, DomainKind::TypeGraphs));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.QuerySucceeds) << B->Key << " bottomed out";
  EXPECT_TRUE(R.UnknownPredicates.empty())
      << B->Key << " calls undefined predicates";
  EXPECT_GT(R.Stats.ProcedureIterations, 0u);
  EXPECT_GE(R.Stats.ClauseIterations, R.Stats.ProcedureIterations);
}

TEST_P(BenchmarkSuiteTest, PrincipalFunctorBaselineSucceeds) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  AnalysisResult R = analyzeProgram(
      B->Source, B->GoalSpec,
      optionsFor(B->Key, DomainKind::PrincipalFunctors));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.QuerySucceeds) << B->Key;
}

TEST_P(BenchmarkSuiteTest, MetricsAreSane) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  AnalysisResult R = analyzeProgram(
      B->Source, B->GoalSpec, optionsFor(B->Key, DomainKind::TypeGraphs));
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.Sizes.NumProcedures, 0u);
  EXPECT_GE(R.Sizes.NumClauses, R.Sizes.NumProcedures);
  EXPECT_GT(R.Sizes.NumProgramPoints, R.Sizes.NumClauses);
  EXPECT_GT(R.Sizes.NumGoals, 0u);
  EXPECT_GT(R.Sizes.StaticCallTreeSize, 0u);
  uint32_t Classified = R.Recursion.TailRecursive +
                        R.Recursion.LocallyRecursive +
                        R.Recursion.MutuallyRecursive +
                        R.Recursion.NonRecursive;
  EXPECT_EQ(Classified, R.Sizes.NumProcedures);
}

TEST_P(BenchmarkSuiteTest, TypeTagsNeverLoseToBaseline) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  AnalysisResult Ty = analyzeProgram(
      B->Source, B->GoalSpec, optionsFor(B->Key, DomainKind::TypeGraphs));
  AnalysisResult PF = analyzeProgram(
      B->Source, B->GoalSpec,
      optionsFor(B->Key, DomainKind::PrincipalFunctors));
  ASSERT_TRUE(Ty.Ok);
  ASSERT_TRUE(PF.Ok);
  for (bool Output : {true, false}) {
    TagTally T = computeTagTally(Ty, PF, Output);
    EXPECT_EQ(T.Type[0] /*None*/ <= T.PF[0], true)
        << B->Key << ": type analysis produced fewer tags than PF";
    // Improvement ratios are well defined.
    EXPECT_LE(T.AI, T.A);
    EXPECT_LE(T.CI, T.C);
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, BenchmarkSuiteTest,
                         ::testing::Values("KA", "QU", "PR", "PE", "CS",
                                           "DS", "PG", "RE", "BR", "PL"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

TEST(BenchmarkRegistryTest, SuiteRowOrderMatchesTables45) {
  const std::vector<BenchmarkProgram> &Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 15u);
  const char *Expected[] = {"AR", "AR1", "CS", "DS", "BR", "KA", "LDS",
                            "LPE", "LPL", "PE", "PG", "PL", "PR", "QU",
                            "RE"};
  for (size_t I = 0; I != Suite.size(); ++I)
    EXPECT_EQ(Suite[I].Key, Expected[I]);
}

TEST(BenchmarkRegistryTest, PaperDataCoversAllRows) {
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    EXPECT_NE(paperTable4(B.Key), nullptr) << B.Key;
    EXPECT_NE(paperTable5(B.Key), nullptr) << B.Key;
  }
  for (const BenchmarkProgram &B : table123Suite()) {
    EXPECT_NE(paperTable1(B.Key), nullptr) << B.Key;
    EXPECT_NE(paperTable2(B.Key), nullptr) << B.Key;
    EXPECT_NE(paperTable3(B.Key), nullptr) << B.Key;
  }
}

TEST(BenchmarkRegistryTest, LVariantsShareSources) {
  const BenchmarkProgram *DS = findBenchmark("DS");
  const BenchmarkProgram *LDS = findBenchmark("LDS");
  ASSERT_NE(DS, nullptr);
  ASSERT_NE(LDS, nullptr);
  EXPECT_EQ(DS->Source, LDS->Source);
  EXPECT_NE(DS->GoalSpec, LDS->GoalSpec);
}

TEST(BenchmarkRegistryTest, LVariantsAnalyze) {
  for (const char *Key : {"LDS", "LPL"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.QuerySucceeds) << Key;
  }
}

TEST(BenchmarkRegistryTest, FindBenchmarkUnknownKey) {
  EXPECT_EQ(findBenchmark("NOPE"), nullptr);
}

// Registry integrity: every registered program is well-formed and
// resolvable. Guards against a key typo or an empty reconstruction
// silently poisoning the suite.
TEST(BenchmarkRegistryTest, KeysUniqueAndNonEmpty) {
  // benchmarkSuite deliberately reuses entries from the other two
  // registries (AR/AR1 and the Table 1/2/3 programs); a key shared
  // across suites is only legitimate for such a reused entry, where it
  // names the same program. Derive the expected overlap from the data
  // so registry growth doesn't invalidate the check.
  std::set<std::string> Seen;
  size_t Total = 0, Reused = 0;
  auto SameProgramElsewhere = [](const BenchmarkProgram &B) {
    for (const std::vector<BenchmarkProgram> *Suite :
         {&section2Examples(), &table123Suite()})
      for (const BenchmarkProgram &P : *Suite)
        if (P.Key == B.Key) {
          EXPECT_EQ(P.Source, B.Source) << B.Key;
          return true;
        }
    return false;
  };
  for (const std::vector<BenchmarkProgram> *Suite :
       {&section2Examples(), &table123Suite()}) {
    for (const BenchmarkProgram &B : *Suite) {
      EXPECT_FALSE(B.Key.empty());
      ++Total;
      EXPECT_TRUE(Seen.insert(B.Key).second)
          << "key " << B.Key << " shared across base suites";
    }
  }
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    EXPECT_FALSE(B.Key.empty());
    ++Total;
    if (SameProgramElsewhere(B))
      ++Reused;
    else
      EXPECT_TRUE(Seen.insert(B.Key).second)
          << "key " << B.Key << " collides across suites";
  }
  EXPECT_EQ(Seen.size(), Total - Reused);
}

TEST(BenchmarkRegistryTest, KeysUniqueWithinEachSuite) {
  for (const std::vector<BenchmarkProgram> *Suite :
       {&section2Examples(), &table123Suite(), &benchmarkSuite()}) {
    std::set<std::string> Keys;
    for (const BenchmarkProgram &B : *Suite)
      EXPECT_TRUE(Keys.insert(B.Key).second)
          << "duplicate key " << B.Key;
  }
}

TEST(BenchmarkRegistryTest, SourcesNonEmpty) {
  for (const std::vector<BenchmarkProgram> *Suite :
       {&section2Examples(), &table123Suite(), &benchmarkSuite()})
    for (const BenchmarkProgram &B : *Suite) {
      EXPECT_FALSE(B.Source.empty()) << B.Key;
      EXPECT_FALSE(B.Description.empty()) << B.Key;
    }
}

TEST(BenchmarkRegistryTest, GoalSpecsParse) {
  for (const std::vector<BenchmarkProgram> *Suite :
       {&section2Examples(), &table123Suite(), &benchmarkSuite()})
    for (const BenchmarkProgram &B : *Suite) {
      std::string Err;
      EXPECT_TRUE(parseInputPattern(B.GoalSpec, &Err).has_value())
          << B.Key << ": " << Err;
    }
}

TEST(BenchmarkRegistryTest, FindBenchmarkResolvesEveryKey) {
  for (const std::vector<BenchmarkProgram> *Suite :
       {&section2Examples(), &table123Suite(), &benchmarkSuite()})
    for (const BenchmarkProgram &B : *Suite) {
      const BenchmarkProgram *Found = findBenchmark(B.Key);
      ASSERT_NE(Found, nullptr) << B.Key;
      EXPECT_EQ(Found->Source, B.Source) << B.Key;
      EXPECT_EQ(Found->GoalSpec, B.GoalSpec) << B.Key;
    }
}

} // namespace
