//===- tests/SharedCacheStressTest.cpp - Concurrent frozen-tier stress ----==//
///
/// \file
/// Hammers one frozen shared cache tier from 8 threads with randomized,
/// interleaved graph operations and checks every result against a
/// single-threaded uncached oracle. The tier is advertised as safe for
/// unsynchronized concurrent reads; this suite is the test CI runs under
/// ThreadSanitizer (-DGAIA_SANITIZE=thread) to police that claim — any
/// lazily-mutated field left in the frozen structures (signature caches,
/// intern tags, rank memos) shows up here as a data race.
///
/// Determinism scheme: thread K runs operation sequence K derived from a
/// fixed seed, entirely on its own SymbolTable copy and delta OpCache;
/// only the frozen tier is shared. The oracle precomputes all sequences
/// with the raw (uncached) graph operations, and results are compared as
/// printed grammars (name-based, so independent of functor-id layout).
///
//===----------------------------------------------------------------------===//

#include "runtime/SharedCache.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "support/Relocation.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

using namespace gaia;

namespace {

constexpr unsigned NumThreads = 8;
/// Per-sequence operation count. Sized so the suite stays in tier-1
/// budget even single-core and under TSan's ~10x slowdown; raise via
/// GAIA_STRESS_OPS for a longer soak.
constexpr unsigned DefaultOpsPerThread = 400;

unsigned opsPerThread() {
  if (const char *E = std::getenv("GAIA_STRESS_OPS"))
    return static_cast<unsigned>(std::strtoul(E, nullptr, 10));
  return DefaultOpsPerThread;
}

/// Grammar pool: a mix of languages the Section 9 warmup produces
/// (frozen-tier hits) and languages it never sees (delta misses).
const char *GrammarPool[] = {
    "T ::= Any.",
    "T ::= Int.",
    "T ::= [] | cons(Any, T).",
    "T ::= [] | cons(Int, T).",
    "T ::= [].",
    "T ::= a | b.",
    "T ::= f(Int, Any).",
    "T ::= a | f(T, Int).",
    "T ::= [] | cons(f(Int), T).",
    "T ::= g(g(g(Int))).",
    "T ::= stress_only(Any) | other_stress(Int, T).",
};
constexpr unsigned PoolSize = sizeof(GrammarPool) / sizeof(GrammarPool[0]);

/// Minimal deterministic PRNG (threads and oracle must agree exactly;
/// implementation-defined std engines would do, but this is explicit).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  uint32_t next(uint32_t Bound) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((State >> 33) % Bound);
  }
};

struct OpEnv {
  SymbolTable Syms;
  std::vector<TypeGraph> Pool;

  explicit OpEnv(const SharedCache &Cache) : Syms(Cache.symbols()) {
    for (const char *G : GrammarPool) {
      std::string Err;
      std::optional<TypeGraph> Parsed = parseGrammar(G, Syms, &Err);
      if (!Parsed)
        ADD_FAILURE() << G << ": " << Err;
      else
        Pool.push_back(normalizeGraph(*Parsed, Syms));
    }
  }
};

/// Runs sequence \p Seq; each step appends one printed result line.
/// \p Cached uses a delta OpCache over the frozen tier; the oracle
/// passes null and computes with the raw operations.
std::vector<std::string> runSequence(OpEnv &Env, unsigned Seq,
                                     OpCache *Cached) {
  NormalizeOptions Norm;
  WideningOptions WOpts;
  WOpts.Norm = Norm;
  std::vector<std::string> Log;
  // Results feed back as operands, so sequences exercise graphs beyond
  // the initial pool (ring buffer keeps memory bounded).
  std::vector<TypeGraph> Ring = Env.Pool;
  auto Pick = [&](Lcg &R) -> const TypeGraph & {
    return Ring[R.next(static_cast<uint32_t>(Ring.size()))];
  };
  auto Keep = [&](TypeGraph G) {
    Ring[Ring.size() - 1 - (Log.size() % PoolSize)] = std::move(G);
  };
  Lcg R(0x9a1a0000 + Seq);
  const unsigned Ops = opsPerThread();
  for (unsigned I = 0; I != Ops; ++I) {
    switch (R.next(6)) {
    case 0: {
      const TypeGraph &A = Pick(R), &B = Pick(R);
      TypeGraph G = Cached ? Cached->unionOf(A, B)
                           : graphUnion(A, B, Env.Syms, Norm);
      Log.push_back("u " + printGrammarInline(G, Env.Syms));
      Keep(std::move(G));
      break;
    }
    case 1: {
      const TypeGraph &A = Pick(R), &B = Pick(R);
      TypeGraph G = Cached ? Cached->intersectOf(A, B)
                           : graphIntersect(A, B, Env.Syms, Norm);
      Log.push_back("i " + printGrammarInline(G, Env.Syms));
      Keep(std::move(G));
      break;
    }
    case 2: {
      const TypeGraph &A = Pick(R), &B = Pick(R);
      bool Inc = Cached ? Cached->includes(A, B)
                        : graphIncludes(A, B, Env.Syms);
      Log.push_back(Inc ? "inc 1" : "inc 0");
      break;
    }
    case 3: {
      const TypeGraph &A = Pick(R), &B = Pick(R);
      TypeGraph G = Cached ? Cached->widenOf(A, B, WOpts, nullptr)
                           : graphWiden(A, B, Env.Syms, WOpts, nullptr);
      Log.push_back("w " + printGrammarInline(G, Env.Syms));
      Keep(std::move(G));
      break;
    }
    case 4: {
      const TypeGraph &V = Pick(R);
      std::vector<TypeGraph> Args;
      bool Ok = Cached
                    ? Cached->restrictOf(V, Env.Syms.consFunctor(), Args)
                    : graphRestrict(V, Env.Syms.consFunctor(), Env.Syms,
                                    Norm, Args);
      std::string Line = Ok ? "r" : "r!";
      for (const TypeGraph &A : Args)
        Line += " " + printGrammarInline(A, Env.Syms);
      Log.push_back(std::move(Line));
      break;
    }
    case 5: {
      std::vector<TypeGraph> Args{Pick(R), Pick(R)};
      FunctorId Fn = Env.Syms.consFunctor();
      TypeGraph G = Cached ? Cached->constructOf(Fn, Args)
                           : graphConstruct(Fn, Args, Env.Syms, Norm);
      Log.push_back("c " + printGrammarInline(G, Env.Syms));
      Keep(std::move(G));
      break;
    }
    }
  }
  return Log;
}

TEST(SharedCacheStressTest, EightThreadsOverOneFrozenTierMatchTheOracle) {
  // Freeze a tier from a few list-heavy Section 9 programs, so the
  // stress pool overlaps the tier's languages.
  std::vector<AnalysisJob> Warmup;
  for (const char *Key : {"QU", "DS", "PL", "BR"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    Warmup.push_back({B->Key, B->Source, B->GoalSpec});
  }
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;

  // Oracle: every sequence, computed uncached on the main thread.
  std::vector<std::vector<std::string>> Oracle(NumThreads);
  for (unsigned Seq = 0; Seq != NumThreads; ++Seq) {
    OpEnv Env(*Cache);
    Oracle[Seq] = runSequence(Env, Seq, nullptr);
  }

  // Stress: all sequences concurrently, each on a private delta cache
  // over the one shared frozen tier.
  std::vector<std::vector<std::string>> Got(NumThreads);
  std::vector<uint64_t> SharedHits(NumThreads, 0);
  {
    std::vector<std::thread> Threads;
    for (unsigned Seq = 0; Seq != NumThreads; ++Seq)
      Threads.emplace_back([&, Seq] {
        OpEnv Env(*Cache);
        NormalizeOptions Norm;
        OpCache Delta(Env.Syms, Norm, Cache->ops());
        Got[Seq] = runSequence(Env, Seq, &Delta);
        SharedHits[Seq] = Delta.stats().SharedHits +
                          Delta.interner().stats().SharedHits;
      });
    for (std::thread &T : Threads)
      T.join();
  }

  uint64_t TotalSharedHits = 0;
  for (unsigned Seq = 0; Seq != NumThreads; ++Seq) {
    ASSERT_EQ(Got[Seq].size(), Oracle[Seq].size()) << "sequence " << Seq;
    for (size_t I = 0; I != Got[Seq].size(); ++I)
      ASSERT_EQ(Got[Seq][I], Oracle[Seq][I])
          << "sequence " << Seq << " op " << I;
    TotalSharedHits += SharedHits[Seq];
  }
  EXPECT_GT(TotalSharedHits, 0u)
      << "the stress pool must actually exercise the frozen tier";
}

/// ISSUE-5 satellite: the frozen PfSetInterner tier (part of the frozen
/// op tier since the widening fast-path work) must serve concurrent
/// lookups bit-identically. Every thread runs the same deterministic
/// intern/subset sequence over a private interner layered on the one
/// shared tier; the oracle is the same sequence run sequentially. Under
/// TSan this also polices that tier lookups and subset walks are pure
/// reads.
TEST(SharedCacheStressTest, FrozenPfTierServesConcurrentLookupsBitIdentically) {
  std::vector<AnalysisJob> Warmup;
  for (const char *Key : {"QU", "DS", "PL", "BR"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    Warmup.push_back({B->Key, B->Source, B->GoalSpec});
  }
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;
  std::shared_ptr<const FrozenPfTier> Tier = Cache->ops()->Pf;
  ASSERT_NE(Tier, nullptr);
  ASSERT_GT(Tier->size(), 0u) << "warmup must populate the pf tier";
  const uint32_t NumFns = Cache->symbols().numFunctors();

  // One deterministic sequence of intern + subset queries. Private
  // delta ids are deterministic per sequence, so the full log (ids and
  // subset verdicts) must be identical across runs.
  auto RunPf = [&](unsigned Seq) {
    PfSetInterner L(Tier);
    Lcg R(0xBF000 + Seq);
    std::vector<uint64_t> Log;
    std::vector<PfSetId> Ids;
    const unsigned Ops = opsPerThread();
    for (unsigned I = 0; I != Ops; ++I) {
      std::vector<FunctorId> S;
      unsigned N = R.next(5);
      for (unsigned J = 0; J != N; ++J)
        S.push_back(R.next(NumFns));
      std::sort(S.begin(), S.end());
      S.erase(std::unique(S.begin(), S.end()), S.end());
      PfSetId Id = L.intern(S);
      Ids.push_back(Id);
      Log.push_back(Id);
      PfSetId A = Ids[R.next(static_cast<uint32_t>(Ids.size()))];
      PfSetId B = Ids[R.next(static_cast<uint32_t>(Ids.size()))];
      Log.push_back(L.subsetOf(A, B) ? 1 : 0);
    }
    return Log;
  };

  std::vector<std::vector<uint64_t>> Oracle(NumThreads);
  for (unsigned Seq = 0; Seq != NumThreads; ++Seq)
    Oracle[Seq] = RunPf(Seq);

  std::vector<std::vector<uint64_t>> Got(NumThreads);
  {
    std::vector<std::thread> Threads;
    for (unsigned Seq = 0; Seq != NumThreads; ++Seq)
      Threads.emplace_back([&, Seq] { Got[Seq] = RunPf(Seq); });
    for (std::thread &T : Threads)
      T.join();
  }
  for (unsigned Seq = 0; Seq != NumThreads; ++Seq)
    ASSERT_EQ(Got[Seq], Oracle[Seq]) << "pf sequence " << Seq;
}

/// Concurrent *jobs* (full analyses) over one tier — the pool's inner
/// loop without the pool, so TSan sees the analyzer path too.
TEST(SharedCacheStressTest, ConcurrentAnalysesOverOneTierMatchColdRuns) {
  std::vector<AnalysisJob> Warmup;
  for (const BenchmarkProgram &B : table123Suite())
    Warmup.push_back({B.Key, B.Source, B.GoalSpec});
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;

  std::vector<std::string> Oracle;
  for (const AnalysisJob &J : Warmup) {
    AnalysisResult R = analyzeProgram(J.Source, J.GoalSpec);
    Oracle.push_back(std::to_string(R.Stats.ProcedureIterations) + "/" +
                     std::to_string(R.Stats.ClauseIterations));
  }

  std::vector<std::string> Got(Warmup.size() * 2);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = T; I < Got.size(); I += NumThreads) {
        const AnalysisJob &J = Warmup[I % Warmup.size()];
        AnalyzerOptions Opts;
        Opts.Shared = Cache;
        AnalysisResult R = analyzeProgram(J.Source, J.GoalSpec, Opts);
        Got[I] = std::to_string(R.Stats.ProcedureIterations) + "/" +
                 std::to_string(R.Stats.ClauseIterations);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I != Got.size(); ++I)
    EXPECT_EQ(Got[I], Oracle[I % Oracle.size()]) << "job " << I;
}

/// Tier lifecycle under concurrency: a full wave of concurrent analyses
/// runs over generation 0, its harvested deltas are promoted, two more
/// concurrent waves run over the promoted tier (touching entries in the
/// advanced generation), the tier is compacted, and a final wave runs
/// over the compacted tier. Every wave must match the cold oracle
/// bit-for-bit. Under TSan this is the suite that polices the touch
/// generation counters: every shared-tier lookup stores into the
/// per-graph atomic while seven other threads do the same.
TEST(SharedCacheStressTest, ConcurrentWavesSurvivePromotionAndCompaction) {
  std::vector<AnalysisJob> Warmup;
  for (const char *Key : {"QU", "DS", "PL", "BR"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    Warmup.push_back({B->Key, B->Source, B->GoalSpec});
  }
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;

  // The wave workload: published goals (tier hits) plus "list"/"int"
  // variants (tier misses that fill worker deltas for promotion).
  std::vector<AnalysisJob> Jobs = Warmup;
  for (const AnalysisJob &W : Warmup)
    for (const char *Spec : {"list", "int"}) {
      std::string Goal = W.GoalSpec;
      size_t Pos = Goal.find("any");
      if (Pos == std::string::npos)
        continue;
      Goal.replace(Pos, 3, Spec);
      Jobs.push_back({W.Key + "#" + Spec, W.Source, Goal});
    }

  std::vector<std::string> Oracle;
  for (const AnalysisJob &J : Jobs) {
    AnalysisResult R = analyzeProgram(J.Source, J.GoalSpec);
    ASSERT_TRUE(R.Ok) << J.Key << ": " << R.Error;
    Oracle.push_back(analysisFingerprint(R));
  }

  // One concurrent wave over \p Tier; returns the harvested deltas
  // (all null unless \p Collect).
  auto Wave = [&](const std::shared_ptr<const SharedCache> &Tier,
                  bool Collect, const char *Label) {
    std::vector<std::shared_ptr<const CacheDelta>> Deltas(Jobs.size());
    std::vector<std::string> Got(Jobs.size());
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (size_t I = T; I < Jobs.size(); I += NumThreads) {
          AnalyzerOptions Opts;
          Opts.Shared = Tier;
          Opts.CollectDelta = Collect;
          Opts.DeltaMinHits = 1;
          AnalysisResult R =
              analyzeProgram(Jobs[I].Source, Jobs[I].GoalSpec, Opts);
          Got[I] = analysisFingerprint(R);
          Deltas[I] = R.Delta;
        }
      });
    for (std::thread &T : Threads)
      T.join();
    for (size_t I = 0; I != Jobs.size(); ++I)
      EXPECT_EQ(Got[I], Oracle[I]) << Jobs[I].Key << " (" << Label << ")";
    return Deltas;
  };

  std::vector<std::shared_ptr<const CacheDelta>> Deltas =
      Wave(Cache, /*Collect=*/true, "generation 0");

  std::shared_ptr<const SharedCache> Promoted =
      Cache->promoteAndRefreeze(Deltas);
  ASSERT_NE(Promoted, nullptr);
  EXPECT_GT(Promoted->stats().AbsorbedEntries, 0u)
      << "the variant goals must have filled promotable deltas";
  EXPECT_GE(Promoted->stats().Graphs, Cache->stats().Graphs);
  Wave(Promoted, /*Collect=*/false, "promoted tier");

  // New generation, then a wave that re-touches the live working set —
  // the concurrent-touch traffic compaction liveness is built on.
  Promoted->ops()->Intern->advanceGeneration();
  Wave(Promoted, /*Collect=*/false, "promoted tier, generation 1");

  CompactionPolicy CP;
  CP.KeepGens = 0; // current generation only: the wave's working set
  RelocationTable<CanonId> Reloc(Promoted->ops()->Intern->size());
  std::shared_ptr<const SharedCache> Compacted =
      Promoted->compactAndRefreeze(CP, &Reloc);
  ASSERT_NE(Compacted, nullptr);
  EXPECT_EQ(Reloc.size(), Promoted->ops()->Intern->size());
  EXPECT_EQ(Reloc.liveCount() + Compacted->stats().DroppedGraphs,
            Promoted->ops()->Intern->size());
  Wave(Compacted, /*Collect=*/false, "compacted tier");
}

} // namespace
