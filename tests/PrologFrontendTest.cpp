//===- tests/PrologFrontendTest.cpp - Lexer/parser/program tests ----------==//
///
/// \file
/// Unit tests for the Prolog front end: tokenization, operator
/// precedence parsing, list/string syntax, program assembly, and error
/// reporting.
///
//===----------------------------------------------------------------------===//

#include "prolog/Lexer.h"
#include "prolog/Parser.h"
#include "prolog/Program.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

std::vector<Token> lexAll(const char *Src) {
  Lexer L(Src);
  std::vector<Token> Toks;
  while (true) {
    Token T = L.next();
    bool Done = T.Kind == TokKind::Eof || T.Kind == TokKind::Error;
    Toks.push_back(std::move(T));
    if (Done)
      break;
  }
  return Toks;
}

TEST(LexerTest, BasicTokens) {
  auto Toks = lexAll("foo(X, 42) :- bar.");
  ASSERT_EQ(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Atom);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Kind, TokKind::LParenF);
  EXPECT_EQ(Toks[2].Kind, TokKind::Var);
  EXPECT_EQ(Toks[2].Text, "X");
  EXPECT_EQ(Toks[3].Kind, TokKind::Comma);
  EXPECT_EQ(Toks[4].Kind, TokKind::Int);
  EXPECT_EQ(Toks[4].IntVal, 42);
  EXPECT_EQ(Toks[5].Kind, TokKind::RParen);
  EXPECT_EQ(Toks[6].Kind, TokKind::Atom);
  EXPECT_EQ(Toks[6].Text, ":-");
  EXPECT_EQ(Toks[7].Kind, TokKind::Atom);
  EXPECT_EQ(Toks[8].Kind, TokKind::End);
  EXPECT_EQ(Toks[9].Kind, TokKind::Eof);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Toks = lexAll("a. % line comment\n/* block\ncomment */ b.");
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[2].Text, "b");
}

TEST(LexerTest, QuotedAtomsAndEscapes) {
  auto Toks = lexAll("'hello world'. 'it''s'. '\\n'.");
  EXPECT_EQ(Toks[0].Text, "hello world");
  EXPECT_EQ(Toks[2].Text, "it's");
  EXPECT_EQ(Toks[4].Text, "\n");
}

TEST(LexerTest, SymbolicAtomsVsEndDot) {
  auto Toks = lexAll("X =.. L.");
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[1].Kind, TokKind::Atom);
  EXPECT_EQ(Toks[1].Text, "=..");
  EXPECT_EQ(Toks[3].Kind, TokKind::End);
}

TEST(LexerTest, CharCodeLiterals) {
  auto Toks = lexAll("0'a.");
  EXPECT_EQ(Toks[0].Kind, TokKind::Int);
  EXPECT_EQ(Toks[0].IntVal, 97);
}

TEST(LexerTest, ParenAfterSpaceIsNotFunctorParen) {
  auto Toks = lexAll("foo (X).");
  EXPECT_EQ(Toks[1].Kind, TokKind::LParen);
}

class ParserTest : public ::testing::Test {
protected:
  Term parseOne(const char *Src) {
    Parser P(Src, Syms);
    std::optional<Term> T = P.parseClause();
    EXPECT_TRUE(T.has_value()) << P.error();
    return T ? *T : Term::mkAtom(Syms.intern("$error"));
  }

  std::string str(const Term &T) { return T.toString(Syms); }

  SymbolTable Syms;
};

TEST_F(ParserTest, OperatorPrecedence) {
  EXPECT_EQ(str(parseOne("X is 1 + 2 * 3.")), "is(X,+(1,*(2,3)))");
  EXPECT_EQ(str(parseOne("X is 1 * 2 + 3.")), "is(X,+(*(1,2),3))");
  EXPECT_EQ(str(parseOne("X is (1 + 2) * 3.")), "is(X,*(+(1,2),3))");
  // yfx associates left.
  EXPECT_EQ(str(parseOne("X is 1 - 2 - 3.")), "is(X,-(-(1,2),3))");
}

TEST_F(ParserTest, ClauseStructure) {
  Term T = parseOne("p(X) :- q(X), r(X).");
  EXPECT_EQ(str(T), ":-(p(X),,(q(X),r(X)))");
}

TEST_F(ParserTest, ListSyntax) {
  EXPECT_EQ(str(parseOne("p([]).")), "p([])");
  EXPECT_EQ(str(parseOne("p([a,b]).")), "p([a,b])");
  EXPECT_EQ(str(parseOne("p([H|T]).")), "p([H|T])");
  EXPECT_EQ(str(parseOne("p([a,b|T]).")), "p([a,b|T])");
}

TEST_F(ParserTest, NegativeNumbers) {
  EXPECT_EQ(str(parseOne("p(-3).")), "p(-3)");
  EXPECT_EQ(str(parseOne("X is -3 + 1.")), "is(X,+(-3,1))");
}

TEST_F(ParserTest, PrefixOperators) {
  EXPECT_EQ(str(parseOne("p :- \\+ q.")), ":-(p,\\+(q))");
  EXPECT_EQ(str(parseOne("p :- not q.")), ":-(p,not(q))");
}

TEST_F(ParserTest, IfThenElse) {
  Term T = parseOne("p :- (a -> b ; c).");
  EXPECT_EQ(str(T), ":-(p,;(->(a,b),c))");
}

TEST_F(ParserTest, StringsAreCodeLists) {
  Term T = parseOne("p(\"ab\").");
  EXPECT_EQ(str(T), "p([97,98])");
}

TEST_F(ParserTest, UnderscoreVarsAreDistinct) {
  Term T = parseOne("p(_, _).");
  ASSERT_TRUE(T.isCompound());
  EXPECT_NE(T.args()[0].name(), T.args()[1].name());
}

TEST_F(ParserTest, CurlyBraces) {
  EXPECT_EQ(str(parseOne("p({}).")), "p({})");
  EXPECT_EQ(str(parseOne("p({a,b}).")), "p({}(,(a,b)))");
}

TEST_F(ParserTest, QuotedAtomTerms) {
  EXPECT_EQ(str(parseOne("p('hello world').")), "p(hello world)");
}

TEST_F(ParserTest, OperatorPrecedenceTopLevel) {
  // ';' binds looser than ','.
  Term T = parseOne("p :- a, b ; c.");
  EXPECT_EQ(str(T), ":-(p,;(,(a,b),c))");
}

class ProgramTest : public ::testing::Test {
protected:
  Program parseProg(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    EXPECT_TRUE(P.has_value()) << Err;
    return P ? *P : Program();
  }

  SymbolTable Syms;
};

TEST_F(ProgramTest, GroupsClausesByPredicate) {
  Program P = parseProg("append([],X,X).\n"
                        "append([F|T],S,[F|R]) :- append(T,S,R).\n"
                        "nrev([],[]).\n"
                        "nrev([F|T],R) :- nrev(T,RT), append(RT,[F],R).\n");
  EXPECT_EQ(P.procedures().size(), 2u);
  const Procedure *App = P.find(Syms.functor("append", 3));
  ASSERT_NE(App, nullptr);
  EXPECT_EQ(App->Clauses.size(), 2u);
  EXPECT_EQ(App->Clauses[0].Body.size(), 0u);
  EXPECT_EQ(App->Clauses[1].Body.size(), 1u);
  EXPECT_EQ(P.numClauses(), 4u);
}

TEST_F(ProgramTest, DirectivesAreCollected) {
  Program P = parseProg(":- module(foo).\na.\n");
  EXPECT_EQ(P.directives().size(), 1u);
  EXPECT_EQ(P.procedures().size(), 1u);
}

TEST_F(ProgramTest, BodyConjunctionIsFlattened) {
  Program P = parseProg("p :- a, b, c, d.\n");
  const Procedure *Proc = P.find(Syms.functor("p", 0));
  ASSERT_NE(Proc, nullptr);
  EXPECT_EQ(Proc->Clauses[0].Body.size(), 4u);
}

TEST_F(ProgramTest, SyntaxErrorsAreReported) {
  std::string Err;
  EXPECT_FALSE(Program::parse("p :- q", Syms, &Err).has_value());
  EXPECT_NE(Err.find("line"), std::string::npos);
  EXPECT_FALSE(Program::parse("p :- (a, b.", Syms, &Err).has_value());
  EXPECT_FALSE(Program::parse("3.", Syms, &Err).has_value());
}

} // namespace
