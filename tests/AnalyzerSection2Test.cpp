//===- tests/AnalyzerSection2Test.cpp - Paper Section 2 golden tests ------==//
///
/// \file
/// End-to-end golden tests: every illustration example of Section 2 must
/// produce the type the paper reports (semantic equality against the
/// paper's grammar, written in the paper's own notation). This is the
/// core correctness evidence of the reproduction.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "programs/Benchmarks.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class Section2Test : public ::testing::Test {
protected:
  AnalysisResult analyzeKey(const char *Key) {
    const BenchmarkProgram *B = findBenchmark(Key);
    EXPECT_NE(B, nullptr) << Key;
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.QuerySucceeds) << Key << " bottomed out";
    return R;
  }

  void expectArg(const AnalysisResult &R, size_t Arg, const char *Grammar) {
    ASSERT_LT(Arg, R.QueryOutput.size());
    std::string Err;
    std::optional<TypeGraph> Want = parseGrammar(Grammar, *R.Syms, &Err);
    ASSERT_TRUE(Want.has_value()) << Err;
    EXPECT_TRUE(graphEquals(R.QueryOutput[Arg], *Want, *R.Syms))
        << "arg " << Arg + 1 << ": got\n"
        << printGrammar(R.QueryOutput[Arg], *R.Syms) << "want\n"
        << printGrammar(*Want, *R.Syms);
  }
};

TEST_F(Section2Test, Nreverse) {
  // "the system produces the output pattern nreverse(T,T), where
  //  T ::= [] | cons(Any,T)"
  AnalysisResult R = analyzeKey("nreverse");
  expectArg(R, 0, "T ::= [] | cons(Any,T).");
  expectArg(R, 1, "T ::= [] | cons(Any,T).");
}

TEST_F(Section2Test, NreverseAppendFirstArgIsList) {
  // "The analysis also concludes that the first argument of append is
  //  always a list."
  AnalysisResult R = analyzeKey("nreverse");
  std::string Err;
  TypeGraph List = *parseGrammar("T ::= [] | cons(Any,T).", *R.Syms, &Err);
  for (const PredicateSummary &S : R.Summaries) {
    if (S.Name != "append")
      continue;
    EXPECT_TRUE(graphIncludes(List, S.Input[0].Graph, *R.Syms))
        << printGrammar(S.Input[0].Graph, *R.Syms);
  }
}

TEST_F(Section2Test, ProcessAccumulator) {
  // process(T,S): T a list of c/1 and d/1 elements; S captures the
  // accumulator structure perfectly.
  AnalysisResult R = analyzeKey("process");
  expectArg(R, 0, "T ::= [] | cons(T1,T).\nT1 ::= c(Any) | d(Any).");
  expectArg(R, 1, "S ::= 0 | c(Any,S) | d(Any,S).");
}

TEST_F(Section2Test, ProcessMutualRecursion) {
  // The mutually recursive variant: alternating c/d structure.
  AnalysisResult R = analyzeKey("process_mutual");
  expectArg(R, 0, "T ::= [] | cons(T1,T2).\n"
                  "T1 ::= c(Any).\n"
                  "T2 ::= cons(T3,T).\n"
                  "T3 ::= d(Any).");
  expectArg(R, 1, "S ::= 0 | d(Any,S1).\n"
                  "S1 ::= c(Any,S).");
}

TEST_F(Section2Test, NestedListsFigure1) {
  // get(T): nested list structure preserved through reverse.
  AnalysisResult R = analyzeKey("nested");
  expectArg(R, 0, "T ::= [] | cons(T1,T).\n"
                  "T1 ::= [] | cons(T2,T1).\n"
                  "T2 ::= a | b.");
}

TEST_F(Section2Test, GenSucc) {
  // Both recursive structures inferred simultaneously.
  AnalysisResult R = analyzeKey("gen");
  expectArg(R, 0, "T ::= [] | cons(T1,T).\n"
                  "T1 ::= 0 | s(T1).");
}

TEST_F(Section2Test, ArithmeticFigure2) {
  // The optimal output pattern add(T,S) with mutually recursive rules.
  AnalysisResult R = analyzeKey("AR");
  expectArg(R, 0, "T ::= +(T,T1) | 0.\n"
                  "T1 ::= *(T1,T2) | 1.\n"
                  "T2 ::= cst(Any) | par(T) | var(Any).");
  expectArg(R, 1, "S ::= [] | cons(Any,S).");
}

TEST_F(Section2Test, ArithmeticFigure3) {
  // AR1: the widening must not merge the T/T1/T2 levels. The paper
  // displays the result with shared nonterminals; the deterministic
  // equivalent is:
  //   T  = T1 | T + T1      (sums of products)
  //   T1 = T2 | T1 * T2     (products of basics)
  //   T2 = cst | var | par(T)
  AnalysisResult R = analyzeKey("AR1");
  expectArg(R, 0,
            "T ::= *(T1,T2) | +(T,T1) | cst(Any) | par(T) | var(Any).\n"
            "T1 ::= *(T1,T2) | cst(Any) | par(T) | var(Any).\n"
            "T2 ::= cst(Any) | par(T) | var(Any).");
  expectArg(R, 1, "S ::= [] | cons(Any,S).");
}

TEST_F(Section2Test, ArithmeticFigure3NotOverWidened) {
  // The failure mode the paper warns about: collapsing T, T1, T2 into
  // one rule T ::= T+T | T*T | cst | var | par(T). Our result must be
  // strictly below that.
  AnalysisResult R = analyzeKey("AR1");
  std::string Err;
  TypeGraph Collapsed = *parseGrammar(
      "T ::= +(T,T) | *(T,T) | cst(Any) | var(Any) | par(T).", *R.Syms,
      &Err);
  EXPECT_TRUE(graphIncludes(Collapsed, R.QueryOutput[0], *R.Syms));
  EXPECT_FALSE(graphIncludes(R.QueryOutput[0], Collapsed, *R.Syms))
      << "result was over-widened to the collapsed grammar";
}

TEST_F(Section2Test, TokenizerKeepsStringTypeSeparate) {
  // "the interesting point was the ability of the widening to preserve
  //  the string type": string(T2) with T2 a plain list must not merge
  //  with the token list itself.
  AnalysisResult R = analyzeKey("tokenizer");
  const TypeGraph &Tokens = R.QueryOutput[1];
  SymbolTable &Syms = *R.Syms;
  // The result is a list of tokens...
  std::string Err;
  TypeGraph List = *parseGrammar("T ::= [] | cons(Any,T).", Syms, &Err);
  EXPECT_TRUE(graphIncludes(List, Tokens, Syms));
  // ...whose element type contains the punctuation atoms, atom/integer/
  // var tokens and string(T2) with T2 a character list.
  GrammarAutomaton A = buildAutomaton(Tokens, Syms);
  ASSERT_FALSE(A.Empty);
  bool SawString = false, SawAtomTok = false, SawPunct = false;
  for (const auto &St : A.States)
    for (const auto &[Fn, Args] : St.Trans) {
      const std::string &Name = Syms.functorName(Fn);
      if (Name == "string" && Args.size() == 1)
        SawString = true;
      if (Name == "atom" && Args.size() == 1)
        SawAtomTok = true;
      if (Name == "(")
        SawPunct = true;
    }
  EXPECT_TRUE(SawString);
  EXPECT_TRUE(SawAtomTok);
  EXPECT_TRUE(SawPunct);
}

TEST_F(Section2Test, QsortAccumulatorWeakness) {
  // Figure 4 (given order): the first argument is a list but the second
  // only gets [] | cons(Any,Any) because Ot is unbound at the first
  // recursive call — the paper's documented precision loss.
  AnalysisResult R = analyzeKey("qsort");
  expectArg(R, 0, "T ::= [] | cons(Any,T).");
  expectArg(R, 1, "T ::= [] | cons(Any,Any).");
}

TEST_F(Section2Test, QsortSwappedRecoversListType) {
  // "If the order of the two recursive calls is switched, the analyzer
  //  concludes that both arguments are of the type list."
  AnalysisResult R = analyzeKey("qsort_swapped");
  expectArg(R, 0, "T ::= [] | cons(Any,T).");
  expectArg(R, 1, "T ::= [] | cons(Any,T).");
}

TEST_F(Section2Test, InsertTreeShape) {
  // The introduction's insert/3: with an all-Any query the success type
  // of the tree arguments is void | tree(Any,Any,Any) — only the spine
  // the insertion follows is constrained, which is the optimal
  // downward-closed answer under the principal-functor restriction.
  AnalysisResult R = analyzeKey("insert");
  expectArg(R, 1, "T ::= void | tree(Any,Any,Any).");
  expectArg(R, 2, "T ::= tree(Any,Any,Any).");
}

TEST_F(Section2Test, AnalysisTimesAreSane) {
  // The paper reports fractions of a second for all Section 2 examples;
  // allow generous slack for debug builds.
  for (const char *Key : {"nreverse", "process", "process_mutual",
                          "nested", "gen", "AR", "AR1"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    EXPECT_LT(R.Stats.SolveSeconds, 30.0) << Key;
  }
}

TEST_F(Section2Test, PrincipalFunctorBaselineIsWeaker) {
  // On nreverse the PF baseline cannot express the list type at all.
  const BenchmarkProgram *B = findBenchmark("nreverse");
  AnalyzerOptions PFOpts;
  PFOpts.Domain = DomainKind::PrincipalFunctors;
  AnalysisResult PF = analyzeProgram(B->Source, B->GoalSpec, PFOpts);
  ASSERT_TRUE(PF.Ok);
  ASSERT_TRUE(PF.QuerySucceeds);
  EXPECT_TRUE(graphEquals(PF.QueryOutput[0], TypeGraph::makeAny(),
                          *PF.Syms))
      << printGrammar(PF.QueryOutput[0], *PF.Syms);
}

} // namespace
