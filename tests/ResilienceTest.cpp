//===- tests/ResilienceTest.cpp - Fault-tolerant serving runtime tests ----==//
///
/// \file
/// The failure-containment contract of the serving runtime: structured
/// failure taxonomy (core/Analyzer.h FailKind), per-job deadlines and
/// cooperative cancellation with the no-trace unwind guarantee, the
/// retry-with-degradation ladder and its quarantine (runtime/
/// Resilience.h), and — in GAIA_FAULT_INJECT builds — the deterministic
/// chaos harness (support/FaultInject.h).
///
//===----------------------------------------------------------------------===//

#include "runtime/Resilience.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "runtime/AnalysisPool.h"
#include "runtime/TierLifecycle.h"
#include "support/FaultInject.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace gaia;

namespace {

std::string fingerprint(const AnalysisResult &R) {
  return analysisFingerprint(R);
}

std::vector<AnalysisJob> section9Jobs() {
  std::vector<AnalysisJob> Jobs;
  for (const BenchmarkProgram &B : table123Suite())
    Jobs.push_back({B.Key, B.Source, B.GoalSpec});
  return Jobs;
}

/// A configuration that keeps the PR analysis busy for many fixpoint
/// rounds (uncached, so every widening recomputes): long enough that a
/// 1 ms deadline always expires before the fixpoint settles, with polls
/// every round.
AnalyzerOptions heavyOpts() {
  AnalyzerOptions O;
  O.UseOpCache = false;
  return O;
}

TEST(FailureTaxonomy, ParseErrorCarriesMessageAndLine) {
  AnalysisResult R = analyzeProgram("p(a).\nq(b) :- .\n", "p(any)");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::ParseError);
  EXPECT_EQ(R.FailLine, 2u);
  EXPECT_NE(R.Error.find("line 2"), std::string::npos) << R.Error;
}

TEST(FailureTaxonomy, BadGoalAndUndefinedGoalAreBadQuery) {
  AnalysisResult Bad = analyzeProgram("p(a).\n", "p(any");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Fail, FailKind::BadQuery);

  AnalysisResult Undef = analyzeProgram("p(a).\n", "q(any)");
  EXPECT_FALSE(Undef.Ok);
  EXPECT_EQ(Undef.Fail, FailKind::BadQuery);

  AnalysisResult Ok = analyzeProgram("p(a).\n", "p(any)");
  EXPECT_TRUE(Ok.Ok);
  EXPECT_EQ(Ok.Fail, FailKind::None);
  EXPECT_FALSE(Ok.Degraded);
}

TEST(FailureTaxonomy, KindNamesAreStable) {
  EXPECT_STREQ(failKindName(FailKind::None), "none");
  EXPECT_STREQ(failKindName(FailKind::ParseError), "parse-error");
  EXPECT_STREQ(failKindName(FailKind::Deadline), "deadline");
  EXPECT_STREQ(failKindName(FailKind::Cancelled), "cancelled");
  EXPECT_STREQ(failKindName(FailKind::Exception), "exception");
  EXPECT_STREQ(failKindName(FailKind::Rejected), "rejected");
}

TEST(Cancellation, PreCancelledTokenUnwindsToStructuredResult) {
  auto Token = std::make_shared<CancelToken>();
  Token->cancel();
  AnalyzerOptions Opts;
  Opts.Cancel = Token;
  Opts.CollectDelta = true;
  const BenchmarkProgram *B = findBenchmark("QU");
  ASSERT_NE(B, nullptr);
  AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::Cancelled);
  EXPECT_FALSE(R.Converged);
  EXPECT_TRUE(R.QueryOutput.empty());
  EXPECT_TRUE(R.Summaries.empty());
  EXPECT_EQ(R.Delta, nullptr) << "a cancelled job must harvest nothing";
}

TEST(Cancellation, DeadlineExpiresMidFixpointOnAHeavyJob) {
  const BenchmarkProgram *PR = findBenchmark("PR");
  ASSERT_NE(PR, nullptr);
  AnalyzerOptions Opts = heavyOpts();
  Opts.DeadlineMs = 1;
  Opts.CollectDelta = true;
  AnalysisResult R = analyzeProgram(PR->Source, PR->GoalSpec, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::Deadline);
  EXPECT_NE(R.Error.find("deadline"), std::string::npos) << R.Error;
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Delta, nullptr);
}

TEST(Cancellation, UnarmedOptionsChangeNothing) {
  // DeadlineMs = 0 and a null token must leave the result bit-identical
  // to a plain run (the signal is never even constructed armed).
  const BenchmarkProgram *B = findBenchmark("QU");
  AnalysisResult Plain = analyzeProgram(B->Source, B->GoalSpec);
  AnalyzerOptions Opts;
  Opts.DeadlineMs = 0;
  Opts.Cancel = nullptr;
  AnalysisResult Armed = analyzeProgram(B->Source, B->GoalSpec, Opts);
  ASSERT_TRUE(Plain.Ok && Armed.Ok);
  EXPECT_EQ(fingerprint(Plain), fingerprint(Armed));
}

/// The satellite pin: a wave whose jobs are all cancelled mid-run,
/// followed by a TierLifecycle rotation, must leave the shared tier,
/// the delta harvest, and the promotion history exactly as if the wave
/// had never been submitted.
TEST(Cancellation, CancelledWaveLeavesNoTraceInTheTierLifecycle) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Jobs, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;

  LifecyclePolicy LP;
  LP.PromoteMinHits = 2;

  // Run A: one clean wave through a rotation.
  std::vector<std::string> CleanFps;
  uint64_t CleanPromotions = 0;
  {
    TierLifecycle L(Cache, LP);
    PoolOptions PO;
    PO.Workers = 4;
    PO.Shared = L.current();
    PO.CollectDeltas = true;
    AnalysisPool Pool(PO);
    std::vector<JobOutcome> Out = Pool.run(Jobs);
    L.endBatch(Out);
    Pool.setShared(L.current());
    std::vector<JobOutcome> Out2 = Pool.run(Jobs);
    for (const JobOutcome &O : Out2)
      CleanFps.push_back(fingerprint(O.Result));
    L.endBatch(Out2);
    CleanPromotions = L.stats().Promotions;
  }

  // Run B: identical, except a fully-cancelled wave (same jobs, token
  // tripped before dispatch) runs — and rotates — between the two.
  {
    TierLifecycle L(Cache, LP);
    PoolOptions PO;
    PO.Workers = 4;
    PO.Shared = L.current();
    PO.CollectDeltas = true;
    AnalysisPool Pool(PO);
    std::vector<JobOutcome> Out = Pool.run(Jobs);
    L.endBatch(Out);

    auto Token = std::make_shared<CancelToken>();
    Token->cancel();
    PoolOptions CancelledPO = PO;
    CancelledPO.Opts.Cancel = Token;
    CancelledPO.Shared = L.current();
    AnalysisPool CancelledPool(CancelledPO);
    BatchStats CancelledStats;
    std::vector<JobOutcome> Cancelled =
        CancelledPool.run(Jobs, &CancelledStats);
    ASSERT_EQ(Cancelled.size(), Jobs.size());
    for (const JobOutcome &O : Cancelled) {
      EXPECT_FALSE(O.Result.Ok);
      EXPECT_EQ(O.Result.Fail, FailKind::Cancelled);
      EXPECT_EQ(O.Result.Delta, nullptr)
          << "cancelled jobs must not harvest deltas";
    }
    EXPECT_EQ(CancelledStats.Failed, Jobs.size());
    uint64_t PromotionsBefore = L.stats().Promotions;
    L.endBatch(Cancelled); // the rotation after the cancelled wave
    EXPECT_EQ(L.stats().Promotions, PromotionsBefore)
        << "a cancelled wave must promote nothing";

    Pool.setShared(L.current());
    std::vector<JobOutcome> Out2 = Pool.run(Jobs);
    for (size_t I = 0; I != Out2.size(); ++I)
      EXPECT_EQ(CleanFps[I], fingerprint(Out2[I].Result))
          << Jobs[I].Key
          << ": a cancelled wave left a trace in the shared tier";
    // Same promotion count as the clean run, plus nothing extra: the
    // cancelled wave contributed zero promotions (it advances the
    // generation clock, which is time passing, not analysis state).
    EXPECT_EQ(L.stats().Promotions, CleanPromotions);
  }
}

TEST(ResilienceLadder, WidenToTopFloorIsSoundAndDegraded) {
  AnalysisJob Job{"j", "p(a,b).\n", "p(any,list)"};
  AnalysisResult Floor = ResilienceManager::widenToTopResult(Job);
  EXPECT_TRUE(Floor.Ok);
  EXPECT_TRUE(Floor.Degraded);
  EXPECT_FALSE(Floor.Converged);
  EXPECT_TRUE(Floor.QuerySucceeds);
  ASSERT_EQ(Floor.QueryOutput.size(), 2u);
  for (const TypeGraph &G : Floor.QueryOutput)
    EXPECT_TRUE(graphIncludes(G, TypeGraph::makeAny(), *Floor.Syms))
        << "the floor must cover all terms";

  AnalysisJob BadGoal{"j", "p(a).\n", "p(any"};
  AnalysisResult R = ResilienceManager::widenToTopResult(BadGoal);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::BadQuery);
}

TEST(ResilienceLadder, EligibilityFollowsTheTaxonomy) {
  AnalysisResult R;
  R.Ok = false;
  R.Fail = FailKind::Deadline;
  EXPECT_TRUE(ResilienceManager::ladderEligible(R));
  R.Fail = FailKind::Exception;
  EXPECT_TRUE(ResilienceManager::ladderEligible(R));
  R.Fail = FailKind::ParseError;
  EXPECT_FALSE(ResilienceManager::ladderEligible(R));
  R.Fail = FailKind::BadQuery;
  EXPECT_FALSE(ResilienceManager::ladderEligible(R));
  R.Fail = FailKind::Cancelled;
  EXPECT_FALSE(ResilienceManager::ladderEligible(R));
  R.Ok = true;
  R.Fail = FailKind::None;
  EXPECT_FALSE(ResilienceManager::ladderEligible(R));
}

AnalysisResult deadlineFailure() {
  AnalysisResult R;
  R.Fail = FailKind::Deadline;
  R.Error = "deadline of 1 ms expired mid-analysis";
  R.Converged = false;
  return R;
}

TEST(ResilienceLadder, ColdRetryRecoversATransientFailure) {
  ResilienceManager Mgr;
  AnalysisJob Job{"j", "p(a).\n", "p(any)"};
  AnalyzerOptions Base;
  RecoveryRung Rung = RecoveryRung::None;
  uint32_t Attempts = 1;
  uint32_t SeenAttempt = 0;
  AnalysisResult R = Mgr.recover(
      Job, Base, deadlineFailure(),
      [&](const AnalyzerOptions &O, uint32_t A) {
        SeenAttempt = A;
        EXPECT_EQ(O.Shared, nullptr) << "rung 1 must bypass the tier";
        return analyzeProgram(Job.Source, Job.GoalSpec, O);
      },
      Rung, Attempts);
  EXPECT_TRUE(R.Ok);
  EXPECT_FALSE(R.Degraded) << "a cold-rung result is the normal output";
  EXPECT_EQ(Rung, RecoveryRung::ColdRetry);
  EXPECT_EQ(Attempts, 2u);
  EXPECT_EQ(SeenAttempt, 1u);
  EXPECT_EQ(Mgr.stats().ColdRetrySuccesses, 1u);
  EXPECT_EQ(Mgr.stats().TightRetries, 0u);
}

TEST(ResilienceLadder, TightBudgetRungMarksResultsDegraded) {
  ResilienceManager Mgr;
  AnalysisJob Job{"j", "p(a).\n", "p(any)"};
  AnalyzerOptions Base;
  RecoveryRung Rung = RecoveryRung::None;
  uint32_t Attempts = 1;
  AnalysisResult R = Mgr.recover(
      Job, Base, deadlineFailure(),
      [&](const AnalyzerOptions &O, uint32_t A) {
        if (A == 1)
          return deadlineFailure(); // cold rung also times out
        EXPECT_EQ(O.MaxFixpointRounds,
                  Mgr.options().TightMaxFixpointRounds);
        EXPECT_EQ(O.MaxInputPatterns, Mgr.options().TightMaxInputPatterns);
        EXPECT_FALSE(O.CollectDelta)
            << "a coarse run's entries must not promote into the tier";
        return analyzeProgram(Job.Source, Job.GoalSpec, O);
      },
      Rung, Attempts);
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(Rung, RecoveryRung::TightBudgets);
  EXPECT_EQ(Attempts, 3u);
  EXPECT_EQ(Mgr.stats().TightRetrySuccesses, 1u);
}

TEST(ResilienceLadder, ExhaustionFallsToTheFloorAndQuarantines) {
  ResilienceOptions RO;
  RO.QuarantineThreshold = 2;
  ResilienceManager Mgr(RO);
  AnalysisJob Poison{"poison", "p(a).\n", "p(any)"};
  auto AlwaysFails = [](const AnalyzerOptions &, uint32_t) {
    return deadlineFailure();
  };

  // First exhaustion: floor result, not yet quarantined.
  RecoveryRung Rung = RecoveryRung::None;
  uint32_t Attempts = 1;
  AnalysisResult R =
      Mgr.recover(Poison, {}, deadlineFailure(), AlwaysFails, Rung, Attempts);
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(Rung, RecoveryRung::WidenToTop);
  EXPECT_NE(R.Error.find("degraded to top after"), std::string::npos);
  EXPECT_FALSE(Mgr.isQuarantined(Poison));

  // Second exhaustion crosses the threshold.
  Rung = RecoveryRung::None;
  Attempts = 1;
  Mgr.recover(Poison, {}, deadlineFailure(), AlwaysFails, Rung, Attempts);
  EXPECT_TRUE(Mgr.isQuarantined(Poison));
  EXPECT_EQ(Mgr.stats().QuarantinedJobs, 1u);

  // Quarantined jobs are answered from the floor without a worker.
  AnalysisResult Out;
  Rung = RecoveryRung::None;
  EXPECT_TRUE(Mgr.preCheck(Poison, Out, Rung));
  EXPECT_EQ(Rung, RecoveryRung::Quarantined);
  EXPECT_TRUE(Out.Ok);
  EXPECT_TRUE(Out.Degraded);
  EXPECT_EQ(Mgr.stats().QuarantineShortCircuits, 1u);

  // A different job is unaffected.
  AnalysisJob Fine{"fine", "q(b).\n", "q(any)"};
  EXPECT_FALSE(Mgr.isQuarantined(Fine));
  EXPECT_FALSE(Mgr.preCheck(Fine, Out, Rung));
}

/// The quarantine-TTL satellite: after QuarantineProbeAfter
/// short-circuits, the next request probes through; a failed probe
/// re-arms a full TTL window, a successful one releases the fingerprint.
TEST(ResilienceLadder, QuarantineTTLProbesThroughAndReleases) {
  ResilienceOptions RO;
  RO.QuarantineThreshold = 1;
  RO.QuarantineProbeAfter = 3;
  ResilienceManager Mgr(RO);
  AnalysisJob Job{"flaky", "p(a).\n", "p(any)"};
  auto AlwaysFails = [](const AnalyzerOptions &, uint32_t) {
    return deadlineFailure();
  };

  // Condemn the fingerprint (artificially — the job itself is healthy,
  // exactly the transiently-quarantined shape the TTL exists for).
  RecoveryRung Rung = RecoveryRung::None;
  uint32_t Attempts = 1;
  Mgr.recover(Job, {}, deadlineFailure(), AlwaysFails, Rung, Attempts);
  ASSERT_TRUE(Mgr.isQuarantined(Job));

  // TTL window: exactly QuarantineProbeAfter floor answers...
  AnalysisResult Out;
  bool Probe = true;
  for (int I = 0; I != 3; ++I) {
    EXPECT_TRUE(Mgr.preCheck(Job, Out, Rung, &Probe)) << "window " << I;
    EXPECT_FALSE(Probe);
  }
  // ...then the next request probes through.
  EXPECT_FALSE(Mgr.preCheck(Job, Out, Rung, &Probe));
  EXPECT_TRUE(Probe);
  EXPECT_EQ(Mgr.stats().QuarantineProbes, 1u);

  // A failed probe re-arms a full TTL window.
  Mgr.probeResult(Job, /*Restored=*/false);
  EXPECT_TRUE(Mgr.isQuarantined(Job));
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(Mgr.preCheck(Job, Out, Rung, &Probe)) << "window " << I;
  EXPECT_FALSE(Mgr.preCheck(Job, Out, Rung, &Probe));
  EXPECT_TRUE(Probe);

  // A successful probe re-earns full service.
  Mgr.probeResult(Job, /*Restored=*/true);
  EXPECT_FALSE(Mgr.isQuarantined(Job));
  EXPECT_FALSE(Mgr.preCheck(Job, Out, Rung, &Probe));
  EXPECT_FALSE(Probe);
  EXPECT_EQ(Mgr.stats().QuarantineReleases, 1u);
}

/// Same contract end-to-end through the shared containment runner: a
/// healthy job condemned by transient noise probes through after the
/// TTL and is restored to full (non-degraded) service.
TEST(ResilienceLadder, ProbeThroughRestoresFullServiceEndToEnd) {
  ResilienceOptions RO;
  RO.QuarantineThreshold = 1;
  RO.QuarantineProbeAfter = 2;
  auto Mgr = std::make_shared<ResilienceManager>(RO);
  const BenchmarkProgram *QU = findBenchmark("QU");
  AnalysisJob Job{"QU", QU->Source, QU->GoalSpec};
  auto AlwaysFails = [](const AnalyzerOptions &, uint32_t) {
    return deadlineFailure();
  };
  RecoveryRung Rung = RecoveryRung::None;
  uint32_t Attempts = 1;
  Mgr->recover(Job, {}, deadlineFailure(), AlwaysFails, Rung, Attempts);
  ASSERT_TRUE(Mgr->isQuarantined(Job));

  // Two requests answered from the floor without running anything.
  for (int I = 0; I != 2; ++I) {
    JobOutcome O = runContainedJob(Job, {}, Mgr.get(), 0);
    EXPECT_EQ(O.Rung, RecoveryRung::Quarantined);
    EXPECT_TRUE(O.Result.Degraded);
    EXPECT_EQ(O.Attempts, 0u);
  }
  // The third probes through, succeeds cleanly, and lifts the verdict.
  JobOutcome P = runContainedJob(Job, {}, Mgr.get(), 0);
  EXPECT_EQ(P.Rung, RecoveryRung::None);
  EXPECT_TRUE(P.Result.Ok);
  EXPECT_FALSE(P.Result.Degraded);
  EXPECT_FALSE(Mgr->isQuarantined(Job));
  EXPECT_EQ(Mgr->stats().QuarantineReleases, 1u);

  // Restored means restored: the next request takes the normal path.
  JobOutcome N = runContainedJob(Job, {}, Mgr.get(), 0);
  EXPECT_TRUE(N.Result.Ok);
  EXPECT_EQ(N.Rung, RecoveryRung::None);
  EXPECT_EQ(Mgr->stats().QuarantineShortCircuits, 2u);
}

/// End-to-end: a pool with deadline-doomed jobs and a ladder ends the
/// batch with every job answered (Ok through a degrading rung), no
/// worker lost, and the per-rung stats visible.
TEST(ResilienceLadder, PoolRecoversDeadlinedJobsEndToEnd) {
  const BenchmarkProgram *PR = findBenchmark("PR");
  ASSERT_NE(PR, nullptr);
  std::vector<AnalysisJob> Jobs(4, AnalysisJob{"PR", PR->Source,
                                               PR->GoalSpec});

  PoolOptions PO;
  PO.Workers = 2;
  PO.Opts = heavyOpts();
  PO.Opts.DeadlineMs = 1;
  PO.Resilience = std::make_shared<ResilienceManager>();
  AnalysisPool Pool(PO);
  BatchStats St;
  std::vector<JobOutcome> Out = Pool.run(Jobs, &St);
  ASSERT_EQ(Out.size(), Jobs.size());
  for (const JobOutcome &O : Out) {
    EXPECT_TRUE(O.Result.Ok)
        << "the ladder must answer a deadline failure: " << O.Result.Error;
    EXPECT_NE(O.Rung, RecoveryRung::None);
    EXPECT_GE(O.Attempts, O.Rung == RecoveryRung::Quarantined ? 0u : 2u);
  }
  EXPECT_EQ(St.Failed, 0u);
  EXPECT_TRUE(St.FirstError.empty());
  EXPECT_GT(PO.Resilience->stats().FirstAttemptFailures, 0u);
}

/// Without a ladder the failure is reported as-is — and the batch stats
/// surface it (the bench/gate chain reads Failed/FirstError).
TEST(ResilienceLadder, NoLadderMeansStructuredFailureInStats) {
  std::vector<AnalysisJob> Jobs{
      {"good", "p(a).\n", "p(any)"},
      {"bad", "p(a) :- .\n", "p(any)"},
  };
  PoolOptions PO;
  PO.Workers = 2;
  AnalysisPool Pool(PO);
  BatchStats St;
  std::vector<JobOutcome> Out = Pool.run(Jobs, &St);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_TRUE(Out[0].Result.Ok);
  EXPECT_FALSE(Out[1].Result.Ok);
  EXPECT_EQ(Out[1].Result.Fail, FailKind::ParseError);
  EXPECT_FALSE(St.AllOk);
  EXPECT_EQ(St.Failed, 1u);
  EXPECT_NE(St.FirstError.find("bad: "), std::string::npos)
      << St.FirstError;
}

#ifdef GAIA_FAULT_INJECT

/// Chaos-build tests. These reconfigure the process-global fault plan;
/// each test restores probability 0 before returning so later tests
/// (and other suites in this binary) run clean.
class FaultInjection : public ::testing::Test {
protected:
  void TearDown() override { faultinject::configure(0.0, 1); }
};

TEST_F(FaultInjection, ProbesAreContainedAsStructuredFailures) {
  // Probability 1: the very first probe hit throws. The contained run
  // must turn it into FailKind::Exception, never a crash.
  faultinject::configure(1.0, 42);
  const BenchmarkProgram *B = findBenchmark("QU");
  faultinject::JobScope Scope(7);
  AnalysisResult R = containedAnalyze(B->Source, B->GoalSpec, {});
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::Exception);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_GT(Scope.fires(), 0u);
}

TEST_F(FaultInjection, DisarmedThreadsNeverFault) {
  faultinject::configure(1.0, 42);
  // No JobScope: warm-up/oracle code paths run fault-free even at p=1.
  const BenchmarkProgram *B = findBenchmark("QU");
  AnalysisResult R = containedAnalyze(B->Source, B->GoalSpec, {});
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST_F(FaultInjection, FaultPlanIsDeterministicPerJobAndAttempt) {
  // Replay half: the same (seed, salt) reproduces the same run.
  faultinject::configure(1e-2, 1234);
  const BenchmarkProgram *B = findBenchmark("KA");
  auto RunPlan = [&](uint64_t Salt) {
    faultinject::JobScope Scope(Salt);
    AnalysisResult R = containedAnalyze(B->Source, B->GoalSpec, {});
    return std::make_pair(R.Ok, Scope.fires());
  };
  auto A1 = RunPlan(11), A2 = RunPlan(11);
  EXPECT_EQ(A1, A2) << "same (seed, salt) must replay the same faults";

  // Divergence half: distinct salts draw distinct streams. (Ok, fires)
  // is too coarse an observable here — raise() disarms after one fire,
  // so at any workable p every salted run reports (false, 1). Probe the
  // stream directly instead: 64 shouldFire draws at p=0.5 give each
  // salt a 64-bit signature, and a collision between two independent
  // streams has probability 2^-64.
  faultinject::configure(0.5, 1234);
  auto Signature = [](uint64_t Salt) {
    faultinject::JobScope Scope(Salt);
    uint64_t Sig = 0;
    for (int I = 0; I != 64; ++I)
      Sig = (Sig << 1) |
            (faultinject::shouldFire(faultinject::Probe::OpCacheLookup) ? 1
                                                                        : 0);
    return Sig;
  };
  std::vector<uint64_t> Sigs;
  for (uint64_t S = 0; S != 8; ++S)
    Sigs.push_back(Signature(S));
  for (size_t I = 0; I != Sigs.size(); ++I)
    for (size_t J = I + 1; J != Sigs.size(); ++J)
      EXPECT_NE(Sigs[I], Sigs[J])
          << "salts " << I << " and " << J << " drew identical streams";
  EXPECT_EQ(Signature(3), Signature(3)) << "signatures must replay too";
}

TEST_F(FaultInjection, LadderRecoversInjectedFaultsInThePool) {
  // p high enough that many jobs fault, low enough that retries (fresh
  // stream per attempt) usually survive: the ladder's bread and butter.
  faultinject::configure(5e-3, 99);
  std::vector<AnalysisJob> Jobs;
  for (int Rep = 0; Rep != 5; ++Rep)
    for (const AnalysisJob &J : section9Jobs())
      Jobs.push_back(J);

  PoolOptions PO;
  PO.Workers = 4;
  PO.Resilience = std::make_shared<ResilienceManager>();
  AnalysisPool Pool(PO);
  BatchStats St;
  std::vector<JobOutcome> Out = Pool.run(Jobs, &St);
  ASSERT_EQ(Out.size(), Jobs.size());

  uint64_t Faulted = 0;
  for (size_t I = 0; I != Out.size(); ++I) {
    const JobOutcome &O = Out[I];
    if (O.FaultFires)
      ++Faulted;
    // Every job is answered: recovered Ok or a structured failure.
    if (!O.Result.Ok)
      EXPECT_NE(O.Result.Fail, FailKind::None) << Jobs[I].Key;
    // A fault-free single-attempt job took the normal path.
    if (O.FaultFires == 0 && O.Attempts == 1)
      EXPECT_EQ(O.Rung, RecoveryRung::None);
  }
  EXPECT_GT(Faulted, 0u) << "plan fired nowhere; raise p or jobs";
  EXPECT_GT(faultinject::totalFires(), 0u);
}

#else

TEST(FaultInjection, SkippedWithoutChaosBuild) {
  GTEST_SKIP() << "build with -DGAIA_FAULT_INJECT=ON for the chaos tests";
}

#endif // GAIA_FAULT_INJECT

} // namespace
