//===- tests/SccSchedulerTest.cpp - SCC-scheduled parallel solving --------==//
///
/// \file
/// The parallel mode's contract, in four layers:
///
///   1. CallGraph/Condensation structure: pinned SCCs on a known
///      program, consistency with the Table 2 recursion classifier,
///      and the DAG-scheduling properties the worker dispatch relies
///      on (callees-first ready order, no underflow, no stall).
///   2. Differential identity: on every Section 9 program, any
///      SolverThreads setting must reproduce the sequential oracle's
///      semantic fingerprint (grammars, tags, pattern/tuple counts)
///      bit for bit — only the proc=/clause= work counters may differ.
///   3. The escape hatch: a truncated speculation cone forces demands
///      outside it onto the sequential fallback path, which must be
///      counted and must not change any result.
///   4. Lifecycle: cancellation mid-parallel-solve unwinds to the
///      structured result and leaves no trace behind, and an 8-thread
///      stress pass gives TSan a workload (the soak CI job runs this
///      suite under -fsanitize=thread).
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "prolog/CallGraph.h"
#include "prolog/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace gaia;

namespace {

//===----------------------------------------------------------------------===//
// CallGraph / Condensation structure.
//===----------------------------------------------------------------------===//

class CallGraphTest : public ::testing::Test {
protected:
  void load(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    ASSERT_TRUE(P.has_value()) << Err;
    Prog = *P;
  }

  FunctorId fn(const char *Name, uint32_t Arity) {
    return Syms.functor(Name, Arity);
  }

  SymbolTable Syms;
  Program Prog;
};

constexpr const char *MutualSrc = R"(
a(X) :- b(X).
b(X) :- c(X), d(X).
c(X) :- b(X).
c(0).
d(1).
e(X) :- e(X).
)";

TEST_F(CallGraphTest, PinnedSccs) {
  load(MutualSrc);
  CallGraph CG(Prog, Syms);
  auto Sccs = CG.stronglyConnectedComponents();
  // Tarjan emits callees first: {b,c} before a; d before the {b,c}
  // caller-side pop order is not pinned here, only the component sets.
  std::set<std::set<FunctorId>> Got;
  for (const auto &S : Sccs)
    Got.insert(std::set<FunctorId>(S.begin(), S.end()));
  std::set<std::set<FunctorId>> Want = {
      {fn("a", 1)}, {fn("b", 1), fn("c", 1)}, {fn("d", 1)}, {fn("e", 1)}};
  EXPECT_EQ(Got, Want);
}

TEST_F(CallGraphTest, SccsConsistentWithRecursionClassifier) {
  // The Table 2 classifier and the scheduler's condensation are now two
  // consumers of one hoisted CallGraph; their views must agree: a
  // predicate is in a size->1 SCC iff the classifier calls it mutually
  // recursive.
  for (const BenchmarkProgram &B : table123Suite()) {
    SymbolTable S;
    std::string Err;
    std::optional<Program> P = Program::parse(B.Source, S, &Err);
    ASSERT_TRUE(P.has_value()) << B.Key << ": " << Err;
    CallGraph CG(*P, S);
    uint32_t InBigScc = 0;
    for (const auto &Scc : CG.stronglyConnectedComponents())
      if (Scc.size() > 1)
        InBigScc += static_cast<uint32_t>(Scc.size());
    RecursionMetrics M = classifyRecursion(*P, S);
    EXPECT_EQ(InBigScc, M.MutuallyRecursive) << B.Key;
  }
}

TEST_F(CallGraphTest, CondensationIsReverseTopological) {
  for (const BenchmarkProgram &B : table123Suite()) {
    SymbolTable S;
    std::string Err;
    std::optional<Program> P = Program::parse(B.Source, S, &Err);
    ASSERT_TRUE(P.has_value()) << B.Key << ": " << Err;
    Condensation C = CallGraph(*P, S).condense();
    // Every cross-component edge points at an earlier component, and
    // SccOf covers exactly the component members.
    size_t Members = 0;
    for (uint32_t I = 0; I != C.Sccs.size(); ++I) {
      Members += C.Sccs[I].size();
      for (uint32_t J : C.CalleeSccs[I])
        EXPECT_LT(J, I) << B.Key;
      for (FunctorId Pred : C.Sccs[I])
        EXPECT_EQ(C.SccOf.at(Pred), I) << B.Key;
    }
    EXPECT_EQ(Members, C.SccOf.size()) << B.Key;
  }
}

TEST_F(CallGraphTest, ReadyOrderDispatchesCalleesFirstWithoutUnderflow) {
  for (const BenchmarkProgram &B : table123Suite()) {
    SymbolTable S;
    std::string Err;
    std::optional<Program> P = Program::parse(B.Source, S, &Err);
    ASSERT_TRUE(P.has_value()) << B.Key << ": " << Err;
    Condensation C = CallGraph(*P, S).condense();
    std::vector<uint32_t> Order = C.readyOrder();
    ASSERT_EQ(Order.size(), C.Sccs.size()) << B.Key;

    // Valid permutation.
    std::vector<uint32_t> Sorted = Order;
    std::sort(Sorted.begin(), Sorted.end());
    for (uint32_t I = 0; I != Sorted.size(); ++I)
      ASSERT_EQ(Sorted[I], I) << B.Key;

    // Re-run the ready-count simulation by hand: a component may only
    // be dispatched once its count is zero, counts never wrap, and
    // every callee completes before every caller.
    std::vector<uint32_t> Counts = C.initialReadyCounts();
    std::vector<bool> Done(C.Sccs.size(), false);
    for (uint32_t Pick : Order) {
      ASSERT_EQ(Counts[Pick], 0u)
          << B.Key << ": component dispatched before its callees";
      for (uint32_t Callee : C.CalleeSccs[Pick])
        ASSERT_TRUE(Done[Callee]) << B.Key;
      Done[Pick] = true;
      for (uint32_t Caller : C.CallerSccs[Pick]) {
        ASSERT_GT(Counts[Caller], 0u) << B.Key << ": ready-count underflow";
        --Counts[Caller];
      }
    }
    for (uint32_t Cnt : Counts)
      EXPECT_EQ(Cnt, 0u) << B.Key;
  }
}

TEST_F(CallGraphTest, ReachableFromRespectsDepth) {
  load(MutualSrc);
  CallGraph CG(Prog, Syms);
  // a -> b -> {c, d}; c -> b (back edge). Depth 0 = entry only.
  EXPECT_EQ(CG.reachableFrom(fn("a", 1), 0).size(), 1u);
  EXPECT_EQ(CG.reachableFrom(fn("a", 1), 1).size(), 2u);
  EXPECT_EQ(CG.reachableFrom(fn("a", 1), 2).size(), 4u);
  EXPECT_EQ(CG.reachableFrom(fn("a", 1)).size(), 4u); // e unreachable
  EXPECT_TRUE(CG.reachableFrom(fn("nosuch", 1)).empty());
}

//===----------------------------------------------------------------------===//
// Differential identity against the sequential oracle.
//===----------------------------------------------------------------------===//

AnalyzerOptions parallelOpts(uint32_t Threads) {
  AnalyzerOptions O;
  O.SolverThreads = Threads;
  return O;
}

TEST(SccSchedulerDifferential, SemanticFingerprintIdentityOnSection9) {
  for (const BenchmarkProgram &B : table123Suite()) {
    AnalysisResult Oracle = analyzeProgram(B.Source, B.GoalSpec, {});
    ASSERT_TRUE(Oracle.Ok) << B.Key << ": " << Oracle.Error;
    std::string Want = analysisSemanticFingerprint(Oracle);
    for (uint32_t Threads : {2u, 4u}) {
      AnalysisResult R =
          analyzeProgram(B.Source, B.GoalSpec, parallelOpts(Threads));
      ASSERT_TRUE(R.Ok) << B.Key << ": " << R.Error;
      EXPECT_EQ(analysisSemanticFingerprint(R), Want)
          << B.Key << " at SolverThreads=" << Threads;
      EXPECT_EQ(R.Converged, Oracle.Converged) << B.Key;
      EXPECT_GT(R.Stats.SccCount, 0u) << B.Key;
    }
  }
}

TEST(SccSchedulerDifferential, ParallelismNeverExceedsWorkerCount) {
  for (const BenchmarkProgram &B : table123Suite()) {
    AnalysisResult R = analyzeProgram(B.Source, B.GoalSpec, parallelOpts(4));
    ASSERT_TRUE(R.Ok) << B.Key;
    EXPECT_LE(R.Stats.SccParallelism, 3u) << B.Key;
  }
}

TEST(SccSchedulerDifferential, ReserveFromCallConeIsResultInvisible) {
  // The memo-table reserve is pure capacity: with it off, even the full
  // fingerprint (work counters included) must match.
  for (const BenchmarkProgram &B : table123Suite()) {
    AnalyzerOptions NoReserve;
    NoReserve.ReserveFromCallCone = false;
    AnalysisResult A = analyzeProgram(B.Source, B.GoalSpec, {});
    AnalysisResult C = analyzeProgram(B.Source, B.GoalSpec, NoReserve);
    ASSERT_TRUE(A.Ok && C.Ok) << B.Key;
    EXPECT_EQ(analysisFingerprint(A), analysisFingerprint(C)) << B.Key;
  }
}

//===----------------------------------------------------------------------===//
// Escape hatch: demands outside the speculation cone.
//===----------------------------------------------------------------------===//

TEST(SccSchedulerEscape, TruncatedConeFallsBackSequentially) {
  // Depth 0 truncates the cone to the entry predicate alone, so every
  // callee demand escapes the speculation and is solved inline — the
  // exact path an escaping call through assert/retract-style dynamic
  // goals would take. Results must be unchanged and the fallbacks
  // visible in the stats.
  const BenchmarkProgram *B = findBenchmark("KA");
  ASSERT_NE(B, nullptr);
  AnalysisResult Oracle = analyzeProgram(B->Source, B->GoalSpec, {});
  ASSERT_TRUE(Oracle.Ok);

  AnalyzerOptions O = parallelOpts(4);
  O.SolverConeDepth = 0;
  AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(analysisSemanticFingerprint(R),
            analysisSemanticFingerprint(Oracle));
  EXPECT_GT(R.Stats.SccFallbackSolves, 0u);

  // A shallow but nonzero cone: fallbacks still counted for the deep
  // predicates, identity still holds.
  O.SolverConeDepth = 1;
  AnalysisResult R1 = analyzeProgram(B->Source, B->GoalSpec, O);
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(analysisSemanticFingerprint(R1),
            analysisSemanticFingerprint(Oracle));
}

//===----------------------------------------------------------------------===//
// Lifecycle: cancellation and thread-stress.
//===----------------------------------------------------------------------===//

TEST(SccSchedulerLifecycle, CancellationLeavesNoTrace) {
  const BenchmarkProgram *B = findBenchmark("KA");
  ASSERT_NE(B, nullptr);

  auto Tok = std::make_shared<CancelToken>();
  Tok->cancel(); // pre-cancelled: trips at the first checkpoint
  AnalyzerOptions O = parallelOpts(4);
  O.Cancel = Tok;
  AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, O);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Fail, FailKind::Cancelled);
  EXPECT_TRUE(R.Summaries.empty());
  EXPECT_EQ(R.Delta, nullptr);

  // The cancelled run's scheduler joined its workers on the unwind;
  // nothing it did may leak into a fresh run.
  AnalysisResult Oracle = analyzeProgram(B->Source, B->GoalSpec, {});
  AnalysisResult Fresh = analyzeProgram(B->Source, B->GoalSpec, {});
  ASSERT_TRUE(Oracle.Ok && Fresh.Ok);
  EXPECT_EQ(analysisFingerprint(Fresh), analysisFingerprint(Oracle));
}

TEST(SccSchedulerLifecycle, EightThreadStressKeepsIdentity) {
  // The TSan soak job runs this suite under -fsanitize=thread; this
  // test is its workload — enough concurrent solves of the largest
  // programs to exercise the publication queue and the stop path.
  for (const char *Key : {"KA", "PL", "CS"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    AnalysisResult Oracle = analyzeProgram(B->Source, B->GoalSpec, {});
    ASSERT_TRUE(Oracle.Ok) << Key;
    std::string Want = analysisSemanticFingerprint(Oracle);
    for (int Rep = 0; Rep != 3; ++Rep) {
      AnalysisResult R =
          analyzeProgram(B->Source, B->GoalSpec, parallelOpts(8));
      ASSERT_TRUE(R.Ok) << Key;
      EXPECT_EQ(analysisSemanticFingerprint(R), Want)
          << Key << " rep " << Rep;
    }
  }
}

} // namespace
