//===- tests/WideningPropertyTest.cpp - Widening fast-path properties -----==//
///
/// \file
/// Seeded, deterministic property tests for the ISSUE-5 widening fast
/// path (interned pf-sets, per-graph topology caches, scratch-based
/// incremental transform loop):
///
///   (a) the scratch-based production graphWiden is *bit-identical*
///       (structurally equal, not just language-equal) to the
///       from-scratch reference implementation kept in
///       tests/WideningReference.h;
///   (b) soundness: g_old <= g_old V g_new and g_new <= g_old V g_new
///       (the Definition 7.1 correspondence requirement);
///   (c) interned pf-set equality and subset agree with the
///       sorted-vector oracle (TypeGraph::pfSet + std::includes);
///   (d) repeated widening reaches a fixpoint quickly (Theorem 7.1
///       bounds the number of times V can grow a graph);
///
/// plus the satellite staleness audit: TypeGraph::cachesFresh must hold
/// on every value the widening pipeline produces, and every mutator must
/// drop the derived caches.
///
//===----------------------------------------------------------------------===//

#include "WideningReference.h"

#include "support/GraphInterner.h"
#include "support/PfSetInterner.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/OpCache.h"
#include "typegraph/Widening.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace gaia;

namespace {

/// Random raw (pre-normalization) graph over a small functor alphabet
/// (same shape as the InternerPropertyTest generator).
class GraphGen {
public:
  GraphGen(SymbolTable &Syms, uint32_t Seed) : Syms(Syms), Rng(Seed) {}

  TypeGraph graph(unsigned Depth) {
    TypeGraph G;
    NodeId Root = genOr(G, Depth);
    G.setRoot(Root);
    return normalizeGraph(G, Syms);
  }

  uint32_t next() { return Rng(); }

private:
  NodeId genOr(TypeGraph &G, unsigned Depth) {
    SuccList Alts;
    unsigned NumAlts = 1 + Rng() % 3;
    for (unsigned I = 0; I != NumAlts; ++I)
      Alts.push_back(genAlt(G, Depth));
    return G.addOr(std::move(Alts));
  }

  NodeId genAlt(TypeGraph &G, unsigned Depth) {
    switch (Rng() % (Depth == 0 ? 4u : 7u)) {
    case 0:
      return G.addAny();
    case 1:
      return G.addInt();
    case 2:
      return G.addFunc(Syms.nilFunctor(), {});
    case 3:
      return G.addFunc(Syms.functor("a", 0), {});
    case 4:
      return G.addFunc(Syms.consFunctor(),
                       {genOr(G, Depth - 1), genOr(G, Depth - 1)});
    case 5:
      return G.addFunc(Syms.functor("s", 1), {genOr(G, Depth - 1)});
    default:
      return G.addFunc(Syms.functor("f", 2),
                       {genOr(G, Depth - 1), genOr(G, Depth - 1)});
    }
  }

  SymbolTable &Syms;
  std::mt19937 Rng;
};

class WideningPropertyTest : public ::testing::TestWithParam<uint32_t> {
protected:
  SymbolTable Syms;
};

//===----------------------------------------------------------------------===//
// (a) + (b): bit-identity against the reference, soundness.
//===----------------------------------------------------------------------===//

TEST_P(WideningPropertyTest, MatchesReferenceBitIdentically) {
  GraphGen Gen(Syms, GetParam() * 9176 + 11);
  WideningOptions Opts;
  WideningScratch WS; // one scratch across all pairs: reuse must not leak
  for (unsigned I = 0; I != 25; ++I) {
    TypeGraph Old = Gen.graph(1 + I % 3);
    TypeGraph New = Gen.graph(1 + (I + 1) % 3);
    TypeGraph Fast = graphWiden(Old, New, Syms, Opts, nullptr, nullptr, &WS);
    TypeGraph Ref = reference::widen(Old, New, Syms, Opts);
    EXPECT_TRUE(structuralEqual(Fast, Ref))
        << "widening diverged from the reference on\n  old: "
        << printGrammarInline(Old, Syms)
        << "\n  new: " << printGrammarInline(New, Syms)
        << "\n  fast: " << printGrammarInline(Fast, Syms)
        << "\n  ref:  " << printGrammarInline(Ref, Syms);
    // Soundness (Definition 7.1): the widening includes both operands.
    EXPECT_TRUE(graphIncludes(Fast, Old, Syms, &WS));
    EXPECT_TRUE(graphIncludes(Fast, New, Syms, &WS));
    // Staleness audit: every produced value carries only fresh caches.
    Fast.assertCachesFresh(Syms);
    EXPECT_TRUE(Fast.cachesFresh(Syms));
  }
}

TEST_P(WideningPropertyTest, MatchesReferenceWithDatabase) {
  GraphGen Gen(Syms, GetParam() * 130363 + 7);
  std::vector<TypeGraph> Database;
  for (unsigned I = 0; I != 4; ++I)
    Database.push_back(Gen.graph(2));
  WideningOptions Opts;
  Opts.Database = &Database;
  for (unsigned I = 0; I != 12; ++I) {
    TypeGraph Old = Gen.graph(1 + I % 3);
    TypeGraph New = Gen.graph(1 + (I + 1) % 3);
    TypeGraph Fast = graphWiden(Old, New, Syms, Opts);
    TypeGraph Ref = reference::widen(Old, New, Syms, Opts);
    EXPECT_TRUE(structuralEqual(Fast, Ref))
        << "database widening diverged on\n  old: "
        << printGrammarInline(Old, Syms)
        << "\n  new: " << printGrammarInline(New, Syms);
  }
}

//===----------------------------------------------------------------------===//
// (c): interned pf-sets agree with the sorted-vector oracle.
//===----------------------------------------------------------------------===//

TEST_P(WideningPropertyTest, PfSetInternerMatchesVectorOracle) {
  GraphGen Gen(Syms, GetParam() * 523 + 1);
  PfSetInterner Pf;
  std::vector<std::vector<FunctorId>> Sets;
  std::vector<PfSetId> Ids;
  // Harvest real pf-sets from random graphs (plus the empty set).
  Sets.push_back({});
  for (unsigned I = 0; I != 12; ++I) {
    TypeGraph G = Gen.graph(1 + I % 3);
    for (NodeId V = 0; V != G.numNodes(); ++V)
      if (G.node(V).Kind == NodeKind::Or)
        Sets.push_back(G.pfSet(V, Syms));
  }
  for (const auto &S : Sets)
    Ids.push_back(Pf.intern(S));
  ASSERT_EQ(Pf.intern(std::vector<FunctorId>{}), PfSetInterner::EmptyId);
  for (size_t I = 0; I != Sets.size(); ++I) {
    // data()/size() reproduce the set.
    ASSERT_EQ(Pf.size(Ids[I]), Sets[I].size());
    EXPECT_TRUE(std::equal(Sets[I].begin(), Sets[I].end(), Pf.data(Ids[I])));
    for (size_t J = 0; J != Sets.size(); ++J) {
      EXPECT_EQ(Ids[I] == Ids[J], Sets[I] == Sets[J])
          << "id equality disagreed with set equality";
      EXPECT_EQ(Pf.subsetOf(Ids[I], Ids[J]),
                std::includes(Sets[J].begin(), Sets[J].end(),
                              Sets[I].begin(), Sets[I].end()))
          << "subsetOf disagreed with std::includes";
    }
  }
}

TEST_P(WideningPropertyTest, FrozenPfTierPreservesIdsAndSubsets) {
  GraphGen Gen(Syms, GetParam() * 86243 + 5);
  PfSetInterner Base;
  std::vector<std::vector<FunctorId>> Sets;
  std::vector<PfSetId> Ids;
  for (unsigned I = 0; I != 8; ++I) {
    TypeGraph G = Gen.graph(2);
    for (NodeId V = 0; V != G.numNodes(); ++V)
      if (G.node(V).Kind == NodeKind::Or) {
        Sets.push_back(G.pfSet(V, Syms));
        Ids.push_back(Base.intern(Sets.back()));
      }
  }
  auto Tier = Base.freeze();
  PfSetInterner Layered(Tier);
  // Tier ids are preserved and resolve as shared hits.
  for (size_t I = 0; I != Sets.size(); ++I) {
    EXPECT_EQ(Layered.intern(Sets[I]), Ids[I]);
    for (size_t J = 0; J != Sets.size(); ++J)
      EXPECT_EQ(Layered.subsetOf(Ids[I], Ids[J]),
                std::includes(Sets[J].begin(), Sets[J].end(),
                              Sets[I].begin(), Sets[I].end()));
  }
  EXPECT_EQ(Layered.stats().Misses, 0u);
  EXPECT_GT(Layered.stats().SharedHits, 0u);
  // New sets allocate past the tier.
  std::vector<FunctorId> Fresh{Syms.functor("zz_fresh", 3)};
  EXPECT_GE(Layered.intern(Fresh), Tier->size());
}

//===----------------------------------------------------------------------===//
// (d): repeated widening stabilizes within a small budget.
//===----------------------------------------------------------------------===//

TEST_P(WideningPropertyTest, RepeatedWideningReachesFixpoint) {
  GraphGen Gen(Syms, GetParam() * 40487 + 23);
  OpCache Ops(Syms, NormalizeOptions{});
  WideningOptions Opts;
  std::vector<TypeGraph> Pool;
  for (unsigned I = 0; I != 6; ++I)
    Pool.push_back(Gen.graph(1 + I % 3));
  TypeGraph W = TypeGraph::makeBottom();
  // Theorem 7.1 bounds how often V can grow a graph; cycling a fixed
  // pool of operands must therefore stabilize long before this budget.
  constexpr unsigned MaxRounds = 64;
  unsigned StableRounds = 0;
  for (unsigned Round = 0; Round != MaxRounds && StableRounds < Pool.size();
       ++Round) {
    const TypeGraph &New = Pool[Round % Pool.size()];
    TypeGraph Next = Ops.widenOf(W, New, Opts, nullptr);
    // The chain is increasing: every iterate includes its predecessor
    // and the operand.
    ASSERT_TRUE(Ops.includes(Next, W));
    ASSERT_TRUE(Ops.includes(Next, New));
    if (Ops.equals(Next, W))
      ++StableRounds; // unchanged against this operand
    else
      StableRounds = 0;
    W = std::move(Next);
  }
  // A full cycle through the pool without growth == fixpoint.
  EXPECT_EQ(StableRounds, Pool.size())
      << "widening chain failed to stabilize within " << MaxRounds
      << " rounds";
}

//===----------------------------------------------------------------------===//
// Satellite: mutator staleness audit.
//===----------------------------------------------------------------------===//

TEST_P(WideningPropertyTest, MutatorsInvalidateDerivedCaches) {
  GraphGen Gen(Syms, GetParam() * 6151 + 3);
  PfSetInterner Pf;
  for (unsigned I = 0; I != 8; ++I) {
    TypeGraph G = Gen.graph(2);
    // Populate every derived cache.
    structuralHash(G);
    (void)G.topology(Syms, Pf);
    ASSERT_TRUE(G.structSigValid());
    ASSERT_NE(G.topoCacheIfPresent(), nullptr);
    ASSERT_TRUE(G.cachesFresh(Syms));
    // Copies share the caches and stay fresh.
    TypeGraph Copy = G;
    EXPECT_TRUE(Copy.structSigValid());
    EXPECT_NE(Copy.topoCacheIfPresent(), nullptr);
    EXPECT_TRUE(Copy.cachesFresh(Syms));
    // Every mutator must drop them (on the mutated value only).
    switch (Gen.next() % 4) {
    case 0:
      G.addAny();
      break;
    case 1:
      G.node(G.root()); // mutable access alone counts as an edit
      break;
    case 2:
      G.setRoot(G.root());
      break;
    default:
      G.sortOrSuccessors(Syms);
      break;
    }
    EXPECT_FALSE(G.structSigValid()) << "mutator kept a stale signature";
    EXPECT_EQ(G.topoCacheIfPresent(), nullptr)
        << "mutator kept a stale topology cache";
    EXPECT_FALSE(G.isNormalizedFor(0, 100000, 0))
        << "mutator kept a stale normalization certificate";
    EXPECT_TRUE(G.cachesFresh(Syms));
    // The untouched copy is unaffected (copy-on-write isolation).
    EXPECT_TRUE(Copy.structSigValid());
    EXPECT_TRUE(Copy.cachesFresh(Syms));
    Copy.assertCachesFresh(Syms);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideningPropertyTest,
                         ::testing::Range(0u, 10u));

} // namespace
