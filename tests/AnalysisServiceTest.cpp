//===- tests/AnalysisServiceTest.cpp - Resident serving layer tests -------==//
///
/// \file
/// The AnalysisService contract (runtime/AnalysisService.h): bounded
/// admission with structured FailKind::Rejected refusals under every
/// policy, backpressure gauges and the Healthy -> Saturated -> Shedding
/// overload ladder (driven deterministically via ServiceClock::advance),
/// graceful drain semantics (submit-after-drain, queue shedding, tier
/// promotion intact), bit-identity of admitted jobs against the
/// sequential oracle, and — in GAIA_FAULT_INJECT builds — the watchdog's
/// cancel -> poison -> replace escalation on a deliberately stalled
/// worker.
///
//===----------------------------------------------------------------------===//

#include "runtime/AnalysisService.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "runtime/AnalysisPool.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace gaia;
using std::chrono::milliseconds;

namespace {

std::string fingerprint(const AnalysisResult &R) {
  return analysisFingerprint(R);
}

std::vector<AnalysisJob> section9Jobs() {
  std::vector<AnalysisJob> Jobs;
  for (const BenchmarkProgram &B : table123Suite())
    Jobs.push_back({B.Key, B.Source, B.GoalSpec});
  return Jobs;
}

/// The heavy blocker: PR uncached runs long enough (well over a
/// millisecond — ResilienceTest pins that a 1 ms deadline expires
/// mid-fixpoint) that admission races against it are decided by
/// microsecond-scale submits, never by the job finishing early.
AnalysisJob heavyJob() {
  const BenchmarkProgram *PR = findBenchmark("PR");
  return {"PR", PR->Source, PR->GoalSpec};
}

AnalysisJob cheapJob() {
  const BenchmarkProgram *QU = findBenchmark("QU");
  return {"QU", QU->Source, QU->GoalSpec};
}

/// Spins (bounded) until one worker has actually claimed a job, so a
/// test can park the queue behind a known-busy worker.
void awaitBusyWorker(AnalysisService &Svc) {
  for (int I = 0; I != 20000; ++I) {
    if (Svc.stats().BusyWorkers != 0)
      return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "no worker claimed a job within the spin budget";
}

class ServiceTest : public ::testing::Test {
protected:
  // Tests age queues via the process-global ServiceClock skew; drop it
  // once the test's services are gone so suites stay independent.
  void TearDown() override { ServiceClock::resetForTest(); }
};

TEST_F(ServiceTest, NamesAreStable) {
  EXPECT_STREQ(admitPolicyName(AdmitPolicy::Block), "block");
  EXPECT_STREQ(admitPolicyName(AdmitPolicy::RejectNewest), "reject-newest");
  EXPECT_STREQ(admitPolicyName(AdmitPolicy::ShedEarliestToMiss),
               "shed-earliest-to-miss");
  EXPECT_STREQ(overloadStateName(OverloadState::Healthy), "healthy");
  EXPECT_STREQ(overloadStateName(OverloadState::Saturated), "saturated");
  EXPECT_STREQ(overloadStateName(OverloadState::Shedding), "shedding");
  EXPECT_STREQ(failKindName(FailKind::Rejected), "rejected");
}

/// The acceptance pin: jobs admitted under concurrent load produce
/// results bit-identical to the sequential oracle, and the tier the
/// drain promotes serves a fresh batch bit-identically too.
TEST_F(ServiceTest, AdmittedJobsMatchTheSequentialOracleAndDrainKeepsTier) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Jobs, AnalyzerOptions{}, &Err);
  ASSERT_NE(Cache, nullptr) << Err;

  std::vector<std::string> Oracle;
  for (const AnalysisJob &J : Jobs)
    Oracle.push_back(fingerprint(analyzeProgram(J.Source, J.GoalSpec)));

  ServiceOptions SO;
  SO.Workers = 4;
  SO.QueueCapacity = 256;
  SO.Shared = Cache;
  SO.CollectDeltas = true;
  AnalysisService Svc(SO);

  std::vector<std::pair<size_t, ServiceTicketPtr>> Tickets;
  for (int Rep = 0; Rep != 3; ++Rep)
    for (size_t I = 0; I != Jobs.size(); ++I)
      Tickets.emplace_back(I, Svc.submit({Jobs[I], 0}));

  for (auto &[I, T] : Tickets) {
    const ServiceOutcome &O = T->wait();
    ASSERT_TRUE(O.Ran);
    ASSERT_TRUE(O.Outcome.Result.Ok) << O.Outcome.Result.Error;
    EXPECT_EQ(fingerprint(O.Outcome.Result), Oracle[I])
        << Jobs[I].Key << ": service result diverged from the oracle";
    EXPECT_GT(O.Seq, 0u);
  }

  ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Submitted, Tickets.size());
  EXPECT_EQ(St.Admitted, Tickets.size());
  EXPECT_EQ(St.Completed, Tickets.size());
  EXPECT_EQ(St.ShedQueued, 0u);
  EXPECT_EQ(St.Workers, 4u);

  Svc.drain(milliseconds(20000));
  EXPECT_TRUE(Svc.drained());
  EXPECT_EQ(Svc.lifecycleStats().Batches, 1u);

  // The post-drain tier serves a fresh batch bit-identically.
  std::shared_ptr<const SharedCache> Tier = Svc.tier();
  ASSERT_NE(Tier, nullptr);
  PoolOptions PO;
  PO.Workers = 2;
  PO.Shared = Tier;
  AnalysisPool Pool(PO);
  std::vector<JobOutcome> Out = Pool.run(Jobs);
  ASSERT_EQ(Out.size(), Jobs.size());
  for (size_t I = 0; I != Out.size(); ++I) {
    ASSERT_TRUE(Out[I].Result.Ok);
    EXPECT_EQ(fingerprint(Out[I].Result), Oracle[I])
        << Jobs[I].Key << ": post-drain tier changed a result";
  }
}

TEST_F(ServiceTest, RejectNewestAnswersOverflowStructurally) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 2;
  SO.Admission = AdmitPolicy::RejectNewest;
  SO.Opts.UseOpCache = false;
  SO.WatchdogPollMs = 0;
  AnalysisService Svc(SO);

  std::vector<ServiceTicketPtr> Tickets;
  for (int I = 0; I != 5; ++I)
    Tickets.push_back(Svc.submit({heavyJob(), 0}));

  uint64_t Rejected = 0;
  for (auto &T : Tickets) {
    const ServiceOutcome &O = T->wait();
    if (!O.Ran) {
      ++Rejected;
      EXPECT_FALSE(O.Outcome.Result.Ok);
      EXPECT_EQ(O.Outcome.Result.Fail, FailKind::Rejected);
      EXPECT_NE(O.Outcome.Result.Error.find("queue full"),
                std::string::npos)
          << O.Outcome.Result.Error;
      EXPECT_EQ(O.Outcome.Attempts, 0u);
    } else {
      EXPECT_TRUE(O.Outcome.Result.Ok) << O.Outcome.Result.Error;
    }
  }
  // 1 on the worker + 2 queued at most: of 5 near-instant submissions
  // at least 2 must overflow.
  EXPECT_GE(Rejected, 2u);
  EXPECT_EQ(Svc.stats().RejectedQueueFull, Rejected);
  Svc.drain(milliseconds(20000));
}

TEST_F(ServiceTest, TrySubmitNeverBlocksAndBlockPolicyWaits) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 1;
  SO.Admission = AdmitPolicy::Block;
  SO.Opts.UseOpCache = false;
  SO.WatchdogPollMs = 0;
  AnalysisService Svc(SO);

  ServiceTicketPtr Blocker = Svc.submit({heavyJob(), 0});
  awaitBusyWorker(Svc);
  ServiceTicketPtr Queued = Svc.submit({heavyJob(), 0}); // fills the queue

  // Backpressure fast path: full queue + Block policy still fails fast.
  ServiceTicketPtr Fast = Svc.trySubmit({cheapJob(), 0});
  ASSERT_TRUE(Fast->done());
  EXPECT_FALSE(Fast->wait().Ran);
  EXPECT_EQ(Fast->wait().Outcome.Result.Fail, FailKind::Rejected);

  // A blocking submit parks until the worker frees queue space, then
  // admits (never rejects).
  ServiceTicketPtr Waited;
  std::thread Submitter(
      [&] { Waited = Svc.submit({cheapJob(), 0}); });
  Submitter.join();
  const ServiceOutcome &O = Waited->wait();
  EXPECT_TRUE(O.Ran);
  EXPECT_TRUE(O.Outcome.Result.Ok) << O.Outcome.Result.Error;
  EXPECT_TRUE(Blocker->wait().Outcome.Result.Ok);
  EXPECT_TRUE(Queued->wait().Outcome.Result.Ok);
  Svc.drain(milliseconds(20000));
}

TEST_F(ServiceTest, ShedEarliestToMissEvictsTheNearestDeadline) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 2;
  SO.Admission = AdmitPolicy::ShedEarliestToMiss;
  SO.Opts.UseOpCache = false;
  SO.WatchdogPollMs = 0;
  AnalysisService Svc(SO);

  ServiceTicketPtr Blocker = Svc.submit({heavyJob(), 0});
  awaitBusyWorker(Svc);
  ServiceTicketPtr Near = Svc.submit({cheapJob(), 50});
  ServiceTicketPtr Far = Svc.submit({cheapJob(), 60000});

  // Full queue, newcomer with the farthest horizon: the nearest-deadline
  // entry is evicted with a structured refusal.
  ServiceTicketPtr Newest = Svc.submit({cheapJob(), 120000});
  ASSERT_TRUE(Near->done());
  const ServiceOutcome &ON = Near->wait();
  EXPECT_FALSE(ON.Ran);
  EXPECT_EQ(ON.Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_NE(ON.Outcome.Result.Error.find("later-deadline"),
            std::string::npos)
      << ON.Outcome.Result.Error;
  EXPECT_EQ(Svc.stats().ShedQueued, 1u);

  // Full queue, newcomer IS the earliest-to-miss: it is the one refused.
  ServiceTicketPtr Doomed = Svc.submit({cheapJob(), 1});
  ASSERT_TRUE(Doomed->done());
  EXPECT_EQ(Doomed->wait().Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_EQ(Svc.stats().RejectedQueueFull, 1u);

  EXPECT_TRUE(Far->wait().Outcome.Result.Ok);
  EXPECT_TRUE(Newest->wait().Outcome.Result.Ok);
  EXPECT_TRUE(Blocker->wait().Outcome.Result.Ok);
  Svc.drain(milliseconds(20000));
}

TEST_F(ServiceTest, OverloadStateFollowsQueueAgeAndShedsAtAdmission) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 8;
  SO.Admission = AdmitPolicy::RejectNewest;
  SO.Opts.UseOpCache = false;
  SO.WatchdogPollMs = 0;
  AnalysisService Svc(SO);
  EXPECT_EQ(Svc.overloadState(), OverloadState::Healthy);

  // Seed the job-time EWMA with one completed heavy job (>= 1 ms).
  Svc.submit({heavyJob(), 0})->wait();
  EXPECT_GT(Svc.stats().AvgJobMs, 0.0);
  EXPECT_EQ(Svc.overloadState(), OverloadState::Healthy);

  ServiceTicketPtr Blocker = Svc.submit({heavyJob(), 0});
  awaitBusyWorker(Svc);
  ServiceTicketPtr Head = Svc.submit({cheapJob(), 100}); // queue head

  // Age the queue deterministically: half the shedding horizon makes the
  // service Saturated, the full horizon makes it Shedding.
  ServiceClock::advance(milliseconds(60));
  EXPECT_EQ(Svc.overloadState(), OverloadState::Saturated);
  ServiceClock::advance(milliseconds(60));
  EXPECT_EQ(Svc.overloadState(), OverloadState::Shedding);

  // Under Shedding, a deadline the estimated wait already exceeds is
  // refused at admission rather than shed later at dequeue.
  ServiceTicketPtr Shed = Svc.submit({cheapJob(), 1});
  ASSERT_TRUE(Shed->done());
  EXPECT_FALSE(Shed->wait().Ran);
  EXPECT_EQ(Shed->wait().Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_EQ(Svc.stats().RejectedShedding, 1u);

  // A deadline-free submission is never shed at admission.
  ServiceTicketPtr Free = Svc.submit({cheapJob(), 0});
  EXPECT_FALSE(Free->done());

  ServiceStats St = Svc.stats();
  EXPECT_EQ(St.QueueDepth, 2u);
  EXPECT_GE(St.OldestQueuedMs, 120.0);
  EXPECT_GE(St.PeakQueueDepth, 2u);

  Svc.drain(milliseconds(20000));
  // The aged head missed its deadline while queued: shed at dequeue with
  // a structured refusal, not run to a pointless Deadline failure.
  const ServiceOutcome &OH = Head->wait();
  EXPECT_FALSE(OH.Ran);
  EXPECT_EQ(OH.Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_NE(OH.Outcome.Result.Error.find("expired in queue"),
            std::string::npos)
      << OH.Outcome.Result.Error;
  EXPECT_TRUE(Blocker->wait().Outcome.Result.Ok);
  EXPECT_TRUE(Free->wait().Outcome.Result.Ok);
  EXPECT_GE(Svc.stats().ShedQueued, 1u);
}

TEST_F(ServiceTest, SubmitAfterDrainIsRejectedStructurally) {
  ServiceOptions SO;
  SO.Workers = 2;
  AnalysisService Svc(SO);
  Svc.drain(milliseconds(1000));
  EXPECT_TRUE(Svc.drained());

  ServiceTicketPtr T = Svc.submit({cheapJob(), 0});
  ASSERT_TRUE(T->done());
  EXPECT_FALSE(T->wait().Ran);
  EXPECT_EQ(T->wait().Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_NE(T->wait().Outcome.Result.Error.find("draining"),
            std::string::npos);

  ServiceTicketPtr T2 = Svc.trySubmit({cheapJob(), 0});
  ASSERT_TRUE(T2->done());
  EXPECT_EQ(T2->wait().Outcome.Result.Fail, FailKind::Rejected);
  EXPECT_EQ(Svc.stats().RejectedDraining, 2u);

  Svc.drain(milliseconds(0)); // idempotent
  EXPECT_TRUE(Svc.drained());
}

TEST_F(ServiceTest, ZeroBudgetDrainShedsTheSaturatedQueueStructurally) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 16;
  SO.Opts.UseOpCache = false;
  AnalysisService Svc(SO);

  ServiceTicketPtr Blocker = Svc.submit({heavyJob(), 0});
  awaitBusyWorker(Svc);
  std::vector<ServiceTicketPtr> Queued;
  for (int I = 0; I != 8; ++I)
    Queued.push_back(Svc.submit({cheapJob(), 0}));

  Svc.drain(milliseconds(0));
  EXPECT_TRUE(Svc.drained());

  // Every queued job: resolved, structured, FailKind::Rejected.
  for (auto &T : Queued) {
    ASSERT_TRUE(T->done());
    const ServiceOutcome &O = T->wait();
    EXPECT_FALSE(O.Ran);
    EXPECT_FALSE(O.Outcome.Result.Ok);
    EXPECT_EQ(O.Outcome.Result.Fail, FailKind::Rejected);
    EXPECT_NE(O.Outcome.Result.Error.find("shed at drain"),
              std::string::npos)
        << O.Outcome.Result.Error;
  }
  EXPECT_EQ(Svc.stats().ShedQueued, 8u);

  // The in-flight blocker was cancelled past the budget (or beat the
  // cancel); either way its ticket resolves structurally.
  ASSERT_TRUE(Blocker->done());
  const ServiceOutcome &OB = Blocker->wait();
  EXPECT_TRUE(OB.Ran);
  if (!OB.Outcome.Result.Ok)
    EXPECT_EQ(OB.Outcome.Result.Fail, FailKind::Cancelled)
        << OB.Outcome.Result.Error;
}

TEST_F(ServiceTest, CallerCancelResolvesAQueuedJobAsCancelled) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 4;
  SO.Opts.UseOpCache = false;
  SO.WatchdogPollMs = 0;
  AnalysisService Svc(SO);

  ServiceTicketPtr Blocker = Svc.submit({heavyJob(), 0});
  awaitBusyWorker(Svc);
  ServiceTicketPtr T = Svc.submit({cheapJob(), 0});
  T->cancel(); // withdrawn while still queued
  const ServiceOutcome &O = T->wait();
  EXPECT_TRUE(O.Ran);
  EXPECT_FALSE(O.Outcome.Result.Ok);
  EXPECT_EQ(O.Outcome.Result.Fail, FailKind::Cancelled);
  EXPECT_TRUE(Blocker->wait().Outcome.Result.Ok);
  Svc.drain(milliseconds(20000));
}

#ifdef GAIA_FAULT_INJECT

class ServiceFaultInjection : public ::testing::Test {
protected:
  void TearDown() override {
    faultinject::configure(0.0, 1);
    faultinject::configureStall(0.0, 0);
    ServiceClock::resetForTest();
  }
};

/// The watchdog pin: a worker stalled blind (sleeping between poll
/// points, so cooperative cancellation cannot land) is first cancelled,
/// then its slot poisoned and replaced — and the replacement serves the
/// next job while the straggler is still asleep.
TEST_F(ServiceFaultInjection, WatchdogRecoversAStalledWorker) {
  faultinject::configure(0.0, 1);       // no thrown faults...
  faultinject::configureStall(1.0, 200); // ...every probe stalls 200 ms

  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 8;
  SO.WatchdogPollMs = 5;
  SO.WatchdogCancelMultiple = 2.0; // cancel at 20 ms of a 10 ms deadline
  SO.WatchdogPoisonMultiple = 4.0; // poison at 40 ms — mid-stall
  AnalysisService Svc(SO);

  ServiceTicketPtr Stuck = Svc.submit({cheapJob(), 10});
  awaitBusyWorker(Svc);
  // Let the job reach its first probe and start the blind 200 ms sleep,
  // then disarm the stall so the replacement worker runs clean (the
  // stall config is read live, so this also caps the straggler at the
  // stall it is already inside).
  std::this_thread::sleep_for(milliseconds(30));
  faultinject::configureStall(0.0, 0);

  ServiceTicketPtr Follow = Svc.submit({cheapJob(), 0});
  const ServiceOutcome &OF = Follow->wait();
  EXPECT_TRUE(OF.Ran);
  EXPECT_TRUE(OF.Outcome.Result.Ok) << OF.Outcome.Result.Error;

  // The straggler comes home when its sleep ends: ticket resolved with
  // a structured unwind, never lost.
  const ServiceOutcome &OS = Stuck->wait();
  EXPECT_TRUE(OS.Ran);
  EXPECT_FALSE(OS.Outcome.Result.Ok);
  EXPECT_TRUE(OS.Outcome.Result.Fail == FailKind::Cancelled ||
              OS.Outcome.Result.Fail == FailKind::Deadline)
      << failKindName(OS.Outcome.Result.Fail);

  ServiceStats St = Svc.stats();
  EXPECT_GE(St.WatchdogCancels, 1u);
  EXPECT_GE(St.WatchdogPoisoned, 1u);
  EXPECT_GE(St.WorkersReplaced, 1u);
  EXPECT_GT(faultinject::totalStalls(), 0u);

  Svc.drain(milliseconds(5000));
  EXPECT_TRUE(Svc.drained());
}

#else

TEST(ServiceFaultInjection, SkippedWithoutChaosBuild) {
  GTEST_SKIP() << "build with -DGAIA_FAULT_INJECT=ON for the chaos tests";
}

#endif // GAIA_FAULT_INJECT

} // namespace
