//===- tests/GraphOpsTest.cpp - Inclusion/intersection/union tests --------==//
///
/// \file
/// Unit and property tests for the three primitive operations of Section
/// 6.9. The property sweeps draw graphs from a seeded random generator
/// and check the lattice laws that soundness of the analysis rests on.
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

#include <random>

using namespace gaia;

namespace {

class GraphOpsTest : public ::testing::Test {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_F(GraphOpsTest, BottomIsLeast) {
  TypeGraph Bot = TypeGraph::makeBottom();
  TypeGraph Any = TypeGraph::makeAny();
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  EXPECT_TRUE(graphIncludes(Any, Bot, Syms));
  EXPECT_TRUE(graphIncludes(List, Bot, Syms));
  EXPECT_TRUE(graphIncludes(Bot, Bot, Syms));
  EXPECT_FALSE(graphIncludes(Bot, Any, Syms));
}

TEST_F(GraphOpsTest, AnyIsGreatest) {
  TypeGraph Any = TypeGraph::makeAny();
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  TypeGraph Int = TypeGraph::makeInt();
  EXPECT_TRUE(graphIncludes(Any, List, Syms));
  EXPECT_TRUE(graphIncludes(Any, Int, Syms));
  EXPECT_FALSE(graphIncludes(List, Any, Syms));
  EXPECT_FALSE(graphIncludes(Int, Any, Syms));
}

TEST_F(GraphOpsTest, IntegerLiteralsAreBelowInt) {
  TypeGraph Zero = parse("T ::= 0.");
  TypeGraph Int = TypeGraph::makeInt();
  EXPECT_TRUE(graphIncludes(Int, Zero, Syms));
  EXPECT_FALSE(graphIncludes(Zero, Int, Syms));
  TypeGraph Atom = parse("T ::= foo.");
  EXPECT_FALSE(graphIncludes(Int, Atom, Syms));
}

TEST_F(GraphOpsTest, FiniteListsIncludedInAnyList) {
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  TypeGraph UpTo2 = parse("T ::= [] | cons(Any,T1).\n"
                          "T1 ::= [] | cons(Any,T2).\n"
                          "T2 ::= [].");
  EXPECT_TRUE(graphIncludes(List, UpTo2, Syms));
  EXPECT_FALSE(graphIncludes(UpTo2, List, Syms));
}

TEST_F(GraphOpsTest, ListsOfIntsIncludedInLists) {
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  TypeGraph IntList = parse("T ::= [] | cons(Int,T).");
  EXPECT_TRUE(graphIncludes(List, IntList, Syms));
  EXPECT_FALSE(graphIncludes(IntList, List, Syms));
}

TEST_F(GraphOpsTest, NestedGrammarInclusion) {
  // From Figure 1's analysis: lists of lists of a|b are lists of lists.
  TypeGraph Inner = parse("T ::= [] | cons(T1,T).\n"
                          "T1 ::= [] | cons(T2,T1).\n"
                          "T2 ::= a | b.");
  TypeGraph Outer = parse("T ::= [] | cons(T1,T).\n"
                          "T1 ::= [] | cons(Any,T1).");
  EXPECT_TRUE(graphIncludes(Outer, Inner, Syms));
  EXPECT_FALSE(graphIncludes(Inner, Outer, Syms));
}

TEST_F(GraphOpsTest, IntersectListWithConsShape) {
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  TypeGraph Cons = parse("T ::= cons(Any,Any).");
  TypeGraph Meet = graphIntersect(List, Cons, Syms);
  TypeGraph Expect = parse("T ::= cons(Any,T1).\nT1 ::= [] | cons(Any,T1).");
  EXPECT_TRUE(graphEquals(Meet, Expect, Syms))
      << printGrammar(Meet, Syms);
}

TEST_F(GraphOpsTest, IntersectDisjointFunctorsIsBottom) {
  TypeGraph A = parse("T ::= f(Any).");
  TypeGraph B = parse("T ::= g(Any).");
  EXPECT_TRUE(graphIntersect(A, B, Syms).isBottomGraph());
}

TEST_F(GraphOpsTest, IntersectPrunesEmptyArguments) {
  // f(a) /\ f(b) is empty even though both sides have functor f.
  TypeGraph A = parse("T ::= f(A).\nA ::= a.");
  TypeGraph B = parse("T ::= f(B).\nB ::= b.");
  EXPECT_TRUE(graphIntersect(A, B, Syms).isBottomGraph());
}

TEST_F(GraphOpsTest, IntersectIntWithLiteral) {
  TypeGraph Int = TypeGraph::makeInt();
  TypeGraph ZeroOrAtom = parse("T ::= 0 | foo.");
  TypeGraph Meet = graphIntersect(Int, ZeroOrAtom, Syms);
  TypeGraph Expect = parse("T ::= 0.");
  EXPECT_TRUE(graphEquals(Meet, Expect, Syms));
}

TEST_F(GraphOpsTest, IntersectRecursiveGrammars) {
  // Lists of ints /\ lists of (ints or atoms) = lists of ints.
  TypeGraph A = parse("T ::= [] | cons(Int,T).");
  TypeGraph B = parse("T ::= [] | cons(E,T).\nE ::= Int | foo.");
  TypeGraph Meet = graphIntersect(A, B, Syms);
  EXPECT_TRUE(graphEquals(Meet, A, Syms)) << printGrammar(Meet, Syms);
}

TEST_F(GraphOpsTest, UnionMergesSameFunctorAlternatives) {
  TypeGraph A = parse("T ::= f(A1).\nA1 ::= a.");
  TypeGraph B = parse("T ::= f(B1).\nB1 ::= b.");
  TypeGraph Join = graphUnion(A, B, Syms);
  TypeGraph Expect = parse("T ::= f(E).\nE ::= a | b.");
  EXPECT_TRUE(graphEquals(Join, Expect, Syms)) << printGrammar(Join, Syms);
}

TEST_F(GraphOpsTest, UnionKeepsDistinctFunctors) {
  TypeGraph A = parse("T ::= f(Any).");
  TypeGraph B = parse("T ::= g(Any) | h.");
  TypeGraph Join = graphUnion(A, B, Syms);
  TypeGraph Expect = parse("T ::= f(Any) | g(Any) | h.");
  EXPECT_TRUE(graphEquals(Join, Expect, Syms));
}

TEST_F(GraphOpsTest, UnionWithAnyCollapses) {
  TypeGraph A = TypeGraph::makeAny();
  TypeGraph B = TypeGraph::makeAnyList(Syms);
  EXPECT_TRUE(graphEquals(graphUnion(A, B, Syms), A, Syms));
}

TEST_F(GraphOpsTest, UnionAbsorbsLiteralIntoInt) {
  TypeGraph A = TypeGraph::makeInt();
  TypeGraph B = parse("T ::= 7 | foo.");
  TypeGraph Join = graphUnion(A, B, Syms);
  TypeGraph Expect = parse("T ::= Int | foo.");
  EXPECT_TRUE(graphEquals(Join, Expect, Syms)) << printGrammar(Join, Syms);
}

TEST_F(GraphOpsTest, OrCapCollapsesWideDisjunctions) {
  TypeGraph Wide = parse("T ::= a | b | c | d | e | f.");
  NormalizeOptions Cap2;
  Cap2.OrCap = 2;
  TypeGraph Capped = normalizeGraph(Wide, Syms, Cap2);
  EXPECT_TRUE(graphEquals(Capped, TypeGraph::makeAny(), Syms));
  NormalizeOptions Cap8;
  Cap8.OrCap = 8;
  TypeGraph Kept = normalizeGraph(Wide, Syms, Cap8);
  EXPECT_TRUE(graphEquals(Kept, Wide, Syms));
}

//===----------------------------------------------------------------------===//
// Property tests over randomly generated graphs.
//===----------------------------------------------------------------------===//

/// Builds a random (normalized) type graph from a seed. Functor alphabet
/// is small so unions/intersections overlap often.
static TypeGraph randomGraph(SymbolTable &Syms, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Pick(0, 99);
  TypeGraph G;
  // A handful of or-nodes wired randomly, then normalized.
  constexpr unsigned NumOrs = 6;
  std::vector<NodeId> Ors;
  for (unsigned I = 0; I != NumOrs; ++I)
    Ors.push_back(G.addOr({}));
  FunctorId Fns[] = {Syms.functor("f", 1), Syms.functor("g", 2),
                     Syms.functor("a", 0), Syms.functor("b", 0),
                     Syms.consFunctor(), Syms.nilFunctor(),
                     Syms.functor("0", 0)};
  for (unsigned I = 0; I != NumOrs; ++I) {
    std::vector<NodeId> Children;
    unsigned NumAlts = 1 + Pick(Rng) % 3;
    for (unsigned J = 0; J != NumAlts; ++J) {
      int K = Pick(Rng);
      if (K < 10) {
        Children.push_back(G.addAny());
      } else if (K < 20) {
        Children.push_back(G.addInt());
      } else {
        FunctorId Fn = Fns[Pick(Rng) % 7];
        std::vector<NodeId> Args;
        for (uint32_t A = 0; A != Syms.functorArity(Fn); ++A)
          Args.push_back(Ors[Pick(Rng) % NumOrs]);
        Children.push_back(G.addFunc(Fn, std::move(Args)));
      }
    }
    G.node(Ors[I]).Succs = std::move(Children);
  }
  G.setRoot(Ors[0]);
  return normalizeGraph(G, Syms);
}

class GraphOpsPropertyTest : public ::testing::TestWithParam<uint32_t> {
protected:
  SymbolTable Syms;
};

TEST_P(GraphOpsPropertyTest, NormalizedGraphsValidate) {
  TypeGraph G = randomGraph(Syms, GetParam());
  std::string Why;
  EXPECT_TRUE(G.validate(Syms, &Why)) << Why;
}

TEST_P(GraphOpsPropertyTest, InclusionIsReflexive) {
  TypeGraph G = randomGraph(Syms, GetParam());
  EXPECT_TRUE(graphIncludes(G, G, Syms));
}

TEST_P(GraphOpsPropertyTest, UnionIsUpperBound) {
  TypeGraph A = randomGraph(Syms, GetParam());
  TypeGraph B = randomGraph(Syms, GetParam() + 1000003);
  TypeGraph J = graphUnion(A, B, Syms);
  EXPECT_TRUE(graphIncludes(J, A, Syms));
  EXPECT_TRUE(graphIncludes(J, B, Syms));
}

TEST_P(GraphOpsPropertyTest, UnionIsCommutativeSemantically) {
  TypeGraph A = randomGraph(Syms, GetParam());
  TypeGraph B = randomGraph(Syms, GetParam() + 1000003);
  EXPECT_TRUE(graphEquals(graphUnion(A, B, Syms), graphUnion(B, A, Syms),
                          Syms));
}

TEST_P(GraphOpsPropertyTest, IntersectionIsLowerBoundOfUnionSides) {
  TypeGraph A = randomGraph(Syms, GetParam());
  TypeGraph B = randomGraph(Syms, GetParam() + 1000003);
  TypeGraph M = graphIntersect(A, B, Syms);
  // Exact intersection is below both sides.
  EXPECT_TRUE(graphIncludes(A, M, Syms));
  EXPECT_TRUE(graphIncludes(B, M, Syms));
}

TEST_P(GraphOpsPropertyTest, IntersectWithSelfIsIdentity) {
  TypeGraph A = randomGraph(Syms, GetParam());
  EXPECT_TRUE(graphEquals(graphIntersect(A, A, Syms), A, Syms));
}

TEST_P(GraphOpsPropertyTest, UnionWithSelfIsIdentity) {
  TypeGraph A = randomGraph(Syms, GetParam());
  EXPECT_TRUE(graphEquals(graphUnion(A, A, Syms), A, Syms));
}

TEST_P(GraphOpsPropertyTest, InclusionAgreesWithUnion) {
  // A <= B  iff  A \/ B == B.
  TypeGraph A = randomGraph(Syms, GetParam());
  TypeGraph B = randomGraph(Syms, GetParam() + 1000003);
  bool Incl = graphIncludes(B, A, Syms);
  bool JoinEq = graphEquals(graphUnion(A, B, Syms), B, Syms);
  EXPECT_EQ(Incl, JoinEq);
}

TEST_P(GraphOpsPropertyTest, IntersectBelowUnion) {
  TypeGraph A = randomGraph(Syms, GetParam());
  TypeGraph B = randomGraph(Syms, GetParam() + 1000003);
  EXPECT_TRUE(graphIncludes(graphUnion(A, B, Syms),
                            graphIntersect(A, B, Syms), Syms));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOpsPropertyTest,
                         ::testing::Range(0u, 40u));

} // namespace
