//===- tests/WideningReference.h - From-scratch Section 7 widening --------==//
///
/// \file
/// The pre-fast-path widening implementation, kept verbatim as an
/// executable specification: no interned pf-sets, no topology caches, no
/// scratch reuse, no incremental clash recomputation — every step
/// rederives everything from the graph via the public API and compacts
/// after every transform. tests/WideningPropertyTest.cpp checks that the
/// production graphWiden (typegraph/Widening.cpp) is *bit-identical* to
/// this on seeded random inputs: the optimization layers must be
/// unobservable.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TESTS_WIDENINGREFERENCE_H
#define GAIA_TESTS_WIDENINGREFERENCE_H

#include "support/Hashing.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Normalize.h"
#include "typegraph/TypeGraph.h"
#include "typegraph/Widening.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

namespace gaia::reference {

struct Clash {
  NodeId Vo;
  NodeId Vn;
};

inline bool pfSubset(const std::vector<FunctorId> &A,
                     const std::vector<FunctorId> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

/// Widening clashes WTC(Go, Gn) by walking the correspondence relation of
/// Definition 7.1.
inline std::vector<Clash>
wideningClashes(const TypeGraph &Go, const TypeGraph::Topology &TopoO,
                const TypeGraph &Gn, const TypeGraph::Topology &TopoN,
                const SymbolTable &Syms) {
  std::vector<Clash> Result;
  std::unordered_set<std::pair<NodeId, NodeId>, PairHash> Visited;
  std::deque<std::pair<NodeId, NodeId>> Queue;
  Queue.emplace_back(Go.root(), Gn.root());
  while (!Queue.empty()) {
    auto [Vo, Vn] = Queue.front();
    Queue.pop_front();
    if (!Visited.insert({Vo, Vn}).second)
      continue;
    const TGNode &No = Go.node(Vo);
    const TGNode &Nn = Gn.node(Vn);
    if (No.Kind == NodeKind::Func && Nn.Kind == NodeKind::Func) {
      for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
        Queue.emplace_back(No.Succs[J], Nn.Succs[J]);
      continue;
    }
    if (No.Kind != NodeKind::Or || Nn.Kind != NodeKind::Or)
      continue;
    bool SameDepth = TopoO.Depth[Vo] == TopoN.Depth[Vn];
    std::vector<FunctorId> PfO = Go.pfSet(Vo, Syms);
    std::vector<FunctorId> PfN = Gn.pfSet(Vn, Syms);
    if (SameDepth && PfO == PfN) {
      if (No.Succs.size() == Nn.Succs.size())
        for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
          Queue.emplace_back(No.Succs[J], Nn.Succs[J]);
      continue;
    }
    if (PfN.empty())
      continue;
    bool PfClash = PfO != PfN && SameDepth;
    bool DepthClash = TopoO.Depth[Vo] < TopoN.Depth[Vn];
    if (PfClash || DepthClash)
      Result.push_back({Vo, Vn});
  }
  std::sort(Result.begin(), Result.end(), [&](const Clash &A, const Clash &B) {
    if (TopoN.Depth[A.Vn] != TopoN.Depth[B.Vn])
      return TopoN.Depth[A.Vn] < TopoN.Depth[B.Vn];
    if (A.Vn != B.Vn)
      return A.Vn < B.Vn;
    return A.Vo < B.Vo;
  });
  return Result;
}

inline std::vector<NodeId> orAncestors(const TypeGraph &G,
                                       const TypeGraph::Topology &Topo,
                                       NodeId V) {
  std::vector<NodeId> Result;
  for (NodeId P = Topo.Parent[V]; P != InvalidNode; P = Topo.Parent[P])
    if (G.node(P).Kind == NodeKind::Or)
      Result.push_back(P);
  return Result;
}

/// One pass of the widen() loop: copy-based transforms via
/// detail::graftReplace, full recompute of topologies and clashes.
inline bool applyOneTransform(const TypeGraph &Go, TypeGraph &Gn,
                              const SymbolTable &Syms,
                              const WideningOptions &Opts) {
  TypeGraph::Topology TopoO = Go.computeTopology();
  TypeGraph::Topology TopoN = Gn.computeTopology();
  std::vector<Clash> Clashes = wideningClashes(Go, TopoO, Gn, TopoN, Syms);
  if (Clashes.empty())
    return false;

  // Cycle introduction rule (Definition 7.4).
  for (const Clash &C : Clashes) {
    if (C.Vn == Gn.root())
      continue;
    std::vector<FunctorId> PfN = Gn.pfSet(C.Vn, Syms);
    for (NodeId Va : orAncestors(Gn, TopoN, C.Vn)) {
      if (TopoO.Depth[C.Vo] < TopoN.Depth[Va])
        continue;
      std::vector<FunctorId> PfA = Gn.pfSet(Va, Syms);
      if (!pfSubset(PfN, PfA))
        continue;
      if (!vertexIncludes(Gn, Va, Gn, C.Vn, Syms))
        continue;
      NodeId Parent = TopoN.Parent[C.Vn];
      for (NodeId &S : Gn.node(Parent).Succs)
        if (S == C.Vn)
          S = Va;
      Gn = Gn.compact();
      return true;
    }
  }

  // Replacement rule (Definition 7.5).
  for (const Clash &C : Clashes) {
    std::vector<FunctorId> PfN = Gn.pfSet(C.Vn, Syms);
    bool DepthClash = TopoO.Depth[C.Vo] < TopoN.Depth[C.Vn];
    for (NodeId Va : orAncestors(Gn, TopoN, C.Vn)) {
      if (TopoO.Depth[C.Vo] < TopoN.Depth[Va])
        continue;
      if (vertexIncludes(Gn, Va, Gn, C.Vn, Syms))
        continue;
      std::vector<FunctorId> PfA = Gn.pfSet(Va, Syms);
      if (!pfSubset(PfN, PfA) && !DepthClash)
        continue;
      uint64_t OldSize = Gn.sizeMetric();
      if (Opts.Database) {
        const TypeGraph *Best = nullptr;
        for (const TypeGraph &D : *Opts.Database) {
          if (!vertexIncludes(D, D.root(), Gn, Va, Syms) ||
              !vertexIncludes(D, D.root(), Gn, C.Vn, Syms))
            continue;
          if (!Best || D.sizeMetric() < Best->sizeMetric())
            Best = &D;
        }
        if (Best) {
          TypeGraph Candidate = detail::graftReplace(Gn, Va, *Best, TopoN);
          if (Candidate.sizeMetric() < OldSize) {
            Gn = std::move(Candidate);
            return true;
          }
        }
      }
      TypeGraph Rep =
          collapsingUnionFrom(Gn, {Va, C.Vn}, Syms, Opts.Norm);
      TypeGraph Candidate = detail::graftReplace(Gn, Va, Rep, TopoN);
      if (Candidate.sizeMetric() < OldSize) {
        Gn = std::move(Candidate);
        return true;
      }
      TypeGraph AnyRep = TypeGraph::makeAny();
      Candidate = detail::graftReplace(Gn, Va, AnyRep, TopoN);
      if (Candidate.sizeMetric() < OldSize) {
        Gn = std::move(Candidate);
        return true;
      }
    }
  }
  return false;
}

/// The reference Gold V Gnew (WidenMode::Paper only).
inline TypeGraph widen(const TypeGraph &Gold, const TypeGraph &Gnew,
                       const SymbolTable &Syms,
                       const WideningOptions &Opts = {}) {
  if (graphIncludes(Gold, Gnew, Syms))
    return Gold;
  if (Gold.isBottomGraph())
    return normalizeGraph(Gnew, Syms, Opts.Norm);
  TypeGraph Gn = graphUnion(Gold, Gnew, Syms, Opts.Norm);
  uint32_t Transforms = 0;
  while (applyOneTransform(Gold, Gn, Syms, Opts)) {
    ++Transforms;
    if (Transforms > Opts.MaxTransforms)
      return TypeGraph::makeAny();
  }
  if (Transforms != 0)
    Gn = normalizeGraph(Gn, Syms, Opts.Norm);
  return Gn;
}

} // namespace gaia::reference

#endif // GAIA_TESTS_WIDENINGREFERENCE_H
