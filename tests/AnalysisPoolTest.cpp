//===- tests/AnalysisPoolTest.cpp - Batch runtime determinism tests -------==//
///
/// \file
/// The contract of the concurrent batch runtime (runtime/AnalysisPool.h,
/// runtime/SharedCache.h): analyses run over the frozen shared cache
/// tier — on any number of workers, in any scheduling order — produce
/// results bit-identical to a cold sequential analyzeProgram run. Also
/// covers the tier mechanics: id-space layering, compatibility gating,
/// re-freezing a batch on top of a previous batch's tier.
///
//===----------------------------------------------------------------------===//

#include "runtime/AnalysisPool.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "runtime/TierLifecycle.h"
#include "typegraph/GrammarParser.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace gaia;

namespace {

/// The bit-identity contract (core/Report.h analysisFingerprint):
/// iteration counts, convergence, output grammars, tag tables — the
/// exact string bench/throughput.cpp gates on.
std::string fingerprint(const AnalysisResult &R) {
  return analysisFingerprint(R);
}

std::vector<AnalysisJob> section9Jobs() {
  std::vector<AnalysisJob> Jobs;
  for (const BenchmarkProgram &B : table123Suite())
    Jobs.push_back({B.Key, B.Source, B.GoalSpec});
  return Jobs;
}

class AnalysisPoolTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    std::string Err;
    Cache = SharedCache::build(section9Jobs(), AnalyzerOptions{}, &Err);
    ASSERT_NE(Cache, nullptr) << Err;
  }
  static void TearDownTestSuite() { Cache.reset(); }

  static std::shared_ptr<const SharedCache> Cache;
};

std::shared_ptr<const SharedCache> AnalysisPoolTest::Cache;

TEST_F(AnalysisPoolTest, BuildPopulatesTheTier) {
  const SharedCache::BuildStats &St = Cache->stats();
  EXPECT_EQ(St.WarmupJobs, table123Suite().size());
  EXPECT_TRUE(St.AllConverged);
  EXPECT_GT(St.Graphs, 100u) << "warmup should intern hundreds of languages";
  EXPECT_GT(St.OpResults, 1000u);
  EXPECT_GT(St.Symbols, 0u);
  EXPECT_EQ(Cache->ops()->Intern->size(), St.Graphs);
}

TEST_F(AnalysisPoolTest, SharedTierRunsAreBitIdenticalToColdRuns) {
  for (const BenchmarkProgram &B : table123Suite()) {
    AnalysisResult Cold = analyzeProgram(B.Source, B.GoalSpec);
    AnalyzerOptions WithTier;
    WithTier.Shared = Cache;
    AnalysisResult Tiered = analyzeProgram(B.Source, B.GoalSpec, WithTier);
    ASSERT_TRUE(Cold.Ok && Tiered.Ok) << B.Key;
    EXPECT_EQ(fingerprint(Cold), fingerprint(Tiered)) << B.Key;
    // The warmup ran exactly this job, so the tier must resolve a large
    // share of its operations.
    EXPECT_GT(Tiered.Stats.OpCacheSharedHits, 0u) << B.Key;
    EXPECT_EQ(Cold.Stats.OpCacheSharedHits, 0u);
  }
}

TEST_F(AnalysisPoolTest, PoolResultsMatchSequentialOnEveryWorkerCount) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  // Two waves of the batch, interleaved, so workers contend.
  std::vector<AnalysisJob> Batch;
  for (const AnalysisJob &J : Jobs) {
    Batch.push_back(J);
    Batch.push_back(J);
  }
  std::vector<std::string> Oracle;
  for (const AnalysisJob &J : Batch)
    Oracle.push_back(fingerprint(analyzeProgram(J.Source, J.GoalSpec)));

  for (uint32_t Workers : {1u, 4u, 8u}) {
    PoolOptions PO;
    PO.Workers = Workers;
    PO.Shared = Cache;
    AnalysisPool Pool(PO);
    EXPECT_EQ(Pool.workers(), Workers);
    BatchStats St;
    std::vector<JobOutcome> Out = Pool.run(Batch, &St);
    ASSERT_EQ(Out.size(), Batch.size());
    EXPECT_TRUE(St.AllOk);
    EXPECT_TRUE(St.AllConverged);
    EXPECT_EQ(St.Jobs, Batch.size());
    EXPECT_GT(St.SharedHits, 0u);
    for (size_t I = 0; I != Out.size(); ++I)
      EXPECT_EQ(Oracle[I], fingerprint(Out[I].Result))
          << Batch[I].Key << " on " << Workers << " workers";
  }
}

TEST_F(AnalysisPoolTest, EmptyBatchAndRepeatedRunsAreFine) {
  PoolOptions PO;
  PO.Workers = 2;
  PO.Shared = Cache;
  AnalysisPool Pool(PO);
  BatchStats St;
  EXPECT_TRUE(Pool.run({}, &St).empty());
  EXPECT_EQ(St.Jobs, 0u);
  // Several batches through one pool: threads are reused.
  std::vector<AnalysisJob> One{{"QU", findBenchmark("QU")->Source,
                                findBenchmark("QU")->GoalSpec}};
  for (int I = 0; I != 3; ++I) {
    std::vector<JobOutcome> Out = Pool.run(One, &St);
    ASSERT_EQ(Out.size(), 1u);
    EXPECT_TRUE(Out[0].Result.Ok);
  }
}

TEST_F(AnalysisPoolTest, IncompatibleOptionsBypassTheTierSoundly) {
  const BenchmarkProgram *B = findBenchmark("KA");
  AnalyzerOptions Capped;
  Capped.OrCap = 2;
  AnalysisResult Cold = analyzeProgram(B->Source, B->GoalSpec, Capped);
  Capped.Shared = Cache; // built with OrCap = 0: incompatible
  EXPECT_FALSE(Cache->compatibleWith(Capped));
  AnalysisResult Tiered = analyzeProgram(B->Source, B->GoalSpec, Capped);
  EXPECT_EQ(fingerprint(Cold), fingerprint(Tiered));
  EXPECT_EQ(Tiered.Stats.OpCacheSharedHits, 0u)
      << "an incompatible tier must not be consulted";

  AnalyzerOptions Compatible;
  Compatible.Shared = Cache;
  EXPECT_TRUE(Cache->compatibleWith(Compatible));
  AnalyzerOptions PF;
  PF.Domain = DomainKind::PrincipalFunctors;
  PF.Shared = Cache;
  EXPECT_FALSE(Cache->compatibleWith(PF));
  AnalysisResult PFRun = analyzeProgram(B->Source, B->GoalSpec, PF);
  EXPECT_TRUE(PFRun.Ok) << PFRun.Error;
}

TEST_F(AnalysisPoolTest, RefreezingLayersANewTierOverTheOld) {
  // A second batch (new programs) frozen on top of the Section 9 tier:
  // the merged tier keeps every old language (ids preserved) and adds
  // the new ones.
  std::vector<AnalysisJob> Extra;
  Extra.push_back({"nrev",
                   "app([],L,L).\n"
                   "app([X|T],L,[X|R]) :- app(T,L,R).\n"
                   "nrev([],[]).\n"
                   "nrev([X|T],R) :- nrev(T,RT), app(RT,[X],R).\n",
                   "nrev(any,any)"});
  AnalyzerOptions Opts;
  Opts.Shared = Cache;
  std::string Err;
  std::shared_ptr<const SharedCache> Merged =
      SharedCache::build(Extra, Opts, &Err);
  ASSERT_NE(Merged, nullptr) << Err;
  EXPECT_GE(Merged->stats().Graphs, Cache->stats().Graphs);
  EXPECT_GE(Merged->stats().OpResults, Cache->stats().OpResults);

  // Jobs from both batches resolve against the merged tier.
  AnalyzerOptions WithMerged;
  WithMerged.Shared = Merged;
  for (const AnalysisJob &J :
       {Extra[0], AnalysisJob{"KA", findBenchmark("KA")->Source,
                              findBenchmark("KA")->GoalSpec}}) {
    AnalysisResult Cold = analyzeProgram(J.Source, J.GoalSpec);
    AnalysisResult Tiered = analyzeProgram(J.Source, J.GoalSpec, WithMerged);
    EXPECT_EQ(fingerprint(Cold), fingerprint(Tiered)) << J.Key;
    EXPECT_GT(Tiered.Stats.OpCacheSharedHits, 0u) << J.Key;
  }
}

/// Three stacked generations on one pool, with promotion and compaction
/// interleaved between batches (the tier-lifecycle rotation the batch
/// service runs). Every job of every generation must stay bit-identical
/// to its cold run while the tier underneath is promoted (ids stacked)
/// and then compacted (ids renumbered through relocation tables).
TEST_F(AnalysisPoolTest, LifecycleRotationAcrossThreeGenerationsStaysExact) {
  // Base workload: four list-heavy programs under their published goals
  // plus a "list" variant of each. The variants are *not* in the warmup
  // tier, so generation 0 computes them in worker deltas — exactly what
  // promotion is supposed to rescue for generations 1 and 2.
  std::vector<AnalysisJob> Base;
  for (const char *Key : {"QU", "DS", "PL", "BR"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    ASSERT_NE(B, nullptr);
    Base.push_back({B->Key, B->Source, B->GoalSpec});
    std::string Goal = B->GoalSpec;
    size_t Pos = Goal.find("any");
    if (Pos != std::string::npos) {
      Goal.replace(Pos, 3, "list");
      Base.push_back({B->Key + "#list", B->Source, Goal});
    }
  }

  // One generation-unique churn job per batch: its functors appear in no
  // other generation, so its promoted entries go cold immediately and
  // the cadence compaction must drop them.
  auto Churn = [](unsigned Gen) {
    std::string Tag = "pool_g" + std::to_string(Gen);
    AnalysisJob J;
    J.Key = Tag;
    J.Source = "p([]).\n"
               "p([" + Tag + "(X)|T]) :- q(X), p(T).\n"
               "q(" + Tag + "(a_" + std::to_string(Gen) + ")).\n"
               "q(b_" + std::to_string(Gen) + ").\n";
    J.GoalSpec = "p(any)";
    return J;
  };

  std::map<std::string, std::string> Oracle;
  auto OracleFp = [&](const AnalysisJob &J) -> const std::string & {
    std::string K = J.Key + "|" + J.GoalSpec;
    auto It = Oracle.find(K);
    if (It == Oracle.end())
      It = Oracle
               .emplace(K, fingerprint(analyzeProgram(J.Source, J.GoalSpec)))
               .first;
    return It->second;
  };

  LifecyclePolicy LP;
  LP.PromoteMinHits = 2;
  LP.CompactEvery = 2; // one cadence compaction inside three batches
  LP.KeepGens = 1;
  TierLifecycle L(Cache, LP);

  PoolOptions PO;
  PO.Workers = 4;
  PO.Shared = L.current();
  PO.CollectDeltas = true;
  AnalysisPool Pool(PO);

  uint64_t FirstSharedHits = 0, LastSharedHits = 0;
  for (unsigned Gen = 0; Gen != 3; ++Gen) {
    std::vector<AnalysisJob> Batch = Base;
    Batch.push_back(Churn(Gen));
    Pool.setShared(L.current());
    BatchStats St;
    std::vector<JobOutcome> Out = Pool.run(Batch, &St);
    ASSERT_EQ(Out.size(), Batch.size());
    EXPECT_TRUE(St.AllOk);
    for (size_t I = 0; I != Out.size(); ++I)
      EXPECT_EQ(OracleFp(Batch[I]), fingerprint(Out[I].Result))
          << Batch[I].Key << " in generation " << Gen;
    if (Gen == 0)
      FirstSharedHits = St.SharedHits;
    LastSharedHits = St.SharedHits;
    L.endBatch(Out);
  }

  // The rotation actually happened: deltas were promoted each batch, the
  // cadence compaction fired and dropped the dead churn functors, and
  // the promoted variants made the last batch resolve more operations
  // from the tier than the first.
  EXPECT_EQ(L.stats().Batches, 3u);
  EXPECT_GT(L.stats().Promotions, 0u);
  EXPECT_GT(L.stats().PromotedEntries, 0u);
  EXPECT_GT(L.stats().Compactions, 0u);
  EXPECT_GT(L.stats().DroppedGraphs, 0u);
  EXPECT_GT(LastSharedHits, FirstSharedHits);
}

/// The malformed-input satellite: one bad program in a 100-job batch
/// fails alone — a structured per-job FailKind::ParseError with the
/// parser's message and line — while the other 99 jobs stay
/// bit-identical to their oracle runs. Before the containment layer this
/// was a silent-loss path (and a worker-killer for inputs that threw).
TEST_F(AnalysisPoolTest, OneMalformedJobFailsAloneInA100JobBatch) {
  std::vector<AnalysisJob> Good = section9Jobs();
  std::vector<AnalysisJob> Batch;
  size_t BadIndex = 57;
  while (Batch.size() < 100) {
    if (Batch.size() == BadIndex)
      Batch.push_back({"bad", "p(a).\nq(X) :- r(X,.\n", "p(any)"});
    else
      Batch.push_back(Good[Batch.size() % Good.size()]);
  }
  std::vector<std::string> Oracle(Batch.size());
  for (size_t I = 0; I != Batch.size(); ++I)
    if (I != BadIndex)
      Oracle[I] = fingerprint(analyzeProgram(Batch[I].Source,
                                             Batch[I].GoalSpec));

  PoolOptions PO;
  PO.Workers = 4;
  PO.Shared = Cache;
  AnalysisPool Pool(PO);
  BatchStats St;
  std::vector<JobOutcome> Out = Pool.run(Batch, &St);
  ASSERT_EQ(Out.size(), Batch.size());

  EXPECT_FALSE(St.AllOk);
  EXPECT_EQ(St.Failed, 1u);
  EXPECT_NE(St.FirstError.find("bad: "), std::string::npos) << St.FirstError;

  const AnalysisResult &Bad = Out[BadIndex].Result;
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Fail, FailKind::ParseError);
  EXPECT_EQ(Bad.FailLine, 2u);
  EXPECT_NE(Bad.Error.find("line 2"), std::string::npos) << Bad.Error;

  for (size_t I = 0; I != Out.size(); ++I) {
    if (I == BadIndex)
      continue;
    EXPECT_TRUE(Out[I].Result.Ok) << Batch[I].Key;
    EXPECT_EQ(Oracle[I], fingerprint(Out[I].Result))
        << Batch[I].Key << " at index " << I;
  }
}

TEST_F(AnalysisPoolTest, WorkerInternersShareTierIdsAndNeverAliasDeltas) {
  std::shared_ptr<const FrozenInternTier> Tier = Cache->ops()->Intern;
  CanonId Base = Tier->size();

  // Two independent "workers" over one tier.
  SymbolTable SymsA = Cache->symbols();
  SymbolTable SymsB = Cache->symbols();
  GraphInterner A(SymsA, Tier);
  GraphInterner B(SymsB, Tier);

  // A language the warmup certainly saw (the any-list flows through
  // every list program) resolves to the same shared id in both.
  std::string Err;
  std::optional<TypeGraph> ListA =
      parseGrammar("T ::= [] | cons(Any, T).", SymsA, &Err);
  std::optional<TypeGraph> ListB =
      parseGrammar("T ::= [] | cons(Any, T).", SymsB, &Err);
  ASSERT_TRUE(ListA && ListB);
  TypeGraph NA = normalizeGraph(*ListA, SymsA);
  TypeGraph NB = normalizeGraph(*ListB, SymsB);
  CanonId IdA = A.intern(NA);
  CanonId IdB = B.intern(NB);
  EXPECT_EQ(IdA, IdB);
  EXPECT_LT(IdA, Base);
  EXPECT_GT(A.stats().SharedHits, 0u);

  // A language no Section 9 program produces gets a *private* id at or
  // beyond the tier size in both workers — delta ids never collide with
  // tier ids, and the two deltas are independent.
  std::optional<TypeGraph> NovelA = parseGrammar(
      "T ::= zz9_unique(Int, Int, Int, Int).", SymsA, &Err);
  std::optional<TypeGraph> NovelB = parseGrammar(
      "T ::= zz9_unique(Int, Int, Int, Int).", SymsB, &Err);
  ASSERT_TRUE(NovelA && NovelB);
  CanonId PrivA = A.intern(normalizeGraph(*NovelA, SymsA));
  CanonId PrivB = B.intern(normalizeGraph(*NovelB, SymsB));
  EXPECT_GE(PrivA, Base);
  EXPECT_GE(PrivB, Base);
  EXPECT_EQ(A.graph(PrivA).numNodes(), B.graph(PrivB).numNodes());
  EXPECT_EQ(A.size(), Base + A.deltaSize());
}

} // namespace
