//===- tests/FrozenTierAuditTest.cpp - FrozenArena / audit-seal tests -----==//
///
/// \file
/// Unit tests for the FrozenArena bump allocator (always compiled: the
/// arena is built in every configuration so audit builds cannot drift)
/// plus the audit-mode enforcement tests: with -DGAIA_AUDIT=ON the bulk
/// storage of every frozen cache tier is mprotect(PROT_READ)-sealed after
/// freeze(), and a deliberate post-freeze write must die at the writing
/// instruction. Without GAIA_AUDIT those tests GTEST_SKIP — the contract
/// is then compiler-checked only (const fields).
///
//===----------------------------------------------------------------------===//

#include "support/FrozenArena.h"
#include "support/GraphInterner.h"
#include "support/PfSetInterner.h"
#include "typegraph/OpCache.h"

#include "programs/Benchmarks.h"
#include "runtime/SharedCache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

using namespace gaia;

namespace {

TEST(FrozenArenaTest, BumpAllocationIsAlignedAndCounted) {
  FrozenArena A;
  EXPECT_EQ(A.bytesAllocated(), 0u);
  void *P1 = A.allocate(10, 1);
  ASSERT_NE(P1, nullptr);
  void *P2 = A.allocate(100, 64);
  ASSERT_NE(P2, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P2) % 64, 0u);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(A.bytesAllocated(), 110u);
  // Storage is writable while unsealed.
  std::memset(P1, 0xab, 10);
  std::memset(P2, 0xcd, 100);
}

TEST(FrozenArenaTest, LargeAllocationGetsOwnChunk) {
  FrozenArena A;
  // Far beyond the default chunk size; must still succeed and be usable.
  constexpr std::size_t Big = 4 * 1024 * 1024;
  void *P = A.allocate(Big, alignof(std::max_align_t));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x5a, Big);
  EXPECT_GE(A.bytesAllocated(), Big);
}

TEST(FrozenArenaTest, SealIsIdempotentAndUnsealRestoresWritability) {
  FrozenArena A;
  void *P = A.allocate(64, 8);
  A.seal();
  EXPECT_TRUE(A.sealed());
  A.seal(); // idempotent
  EXPECT_TRUE(A.sealed());
  A.unseal();
  EXPECT_FALSE(A.sealed());
  std::memset(P, 0, 64); // legal again
}

TEST(FrozenArenaDeathTest, AllocateAfterSealAborts) {
  FrozenArena A;
  A.allocate(8, 8);
  A.seal();
  EXPECT_DEATH(A.allocate(8, 8), "sealed arena");
}

TEST(FrozenArenaDeathTest, WriteToSealedStorageFaults) {
  FrozenArena A;
  void *P = A.allocate(64, 8);
  std::memset(P, 1, 64);
  A.seal();
  EXPECT_DEATH(std::memset(P, 2, 64), "");
}

TEST(FrozenArenaTest, ArenaAllocatorBacksStdContainers) {
  FrozenArena A;
  std::vector<int, ArenaAllocator<int>> V{ArenaAllocator<int>(&A)};
  for (int I = 0; I != 1000; ++I)
    V.push_back(I);
  EXPECT_EQ(V[999], 999);
  EXPECT_GE(A.bytesAllocated(), 1000 * sizeof(int));
}

TEST(FrozenArenaTest, NullArenaAllocatorFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> V; // default: null arena
  for (int I = 0; I != 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
}

//===----------------------------------------------------------------------===//
// Audit-mode enforcement: post-freeze tier writes must fault.
//===----------------------------------------------------------------------===//

/// Byte-level poke through the const fields — the smuggled-const_cast
/// mutation class the audit build exists to catch.
template <class T> void pokeConst(const T &Obj) {
  *const_cast<char *>(reinterpret_cast<const char *>(&Obj)) =
      static_cast<char>(0x7f);
}

TEST(FrozenTierAuditDeathTest, PfTierPostFreezeWriteFaults) {
#ifndef GAIA_AUDIT
  GTEST_SKIP() << "audit seal requires -DGAIA_AUDIT=ON";
#else
  PfSetInterner Pf;
  std::vector<FunctorId> Set{1, 2, 3};
  Pf.intern(Set);
  std::shared_ptr<const FrozenPfTier> Tier = Pf.freeze();
  ASSERT_TRUE(Tier->Arena && Tier->Arena->sealed());
  ASSERT_FALSE(Tier->Pool.empty());
  EXPECT_DEATH(pokeConst(Tier->Pool[0]), "");
#endif
}

TEST(FrozenTierAuditDeathTest, InternTierPostFreezeWriteFaults) {
#ifndef GAIA_AUDIT
  GTEST_SKIP() << "audit seal requires -DGAIA_AUDIT=ON";
#else
  SymbolTable Syms;
  GraphInterner Interner(Syms);
  Interner.intern(TypeGraph::makeInt());
  Interner.intern(TypeGraph::makeAny());
  std::shared_ptr<const FrozenInternTier> Tier = Interner.freeze();
  ASSERT_TRUE(Tier->Arena && Tier->Arena->sealed());
  ASSERT_FALSE(Tier->Canon.empty());
  // The canonical graph *objects* live in the sealed arena, so even a
  // write to a lazily-filled mutable field faults.
  EXPECT_DEATH(pokeConst(Tier->Canon[0]), "");
#endif
}

TEST(FrozenTierAuditDeathTest, OpTierPostFreezeWriteFaults) {
#ifndef GAIA_AUDIT
  GTEST_SKIP() << "audit seal requires -DGAIA_AUDIT=ON";
#else
  SymbolTable Syms;
  OpCache Ops(Syms, NormalizeOptions{});
  // Populate one cached result so the frozen maps are non-empty.
  Ops.unionOf(TypeGraph::makeInt(), TypeGraph::makeAny());
  std::shared_ptr<const FrozenOpTier> Tier = Ops.freeze();
  ASSERT_TRUE(Tier->Arena && Tier->Arena->sealed());
  ASSERT_FALSE(Tier->Union.empty());
  EXPECT_DEATH(pokeConst(*Tier->Union.begin()), "");
#endif
}

#ifdef GAIA_AUDIT
/// A one-program warmup tier plus one harvested variant delta — the
/// smallest honest refreeze cycle (tests the lifecycle paths, not the
/// analysis; TierLifecycleTest owns the bit-identity story).
std::shared_ptr<const SharedCache>
buildTierWithDelta(std::shared_ptr<const CacheDelta> &DeltaOut) {
  const BenchmarkProgram *B = findBenchmark("QU");
  if (!B)
    return nullptr;
  std::vector<AnalysisJob> Warmup{{B->Key, B->Source, B->GoalSpec}};
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  if (!Cache)
    return nullptr;
  std::string Goal = B->GoalSpec;
  size_t Pos = Goal.find("any");
  if (Pos != std::string::npos)
    Goal.replace(Pos, 3, "list");
  AnalyzerOptions Opts;
  Opts.Shared = Cache;
  Opts.CollectDelta = true;
  Opts.DeltaMinHits = 1;
  AnalysisResult R = analyzeProgram(B->Source, Goal, Opts);
  if (!R.Ok)
    return nullptr;
  DeltaOut = R.Delta;
  return Cache;
}
#endif

/// The seal must survive the lifecycle: a *promoted* tier is a brand-new
/// freeze (old entries copied into a fresh arena, absorbed entries
/// appended past them), and both halves must be as read-only as the
/// original build.
TEST(FrozenTierAuditDeathTest, PromotedTierIsSealedLikeAFreshFreeze) {
#ifndef GAIA_AUDIT
  GTEST_SKIP() << "audit seal requires -DGAIA_AUDIT=ON";
#else
  std::shared_ptr<const CacheDelta> Delta;
  std::shared_ptr<const SharedCache> Cache = buildTierWithDelta(Delta);
  ASSERT_NE(Cache, nullptr);
  ASSERT_NE(Delta, nullptr) << "the variant run must harvest a delta";
  std::shared_ptr<const SharedCache> Promoted =
      Cache->promoteAndRefreeze({Delta});
  ASSERT_NE(Promoted, nullptr);
  const FrozenInternTier &IT = *Promoted->ops()->Intern;
  ASSERT_TRUE(IT.Arena && IT.Arena->sealed());
  ASSERT_GT(IT.size(), 0u);
  // Both a carried-over entry (id 0) and the newest absorbed entry live
  // in the promoted tier's sealed arena.
  EXPECT_DEATH(pokeConst(IT.Canon[0]), "");
  EXPECT_DEATH(pokeConst(IT.Canon[IT.size() - 1]), "");
#endif
}

/// Same for a *compacted* tier: survivors are renumbered into a fresh
/// arena and the result must fault on write exactly like the original.
TEST(FrozenTierAuditDeathTest, CompactedTierIsSealedLikeAFreshFreeze) {
#ifndef GAIA_AUDIT
  GTEST_SKIP() << "audit seal requires -DGAIA_AUDIT=ON";
#else
  std::shared_ptr<const CacheDelta> Delta;
  std::shared_ptr<const SharedCache> Cache = buildTierWithDelta(Delta);
  ASSERT_NE(Cache, nullptr);
  std::shared_ptr<const SharedCache> Compacted =
      Cache->compactAndRefreeze(CompactionPolicy{});
  ASSERT_NE(Compacted, nullptr);
  const FrozenOpTier &OT = *Compacted->ops();
  ASSERT_TRUE(OT.Arena && OT.Arena->sealed());
  const FrozenInternTier &IT = *OT.Intern;
  ASSERT_TRUE(IT.Arena && IT.Arena->sealed());
  ASSERT_GT(IT.size(), 0u);
  EXPECT_DEATH(pokeConst(IT.Canon[0]), "");
  ASSERT_FALSE(OT.Union.empty());
  EXPECT_DEATH(pokeConst(*OT.Union.begin()), "");
#endif
}

TEST(FrozenTierAuditTest, TiersRemainReadableAfterSeal) {
  // Sanity in both modes: freezing then *reading* the tier works, and
  // layering a fresh cache over it resolves shared lookups.
  SymbolTable Syms;
  OpCache Warm(Syms, NormalizeOptions{});
  Warm.unionOf(TypeGraph::makeInt(), TypeGraph::makeAny());
  std::shared_ptr<const FrozenOpTier> Tier = Warm.freeze();
  EXPECT_GE(Tier->resultCount(), 1u);
  OpCache Worker(Syms, NormalizeOptions{}, Tier);
  TypeGraph U = Worker.unionOf(TypeGraph::makeInt(), TypeGraph::makeAny());
  EXPECT_TRUE(Worker.equals(U, TypeGraph::makeAny()));
  EXPECT_GE(Worker.stats().SharedHits, 1u);
}

} // namespace
