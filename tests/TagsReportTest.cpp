//===- tests/TagsReportTest.cpp - Tag extraction and report tests ---------==//
///
/// \file
/// Unit tests for the Tables 4/5 machinery: tag extraction from type
/// graphs, the improvement relation, input pattern parsing, and the
/// table formatting helpers.
///
//===----------------------------------------------------------------------===//

#include "core/InputPattern.h"
#include "core/Report.h"
#include "core/Tags.h"
#include "typegraph/GrammarParser.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class TagsTest : public ::testing::Test {
protected:
  ArgTag tagOf(const char *Grammar) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Grammar, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return tagForGraph(*G, Syms);
  }

  SymbolTable Syms;
};

TEST_F(TagsTest, EmptyListIsNI) {
  EXPECT_EQ(tagOf("T ::= []."), ArgTag::NI);
}

TEST_F(TagsTest, ConsOnlyIsCO) {
  EXPECT_EQ(tagOf("T ::= cons(Any,Any)."), ArgTag::CO);
  EXPECT_EQ(tagOf("T ::= cons(Any,T1).\nT1 ::= [] | cons(Any,T1)."),
            ArgTag::CO);
}

TEST_F(TagsTest, ListIsLI) {
  EXPECT_EQ(tagOf("T ::= [] | cons(Any,T)."), ArgTag::LI);
  // Mixed []/cons even without recursion:
  EXPECT_EQ(tagOf("T ::= [] | cons(Any,Any)."), ArgTag::LI);
}

TEST_F(TagsTest, StructuresAreST) {
  EXPECT_EQ(tagOf("T ::= f(Any)."), ArgTag::ST);
  EXPECT_EQ(tagOf("T ::= f(Any) | g(Any,Any)."), ArgTag::ST);
  // cons mixed with another structure is still "structure".
  EXPECT_EQ(tagOf("T ::= cons(Any,Any) | f(Any)."), ArgTag::ST);
}

TEST_F(TagsTest, AtomsAreDI) {
  EXPECT_EQ(tagOf("T ::= a."), ArgTag::DI);
  EXPECT_EQ(tagOf("T ::= a | b | c."), ArgTag::DI);
  EXPECT_EQ(tagOf("T ::= Int."), ArgTag::DI);
  EXPECT_EQ(tagOf("T ::= 0 | a."), ArgTag::DI);
}

TEST_F(TagsTest, MixedIsHY) {
  EXPECT_EQ(tagOf("T ::= a | f(Any)."), ArgTag::HY);
  EXPECT_EQ(tagOf("T ::= Int | f(Any)."), ArgTag::HY);
  // [] with a non-cons structure: still "structure or atom".
  EXPECT_EQ(tagOf("T ::= [] | f(Any)."), ArgTag::HY);
}

TEST_F(TagsTest, AnyHasNoTag) {
  EXPECT_EQ(tagForGraph(TypeGraph::makeAny(), Syms), ArgTag::None);
  EXPECT_EQ(tagForGraph(TypeGraph::makeBottom(), Syms), ArgTag::None);
}

TEST_F(TagsTest, ListOfListsIsLI) {
  EXPECT_EQ(tagOf("T ::= [] | cons(T1,T).\nT1 ::= [] | cons(Any,T1)."),
            ArgTag::LI);
}

TEST_F(TagsTest, ImprovementRelation) {
  using T = ArgTag;
  // Gaining any tag over none is an improvement.
  EXPECT_TRUE(tagImproves(T::LI, T::None));
  EXPECT_TRUE(tagImproves(T::HY, T::None));
  EXPECT_FALSE(tagImproves(T::None, T::None));
  // Refinements.
  EXPECT_TRUE(tagImproves(T::CO, T::ST));
  EXPECT_TRUE(tagImproves(T::NI, T::DI));
  EXPECT_TRUE(tagImproves(T::CO, T::LI));
  EXPECT_TRUE(tagImproves(T::NI, T::LI));
  EXPECT_TRUE(tagImproves(T::ST, T::HY));
  // Non-improvements.
  EXPECT_FALSE(tagImproves(T::LI, T::LI));
  EXPECT_FALSE(tagImproves(T::ST, T::CO));
  EXPECT_FALSE(tagImproves(T::DI, T::NI));
  EXPECT_FALSE(tagImproves(T::None, T::DI));
  EXPECT_FALSE(tagImproves(T::HY, T::ST));
}

TEST_F(TagsTest, TagNames) {
  EXPECT_STREQ(tagName(ArgTag::NI), "NI");
  EXPECT_STREQ(tagName(ArgTag::CO), "CO");
  EXPECT_STREQ(tagName(ArgTag::LI), "LI");
  EXPECT_STREQ(tagName(ArgTag::ST), "ST");
  EXPECT_STREQ(tagName(ArgTag::DI), "DI");
  EXPECT_STREQ(tagName(ArgTag::HY), "HY");
  EXPECT_STREQ(tagName(ArgTag::None), "--");
}

TEST(InputPatternTest, ParsesBasicSpecs) {
  std::string Err;
  auto P = parseInputPattern("nreverse(any,any)", &Err);
  ASSERT_TRUE(P.has_value()) << Err;
  EXPECT_EQ(P->PredName, "nreverse");
  ASSERT_EQ(P->arity(), 2u);
  EXPECT_EQ(P->Args[0], ArgSpec::Any);

  P = parseInputPattern("qsort(list, any)");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Args[0], ArgSpec::List);

  P = parseInputPattern("f(int,intlist)");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Args[0], ArgSpec::Int);
  EXPECT_EQ(P->Args[1], ArgSpec::IntList);
}

TEST(InputPatternTest, ParsesZeroArity) {
  auto P = parseInputPattern("main");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->arity(), 0u);
}

TEST(InputPatternTest, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(parseInputPattern("", &Err).has_value());
  EXPECT_FALSE(parseInputPattern("p(bogus)", &Err).has_value());
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  EXPECT_FALSE(parseInputPattern("p(any", &Err).has_value());
  EXPECT_FALSE(parseInputPattern("(any)", &Err).has_value());
}

TEST(ReportTest, RowFormattingIsStable) {
  SizeMetrics M;
  M.NumProcedures = 44;
  M.NumClauses = 82;
  M.NumProgramPoints = 475;
  M.NumGoals = 84;
  M.StaticCallTreeSize = 73;
  std::string Row = formatSizeRow("KA", M);
  EXPECT_NE(Row.find("KA"), std::string::npos);
  EXPECT_NE(Row.find("44"), std::string::npos);
  EXPECT_NE(Row.find("475"), std::string::npos);

  RecursionMetrics RM;
  RM.TailRecursive = 12;
  RM.MutuallyRecursive = 7;
  RM.NonRecursive = 25;
  std::string RRow = formatRecursionRow("KA", RM);
  EXPECT_NE(RRow.find("12"), std::string::npos);

  TagTally T;
  T.Type[static_cast<size_t>(ArgTag::LI)] = 20;
  T.PF[static_cast<size_t>(ArgTag::CO)] = 11;
  T.A = 124;
  T.AI = 34;
  T.C = 45;
  T.CI = 22;
  std::string TagRow = formatTagRow("KA", T);
  EXPECT_NE(TagRow.find("124"), std::string::npos);
  EXPECT_NE(TagRow.find("0.27"), std::string::npos);
}

} // namespace
