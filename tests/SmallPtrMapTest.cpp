//===- tests/SmallPtrMapTest.cpp - Hybrid pointer map/set tests -----------==//
///
/// \file
/// Unit and differential coverage for support/SmallPtrMap.h, in
/// particular SmallPtrSet::erase (added for the engine's reverse-
/// dependency unlinking): the swap-pop plus position-index scheme must
/// stay consistent across the inline/indexed threshold in both
/// directions.
///
//===----------------------------------------------------------------------===//

#include "support/SmallPtrMap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace gaia;

namespace {

struct Obj {
  int Tag;
};

class SmallPtrSetTest : public ::testing::Test {
protected:
  SmallPtrSetTest() {
    for (int I = 0; I != 64; ++I)
      Objs.push_back(Obj{I});
  }
  Obj *at(int I) { return &Objs[I]; }

  std::vector<Obj> Objs;
};

TEST_F(SmallPtrSetTest, InsertContainsEraseInline) {
  SmallPtrSet<Obj, 8> S;
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(S.insert(at(I)));
  EXPECT_FALSE(S.insert(at(3)));
  EXPECT_EQ(S.size(), 5u);
  EXPECT_TRUE(S.contains(at(4)));

  EXPECT_TRUE(S.erase(at(2)));
  EXPECT_FALSE(S.contains(at(2)));
  EXPECT_FALSE(S.erase(at(2))) << "double erase";
  EXPECT_EQ(S.size(), 4u);
  // Erase the (swapped-in) last and first.
  EXPECT_TRUE(S.erase(at(4)));
  EXPECT_TRUE(S.erase(at(0)));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(at(1)));
  EXPECT_TRUE(S.contains(at(3)));
  // Reinsert after erase.
  EXPECT_TRUE(S.insert(at(0)));
  EXPECT_EQ(S.size(), 3u);
}

TEST_F(SmallPtrSetTest, EraseAcrossTheIndexThreshold) {
  SmallPtrSet<Obj, 8> S;
  for (int I = 0; I != 20; ++I)
    EXPECT_TRUE(S.insert(at(I))); // engages the index at 9 elements
  for (int I = 0; I < 20; I += 2)
    EXPECT_TRUE(S.erase(at(I)));
  EXPECT_EQ(S.size(), 10u);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(S.contains(at(I)), I % 2 == 1) << I;
  // Erase everything; the set must come back empty and reusable.
  for (int I = 1; I < 20; I += 2)
    EXPECT_TRUE(S.erase(at(I)));
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(at(7)));
  EXPECT_TRUE(S.contains(at(7)));
  EXPECT_EQ(S.size(), 1u);
}

TEST_F(SmallPtrSetTest, DifferentialAgainstStdSet) {
  SmallPtrSet<Obj, 8> S;
  std::set<Obj *> Ref;
  // Deterministic mixed op stream crossing the threshold repeatedly.
  uint64_t State = 42;
  auto Rnd = [&](uint32_t Bound) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((State >> 33) % Bound);
  };
  for (int Step = 0; Step != 4000; ++Step) {
    Obj *K = at(Rnd(24));
    switch (Rnd(3)) {
    case 0:
      EXPECT_EQ(S.insert(K), Ref.insert(K).second);
      break;
    case 1:
      EXPECT_EQ(S.erase(K), Ref.erase(K) != 0);
      break;
    case 2:
      EXPECT_EQ(S.contains(K), Ref.count(K) != 0);
      break;
    }
    ASSERT_EQ(S.size(), Ref.size());
  }
  std::vector<Obj *> Elems(S.begin(), S.end());
  std::sort(Elems.begin(), Elems.end());
  EXPECT_TRUE(std::equal(Elems.begin(), Elems.end(), Ref.begin(), Ref.end()));
}

TEST(SmallPtrMapBasicsTest, LookupInsertFindClear) {
  std::vector<Obj> Objs(32);
  SmallPtrMap<Obj, uint64_t, 8> M;
  bool Inserted = false;
  for (int I = 0; I != 16; ++I) {
    M.lookupOrInsert(&Objs[I], Inserted) = static_cast<uint64_t>(I * 7);
    EXPECT_TRUE(Inserted);
  }
  M.lookupOrInsert(&Objs[3], Inserted) = 99;
  EXPECT_FALSE(Inserted);
  ASSERT_NE(M.find(&Objs[3]), nullptr);
  EXPECT_EQ(*M.find(&Objs[3]), 99u);
  EXPECT_EQ(M.find(&Objs[31]), nullptr);
  EXPECT_EQ(M.size(), 16u);
  // Insertion-order iteration.
  int I = 0;
  for (const auto &[K, V] : M)
    EXPECT_EQ(K, &Objs[I++]);
  M.clear();
  EXPECT_TRUE(M.empty());
  M.lookupOrInsert(&Objs[5], Inserted) = 1;
  EXPECT_TRUE(Inserted);
  EXPECT_EQ(M.size(), 1u);
}

} // namespace
