//===- tests/PatSubTest.cpp - Generic pattern domain tests ----------------==//
///
/// \file
/// Tests for Pat(R): abstract unification, frames, same-value
/// propagation, projection, call-result integration, join/widen/leq —
/// instantiated with both the type-graph leaf and the one-point
/// (principal functor) leaf.
///
//===----------------------------------------------------------------------===//

#include "pat/PatSub.h"

#include "domains/PFLeaf.h"
#include "domains/TypeLeaf.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class PatTypeTest : public ::testing::Test {
protected:
  PatTypeTest() : Ctx{Syms, {}, {}, nullptr} {}

  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  bool valueEquals(const TypeGraph &A, const TypeGraph &B) {
    return graphEquals(A, B, Syms);
  }

  SymbolTable Syms;
  TypeLeaf::Context Ctx;
};

using TSub = PatSub<TypeLeaf>;

TEST_F(PatTypeTest, TopHasAnySlots) {
  TSub S = TSub::top(Ctx, 3);
  EXPECT_FALSE(S.isBottom());
  EXPECT_EQ(S.numSlots(), 3u);
  EXPECT_TRUE(valueEquals(S.slotValue(Ctx, 0), TypeGraph::makeAny()));
  EXPECT_FALSE(S.sameValue(0, 1));
}

TEST_F(PatTypeTest, UnifyVarsSharesValue) {
  TSub S = TSub::top(Ctx, 2);
  S.unifyVars(Ctx, 0, 1);
  EXPECT_TRUE(S.sameValue(0, 1));
}

TEST_F(PatTypeTest, UnifyFuncCreatesFrame) {
  // X0 = f(X1).
  FunctorId F = Syms.functor("f", 1);
  TSub S = TSub::top(Ctx, 2);
  S.unifyFunc(Ctx, 0, F, {1});
  ASSERT_TRUE(S.slotFrame(0).has_value());
  EXPECT_EQ(*S.slotFrame(0), F);
  EXPECT_TRUE(valueEquals(S.slotValue(Ctx, 0), parse("T ::= f(Any).")));
}

TEST_F(PatTypeTest, ConflictingFunctorsFail) {
  TSub S = TSub::top(Ctx, 1);
  S.unifyFunc(Ctx, 0, Syms.functor("a", 0), {});
  S.unifyFunc(Ctx, 0, Syms.functor("b", 0), {});
  EXPECT_TRUE(S.isBottom());
}

TEST_F(PatTypeTest, RefineSlotMeets) {
  TSub S = TSub::top(Ctx, 1);
  S.refineSlot(Ctx, 0, TypeGraph::makeInt());
  EXPECT_TRUE(valueEquals(S.slotValue(Ctx, 0), TypeGraph::makeInt()));
  // Now binding to a non-numeric functor must fail.
  S.unifyFunc(Ctx, 0, Syms.functor("foo", 0), {});
  EXPECT_TRUE(S.isBottom());
}

TEST_F(PatTypeTest, IntLiteralBelowInt) {
  TSub S = TSub::top(Ctx, 1);
  S.refineSlot(Ctx, 0, TypeGraph::makeInt());
  S.unifyFunc(Ctx, 0, Syms.functor("3", 0), {});
  EXPECT_FALSE(S.isBottom());
}

TEST_F(PatTypeTest, LeafTypeSplitsThroughFrame) {
  // X0 has type [] | cons(Int, list-of-int); X0 = cons(X1, X2) gives
  // X1 Int and X2 list-of-int.
  TSub S = TSub::top(Ctx, 3);
  S.refineSlot(Ctx, 0, parse("T ::= [] | cons(Int,T)."));
  S.unifyFunc(Ctx, 0, Syms.consFunctor(), {1, 2});
  ASSERT_FALSE(S.isBottom());
  EXPECT_TRUE(valueEquals(S.slotValue(Ctx, 1), TypeGraph::makeInt()));
  EXPECT_TRUE(
      valueEquals(S.slotValue(Ctx, 2), parse("T ::= [] | cons(Int,T).")));
}

TEST_F(PatTypeTest, LeafWithoutFunctorFails) {
  TSub S = TSub::top(Ctx, 3);
  S.refineSlot(Ctx, 0, parse("T ::= [].\n"));
  S.unifyFunc(Ctx, 0, Syms.consFunctor(), {1, 2});
  EXPECT_TRUE(S.isBottom());
}

TEST_F(PatTypeTest, ProjectPreservesSharingAndFrames) {
  FunctorId F = Syms.functor("f", 2);
  TSub S = TSub::top(Ctx, 4);
  S.unifyFunc(Ctx, 0, F, {1, 2});
  S.unifyVars(Ctx, 2, 3);
  TSub P = S.project(Ctx, {0, 3});
  EXPECT_EQ(P.numSlots(), 2u);
  ASSERT_TRUE(P.slotFrame(0).has_value());
  // Slot 1 is f's second argument: shared inside the projection.
  EXPECT_FALSE(P.isBottom());
}

TEST_F(PatTypeTest, ApplyCallResultTransfersStructure) {
  // Caller: q(X0) with X0 unconstrained. Callee output: slot0 = [].
  TSub Caller = TSub::top(Ctx, 1);
  TSub Out = TSub::top(Ctx, 1);
  Out.unifyFunc(Ctx, 0, Syms.nilFunctor(), {});
  Caller.applyCallResult(Ctx, {0}, Out);
  ASSERT_TRUE(Caller.slotFrame(0).has_value());
  EXPECT_EQ(*Caller.slotFrame(0), Syms.nilFunctor());
}

TEST_F(PatTypeTest, ApplyCallResultTransfersSameValue) {
  // Callee output equates its two arguments; caller must unify them.
  TSub Caller = TSub::top(Ctx, 2);
  Caller.refineSlot(Ctx, 0, TypeGraph::makeInt());
  TSub Out = TSub::top(Ctx, 2);
  Out.unifyVars(Ctx, 0, 1);
  Caller.applyCallResult(Ctx, {0, 1}, Out);
  EXPECT_TRUE(Caller.sameValue(0, 1));
  // The Int refinement propagates to the other argument.
  EXPECT_TRUE(valueEquals(Caller.slotValue(Ctx, 1), TypeGraph::makeInt()));
}

TEST_F(PatTypeTest, ApplyCallResultConflictIsBottom) {
  TSub Caller = TSub::top(Ctx, 1);
  Caller.unifyFunc(Ctx, 0, Syms.functor("a", 0), {});
  TSub Out = TSub::top(Ctx, 1);
  Out.unifyFunc(Ctx, 0, Syms.functor("b", 0), {});
  Caller.applyCallResult(Ctx, {0}, Out);
  EXPECT_TRUE(Caller.isBottom());
}

TEST_F(PatTypeTest, JoinSameFrameKeepsFrame) {
  FunctorId F = Syms.functor("f", 1);
  TSub A = TSub::top(Ctx, 2);
  A.unifyFunc(Ctx, 0, F, {1});
  A.refineSlot(Ctx, 1, parse("T ::= a."));
  TSub B = TSub::top(Ctx, 2);
  B.unifyFunc(Ctx, 0, F, {1});
  B.refineSlot(Ctx, 1, parse("T ::= b."));
  TSub J = TSub::join(Ctx, A, B);
  ASSERT_TRUE(J.slotFrame(0).has_value());
  EXPECT_TRUE(valueEquals(J.slotValue(Ctx, 1), parse("T ::= a | b.")));
}

TEST_F(PatTypeTest, JoinDifferentFramesDropsToTypeGraph) {
  // Section 5: "When computing an upper-bound of two terms with
  // different functors, the indices are removed from Pat and replaced
  // by an equivalent type graph in Type."
  TSub A = TSub::top(Ctx, 1);
  A.unifyFunc(Ctx, 0, Syms.nilFunctor(), {});
  // B: slot0 = cons(slot1, slot2), projected onto slot0.
  TSub B = TSub::top(Ctx, 3);
  B.unifyFunc(Ctx, 0, Syms.consFunctor(), {1, 2});
  TSub BProj = B.project(Ctx, {0});
  TSub J = TSub::join(Ctx, A, BProj);
  EXPECT_FALSE(J.slotFrame(0).has_value());
  EXPECT_TRUE(valueEquals(J.slotValue(Ctx, 0),
                          parse("T ::= [] | cons(Any,Any).")));
}

TEST_F(PatTypeTest, JoinWithBottomIsIdentity) {
  TSub A = TSub::top(Ctx, 1);
  A.unifyFunc(Ctx, 0, Syms.nilFunctor(), {});
  TSub B = TSub::bottom(1);
  TSub J = TSub::join(Ctx, A, B);
  EXPECT_TRUE(TSub::equal(Ctx, J, A));
}

TEST_F(PatTypeTest, LeqBasics) {
  TSub Top = TSub::top(Ctx, 1);
  TSub Bot = TSub::bottom(1);
  TSub Nil = TSub::top(Ctx, 1);
  Nil.unifyFunc(Ctx, 0, Syms.nilFunctor(), {});
  EXPECT_TRUE(TSub::leq(Ctx, Bot, Nil));
  EXPECT_TRUE(TSub::leq(Ctx, Nil, Top));
  EXPECT_FALSE(TSub::leq(Ctx, Top, Nil));
  EXPECT_TRUE(TSub::leq(Ctx, Nil, Nil));
}

TEST_F(PatTypeTest, LeqRespectsSameValue) {
  TSub Shared = TSub::top(Ctx, 2);
  Shared.unifyVars(Ctx, 0, 1);
  TSub Unshared = TSub::top(Ctx, 2);
  // Shared <= Unshared (equality is a stronger constraint)...
  EXPECT_TRUE(TSub::leq(Ctx, Shared, Unshared));
  // ...but not the converse.
  EXPECT_FALSE(TSub::leq(Ctx, Unshared, Shared));
}

TEST_F(PatTypeTest, WidenUsesLeafWidening) {
  // Lists growing by one level must widen to the full list type when
  // frames clash (cons vs deeper cons chains collapse to leaves).
  TSub Old = TSub::top(Ctx, 1);
  Old.refineSlot(Ctx, 0, parse("T ::= [] | cons(Any,T1).\nT1 ::= []."));
  TSub New = TSub::top(Ctx, 1);
  New.refineSlot(Ctx, 0, parse("T ::= [] | cons(Any,T1).\n"
                               "T1 ::= [] | cons(Any,T2).\nT2 ::= []."));
  TSub W = TSub::widen(Ctx, Old, New);
  EXPECT_TRUE(valueEquals(W.slotValue(Ctx, 0),
                          parse("T ::= [] | cons(Any,T).")));
}

TEST_F(PatTypeTest, RationalUnificationTerminates) {
  // X = f(Y), X = Y creates a rational structure; operations must
  // terminate and stay sound.
  FunctorId F = Syms.functor("f", 1);
  TSub S = TSub::top(Ctx, 2);
  S.unifyFunc(Ctx, 0, F, {1});
  S.unifyVars(Ctx, 0, 1);
  ASSERT_FALSE(S.isBottom());
  TypeGraph V = S.slotValue(Ctx, 0);
  // The value is an over-approximation containing f(...).
  EXPECT_TRUE(graphIncludes(V, parse("T ::= f(Any)."), Syms));
}

//===----------------------------------------------------------------------===//
// The principal-functor instantiation.
//===----------------------------------------------------------------------===//

class PatPFTest : public ::testing::Test {
protected:
  PatPFTest() : Ctx{Syms} {}
  SymbolTable Syms;
  PFLeaf::Context Ctx;
};

using PSub = PatSub<PFLeaf>;

TEST_F(PatPFTest, FramesStillWork) {
  PSub S = PSub::top(Ctx, 2);
  S.unifyFunc(Ctx, 0, Syms.functor("f", 1), {1});
  ASSERT_TRUE(S.slotFrame(0).has_value());
  // Conflicting functor fails even without leaf information.
  S.unifyFunc(Ctx, 0, Syms.functor("g", 1), {1});
  EXPECT_TRUE(S.isBottom());
}

TEST_F(PatPFTest, JoinLosesClashingFrames) {
  PSub A = PSub::top(Ctx, 1);
  A.unifyFunc(Ctx, 0, Syms.functor("a", 0), {});
  PSub B = PSub::top(Ctx, 1);
  B.unifyFunc(Ctx, 0, Syms.functor("b", 0), {});
  PSub J = PSub::join(Ctx, A, B);
  // The one-point leaf cannot represent the disjunction.
  EXPECT_FALSE(J.slotFrame(0).has_value());
  EXPECT_TRUE(PSub::leq(Ctx, A, J));
  EXPECT_TRUE(PSub::leq(Ctx, B, J));
}

TEST_F(PatPFTest, SameValueStillTracked) {
  PSub S = PSub::top(Ctx, 2);
  S.unifyVars(Ctx, 0, 1);
  EXPECT_TRUE(S.sameValue(0, 1));
}

TEST_F(PatPFTest, LeafRestrictionAlwaysSucceeds) {
  PSub S = PSub::top(Ctx, 3);
  S.unifyFunc(Ctx, 0, Syms.consFunctor(), {1, 2});
  EXPECT_FALSE(S.isBottom());
}

} // namespace
