//===- tests/WideningTest.cpp - Section 7 widening operator tests ---------==//
///
/// \file
/// Golden tests for the widening operator on the paper's own worked
/// examples (append/3 in Section 7.1, the first arithmetic program in
/// Figure 6) plus property sweeps for the widening laws: the result is
/// an upper bound of both arguments and iterating V is stationary.
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Widening.h"

#include <gtest/gtest.h>

#include <random>

using namespace gaia;

namespace {

class WideningTest : public ::testing::Test {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_F(WideningTest, NoWideningWhenNewIncluded) {
  TypeGraph Old = TypeGraph::makeAnyList(Syms);
  TypeGraph New = parse("T ::= [].");
  TypeGraph W = graphWiden(Old, New, Syms);
  EXPECT_TRUE(graphEquals(W, Old, Syms));
}

TEST_F(WideningTest, AppendExampleIntroducesListCycle) {
  // Section 7.1: the second iteration of append/3 produced To; the union
  // of the clause results of the third iteration gives Tnew. The widening
  // must produce the full list type by cycle introduction.
  TypeGraph Old = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [] | cons(Any,T2).\n"
                        "T2 ::= [].");
  WideningStats Stats;
  TypeGraph W = graphWiden(Old, New, Syms, WideningOptions(), &Stats);
  TypeGraph Expect = parse("T ::= [] | cons(Any,T).");
  EXPECT_TRUE(graphEquals(W, Expect, Syms)) << printGrammar(W, Syms);
  EXPECT_GE(Stats.CycleIntroductions, 1u);
}

TEST_F(WideningTest, Figure6ArithmeticExample) {
  // Figure 6: widening for the first arithmetic program. The widening of
  // To with Tn must produce the optimal Tr without merging the
  // definitions of T, T1 and T2.
  TypeGraph Old = parse("To ::= 0 | +(Z,T1).\n"
                        "Z ::= 0.\n"
                        "T1 ::= 1 | *(T1,T2).\n"
                        "T2 ::= cst(Any) | par(To) | var(Any).");
  TypeGraph New = parse("Tn ::= 0 | +(T3,T6).\n"
                        "T3 ::= 0 | +(Z,T4).\n"
                        "Z ::= 0.\n"
                        "T4 ::= 1 | *(T4,T5).\n"
                        "T5 ::= cst(Any) | par(Tn) | var(Any).\n"
                        "T6 ::= 1 | *(T6,T7).\n"
                        "T7 ::= cst(Any) | par(T3) | var(Any).");
  TypeGraph W = graphWiden(Old, New, Syms);
  TypeGraph Expect = parse("Tr ::= 0 | +(Tr,T1).\n"
                           "T1 ::= 1 | *(T1,T2).\n"
                           "T2 ::= cst(Any) | par(Tr) | var(Any).");
  EXPECT_TRUE(graphEquals(W, Expect, Syms)) << printGrammar(W, Syms);
}

TEST_F(WideningTest, BasicGrowthIsAllowed) {
  // Section 7.1: the second iteration of basic/2 encounters a clash with
  // no suitable ancestor; the widening must let the graph grow to Tn
  // ("letting the graph grow in this case is of great importance to
  // recover the structure of the type in its entirety").
  TypeGraph Old = parse("T ::= cst(Any) | var(Any).");
  TypeGraph New = parse("T ::= cst(Any) | par(Z) | var(Any).\n"
                        "Z ::= 0.");
  TypeGraph W = graphWiden(Old, New, Syms);
  EXPECT_TRUE(graphEquals(W, New, Syms)) << printGrammar(W, Syms);
}

TEST_F(WideningTest, GenSuccExampleGrowsBothStructures) {
  // The gen/succ program: lists and integers grow together; the widening
  // must infer both recursive structures. We simulate two fixpoint steps.
  TypeGraph Old = parse("T ::= [] | cons(Z,T1).\n"
                        "Z ::= 0.\n"
                        "T1 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(Z,T1).\n"
                        "Z ::= 0.\n"
                        "T1 ::= [] | cons(S,T2).\n"
                        "S ::= 0 | s(Z2).\n"
                        "Z2 ::= 0.\n"
                        "T2 ::= [].");
  TypeGraph W1 = graphWiden(Old, New, Syms);
  // Whatever the intermediate shape, one more widening with the full
  // recursive pattern must reach the paper's fixpoint:
  TypeGraph Full = parse("T ::= [] | cons(T1,T).\n"
                         "T1 ::= 0 | s(T1).");
  TypeGraph W2 = graphWiden(W1, Full, Syms);
  EXPECT_TRUE(graphIncludes(W2, Full, Syms)) << printGrammar(W2, Syms);
  // And it must not degrade to Any.
  EXPECT_FALSE(graphEquals(W2, TypeGraph::makeAny(), Syms));
  EXPECT_TRUE(graphIncludes(TypeGraph::makeAnyList(Syms), W2, Syms))
      << printGrammar(W2, Syms);
}

TEST_F(WideningTest, PreservesNestedStringType) {
  // Abstraction of the tokenizer property: the widening preserves the
  // string(T2) component because cons/[] never subsets the token pf-set.
  TypeGraph Old = parse("T ::= [] | cons(T1,T2).\n"
                        "T1 ::= atom(Any) | string(S).\n"
                        "S ::= [] | cons(Any,S).\n"
                        "T2 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(T1,T2).\n"
                        "T1 ::= atom(Any) | string(S).\n"
                        "S ::= [] | cons(Any,S).\n"
                        "T2 ::= [] | cons(T3,T4).\n"
                        "T3 ::= atom(Any) | string(S2).\n"
                        "S2 ::= [] | cons(Any,S2).\n"
                        "T4 ::= [].");
  TypeGraph W = graphWiden(Old, New, Syms);
  TypeGraph Expect = parse("T ::= [] | cons(T1,T).\n"
                           "T1 ::= atom(Any) | string(S).\n"
                           "S ::= [] | cons(Any,S).");
  EXPECT_TRUE(graphEquals(W, Expect, Syms)) << printGrammar(W, Syms);
}

TEST_F(WideningTest, ExhaustedTransformBudgetCollapsesToAny) {
  // Regression for the silent-non-convergence bug: the budget guard used
  // to be assert(false), which compiles away under NDEBUG and let
  // release builds return a possibly ever-growing graph — breaking the
  // finiteness of the widening chain the engine's termination rests on.
  // With a zero budget the first transformation must trip the explicit
  // fallback: a sound collapse to Any, with the exhaustion counted.
  TypeGraph Old = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [] | cons(Any,T2).\n"
                        "T2 ::= [].");
  WideningOptions Opts;
  Opts.MaxTransforms = 0;
  WideningStats Stats;
  TypeGraph W = graphWiden(Old, New, Syms, Opts, &Stats);
  EXPECT_EQ(Stats.BudgetExhaustions, 1u);
  EXPECT_TRUE(graphEquals(W, TypeGraph::makeAny(), Syms))
      << printGrammar(W, Syms);
  // Still an upper bound of both inputs.
  EXPECT_TRUE(graphIncludes(W, Old, Syms));
  EXPECT_TRUE(graphIncludes(W, New, Syms));
}

TEST_F(WideningTest, DefaultTransformBudgetNeverFires) {
  TypeGraph Old = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [].");
  TypeGraph New = parse("T ::= [] | cons(Any,T1).\n"
                        "T1 ::= [] | cons(Any,T2).\n"
                        "T2 ::= [].");
  WideningStats Stats;
  graphWiden(Old, New, Syms, WideningOptions(), &Stats);
  EXPECT_EQ(Stats.BudgetExhaustions, 0u);
}

TEST_F(WideningTest, GraftReplaceRedirectsAllIncomingEdges) {
  // Regression for the stale-subtree bug: mid-widening graphs can hold
  // several incoming edges on one or-vertex (the cycle introduction rule
  // creates back edges). graftReplace used to redirect only the
  // BFS-tree-parent edge, leaving the other parents pointing at the
  // replaced subtree. Build the sharing directly: f/1 and g/1 both point
  // at the same or-vertex.
  FunctorId FF = Syms.functor("f", 1);
  FunctorId GF = Syms.functor("g", 1);
  FunctorId AF = Syms.functor("a", 0);
  TypeGraph G;
  NodeId Shared = G.addOr({G.addFunc(AF, {})});
  NodeId F = G.addFunc(FF, {Shared});
  NodeId Gv = G.addFunc(GF, {Shared});
  G.setRoot(G.addOr({F, Gv}));

  TypeGraph Rep = parse("T ::= b.");
  TypeGraph Out =
      detail::graftReplace(G, Shared, Rep, G.computeTopology());
  // Both f and g must now see the replacement: f(b) | g(b), with no
  // residue of the old a-subtree anywhere.
  TypeGraph Want = parse("T ::= f(B) | g(B2).\nB ::= b.\nB2 ::= b.");
  EXPECT_TRUE(graphEquals(normalizeGraph(Out, Syms), Want, Syms))
      << printGrammar(normalizeGraph(Out, Syms), Syms);
}

TEST_F(WideningTest, WidenFromBottom) {
  TypeGraph Bot = TypeGraph::makeBottom();
  TypeGraph List = TypeGraph::makeAnyList(Syms);
  EXPECT_TRUE(graphEquals(graphWiden(Bot, List, Syms), List, Syms));
  EXPECT_TRUE(graphEquals(graphWiden(List, Bot, Syms), List, Syms));
}

//===----------------------------------------------------------------------===//
// Property sweeps.
//===----------------------------------------------------------------------===//

/// Generates the depth-\p Depth truncation of one infinite random tree
/// shape determined by \p Seed: choices depend on the tree *path*, so the
/// graph at depth D is a prefix of the graph at depth D+1. That mirrors
/// the Kleene iterates a fixpoint computation actually feeds the
/// widening (ever deeper unrollings of one recursive structure).
static int pathChance(uint32_t Seed, uint64_t Path, uint32_t Salt) {
  uint64_t H = Path * 1099511628211ULL ^
               (uint64_t(Salt) * 0x9e3779b97f4a7c15ULL) ^ Seed;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return static_cast<int>(H % 100);
}

static void genPathOr(TypeGraph &G, SymbolTable &Syms, NodeId Or,
                      uint32_t Seed, uint64_t Path, unsigned Depth) {
  FunctorId Cons = Syms.consFunctor();
  FunctorId NilF = Syms.nilFunctor();
  FunctorId SF = Syms.functor("s", 1);
  FunctorId ZeroF = Syms.functor("0", 0);
  FunctorId AF = Syms.functor("a", 0);
  std::vector<NodeId> Alts;
  Alts.push_back(G.addFunc(NilF, {}));
  if (Depth > 0 && pathChance(Seed, Path, 1) < 80) {
    NodeId Head = G.addOr({});
    NodeId Tail = G.addOr({});
    genPathOr(G, Syms, Head, Seed, Path * 4 + 1, Depth - 1);
    genPathOr(G, Syms, Tail, Seed, Path * 4 + 2, Depth - 1);
    Alts.push_back(G.addFunc(Cons, {Head, Tail}));
  }
  if (pathChance(Seed, Path, 2) < 30)
    Alts.push_back(G.addFunc(ZeroF, {}));
  if (Depth > 0 && pathChance(Seed, Path, 3) < 30) {
    NodeId Arg = G.addOr({});
    genPathOr(G, Syms, Arg, Seed, Path * 4 + 3, Depth - 1);
    Alts.push_back(G.addFunc(SF, {Arg}));
  }
  if (pathChance(Seed, Path, 4) < 20)
    Alts.push_back(G.addFunc(AF, {}));
  G.node(Or).Succs = std::move(Alts);
}

static TypeGraph randomListyGraph(SymbolTable &Syms, uint32_t Seed,
                                  unsigned Depth) {
  TypeGraph G;
  NodeId Root = G.addOr({});
  genPathOr(G, Syms, Root, Seed, 1, Depth);
  G.setRoot(Root);
  return normalizeGraph(G, Syms);
}

class WideningPropertyTest : public ::testing::TestWithParam<uint32_t> {
protected:
  SymbolTable Syms;
};

TEST_P(WideningPropertyTest, ResultIsUpperBound) {
  TypeGraph A = randomListyGraph(Syms, GetParam(), 2);
  TypeGraph B = randomListyGraph(Syms, GetParam() + 999331, 3);
  TypeGraph W = graphWiden(A, B, Syms);
  EXPECT_TRUE(graphIncludes(W, A, Syms));
  EXPECT_TRUE(graphIncludes(W, B, Syms));
  EXPECT_TRUE(W.validate(Syms));
}

TEST_P(WideningPropertyTest, IteratedWideningStabilizes) {
  // Simulates a fixpoint iteration: widen with ever deeper unrollings.
  // The chain must become stationary quickly (that is the entire point
  // of the operator).
  TypeGraph Acc = TypeGraph::makeBottom();
  unsigned Changes = 0;
  unsigned LastChange = 0;
  constexpr unsigned Steps = 12;
  for (unsigned Depth = 0; Depth != Steps; ++Depth) {
    TypeGraph Step = randomListyGraph(Syms, GetParam() * 31 + 7, Depth);
    TypeGraph Next = graphWiden(Acc, Step, Syms);
    if (!graphEquals(Next, Acc, Syms)) {
      ++Changes;
      LastChange = Depth;
    }
    Acc = Next;
  }
  // The chain must converge: with a fixed functor alphabet the widening
  // can only grow the graph a bounded number of times (Theorem 7.1).
  EXPECT_LT(Changes, Steps - 3u) << "widening chain kept changing";
  EXPECT_LT(LastChange, Steps - 3u) << "widening chain converged too late";
  // Re-widening with any earlier step is a no-op.
  TypeGraph Early = randomListyGraph(Syms, GetParam() * 31 + 7, 2);
  EXPECT_TRUE(graphEquals(graphWiden(Acc, Early, Syms), Acc, Syms));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideningPropertyTest,
                         ::testing::Range(0u, 25u));

} // namespace
