//===- tests/NormalizePropertyTest.cpp - Normalization pipeline properties ==//
///
/// \file
/// Property tests for the allocation-light normalization pipeline on
/// seeded random raw graphs:
///
///   1. outputs satisfy every cosmetic restriction (validate),
///   2. idempotence: normalize(normalize(G)) == normalize(G), and —
///      stronger, because re-normalization short-circuits through the
///      certificate — the *full pipeline* re-run on a certificate-
///      stripped copy reproduces the same structure (certificate
///      honesty),
///   3. language preservation, checked against an independent oracle: a
///      direct term-membership interpreter over the raw graph (the
///      subset construction is never consulted), with terms sampled
///      from both the raw and the normalized graph. Containment
///      (raw ⊆ normalized) must always hold; exactness is only promised
///      when no or-closure holds two same-functor constituents of
///      positive arity — the Principal-Functor restriction *merges*
///      those (g(a,b)|g(b,a) becomes g(a|b, a|b)), the representation's
///      inherent over-approximation —, so the reverse direction is
///      asserted only for unambiguous inputs,
///   4. the cached restrict/construct primitives agree with their
///      uncached implementations.
///
//===----------------------------------------------------------------------===//

#include "support/GraphInterner.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Normalize.h"
#include "typegraph/OpCache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <vector>

using namespace gaia;

namespace {

/// A ground Prolog term over the test signature. Integer literals are
/// nullary functors whose name spells a number.
struct Term {
  FunctorId Fn;
  std::vector<Term> Args;
};

/// Direct membership interpreter: t in Cc(V)? Independent of the subset
/// construction — this is the oracle the pipeline is tested against.
/// Or-cycles that consume no input are cut via the active set (a revisit
/// of the same (vertex, term) pair cannot contribute new members).
class Membership {
public:
  Membership(const TypeGraph &G, const SymbolTable &Syms)
      : G(G), Syms(Syms) {}

  bool accepts(NodeId V, const Term &T) {
    const TGNode &N = G.node(V);
    switch (N.Kind) {
    case NodeKind::Any:
      return true;
    case NodeKind::Int:
      return Syms.isIntegerLiteral(T.Fn) && T.Args.empty();
    case NodeKind::Func: {
      if (N.Fn != T.Fn || N.Succs.size() != T.Args.size())
        return false;
      for (size_t I = 0; I != T.Args.size(); ++I)
        if (!accepts(N.Succs[I], T.Args[I]))
          return false;
      return true;
    }
    case NodeKind::Or: {
      auto Key = std::make_pair(V, &T);
      if (!Active.insert(Key).second)
        return false;
      bool Ok = false;
      for (NodeId S : N.Succs)
        if (accepts(S, T)) {
          Ok = true;
          break;
        }
      Active.erase(Key);
      return Ok;
    }
    }
    return false;
  }

private:
  const TypeGraph &G;
  const SymbolTable &Syms;
  std::set<std::pair<NodeId, const Term *>> Active;
};

struct Signature {
  SymbolTable Syms;
  FunctorId A0, B0, C0, F1, G2, Lit;
  Signature() {
    A0 = Syms.functor("a", 0);
    B0 = Syms.functor("b", 0);
    C0 = Syms.functor("c", 0);
    F1 = Syms.functor("f", 1);
    G2 = Syms.functor("g", 2);
    Lit = Syms.functor("7", 0);
  }
};

class GraphGen {
public:
  GraphGen(Signature &Sig, uint32_t Seed) : Sig(Sig), Rng(Seed) {}

  /// A random raw graph: or-vertices wired with a random mix of leaves,
  /// functor vertices and other or-vertices (so or-or chains, sharing
  /// and cycles all occur), rooted at or-vertex 0.
  TypeGraph randomRaw() {
    TypeGraph G;
    uint32_t NumOrs = 2 + Rng() % 6;
    std::vector<NodeId> Ors;
    for (uint32_t I = 0; I != NumOrs; ++I)
      Ors.push_back(G.addOr({}));
    auto RandomOr = [&] { return Ors[Rng() % Ors.size()]; };
    for (NodeId Or : Ors) {
      SuccList Succs;
      uint32_t Degree = Rng() % 4;
      for (uint32_t J = 0; J != Degree; ++J) {
        switch (Rng() % 8) {
        case 0:
          Succs.push_back(G.addAny());
          break;
        case 1:
          Succs.push_back(G.addInt());
          break;
        case 2:
          Succs.push_back(G.addFunc(Sig.A0, {}));
          break;
        case 3:
          Succs.push_back(G.addFunc(Sig.B0, {}));
          break;
        case 4:
          Succs.push_back(G.addFunc(Sig.Lit, {}));
          break;
        case 5:
          Succs.push_back(G.addFunc(Sig.F1, {RandomOr()}));
          break;
        case 6:
          Succs.push_back(G.addFunc(Sig.G2, {RandomOr(), RandomOr()}));
          break;
        case 7:
          Succs.push_back(RandomOr()); // or-or edge
          break;
        }
      }
      G.node(Or).Succs = std::move(Succs);
    }
    G.setRoot(Ors[0]);
    return G;
  }

  /// Samples a ground term from Cc(V), or nullopt when the depth budget
  /// cannot reach a leaf along the tried branches.
  std::optional<Term> sample(const TypeGraph &G, NodeId V, uint32_t Depth) {
    const TGNode &N = G.node(V);
    switch (N.Kind) {
    case NodeKind::Any:
      return groundTerm(2);
    case NodeKind::Int:
      return Term{Sig.Lit, {}};
    case NodeKind::Func: {
      if (Depth == 0 && !N.Succs.empty())
        return std::nullopt;
      Term T{N.Fn, {}};
      for (NodeId S : N.Succs) {
        auto Arg = sample(G, S, Depth ? Depth - 1 : 0);
        if (!Arg)
          return std::nullopt;
        T.Args.push_back(std::move(*Arg));
      }
      return T;
    }
    case NodeKind::Or: {
      if (Depth == 0)
        return std::nullopt;
      std::vector<NodeId> Order(N.Succs.begin(), N.Succs.end());
      std::shuffle(Order.begin(), Order.end(), Rng);
      for (NodeId S : Order)
        if (auto T = sample(G, S, Depth - 1))
          return T;
      return std::nullopt;
    }
    }
    return std::nullopt;
  }

  Term groundTerm(uint32_t Depth) {
    if (Depth == 0 || Rng() % 2 == 0) {
      FunctorId Leaves[] = {Sig.A0, Sig.B0, Sig.C0, Sig.Lit};
      return Term{Leaves[Rng() % 4], {}};
    }
    if (Rng() % 2 == 0)
      return Term{Sig.F1, {groundTerm(Depth - 1)}};
    return Term{Sig.G2, {groundTerm(Depth - 1), groundTerm(Depth - 1)}};
  }

private:
  Signature &Sig;
  std::mt19937 Rng;
};

constexpr uint32_t NumGraphs = 150;
constexpr uint32_t SamplesPerGraph = 12;

/// True if some or-closure of \p G holds two distinct same-functor
/// constituents of positive arity — the case the Principal-Functor
/// restriction resolves by merging argument positions (a strict
/// over-approximation), which voids the exactness half of the
/// language-preservation property.
bool hasAmbiguousClosure(const TypeGraph &G) {
  for (NodeId V = 0; V != G.numNodes(); ++V) {
    if (G.node(V).Kind != NodeKind::Or)
      continue;
    // Expand the or-closure of V.
    std::vector<NodeId> Stack{V};
    std::set<NodeId> SeenOr;
    std::multiset<FunctorId> Fns;
    while (!Stack.empty()) {
      NodeId X = Stack.back();
      Stack.pop_back();
      const TGNode &N = G.node(X);
      if (N.Kind == NodeKind::Or) {
        if (SeenOr.insert(X).second)
          for (NodeId S : N.Succs)
            Stack.push_back(S);
      } else if (N.Kind == NodeKind::Func && !N.Succs.empty()) {
        if (Fns.count(N.Fn))
          return true;
        Fns.insert(N.Fn);
      }
    }
  }
  return false;
}

TEST(NormalizePropertyTest, OutputsValidateAndCertify) {
  Signature Sig;
  GraphGen Gen(Sig, 20260727);
  for (uint32_t I = 0; I != NumGraphs; ++I) {
    TypeGraph Raw = Gen.randomRaw();
    TypeGraph N = normalizeGraph(Raw, Sig.Syms);
    std::string Why;
    EXPECT_TRUE(N.validate(Sig.Syms, &Why)) << Why;
    EXPECT_TRUE(N.isNormalizedFor(0, NormalizeOptions{}.MaxNodes, 0));
  }
}

TEST(NormalizePropertyTest, IdempotentAndCertificateHonest) {
  Signature Sig;
  GraphGen Gen(Sig, 42);
  for (uint32_t I = 0; I != NumGraphs; ++I) {
    TypeGraph Raw = Gen.randomRaw();
    TypeGraph N1 = normalizeGraph(Raw, Sig.Syms);
    // API-level idempotence (allowed to use the certificate fast path).
    TypeGraph N2 = normalizeGraph(N1, Sig.Syms);
    EXPECT_TRUE(structuralEqual(N1, N2));
    // Certificate honesty: strip the certificate (compact() rebuilds the
    // node array, dropping derived caches) and force the full pipeline.
    TypeGraph Stripped = N1.compact();
    ASSERT_FALSE(Stripped.isNormalizedFor(0, NormalizeOptions{}.MaxNodes, 0));
    TypeGraph N3 = normalizeGraph(Stripped, Sig.Syms);
    EXPECT_TRUE(structuralEqual(N1, N3))
        << "full pipeline disagrees with certified fast path";
  }
}

TEST(NormalizePropertyTest, LanguagePreservingAgainstMembershipOracle) {
  Signature Sig;
  GraphGen Gen(Sig, 1507);
  uint32_t Checked = 0;
  for (uint32_t I = 0; I != NumGraphs; ++I) {
    TypeGraph Raw = Gen.randomRaw();
    TypeGraph N = normalizeGraph(Raw, Sig.Syms);
    bool Exact = !hasAmbiguousClosure(Raw);
    // Terms sampled from the raw graph stay in the normalized language
    // (containment holds unconditionally).
    for (uint32_t S = 0; S != SamplesPerGraph; ++S) {
      if (auto T = Gen.sample(Raw, Raw.root(), 6)) {
        ASSERT_TRUE(Membership(Raw, Sig.Syms).accepts(Raw.root(), *T))
            << "sampler produced a term outside its own graph";
        EXPECT_TRUE(Membership(N, Sig.Syms).accepts(N.root(), *T));
        ++Checked;
      }
      // On unambiguous inputs the construction is exact: terms sampled
      // from the normalized graph were already denoted by the raw one.
      if (Exact && !N.isBottomGraph())
        if (auto T = Gen.sample(N, N.root(), 6)) {
          EXPECT_TRUE(Membership(Raw, Sig.Syms).accepts(Raw.root(), *T));
          ++Checked;
        }
    }
  }
  // The generator must not have degenerated into all-bottom graphs.
  EXPECT_GT(Checked, NumGraphs);
}

TEST(NormalizePropertyTest, CachedRestrictAndConstructMatchUncached) {
  Signature Sig;
  GraphGen Gen(Sig, 7);
  NormalizeOptions Norm;
  OpCache Ops(Sig.Syms, Norm);
  for (uint32_t I = 0; I != NumGraphs; ++I) {
    TypeGraph N = normalizeGraph(Gen.randomRaw(), Sig.Syms);
    for (FunctorId Fn : {Sig.F1, Sig.G2, Sig.A0, Sig.Lit}) {
      std::vector<TypeGraph> Raw, Cached;
      bool OkRaw = graphRestrict(N, Fn, Sig.Syms, Norm, Raw);
      bool OkCached = Ops.restrictOf(N, Fn, Cached);
      ASSERT_EQ(OkRaw, OkCached);
      ASSERT_EQ(Raw.size(), Cached.size());
      for (size_t J = 0; J != Raw.size(); ++J)
        EXPECT_TRUE(graphEquals(Raw[J], Cached[J], Sig.Syms));
      if (OkRaw && !Raw.empty()) {
        TypeGraph CRaw = graphConstruct(Fn, Raw, Sig.Syms, Norm);
        TypeGraph CCached = Ops.constructOf(Fn, Cached);
        EXPECT_TRUE(structuralEqual(CRaw, CCached));
      }
    }
  }
}

} // namespace
