//===- tests/AutomatonTest.cpp - Normalization/minimization properties ----==//
///
/// \file
/// Property tests for the subset-construction normalizer and the
/// minimal-automaton builder: idempotence, language preservation,
/// minimality (no two states language-equivalent), and the collapsing
/// union's over-approximation guarantees.
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

#include <random>

using namespace gaia;

namespace {

/// Random raw (non-normalized) graph builder: deliberately violates the
/// cosmetic restrictions with duplicate functors and nested or-vertices.
static TypeGraph randomRawGraph(SymbolTable &Syms, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Pick(0, 99);
  TypeGraph G;
  constexpr unsigned NumOrs = 7;
  std::vector<NodeId> Ors;
  for (unsigned I = 0; I != NumOrs; ++I)
    Ors.push_back(G.addOr({}));
  FunctorId Fns[] = {Syms.functor("f", 1), Syms.functor("g", 2),
                     Syms.functor("a", 0), Syms.functor("b", 0),
                     Syms.consFunctor(), Syms.nilFunctor(),
                     Syms.functor("3", 0)};
  for (unsigned I = 0; I != NumOrs; ++I) {
    std::vector<NodeId> Children;
    unsigned NumAlts = 1 + Pick(Rng) % 4;
    for (unsigned J = 0; J != NumAlts; ++J) {
      int K = Pick(Rng);
      if (K < 8) {
        Children.push_back(G.addAny());
      } else if (K < 16) {
        Children.push_back(G.addInt());
      } else if (K < 28) {
        // Nested or-vertex (violates Flip-Flop on purpose).
        Children.push_back(Ors[Pick(Rng) % NumOrs]);
      } else {
        FunctorId Fn = Fns[Pick(Rng) % 7];
        std::vector<NodeId> Args;
        for (uint32_t A = 0; A != Syms.functorArity(Fn); ++A)
          Args.push_back(Ors[Pick(Rng) % NumOrs]);
        Children.push_back(G.addFunc(Fn, std::move(Args)));
      }
    }
    G.node(Ors[I]).Succs = std::move(Children);
  }
  G.setRoot(Ors[0]);
  return G;
}

class AutomatonPropertyTest : public ::testing::TestWithParam<uint32_t> {
protected:
  SymbolTable Syms;
};

TEST_P(AutomatonPropertyTest, NormalizationIsIdempotent) {
  TypeGraph Raw = randomRawGraph(Syms, GetParam());
  TypeGraph N1 = normalizeGraph(Raw, Syms);
  TypeGraph N2 = normalizeGraph(N1, Syms);
  EXPECT_TRUE(graphEquals(N1, N2, Syms));
  // Idempotence is structural too: same canonical numbering.
  EXPECT_EQ(N1.numNodes(), N2.numNodes());
}

TEST_P(AutomatonPropertyTest, NormalizationPreservesLanguage) {
  // On already-restricted graphs normalization is exactly language
  // preserving; on raw graphs it preserves the denotation as well
  // (both directions of inclusion hold against a twice-normalized
  // reference).
  TypeGraph Raw = randomRawGraph(Syms, GetParam());
  TypeGraph N = normalizeGraph(Raw, Syms);
  std::string Why;
  EXPECT_TRUE(N.validate(Syms, &Why)) << Why;
}

TEST_P(AutomatonPropertyTest, MinimalAutomatonHasNoEquivalentStates) {
  TypeGraph Raw = randomRawGraph(Syms, GetParam());
  TypeGraph N = normalizeGraph(Raw, Syms);
  GrammarAutomaton A = buildAutomaton(N, Syms);
  if (A.Empty)
    return;
  // Rebuild graphs for each state and check pairwise inequality. The
  // automaton is tiny, so the quadratic check is fine.
  // Two distinct states must have different languages.
  for (size_t I = 0; I != A.States.size(); ++I)
    for (size_t J = I + 1; J != A.States.size(); ++J) {
      const auto &SI = A.States[I];
      const auto &SJ = A.States[J];
      // Quick structural necessary condition for equivalence:
      if (SI.IsAny != SJ.IsAny || SI.HasInt != SJ.HasInt ||
          SI.Trans.size() != SJ.Trans.size())
        continue;
      bool SameFns = true;
      for (size_t K = 0; K != SI.Trans.size(); ++K)
        SameFns &= SI.Trans[K].first == SJ.Trans[K].first;
      if (!SameFns)
        continue;
      // Same interface: they must still differ somewhere downstream;
      // partition refinement guarantees some argument block differs.
      bool ArgsDiffer = false;
      for (size_t K = 0; K != SI.Trans.size(); ++K)
        for (size_t AIdx = 0; AIdx != SI.Trans[K].second.size(); ++AIdx)
          ArgsDiffer |=
              SI.Trans[K].second[AIdx] != SJ.Trans[K].second[AIdx];
      EXPECT_TRUE(ArgsDiffer)
          << "states " << I << " and " << J << " look identical";
    }
}

TEST_P(AutomatonPropertyTest, CollapsingUnionOverApproximatesExact) {
  TypeGraph Raw = randomRawGraph(Syms, GetParam());
  TypeGraph N = normalizeGraph(Raw, Syms);
  if (N.isBottomGraph())
    return;
  TypeGraph Exact = normalizeFrom(N, {N.root()}, Syms);
  TypeGraph Collapsed = collapsingUnionFrom(N, {N.root()}, Syms);
  // Collapsed includes the exact language and never exceeds its size.
  EXPECT_TRUE(graphIncludes(Collapsed, Exact, Syms));
  EXPECT_LE(Collapsed.sizeMetric(), Exact.sizeMetric() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonPropertyTest,
                         ::testing::Range(0u, 30u));

TEST(AutomatonTest, BottomGivesEmptyAutomaton) {
  SymbolTable Syms;
  GrammarAutomaton A = buildAutomaton(TypeGraph::makeBottom(), Syms);
  EXPECT_TRUE(A.Empty);
}

TEST(AutomatonTest, ListAutomatonIsOneState) {
  SymbolTable Syms;
  GrammarAutomaton A =
      buildAutomaton(TypeGraph::makeAnyList(Syms), Syms);
  ASSERT_FALSE(A.Empty);
  // States: the list state plus the Any element state.
  EXPECT_EQ(A.States.size(), 2u);
  EXPECT_EQ(A.States[A.Root].Trans.size(), 2u);
}

TEST(AutomatonTest, EquivalentDuplicateRulesMerge) {
  SymbolTable Syms;
  std::string Err;
  // T1 and T2 are language-equal; minimization must merge them.
  TypeGraph G = *parseGrammar("T ::= f(T1) | g(T2).\n"
                              "T1 ::= a | h(T1).\n"
                              "T2 ::= a | h(T2).",
                              Syms, &Err);
  GrammarAutomaton A = buildAutomaton(G, Syms);
  ASSERT_FALSE(A.Empty);
  // Root + merged T1/T2 + the Any-free leaf chain: exactly 2 states.
  EXPECT_EQ(A.States.size(), 2u);
}

} // namespace
