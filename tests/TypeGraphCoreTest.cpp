//===- tests/TypeGraphCoreTest.cpp - Representation-level tests -----------==//
///
/// \file
/// Unit tests for the type-graph representation: canonical graphs,
/// topology, pf-sets, compaction, the size metric, and the validator for
/// every cosmetic restriction of Section 6.4/6.5.
///
//===----------------------------------------------------------------------===//

#include "typegraph/TypeGraph.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class TypeGraphCoreTest : public ::testing::Test {
protected:
  SymbolTable Syms;
};

TEST_F(TypeGraphCoreTest, BottomGraphIsBottom) {
  TypeGraph G = TypeGraph::makeBottom();
  EXPECT_TRUE(G.isBottomGraph());
  EXPECT_TRUE(G.validate(Syms));
}

TEST_F(TypeGraphCoreTest, AnyGraphValidates) {
  TypeGraph G = TypeGraph::makeAny();
  EXPECT_FALSE(G.isBottomGraph());
  EXPECT_TRUE(G.validate(Syms));
  EXPECT_EQ(G.node(G.root()).Kind, NodeKind::Or);
  ASSERT_EQ(G.node(G.root()).Succs.size(), 1u);
  EXPECT_EQ(G.node(G.node(G.root()).Succs[0]).Kind, NodeKind::Any);
}

TEST_F(TypeGraphCoreTest, IntGraphValidates) {
  TypeGraph G = TypeGraph::makeInt();
  EXPECT_TRUE(G.validate(Syms));
  std::vector<FunctorId> Pf = G.pfSet(G.root(), Syms);
  ASSERT_EQ(Pf.size(), 1u);
  EXPECT_EQ(Pf[0], Syms.intFunctor());
}

TEST_F(TypeGraphCoreTest, FunctorOfAnyHasRightShape) {
  FunctorId F = Syms.functor("tree", 3);
  TypeGraph G = TypeGraph::makeFunctorOfAny(Syms, F);
  ASSERT_TRUE(G.validate(Syms));
  const TGNode &Root = G.node(G.root());
  ASSERT_EQ(Root.Succs.size(), 1u);
  const TGNode &Func = G.node(Root.Succs[0]);
  EXPECT_EQ(Func.Kind, NodeKind::Func);
  EXPECT_EQ(Func.Fn, F);
  EXPECT_EQ(Func.Succs.size(), 3u);
}

TEST_F(TypeGraphCoreTest, AnyListValidatesAndHasCycle) {
  TypeGraph G = TypeGraph::makeAnyList(Syms);
  std::string Why;
  ASSERT_TRUE(G.validate(Syms, &Why)) << Why;
  std::vector<FunctorId> Pf = G.pfSet(G.root(), Syms);
  ASSERT_EQ(Pf.size(), 2u);
  // pf-set is sorted by functor id; membership is what matters.
  EXPECT_TRUE((Pf[0] == Syms.consFunctor() && Pf[1] == Syms.nilFunctor()) ||
              (Pf[1] == Syms.consFunctor() && Pf[0] == Syms.nilFunctor()));
}

TEST_F(TypeGraphCoreTest, TopologyDepthsMatchPaperConvention) {
  // Paper: depth of a vertex is the length of the shortest path from the
  // root, so the root has depth 1.
  TypeGraph G = TypeGraph::makeAnyList(Syms);
  TypeGraph::Topology T = G.computeTopology();
  EXPECT_EQ(T.Depth[G.root()], 1u);
  for (NodeId S : G.node(G.root()).Succs)
    EXPECT_EQ(T.Depth[S], 2u);
  EXPECT_EQ(T.Parent[G.root()], InvalidNode);
}

TEST_F(TypeGraphCoreTest, CompactDropsUnreachable) {
  TypeGraph G = TypeGraph::makeAny();
  // Add garbage nodes not connected to the root.
  G.addInt();
  G.addOr({});
  EXPECT_EQ(G.numNodes(), 4u);
  TypeGraph C = G.compact();
  EXPECT_EQ(C.numNodes(), 2u);
  EXPECT_TRUE(C.validate(Syms));
}

TEST_F(TypeGraphCoreTest, SizeMetricCountsVerticesAndEdges) {
  // Or -> Any: 2 vertices + 1 edge = 3.
  EXPECT_EQ(TypeGraph::makeAny().sizeMetric(), 3u);
  // List graph: or(2) + nil(0) + cons(2: head-or + back edge) +
  // head-or(1: any) + any = 5 vertices + 5 edges.
  EXPECT_EQ(TypeGraph::makeAnyList(Syms).sizeMetric(), 10u);
}

TEST_F(TypeGraphCoreTest, ValidateRejectsFuncRoot) {
  TypeGraph G;
  G.setRoot(G.addFunc(Syms.nilFunctor(), {}));
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("Flip-Flop"), std::string::npos);
}

TEST_F(TypeGraphCoreTest, ValidateRejectsDuplicateFunctors) {
  // Or with two f/0 successors violates the principal functor restriction.
  TypeGraph G;
  FunctorId F = Syms.functor("f", 0);
  NodeId A = G.addFunc(F, {});
  NodeId B = G.addFunc(F, {});
  G.setRoot(G.addOr({A, B}));
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("Principal-Functor"), std::string::npos);
}

TEST_F(TypeGraphCoreTest, ValidateRejectsAnyAmongOthers) {
  TypeGraph G;
  NodeId A = G.addAny();
  NodeId B = G.addFunc(Syms.nilFunctor(), {});
  G.setRoot(G.addOr({A, B}));
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("Isolated-Any"), std::string::npos);
}

TEST_F(TypeGraphCoreTest, ValidateRejectsSharing) {
  // Two functor vertices sharing one argument or-vertex (a DAG) violate
  // No-Sharing.
  TypeGraph G;
  NodeId Leaf = G.addAny();
  NodeId Shared = G.addOr({Leaf});
  FunctorId F = Syms.functor("f", 1);
  FunctorId H = Syms.functor("g", 1);
  NodeId FN = G.addFunc(F, {Shared});
  NodeId GN = G.addFunc(H, {Shared});
  G.setRoot(G.addOr({FN, GN}));
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("No-Sharing"), std::string::npos);
}

TEST_F(TypeGraphCoreTest, ValidateRejectsUnsortedOr) {
  TypeGraph G;
  NodeId B = G.addFunc(Syms.functor("b", 0), {});
  NodeId A = G.addFunc(Syms.functor("a", 0), {});
  G.setRoot(G.addOr({B, A}));
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("sorted"), std::string::npos);
  G.sortOrSuccessors(Syms);
  EXPECT_TRUE(G.validate(Syms, &Why)) << Why;
}

TEST_F(TypeGraphCoreTest, ValidateRejectsIntLiteralBesideInt) {
  TypeGraph G;
  NodeId I = G.addInt();
  NodeId Zero = G.addFunc(Syms.functor("0", 0), {});
  G.setRoot(G.addOr({I, Zero}));
  G.sortOrSuccessors(Syms);
  std::string Why;
  EXPECT_FALSE(G.validate(Syms, &Why));
  EXPECT_NE(Why.find("literal"), std::string::npos);
}

TEST_F(TypeGraphCoreTest, IsIntegerLiteralRecognition) {
  EXPECT_TRUE(Syms.isIntegerLiteral(Syms.functor("0", 0)));
  EXPECT_TRUE(Syms.isIntegerLiteral(Syms.functor("42", 0)));
  EXPECT_TRUE(Syms.isIntegerLiteral(Syms.functor("-7", 0)));
  EXPECT_FALSE(Syms.isIntegerLiteral(Syms.functor("x1", 0)));
  EXPECT_FALSE(Syms.isIntegerLiteral(Syms.functor("1", 1)));
  EXPECT_FALSE(Syms.isIntegerLiteral(Syms.functor("-", 0)));
}

} // namespace
