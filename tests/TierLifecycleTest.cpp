//===- tests/TierLifecycleTest.cpp - Tier lifecycle contract tests --------==//
///
/// \file
/// The managed cache-tier lifecycle (runtime/SharedCache.h promotion and
/// compaction, runtime/TierLifecycle.h control plane, and the
/// RelocationTable currency of support/Relocation.h). The load-bearing
/// property throughout: every tier configuration — fresh, stacked,
/// promoted, compacted — serves bit-identical analysis results, because
/// cached entries are exact pure functions of operand languages. The
/// differential test below runs every Section 9 program against all
/// four configurations and is gated in ctest.
///
//===----------------------------------------------------------------------===//

#include "runtime/TierLifecycle.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "support/Relocation.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace gaia;

namespace {

std::string fingerprint(const AnalysisResult &R) {
  return analysisFingerprint(R);
}

std::vector<AnalysisJob> section9Jobs() {
  std::vector<AnalysisJob> Jobs;
  for (const BenchmarkProgram &B : table123Suite())
    Jobs.push_back({B.Key, B.Source, B.GoalSpec});
  return Jobs;
}

/// A query variant the published-goal warmup never sees: its entries
/// reach the tier only through the promotion path.
AnalysisJob variantJob(const char *Key, const char *Spec) {
  const BenchmarkProgram *B = findBenchmark(Key);
  std::string Goal = B->GoalSpec;
  size_t Pos = Goal.find("any");
  EXPECT_NE(Pos, std::string::npos);
  Goal.replace(Pos, 3, Spec);
  return {std::string(Key) + "#" + Spec, B->Source, Goal};
}

/// A program with functors no Section 9 program uses — tier entries that
/// go stale the moment nothing re-runs it.
AnalysisJob churnJob(unsigned N) {
  std::string S = std::to_string(N);
  return {"churn#" + S,
          "p([]).\n"
          "p([soak_t" + S + "(X)|T]) :- q(X), p(T).\n"
          "q(soak_t" + S + "(a_" + S + ")).\n"
          "q(b_" + S + ").\n",
          "p(any)"};
}

AnalysisResult runOver(const AnalysisJob &J,
                       std::shared_ptr<const SharedCache> Tier,
                       bool CollectDelta = false, uint32_t MinHits = 0) {
  AnalyzerOptions Opts;
  Opts.Shared = std::move(Tier);
  Opts.CollectDelta = CollectDelta;
  Opts.DeltaMinHits = MinHits;
  return analyzeProgram(J.Source, J.GoalSpec, Opts);
}

std::shared_ptr<const SharedCache> buildTier(
    const std::vector<AnalysisJob> &Warmup,
    std::shared_ptr<const SharedCache> Prev = nullptr) {
  AnalyzerOptions Opts;
  Opts.Shared = std::move(Prev);
  std::string Err;
  std::shared_ptr<const SharedCache> T =
      SharedCache::build(Warmup, Opts, &Err);
  EXPECT_NE(T, nullptr) << Err;
  return T;
}

TEST(RelocationTableTest, IdentityMapsEveryIdToItself) {
  RelocationTable<CanonId> R = RelocationTable<CanonId>::identity(5);
  EXPECT_EQ(R.size(), 5u);
  EXPECT_EQ(R.liveCount(), 5u);
  for (CanonId Id = 0; Id != 5; ++Id) {
    EXPECT_TRUE(R.live(Id));
    EXPECT_EQ(R.map(Id), Id);
  }
}

TEST(RelocationTableTest, FreshTableDropsEverythingUntilSet) {
  RelocationTable<CanonId> R(4);
  EXPECT_EQ(R.liveCount(), 0u);
  for (CanonId Id = 0; Id != 4; ++Id)
    EXPECT_FALSE(R.live(Id));
  R.set(2, 0);
  R.set(3, 1);
  EXPECT_EQ(R.liveCount(), 2u);
  EXPECT_FALSE(R.live(0));
  EXPECT_TRUE(R.live(3));
  EXPECT_EQ(R.map(2), 0u);
  EXPECT_EQ(R.map(3), 1u);
}

/// The tentpole's acceptance differential: each Section 9 program,
/// analyzed over (a) no tier, (b) the warmed tier, (c) a tier stacked on
/// a previous tier, (d) a promotion refreeze, (e) a compaction rebuild —
/// five bit-identical fingerprints.
TEST(TierLifecycleTest, FreshStackedPromotedCompactedAreBitIdentical) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  // (b) warm on the first half, (c) stack the second half on top.
  std::vector<AnalysisJob> FirstHalf(Jobs.begin(),
                                     Jobs.begin() + Jobs.size() / 2);
  std::vector<AnalysisJob> SecondHalf(Jobs.begin() + Jobs.size() / 2,
                                      Jobs.end());
  std::shared_ptr<const SharedCache> Warmed = buildTier(Jobs);
  std::shared_ptr<const SharedCache> Stacked =
      buildTier(SecondHalf, buildTier(FirstHalf));

  // (d) promote a variant job's harvested delta onto the warmed tier.
  AnalysisJob Variant = variantJob("QU", "list");
  AnalysisResult VarRun = runOver(Variant, Warmed, /*CollectDelta=*/true);
  ASSERT_TRUE(VarRun.Ok);
  ASSERT_NE(VarRun.Delta, nullptr)
      << "an unwarmed variant must leave a non-empty delta";
  std::shared_ptr<const SharedCache> Promoted =
      Warmed->promoteAndRefreeze({VarRun.Delta});
  EXPECT_GT(Promoted->stats().AbsorbedEntries, 0u);
  EXPECT_GE(Promoted->stats().Graphs, Warmed->stats().Graphs);

  // (e) compact the promoted tier: touch everything the Section 9 jobs
  // need in a new generation, then drop the rest.
  Promoted->ops()->Intern->advanceGeneration();
  for (const AnalysisJob &J : Jobs)
    ASSERT_TRUE(runOver(J, Promoted).Ok);
  CompactionPolicy CP;
  CP.KeepGens = 0;
  std::shared_ptr<const SharedCache> Compacted =
      Promoted->compactAndRefreeze(CP);

  for (const AnalysisJob &J : Jobs) {
    AnalysisResult Cold = analyzeProgram(J.Source, J.GoalSpec);
    ASSERT_TRUE(Cold.Ok) << J.Key;
    const std::string Want = fingerprint(Cold);
    EXPECT_EQ(Want, fingerprint(runOver(J, Warmed))) << J.Key << " warmed";
    EXPECT_EQ(Want, fingerprint(runOver(J, Stacked))) << J.Key << " stacked";
    EXPECT_EQ(Want, fingerprint(runOver(J, Promoted))) << J.Key << " promoted";
    EXPECT_EQ(Want, fingerprint(runOver(J, Compacted)))
        << J.Key << " compacted";
  }
}

TEST(TierLifecycleTest, PromotionMakesAVariantsEntriesShared) {
  std::shared_ptr<const SharedCache> Tier = buildTier(section9Jobs());
  AnalysisJob Variant = variantJob("PG", "list");

  AnalysisResult Before = runOver(Variant, Tier, /*CollectDelta=*/true);
  ASSERT_TRUE(Before.Ok);
  ASSERT_NE(Before.Delta, nullptr);
  EXPECT_GT(Before.Delta->entryCount(), 0u);
  EXPECT_GT(Before.Stats.OpCacheMisses, 0u)
      << "the unwarmed variant must compute something fresh";

  std::shared_ptr<const SharedCache> Promoted =
      Tier->promoteAndRefreeze({Before.Delta});
  AnalysisResult After = runOver(Variant, Promoted);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(fingerprint(Before), fingerprint(After));
  EXPECT_GT(After.Stats.OpCacheSharedHits, Before.Stats.OpCacheSharedHits)
      << "promoted entries must resolve from the tier";
  EXPECT_LT(After.Stats.OpCacheMisses, Before.Stats.OpCacheMisses);

  // Null and repeated deltas are tolerated; absorbing the same delta
  // twice adds nothing the second time.
  std::shared_ptr<const SharedCache> Again =
      Promoted->promoteAndRefreeze({nullptr, Before.Delta});
  EXPECT_EQ(Again->stats().Graphs, Promoted->stats().Graphs);
}

TEST(TierLifecycleTest, CompactionDropsUntouchedAndFillsTheRelocationTable) {
  // Tier = Section 9 + a churn program's entries (via promotion).
  std::shared_ptr<const SharedCache> Base = buildTier(section9Jobs());
  AnalysisResult Churn =
      runOver(churnJob(1), Base, /*CollectDelta=*/true);
  ASSERT_TRUE(Churn.Ok);
  ASSERT_NE(Churn.Delta, nullptr);
  std::shared_ptr<const SharedCache> Tier =
      Base->promoteAndRefreeze({Churn.Delta});
  const uint32_t OldSize = Tier->ops()->Intern->size();

  // New generation; only the Section 9 jobs run, so the churn entries
  // (and any warmup entries the jobs no longer need) go stale.
  Tier->ops()->Intern->advanceGeneration();
  for (const AnalysisJob &J : section9Jobs())
    ASSERT_TRUE(runOver(J, Tier).Ok);

  CompactionPolicy CP;
  CP.KeepGens = 0;
  RelocationTable<CanonId> Reloc(0);
  std::shared_ptr<const SharedCache> Compacted =
      Tier->compactAndRefreeze(CP, &Reloc);

  EXPECT_EQ(Reloc.size(), OldSize);
  EXPECT_GT(Compacted->stats().DroppedGraphs, 0u)
      << "the churn entries were not touched and must be dropped";
  EXPECT_EQ(Compacted->stats().DroppedGraphs + Reloc.liveCount(), OldSize);
  EXPECT_LT(Compacted->stats().Graphs, Tier->stats().Graphs);
  EXPECT_LE(Compacted->tierBytes(), Tier->tierBytes());

  // The relocation table is the old->new id dictionary: re-interning a
  // surviving old-tier graph against the compacted tier must land on
  // exactly the mapped id.
  const FrozenInternTier &OldIT = *Tier->ops()->Intern;
  SymbolTable Syms = Compacted->symbols();
  GraphInterner Probe(Syms, Compacted->ops()->Intern);
  uint32_t Checked = 0;
  for (CanonId Old = 0; Old != OldSize; ++Old) {
    if (!Reloc.live(Old))
      continue;
    TypeGraph Copy = OldIT.Canon[Old]; // copy: intern writes its caches
    EXPECT_EQ(Probe.intern(Copy), Reloc.map(Old)) << "old id " << Old;
    ++Checked;
  }
  EXPECT_EQ(Checked, Reloc.liveCount());

  // Dropped ids answer live() = false and keep the sentinel.
  bool SawDropped = false;
  for (CanonId Old = 0; Old != OldSize; ++Old)
    SawDropped = SawDropped || !Reloc.live(Old);
  EXPECT_TRUE(SawDropped);
}

TEST(TierLifecycleTest, LifecycleRotatesTiersAcrossBatchesUnchanged) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  std::map<std::string, std::string> Oracle;
  for (const AnalysisJob &J : Jobs)
    Oracle[J.Key] = fingerprint(analyzeProgram(J.Source, J.GoalSpec));

  LifecyclePolicy LP;
  LP.PromoteMinHits = 0; // promote everything a job computes
  LP.CompactEvery = 2;
  LP.KeepGens = 1;
  TierLifecycle L(buildTier(Jobs), LP);

  PoolOptions PO;
  PO.Workers = 4;
  PO.Shared = L.current();
  PO.CollectDeltas = true;
  PO.DeltaMinHits = LP.PromoteMinHits;
  AnalysisPool Pool(PO);

  for (unsigned Gen = 0; Gen != 4; ++Gen) {
    std::vector<AnalysisJob> Batch = Jobs;
    Batch.push_back(churnJob(100 + Gen));
    std::string ChurnWant = fingerprint(
        analyzeProgram(Batch.back().Source, Batch.back().GoalSpec));

    Pool.setShared(L.current());
    std::vector<JobOutcome> Out = Pool.run(Batch);
    ASSERT_EQ(Out.size(), Batch.size());
    for (size_t I = 0; I != Jobs.size(); ++I)
      EXPECT_EQ(Oracle[Batch[I].Key], fingerprint(Out[I].Result))
          << Batch[I].Key << " at generation " << Gen;
    EXPECT_EQ(ChurnWant, fingerprint(Out.back().Result))
        << "churn at generation " << Gen;
    L.endBatch(Out);
  }
  EXPECT_EQ(L.stats().Batches, 4u);
  EXPECT_GT(L.stats().Promotions, 0u);
  EXPECT_GT(L.stats().Compactions, 0u) << "cadence = 2 over 4 batches";
  EXPECT_GT(L.stats().DroppedGraphs, 0u)
      << "each generation's churn must eventually be dropped";
}

TEST(TierLifecycleTest, ByteBudgetForcesEvictionDownToTheWorkingSet) {
  std::vector<AnalysisJob> Jobs = section9Jobs();
  std::shared_ptr<const SharedCache> Tier = buildTier(Jobs);

  LifecyclePolicy LP;
  LP.PromoteMinHits = 0;
  LP.CompactEvery = 0; // budget only
  LP.KeepGens = 1;
  // A budget below the warmed tier's footprint: the first endBatch must
  // evict. The working set of one small program is far below it after.
  LP.MaxTierBytes = Tier->tierBytes() / 2;
  TierLifecycle L(Tier, LP);

  // One batch touching a single program; everything else goes stale.
  AnalysisJob Small{"QU", findBenchmark("QU")->Source,
                    findBenchmark("QU")->GoalSpec};
  // Two generations of touches so KeepGens = 1 has history to act on.
  for (int Round = 0; Round != 2; ++Round) {
    JobOutcome O;
    O.Result = runOver(Small, L.current(), /*CollectDelta=*/true, 0);
    ASSERT_TRUE(O.Result.Ok);
    L.endBatch({O});
  }
  EXPECT_GT(L.stats().Evictions, 0u);
  EXPECT_LT(L.current()->tierBytes(), Tier->tierBytes());
  EXPECT_LE(L.current()->tierBytes(), LP.MaxTierBytes)
      << "one program's working set fits well under half the full tier";

  // The shrunken tier still serves exact results.
  AnalysisResult Cold = analyzeProgram(Small.Source, Small.GoalSpec);
  EXPECT_EQ(fingerprint(Cold), fingerprint(runOver(Small, L.current())));
}

} // namespace
