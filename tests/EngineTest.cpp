//===- tests/EngineTest.cpp - GAIA fixpoint engine tests ------------------==//
///
/// \file
/// End-to-end fixpoint tests on small programs, including the first of
/// the paper's Section 2 examples (nreverse). The full Section 2 golden
/// suite lives in AnalyzerSection2Test.cpp; here we exercise the engine
/// API directly and its corner cases (recursion, mutual recursion,
/// failure, polyvariance, builtins).
///
//===----------------------------------------------------------------------===//

#include "gaia/Engine.h"

#include "core/Analyzer.h"
#include "domains/PFLeaf.h"
#include "domains/TypeLeaf.h"
#include "programs/Benchmarks.h"
#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class EngineTest : public ::testing::Test {
protected:
  EngineTest() : Ctx{Syms, {}, {}, nullptr} {}

  void load(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    ASSERT_TRUE(P.has_value()) << Err;
    Prog = *P;
    NProg = NProgram::fromProgram(Prog, Syms);
  }

  /// Runs predicate Name/Arity with all-Any input; returns the output.
  PatSub<TypeLeaf> analyze(const char *Name, uint32_t Arity,
                           EngineOptions Opts = {}) {
    Eng = std::make_unique<Engine<TypeLeaf>>(NProg, Ctx, Opts);
    PatSub<TypeLeaf> In = PatSub<TypeLeaf>::top(Ctx, Arity);
    return Eng->solve(Syms.functor(Name, Arity), In);
  }

  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err;
    return G ? *G : TypeGraph::makeBottom();
  }

  void expectArg(const PatSub<TypeLeaf> &Out, uint32_t Slot,
                 const char *Grammar) {
    TypeGraph Got = Out.slotValue(Ctx, Slot);
    TypeGraph Want = parse(Grammar);
    EXPECT_TRUE(graphEquals(Got, Want, Syms))
        << "slot " << Slot << ": got\n"
        << printGrammar(Got, Syms) << "want\n"
        << printGrammar(Want, Syms);
  }

  SymbolTable Syms;
  TypeLeaf::Context Ctx;
  Program Prog;
  NProgram NProg;
  std::unique_ptr<Engine<TypeLeaf>> Eng;
};

TEST_F(EngineTest, FactOnly) {
  load("p(a).\n");
  PatSub<TypeLeaf> Out = analyze("p", 1);
  ASSERT_FALSE(Out.isBottom());
  expectArg(Out, 0, "T ::= a.");
}

TEST_F(EngineTest, TwoFactsJoin) {
  load("p(a).\np(b).\n");
  expectArg(analyze("p", 1), 0, "T ::= a | b.");
}

TEST_F(EngineTest, FailingPredicateIsBottom) {
  load("p(X) :- fail.\n");
  EXPECT_TRUE(analyze("p", 1).isBottom());
}

TEST_F(EngineTest, StructuresPropagate) {
  load("p(f(X,Y)) :- q(X), r(Y).\nq(a).\nr(b).\n");
  expectArg(analyze("p", 1), 0, "T ::= f(A,B).\nA ::= a.\nB ::= b.");
}

TEST_F(EngineTest, AppendFirstArgumentIsList) {
  load("append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  PatSub<TypeLeaf> Out = analyze("append", 3);
  expectArg(Out, 0, "T ::= [] | cons(Any,T).");
}

TEST_F(EngineTest, NreverseMatchesPaper) {
  // Section 2: for nreverse(Any,Any) the system produces
  // nreverse(T,T) with T ::= [] | cons(Any,T).
  load("nreverse([],[]).\n"
       "nreverse([F|T],Res) :- nreverse(T,Trev), append(Trev,[F],Res).\n"
       "append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  PatSub<TypeLeaf> Out = analyze("nreverse", 2);
  ASSERT_FALSE(Out.isBottom());
  expectArg(Out, 0, "T ::= [] | cons(Any,T).");
  expectArg(Out, 1, "T ::= [] | cons(Any,T).");
}

TEST_F(EngineTest, MutualRecursionConverges) {
  load("even(0).\neven(s(X)) :- odd(X).\nodd(s(X)) :- even(X).\n");
  PatSub<TypeLeaf> Out = analyze("even", 1);
  ASSERT_FALSE(Out.isBottom());
  // The analysis infers exactly the even Peano numerals.
  expectArg(Out, 0, "T ::= 0 | s(T1).\nT1 ::= s(T).");
}

TEST_F(EngineTest, ArithmeticBuiltinsGiveInt) {
  load("inc(X,Y) :- Y is X + 1.\n");
  PatSub<TypeLeaf> Out = analyze("inc", 2);
  expectArg(Out, 1, "T ::= Int.");
}

TEST_F(EngineTest, ComparisonRefinementIsOptIn) {
  load("min(X,Y,X) :- X < Y.\nmin(X,Y,Y) :- X >= Y.\n");
  // Default (paper-faithful): comparisons do not refine.
  PatSub<TypeLeaf> Out = analyze("min", 3);
  expectArg(Out, 0, "T ::= Any.");
  // Opt-in: both sides become Int.
  EngineOptions Opts;
  Opts.RefineArithComparisons = true;
  Out = analyze("min", 3, Opts);
  expectArg(Out, 0, "T ::= Int.");
  expectArg(Out, 1, "T ::= Int.");
  expectArg(Out, 2, "T ::= Int.");
}

TEST_F(EngineTest, ComparisonOverExpressionsStaysSound) {
  // queens-style: X =\= Y + N compares an expression; with refinement
  // off the analysis must not fail.
  load("safe(X,Y,N) :- X =\\= Y + N.\n");
  PatSub<TypeLeaf> Out = analyze("safe", 3);
  EXPECT_FALSE(Out.isBottom());
}

TEST_F(EngineTest, PolyvariantEntries) {
  // p is called with two different input patterns; the analysis must
  // keep them apart (it is polyvariant).
  load("main(X,Y) :- p(a,X), p(f(Z),Y).\n"
       "p(X,X).\n");
  Eng = std::make_unique<Engine<TypeLeaf>>(NProg, Ctx);
  PatSub<TypeLeaf> In = PatSub<TypeLeaf>::top(Ctx, 2);
  PatSub<TypeLeaf> Out = Eng->solve(Syms.functor("main", 2), In);
  ASSERT_FALSE(Out.isBottom());
  expectArg(Out, 0, "T ::= a.");
  expectArg(Out, 1, "T ::= f(Any).");
  // main + two p entries.
  EXPECT_GE(Eng->stats().InputPatterns, 3u);
}

TEST_F(EngineTest, RepeatedCallPatternsShareOneEntry) {
  // Both calls of p present the same input pattern; the hashed memo
  // lookup must find the first entry for the second call instead of
  // allocating a duplicate.
  load("main(X,Y) :- p(a,X), p(a,Y).\n"
       "p(X,X).\n");
  Eng = std::make_unique<Engine<TypeLeaf>>(NProg, Ctx);
  PatSub<TypeLeaf> In = PatSub<TypeLeaf>::top(Ctx, 2);
  PatSub<TypeLeaf> Out = Eng->solve(Syms.functor("main", 2), In);
  ASSERT_FALSE(Out.isBottom());
  EXPECT_EQ(Eng->stats().InputPatterns, 2u); // main + one p entry
  EXPECT_GE(Eng->stats().EntryLookups, 2u);
}

TEST_F(EngineTest, ExhaustedFixpointBudgetFallsBackToTop) {
  // Regression for the silent-non-convergence bug: the stabilization
  // guard used to be assert(Rounds < 10000), which compiles away under
  // NDEBUG and let release builds return a dirty (non-converged) result
  // as if final. With the budget too small to converge, the engine must
  // take the explicit failure path: degrade to top (sound), count the
  // abort, and still terminate — in every build mode.
  load("append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  EngineOptions Opts;
  Opts.MaxFixpointRounds = 1;
  PatSub<TypeLeaf> Out = analyze("append", 3, Opts);
  EXPECT_GE(Eng->stats().FixpointAborts, 1u);
  ASSERT_FALSE(Out.isBottom());
  // The fallback must still cover the true answer (soundness).
  TypeGraph List = parse("T ::= [] | cons(Any,T).");
  EXPECT_TRUE(graphIncludes(Out.slotValue(Ctx, 0), List, Syms));
}

TEST_F(EngineTest, DefaultBudgetConvergesWithoutAborts) {
  load("append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  analyze("append", 3);
  EXPECT_EQ(Eng->stats().FixpointAborts, 0u);
}

TEST_F(EngineTest, AnalyzerSurfacesNonConvergence) {
  const char *Src = "append([],X,X).\n"
                    "append([F|T],S,[F|R]) :- append(T,S,R).\n";
  AnalyzerOptions Tight;
  Tight.MaxFixpointRounds = 1;
  AnalysisResult R = analyzeProgram(Src, "append(any,any,any)", Tight);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Converged);
  EXPECT_GE(R.Stats.FixpointAborts, 1u);

  AnalysisResult R2 = analyzeProgram(Src, "append(any,any,any)");
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_TRUE(R2.Converged);
  EXPECT_EQ(R2.Stats.FixpointAborts, 0u);
}

TEST_F(EngineTest, StatsAreCounted) {
  load("append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  analyze("append", 3);
  EXPECT_GE(Eng->stats().ProcedureIterations, 2u);
  EXPECT_GE(Eng->stats().ClauseIterations,
            2 * Eng->stats().ProcedureIterations - 2);
  EXPECT_GT(Eng->stats().SolveSeconds, 0.0);
}

TEST_F(EngineTest, StaleDependencyEdgesAreUnlinked) {
  // Regression test for the reverse-dependency graph: compute() clears
  // an entry's Deps each pass, and must also remove the entry from the
  // old callees' Dependents sets. With the stale edges left in place,
  // entries abandoned as call patterns evolve along a recursion kept
  // dirtying their former dependents on every version bump, inflating
  // both the spurious-invalidation skip counter and — through transitive
  // dirtying — the real recompute count. On the KA and RE benchmarks the
  // stale-edge engine measured 156/121 procedure iterations with 1/0
  // skips; unlinking gives the counts below. The analysis *results* are
  // identical either way (recomputes are idempotent); the counters pin
  // the dependency bookkeeping itself.
  const BenchmarkProgram *KA = findBenchmark("KA");
  ASSERT_NE(KA, nullptr);
  AnalysisResult R = analyzeProgram(KA->Source, KA->GoalSpec);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Stats.ProcedureIterations, 146u) << "stale edges gave 156";
  EXPECT_EQ(R.Stats.RecomputesSkipped, 0u)
      << "every skip on KA came from a spurious stale-edge invalidation";

  const BenchmarkProgram *RE = findBenchmark("RE");
  ASSERT_NE(RE, nullptr);
  AnalysisResult R2 = analyzeProgram(RE->Source, RE->GoalSpec);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R2.Stats.ProcedureIterations, 121u) << "stale edges gave 153";
}

TEST_F(EngineTest, AccumulatorProcessExample) {
  // Section 2, the parser abstraction with an accumulator:
  // process(T,S): T ::= [] | cons(T1,T); T1 ::= c(Any) | d(Any);
  //               S ::= 0 | c(Any,S) | d(Any,S).
  load("process(X,Y) :- process(X,0,Y).\n"
       "process([],X,X).\n"
       "process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).\n"
       "process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).\n");
  PatSub<TypeLeaf> Out = analyze("process", 2);
  ASSERT_FALSE(Out.isBottom());
  expectArg(Out, 0, "T ::= [] | cons(T1,T).\nT1 ::= c(Any) | d(Any).");
  expectArg(Out, 1, "S ::= 0 | c(Any,S) | d(Any,S).");
}

//===----------------------------------------------------------------------===//
// Principal-functor instantiation.
//===----------------------------------------------------------------------===//

class PFEngineTest : public ::testing::Test {
protected:
  PFEngineTest() : Ctx{Syms} {}

  void load(const char *Src) {
    std::string Err;
    std::optional<Program> P = Program::parse(Src, Syms, &Err);
    ASSERT_TRUE(P.has_value()) << Err;
    Prog = *P;
    NProg = NProgram::fromProgram(Prog, Syms);
  }

  SymbolTable Syms;
  PFLeaf::Context Ctx;
  Program Prog;
  NProgram NProg;
};

TEST_F(PFEngineTest, SingleFunctorIsKept) {
  load("p(f(X)) :- q(X).\nq(a).\n");
  Engine<PFLeaf> Eng(NProg, Ctx);
  PatSub<PFLeaf> Out =
      Eng.solve(Syms.functor("p", 1), PatSub<PFLeaf>::top(Ctx, 1));
  ASSERT_FALSE(Out.isBottom());
  ASSERT_TRUE(Out.slotFrame(0).has_value());
  EXPECT_EQ(Syms.functorName(*Out.slotFrame(0)), "f");
}

TEST_F(PFEngineTest, DisjunctionLosesFunctor) {
  load("p(a).\np(b).\n");
  Engine<PFLeaf> Eng(NProg, Ctx);
  PatSub<PFLeaf> Out =
      Eng.solve(Syms.functor("p", 1), PatSub<PFLeaf>::top(Ctx, 1));
  EXPECT_FALSE(Out.slotFrame(0).has_value());
}

TEST_F(PFEngineTest, AppendConvergesWithoutTypes) {
  load("append([],X,X).\n"
       "append([F|T],S,[F|R]) :- append(T,S,R).\n");
  Engine<PFLeaf> Eng(NProg, Ctx);
  PatSub<PFLeaf> Out =
      Eng.solve(Syms.functor("append", 3), PatSub<PFLeaf>::top(Ctx, 3));
  ASSERT_FALSE(Out.isBottom());
  // [] vs cons clash: no principal functor for the first argument.
  EXPECT_FALSE(Out.slotFrame(0).has_value());
}

} // namespace
