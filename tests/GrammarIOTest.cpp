//===- tests/GrammarIOTest.cpp - Grammar parser/printer tests -------------==//
///
/// \file
/// Tests for the tree-grammar notation: parsing the paper's example
/// grammars, printing, and round-tripping (parse . print == identity up
/// to semantic equality).
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <gtest/gtest.h>

using namespace gaia;

namespace {

class GrammarIOTest : public ::testing::Test {
protected:
  TypeGraph parse(const char *Text) {
    std::string Err;
    std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
    EXPECT_TRUE(G.has_value()) << Err << "\nwhile parsing: " << Text;
    return G ? *G : TypeGraph::makeBottom();
  }

  SymbolTable Syms;
};

TEST_F(GrammarIOTest, ParsesAnyList) {
  TypeGraph G = parse("T ::= [] | cons(Any,T).");
  EXPECT_TRUE(G.validate(Syms));
  TypeGraph Canon = TypeGraph::makeAnyList(Syms);
  EXPECT_TRUE(graphEquals(G, Canon, Syms));
}

TEST_F(GrammarIOTest, ParsesPaperProcessResult) {
  // Output pattern of process/2 from Section 2.
  TypeGraph G = parse("T ::= [] | cons(T1,T).\n"
                      "T1 ::= c(Any) | d(Any).");
  EXPECT_TRUE(G.validate(Syms));
  std::vector<FunctorId> Pf = G.pfSet(G.root(), Syms);
  EXPECT_EQ(Pf.size(), 2u);
}

TEST_F(GrammarIOTest, ParsesAccumulatorGrammar) {
  // S ::= 0 | c(Any,S) | d(Any,S) from the process example.
  TypeGraph G = parse("S ::= 0 | c(Any,S) | d(Any,S).");
  EXPECT_TRUE(G.validate(Syms));
  EXPECT_EQ(G.pfSet(G.root(), Syms).size(), 3u);
}

TEST_F(GrammarIOTest, ParsesMutuallyRecursiveRules) {
  // The arithmetic-expression grammar of Figure 2's analysis: the rule
  // for T2 refers back to T.
  TypeGraph G = parse("T ::= +(T,T1) | 0.\n"
                      "T1 ::= *(T1,T2) | 1.\n"
                      "T2 ::= cst(Any) | par(T) | var(Any).");
  EXPECT_TRUE(G.validate(Syms));
}

TEST_F(GrammarIOTest, ParsesNestedTermArguments) {
  TypeGraph G = parse("T ::= f(g(Any),h(Int)).");
  EXPECT_TRUE(G.validate(Syms));
}

TEST_F(GrammarIOTest, ParsesIntLeaf) {
  TypeGraph G = parse("T ::= Int.");
  EXPECT_TRUE(graphEquals(G, TypeGraph::makeInt(), Syms));
}

TEST_F(GrammarIOTest, ParserNormalizesDuplicateFunctors) {
  // Two cons alternatives merge under the principal-functor restriction.
  TypeGraph G = parse("T ::= cons(A,T) | cons(B,T) | [].\n"
                      "A ::= a.\n"
                      "B ::= b.");
  EXPECT_TRUE(G.validate(Syms));
  EXPECT_EQ(G.pfSet(G.root(), Syms).size(), 2u);
  TypeGraph Expect = parse("T ::= cons(E,T) | [].\nE ::= a | b.");
  EXPECT_TRUE(graphEquals(G, Expect, Syms));
}

TEST_F(GrammarIOTest, ParserAbsorbsLiteralsIntoInt) {
  TypeGraph G = parse("T ::= Int | 0 | 1.");
  EXPECT_TRUE(graphEquals(G, TypeGraph::makeInt(), Syms));
}

TEST_F(GrammarIOTest, RejectsSyntaxErrors) {
  std::string Err;
  EXPECT_FALSE(parseGrammar("T ::= ", Syms, &Err).has_value());
  EXPECT_FALSE(parseGrammar("T == foo.", Syms, &Err).has_value());
  EXPECT_FALSE(parseGrammar("T ::= f(.", Syms, &Err).has_value());
  EXPECT_FALSE(parseGrammar("", Syms, &Err).has_value());
  // Undefined nonterminal.
  EXPECT_FALSE(parseGrammar("T ::= f(U).", Syms, &Err).has_value());
  EXPECT_NE(Err.find("undefined"), std::string::npos);
}

TEST_F(GrammarIOTest, PrintsBottom) {
  EXPECT_EQ(printGrammar(TypeGraph::makeBottom(), Syms), "T ::= $empty.\n");
}

TEST_F(GrammarIOTest, PrintsAnyInline) {
  EXPECT_EQ(printGrammar(TypeGraph::makeAny(), Syms), "T ::= Any.\n");
}

TEST_F(GrammarIOTest, RoundTripsList) {
  TypeGraph G = TypeGraph::makeAnyList(Syms);
  std::string Text = printGrammar(G, Syms);
  TypeGraph Back = parse(Text.c_str());
  EXPECT_TRUE(graphEquals(G, Back, Syms)) << Text;
}

TEST_F(GrammarIOTest, RoundTripsArithmeticGrammar) {
  const char *Text = "T ::= +(T,T1) | 0.\n"
                     "T1 ::= *(T1,T2) | 1.\n"
                     "T2 ::= cst(Any) | par(T) | var(Any).";
  TypeGraph G = parse(Text);
  TypeGraph Back = parse(printGrammar(G, Syms).c_str());
  EXPECT_TRUE(graphEquals(G, Back, Syms)) << printGrammar(G, Syms);
}

TEST_F(GrammarIOTest, QuotedAtomsRoundTrip) {
  TypeGraph G = parse("T ::= '(' | ')' | atom(Any).");
  TypeGraph Back = parse(printGrammar(G, Syms).c_str());
  EXPECT_TRUE(graphEquals(G, Back, Syms)) << printGrammar(G, Syms);
}

} // namespace
