//===- tests/SmallVectorTest.cpp - Inline small-buffer vector tests -------==//
///
/// \file
/// Property coverage for support/SmallVector.h, the inline successor
/// storage of TGNode: the interesting transitions are inline -> spilled
/// growth, copies and moves in all four (inline/spilled) combinations,
/// and self-assignment, which a buffer-stealing implementation can
/// easily corrupt.
///
//===----------------------------------------------------------------------===//

#include "support/SmallVector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

using namespace gaia;

namespace {

using Vec = SmallVector<uint32_t, 2>;

std::vector<uint32_t> contents(const Vec &V) {
  return std::vector<uint32_t>(V.begin(), V.end());
}

TEST(SmallVectorTest, StartsInlineAndSpillsPastCapacity) {
  Vec V;
  EXPECT_TRUE(V.empty());
  EXPECT_TRUE(V.isInline());
  V.push_back(1);
  V.push_back(2);
  EXPECT_TRUE(V.isInline());
  EXPECT_EQ(V.size(), 2u);
  V.push_back(3); // spill
  EXPECT_FALSE(V.isInline());
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{1, 2, 3}));
  // Data survives further growth.
  for (uint32_t I = 4; I <= 100; ++I)
    V.push_back(I);
  std::vector<uint32_t> Expect(100);
  std::iota(Expect.begin(), Expect.end(), 1);
  EXPECT_EQ(contents(V), Expect);
}

TEST(SmallVectorTest, CopyInAllStorageCombinations) {
  Vec Inline{1, 2};
  Vec Spilled{1, 2, 3, 4};
  ASSERT_TRUE(Inline.isInline());
  ASSERT_FALSE(Spilled.isInline());

  Vec A = Inline; // inline -> fresh
  EXPECT_EQ(contents(A), contents(Inline));
  Vec B = Spilled; // spilled -> fresh: deep copy
  EXPECT_EQ(contents(B), contents(Spilled));
  B[0] = 99;
  EXPECT_EQ(Spilled[0], 1u) << "copy must not alias";

  A = Spilled; // inline <- spilled
  EXPECT_EQ(contents(A), contents(Spilled));
  Vec C{7, 8, 9};
  C = Inline; // spilled <- inline
  EXPECT_EQ(contents(C), contents(Inline));
}

TEST(SmallVectorTest, MoveStealsHeapAndCopiesInline) {
  Vec Spilled{1, 2, 3, 4};
  const uint32_t *Data = Spilled.data();
  Vec Stolen = std::move(Spilled);
  EXPECT_EQ(Stolen.data(), Data) << "heap block should be stolen, not copied";
  EXPECT_EQ(contents(Stolen), (std::vector<uint32_t>{1, 2, 3, 4}));
  EXPECT_TRUE(Spilled.empty());
  EXPECT_TRUE(Spilled.isInline()) << "moved-from must be reusable";
  Spilled.push_back(5);
  EXPECT_EQ(contents(Spilled), (std::vector<uint32_t>{5}));

  Vec Inline{1, 2};
  Vec Moved = std::move(Inline);
  EXPECT_TRUE(Moved.isInline());
  EXPECT_EQ(contents(Moved), (std::vector<uint32_t>{1, 2}));

  // Move-assign over a spilled target frees without leaking (ASan-level
  // property; here we just check the value outcome).
  Vec Target{9, 9, 9, 9};
  Vec Src{1, 2, 3};
  Target = std::move(Src);
  EXPECT_EQ(contents(Target), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SmallVectorTest, SelfAssignmentIsANoOp) {
  Vec Inline{1, 2};
  Vec &AliasI = Inline;
  Inline = AliasI;
  EXPECT_EQ(contents(Inline), (std::vector<uint32_t>{1, 2}));

  Vec Spilled{1, 2, 3, 4, 5};
  Vec &AliasS = Spilled;
  Spilled = AliasS;
  EXPECT_EQ(contents(Spilled), (std::vector<uint32_t>{1, 2, 3, 4, 5}));

  Spilled = std::move(AliasS); // self-move must not destroy the value
  EXPECT_EQ(contents(Spilled), (std::vector<uint32_t>{1, 2, 3, 4, 5}));
}

TEST(SmallVectorTest, VectorAndInitializerInterop) {
  std::vector<uint32_t> Big(10);
  std::iota(Big.begin(), Big.end(), 0);
  Vec V = Big; // converting constructor
  EXPECT_EQ(contents(V), Big);
  V = {3, 1}; // initializer-list assignment shrinks back
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{3, 1}));
  std::vector<uint32_t> Small{4, 5, 6};
  V = Small;
  EXPECT_EQ(contents(V), Small);
}

TEST(SmallVectorTest, EraseResizeClear) {
  Vec V{1, 2, 3, 4, 5};
  V.erase(V.begin() + 1); // {1,3,4,5}
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{1, 3, 4, 5}));
  V.erase(V.begin() + 1, V.begin() + 3); // {1,5}
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{1, 5}));
  V.resize(4, 7);
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{1, 5, 7, 7}));
  V.resize(1);
  EXPECT_EQ(contents(V), (std::vector<uint32_t>{1}));
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(SmallVectorTest, EqualityComparesValuesNotStorage) {
  Vec A{1, 2};
  Vec B{1, 2, 3};
  B.pop_back(); // same values, B spilled
  EXPECT_FALSE(B.isInline());
  EXPECT_TRUE(A.isInline());
  EXPECT_EQ(A, B);
  B.push_back(9);
  EXPECT_NE(A, B);
}

/// Randomized differential test against std::vector: the same operation
/// stream applied to both must agree at every step.
TEST(SmallVectorTest, DifferentialAgainstStdVector) {
  std::mt19937 Rng(1507);
  for (int Round = 0; Round != 50; ++Round) {
    Vec V;
    std::vector<uint32_t> Ref;
    for (int Step = 0; Step != 200; ++Step) {
      switch (Rng() % 6) {
      case 0:
      case 1:
      case 2: {
        uint32_t X = Rng() % 1000;
        V.push_back(X);
        Ref.push_back(X);
        break;
      }
      case 3:
        if (!Ref.empty()) {
          V.pop_back();
          Ref.pop_back();
        }
        break;
      case 4:
        if (!Ref.empty()) {
          size_t I = Rng() % Ref.size();
          V.erase(V.begin() + I);
          Ref.erase(Ref.begin() + I);
        }
        break;
      case 5: {
        Vec Copy = V;       // copy round-trip
        V = std::move(Copy);
        break;
      }
      }
      ASSERT_EQ(contents(V), Ref);
    }
  }
}

} // namespace
