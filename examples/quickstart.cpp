//===- examples/quickstart.cpp - Five-minute tour of the analyzer ---------==//
///
/// \file
/// Quickstart: analyze a small Prolog program with the type-graph domain
/// and print the inferred success types as tree grammars — the paper's
/// naive-reverse walkthrough from Section 2.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Report.h"
#include "typegraph/GrammarPrinter.h"

#include <iostream>

using namespace gaia;

int main() {
  // A Prolog program: naive reverse and append.
  const std::string Source = R"PL(
    nreverse([], []).
    nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).

    append([], X, X).
    append([F|T], S, [F|R]) :- append(T, S, R).
  )PL";

  // Analyze the query nreverse(Any, Any): "how is nreverse used, and
  // what do its arguments look like on success?"
  AnalysisResult R = analyzeProgram(Source, "nreverse(any,any)");
  if (!R.Ok) {
    std::cerr << "analysis failed: " << R.Error << "\n";
    return 1;
  }

  std::cout << "== success types of nreverse(Any,Any) ==\n";
  std::cout << formatQueryResult(R, "nreverse(any,any)");

  // Per-predicate summaries: every procedure the analysis touched, with
  // the lub of its input and output patterns and the extracted WAM tags.
  std::cout << "\n== per-predicate summaries ==\n";
  for (const PredicateSummary &S : R.Summaries) {
    std::cout << S.Name << "/" << S.Arity << "  (" << S.NumTuples
              << " input pattern(s))\n";
    for (uint32_t I = 0; I != S.Arity; ++I) {
      std::cout << "  arg " << I + 1 << ": in "
                << printGrammarInline(S.Input[I].Graph, *R.Syms)
                << "  [" << tagName(S.Input[I].Tag) << "]  out "
                << printGrammarInline(S.Output[I].Graph, *R.Syms)
                << "  [" << tagName(S.Output[I].Tag) << "]\n";
    }
  }

  std::cout << "\n== statistics ==\n"
            << "procedure iterations: " << R.Stats.ProcedureIterations
            << "\nclause iterations:    " << R.Stats.ClauseIterations
            << "\ninput patterns:       " << R.Stats.InputPatterns
            << "\nanalysis time:        " << R.Stats.SolveSeconds
            << "s\n";
  return 0;
}
