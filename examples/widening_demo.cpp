//===- examples/widening_demo.cpp - Section 7 widening walkthrough --------==//
///
/// \file
/// A step-by-step demonstration of the paper's widening operator on its
/// own worked examples: append/3 (cycle introduction) and the first
/// arithmetic program of Figure 6 (replacement with the collapsing
/// union, then cycle introduction), plus a case where the widening
/// correctly lets the graph grow (basic/2).
///
/// Run: ./build/examples/widening_demo
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Widening.h"

#include <iostream>

using namespace gaia;

namespace {

TypeGraph parse(SymbolTable &Syms, const char *Text) {
  std::string Err;
  std::optional<TypeGraph> G = parseGrammar(Text, Syms, &Err);
  if (!G) {
    std::cerr << "grammar parse error: " << Err << "\n";
    std::exit(1);
  }
  return *G;
}

void demo(const char *Title, const char *OldText, const char *NewText) {
  SymbolTable Syms;
  TypeGraph Old = parse(Syms, OldText);
  TypeGraph New = parse(Syms, NewText);
  WideningStats Stats;
  TypeGraph W = graphWiden(Old, New, Syms, WideningOptions(), &Stats);
  std::cout << "== " << Title << " ==\n"
            << "old (previous iterate):\n"
            << printGrammar(Old, Syms) << "new (union of clause results):\n"
            << printGrammar(New, Syms) << "widened:\n"
            << printGrammar(W, Syms) << "cycle introductions: "
            << Stats.CycleIntroductions
            << ", replacements: " << Stats.Replacements << "\n"
            << "sizes: old " << Old.sizeMetric() << ", new "
            << New.sizeMetric() << ", widened " << W.sizeMetric()
            << "\n\n";
}

} // namespace

int main() {
  // Section 7.1, append/3: second iteration vs third; the widening
  // introduces the list cycle.
  demo("append/3: cycle introduction",
       "T ::= [] | cons(Any,T1).\n"
       "T1 ::= [].",
       "T ::= [] | cons(Any,T1).\n"
       "T1 ::= [] | cons(Any,T2).\n"
       "T2 ::= [].");

  // Figure 6: the first arithmetic program. The replacement rule (with
  // the growth-avoiding collapsing union) followed by cycle
  // introduction yields the optimal Tr.
  demo("Figure 6: arithmetic program",
       "To ::= 0 | +(Z,T1).\n"
       "Z ::= 0.\n"
       "T1 ::= 1 | *(T1,T2).\n"
       "T2 ::= cst(Any) | par(To) | var(Any).",
       "Tn ::= 0 | +(T3,T6).\n"
       "T3 ::= 0 | +(Z,T4).\n"
       "Z ::= 0.\n"
       "T4 ::= 1 | *(T4,T5).\n"
       "T5 ::= cst(Any) | par(Tn) | var(Any).\n"
       "T6 ::= 1 | *(T6,T7).\n"
       "T7 ::= cst(Any) | par(T3) | var(Any).");

  // basic/2: no suitable ancestor — the widening must let the graph
  // grow ("of great importance to recover the structure of the type in
  // its entirety").
  demo("basic/2: growth allowed",
       "T ::= cst(Any) | var(Any).",
       "T ::= cst(Any) | par(Z) | var(Any).\n"
       "Z ::= 0.");

  // gen/succ: both recursive structures inferred simultaneously.
  demo("gen/succ: two structures at once",
       "T ::= [] | cons(Z,T1).\n"
       "Z ::= 0.\n"
       "T1 ::= [].",
       "T ::= [] | cons(Z,T1).\n"
       "Z ::= 0.\n"
       "T1 ::= [] | cons(S,T2).\n"
       "S ::= 0 | s(Z2).\n"
       "Z2 ::= 0.\n"
       "T2 ::= [].");
  return 0;
}
