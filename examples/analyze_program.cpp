//===- examples/analyze_program.cpp - Command-line analyzer ---------------==//
///
/// \file
/// The analyzer as a command-line tool, the shape the paper describes
/// ("receives as input a Prolog program and an input pattern"):
///
///   analyze_program <benchmark-key|path/to/file.pl> "goal(any,list)"
///                   [--pf] [--orcap N] [--patterns N]
///
/// Examples:
///   analyze_program QU "queens(any,any)"
///   analyze_program nreverse            (uses the registered goal)
///   analyze_program my.pl "main(list,any)" --orcap 5
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "typegraph/GrammarPrinter.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace gaia;

static int usage() {
  std::cerr
      << "usage: analyze_program <benchmark-key|file.pl> [goal-spec]\n"
         "                       [--pf] [--orcap N] [--patterns N]\n"
         "  goal-spec: pred(any|list|int|intlist, ...)\n"
         "  --pf:        use the principal-functor baseline domain\n"
         "  --orcap N:   cap or-vertex out-degree at N (Table 3)\n"
         "  --patterns N: polyvariance cap (0 = unbounded)\n"
         "known benchmark keys: ";
  for (const BenchmarkProgram &B : table123Suite())
    std::cerr << B.Key << " ";
  for (const BenchmarkProgram &B : section2Examples())
    std::cerr << B.Key << " ";
  std::cerr << "\n";
  return 1;
}

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string Target = argv[1];
  std::string Goal;
  AnalyzerOptions Opts;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--pf") {
      Opts.Domain = DomainKind::PrincipalFunctors;
    } else if (Arg == "--orcap" && I + 1 < argc) {
      Opts.OrCap = static_cast<uint32_t>(std::stoul(argv[++I]));
    } else if (Arg == "--patterns" && I + 1 < argc) {
      Opts.MaxInputPatterns =
          static_cast<uint32_t>(std::stoul(argv[++I]));
    } else if (Goal.empty()) {
      Goal = Arg;
    } else {
      return usage();
    }
  }

  std::string Source;
  if (const BenchmarkProgram *B = findBenchmark(Target)) {
    Source = B->Source;
    if (Goal.empty())
      Goal = B->GoalSpec;
  } else {
    std::ifstream In(Target);
    if (!In) {
      std::cerr << "error: cannot open '" << Target
                << "' (and it is not a benchmark key)\n";
      return usage();
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }
  if (Goal.empty()) {
    std::cerr << "error: no goal spec given\n";
    return usage();
  }

  AnalysisResult R = analyzeProgram(Source, Goal, Opts);
  if (!R.Ok) {
    std::cerr << "error: " << R.Error << "\n";
    return 1;
  }

  std::cout << formatQueryResult(R, Goal);
  if (!R.UnknownPredicates.empty()) {
    std::cout << "unknown predicates treated as opaque builtins:";
    for (const std::string &U : R.UnknownPredicates)
      std::cout << " " << U;
    std::cout << "\n";
  }

  std::cout << "\npredicate summaries (single-version lub):\n";
  for (const PredicateSummary &S : R.Summaries) {
    if (S.NumTuples == 0)
      continue; // unreached
    std::cout << "  " << S.Name << "/" << S.Arity << ":\n";
    for (uint32_t I = 0; I != S.Arity; ++I)
      std::cout << "    arg " << I + 1 << " ["
                << tagName(S.Output[I].Tag) << "]: "
                << printGrammarInline(S.Output[I].Graph, *R.Syms)
                << "\n";
  }

  std::cout << "\nmetrics: " << R.Sizes.NumProcedures << " procedures, "
            << R.Sizes.NumClauses << " clauses, "
            << R.Sizes.NumProgramPoints << " program points, "
            << R.Sizes.NumGoals << " goals\n"
            << "analysis: " << R.Stats.ProcedureIterations
            << " procedure iterations, " << R.Stats.ClauseIterations
            << " clause iterations, " << R.Stats.InputPatterns
            << " input patterns, " << R.Stats.SolveSeconds << "s\n";
  return 0;
}
