//===- examples/compare_domains.cpp - Type graphs vs principal functors ---==//
///
/// \file
/// The paper's accuracy argument in miniature: run both domains on a
/// benchmark and show, argument by argument, where disjunctive and
/// recursive types beat a principal-functor analysis (the information
/// behind Tables 4 and 5).
///
/// Run: ./build/examples/compare_domains [benchmark-key]
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "typegraph/GrammarPrinter.h"

#include <iostream>

using namespace gaia;

int main(int argc, char **argv) {
  std::string Key = argc > 1 ? argv[1] : "QU";
  const BenchmarkProgram *B = findBenchmark(Key);
  if (!B) {
    std::cerr << "unknown benchmark '" << Key << "'\n";
    return 1;
  }

  AnalyzerOptions TyOpts;
  AnalyzerOptions PFOpts;
  PFOpts.Domain = DomainKind::PrincipalFunctors;
  if (Key == "PR") {
    TyOpts.MaxInputPatterns = 2;
    PFOpts.MaxInputPatterns = 2;
  }

  std::cout << "benchmark " << B->Key << ": " << B->Description << "\n"
            << "goal: " << B->GoalSpec << "\n\n";

  AnalysisResult Ty = analyzeProgram(B->Source, B->GoalSpec, TyOpts);
  AnalysisResult PF = analyzeProgram(B->Source, B->GoalSpec, PFOpts);
  if (!Ty.Ok || !PF.Ok) {
    std::cerr << "analysis failed: " << Ty.Error << PF.Error << "\n";
    return 1;
  }

  for (const PredicateSummary &S : Ty.Summaries) {
    const PredicateSummary *PS = nullptr;
    for (const PredicateSummary &Cand : PF.Summaries)
      if (Cand.Name == S.Name && Cand.Arity == S.Arity)
        PS = &Cand;
    if (S.NumTuples == 0)
      continue;
    std::cout << S.Name << "/" << S.Arity << "\n";
    for (uint32_t I = 0; I != S.Arity; ++I) {
      ArgTag TyTag = S.Output[I].Tag;
      ArgTag PFTag = PS ? PS->Output[I].Tag : ArgTag::None;
      std::cout << "  arg " << I + 1 << ": type-graphs ["
                << tagName(TyTag) << "] "
                << printGrammarInline(S.Output[I].Graph, *Ty.Syms)
                << "\n            pf-baseline [" << tagName(PFTag)
                << "] "
                << (PS ? printGrammarInline(PS->Output[I].Graph,
                                            *PF.Syms)
                       : std::string("-"));
      if (tagImproves(TyTag, PFTag))
        std::cout << "   <-- improved";
      std::cout << "\n";
    }
  }

  TagTally Out = computeTagTally(Ty, PF, /*UseOutput=*/true);
  TagTally In = computeTagTally(Ty, PF, /*UseOutput=*/false);
  std::cout << "\noutput tags: improved " << Out.AI << "/" << Out.A
            << " arguments (AR " << Out.ar() << "), " << Out.CI << "/"
            << Out.C << " clauses (CR " << Out.cr() << ")\n"
            << "input tags:  improved " << In.AI << "/" << In.A
            << " arguments (AR " << In.ar() << "), " << In.CI << "/"
            << In.C << " clauses (CR " << In.cr() << ")\n";
  return 0;
}
