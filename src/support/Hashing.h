//===- support/Hashing.h - Hash combination utilities ---------------------==//
///
/// \file
/// Minimal hash-combining helpers used by memo tables across the analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_HASHING_H
#define GAIA_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gaia {

/// Mixes \p Value into \p Seed (boost::hash_combine flavor).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes a pair of 32-bit ids; handy for memo tables keyed on vertex pairs.
struct PairHash {
  std::size_t operator()(const std::pair<uint32_t, uint32_t> &P) const {
    std::size_t Seed = std::hash<uint32_t>()(P.first);
    hashCombine(Seed, std::hash<uint32_t>()(P.second));
    return Seed;
  }
};

/// Hashes a vector of 32-bit ids (used for subset-construction states).
struct IdVectorHash {
  std::size_t operator()(const std::vector<uint32_t> &V) const {
    std::size_t Seed = V.size();
    for (uint32_t X : V)
      hashCombine(Seed, std::hash<uint32_t>()(X));
    return Seed;
  }
};

/// Hashes a vector of 64-bit words (used for serialized automaton keys).
struct U64VectorHash {
  std::size_t operator()(const std::vector<uint64_t> &V) const {
    std::size_t Seed = V.size();
    for (uint64_t X : V)
      hashCombine(Seed, std::hash<uint64_t>()(X));
    return Seed;
  }
};

} // namespace gaia

#endif // GAIA_SUPPORT_HASHING_H
