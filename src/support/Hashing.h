//===- support/Hashing.h - Hash combination utilities ---------------------==//
///
/// \file
/// Minimal hash-combining helpers used by memo tables across the analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_HASHING_H
#define GAIA_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gaia {

/// Mixes \p Value into \p Seed (boost::hash_combine flavor).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes a pair of 32-bit ids; handy for memo tables keyed on vertex pairs.
struct PairHash {
  std::size_t operator()(const std::pair<uint32_t, uint32_t> &P) const {
    std::size_t Seed = std::hash<uint32_t>()(P.first);
    hashCombine(Seed, std::hash<uint32_t>()(P.second));
    return Seed;
  }
};

/// Hashes a vector of 32-bit ids (used for subset-construction states).
struct IdVectorHash {
  std::size_t operator()(const std::vector<uint32_t> &V) const {
    std::size_t Seed = V.size();
    for (uint32_t X : V)
      hashCombine(Seed, std::hash<uint32_t>()(X));
    return Seed;
  }
};

/// Non-owning view of a 64-bit word sequence, for transparent hash-map
/// lookups that avoid materializing a vector (the minimizer's partition
/// signatures are assembled in a reused scratch buffer and only copied
/// into the table on first insertion).
struct U64View {
  const uint64_t *Data;
  std::size_t Size;
};

/// Hashes a vector of 64-bit words (used for serialized automaton keys).
/// Transparent: accepts U64View lookups.
struct U64VectorHash {
  using is_transparent = void;
  std::size_t operator()(const std::vector<uint64_t> &V) const {
    return hash(V.data(), V.size());
  }
  std::size_t operator()(const U64View &V) const {
    return hash(V.Data, V.Size);
  }
  static std::size_t hash(const uint64_t *D, std::size_t N) {
    std::size_t Seed = N;
    for (std::size_t I = 0; I != N; ++I)
      hashCombine(Seed, std::hash<uint64_t>()(D[I]));
    return Seed;
  }
};

/// Transparent equality companion of U64VectorHash.
struct U64VectorEq {
  using is_transparent = void;
  static bool eq(const uint64_t *A, std::size_t NA, const uint64_t *B,
                 std::size_t NB) {
    if (NA != NB)
      return false;
    for (std::size_t I = 0; I != NA; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }
  bool operator()(const std::vector<uint64_t> &A,
                  const std::vector<uint64_t> &B) const {
    return eq(A.data(), A.size(), B.data(), B.size());
  }
  bool operator()(const U64View &A, const std::vector<uint64_t> &B) const {
    return eq(A.Data, A.Size, B.data(), B.size());
  }
  bool operator()(const std::vector<uint64_t> &A, const U64View &B) const {
    return eq(A.data(), A.size(), B.Data, B.Size);
  }
  bool operator()(const U64View &A, const U64View &B) const {
    return eq(A.Data, A.Size, B.Data, B.Size);
  }
};

} // namespace gaia

#endif // GAIA_SUPPORT_HASHING_H
