//===- support/FrozenArena.cpp --------------------------------------------==//

#include "support/FrozenArena.h"

#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#define GAIA_ARENA_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define GAIA_ARENA_HAVE_MMAP 0
#endif

using namespace gaia;

namespace {

[[noreturn]] void arenaFatal(const char *Msg) {
  std::fprintf(stderr, "gaia FrozenArena: %s\n", Msg);
  std::abort();
}

std::size_t pageSize() {
#if GAIA_ARENA_HAVE_MMAP
  static const std::size_t Sz = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return Sz;
#else
  return 4096;
#endif
}

std::size_t roundUp(std::size_t N, std::size_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}

/// Default mapping granularity. Tiers hold tens of thousands of small
/// nodes; coarse chunks keep the chunk table (and mprotect call count)
/// tiny without wasting much tail.
constexpr std::size_t DefaultChunkBytes = 256 * 1024;

} // namespace

FrozenArena::~FrozenArena() {
  for (Chunk &C : Chunks) {
#if GAIA_ARENA_HAVE_MMAP
    munmap(C.Base, C.Size);
#else
    ::operator delete(C.Base, std::align_val_t(pageSize()));
#endif
  }
}

FrozenArena::Chunk &FrozenArena::chunkFor(std::size_t Bytes) {
  if (!Chunks.empty()) {
    Chunk &Last = Chunks.back();
    if (Last.Size - Last.Used >= Bytes)
      return Last;
  }
  std::size_t MapBytes =
      roundUp(Bytes > DefaultChunkBytes ? Bytes : DefaultChunkBytes,
              pageSize());
  Chunk C;
#if GAIA_ARENA_HAVE_MMAP
  void *P = mmap(nullptr, MapBytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    arenaFatal("mmap failed");
#else
  void *P = ::operator new(MapBytes, std::align_val_t(pageSize()));
#endif
  C.Base = P;
  C.Size = MapBytes;
  C.Used = 0;
  Chunks.push_back(C);
  return Chunks.back();
}

void *FrozenArena::allocate(std::size_t Bytes, std::size_t Align) {
  if (Sealed)
    arenaFatal("allocation from a sealed arena (post-freeze tier growth)");
  if (Bytes == 0)
    Bytes = 1;
  if (Align < alignof(std::max_align_t))
    Align = alignof(std::max_align_t);
  // Worst case the aligned cursor needs Align - 1 extra bytes; asking for
  // the padded size up front keeps chunkFor's fit test exact.
  Chunk &C = chunkFor(Bytes + Align - 1);
  std::size_t Cursor =
      roundUp(reinterpret_cast<std::size_t>(C.Base) + C.Used, Align) -
      reinterpret_cast<std::size_t>(C.Base);
  C.Used = Cursor + Bytes;
  Allocated += Bytes;
  return static_cast<char *>(C.Base) + Cursor;
}

void FrozenArena::seal() {
  if (Sealed)
    return;
  Sealed = true;
#if GAIA_ARENA_HAVE_MMAP
  for (Chunk &C : Chunks)
    if (mprotect(C.Base, C.Size, PROT_READ) != 0)
      arenaFatal("mprotect(PROT_READ) failed");
#endif
}

void FrozenArena::unseal() {
  if (!Sealed)
    return;
  Sealed = false;
#if GAIA_ARENA_HAVE_MMAP
  for (Chunk &C : Chunks)
    if (mprotect(C.Base, C.Size, PROT_READ | PROT_WRITE) != 0)
      arenaFatal("mprotect(PROT_READ|PROT_WRITE) failed");
#endif
}
