//===- support/SmallPtrMap.h - Small pointer-keyed map and set ------------==//
///
/// \file
/// Pointer-keyed associative containers tuned for the GAIA dependency
/// graph: most memo-table entries have a handful of dependencies, a few
/// hub entries (library predicates everything calls) have hundreds. Both
/// containers keep their elements in a flat vector — deterministic
/// insertion-order iteration, cache-friendly scans — and add a hash
/// index only once the element count passes the inline threshold, so the
/// common case stays allocation-free per lookup and the hub case stays
/// O(1) instead of the quadratic linear-scan behavior the seed engine
/// had.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_SMALLPTRMAP_H
#define GAIA_SUPPORT_SMALLPTRMAP_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gaia {

/// Map from pointer keys to values. Linear scan below \p N entries;
/// hash-indexed above. Iteration yields (key, value) pairs in insertion
/// order. No erase (the engine only clears whole maps between passes).
template <typename T, typename V, unsigned N = 8> class SmallPtrMap {
public:
  using Entry = std::pair<T *, V>;

  /// Returns the value slot for \p Key, inserting a default-constructed
  /// value if absent. \p Inserted reports which happened.
  V &lookupOrInsert(T *Key, bool &Inserted) {
    if (uint32_t *Slot = findSlot(Key)) {
      Inserted = false;
      return Entries[*Slot].second;
    }
    Inserted = true;
    uint32_t Idx = static_cast<uint32_t>(Entries.size());
    Entries.emplace_back(Key, V());
    if (!Index.empty() || Entries.size() > N) {
      if (Index.empty())
        for (uint32_t I = 0; I != Entries.size(); ++I)
          Index.emplace(Entries[I].first, I);
      else
        Index.emplace(Key, Idx);
    }
    return Entries.back().second;
  }

  V *find(T *Key) {
    uint32_t *Slot = findSlot(Key);
    return Slot ? &Entries[*Slot].second : nullptr;
  }

  void clear() {
    Entries.clear();
    Index.clear();
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return Entries.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return Entries.end();
  }

private:
  uint32_t *findSlot(T *Key) {
    if (Index.empty()) {
      for (uint32_t I = 0; I != Entries.size(); ++I)
        if (Entries[I].first == Key) {
          Scratch = I;
          return &Scratch;
        }
      return nullptr;
    }
    auto It = Index.find(Key);
    if (It == Index.end())
      return nullptr;
    Scratch = It->second;
    return &Scratch;
  }

  std::vector<Entry> Entries;
  std::unordered_map<T *, uint32_t> Index; ///< engaged past N entries
  uint32_t Scratch = 0;
};

/// Set of pointers with the same hybrid strategy and insertion-order
/// iteration — except after `erase`, which swap-pops and therefore
/// perturbs the order (the engine's Dependents sets are pure sets: the
/// dirty-marking sweep over them is order-independent). The index maps
/// each element to its vector position so erase stays O(1) for the hub
/// entries with hundreds of dependents.
template <typename T, unsigned N = 8> class SmallPtrSet {
public:
  /// Returns true if \p Key was newly inserted.
  bool insert(T *Key) {
    if (contains(Key))
      return false;
    Elems.push_back(Key);
    if (!Index.empty() || Elems.size() > N) {
      if (Index.empty())
        for (uint32_t I = 0; I != Elems.size(); ++I)
          Index.emplace(Elems[I], I);
      else
        Index.emplace(Key, static_cast<uint32_t>(Elems.size() - 1));
    }
    return true;
  }

  bool contains(T *Key) const {
    if (Index.empty()) {
      for (T *E : Elems)
        if (E == Key)
          return true;
      return false;
    }
    return Index.count(Key) != 0;
  }

  /// Removes \p Key if present (swap-pop). Returns true if it was.
  bool erase(T *Key) {
    uint32_t Pos;
    if (Index.empty()) {
      Pos = 0;
      while (Pos != Elems.size() && Elems[Pos] != Key)
        ++Pos;
      if (Pos == Elems.size())
        return false;
    } else {
      auto It = Index.find(Key);
      if (It == Index.end())
        return false;
      Pos = It->second;
      Index.erase(It);
    }
    if (Pos + 1 != Elems.size()) {
      Elems[Pos] = Elems.back();
      if (!Index.empty())
        Index[Elems[Pos]] = Pos;
    }
    Elems.pop_back();
    return true;
  }

  void clear() {
    Elems.clear();
    Index.clear();
  }

  bool empty() const { return Elems.empty(); }
  size_t size() const { return Elems.size(); }
  typename std::vector<T *>::const_iterator begin() const {
    return Elems.begin();
  }
  typename std::vector<T *>::const_iterator end() const {
    return Elems.end();
  }

private:
  std::vector<T *> Elems;
  /// Element -> vector position; engaged past N elements.
  std::unordered_map<T *, uint32_t> Index;
};

} // namespace gaia

#endif // GAIA_SUPPORT_SMALLPTRMAP_H
