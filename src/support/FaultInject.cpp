//===- support/FaultInject.cpp - Deterministic fault injection ------------==//

#include "support/FaultInject.h"

#ifdef GAIA_FAULT_INJECT

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>

namespace gaia::faultinject {
namespace {

struct Config {
  double Probability = 0.0;
  uint64_t Seed = 1;
  uint32_t ProbeMask = ~0u;
  /// Probability mapped onto the full u64 range so the per-hit test is
  /// one integer compare against the raw splitmix64 output.
  uint64_t Threshold = 0;
  /// Stall plan (see the header): probability on the same u64 mapping,
  /// plus the sleep duration. Threshold 0 = stalls disarmed.
  uint32_t StallMillis = 200;
  uint64_t StallThreshold = 0;
};

uint64_t thresholdFor(double P) {
  if (P <= 0.0)
    return 0;
  if (P >= 1.0)
    return ~0ull;
  return static_cast<uint64_t>(P * 18446744073709551616.0 /* 2^64 */);
}

uint32_t parseProbeList(const char *S) {
  uint32_t Mask = 0;
  std::string Tok;
  for (const char *C = S;; ++C) {
    if (*C && *C != ',') {
      Tok += *C;
      continue;
    }
    if (Tok == "opcache")
      Mask |= 1u << unsigned(Probe::OpCacheLookup);
    else if (Tok == "normalize")
      Mask |= 1u << unsigned(Probe::Normalize);
    else if (Tok == "intern")
      Mask |= 1u << unsigned(Probe::Intern);
    else if (Tok == "alloc")
      Mask |= 1u << unsigned(Probe::Alloc);
    Tok.clear();
    if (!*C)
      break;
  }
  return Mask;
}

Config configFromEnv() {
  Config C;
  if (const char *P = std::getenv("GAIA_FAULT_P"))
    C.Probability = std::strtod(P, nullptr);
  if (const char *S = std::getenv("GAIA_FAULT_SEED"))
    C.Seed = std::strtoull(S, nullptr, 0);
  if (const char *L = std::getenv("GAIA_FAULT_PROBES"))
    C.ProbeMask = parseProbeList(L);
  C.Threshold = thresholdFor(C.Probability);
  if (const char *P = std::getenv("GAIA_FAULT_STALL_P"))
    C.StallThreshold = thresholdFor(std::strtod(P, nullptr));
  if (const char *S = std::getenv("GAIA_FAULT_STALL_MS"))
    C.StallMillis = static_cast<uint32_t>(std::strtoul(S, nullptr, 0));
  return C;
}

/// Env is read once; configure() replaces the whole struct. Guarded by
/// the usual test discipline (configure before spawning workers) rather
/// than a lock — workers only read.
Config &config() {
  static Config C = configFromEnv();
  return C;
}

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

struct ThreadStream {
  uint64_t State = 0;
  bool Armed = false;
  uint64_t Fires = 0;
};

thread_local ThreadStream Stream;

std::atomic<uint64_t> GlobalFires{0};
std::atomic<uint64_t> GlobalStalls{0};

} // namespace

void configure(double Probability, uint64_t Seed, uint32_t ProbeMask) {
  Config &C = config();
  C.Probability = Probability;
  C.Seed = Seed;
  C.ProbeMask = ProbeMask;
  C.Threshold = thresholdFor(Probability);
}

void configureStall(double Probability, uint32_t Millis) {
  Config &C = config();
  C.StallThreshold = Millis == 0 ? 0 : thresholdFor(Probability);
  C.StallMillis = Millis;
}

JobScope::JobScope(uint64_t Salt) : FiresAtEntry(Stream.Fires) {
  // Mix the salt through one splitmix64 round so adjacent job indices
  // land on uncorrelated streams.
  uint64_t S = config().Seed ^ (Salt * 0xd1342543de82ef95ull + 1);
  splitmix64(S);
  Stream.State = S;
  const Config &C = config();
  Stream.Armed = C.Threshold != 0 || C.StallThreshold != 0;
}

JobScope::~JobScope() { Stream.Armed = false; }

uint64_t JobScope::fires() const { return Stream.Fires - FiresAtEntry; }

bool shouldFire(Probe P) {
  if (!Stream.Armed)
    return false;
  const Config &C = config();
  if (!(C.ProbeMask & (1u << unsigned(P))))
    return false;
  if (splitmix64(Stream.State) >= C.Threshold)
    return false;
  ++Stream.Fires;
  GlobalFires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void raise(Probe P) {
  // Disarm before throwing: the unwind itself allocates/normalizes
  // nothing, but the ladder's next attempt re-arms explicitly and a
  // stale armed stream must not leak into post-catch cleanup.
  Stream.Armed = false;
  switch (P) {
  case Probe::OpCacheLookup:
    throw InjectedFault("injected fault: op-cache lookup");
  case Probe::Normalize:
    throw InjectedFault("injected fault: normalization");
  case Probe::Intern:
    throw InjectedFault("injected fault: interning");
  case Probe::Alloc:
    throw std::bad_alloc();
  }
  throw InjectedFault("injected fault");
}

void maybeStall(Probe P) {
  if (!Stream.Armed)
    return;
  const Config &C = config();
  if (C.StallThreshold == 0 || !(C.ProbeMask & (1u << unsigned(P))))
    return;
  if (splitmix64(Stream.State) >= C.StallThreshold)
    return;
  GlobalStalls.fetch_add(1, std::memory_order_relaxed);
  // Sleep blind: no cancellation poll, no deadline check. A worker wedged
  // here is exactly what the service watchdog exists to recover from.
  std::this_thread::sleep_for(std::chrono::milliseconds(C.StallMillis));
}

uint64_t totalFires() { return GlobalFires.load(std::memory_order_relaxed); }

uint64_t totalStalls() { return GlobalStalls.load(std::memory_order_relaxed); }

} // namespace gaia::faultinject

#endif // GAIA_FAULT_INJECT
