//===- support/Relocation.h - Id relocation across cache-tier rebuilds ----==//
///
/// \file
/// Explicit old-id -> new-id tables for the dense id spaces of the
/// caching stack (canonical graph ids, pf-set ids, functor ids). Every
/// tier rebuild — stacking freeze, delta promotion, generational
/// compaction — maps ids from the source space into the target space
/// through one of these tables instead of ad-hoc offset arithmetic:
///
///   - a *stacking* freeze preserves every id, so its table is the
///     identity (constructed via identity(), which makes the intent
///     auditable);
///   - *compaction* drops dead ids and renumbers the survivors densely;
///     dropped ids map to the Dropped sentinel and any cache entry that
///     refers to one is discarded with them;
///   - *absorption* of a worker delta into a foreign symbol table remaps
///     functor ids by (name, arity) — see OpCache::absorbDelta.
///
/// The gaia-lint `relocation-remap` rule enforces the discipline: code
/// in src/support or src/runtime that builds a FrozenInternTier or
/// FrozenPfTier from an existing tier must route ids through this API
/// (raw `Id - Base` arithmetic across a tier boundary is banned there).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_RELOCATION_H
#define GAIA_SUPPORT_RELOCATION_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace gaia {

/// Old-id -> new-id map over a dense id space [0, size()). Ids not
/// carried into the target space map to Dropped.
template <typename IdT> class RelocationTable {
public:
  /// Sentinel for an id with no image in the target space. Matches the
  /// invalid-id convention of the mapped spaces (InvalidCanon /
  /// InvalidPfSet are ~0u).
  static constexpr IdT Dropped = static_cast<IdT>(~IdT(0));

  RelocationTable() = default;
  /// A table over [0, N) with every id initially Dropped.
  explicit RelocationTable(size_t N) : Map(N, Dropped) {}

  /// The identity table over [0, N): the relocation of a stacking
  /// freeze, which preserves every id.
  static RelocationTable identity(size_t N) {
    RelocationTable T(N);
    for (size_t I = 0; I != N; ++I)
      T.Map[I] = static_cast<IdT>(I);
    return T;
  }

  void set(IdT Old, IdT New) {
    assert(Old < Map.size() && "relocation source out of range");
    Map[Old] = New;
  }

  /// The image of \p Old in the target space (Dropped if none).
  IdT map(IdT Old) const {
    assert(Old < Map.size() && "relocation source out of range");
    return Map[Old];
  }

  /// True if \p Old survives into the target space.
  bool live(IdT Old) const { return map(Old) != Dropped; }

  /// Size of the source id space.
  size_t size() const { return Map.size(); }

  /// Number of surviving ids.
  size_t liveCount() const {
    size_t N = 0;
    for (IdT V : Map)
      N += (V != Dropped);
    return N;
  }

private:
  std::vector<IdT> Map;
};

} // namespace gaia

#endif // GAIA_SUPPORT_RELOCATION_H
