//===- support/Debug.cpp --------------------------------------------------==//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

void gaia::unreachableImpl(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
