//===- support/FrozenArena.h - mprotect-sealed storage for frozen tiers ---==//
///
/// \file
/// Page-aligned bump arena backing the bulk storage of the frozen shared
/// cache tiers (FrozenInternTier / FrozenOpTier / FrozenPfTier) in audit
/// builds (-DGAIA_AUDIT=ON).
///
/// The frozen tiers' thread-safety contract is "never written after
/// freeze()". TSan can prove the *concurrent* half of that contract, but
/// not the single-threaded half: a bug that writes a tier from one thread
/// only — a lazily-filled cache field rebuilt under a mismatched epoch, a
/// const_cast smuggled around the const fields, a stats counter moved
/// into a tier — is invisible to every sanitizer and corrupts every
/// worker that shares the tier. Audit builds close that hole at the
/// hardware level: tier containers allocate from a FrozenArena, and
/// `seal()` flips the arena's pages to PROT_READ once freeze() completes.
/// Any later write faults immediately, at the writing instruction.
///
/// Layering:
///   - FrozenArena: mmap'd chunks + bump allocation + seal()/munmap. The
///     chunk table itself lives on the normal heap, so allocation
///     metadata never shares a page with sealed storage.
///   - ArenaAllocator<T>: standard allocator over a FrozenArena*; with a
///     null arena it degrades to operator new/delete, so the same
///     container types work in both modes.
///   - Frozen{Vector,Deque,Map}: the container aliases the tier structs
///     declare their fields with. Under GAIA_AUDIT they bind the arena
///     allocator (maps via std::scoped_allocator_adaptor, so nested
///     bucket vectors land in the arena too); otherwise they are the
///     plain std containers, and the audit machinery costs nothing.
///
/// The class is always compiled (and unit-tested) so audit builds do not
/// drift; only the tier typedefs are gated on GAIA_AUDIT.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_FROZENARENA_H
#define GAIA_SUPPORT_FROZENARENA_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <scoped_allocator>
#include <unordered_map>
#include <vector>

namespace gaia {

/// A growable set of page-aligned memory chunks with bump allocation and
/// a one-way seal. Not thread-safe while unsealed (freeze() is
/// single-threaded); immutable — and enforced so — after seal().
class FrozenArena {
public:
  FrozenArena() = default;
  ~FrozenArena();

  FrozenArena(const FrozenArena &) = delete;
  FrozenArena &operator=(const FrozenArena &) = delete;

  /// Bump-allocates \p Bytes with \p Align alignment. Aborts if called
  /// after seal() — a sealed tier must never grow.
  void *allocate(std::size_t Bytes, std::size_t Align);

  /// No-op: bump storage is reclaimed wholesale by the destructor. Kept
  /// so ArenaAllocator can satisfy the allocator requirements.
  void deallocate(void *, std::size_t) noexcept {}

  /// Remaps every chunk PROT_READ. Idempotent. After this, any write to
  /// arena-backed storage faults.
  void seal();

  /// Remaps the chunks writable again. The only legitimate caller is a
  /// frozen tier's destructor: container teardown writes bookkeeping
  /// into the storage it releases (unordered_map::clear() zeroes its
  /// bucket array), so the last reference to a tier must lift the seal
  /// before its members destruct. Not an API for mutating live tiers.
  void unseal();

  bool sealed() const { return Sealed; }
  std::size_t bytesAllocated() const { return Allocated; }

private:
  struct Chunk {
    void *Base = nullptr;
    std::size_t Size = 0; ///< mapped size (page multiple)
    std::size_t Used = 0; ///< bump offset
  };
  /// Chunk whose tail can fit \p Bytes, growing the arena if needed.
  Chunk &chunkFor(std::size_t Bytes);

  /// Chunk table on the normal heap: allocator bookkeeping must stay
  /// writable after the storage itself is sealed.
  std::vector<Chunk> Chunks;
  std::size_t Allocated = 0;
  bool Sealed = false;
};

/// Standard allocator over a FrozenArena. Null arena => operator new, so
/// default-constructed containers of these types stay usable anywhere.
template <class T> class ArenaAllocator {
public:
  using value_type = T;
  template <class U> struct rebind {
    using other = ArenaAllocator<U>;
  };

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(FrozenArena *A) noexcept : Arena(A) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U> &O) noexcept : Arena(O.Arena) {}

  T *allocate(std::size_t N) {
    if (Arena)
      return static_cast<T *>(Arena->allocate(N * sizeof(T), alignof(T)));
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }
  void deallocate(T *P, std::size_t N) noexcept {
    if (Arena)
      Arena->deallocate(P, N * sizeof(T));
    else
      ::operator delete(P);
  }

  friend bool operator==(const ArenaAllocator &A,
                         const ArenaAllocator &B) noexcept {
    return A.Arena == B.Arena;
  }
  friend bool operator!=(const ArenaAllocator &A,
                         const ArenaAllocator &B) noexcept {
    return A.Arena != B.Arena;
  }

  FrozenArena *Arena = nullptr;
};

#ifdef GAIA_AUDIT

template <class T> using FrozenVector = std::vector<T, ArenaAllocator<T>>;
template <class T> using FrozenDeque = std::deque<T, ArenaAllocator<T>>;
/// scoped_allocator_adaptor propagates the arena into allocator-aware
/// mapped types (the Frozen*Tier bucket vectors), so a tier's nested
/// storage seals along with its top-level tables.
template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
using FrozenMap = std::unordered_map<
    K, V, Hash, Eq,
    std::scoped_allocator_adaptor<ArenaAllocator<std::pair<const K, V>>>>;

/// One arena per frozen tier (null and unused without GAIA_AUDIT).
inline std::shared_ptr<FrozenArena> makeTierArena() {
  return std::make_shared<FrozenArena>();
}

/// An empty container of type \p C whose storage comes from \p Arena.
template <class C>
C makeFrozenContainer(const std::shared_ptr<FrozenArena> &Arena) {
  using Alloc = typename C::allocator_type;
  return C(Alloc(ArenaAllocator<typename C::value_type>(Arena.get())));
}

#else

template <class T> using FrozenVector = std::vector<T>;
template <class T> using FrozenDeque = std::deque<T>;
template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
using FrozenMap = std::unordered_map<K, V, Hash, Eq>;

inline std::shared_ptr<FrozenArena> makeTierArena() { return nullptr; }

template <class C>
C makeFrozenContainer(const std::shared_ptr<FrozenArena> &) {
  return C();
}

#endif // GAIA_AUDIT

} // namespace gaia

#endif // GAIA_SUPPORT_FROZENARENA_H
