//===- support/PfSetInterner.h - Interned principal-functor sets ----------==//
///
/// \file
/// Dense canonical ids for principal-functor sets (paper Section 6.3).
/// The Section 7 widening compares pf-sets constantly: the correspondence
/// walk asks `pf(Vo) == pf(Vn)` at every or-pair and the two transform
/// rules ask `pf(Vn) ⊆ pf(Va)` against every or-ancestor. Deriving those
/// sets as freshly allocated sorted vectors on every comparison was the
/// dominant allocation source of the widening hot loop; interning gives
///
///   - equality as an integer comparison (equal set iff equal PfSetId),
///   - an O(1) subset *rejection* via precomputed 64-bit element masks
///     (A ⊆ B is impossible when A's mask has a bit outside B's), with
///     an allocation-free merge walk over the pooled elements as the
///     exact confirmation, and
///   - per-graph topology caches that store one id per vertex instead of
///     one vector (typegraph/TypeGraph.h).
///
/// Ids are only comparable within one interner — except across the
/// frozen-tier layering of the batch runtime, which mirrors
/// support/GraphInterner.h: `freeze()` snapshots an interner into an
/// immutable FrozenPfTier whose lookups are safe for unsynchronized
/// concurrent readers; an interner constructed over a tier resolves known
/// sets to the tier's ids (the dense prefix [0, size)) and allocates new
/// ids from size upward. Epoch tags cached in graph topology caches are
/// drawn from one process-wide counter, so a cached id can never alias
/// across unrelated interners.
///
/// Pf-set identity is also exactly the structure non-discriminative-union
/// analyses key their precision on (Lu, "Improving Precision of Type
/// Analysis Using Non-Discriminative Union"), so the ids are a natural
/// substrate for future domain variants, not just a widening cache.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_PFSETINTERNER_H
#define GAIA_SUPPORT_PFSETINTERNER_H

#include "support/FrozenArena.h"
#include "support/Hashing.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gaia {

/// Dense id of an interned principal-functor set.
using PfSetId = uint32_t;
constexpr PfSetId InvalidPfSet = ~0u;

/// Interning statistics (surfaced through EngineStats by the analyzer and
/// printed by bench/widening_ablation).
struct PfSetStats {
  uint64_t Hits = 0;       ///< resolved in the private delta
  uint64_t SharedHits = 0; ///< resolved in the frozen shared tier
  uint64_t Misses = 0;     ///< new set recorded
  double hitRate() const {
    uint64_t Total = Hits + SharedHits + Misses;
    return Total ? double(Hits + SharedHits) / double(Total) : 0.0;
  }
};

/// An immutable snapshot of a populated PfSetInterner: the read-only
/// shared tier of the batch runtime. All lookups are const and all
/// derived fields (masks, hashes) are precomputed, so concurrent readers
/// never write. Construct via PfSetInterner::freeze().
///
/// Freeze discipline (gaia-lint `freeze-fields` / `freeze-methods`):
/// every field is const, there is no mutating member function, and in
/// audit builds (GAIA_AUDIT) the pooled elements, entry table and
/// buckets live in a FrozenArena sealed to PROT_READ after freeze().
struct FrozenPfTier {
  struct Entry {
    uint32_t Offset = 0; ///< into Pool
    uint32_t Size = 0;
    uint64_t Mask = 0; ///< element summary bits (bit = functor id % 64)
  };
  using BucketMap = FrozenMap<uint64_t, FrozenVector<PfSetId>>;

  /// Mutable staging area for freeze(); in audit builds its containers
  /// already draw from the tier's arena.
  struct Builder {
    Builder()
        : Arena(makeTierArena()),
          Pool(makeFrozenContainer<FrozenVector<FunctorId>>(Arena)),
          Sets(makeFrozenContainer<FrozenVector<Entry>>(Arena)),
          Buckets(makeFrozenContainer<BucketMap>(Arena)) {}
    std::shared_ptr<FrozenArena> Arena;
    uint64_t Epoch = 0;
    FrozenVector<FunctorId> Pool;
    FrozenVector<Entry> Sets;
    BucketMap Buckets;
  };

  explicit FrozenPfTier(Builder &&B)
      : Arena(std::move(B.Arena)), Epoch(B.Epoch), Pool(std::move(B.Pool)),
        Sets(std::move(B.Sets)), Buckets(std::move(B.Buckets)) {}

  /// Container teardown writes into the storage it releases, so the last
  /// reference lifts the audit seal before the members destruct.
  ~FrozenPfTier() {
    if (Arena)
      Arena->unseal();
  }

  /// Audit-build storage arena (null otherwise); declared first so it
  /// outlives the containers it backs.
  const std::shared_ptr<FrozenArena> Arena;
  /// Fresh process-unique epoch tag of this tier; topology caches built
  /// against it carry this tag.
  const uint64_t Epoch;
  const FrozenVector<FunctorId> Pool; ///< concatenated sorted elements
  const FrozenVector<Entry> Sets; ///< the tier owns ids [0, Sets.size())
  /// Element hash -> candidate ids (usually a single entry).
  const BucketMap Buckets;

  uint32_t size() const { return static_cast<uint32_t>(Sets.size()); }

  /// Seals the arena (audit builds): every later write to tier storage
  /// faults. No-op without GAIA_AUDIT.
  void sealStorage() const {
    if (Arena)
      Arena->seal();
  }
};

/// Assigns canonical ids to sorted, duplicate-free functor-id sets. Not
/// thread-safe; one per analysis (owned by the OpCache's widening
/// scratch), optionally layered over a FrozenPfTier that is only read.
class PfSetInterner {
public:
  explicit PfSetInterner(std::shared_ptr<const FrozenPfTier> Shared =
                             nullptr);

  PfSetInterner(const PfSetInterner &) = delete;
  PfSetInterner &operator=(const PfSetInterner &) = delete;

  /// Interns the sorted unique set [Data, Data+N). Equal sets receive
  /// equal ids; the empty set is always id 0.
  PfSetId intern(const FunctorId *Data, size_t N);
  PfSetId intern(const std::vector<FunctorId> &Set) {
    return intern(Set.data(), Set.size());
  }

  /// True if set \p A is a subset of \p B. Id equality and the element
  /// masks make the common cases integer compares; the fallback is an
  /// allocation-free merge walk over the pooled elements.
  bool subsetOf(PfSetId A, PfSetId B) const {
    if (A == B || A == EmptyId)
      return true;
    uint64_t MA = mask(A);
    if ((MA & ~mask(B)) != 0)
      return false;
    return subsetWalk(A, B);
  }

  /// The id of the empty set.
  static constexpr PfSetId EmptyId = 0;
  bool isEmpty(PfSetId Id) const { return Id == EmptyId; }

  /// Elements of \p Id (sorted, unique). Stable for the interner's
  /// lifetime.
  const FunctorId *data(PfSetId Id) const {
    return Id < Base ? Shared->Pool.data() + Shared->Sets[Id].Offset
                     : Pool.data() + Sets[Id - Base].Offset;
  }
  uint32_t size(PfSetId Id) const {
    return Id < Base ? Shared->Sets[Id].Size : Sets[Id - Base].Size;
  }

  /// Number of distinct sets known (shared tier + private delta).
  uint32_t numSets() const {
    return Base + static_cast<uint32_t>(Sets.size());
  }

  /// Epochs this interner honors in graph topology caches: its own, and
  /// the frozen tier's (tier ids form the dense prefix of the id space).
  uint64_t epoch() const { return Epoch; }
  bool honorsEpoch(uint64_t E) const {
    return E == Epoch || (Shared && E == Shared->Epoch);
  }
  /// Number of ids owned by the shared tier (0 without one). Ids below
  /// this are portable to every interner layered over the same tier — a
  /// topology cache whose pf ids are all below it is tagged with the
  /// tier's epoch instead of this interner's, so one frozen graph can
  /// serve every worker (see TypeGraph::topology).
  uint32_t sharedSize() const { return Base; }
  uint64_t sharedEpoch() const { return Shared ? Shared->Epoch : 0; }

  /// Snapshots this interner (shared tier included, ids preserved) into
  /// an immutable tier safe for unsynchronized concurrent lookups.
  std::shared_ptr<const FrozenPfTier> freeze() const;

  const FrozenPfTier *sharedTier() const { return Shared.get(); }
  const PfSetStats &stats() const { return St; }

private:
  uint64_t mask(PfSetId Id) const {
    return Id < Base ? Shared->Sets[Id].Mask : Sets[Id - Base].Mask;
  }
  bool subsetWalk(PfSetId A, PfSetId B) const;

  std::shared_ptr<const FrozenPfTier> Shared;
  /// First private id: the shared tier's size.
  PfSetId Base = 0;
  std::vector<FunctorId> Pool;
  std::vector<FrozenPfTier::Entry> Sets;
  std::unordered_map<uint64_t, std::vector<PfSetId>> Buckets;
  uint64_t Epoch;
  PfSetStats St;
};

} // namespace gaia

#endif // GAIA_SUPPORT_PFSETINTERNER_H
