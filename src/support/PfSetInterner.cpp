//===- support/PfSetInterner.cpp -------------------------------------------=//

#include "support/PfSetInterner.h"

#include "support/Relocation.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace gaia;

namespace {

/// Process-wide epoch source, mirroring the graph interner's: pf-set ids
/// cached in graph topology caches are tagged with an epoch so a graph
/// value can never smuggle an id between unrelated interners. Epoch 0 is
/// the "never tagged" state, so the counter starts at 1.
uint64_t nextPfEpoch() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t elementsHash(const FunctorId *Data, size_t N) {
  std::size_t Seed = N;
  for (size_t I = 0; I != N; ++I)
    hashCombine(Seed, Data[I]);
  return Seed;
}

uint64_t elementsMask(const FunctorId *Data, size_t N) {
  uint64_t Mask = 0;
  for (size_t I = 0; I != N; ++I)
    Mask |= uint64_t(1) << (Data[I] % 64);
  return Mask;
}

} // namespace

PfSetInterner::PfSetInterner(std::shared_ptr<const FrozenPfTier> Tier)
    : Shared(std::move(Tier)), Base(Shared ? Shared->size() : 0),
      Epoch(nextPfEpoch()) {
  if (Base == 0) {
    // Reserve id 0 for the empty set (every any-vertex has it); with a
    // tier the invariant is inherited from the tier's own construction.
    Sets.push_back({0, 0, 0});
    Buckets[elementsHash(nullptr, 0)].push_back(EmptyId);
  }
  assert(size(EmptyId) == 0 && "id 0 must be the empty set");
}

PfSetId PfSetInterner::intern(const FunctorId *Data, size_t N) {
  assert(std::is_sorted(Data, Data + N) &&
         std::adjacent_find(Data, Data + N) == Data + N &&
         "pf-sets must be sorted and duplicate-free");
  uint64_t H = elementsHash(Data, N);
  auto Matches = [&](PfSetId Id) {
    return size(Id) == N && std::equal(Data, Data + N, data(Id));
  };
  if (Shared) {
    if (auto It = Shared->Buckets.find(H); It != Shared->Buckets.end())
      for (PfSetId Id : It->second)
        if (Matches(Id)) {
          ++St.SharedHits;
          return Id;
        }
  }
  auto &Bucket = Buckets[H];
  for (PfSetId Id : Bucket)
    if (Matches(Id)) {
      ++St.Hits;
      return Id;
    }
  ++St.Misses;
  PfSetId Id = Base + static_cast<PfSetId>(Sets.size());
  FrozenPfTier::Entry E;
  E.Offset = static_cast<uint32_t>(Pool.size());
  E.Size = static_cast<uint32_t>(N);
  E.Mask = elementsMask(Data, N);
  Pool.insert(Pool.end(), Data, Data + N);
  Sets.push_back(E);
  Bucket.push_back(Id);
  return Id;
}

bool PfSetInterner::subsetWalk(PfSetId A, PfSetId B) const {
  const FunctorId *DA = data(A), *DB = data(B);
  return std::includes(DB, DB + size(B), DA, DA + size(A));
}

std::shared_ptr<const FrozenPfTier> PfSetInterner::freeze() const {
  FrozenPfTier::Builder B;
  B.Epoch = nextPfEpoch();
  // Stacking preserves every pf-set id: the relocation into the new tier
  // is the identity table (mirroring GraphInterner::freeze). Compaction
  // never relocates pf-sets — it re-derives them from the surviving
  // graphs' topologies (OpCache::freeze's pf pre-pass over the rebuilt
  // interner), so id 0 = empty-set and density hold by construction.
  const RelocationTable<PfSetId> Reloc =
      RelocationTable<PfSetId>::identity(numSets());
  if (Shared) {
    B.Pool.assign(Shared->Pool.begin(), Shared->Pool.end());
    B.Sets.assign(Shared->Sets.begin(), Shared->Sets.end());
    for (const auto &[H, Ids] : Shared->Buckets) {
      auto &Bucket = B.Buckets[H];
      Bucket.reserve(Ids.size());
      for (PfSetId Id : Ids)
        Bucket.push_back(Reloc.map(Id));
    }
  }
  // Append the private delta; private offsets shift by the tier pool
  // size, ids are preserved (identity relocation).
  uint32_t PoolBase = static_cast<uint32_t>(B.Pool.size());
  B.Pool.insert(B.Pool.end(), Pool.begin(), Pool.end());
  B.Sets.reserve(B.Sets.size() + Sets.size());
  for (const FrozenPfTier::Entry &E : Sets)
    B.Sets.push_back({E.Offset + PoolBase, E.Size, E.Mask});
  for (const auto &[H, Ids] : Buckets) {
    auto &Bucket = B.Buckets[H];
    for (PfSetId Id : Ids)
      if (Id >= Base) // tier ids were copied with the tier's buckets
        Bucket.push_back(Reloc.map(Id));
  }
  auto T = std::make_shared<const FrozenPfTier>(std::move(B));
  T->sealStorage();
  return T;
}
