//===- support/Debug.h - Assertion and unreachable helpers ---------------===//
//
// Part of the GAIA type-graph analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small debugging helpers shared across the analyzer: an `unreachable`
/// trap with a message, modeled after llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_DEBUG_H
#define GAIA_SUPPORT_DEBUG_H

namespace gaia {

/// Prints \p Msg together with the source location and aborts. Used to mark
/// code paths that must never execute.
[[noreturn]] void unreachableImpl(const char *Msg, const char *File,
                                  unsigned Line);

} // namespace gaia

#define GAIA_UNREACHABLE(MSG)                                                  \
  ::gaia::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // GAIA_SUPPORT_DEBUG_H
