//===- support/Cancellation.h - Cooperative job cancellation --------------==//
///
/// \file
/// The cooperative cancellation machinery of the fault-tolerant serving
/// runtime. A job is bounded two ways:
///
///   - a *deadline* (AnalyzerOptions::DeadlineMs): a steady-clock wall
///     time after which the job must stop, regardless of how many
///     fixpoint rounds its budget would still allow;
///   - a *cancellation token* (AnalyzerOptions::Cancel): an atomic flag
///     a client (or the batch driver) flips to withdraw a request that
///     is no longer wanted.
///
/// Both are folded into one CancelSignal the analyzer threads through
/// the engine's fixpoint budget checkpoints and the widening transform
/// loop. Polling a tripped signal throws CancelledError, which unwinds
/// the analysis stack — every structure the job touched is per-job RAII
/// state (its engine, its private delta cache, its scratch buffers), and
/// the shared frozen tier is immutable, so the unwind leaves no trace in
/// any cross-job state. core/Analyzer.cpp catches the unwind and turns
/// it into a structured AnalysisResult (Ok = false, FailKind::Deadline
/// or FailKind::Cancelled).
///
/// CancelledError deliberately does not derive from std::exception:
/// cancellation is control flow with exactly one handler (the analyzer
/// facade), and a generic catch (const std::exception &) anywhere
/// below it must not be able to swallow the unwind.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_CANCELLATION_H
#define GAIA_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <memory>

namespace gaia {

/// Shared cancellation flag. One token may be watched by any number of
/// concurrent jobs (the batch shape: one token per request wave);
/// cancel() is safe from any thread.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Thrown by CancelSignal::poll() when the signal has tripped. Plain
/// struct on purpose — see the file comment.
struct CancelledError {
  bool DeadlineExpired = false; ///< false: the token was cancelled
};

/// One job's combined stop condition: optional token plus optional
/// deadline. Owned by the analyzer for the duration of one analysis and
/// handed to the engine/widening by raw pointer (EngineOptions::Cancel,
/// WideningOptions::Cancel); never shared across jobs.
class CancelSignal {
public:
  using Clock = std::chrono::steady_clock;

  void armToken(std::shared_ptr<const CancelToken> T) {
    Token = std::move(T);
  }
  void armDeadline(Clock::time_point D) {
    Deadline = D;
    HasDeadline = true;
  }

  bool armed() const { return Token != nullptr || HasDeadline; }

  /// Throws CancelledError if the token tripped or the deadline passed.
  /// The token is checked first: an explicit cancellation reports as
  /// Cancelled even if the deadline has also expired by the time the
  /// job polls.
  void poll() const {
    if (Token && Token->cancelled())
      throw CancelledError{false};
    if (HasDeadline && Clock::now() >= Deadline)
      throw CancelledError{true};
  }

private:
  std::shared_ptr<const CancelToken> Token;
  Clock::time_point Deadline{};
  bool HasDeadline = false;
};

} // namespace gaia

#endif // GAIA_SUPPORT_CANCELLATION_H
