//===- support/GraphInterner.h - Hash-consing of normalized type graphs ---==//
///
/// \file
/// Canonical ids for normalized type graphs. The GAIA fixpoint performs
/// thousands of graph operations whose operands repeat constantly (the
/// same list/tree grammars flow through every clause pass); giving every
/// *language* one dense canonical id makes
///
///   - semantic equality an integer comparison,
///   - the operation caches of typegraph/OpCache.h possible (keys are
///     canonical-id pairs), and
///   - memo-table lookup in the engine hashable (per-slot canonical ids).
///
/// Two-level lookup keeps interning cheap:
///
///   1. a *structural* map over the BFS-canonical shape of the graph.
///      `normalizeGraph` unfolds the minimized deterministic automaton in
///      a deterministic order, so language-equal normalized graphs are
///      structurally identical and almost every intern is a cheap O(n)
///      structural hit;
///   2. a fallback keyed on the serialized minimal automaton
///      (`buildAutomaton`), which is canonical for *any* graph. A
///      structurally novel graph whose language was seen before is
///      recorded as an alias of the existing id, so the canonical-id
///      invariant — equal language iff equal id — holds even for
///      hand-built (non-canonical but normalized) graphs.
///
/// For the batch runtime the interner is *two-tier*: `freeze()` snapshots
/// a populated interner into an immutable FrozenInternTier whose lookups
/// are safe for unsynchronized concurrent reads (every stored graph has
/// its structural signature precomputed, so no lazy mutation happens at
/// read time). A fresh interner constructed over a frozen tier resolves
/// known languages to the tier's ids and allocates new (private) ids
/// from `tier size` upward, so ids never alias across tiers: the shared
/// tier owns the dense prefix [0, size), every delta id is >= size, and
/// the epoch tags cached inside graph values are drawn from one global
/// counter so a value can never smuggle an id between unrelated tiers.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_GRAPHINTERNER_H
#define GAIA_SUPPORT_GRAPHINTERNER_H

#include "support/FrozenArena.h"
#include "support/Hashing.h"
#include "support/Relocation.h"
#include "typegraph/Normalize.h"
#include "typegraph/TypeGraph.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gaia {

/// Dense id of an interned graph language. Ids are only comparable within
/// one GraphInterner.
using CanonId = uint32_t;
constexpr CanonId InvalidCanon = ~0u;

/// Hash of the BFS-canonical shape of the reachable part of \p G: two
/// graphs that are structurally isomorphic under BFS renumbering (the
/// numbering `compact` produces) hash equal. On outputs of normalizeGraph
/// this is a *canonical* language hash. Memoized in the graph itself
/// (TypeGraph::structSig); mutation invalidates, copies inherit.
uint64_t structuralHash(const TypeGraph &G);

/// True if \p A and \p B have identical BFS-canonical shapes (same
/// renumbered vertex sequence, kinds, functors and successor lists).
bool structuralEqual(const TypeGraph &A, const TypeGraph &B);

/// Interning statistics (surfaced through EngineStats by the analyzer).
struct InternStats {
  uint64_t IdHits = 0;     ///< resolved by the graph's cached (epoch, id)
  uint64_t StructHits = 0; ///< resolved by the structural fast path
  uint64_t AutoHits = 0;   ///< new shape, known language (alias recorded)
  uint64_t Misses = 0;     ///< new language (canonical graph stored)
  uint64_t SharedHits = 0; ///< resolved in the frozen shared tier
};

/// An immutable snapshot of a populated GraphInterner: the read-only
/// shared tier of the batch runtime's two-tier cache. All lookups are
/// const and every stored graph carries a precomputed structural
/// signature and a (Epoch, id) intern cache, so concurrent readers never
/// race on the lazily-filled mutable fields of TypeGraph. Construct via
/// GraphInterner::freeze().
///
/// Freeze discipline (gaia-lint `freeze-fields` / `freeze-methods`):
/// every field is const and no mutating member function exists, so the
/// never-written-after-freeze contract is compiler-checked; freeze()
/// stages the contents in a Builder and moves them into place. In audit
/// builds (GAIA_AUDIT) the containers additionally live in a
/// FrozenArena that is mprotect(PROT_READ)-ed once the tier is complete,
/// so even a const_cast write faults.
struct FrozenInternTier {
  using BucketMap =
      FrozenMap<uint64_t, FrozenVector<std::pair<const TypeGraph *,
                                                 CanonId>>>;
  using AutoKeyMap =
      FrozenMap<std::vector<uint64_t>, CanonId, U64VectorHash>;

  /// Mutable staging area for freeze(): same shape as the tier, storage
  /// already drawn from the tier's arena in audit builds (so the final
  /// move re-homes nothing).
  struct Builder {
    Builder()
        : Arena(makeTierArena()),
          Canon(makeFrozenContainer<FrozenVector<TypeGraph>>(Arena)),
          Aliases(makeFrozenContainer<FrozenDeque<TypeGraph>>(Arena)),
          StructBuckets(makeFrozenContainer<BucketMap>(Arena)),
          AutoMap(makeFrozenContainer<AutoKeyMap>(Arena)) {}
    std::shared_ptr<FrozenArena> Arena;
    uint64_t Epoch = 0;
    FrozenVector<TypeGraph> Canon;
    FrozenDeque<TypeGraph> Aliases;
    BucketMap StructBuckets;
    AutoKeyMap AutoMap;
  };

  explicit FrozenInternTier(Builder &&B)
      : Arena(std::move(B.Arena)), Epoch(B.Epoch),
        Canon(std::move(B.Canon)), Aliases(std::move(B.Aliases)),
        StructBuckets(std::move(B.StructBuckets)),
        AutoMap(std::move(B.AutoMap)),
        TouchGens(std::make_unique<std::atomic<uint32_t>[]>(Canon.size())) {}

  /// Container teardown writes into the storage it releases, so the last
  /// reference lifts the audit seal before the members destruct.
  ~FrozenInternTier() {
    if (Arena)
      Arena->unseal();
  }

  /// Audit-build storage arena (null otherwise). Declared first: it must
  /// outlive the containers it backs.
  const std::shared_ptr<FrozenArena> Arena;
  /// Fresh process-unique epoch tag of this tier. Copies of the stored
  /// canonical graphs carry it, so any interner layered over this tier
  /// re-interns them with a tag compare.
  const uint64_t Epoch;
  /// Canonical representatives; the tier owns ids [0, Canon.size()).
  const FrozenVector<TypeGraph> Canon;
  /// Extra recorded shapes of known languages (deque: bucket entries
  /// hold pointers into it).
  const FrozenDeque<TypeGraph> Aliases;
  /// Shape hash -> (representative graph, id).
  const BucketMap StructBuckets;
  /// Serialized minimal automaton -> id.
  const AutoKeyMap AutoMap;
  /// Per-id touch generations for compaction liveness (last generation
  /// in which the id was resolved through this tier). Heap-side, never
  /// in the audit arena: workers store into these relaxed-atomically
  /// while the tier's language data stays sealed. The const unique_ptr
  /// keeps the array itself immutable while its atomic elements remain
  /// writable — the same shape as the language data's freeze contract
  /// (the *index* never changes, only the usage bookkeeping ticks).
  const std::unique_ptr<std::atomic<uint32_t>[]> TouchGens;
  /// Current generation of the tier's lifecycle (advanced between
  /// batches by the runtime's TierLifecycle, never mid-batch).
  mutable std::atomic<uint32_t> CurrentGen{0};

  uint32_t size() const { return static_cast<uint32_t>(Canon.size()); }

  /// Records a resolution of \p Id in the current generation. Relaxed:
  /// liveness is a heuristic read only between batches.
  void touch(CanonId Id) const {
    TouchGens[Id].store(CurrentGen.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  uint32_t touchGeneration(CanonId Id) const {
    return TouchGens[Id].load(std::memory_order_relaxed);
  }
  uint32_t generation() const {
    return CurrentGen.load(std::memory_order_relaxed);
  }
  /// Starts a new generation window. Call only between batches (no
  /// concurrent readers required, but safe with them).
  uint32_t advanceGeneration() const {
    return CurrentGen.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Carries \p Prev's touch history into this tier after a stacking
  /// refreeze (ids are preserved across stacking, so the common prefix
  /// maps 1:1). Ids new in this tier count as touched now: they were
  /// just promoted or interned by the freezing cache.
  void seedTouchesFrom(const FrozenInternTier &Prev) const {
    uint32_t Gen = Prev.generation();
    CurrentGen.store(Gen, std::memory_order_relaxed);
    uint32_t Common = std::min(size(), Prev.size());
    for (CanonId Id = 0; Id != Common; ++Id)
      TouchGens[Id].store(Prev.touchGeneration(Id),
                          std::memory_order_relaxed);
    for (CanonId Id = Common; Id < size(); ++Id)
      TouchGens[Id].store(Gen, std::memory_order_relaxed);
  }

  /// Seals the arena (audit builds): every later write to tier storage
  /// faults. No-op without GAIA_AUDIT. Idempotent; const because it only
  /// flips page protection on storage the tier already cannot mutate.
  void sealStorage() const {
    if (Arena)
      Arena->seal();
  }
};

/// Assigns canonical ids to normalized type graphs. Not thread-safe; one
/// interner per analysis, sharing the analysis' SymbolTable. May be
/// layered over a FrozenInternTier (see file comment): the tier is only
/// read, so any number of concurrent interners can share one.
class GraphInterner {
public:
  explicit GraphInterner(const SymbolTable &Syms,
                         std::shared_ptr<const FrozenInternTier> Shared =
                             nullptr);

  /// Non-copyable/movable: StructBuckets holds pointers into the Canon
  /// and Aliases deques, which a copy or move would leave dangling.
  GraphInterner(const GraphInterner &) = delete;
  GraphInterner &operator=(const GraphInterner &) = delete;

  /// Interns \p G (which must be normalized — outputs of normalizeGraph /
  /// normalizeFrom or the canonical make* constructors) and returns its
  /// canonical id. Language-equal graphs receive equal ids. The resolved
  /// id is written back into the graph's intern cache (tagged with this
  /// interner's epoch, or with the shared tier's epoch when the language
  /// lives there — tier ids are valid under every interner sharing that
  /// tier), so re-interning the same value — every cached leaf operation
  /// interns its operands — is a tag compare.
  CanonId intern(const TypeGraph &G);

  /// The canonical representative of \p Id (the first graph interned with
  /// that language; for ids below the shared tier's size, the tier's
  /// graph). Stable for the interner's lifetime.
  const TypeGraph &graph(CanonId Id) const {
    return Id < Base ? Shared->Canon[Id] : Canon[Id - Base];
  }

  /// Number of distinct languages known (shared tier + private delta).
  uint32_t size() const {
    return Base + static_cast<uint32_t>(Canon.size());
  }
  /// Number of languages interned privately (beyond the shared tier).
  uint32_t deltaSize() const { return static_cast<uint32_t>(Canon.size()); }

  /// The I-th privately interned graph (I in [0, deltaSize())).
  const TypeGraph &deltaGraph(uint32_t I) const { return Canon[I]; }
  /// How often the I-th private graph was re-resolved after its first
  /// interning — the promotion heat signal (OpCache::harvestDelta).
  uint32_t deltaHits(uint32_t I) const { return DeltaHits[I]; }

  /// Snapshots this interner (shared tier included, ids preserved) into
  /// an immutable tier safe for unsynchronized concurrent lookups. By
  /// default the tier's audit-build storage is sealed before returning;
  /// OpCache::freeze() passes \p SealStorage = false so it can prime the
  /// frozen graphs' topology caches first, then seals via sealStorage().
  std::shared_ptr<const FrozenInternTier> freeze(bool SealStorage =
                                                     true) const;

  const FrozenInternTier *sharedTier() const { return Shared.get(); }

  const InternStats &stats() const { return St; }

private:
  const SymbolTable &Syms;
  /// Read-only shared tier (may be null). Owns ids [0, Base).
  std::shared_ptr<const FrozenInternTier> Shared;
  /// First private id: the shared tier's size.
  CanonId Base = 0;
  /// Private canonical representatives, indexed by CanonId - Base.
  /// Deque: stable references across growth.
  std::deque<TypeGraph> Canon;
  /// Re-resolution counts parallel to Canon (cheap per-entry heat
  /// counters for delta promotion).
  std::deque<uint32_t> DeltaHits;
  /// Alias storage for structurally novel graphs of known languages.
  std::deque<TypeGraph> Aliases;
  /// Structural fast path: shape hash -> (representative graph, id).
  std::unordered_map<uint64_t, std::vector<std::pair<const TypeGraph *,
                                                     CanonId>>>
      StructBuckets;
  /// Serialized minimal automaton -> id (canonical for any graph).
  std::unordered_map<std::vector<uint64_t>, CanonId, U64VectorHash> AutoMap;
  /// Distinguishes this interner's cached ids from those of any other
  /// interner a graph value may have met (one process hosts many
  /// analyses); drawn from a process-wide counter.
  uint64_t Epoch;
  /// Normalization scratch for the automaton-key fallback path.
  NormalizeScratch Scratch;
  InternStats St;
};

} // namespace gaia

#endif // GAIA_SUPPORT_GRAPHINTERNER_H
