//===- support/StringInterner.h - Symbol and functor interning ------------==//
///
/// \file
/// The SymbolTable interns strings to dense 32-bit SymbolIds and
/// (symbol, arity) pairs to dense FunctorIds. Every component of the
/// analyzer (parser, type graphs, abstract domains) shares one table so
/// functor identity is a cheap integer comparison.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_STRINGINTERNER_H
#define GAIA_SUPPORT_STRINGINTERNER_H

#include "support/Hashing.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gaia {

/// Dense id of an interned string.
using SymbolId = uint32_t;
/// Dense id of an interned (symbol, arity) pair.
using FunctorId = uint32_t;

constexpr SymbolId InvalidSymbol = ~0u;
constexpr FunctorId InvalidFunctor = ~0u;

/// Interns strings and functors. Also pre-interns the handful of functors
/// the analyzer gives special meaning: '.'/2 (cons), '[]'/0 (nil) and the
/// reserved '$int'/0 pseudo-functor standing for "any integer".
class SymbolTable {
public:
  SymbolTable();

  /// Interns \p Text, returning its id (stable for the table's lifetime).
  SymbolId intern(std::string_view Text);

  /// Returns the text of \p Sym.
  const std::string &name(SymbolId Sym) const { return Names[Sym]; }

  /// Interns the functor \p Sym / \p Arity.
  FunctorId functor(SymbolId Sym, uint32_t Arity);

  /// Convenience: interns \p Name and then \p Name / \p Arity.
  FunctorId functor(std::string_view Name, uint32_t Arity);

  /// Returns the symbol of functor \p Fn.
  SymbolId functorSymbol(FunctorId Fn) const { return Functors[Fn].first; }

  /// Returns the arity of functor \p Fn.
  uint32_t functorArity(FunctorId Fn) const { return Functors[Fn].second; }

  /// Returns the name text of functor \p Fn.
  const std::string &functorName(FunctorId Fn) const {
    return Names[Functors[Fn].first];
  }

  /// Renders \p Fn as "name/arity" for diagnostics.
  std::string functorString(FunctorId Fn) const;

  /// '.'/2, the list constructor.
  FunctorId consFunctor() const { return Cons; }
  /// '[]'/0, the empty list.
  FunctorId nilFunctor() const { return Nil; }
  /// '$int'/0, the reserved pseudo-functor for the Int type.
  FunctorId intFunctor() const { return Int; }

  /// True if \p Fn is an arity-0 functor whose name spells an integer
  /// (e.g. '0', '42', '-3'). Such literals are subsumed by the Int type.
  bool isIntegerLiteral(FunctorId Fn) const;

  /// Rank of \p Fn in the (name, arity) lexicographic order over all
  /// currently interned functors: functorRank(A) < functorRank(B) iff
  /// (name(A), arity(A)) < (name(B), arity(B)). Lets the graph layer sort
  /// or-successors and transition lists with integer comparisons instead
  /// of string compares. Memoized; interning a new functor invalidates
  /// the memo (ranks are recomputed lazily, and ranks handed out earlier
  /// remain order-consistent only with each other, so callers must not
  /// cache ranks across interning).
  uint32_t functorRank(FunctorId Fn) const;

  /// Number of interned symbols.
  uint32_t numSymbols() const { return static_cast<uint32_t>(Names.size()); }
  /// Number of interned functors.
  uint32_t numFunctors() const {
    return static_cast<uint32_t>(Functors.size());
  }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, SymbolId> SymbolMap;
  std::vector<std::pair<SymbolId, uint32_t>> Functors;
  std::unordered_map<std::pair<uint32_t, uint32_t>, FunctorId, PairHash>
      FunctorMap;
  FunctorId Cons = InvalidFunctor;
  FunctorId Nil = InvalidFunctor;
  FunctorId Int = InvalidFunctor;
  /// Memoized (name, arity) ranks, rebuilt lazily after interning.
  mutable std::vector<uint32_t> Ranks;
  mutable bool RanksValid = false;
};

} // namespace gaia

#endif // GAIA_SUPPORT_STRINGINTERNER_H
