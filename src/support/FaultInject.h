//===- support/FaultInject.h - Deterministic fault injection --------------==//
///
/// \file
/// Deterministic fault-injection harness for the chaos soak and the
/// resilience tests. Compiled to nothing unless GAIA_FAULT_INJECT is
/// defined (the `chaos` CI job builds -DGAIA_FAULT_INJECT=ON); in
/// production builds every probe macro expands to `((void)0)` and the
/// library carries no injection code at all.
///
/// Probes sit on the hot internal seams where a real defect would
/// surface — op-cache lookup, graph normalization, interning, node
/// allocation — and throw a synthetic exception with a small
/// per-probe probability. The containment guard in the serving runtime
/// (AnalysisPool::runOne) must convert every such throw into a
/// structured per-job failure; the chaos soak proves it does at scale.
///
/// Determinism: fault decisions come from a thread-local splitmix64
/// stream re-seeded at the start of every job attempt from
/// (global seed, job index, attempt). The fault pattern therefore
/// depends only on the job mix and the seed — never on thread
/// scheduling — so a failing soak replays exactly under a debugger,
/// and a retry (attempt+1) sees a fresh stream, which makes injected
/// faults behave like transient errors and exercises the retry ladder.
/// Code that runs outside a JobScope (warm-up, oracle runs) has a
/// disarmed stream and never faults.
///
/// Besides throwing faults, the harness can *stall*: sleep at a probe
/// point for a configured wall-clock time without polling anything.
/// This deliberately models the pathology cooperative cancellation
/// cannot handle — a job wedged *between* poll points — and exists to
/// exercise the AnalysisService watchdog's cancel → poison → replace
/// escalation (a stall ignores CancelSignal by construction; only after
/// it ends does the job reach its next poll and unwind). Stall decisions
/// draw from the same per-job deterministic stream as faults.
///
/// Env knobs (read once, first use; configure() overrides for tests):
///   GAIA_FAULT_P        fault probability per probe hit (default 0)
///   GAIA_FAULT_SEED     global seed (default 1)
///   GAIA_FAULT_PROBES   comma list to arm: opcache,normalize,intern,alloc
///                       (default: all)
///   GAIA_FAULT_STALL_P  stall probability per probe hit (default 0)
///   GAIA_FAULT_STALL_MS stall duration in milliseconds (default 200)
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_FAULTINJECT_H
#define GAIA_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <stdexcept>

namespace gaia::faultinject {

enum class Probe : uint8_t {
  OpCacheLookup = 0,
  Normalize = 1,
  Intern = 2,
  Alloc = 3,
};
inline constexpr unsigned NumProbes = 4;

/// The synthetic failure thrown by every probe except Alloc (which
/// throws std::bad_alloc so the containment guard is exercised against
/// the same type a real allocation failure would present).
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const char *What) : std::runtime_error(What) {}
};

#ifdef GAIA_FAULT_INJECT

/// Test override for the env knobs. Probability <= 0 disarms globally.
/// ProbeMask bit i arms Probe(i); ~0u arms all.
void configure(double Probability, uint64_t Seed, uint32_t ProbeMask = ~0u);

/// Test override for the stall knobs. Probability <= 0 (or Millis == 0)
/// disarms stalls; faults configured via configure() are independent.
void configureStall(double Probability, uint32_t Millis);

/// Arms the calling thread's fault stream for one job attempt. The
/// stream is seeded from (global seed, Salt) so the fault pattern is a
/// pure function of the job identity, not of which worker ran it.
/// Disarms (and snapshots the fire count) on destruction.
class JobScope {
public:
  explicit JobScope(uint64_t Salt);
  ~JobScope();
  JobScope(const JobScope &) = delete;
  JobScope &operator=(const JobScope &) = delete;

  /// Faults fired on this thread since the scope opened.
  uint64_t fires() const;

private:
  uint64_t FiresAtEntry;
};

/// Probe body; returns true (and records the fire) when a fault should
/// be raised at this hit. Split from raise() so the macro stays cheap.
bool shouldFire(Probe P);

/// Throws InjectedFault (or std::bad_alloc for Probe::Alloc).
[[noreturn]] void raise(Probe P);

/// Stall body: sleeps the configured duration when the per-job stream
/// says this hit stalls. Returns without polling any cancellation —
/// that blindness is the scenario under test.
void maybeStall(Probe P);

/// Process-wide fire counter (all threads, all jobs); for soak stats.
uint64_t totalFires();

/// Process-wide stall counter.
uint64_t totalStalls();

#define GAIA_FAULT_POINT(P)                                                    \
  do {                                                                         \
    ::gaia::faultinject::maybeStall(::gaia::faultinject::Probe::P);            \
    if (::gaia::faultinject::shouldFire(::gaia::faultinject::Probe::P))        \
      ::gaia::faultinject::raise(::gaia::faultinject::Probe::P);               \
  } while (0)

#else // !GAIA_FAULT_INJECT

#define GAIA_FAULT_POINT(P) ((void)0)

#endif // GAIA_FAULT_INJECT

} // namespace gaia::faultinject

#endif // GAIA_SUPPORT_FAULTINJECT_H
