//===- support/GraphInterner.cpp -------------------------------------------=//

#include "support/GraphInterner.h"

#include "support/FaultInject.h"
#include "typegraph/Normalize.h"

#include <atomic>

using namespace gaia;

uint64_t gaia::structuralHash(const TypeGraph &G) {
  if (G.structSigValid())
    return G.structSig();
  uint64_t Result;
  if (G.root() == InvalidNode) {
    Result = 0x1507;
  } else {
    // Single-pass BFS with reused thread-local buffers: this runs on
    // every interner miss, so it must not allocate per call.
    static thread_local std::vector<uint32_t> Remap;
    static thread_local std::vector<NodeId> Order;
    Remap.assign(G.numNodes(), ~0u);
    Order.clear();
    Order.push_back(G.root());
    Remap[G.root()] = 0;
    for (size_t Head = 0; Head != Order.size(); ++Head)
      for (NodeId S : G.node(Order[Head]).Succs)
        if (Remap[S] == ~0u) {
          Remap[S] = static_cast<uint32_t>(Order.size());
          Order.push_back(S);
        }
    std::size_t Seed = Order.size();
    for (NodeId V : Order) {
      const TGNode &N = G.node(V);
      hashCombine(Seed, static_cast<std::size_t>(N.Kind));
      if (N.Kind == NodeKind::Func)
        hashCombine(Seed, N.Fn);
      hashCombine(Seed, N.Succs.size());
      for (NodeId S : N.Succs)
        hashCombine(Seed, Remap[S]);
    }
    Result = Seed;
  }
  G.setStructSig(Result);
  return Result;
}

bool gaia::structuralEqual(const TypeGraph &A, const TypeGraph &B) {
  if ((A.root() == InvalidNode) != (B.root() == InvalidNode))
    return false;
  if (A.root() == InvalidNode)
    return true;
  // Lock-step BFS over both graphs: the pair of traversals assigns the
  // same canonical number to corresponding vertices and fails fast at
  // the first divergence (kind, functor, successor count, or successor
  // numbering). Equivalent to comparing the two BFS-renumbered graphs,
  // without materializing either topology.
  static thread_local std::vector<uint32_t> RemapA, RemapB;
  static thread_local std::vector<NodeId> OrderA, OrderB;
  RemapA.assign(A.numNodes(), ~0u);
  RemapB.assign(B.numNodes(), ~0u);
  OrderA.clear();
  OrderB.clear();
  OrderA.push_back(A.root());
  OrderB.push_back(B.root());
  RemapA[A.root()] = 0;
  RemapB[B.root()] = 0;
  for (size_t Head = 0; Head != OrderA.size(); ++Head) {
    const TGNode &NA = A.node(OrderA[Head]);
    const TGNode &NB = B.node(OrderB[Head]);
    if (NA.Kind != NB.Kind || NA.Succs.size() != NB.Succs.size())
      return false;
    if (NA.Kind == NodeKind::Func && NA.Fn != NB.Fn)
      return false;
    for (size_t J = 0; J != NA.Succs.size(); ++J) {
      NodeId SA = NA.Succs[J], SB = NB.Succs[J];
      uint32_t MA = RemapA[SA], MB = RemapB[SB];
      if (MA != MB)
        return false;
      if (MA == ~0u) {
        RemapA[SA] = RemapB[SB] = static_cast<uint32_t>(OrderA.size());
        OrderA.push_back(SA);
        OrderB.push_back(SB);
      }
    }
  }
  return true;
}

namespace {

/// Process-wide epoch source for interner identity tags. Epoch 0 is the
/// "never interned" state of a fresh graph, so the counter starts at 1.
/// Atomic: individual interners are single-threaded, but interners for
/// independent analyses may be constructed concurrently, and a duplicated
/// epoch would let a graph smuggle a cached id across interners.
uint64_t nextInternerEpoch() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Serializes the canonical minimal automaton of \p G into a flat word
/// sequence. buildAutomaton numbers states deterministically from the
/// structure alone, so the serialization is a canonical language key.
std::vector<uint64_t> automatonKey(const TypeGraph &G,
                                   const SymbolTable &Syms,
                                   NormalizeScratch &Scratch) {
  GrammarAutomaton A = buildAutomaton(G, Syms, &Scratch);
  std::vector<uint64_t> Key;
  if (A.Empty) {
    Key.push_back(0xE0);
    return Key;
  }
  Key.push_back(A.States.size());
  for (const GrammarAutomaton::State &S : A.States) {
    Key.push_back((S.IsAny ? 2 : 0) | (S.HasInt ? 1 : 0));
    Key.push_back(S.Trans.size());
    for (const auto &[Fn, Args] : S.Trans) {
      Key.push_back(Fn);
      for (uint32_t Arg : Args)
        Key.push_back(Arg);
    }
  }
  return Key;
}

} // namespace

GraphInterner::GraphInterner(const SymbolTable &Syms,
                             std::shared_ptr<const FrozenInternTier> Tier)
    : Syms(Syms), Shared(std::move(Tier)),
      Base(Shared ? Shared->size() : 0), Epoch(nextInternerEpoch()) {}

CanonId GraphInterner::intern(const TypeGraph &G) {
  // O(1) path: this exact value object (or a copy of one) has been
  // through this interner — or through the shared tier, whose ids form
  // the dense prefix of this interner's id space and are therefore valid
  // here as-is.
  if (G.internEpoch() == Epoch) {
    ++St.IdHits;
    CanonId Id = G.internId();
    // A shared-tier id can be cached under this interner's own epoch
    // (alias shapes recorded privately resolve to tier ids), so the
    // liveness signal routes on the id, not on the cache's epoch.
    if (Id < Base)
      Shared->touch(Id);
    else
      ++DeltaHits[Id - Base];
    return Id;
  }
  if (Shared && G.internEpoch() == Shared->Epoch) {
    ++St.SharedHits;
    Shared->touch(G.internId());
    return G.internId();
  }

  // Chaos probe after the O(1) epoch fast paths: only slow-path interns
  // (the ones that hash, compare, and may copy into the delta) can
  // fault, mirroring where a real interner defect would live.
  GAIA_FAULT_POINT(Intern);

  uint64_t H = structuralHash(G);

  // Frozen shared tier: lookups only, never mutated (concurrent workers
  // read it unsynchronized). A hit is cached on the *value* under the
  // tier's epoch, so copies keep resolving against any interner layered
  // over the same tier.
  if (Shared) {
    if (auto BucketIt = Shared->StructBuckets.find(H);
        BucketIt != Shared->StructBuckets.end())
      for (const auto &[Rep, Id] : BucketIt->second)
        if (structuralEqual(*Rep, G)) {
          ++St.SharedHits;
          Shared->touch(Id);
          G.setInternCache(Shared->Epoch, Id);
          return Id;
        }
  }

  auto &Bucket = StructBuckets[H];
  for (const auto &[Rep, Id] : Bucket)
    if (structuralEqual(*Rep, G)) {
      ++St.StructHits;
      G.setInternCache(Epoch, Id);
      if (Id < Base)
        Shared->touch(Id);
      else
        ++DeltaHits[Id - Base];
      return Id;
    }

  std::vector<uint64_t> AKey = automatonKey(G, Syms, Scratch);
  if (Shared) {
    auto SharedIt = Shared->AutoMap.find(AKey);
    if (SharedIt != Shared->AutoMap.end()) {
      // New shape of a language the shared tier knows: record the shape
      // privately so the next structural lookup short-circuits.
      ++St.SharedHits;
      Shared->touch(SharedIt->second);
      Aliases.push_back(G);
      Bucket.emplace_back(&Aliases.back(), SharedIt->second);
      G.setInternCache(Shared->Epoch, SharedIt->second);
      return SharedIt->second;
    }
  }
  auto It = AutoMap.find(AKey);
  if (It != AutoMap.end()) {
    // New shape of a known language: remember it so the next structural
    // lookup of this shape short-circuits.
    ++St.AutoHits;
    // The private automaton map only records privately assigned ids
    // (>= Base), so this is always a delta-heat tick.
    ++DeltaHits[It->second - Base];
    Aliases.push_back(G);
    Bucket.emplace_back(&Aliases.back(), It->second);
    G.setInternCache(Epoch, It->second);
    return It->second;
  }

  ++St.Misses;
  CanonId Id = Base + static_cast<CanonId>(Canon.size());
  Canon.push_back(G);
  DeltaHits.push_back(0);
  Canon.back().setInternCache(Epoch, Id);
  Bucket.emplace_back(&Canon.back(), Id);
  AutoMap.emplace(std::move(AKey), Id);
  G.setInternCache(Epoch, Id);
  return Id;
}

std::shared_ptr<const FrozenInternTier>
GraphInterner::freeze(bool SealStorage) const {
  FrozenInternTier::Builder B;
  B.Epoch = nextInternerEpoch();

  // Stacking preserves every id: the relocation from the (shared tier +
  // delta) id space into the new tier is the identity table. Compaction
  // (runtime/SharedCache.cpp) is the rebuild with a non-trivial table;
  // both route every cross-tier id through the RelocationTable API, per
  // the gaia-lint relocation-remap rule.
  const RelocationTable<CanonId> Reloc =
      RelocationTable<CanonId>::identity(size());

  // Canonical graphs: the shared tier's prefix plus this interner's
  // private delta, at their relocated ids. Fill the vector completely
  // before taking pointers into it for the buckets (the final move into
  // the tier steals the buffer, so the pointers stay valid).
  B.Canon.reserve(Reloc.size());
  if (Shared)
    B.Canon.insert(B.Canon.end(), Shared->Canon.begin(),
                   Shared->Canon.end());
  B.Canon.insert(B.Canon.end(), Canon.begin(), Canon.end());
  for (CanonId Id = 0; Id != static_cast<CanonId>(B.Canon.size()); ++Id) {
    // Precompute the lazily-filled mutable caches now, so tier lookups
    // are pure reads: concurrent workers must never write into these
    // graphs.
    structuralHash(B.Canon[Id]);
    B.Canon[Id].setInternCache(B.Epoch, Id);
  }

  // Re-home the structural buckets: canonical representatives point at
  // the new Canon storage, recorded aliases are copied over.
  auto AddBuckets = [&](const auto &Buckets, auto IsCanonical) {
    for (const auto &[Hash, Entries] : Buckets)
      for (const auto &[Rep, Id] : Entries) {
        CanonId New = Reloc.map(Id);
        if (IsCanonical(Rep, Id)) {
          B.StructBuckets[Hash].emplace_back(&B.Canon[New], New);
        } else {
          B.Aliases.push_back(*Rep);
          structuralHash(B.Aliases.back());
          B.StructBuckets[Hash].emplace_back(&B.Aliases.back(), New);
        }
      }
  };
  if (Shared)
    AddBuckets(Shared->StructBuckets, [&](const TypeGraph *Rep, CanonId Id) {
      return Rep == &Shared->Canon[Id];
    });
  AddBuckets(StructBuckets, [&](const TypeGraph *Rep, CanonId Id) {
    return Id >= Base && Rep == &graph(Id);
  });

  if (Shared)
    for (const auto &[Key, Id] : Shared->AutoMap)
      B.AutoMap.emplace(Key, Reloc.map(Id));
  for (const auto &[Key, Id] : AutoMap)
    B.AutoMap.emplace(Key, Reloc.map(Id));

  auto T = std::make_shared<const FrozenInternTier>(std::move(B));
  if (SealStorage)
    T->sealStorage();
  return T;
}
