//===- support/GraphInterner.cpp -------------------------------------------=//

#include "support/GraphInterner.h"

#include "typegraph/Normalize.h"

#include <atomic>

using namespace gaia;

uint64_t gaia::structuralHash(const TypeGraph &G) {
  if (G.structSigValid())
    return G.structSig();
  uint64_t Result;
  if (G.root() == InvalidNode) {
    Result = 0x1507;
  } else {
    TypeGraph::Topology T = G.computeTopology();
    std::vector<uint32_t> Remap(G.numNodes(), ~0u);
    for (size_t I = 0; I != T.BfsOrder.size(); ++I)
      Remap[T.BfsOrder[I]] = static_cast<uint32_t>(I);
    std::size_t Seed = T.BfsOrder.size();
    for (NodeId V : T.BfsOrder) {
      const TGNode &N = G.node(V);
      hashCombine(Seed, static_cast<std::size_t>(N.Kind));
      if (N.Kind == NodeKind::Func)
        hashCombine(Seed, N.Fn);
      hashCombine(Seed, N.Succs.size());
      for (NodeId S : N.Succs)
        hashCombine(Seed, Remap[S]);
    }
    Result = Seed;
  }
  G.setStructSig(Result);
  return Result;
}

bool gaia::structuralEqual(const TypeGraph &A, const TypeGraph &B) {
  if ((A.root() == InvalidNode) != (B.root() == InvalidNode))
    return false;
  if (A.root() == InvalidNode)
    return true;
  TypeGraph::Topology TA = A.computeTopology();
  TypeGraph::Topology TB = B.computeTopology();
  if (TA.BfsOrder.size() != TB.BfsOrder.size())
    return false;
  std::vector<uint32_t> RemapA(A.numNodes(), ~0u);
  std::vector<uint32_t> RemapB(B.numNodes(), ~0u);
  for (size_t I = 0; I != TA.BfsOrder.size(); ++I) {
    RemapA[TA.BfsOrder[I]] = static_cast<uint32_t>(I);
    RemapB[TB.BfsOrder[I]] = static_cast<uint32_t>(I);
  }
  for (size_t I = 0; I != TA.BfsOrder.size(); ++I) {
    const TGNode &NA = A.node(TA.BfsOrder[I]);
    const TGNode &NB = B.node(TB.BfsOrder[I]);
    if (NA.Kind != NB.Kind || NA.Succs.size() != NB.Succs.size())
      return false;
    if (NA.Kind == NodeKind::Func && NA.Fn != NB.Fn)
      return false;
    for (size_t J = 0; J != NA.Succs.size(); ++J)
      if (RemapA[NA.Succs[J]] != RemapB[NB.Succs[J]])
        return false;
  }
  return true;
}

namespace {

/// Process-wide epoch source for interner identity tags. Epoch 0 is the
/// "never interned" state of a fresh graph, so the counter starts at 1.
/// Atomic: individual interners are single-threaded, but interners for
/// independent analyses may be constructed concurrently, and a duplicated
/// epoch would let a graph smuggle a cached id across interners.
uint64_t nextInternerEpoch() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Serializes the canonical minimal automaton of \p G into a flat word
/// sequence. buildAutomaton numbers states deterministically from the
/// structure alone, so the serialization is a canonical language key.
std::vector<uint64_t> automatonKey(const TypeGraph &G,
                                   const SymbolTable &Syms,
                                   NormalizeScratch &Scratch) {
  GrammarAutomaton A = buildAutomaton(G, Syms, &Scratch);
  std::vector<uint64_t> Key;
  if (A.Empty) {
    Key.push_back(0xE0);
    return Key;
  }
  Key.push_back(A.States.size());
  for (const GrammarAutomaton::State &S : A.States) {
    Key.push_back((S.IsAny ? 2 : 0) | (S.HasInt ? 1 : 0));
    Key.push_back(S.Trans.size());
    for (const auto &[Fn, Args] : S.Trans) {
      Key.push_back(Fn);
      for (uint32_t Arg : Args)
        Key.push_back(Arg);
    }
  }
  return Key;
}

} // namespace

GraphInterner::GraphInterner(const SymbolTable &Syms,
                             std::shared_ptr<const FrozenInternTier> Tier)
    : Syms(Syms), Shared(std::move(Tier)),
      Base(Shared ? Shared->size() : 0), Epoch(nextInternerEpoch()) {}

CanonId GraphInterner::intern(const TypeGraph &G) {
  // O(1) path: this exact value object (or a copy of one) has been
  // through this interner — or through the shared tier, whose ids form
  // the dense prefix of this interner's id space and are therefore valid
  // here as-is.
  if (G.internEpoch() == Epoch) {
    ++St.IdHits;
    return G.internId();
  }
  if (Shared && G.internEpoch() == Shared->Epoch) {
    ++St.SharedHits;
    return G.internId();
  }

  uint64_t H = structuralHash(G);

  // Frozen shared tier: lookups only, never mutated (concurrent workers
  // read it unsynchronized). A hit is cached on the *value* under the
  // tier's epoch, so copies keep resolving against any interner layered
  // over the same tier.
  if (Shared) {
    if (auto BucketIt = Shared->StructBuckets.find(H);
        BucketIt != Shared->StructBuckets.end())
      for (const auto &[Rep, Id] : BucketIt->second)
        if (structuralEqual(*Rep, G)) {
          ++St.SharedHits;
          G.setInternCache(Shared->Epoch, Id);
          return Id;
        }
  }

  auto &Bucket = StructBuckets[H];
  for (const auto &[Rep, Id] : Bucket)
    if (structuralEqual(*Rep, G)) {
      ++St.StructHits;
      G.setInternCache(Epoch, Id);
      return Id;
    }

  std::vector<uint64_t> AKey = automatonKey(G, Syms, Scratch);
  if (Shared) {
    auto SharedIt = Shared->AutoMap.find(AKey);
    if (SharedIt != Shared->AutoMap.end()) {
      // New shape of a language the shared tier knows: record the shape
      // privately so the next structural lookup short-circuits.
      ++St.SharedHits;
      Aliases.push_back(G);
      Bucket.emplace_back(&Aliases.back(), SharedIt->second);
      G.setInternCache(Shared->Epoch, SharedIt->second);
      return SharedIt->second;
    }
  }
  auto It = AutoMap.find(AKey);
  if (It != AutoMap.end()) {
    // New shape of a known language: remember it so the next structural
    // lookup of this shape short-circuits.
    ++St.AutoHits;
    Aliases.push_back(G);
    Bucket.emplace_back(&Aliases.back(), It->second);
    G.setInternCache(Epoch, It->second);
    return It->second;
  }

  ++St.Misses;
  CanonId Id = Base + static_cast<CanonId>(Canon.size());
  Canon.push_back(G);
  Canon.back().setInternCache(Epoch, Id);
  Bucket.emplace_back(&Canon.back(), Id);
  AutoMap.emplace(std::move(AKey), Id);
  G.setInternCache(Epoch, Id);
  return Id;
}

std::shared_ptr<const FrozenInternTier> GraphInterner::freeze() const {
  auto T = std::make_shared<FrozenInternTier>();
  T->Epoch = nextInternerEpoch();

  // Canonical graphs: the shared tier's prefix (ids preserved) plus this
  // interner's private delta. Fill the vector completely before taking
  // pointers into it for the buckets.
  T->Canon.reserve(Base + Canon.size());
  if (Shared)
    T->Canon.insert(T->Canon.end(), Shared->Canon.begin(),
                    Shared->Canon.end());
  T->Canon.insert(T->Canon.end(), Canon.begin(), Canon.end());
  for (CanonId Id = 0; Id != static_cast<CanonId>(T->Canon.size()); ++Id) {
    // Precompute the lazily-filled mutable caches now, so tier lookups
    // are pure reads: concurrent workers must never write into these
    // graphs.
    structuralHash(T->Canon[Id]);
    T->Canon[Id].setInternCache(T->Epoch, Id);
  }

  // Re-home the structural buckets: canonical representatives point at
  // the new Canon storage, recorded aliases are copied over.
  auto AddBuckets = [&](const auto &Buckets, auto IsCanonical) {
    for (const auto &[Hash, Entries] : Buckets)
      for (const auto &[Rep, Id] : Entries) {
        if (IsCanonical(Rep, Id)) {
          T->StructBuckets[Hash].emplace_back(&T->Canon[Id], Id);
        } else {
          T->Aliases.push_back(*Rep);
          structuralHash(T->Aliases.back());
          T->StructBuckets[Hash].emplace_back(&T->Aliases.back(), Id);
        }
      }
  };
  if (Shared)
    AddBuckets(Shared->StructBuckets, [&](const TypeGraph *Rep, CanonId Id) {
      return Rep == &Shared->Canon[Id];
    });
  AddBuckets(StructBuckets, [&](const TypeGraph *Rep, CanonId Id) {
    return Id >= Base && Rep == &Canon[Id - Base];
  });

  if (Shared)
    T->AutoMap = Shared->AutoMap;
  for (const auto &[Key, Id] : AutoMap)
    T->AutoMap.emplace(Key, Id);
  return T;
}
