//===- support/Clock.h - Monotonic clock shim for the serving layer -------==//
///
/// \file
/// The serving runtime's time source. All queue-side time arithmetic in
/// AnalysisService — enqueue stamps, per-request deadline horizons, queue
/// age, the overload state machine's thresholds, the watchdog's
/// stuck-worker detection — goes through ServiceClock::now() instead of
/// calling std::chrono::steady_clock directly.
///
/// The indirection exists for one reason: testability. The interesting
/// admission behaviours (a queued job whose deadline expires before a
/// worker reaches it, the Healthy → Saturated → Shedding transitions)
/// are defined by elapsed wall time, and a test that reproduced them by
/// actually sleeping would be slow and racy. advance() skews the clock
/// forward by a fixed offset, so a test can park jobs in the queue,
/// "age" them instantly, and observe the shed/overload decisions
/// deterministically.
///
/// The skew deliberately does NOT reach the analysis itself: an
/// in-flight job's cooperative deadline (CancelSignal) keeps reading the
/// raw steady clock, so skewing time never aborts real computation —
/// only the queue-side bookkeeping moves.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_CLOCK_H
#define GAIA_SUPPORT_CLOCK_H

#include <atomic>
#include <chrono>

namespace gaia {

/// Monotonic now() = steady_clock + a test-controlled skew. The skew is
/// process-global and only ever grows (advance() takes an unsigned
/// duration), preserving monotonicity across all readers.
class ServiceClock {
public:
  using Duration = std::chrono::steady_clock::duration;
  using TimePoint = std::chrono::steady_clock::time_point;

  static TimePoint now() {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<Duration>(std::chrono::nanoseconds(
               SkewNs.load(std::memory_order_relaxed)));
  }

  /// Test hook: moves every subsequent now() forward by \p By. Safe from
  /// any thread (production code never calls it).
  static void advance(std::chrono::nanoseconds By) {
    if (By.count() > 0)
      SkewNs.fetch_add(By.count(), std::memory_order_relaxed);
  }

  /// Test hook: drops any accumulated skew (between test cases only —
  /// rewinding time under a live service would break queue-age math).
  static void resetForTest() { SkewNs.store(0, std::memory_order_relaxed); }

private:
  static inline std::atomic<int64_t> SkewNs{0};
};

} // namespace gaia

#endif // GAIA_SUPPORT_CLOCK_H
