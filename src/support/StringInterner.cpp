//===- support/StringInterner.cpp ------------------------------------------=//

#include "support/StringInterner.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <numeric>

using namespace gaia;

SymbolTable::SymbolTable() {
  Cons = functor(".", 2);
  Nil = functor("[]", 0);
  Int = functor("$int", 0);
}

SymbolId SymbolTable::intern(std::string_view Text) {
  // C++20 heterogeneous lookup on unordered_map with std::string keys
  // requires a transparent hash; keep it simple and materialize the key.
  std::string Key(Text);
  auto It = SymbolMap.find(Key);
  if (It != SymbolMap.end())
    return It->second;
  SymbolId Id = static_cast<SymbolId>(Names.size());
  Names.push_back(Key);
  SymbolMap.emplace(std::move(Key), Id);
  return Id;
}

FunctorId SymbolTable::functor(SymbolId Sym, uint32_t Arity) {
  assert(Sym < Names.size() && "functor of unknown symbol");
  auto Key = std::make_pair(Sym, Arity);
  auto It = FunctorMap.find(Key);
  if (It != FunctorMap.end())
    return It->second;
  FunctorId Id = static_cast<FunctorId>(Functors.size());
  Functors.push_back(Key);
  FunctorMap.emplace(Key, Id);
  RanksValid = false;
  return Id;
}

FunctorId SymbolTable::functor(std::string_view Name, uint32_t Arity) {
  return functor(intern(Name), Arity);
}

std::string SymbolTable::functorString(FunctorId Fn) const {
  return functorName(Fn) + "/" + std::to_string(functorArity(Fn));
}

uint32_t SymbolTable::functorRank(FunctorId Fn) const {
  assert(Fn < Functors.size() && "rank of unknown functor");
  if (!RanksValid) {
    std::vector<FunctorId> Order(Functors.size());
    std::iota(Order.begin(), Order.end(), 0);
    std::sort(Order.begin(), Order.end(), [&](FunctorId A, FunctorId B) {
      const std::string &NA = functorName(A);
      const std::string &NB = functorName(B);
      if (NA != NB)
        return NA < NB;
      return functorArity(A) < functorArity(B);
    });
    Ranks.assign(Functors.size(), 0);
    for (uint32_t I = 0; I != Order.size(); ++I)
      Ranks[Order[I]] = I;
    RanksValid = true;
  }
  return Ranks[Fn];
}

bool SymbolTable::isIntegerLiteral(FunctorId Fn) const {
  if (functorArity(Fn) != 0)
    return false;
  const std::string &Text = functorName(Fn);
  if (Text.empty())
    return false;
  size_t Start = Text[0] == '-' ? 1 : 0;
  if (Start == Text.size())
    return false;
  for (size_t I = Start, E = Text.size(); I != E; ++I)
    if (!std::isdigit(static_cast<unsigned char>(Text[I])))
      return false;
  return true;
}
