//===- support/SmallVector.h - Vector with inline small storage -----------==//
///
/// \file
/// A dynamically sized array that stores up to `N` elements inline and
/// only touches the heap when it spills past that capacity. The type
/// graphs of the analyzer are dominated by vertices of arity <= 2 (the
/// or-degree distribution of Table 1's programs, and every cons/2 cell),
/// so storing successor lists inline turns the per-node heap allocation
/// of `std::vector` — paid on every graph copy, product construction and
/// normalization unfold — into plain member storage.
///
/// Restricted to trivially copyable element types: growth and copies are
/// memcpy, and destruction never runs element destructors. That is all
/// the id-vector use cases need and keeps the hot paths branch-light.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SUPPORT_SMALLVECTOR_H
#define GAIA_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace gaia {

template <typename T, unsigned N> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector only supports trivially copyable elements");
  static_assert(N >= 1, "inline capacity must be at least 1");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> Init) { appendRange(Init.begin(), Init.end()); }

  /// Implicit conversion from std::vector keeps call sites that build
  /// successor lists in a std::vector compiling unchanged.
  SmallVector(const std::vector<T> &V) { appendRange(V.data(), V.data() + V.size()); }

  template <typename It> SmallVector(It First, It Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }

  SmallVector(const SmallVector &Other) { appendRange(Other.begin(), Other.end()); }

  SmallVector(SmallVector &&Other) noexcept { stealFrom(Other); }

  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    assignRange(Other.begin(), Other.end());
    return *this;
  }

  SmallVector &operator=(SmallVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    if (!isInline())
      std::free(Ptr);
    stealFrom(Other);
    return *this;
  }

  SmallVector &operator=(std::initializer_list<T> Init) {
    assignRange(Init.begin(), Init.end());
    return *this;
  }

  SmallVector &operator=(const std::vector<T> &V) {
    assignRange(V.data(), V.data() + V.size());
    return *this;
  }

  ~SmallVector() {
    if (!isInline())
      std::free(Ptr);
  }

  bool empty() const { return Count == 0; }
  uint32_t size() const { return Count; }
  uint32_t capacity() const { return Cap; }

  T *data() { return Ptr; }
  const T *data() const { return Ptr; }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Count; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Count; }

  T &operator[](size_t I) {
    assert(I < Count && "index out of range");
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "index out of range");
    return Ptr[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Count - 1]; }
  const T &back() const { return (*this)[Count - 1]; }

  void push_back(const T &V) {
    if (Count == Cap)
      grow(Count + 1);
    Ptr[Count++] = V;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    push_back(T(std::forward<Args>(A)...));
    return back();
  }

  void pop_back() {
    assert(Count != 0 && "pop_back on empty vector");
    --Count;
  }

  void clear() { Count = 0; }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void resize(size_t NewSize, const T &Fill = T()) {
    if (NewSize > Count) {
      reserve(NewSize);
      std::fill(Ptr + Count, Ptr + NewSize, Fill);
    }
    Count = static_cast<uint32_t>(NewSize);
  }

  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase position out of range");
    std::memmove(Pos, Pos + 1, (end() - Pos - 1) * sizeof(T));
    --Count;
    return Pos;
  }

  iterator erase(iterator First, iterator Last) {
    assert(First >= begin() && Last <= end() && First <= Last &&
           "erase range out of range");
    std::memmove(First, Last, (end() - Last) * sizeof(T));
    Count -= static_cast<uint32_t>(Last - First);
    return First;
  }

  friend bool operator==(const SmallVector &A, const SmallVector &B) {
    return A.Count == B.Count && std::equal(A.begin(), A.end(), B.begin());
  }
  friend bool operator!=(const SmallVector &A, const SmallVector &B) {
    return !(A == B);
  }

  /// True while the elements live in the inline buffer (exposed so the
  /// property tests can pin down exactly when spilling happens).
  bool isInline() const { return Ptr == inlineBuf(); }

private:
  T *inlineBuf() { return reinterpret_cast<T *>(Inline); }
  const T *inlineBuf() const { return reinterpret_cast<const T *>(Inline); }

  void grow(size_t MinCap) {
    size_t NewCap = std::max<size_t>(MinCap, static_cast<size_t>(Cap) * 2);
    T *NewPtr = static_cast<T *>(std::malloc(NewCap * sizeof(T)));
    assert(NewPtr && "allocation failure");
    std::memcpy(NewPtr, Ptr, Count * sizeof(T));
    if (!isInline())
      std::free(Ptr);
    Ptr = NewPtr;
    Cap = static_cast<uint32_t>(NewCap);
  }

  void appendRange(const T *First, const T *Last) {
    size_t Len = static_cast<size_t>(Last - First);
    if (Len == 0)
      return; // First may be null for an empty source (vector::data()).
    reserve(Count + Len);
    std::memcpy(Ptr + Count, First, Len * sizeof(T));
    Count += static_cast<uint32_t>(Len);
  }

  void assignRange(const T *First, const T *Last) {
    Count = 0;
    appendRange(First, Last);
  }

  /// Takes Other's storage (heap block or element copy) and resets Other
  /// to an empty inline state.
  void stealFrom(SmallVector &Other) {
    if (Other.isInline()) {
      Ptr = inlineBuf();
      Cap = N;
      Count = Other.Count;
      std::memcpy(Ptr, Other.Ptr, Count * sizeof(T));
    } else {
      Ptr = Other.Ptr;
      Cap = Other.Cap;
      Count = Other.Count;
    }
    Other.Ptr = Other.inlineBuf();
    Other.Cap = N;
    Other.Count = 0;
  }

  T *Ptr = inlineBuf();
  uint32_t Count = 0;
  uint32_t Cap = N;
  alignas(T) unsigned char Inline[N * sizeof(T)];
};

} // namespace gaia

#endif // GAIA_SUPPORT_SMALLVECTOR_H
