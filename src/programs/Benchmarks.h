//===- programs/Benchmarks.h - The benchmark program suite ----------------==//
///
/// \file
/// Embedded Prolog sources for the paper's evaluation: the ten
/// medium-sized benchmarks of Section 9 (KA, QU, PR, PE, CS, DS, PG,
/// RE, BR, PL — reconstructions from their published provenance; see
/// DESIGN.md), the arithmetic programs AR/AR1 of Figures 2-3 (verbatim),
/// the L-variants with list input patterns, and all Section 2
/// illustration examples (verbatim).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROGRAMS_BENCHMARKS_H
#define GAIA_PROGRAMS_BENCHMARKS_H

#include <string>
#include <vector>

namespace gaia {

struct BenchmarkProgram {
  std::string Key;         ///< "KA", "QU", ..., "AR1", "nreverse", ...
  std::string Description; ///< one-line provenance note
  std::string Source;      ///< Prolog source text
  std::string GoalSpec;    ///< input pattern, e.g. "kalah(any,any)"
};

/// The Section 9 benchmark suite (including AR, AR1 and the L-variants),
/// in the row order of Tables 4/5.
const std::vector<BenchmarkProgram> &benchmarkSuite();

/// The ten Table 1/2/3 programs (KA..PL), in the paper's column order.
const std::vector<BenchmarkProgram> &table123Suite();

/// The Section 2 illustration examples.
const std::vector<BenchmarkProgram> &section2Examples();

/// Looks up any program by key (searches both suites). Returns nullptr
/// if unknown.
const BenchmarkProgram *findBenchmark(const std::string &Key);

} // namespace gaia

#endif // GAIA_PROGRAMS_BENCHMARKS_H
