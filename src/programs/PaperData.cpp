//===- programs/PaperData.cpp -------------------------------------------------=//

#include "programs/PaperData.h"

#include <cstring>

using namespace gaia;

// Table 1: sizes of the programs.
static const PaperTable1Row Table1[] = {
    {"KA", 44, 82, 475, 84, 73},  {"QU", 5, 9, 38, 8, 5},
    {"PR", 52, 158, 742, 130, 75}, {"PE", 19, 168, 808, 90, 80},
    {"CS", 32, 55, 336, 57, 46},  {"DS", 28, 52, 296, 60, 47},
    {"PG", 10, 18, 93, 17, 11},   {"RE", 42, 163, 820, 168, 144},
    {"BR", 20, 45, 207, 37, 21},  {"PL", 13, 26, 94, 29, 25},
};

// Table 2: syntactic form. (The CS column sums to 41 in the published
// table against 32 procedures in Table 1 — an inconsistency in the
// original; we record the printed digits.)
static const PaperTable2Row Table2[] = {
    {"KA", 12, 0, 7, 25}, {"QU", 4, 0, 0, 1},  {"PR", 12, 5, 8, 27},
    {"PE", 6, 0, 4, 9},   {"CS", 9, 1, 2, 29}, {"DS", 14, 0, 0, 14},
    {"PG", 6, 0, 0, 4},   {"RE", 6, 0, 16, 20}, {"BR", 11, 1, 0, 8},
    {"PL", 4, 0, 0, 9},
};

// Table 3: computation results (times on a Sun SPARC-10).
static const PaperTable3Row Table3[] = {
    {"KA", 1.52, 149, 290, 1.27, 1.23},
    {"QU", 0.01, 18, 35, 0.01, 0.01},
    {"PR", 2.51, 253, 791, 2.35, 2.25},
    {"PE", 2.73, 109, 569, 2.06, 1.69},
    {"CS", 1.01, 99, 190, 0.97, 1.02},
    {"DS", 0.72, 78, 142, 0.61, 0.71},
    {"PG", 0.39, 59, 123, 0.37, 0.35},
    {"RE", 117.15, 1052, 3300, 23.00, 9.19},
    {"BR", 0.38, 72, 165, 0.38, 0.43},
    {"PL", 0.31, 50, 98, 0.28, 0.31},
};

// Table 4: accuracy, output tags.
static const PaperTagRow Table4[] = {
    {"AR", 10, 10, 1.00, 5, 5, 1.00},
    {"AR1", 10, 10, 1.00, 5, 5, 1.00},
    {"CS", 93, 24, 0.26, 33, 12, 0.37},
    {"DS", 59, 30, 0.51, 29, 13, 0.45},
    {"BR", 59, 13, 0.22, 20, 11, 0.55},
    {"KA", 124, 34, 0.27, 45, 22, 0.49},
    {"LDS", 61, 40, 0.66, 31, 23, 0.50},
    {"LPE", 63, 40, 0.66, 19, 19, 1.00},
    {"LPL", 33, 15, 0.45, 14, 8, 0.57},
    {"PE", 63, 38, 0.60, 19, 19, 1.00},
    {"PG", 31, 14, 0.45, 10, 7, 0.70},
    {"PL", 33, 10, 0.30, 14, 8, 0.57},
    {"PR", 144, 32, 0.22, 53, 22, 0.41},
    {"QU", 11, 6, 0.55, 5, 4, 0.80},
    {"RE", 123, 37, 0.30, 43, 27, 0.63},
};

// Table 5: accuracy, input tags.
static const PaperTagRow Table5[] = {
    {"AR1", 10, 2, 0.20, 5, 1, 0.20},
    {"AR", 10, 2, 0.20, 5, 1, 0.20},
    {"CS", 93, 15, 0.16, 33, 10, 0.30},
    {"DS", 59, 16, 0.27, 29, 12, 0.41},
    {"BR", 59, 5, 0.08, 20, 5, 0.25},
    {"KA", 124, 21, 0.17, 45, 18, 0.40},
    {"LDS", 61, 24, 0.39, 31, 13, 0.42},
    {"LPE", 63, 20, 0.32, 19, 14, 0.74},
    {"LPL", 33, 14, 0.42, 14, 10, 0.71},
    {"PE", 63, 10, 0.16, 19, 8, 0.32},
    {"PG", 31, 7, 0.22, 10, 5, 0.50},
    {"PL", 33, 3, 0.09, 14, 3, 0.21},
    {"PR", 144, 22, 0.15, 53, 19, 0.36},
    {"QU", 11, 2, 0.18, 5, 2, 0.40},
    {"RE", 123, 16, 0.13, 43, 14, 0.33},
};

template <typename Row, size_t N>
static const Row *lookup(const Row (&Rows)[N], const std::string &Key) {
  for (const Row &R : Rows)
    if (Key == R.Key)
      return &R;
  return nullptr;
}

const PaperTable1Row *gaia::paperTable1(const std::string &Key) {
  return lookup(Table1, Key);
}
const PaperTable2Row *gaia::paperTable2(const std::string &Key) {
  return lookup(Table2, Key);
}
const PaperTable3Row *gaia::paperTable3(const std::string &Key) {
  return lookup(Table3, Key);
}
const PaperTagRow *gaia::paperTable4(const std::string &Key) {
  return lookup(Table4, Key);
}
const PaperTagRow *gaia::paperTable5(const std::string &Key) {
  return lookup(Table5, Key);
}
