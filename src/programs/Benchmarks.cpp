//===- programs/Benchmarks.cpp ------------------------------------------------=//

#include "programs/Benchmarks.h"

#include "support/Debug.h"

using namespace gaia;

//===----------------------------------------------------------------------===//
// Section 2 illustration examples (verbatim from the paper).
//===----------------------------------------------------------------------===//

static const char *SrcNreverse = R"PL(
% Naive reverse (Section 2).
nreverse([], []).
nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
)PL";

static const char *SrcProcess = R"PL(
% Abstraction of a procedure used in the parser of Prolog (Section 2):
% a sophisticated form of accumulator.
process(X, Y) :- process(X, 0, Y).

process([], X, X).
process([c(X1)|Y], Acc, X) :- process(Y, c(X1,Acc), X).
process([d(X1)|Y], Acc, X) :- process(Y, d(X1,Acc), X).
)PL";

static const char *SrcProcessMutual = R"PL(
% The process example with two mutually recursive procedures
% (Section 2).
process(X, Y) :- process(X, 0, Y).

process([], X, X).
process([c(X1)|Y], Acc, X) :- other_process(Y, c(X1,Acc), X).

other_process([d(X1)|Y], Acc, X) :- process(Y, d(X1,Acc), X).
)PL";

static const char *SrcNested = R"PL(
% Figure 1: a Prolog program manipulating nested lists.
llist([]).
llist([F|T]) :- list(F), llist(T).

list([]).
list([F|T]) :- p(F), list(T).

p(a).
p(b).

reverse(X, Y) :- reverse(X, [], Y).

reverse([], X, X).
reverse([F|T], Acc, Res) :- reverse(T, [F|Acc], Res).

get(Res) :- llist(X), reverse(X, Res).
)PL";

static const char *SrcGen = R"PL(
% The gen/succ program (Section 2): lists and integers grow together,
% so the widening must infer both recursive structures simultaneously.
succ([], []).
succ([X|Xs], [s(X)|R]) :- succ(Xs, R).

gen([]).
gen([0|L]) :- gen(X), succ(X, L).
)PL";

static const char *SrcTokenizer = R"PL(
% A compact tokenizer in the style of the Prolog tokenizer discussed in
% Section 2: the result type must keep punctuation atoms, atom/integer/
% string/var tokens, and the nested string type apart.
tokenize([], []).
tokenize([C|Cs], Ts) :- white(C), tokenize(Cs, Ts).
tokenize([C|Cs], [T|Ts]) :- punct(C, T), tokenize(Cs, Ts).
tokenize([C|Cs], [atom(Name)|Ts]) :-
    lower(C), grab_word(Cs, Word, Rest), name(Name, [C|Word]),
    tokenize(Rest, Ts).
tokenize([C|Cs], [var(Name, [C|Word])|Ts]) :-
    upper(C), grab_word(Cs, Word, Rest), name(Name, [C|Word]),
    tokenize(Rest, Ts).
tokenize([C|Cs], [integer(N)|Ts]) :-
    digit(C), grab_digits(Cs, Ds, Rest), name(N, [C|Ds]),
    tokenize(Rest, Ts).
tokenize([34|Cs], [string(S)|Ts]) :-
    grab_string(Cs, S, Rest), tokenize(Rest, Ts).

punct(40, '(').
punct(41, ')').
punct(44, ',').
punct(91, '[').
punct(93, ']').
punct(123, '{').
punct(125, '}').
punct(124, '|').

white(32).
white(10).
white(9).

lower(C) :- C >= 97, C =< 122.
upper(C) :- C >= 65, C =< 90.
digit(C) :- C >= 48, C =< 57.

alpha(C) :- lower(C).
alpha(C) :- upper(C).
alpha(C) :- digit(C).
alpha(95).

grab_word([C|Cs], [C|W], Rest) :- alpha(C), grab_word(Cs, W, Rest).
grab_word(Cs, [], Cs).

grab_digits([C|Cs], [C|Ds], Rest) :- digit(C), grab_digits(Cs, Ds, Rest).
grab_digits(Cs, [], Cs).

grab_string([34|Cs], [], Cs).
grab_string([C|Cs], [C|S], Rest) :- grab_string(Cs, S, Rest).
)PL";

static const char *SrcQsort = R"PL(
% Figure 4: the quicksort program with an accumulator (difference-list
% style), the paper's example of precision loss.
qsort(X1, X2) :- qsort(X1, X2, []).

qsort([], L, L).
qsort([F|T], O, A) :-
    partition(T, F, Small, Big),
    qsort(Small, O, [F|Ot]),
    qsort(Big, Ot, A).

partition([], _, [], []).
partition([X|Xs], P, [X|Ss], Bs) :- X =< P, partition(Xs, P, Ss, Bs).
partition([X|Xs], P, Ss, [X|Bs]) :- X > P, partition(Xs, P, Ss, Bs).
)PL";

static const char *SrcQsortSwapped = R"PL(
% Figure 4 with the two recursive calls switched: the accumulator is
% instantiated before the first recursive call, recovering the list
% type for both arguments.
qsort(X1, X2) :- qsort(X1, X2, []).

qsort([], L, L).
qsort([F|T], O, A) :-
    partition(T, F, Small, Big),
    qsort(Big, Ot, A),
    qsort(Small, O, [F|Ot]).

partition([], _, [], []).
partition([X|Xs], P, [X|Ss], Bs) :- X =< P, partition(Xs, P, Ss, Bs).
partition([X|Xs], P, Ss, [X|Bs]) :- X > P, partition(Xs, P, Ss, Bs).
)PL";

static const char *SrcInsert = R"PL(
% The binary-tree insertion program from the introduction.
insert(E, void, tree(void,E,void)).
insert(E, tree(L,V,R), tree(Ln,V,R)) :- E < V, insert(E, L, Ln).
insert(E, tree(L,V,R), tree(L,V,Rn)) :- E > V, insert(E, R, Rn).
)PL";

//===----------------------------------------------------------------------===//
// The arithmetic programs of Figures 2 and 3 (verbatim plus append).
//===----------------------------------------------------------------------===//

static const char *SrcAR = R"PL(
% Figure 2: a Prolog program manipulating arithmetic expressions.
add(0, []).
add(X + Y, Res) :- add(X, Res1), mult(Y, Res2), append(Res1, Res2, Res).

mult(1, []).
mult(X * Y, Res) :- mult(X, Res1), basic(Y, Res2), append(Res1, Res2, Res).

basic(var(X), [X]).
basic(cst(C), []).
basic(par(X), Res) :- add(X, Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
)PL";

static const char *SrcAR1 = R"PL(
% Figure 3: another program on arithmetic expressions; requires the
% widening to postpone its decision until the type structure is clear.
add(X, Res) :- mult(X, Res).
add(X + Y, Res) :- add(X, R1), mult(Y, R2), append(R1, R2, Res).

mult(X, Res) :- basic(X, Res).
mult(X * Y, Res) :- mult(X, R1), basic(Y, R2), append(R1, R2, Res).

basic(var(X), [X]).
basic(cst(X), []).
basic(par(X), Res) :- add(X, Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
)PL";

//===----------------------------------------------------------------------===//
// The ten medium-sized benchmarks (reconstructions; see DESIGN.md).
//===----------------------------------------------------------------------===//

static const char *SrcQU =
#include "programs/src_qu.inc"
    ;
static const char *SrcPG =
#include "programs/src_pg.inc"
    ;
static const char *SrcPL2 =
#include "programs/src_pl.inc"
    ;
static const char *SrcBR =
#include "programs/src_br.inc"
    ;
static const char *SrcDS =
#include "programs/src_ds.inc"
    ;
static const char *SrcCS =
#include "programs/src_cs.inc"
    ;
static const char *SrcKA =
#include "programs/src_ka.inc"
    ;
static const char *SrcPE =
#include "programs/src_pe.inc"
    ;
static const char *SrcPR =
#include "programs/src_pr.inc"
    ;
static const char *SrcRE =
#include "programs/src_re.inc"
    ;

//===----------------------------------------------------------------------===//
// Registries.
//===----------------------------------------------------------------------===//

const std::vector<BenchmarkProgram> &gaia::section2Examples() {
  static const std::vector<BenchmarkProgram> Progs = {
      {"nreverse", "naive reverse (Section 2)", SrcNreverse,
       "nreverse(any,any)"},
      {"process", "accumulator abstraction of a parser (Section 2)",
       SrcProcess, "process(any,any)"},
      {"process_mutual", "process with mutual recursion (Section 2)",
       SrcProcessMutual, "process(any,any)"},
      {"nested", "nested lists + reverse (Figure 1)", SrcNested,
       "get(any)"},
      {"gen", "gen/succ: two recursive structures at once (Section 2)",
       SrcGen, "gen(any)"},
      {"tokenizer", "compact Prolog tokenizer (Section 2)", SrcTokenizer,
       "tokenize(any,any)"},
      {"qsort", "quicksort with accumulator (Figure 4)", SrcQsort,
       "qsort(any,any)"},
      {"qsort_swapped", "Figure 4 with recursive calls switched",
       SrcQsortSwapped, "qsort(any,any)"},
      {"insert", "binary tree insertion (introduction)", SrcInsert,
       "insert(any,any,any)"},
      {"AR", "arithmetic expressions (Figure 2)", SrcAR, "add(any,any)"},
      {"AR1", "arithmetic expressions (Figure 3)", SrcAR1,
       "add(any,any)"},
  };
  return Progs;
}

const std::vector<BenchmarkProgram> &gaia::table123Suite() {
  static const std::vector<BenchmarkProgram> Progs = {
      {"KA", "alpha-beta kalah player (Sterling & Shapiro)", SrcKA,
       "play(any,any)"},
      {"QU", "n-queens", SrcQU, "queens(any,any)"},
      {"PR", "PRESS symbolic equation solver (Sterling & Shapiro)",
       SrcPR, "test_press(any,any)"},
      {"PE", "SB-Prolog peephole optimizer (Debray)", SrcPE,
       "peephole_opt(any,any)"},
      {"CS", "cutting-stock configurations (Van Hentenryck)", SrcCS,
       "cutstock(any)"},
      {"DS", "disjunctive scheduling, generate and test", SrcDS,
       "schedule(any,any)"},
      {"PG", "W. Older's mathematical puzzle", SrcPG, "pg(any)"},
      {"RE", "Prolog tokenizer and reader (O'Keefe & Warren)", SrcRE,
       "read_term(any,any)"},
      {"BR", "browse (Gabriel suite)", SrcBR, "browse(any)"},
      {"PL", "blocks-world planner (Sterling & Shapiro)", SrcPL2,
       "test_plan(any)"},
  };
  return Progs;
}

const std::vector<BenchmarkProgram> &gaia::benchmarkSuite() {
  // Row order of Tables 4/5: AR AR1 CS DS BR KA LDS LPE LPL PE PG PL PR
  // QU RE. The L-variants reuse the source with list input patterns.
  static const std::vector<BenchmarkProgram> Progs = [] {
    std::vector<BenchmarkProgram> V;
    auto Find = [](const char *Key) -> const BenchmarkProgram & {
      for (const BenchmarkProgram &P : table123Suite())
        if (P.Key == Key)
          return P;
      for (const BenchmarkProgram &P : section2Examples())
        if (P.Key == Key)
          return P;
      // A missing key is a registry bug; returning a placeholder would
      // silently poison the whole suite.
      GAIA_UNREACHABLE(
          (std::string("benchmarkSuite: unknown benchmark key '") + Key +
           "'")
              .c_str());
    };
    V.push_back(Find("AR"));
    V.push_back(Find("AR1"));
    V.push_back(Find("CS"));
    V.push_back(Find("DS"));
    V.push_back(Find("BR"));
    V.push_back(Find("KA"));
    BenchmarkProgram LDS = Find("DS");
    LDS.Key = "LDS";
    LDS.GoalSpec = "schedule(list,any)";
    V.push_back(LDS);
    BenchmarkProgram LPE = Find("PE");
    LPE.Key = "LPE";
    LPE.GoalSpec = "peephole_opt(list,any)";
    V.push_back(LPE);
    BenchmarkProgram LPL = Find("PL");
    LPL.Key = "LPL";
    LPL.GoalSpec = "transform(list,list,any)";
    V.push_back(LPL);
    V.push_back(Find("PE"));
    V.push_back(Find("PG"));
    V.push_back(Find("PL"));
    V.push_back(Find("PR"));
    V.push_back(Find("QU"));
    V.push_back(Find("RE"));
    return V;
  }();
  return Progs;
}

const BenchmarkProgram *gaia::findBenchmark(const std::string &Key) {
  for (const BenchmarkProgram &P : benchmarkSuite())
    if (P.Key == Key)
      return &P;
  for (const BenchmarkProgram &P : table123Suite())
    if (P.Key == Key)
      return &P;
  for (const BenchmarkProgram &P : section2Examples())
    if (P.Key == Key)
      return &P;
  return nullptr;
}
