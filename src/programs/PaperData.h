//===- programs/PaperData.h - The paper's reported numbers ----------------==//
///
/// \file
/// The values reported in Tables 1-5 of the paper, used by the benchmark
/// harnesses and EXPERIMENTS.md to print paper-vs-measured comparisons.
/// Our benchmark sources are reconstructions, so absolute counts differ;
/// the comparison targets the *shape* (orderings, ratios, which program
/// is pathological).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROGRAMS_PAPERDATA_H
#define GAIA_PROGRAMS_PAPERDATA_H

#include <cstdint>
#include <string>

namespace gaia {

struct PaperTable1Row {
  const char *Key;
  uint32_t Procedures, Clauses, ProgramPoints, Goals, CallTree;
};

struct PaperTable2Row {
  const char *Key;
  uint32_t Tail, Local, Mutual, NonRec;
};

struct PaperTable3Row {
  const char *Key;
  double Cpu;
  uint32_t ProcIters, ClauseIters;
  double Cpu5, Cpu2;
};

/// Tables 4 and 5 share this shape (A/AI/AR and C/CI/CR columns).
struct PaperTagRow {
  const char *Key;
  uint32_t A, AI;
  double AR;
  uint32_t C, CI;
  double CR;
};

/// Row lookup (nullptr when the paper has no row for \p Key).
const PaperTable1Row *paperTable1(const std::string &Key);
const PaperTable2Row *paperTable2(const std::string &Key);
const PaperTable3Row *paperTable3(const std::string &Key);
const PaperTagRow *paperTable4(const std::string &Key); // output tags
const PaperTagRow *paperTable5(const std::string &Key); // input tags

} // namespace gaia

#endif // GAIA_PROGRAMS_PAPERDATA_H
