//===- core/Report.h - Table formatting for the evaluation ----------------==//
///
/// \file
/// Helpers that turn analysis results into the rows of the paper's
/// Tables 1-5: fixed-width formatting plus the tag tallies (type counts
/// with principal-functor counts in parentheses, improvement columns
/// A/AI/AR and C/CI/CR).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_CORE_REPORT_H
#define GAIA_CORE_REPORT_H

#include "core/Analyzer.h"

#include <array>
#include <string>

namespace gaia {

/// Tag tallies for one benchmark (one row of Table 4 or 5).
struct TagTally {
  /// Indexed by ArgTag; counts from the type-graph analysis.
  std::array<uint32_t, 7> Type = {};
  /// Counts from the principal-functor analysis.
  std::array<uint32_t, 7> PF = {};
  uint32_t A = 0;  ///< total arguments
  uint32_t AI = 0; ///< arguments improved by the type analysis
  uint32_t C = 0;  ///< total clauses
  uint32_t CI = 0; ///< clauses with at least one improved argument
  double ar() const { return A ? double(AI) / A : 0.0; }
  double cr() const { return C ? double(CI) / C : 0.0; }
};

/// Compares the two analyses of the same program (predicates matched by
/// name/arity). \p UseOutput selects Table 4 (output tags) vs Table 5
/// (input tags).
TagTally computeTagTally(const AnalysisResult &TypeRes,
                         const AnalysisResult &PFRes, bool UseOutput);

/// "NI CO LI ST DI HY | A AI AR | C CI CR" row, paper style: type count
/// with the nonzero PF count in parentheses.
std::string formatTagRow(const std::string &Name, const TagTally &T);
std::string tagTableHeader();

/// Table 1 row.
std::string formatSizeRow(const std::string &Name, const SizeMetrics &M);
std::string sizeTableHeader();

/// Table 2 row.
std::string formatRecursionRow(const std::string &Name,
                               const RecursionMetrics &M);
std::string recursionTableHeader();

/// Table 3 row: CPU time, iterations, plus capped times.
std::string formatPerfRow(const std::string &Name, double Seconds,
                          uint64_t ProcIters, uint64_t ClauseIters,
                          double SecondsCap5, double SecondsCap2);
std::string perfTableHeader();

/// Renders the query result (one grammar per argument).
std::string formatQueryResult(const AnalysisResult &R,
                              const std::string &GoalSpec);

/// The batch runtime's bit-identity contract, rendered to one string:
/// engine iteration counts, convergence, query output grammars, and the
/// full per-predicate summary with Table 4/5 tags. Two runs of the same
/// (program, goal, options) must produce equal fingerprints whether
/// they ran cold, over a frozen shared cache tier, or on any worker
/// count (bench/throughput.cpp gates on this; tests/AnalysisPoolTest.cpp
/// pins it). Deliberately excludes timings and cache hit counters,
/// which legitimately differ run to run.
std::string analysisFingerprint(const AnalysisResult &R);

/// analysisFingerprint minus the proc=/clause= work counters — the
/// identity contract of the SCC-scheduled parallel mode
/// (gaia/SccScheduler.h). Adopting a speculative pack skips the
/// iterations that would have computed it, so ProcedureIterations and
/// ClauseIterations legitimately differ across SolverThreads settings;
/// everything else — convergence, query grammars, pattern and tuple
/// counts, every summary grammar and tag — must stay bit-identical
/// (tests/SccSchedulerTest.cpp and bench/parallel_solve.cpp gate this).
std::string analysisSemanticFingerprint(const AnalysisResult &R);

} // namespace gaia

#endif // GAIA_CORE_REPORT_H
