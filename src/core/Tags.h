//===- core/Tags.h - WAM tag extraction (Tables 4 and 5) ------------------==//
///
/// \file
/// Section 9's accuracy measurement: from each argument's inferred type
/// the analyzer extracts the tag information a compiler would use for
/// indexing and specialized code generation:
///
///   NI  empty list        CO  cons cell         LI  list ([] or cons)
///   ST  structure          DI  atom/atomic       HY  structure or atom
///
/// An argument whose type admits Any (in particular an unbound
/// variable) carries no tag. A principal-functor analysis can only ever
/// produce NI/CO/ST/DI (single functor); the gain of type graphs comes
/// from the disjunctive and recursive tags LI and HY and from
/// disjunctions within ST/DI.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_CORE_TAGS_H
#define GAIA_CORE_TAGS_H

#include "typegraph/TypeGraph.h"

namespace gaia {

enum class ArgTag : uint8_t { None, NI, CO, LI, ST, DI, HY };

/// Extracts the tag of an argument whose success type is \p G.
ArgTag tagForGraph(const TypeGraph &G, SymbolTable &Syms);

/// Short column name as printed in Tables 4/5 ("NI", "CO", ...; None
/// prints as "--").
const char *tagName(ArgTag Tag);

/// True if \p TypeTag is strictly more informative than \p PFTag — the
/// "improvement" relation behind columns AI/AR/CI/CR.
bool tagImproves(ArgTag TypeTag, ArgTag PFTag);

} // namespace gaia

#endif // GAIA_CORE_TAGS_H
