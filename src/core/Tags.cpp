//===- core/Tags.cpp ---------------------------------------------------------=//

#include "core/Tags.h"

// (shallow classification: no graph operations needed)

using namespace gaia;

ArgTag gaia::tagForGraph(const TypeGraph &G, SymbolTable &Syms) {
  if (G.isBottomGraph())
    return ArgTag::None; // unreachable argument: nothing to report
  // Tags describe the WAM-level tag of the argument cell, so only the
  // principal functors matter (shallow classification).
  const TGNode &Root = G.node(G.root());
  bool AllNil = true, AllCons = true, AllNilOrCons = true;
  bool AllCompound = true, AllAtomic = true;
  for (NodeId S : Root.Succs) {
    const TGNode &N = G.node(S);
    if (N.Kind == NodeKind::Any)
      return ArgTag::None; // may be unbound or anything
    if (N.Kind == NodeKind::Int) {
      AllNil = AllCons = AllNilOrCons = AllCompound = false;
      continue;
    }
    bool IsNil = N.Fn == Syms.nilFunctor();
    bool IsCons = N.Fn == Syms.consFunctor();
    bool IsCompound = Syms.functorArity(N.Fn) > 0;
    AllNil &= IsNil;
    AllCons &= IsCons;
    AllNilOrCons &= IsNil || IsCons;
    AllCompound &= IsCompound;
    AllAtomic &= !IsCompound;
  }
  if (AllNil)
    return ArgTag::NI;
  if (AllCons)
    return ArgTag::CO;
  if (AllNilOrCons)
    return ArgTag::LI;
  if (AllCompound)
    return ArgTag::ST;
  if (AllAtomic)
    return ArgTag::DI;
  return ArgTag::HY;
}

const char *gaia::tagName(ArgTag Tag) {
  switch (Tag) {
  case ArgTag::None:
    return "--";
  case ArgTag::NI:
    return "NI";
  case ArgTag::CO:
    return "CO";
  case ArgTag::LI:
    return "LI";
  case ArgTag::ST:
    return "ST";
  case ArgTag::DI:
    return "DI";
  case ArgTag::HY:
    return "HY";
  }
  return "??";
}

bool gaia::tagImproves(ArgTag TypeTag, ArgTag PFTag) {
  if (TypeTag == PFTag)
    return false;
  switch (PFTag) {
  case ArgTag::None:
    return TypeTag != ArgTag::None;
  case ArgTag::HY:
    return TypeTag != ArgTag::None && TypeTag != ArgTag::HY;
  case ArgTag::LI:
    return TypeTag == ArgTag::CO || TypeTag == ArgTag::NI;
  case ArgTag::ST:
    return TypeTag == ArgTag::CO;
  case ArgTag::DI:
    return TypeTag == ArgTag::NI;
  case ArgTag::NI:
  case ArgTag::CO:
    return false; // already maximal
  }
  return false;
}
