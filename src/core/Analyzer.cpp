//===- core/Analyzer.cpp -----------------------------------------------------=//

#include "core/Analyzer.h"

#include "domains/PFLeaf.h"
#include "domains/TypeLeaf.h"
#include "gaia/SccScheduler.h"
#include "runtime/SharedCache.h"
#include "typegraph/GrammarParser.h"

using namespace gaia;

namespace {

/// Builds the [] | cons(Int, T) graph for intlist specs.
static TypeGraph makeIntList(SymbolTable &Syms) {
  TypeGraph G;
  NodeId Nil = G.addFunc(Syms.nilFunctor(), {});
  NodeId HeadLeaf = G.addInt();
  NodeId Head = G.addOr({HeadLeaf});
  NodeId Root = G.addOr({});
  NodeId Cons = G.addFunc(Syms.consFunctor(), {Head, Root});
  G.node(Root).Succs = {Nil, Cons};
  G.setRoot(Root);
  G.sortOrSuccessors(Syms);
  return G;
}

template <typename Leaf>
PatSub<Leaf> makeInputSub(const typename Leaf::Context &C,
                          const InputPattern &P, SymbolTable &Syms) {
  PatSub<Leaf> S = PatSub<Leaf>::top(C, P.arity());
  for (uint32_t I = 0; I != P.arity(); ++I) {
    switch (P.Args[I]) {
    case ArgSpec::Any:
      break;
    case ArgSpec::List:
      S.refineSlot(C, I, Leaf::listValue(C));
      break;
    case ArgSpec::Int:
      S.refineSlot(C, I, Leaf::intValue(C));
      break;
    case ArgSpec::IntList:
      if constexpr (std::is_same_v<Leaf, TypeLeaf>)
        S.refineSlot(C, I, makeIntList(Syms));
      break;
    }
  }
  return S;
}

template <typename Leaf>
void runWithLeaf(AnalysisResult &R, const typename Leaf::Context &C,
                 SymbolTable &Syms, const Program &Prog,
                 const NProgram &NProg, const InputPattern &Pattern,
                 const EngineOptions &EngOpts,
                 EngineHints<Leaf> *Hints = nullptr) {
  FunctorId Entry = Syms.functor(Pattern.PredName, Pattern.arity());
  if (!Prog.defines(Entry)) {
    R.Error = "goal predicate " + Syms.functorString(Entry) +
              " is not defined in the program";
    R.Fail = FailKind::BadQuery;
    return;
  }

  Engine<Leaf> Eng(NProg, C, EngOpts);
  if (Hints)
    Eng.setHints(Hints);
  PatSub<Leaf> In = makeInputSub<Leaf>(C, Pattern, Syms);
  PatSub<Leaf> Out = Eng.solve(Entry, In);
  R.Stats = Eng.stats();

  R.QuerySucceeds = !Out.isBottom();
  for (uint32_t I = 0; I != Pattern.arity(); ++I)
    R.QueryOutput.push_back(
        Out.isBottom() ? TypeGraph::makeBottom()
                       : Leaf::toGraph(C, Out.slotValue(C, I)));

  // Per-predicate summaries: lub over all memo tuples.
  auto Tuples = Eng.tuples();
  for (const Procedure &P : Prog.procedures()) {
    PredicateSummary S;
    S.Name = Syms.functorName(P.Fn);
    S.Arity = Syms.functorArity(P.Fn);
    S.NumClauses = static_cast<uint32_t>(P.Clauses.size());
    PatSub<Leaf> InLub = PatSub<Leaf>::bottom(S.Arity);
    PatSub<Leaf> OutLub = PatSub<Leaf>::bottom(S.Arity);
    for (const auto &T : Tuples) {
      if (T.Pred != P.Fn)
        continue;
      ++S.NumTuples;
      InLub = PatSub<Leaf>::join(C, InLub, T.In);
      OutLub = PatSub<Leaf>::join(C, OutLub, T.Out);
    }
    for (uint32_t I = 0; I != S.Arity; ++I) {
      ArgInfo AIn, AOut;
      AIn.Graph = InLub.isBottom()
                      ? TypeGraph::makeBottom()
                      : Leaf::toGraph(C, InLub.slotValue(C, I));
      AOut.Graph = OutLub.isBottom()
                       ? TypeGraph::makeBottom()
                       : Leaf::toGraph(C, OutLub.slotValue(C, I));
      AIn.Tag = tagForGraph(AIn.Graph, Syms);
      AOut.Tag = tagForGraph(AOut.Graph, Syms);
      S.Input.push_back(std::move(AIn));
      S.Output.push_back(std::move(AOut));
    }
    R.Summaries.push_back(std::move(S));
  }
  R.Ok = true;
}

/// The common driver behind analyzeProgram and analyzeProgramWarm.
/// \p SymsPtr is the table the run interns into (owning for cold runs,
/// a snapshot copy for shared-tier runs, non-owning alias for warmup).
/// \p ExternalOps, when set, is an accumulating cache owned by the
/// caller (warmup); otherwise a per-run cache is constructed — over
/// \p Shared's frozen tier when that is non-null.
AnalysisResult analyzeImpl(std::shared_ptr<SymbolTable> SymsPtr,
                           OpCache *ExternalOps, const SharedCache *Shared,
                           const std::string &Source,
                           const std::string &GoalSpec,
                           const AnalyzerOptions &Opts) {
  AnalysisResult R;
  R.Syms = std::move(SymsPtr);
  SymbolTable &Syms = *R.Syms;

  std::string Err;
  std::optional<InputPattern> Pattern = parseInputPattern(GoalSpec, &Err);
  if (!Pattern) {
    R.Error = Err;
    R.Fail = FailKind::BadQuery;
    return R;
  }
  uint32_t ErrLine = 0;
  std::optional<Program> Prog = Program::parse(Source, Syms, &Err, &ErrLine);
  if (!Prog) {
    R.Error = Err;
    R.Fail = FailKind::ParseError;
    R.FailLine = ErrLine;
    return R;
  }
  NProgram NProg = NProgram::fromProgram(*Prog, Syms);
  for (FunctorId Fn : NProg.unknownPredicates())
    R.UnknownPredicates.push_back(Syms.functorString(Fn));

  FunctorId Entry = Syms.functor(Pattern->PredName, Pattern->arity());
  // One call graph serves three clients: the Table 1 metrics, the
  // engine's memo-table reserve, and the parallel scheduler's SCC
  // condensation.
  CallGraph CG(*Prog, Syms);
  R.Sizes = computeSizeMetrics(*Prog, NProg, Syms, Entry, CG);
  R.Recursion = classifyRecursion(*Prog, Syms);
  std::vector<FunctorId> Cone = CG.reachableFrom(Entry);

  // The job's combined stop condition: the deadline clock starts here
  // (analysis proper — parse errors above return before arming), the
  // token comes from the caller. The signal lives on this frame and is
  // handed down by raw pointer; a tripped poll unwinds back to the
  // handler below with every per-job structure (engine, private op
  // cache, scratch) destroyed on the way — the shared tier is frozen,
  // so nothing the job touched survives.
  CancelSignal Signal;
  if (Opts.DeadlineMs != 0)
    Signal.armDeadline(CancelSignal::Clock::now() +
                       std::chrono::milliseconds(Opts.DeadlineMs));
  if (Opts.Cancel)
    Signal.armToken(Opts.Cancel);

  EngineOptions EngOpts;
  EngOpts.RefineArithComparisons = Opts.RefineArithComparisons;
  EngOpts.MaxInputPatterns = Opts.MaxInputPatterns;
  EngOpts.MaxFixpointRounds = Opts.MaxFixpointRounds;
  if (Signal.armed())
    EngOpts.Cancel = &Signal;
  if (Opts.ReserveFromCallCone && !Cone.empty()) {
    // The cone predicts distinct predicates, not entries; polyvariance
    // adds input patterns per predicate, so leave headroom. A wrong
    // estimate only costs memory or a rehash, never a result.
    EngOpts.ExpectedEntries = Cone.size() * 2 + 16;
  }
  try {
    if (Opts.Domain == DomainKind::TypeGraphs) {
      NormalizeOptions Norm;
      Norm.OrCap = Opts.OrCap;
      // Inner poll points: one normalization of a blown-up graph can
      // otherwise burn a whole deadline between two engine-round
      // checkpoints. The signal outlives the per-run op cache (both live
      // on this frame), so the raw pointer below cannot dangle.
      Norm.Cancel = EngOpts.Cancel;
      WideningOptions Widen;
      Widen.Norm = Norm;
      Widen.Mode = Opts.Widening;
      Widen.DepthK = Opts.DepthK;
      std::vector<TypeGraph> Database;
      for (const std::string &Grammar : Opts.TypeDatabase) {
        std::optional<TypeGraph> G = parseGrammar(Grammar, Syms, &Err);
        if (!G) {
          R.Error = "type database entry: " + Err;
          R.Fail = FailKind::BadQuery;
          return R;
        }
        Database.push_back(std::move(*G));
      }
      if (!Database.empty())
        Widen.Database = &Database;
      Widen.Cancel = EngOpts.Cancel;
      // The hash-consing interner plus op-cache layer; one per analysis
      // (layered over the shared tier's frozen maps when one is given),
      // shared by the engine and every leaf operation through the context.
      std::optional<OpCache> Owned;
      if (!ExternalOps && Opts.UseOpCache)
        Owned.emplace(Syms, Norm, Shared ? Shared->ops() : nullptr);
      OpCache *Ops = ExternalOps ? ExternalOps : (Owned ? &*Owned : nullptr);
      TypeLeaf::Context C{Syms, Norm, Widen, &R.WStats, Ops,
                          std::make_shared<TypeLeaf::Constants>(), nullptr};
      if (Shared) {
        // Per-job copy of the pre-primed constants (their intern caches
        // carry the frozen tier's epoch), and the keep-alive anchor for
        // everything the frozen tier owns.
        C.Consts =
            std::make_shared<TypeLeaf::Constants>(Shared->leafConstants());
        C.Shared = Opts.Shared;
      }
      // SCC-scheduled parallel mode: only for per-run caches (a warm
      // external cache is mutated by its owner between calls, which the
      // workers' frozen-tier layering cannot see) and defined entries.
      // Constructed after the Context so its Env copies the pre-primed
      // constants; destroyed (joining its workers) on any unwind.
      std::optional<SccSpeculation> Spec;
      if (Opts.SolverThreads > 1 && Owned && Prog->defines(Entry)) {
        SccSpeculation::Env WEnv;
        WEnv.Norm = Norm;
        WEnv.Norm.Cancel = nullptr; // workers arm their own signals
        WEnv.Widen = Widen;
        WEnv.Widen.Cancel = nullptr;
        WEnv.Widen.Database = nullptr; // workers re-point at their copies
        WEnv.Database = Database;
        WEnv.ConstProto = *C.Consts;
        WEnv.SharedOps = Shared ? Shared->ops() : nullptr;
        WEnv.SharedAnchor = Opts.Shared;
        SccSolveOptions SOpts;
        SOpts.SolverThreads = Opts.SolverThreads;
        SOpts.MaxConeDepth = Opts.SolverConeDepth;
        Spec.emplace(NProg, CG, Syms, Entry, EngOpts, C, *Owned, Syms,
                     std::move(WEnv), SOpts);
      }
      runWithLeaf<TypeLeaf>(R, C, Syms, *Prog, NProg, *Pattern, EngOpts,
                            Spec ? &*Spec : nullptr);
      if (Spec) {
        SccSolveStats SS = Spec->finish();
        R.Stats.SccCount = SS.SccCount;
        R.Stats.SccParallelism = SS.SccParallelism;
        R.Stats.SccFallbackSolves = SS.SccFallbackSolves;
      }
      if (Ops) {
        R.Stats.OpCacheHits = Ops->stats().Hits;
        R.Stats.OpCacheMisses = Ops->stats().Misses;
        R.Stats.OpCacheSharedHits = Ops->stats().SharedHits;
        R.Stats.InternSharedHits = Ops->interner().stats().SharedHits;
        R.Stats.InternedGraphs = Ops->interner().size();
        R.Stats.PfSetHits = Ops->pfStats().Hits;
        R.Stats.PfSetMisses = Ops->pfStats().Misses;
        R.Stats.PfSetSharedHits = Ops->pfStats().SharedHits;
        // Harvest the hot delta entries before the per-run cache dies —
        // only for owned caches: a warmup's external cache accumulates
        // across calls and is frozen wholesale instead.
        if (Opts.CollectDelta && Owned)
          R.Delta = Owned->harvestDelta(Opts.DeltaMinHits);
      }
    } else {
      PFLeaf::Context C{Syms};
      runWithLeaf<PFLeaf>(R, C, Syms, *Prog, NProg, *Pattern, EngOpts);
    }
  } catch (const CancelledError &CE) {
    // Cooperative cancellation unwound the engine mid-fixpoint. All
    // per-job state died on the unwind (including the private delta
    // cache — the harvest above was skipped), so the only residue is
    // this structured result.
    R.Ok = false;
    R.Fail = CE.DeadlineExpired ? FailKind::Deadline : FailKind::Cancelled;
    R.Error = CE.DeadlineExpired
                  ? "deadline of " + std::to_string(Opts.DeadlineMs) +
                        " ms expired mid-analysis"
                  : "cancelled by caller";
    R.Converged = false;
    R.QuerySucceeds = false;
    R.QueryOutput.clear();
    R.Summaries.clear();
    R.Delta = nullptr;
    return R;
  }
  R.Converged = R.Stats.FixpointAborts == 0;
  return R;
}

} // namespace

const char *gaia::failKindName(FailKind K) {
  switch (K) {
  case FailKind::None:
    return "none";
  case FailKind::ParseError:
    return "parse-error";
  case FailKind::BadQuery:
    return "bad-query";
  case FailKind::Deadline:
    return "deadline";
  case FailKind::Cancelled:
    return "cancelled";
  case FailKind::Exception:
    return "exception";
  case FailKind::Rejected:
    return "rejected";
  }
  return "unknown";
}

AnalysisResult gaia::analyzeProgram(const std::string &Source,
                                    const std::string &GoalSpec,
                                    const AnalyzerOptions &Opts) {
  // A shared tier is consulted only when every knob that shapes cached
  // results matches the tier's warmup configuration; otherwise the run
  // is simply cold (correctness never depends on the cache).
  const SharedCache *Shared = nullptr;
  if (Opts.Shared && Opts.Domain == DomainKind::TypeGraphs &&
      Opts.UseOpCache && Opts.Shared->compatibleWith(Opts))
    Shared = Opts.Shared.get();
  std::shared_ptr<SymbolTable> Syms =
      Shared ? std::make_shared<SymbolTable>(Shared->symbols())
             : std::make_shared<SymbolTable>();
  return analyzeImpl(std::move(Syms), /*ExternalOps=*/nullptr, Shared,
                     Source, GoalSpec, Opts);
}

AnalysisResult gaia::analyzeProgramWarm(SymbolTable &Syms, OpCache &Ops,
                                        const std::string &Source,
                                        const std::string &GoalSpec,
                                        const AnalyzerOptions &Opts) {
  if (Opts.Domain != DomainKind::TypeGraphs) {
    AnalysisResult R;
    R.Error = "analyzeProgramWarm requires the type-graph domain";
    R.Fail = FailKind::BadQuery;
    return R;
  }
  // Non-owning alias: the caller owns the table across warmup calls.
  std::shared_ptr<SymbolTable> Alias(std::shared_ptr<void>(), &Syms);
  return analyzeImpl(std::move(Alias), &Ops, /*Shared=*/nullptr, Source,
                     GoalSpec, Opts);
}
