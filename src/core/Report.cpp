//===- core/Report.cpp -------------------------------------------------------=//

#include "core/Report.h"

#include "typegraph/GrammarPrinter.h"

#include <cstdio>

using namespace gaia;

TagTally gaia::computeTagTally(const AnalysisResult &TypeRes,
                               const AnalysisResult &PFRes,
                               bool UseOutput) {
  TagTally T;
  for (const PredicateSummary &S : TypeRes.Summaries) {
    // Match the PF summary by name/arity (the two runs use separate
    // symbol tables).
    const PredicateSummary *PS = nullptr;
    for (const PredicateSummary &Cand : PFRes.Summaries)
      if (Cand.Name == S.Name && Cand.Arity == S.Arity) {
        PS = &Cand;
        break;
      }
    bool AnyImproved = false;
    for (uint32_t I = 0; I != S.Arity; ++I) {
      const std::vector<ArgInfo> &Args = UseOutput ? S.Output : S.Input;
      ArgTag TypeTag = Args[I].Tag;
      ArgTag PFTag = ArgTag::None;
      if (PS) {
        const std::vector<ArgInfo> &PFArgs =
            UseOutput ? PS->Output : PS->Input;
        PFTag = PFArgs[I].Tag;
      }
      ++T.A;
      T.Type[static_cast<size_t>(TypeTag)] += 1;
      T.PF[static_cast<size_t>(PFTag)] += 1;
      if (tagImproves(TypeTag, PFTag)) {
        ++T.AI;
        AnyImproved = true;
      }
    }
    T.C += S.NumClauses;
    if (AnyImproved)
      T.CI += S.NumClauses;
  }
  return T;
}

static std::string tagCell(uint32_t TypeCount, uint32_t PFCount) {
  char Buf[32];
  if (PFCount != 0)
    std::snprintf(Buf, sizeof(Buf), "%3u(%u)", TypeCount, PFCount);
  else
    std::snprintf(Buf, sizeof(Buf), "%3u   ", TypeCount);
  return Buf;
}

std::string gaia::tagTableHeader() {
  return "Program       NI      CO      LI      ST      DI      HY     "
         "   A   AI    AR      C   CI    CR";
}

std::string gaia::formatTagRow(const std::string &Name, const TagTally &T) {
  std::string Row;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%-10s", Name.c_str());
  Row += Buf;
  for (ArgTag Tag : {ArgTag::NI, ArgTag::CO, ArgTag::LI, ArgTag::ST,
                     ArgTag::DI, ArgTag::HY}) {
    Row += "  ";
    Row += tagCell(T.Type[static_cast<size_t>(Tag)],
                   T.PF[static_cast<size_t>(Tag)]);
  }
  std::snprintf(Buf, sizeof(Buf), "  %4u %4u  %.2f   %4u %4u  %.2f", T.A,
                T.AI, T.ar(), T.C, T.CI, T.cr());
  Row += Buf;
  return Row;
}

std::string gaia::sizeTableHeader() {
  return "Program     Procedures  Clauses  ProgramPoints  Goals  "
         "StaticCallTree";
}

std::string gaia::formatSizeRow(const std::string &Name,
                                const SizeMetrics &M) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%-10s  %10u  %7u  %13llu  %5u  %14llu",
                Name.c_str(), M.NumProcedures, M.NumClauses,
                static_cast<unsigned long long>(M.NumProgramPoints),
                M.NumGoals,
                static_cast<unsigned long long>(M.StaticCallTreeSize));
  return Buf;
}

std::string gaia::recursionTableHeader() {
  return "Program     Tail  Locally  Mutually  NonRecursive";
}

std::string gaia::formatRecursionRow(const std::string &Name,
                                     const RecursionMetrics &M) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%-10s  %4u  %7u  %8u  %12u",
                Name.c_str(), M.TailRecursive, M.LocallyRecursive,
                M.MutuallyRecursive, M.NonRecursive);
  return Buf;
}

std::string gaia::perfTableHeader() {
  return "Program     CPU(s)    ProcIters  ClauseIters   CPU(5)    "
         "CPU(2)";
}

std::string gaia::formatPerfRow(const std::string &Name, double Seconds,
                                uint64_t ProcIters, uint64_t ClauseIters,
                                double SecondsCap5, double SecondsCap2) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "%-10s  %7.3f  %11llu  %11llu  %7.3f  %7.3f",
                Name.c_str(), Seconds,
                static_cast<unsigned long long>(ProcIters),
                static_cast<unsigned long long>(ClauseIters), SecondsCap5,
                SecondsCap2);
  return Buf;
}

std::string gaia::formatQueryResult(const AnalysisResult &R,
                                    const std::string &GoalSpec) {
  std::string Out = "goal: " + GoalSpec + "\n";
  if (!R.Ok) {
    Out += "error: " + R.Error + "\n";
    return Out;
  }
  if (!R.QuerySucceeds) {
    Out += "the goal cannot succeed (bottom)\n";
    return Out;
  }
  for (size_t I = 0; I != R.QueryOutput.size(); ++I) {
    Out += "arg " + std::to_string(I + 1) + ": " +
           printGrammarInline(R.QueryOutput[I], *R.Syms) + "\n";
  }
  return Out;
}

/// Shared body of the two fingerprints; \p WithWorkCounters selects
/// whether the proc=/clause= iteration counts join the header line.
static std::string fingerprintBody(const AnalysisResult &R,
                                   bool WithWorkCounters) {
  std::string Out;
  Out += "ok=" + std::to_string(R.Ok) +
         " conv=" + std::to_string(R.Converged) +
         " succeeds=" + std::to_string(R.QuerySucceeds);
  if (WithWorkCounters)
    Out += " proc=" + std::to_string(R.Stats.ProcedureIterations) +
           " clause=" + std::to_string(R.Stats.ClauseIterations);
  Out += " patterns=" + std::to_string(R.Stats.InputPatterns) + "\n";
  for (const TypeGraph &G : R.QueryOutput)
    Out += "out: " + printGrammarInline(G, *R.Syms) + "\n";
  for (const PredicateSummary &S : R.Summaries) {
    Out += S.Name + "/" + std::to_string(S.Arity) +
           " tuples=" + std::to_string(S.NumTuples) + "\n";
    for (uint32_t I = 0; I != S.Arity; ++I)
      Out += "  in[" + std::to_string(I) + "] " + tagName(S.Input[I].Tag) +
             " " + printGrammarInline(S.Input[I].Graph, *R.Syms) +
             " | out[" + std::to_string(I) + "] " +
             tagName(S.Output[I].Tag) + " " +
             printGrammarInline(S.Output[I].Graph, *R.Syms) + "\n";
  }
  return Out;
}

std::string gaia::analysisFingerprint(const AnalysisResult &R) {
  return fingerprintBody(R, /*WithWorkCounters=*/true);
}

std::string gaia::analysisSemanticFingerprint(const AnalysisResult &R) {
  return fingerprintBody(R, /*WithWorkCounters=*/false);
}
