//===- core/Analyzer.h - Top-level type analysis facade -------------------==//
///
/// \file
/// The public entry point of the library: GAIA(Pat(Type)) as described
/// in Section 3, plus the principal-functor baseline GAIA(Pat(PF)) used
/// by the accuracy evaluation. Given a Prolog source and a goal
/// specification, analyzeProgram returns the query's output pattern,
/// per-predicate input/output summaries (with extracted tags), engine
/// statistics and the Table 1/2 program metrics.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_CORE_ANALYZER_H
#define GAIA_CORE_ANALYZER_H

#include "core/InputPattern.h"
#include "core/Tags.h"
#include "gaia/Engine.h"
#include "prolog/Metrics.h"
#include "support/Cancellation.h"
#include "typegraph/Widening.h"

#include <memory>
#include <string>

namespace gaia {

class OpCache;      // typegraph/OpCache.h
class SharedCache;  // runtime/SharedCache.h
struct CacheDelta;  // typegraph/CacheDelta.h

/// Which abstract domain to run.
enum class DomainKind : uint8_t {
  TypeGraphs,        ///< the paper's system Pat(Type)
  PrincipalFunctors, ///< the baseline Pat(PF) of Tables 4/5
};

/// Structured failure taxonomy for AnalysisResult (and, through it, the
/// serving runtime's JobOutcome). Every Ok=false result carries exactly
/// one of these so callers can route failures — retry ladders treat a
/// Deadline very differently from a ParseError.
enum class FailKind : uint8_t {
  None,       ///< Ok result; no failure
  ParseError, ///< the program failed Parser::hadError() (see FailLine)
  BadQuery,   ///< malformed goal spec / type database / undefined goal
  Deadline,   ///< AnalyzerOptions::DeadlineMs expired mid-analysis
  Cancelled,  ///< AnalyzerOptions::Cancel token tripped mid-analysis
  Exception,  ///< a C++ exception escaped the analysis (containment path)
  Rejected,   ///< the serving layer refused or shed the job before it ran
              ///< (admission policy, overload shedding, or drain) — the
              ///< analysis itself was never attempted
};

/// Printable name for logs and JSON snapshots.
const char *failKindName(FailKind K);

struct AnalyzerOptions {
  DomainKind Domain = DomainKind::TypeGraphs;
  /// Or-degree cap (0 = unbounded; 5 and 2 reproduce Table 3's capped
  /// configurations).
  uint32_t OrCap = 0;
  /// Forwarded to EngineOptions::RefineArithComparisons.
  bool RefineArithComparisons = false;
  /// Forwarded to EngineOptions::MaxInputPatterns (0 = unbounded, the
  /// paper's measured configuration).
  uint32_t MaxInputPatterns = 8;
  /// Forwarded to EngineOptions::MaxFixpointRounds (defensive budget on
  /// the fixpoint loops; exhausting it degrades the offending entry to
  /// top and clears AnalysisResult::Converged instead of hanging or
  /// silently returning a dirty result).
  uint32_t MaxFixpointRounds = 10000;
  /// Use the hash-consing graph interner and operation cache (on by
  /// default; off reproduces the uncached pre-cache behavior for A/B
  /// measurements).
  bool UseOpCache = true;
  /// Widening strategy: the paper's operator, or the depth-k truncation
  /// baseline it is measured against (bench/widening_ablation).
  WidenMode Widening = WidenMode::Paper;
  /// Truncation depth for WidenMode::DepthK.
  uint32_t DepthK = 4;
  /// Optional type database for the widening (the paper's conclusion
  /// extension): tree grammars in the notation of GrammarParser, e.g.
  /// "T ::= [] | cons(Any,T).". Parsed once per analysis.
  std::vector<std::string> TypeDatabase;
  /// Optional frozen shared cache tier (runtime/SharedCache.h). When set
  /// and compatible with this configuration, the run seeds its symbol
  /// table from the tier's snapshot and lays its op cache over the
  /// tier's frozen maps — amortizing graph work across requests. An
  /// incompatible or null tier is simply ignored; results are identical
  /// either way (the tier is exact), only timings change.
  std::shared_ptr<const SharedCache> Shared;
  /// Harvest the hot part of the job's private delta cache into
  /// AnalysisResult::Delta after the run (runtime/TierLifecycle.h feeds
  /// those into SharedCache::promoteAndRefreeze). Requires the type-graph
  /// domain with UseOpCache; ignored otherwise. Collection never changes
  /// the analysis result — only what survives the job.
  bool CollectDelta = false;
  /// Minimum per-entry hit count for the harvest (entries resolved fewer
  /// times are left to die with the worker cache).
  uint32_t DeltaMinHits = 2;
  /// Wall-clock budget for one analysis in milliseconds (0 = none). The
  /// clock starts when analyzeProgram enters; the deadline is polled at
  /// the engine's per-round checkpoints and in the widening transform
  /// loop, so an expired job unwinds to a structured result
  /// (Ok = false, Fail = FailKind::Deadline) instead of holding its
  /// worker until MaxFixpointRounds runs dry.
  uint32_t DeadlineMs = 0;
  /// Optional cancellation token shared with the caller: cancel() from
  /// any thread makes the job unwind at its next poll with
  /// Fail = FailKind::Cancelled. One token may cover a whole wave of
  /// jobs.
  std::shared_ptr<const CancelToken> Cancel;
  /// Solver threads for the SCC-scheduled parallel mode
  /// (gaia/SccScheduler.h): 1 (the default) runs the classic sequential
  /// solve; N > 1 runs it too — the sequential engine stays the
  /// bit-identity oracle — plus N-1 speculative workers solving the
  /// entry's call-cone components bottom-up and feeding the parent
  /// exact cache deltas and adoptable memo packs. Output grammars, tag
  /// tables and the semantic fingerprint are identical at any setting;
  /// only wall-clock and the work counters (proc=/clause=) change.
  /// Effective only for DomainKind::TypeGraphs with UseOpCache on a
  /// per-run cache (the warm/external-cache path ignores it).
  uint32_t SolverThreads = 1;
  /// Test hook for the parallel mode's escape hatch: speculate only
  /// predicates within this many call edges of the entry, so demands
  /// beyond the truncated cone exercise the sequential fallback
  /// (EngineStats::SccFallbackSolves). ~0u = whole cone (production).
  uint32_t SolverConeDepth = ~0u;
  /// Pre-size the engine's memo structures from the entry's static call
  /// cone (EngineOptions::ExpectedEntries). Off reproduces the grow-by-
  /// rehash behavior for the allocation A/B in bench/parallel_solve.
  bool ReserveFromCallCone = true;
};

/// One analyzed argument position.
struct ArgInfo {
  TypeGraph Graph; ///< bottom when the argument was never reached
  ArgTag Tag = ArgTag::None;
};

/// Per-predicate summary: the lub over all memo-table tuples ("a
/// procedure is associated with a single version", Section 9).
struct PredicateSummary {
  std::string Name;
  uint32_t Arity = 0;
  uint32_t NumClauses = 0;
  uint32_t NumTuples = 0; ///< polyvariant versions; 0 = unreached
  std::vector<ArgInfo> Input;
  std::vector<ArgInfo> Output;
};

struct AnalysisResult {
  bool Ok = false;
  std::string Error;
  /// Failure classification; FailKind::None iff Ok (or the legacy
  /// pre-taxonomy error paths of warm-up helpers).
  FailKind Fail = FailKind::None;
  /// Source line for FailKind::ParseError (0 = unknown).
  uint32_t FailLine = 0;
  /// True when this result was produced by the resilience ladder's
  /// widen-to-top floor rather than the analysis proper: sound (every
  /// output is Any) but maximally imprecise. Ok is true — the caller
  /// got a usable answer — but fingerprint-level consumers must not
  /// treat it as the analysis' normal output.
  bool Degraded = false;
  /// False if a fixpoint loop exhausted its round budget and the engine
  /// degraded the offending entries to top (see
  /// EngineStats::FixpointAborts). The result is still a sound
  /// over-approximation, but it is not the analysis' normal fixpoint;
  /// callers that need full precision must treat this as a failure.
  bool Converged = true;

  /// Symbol table the graphs refer to (kept alive for printing and for
  /// parsing expected grammars in tests).
  std::shared_ptr<SymbolTable> Syms;

  /// Whether the query can succeed at all and its output types.
  bool QuerySucceeds = false;
  std::vector<TypeGraph> QueryOutput;

  std::vector<PredicateSummary> Summaries;
  std::vector<std::string> UnknownPredicates;

  EngineStats Stats;
  WideningStats WStats;
  SizeMetrics Sizes;
  RecursionMetrics Recursion;

  /// Hot delta-cache entries harvested after the run (null unless
  /// AnalyzerOptions::CollectDelta was set and something cleared the
  /// hit threshold). Self-contained: carries graphs by value plus its
  /// own symbol-table snapshot, so it outlives the job's caches.
  std::shared_ptr<const CacheDelta> Delta;
};

/// Runs the analysis of \p Source for the goal \p GoalSpec (e.g.
/// "nreverse(any,any)").
AnalysisResult analyzeProgram(const std::string &Source,
                              const std::string &GoalSpec,
                              const AnalyzerOptions &Opts = {});

/// Warmup entry point for the batch runtime (runtime/SharedCache.h):
/// like analyzeProgram, but runs against an externally owned symbol
/// table and operation cache so consecutive calls accumulate one cache
/// population that SharedCache::build can freeze. \p Ops must have been
/// constructed over \p Syms with the NormalizeOptions this configuration
/// implies (OrCap from \p Opts). Requires DomainKind::TypeGraphs;
/// Opts.UseOpCache and Opts.Shared are ignored (the external cache is
/// always used). The returned result's Syms pointer aliases \p Syms and
/// does not own it.
AnalysisResult analyzeProgramWarm(SymbolTable &Syms, OpCache &Ops,
                                  const std::string &Source,
                                  const std::string &GoalSpec,
                                  const AnalyzerOptions &Opts = {});

} // namespace gaia

#endif // GAIA_CORE_ANALYZER_H
