//===- core/InputPattern.h - Query input pattern specs --------------------==//
///
/// \file
/// Parses the textual goal specifications used throughout the paper's
/// evaluation: "nreverse(any,any)", "qsort(list,any)", "inc(int,any)".
/// An input pattern names the top-level predicate and gives type
/// information for each argument (Section 2: "The input pattern gives
/// information on how the program is used").
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_CORE_INPUTPATTERN_H
#define GAIA_CORE_INPUTPATTERN_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gaia {

/// Argument type in a goal spec.
enum class ArgSpec : uint8_t {
  Any,     ///< all terms
  List,    ///< [] | cons(Any, list)
  Int,     ///< integers
  IntList, ///< [] | cons(Int, intlist)
};

/// A parsed goal specification.
struct InputPattern {
  std::string PredName;
  std::vector<ArgSpec> Args;

  uint32_t arity() const { return static_cast<uint32_t>(Args.size()); }
};

/// Parses "pred(any,list,...)" or a bare "pred" (arity 0). Returns
/// std::nullopt with a message in \p Err on malformed input.
std::optional<InputPattern> parseInputPattern(const std::string &Spec,
                                              std::string *Err = nullptr);

} // namespace gaia

#endif // GAIA_CORE_INPUTPATTERN_H
