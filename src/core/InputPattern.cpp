//===- core/InputPattern.cpp ------------------------------------------------=//

#include "core/InputPattern.h"

#include <cctype>

using namespace gaia;

std::optional<InputPattern> gaia::parseInputPattern(const std::string &Spec,
                                                    std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<InputPattern> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };
  InputPattern P;
  size_t Pos = 0;
  auto SkipSpace = [&] {
    while (Pos < Spec.size() &&
           std::isspace(static_cast<unsigned char>(Spec[Pos])))
      ++Pos;
  };
  SkipSpace();
  size_t Start = Pos;
  while (Pos < Spec.size() &&
         (std::isalnum(static_cast<unsigned char>(Spec[Pos])) ||
          Spec[Pos] == '_'))
    ++Pos;
  if (Pos == Start)
    return Fail("expected predicate name in goal spec '" + Spec + "'");
  P.PredName = Spec.substr(Start, Pos - Start);
  SkipSpace();
  if (Pos >= Spec.size())
    return P; // arity 0
  if (Spec[Pos] != '(')
    return Fail("expected '(' in goal spec '" + Spec + "'");
  ++Pos;
  while (true) {
    SkipSpace();
    size_t WordStart = Pos;
    while (Pos < Spec.size() &&
           std::isalnum(static_cast<unsigned char>(Spec[Pos])))
      ++Pos;
    std::string Word = Spec.substr(WordStart, Pos - WordStart);
    if (Word == "any") {
      P.Args.push_back(ArgSpec::Any);
    } else if (Word == "list") {
      P.Args.push_back(ArgSpec::List);
    } else if (Word == "int") {
      P.Args.push_back(ArgSpec::Int);
    } else if (Word == "intlist") {
      P.Args.push_back(ArgSpec::IntList);
    } else {
      return Fail("unknown argument spec '" + Word + "' in '" + Spec +
                  "'");
    }
    SkipSpace();
    if (Pos < Spec.size() && Spec[Pos] == ',') {
      ++Pos;
      continue;
    }
    break;
  }
  if (Pos >= Spec.size() || Spec[Pos] != ')')
    return Fail("expected ')' in goal spec '" + Spec + "'");
  return P;
}
