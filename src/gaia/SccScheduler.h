//===- gaia/SccScheduler.h - SCC-scheduled intra-analysis parallelism -----==//
///
/// \file
/// Multi-threaded solving inside a *single* analysis run. The parent
/// thread runs the unmodified sequential fixpoint (gaia/Engine.h) — it
/// stays the bit-identity oracle — while a small worker set solves the
/// strongly-connected components of the entry's static call cone
/// speculatively, bottom-up in the SCC condensation's reverse
/// topological order (a component is dispatched only when every
/// component it calls has stabilized — ready-count scheduling over
/// prolog/CallGraph.h's Condensation).
///
/// Each worker task solves one component's predicates with a fresh
/// per-thread sequential engine over thread-local state: its own
/// symbol-table copy, its own op cache layered over the read-only
/// frozen shared tier (when one exists), its own scratch — workers
/// share nothing mutable with each other or with the parent. Finished
/// tasks publish two kinds of results through a mutex-guarded queue
/// whose ownership transfers wholly to the parent (single-consumer
/// hand-off, so the parent may run lazy graph-cache fills on them
/// without synchronization):
///
///   - an exact op-cache *delta* (typegraph/CacheDelta.h), absorbed
///     into the parent's cache at the engine's checkpoints: by the
///     cache-exactness invariant this turns misses into hits and cannot
///     change any result;
///   - a *pack*: the complete memo table of the task's from-empty solve
///     of (Pred, top), in creation order. The parent adopts a pack only
///     under the replay-equivalence guard (exact input match, every
///     touched predicate still entry-free in the parent, converged,
///     symbol table unchanged), which makes installation byte-identical
///     to the compute it replaces.
///
/// Demands the speculation does not cover — above all calls that escape
/// the static cone (simulated in tests by truncating the cone depth) —
/// are simply solved inline by the demanding engine; soundness never
/// depends on the static approximation being exhaustive. They are
/// counted in EngineStats::SccFallbackSolves.
///
/// The scheduler is TypeLeaf-concrete: the parallel mode requires the
/// type-graph domain with the op cache enabled (the delta/pack channels
/// are built on it); other configurations run sequentially.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_SCCSCHEDULER_H
#define GAIA_SCCSCHEDULER_H

#include "domains/TypeLeaf.h"
#include "gaia/Engine.h"
#include "prolog/CallGraph.h"
#include "support/Cancellation.h"
#include "typegraph/CacheDelta.h"
#include "typegraph/OpCache.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gaia {

class SharedCache; // runtime/SharedCache.h (keep-alive anchor only)

/// Parallel-solve configuration (core/Analyzer.h wires it from
/// AnalyzerOptions).
struct SccSolveOptions {
  /// Total solver threads including the parent; the scheduler spawns
  /// SolverThreads - 1 workers. Values <= 1 mean no speculation.
  uint32_t SolverThreads = 1;
  /// Test hook: speculate only predicates within this many call-graph
  /// edges of the entry, so demands beyond it exercise the escape
  /// hatch. ~0u = the whole static cone (production behavior).
  uint32_t MaxConeDepth = ~0u;
};

/// Scheduler-side counters, folded into EngineStats by the analyzer.
struct SccSolveStats {
  uint32_t SccCount = 0;       ///< components in the speculated cone
  uint32_t SccParallelism = 0; ///< peak concurrently busy workers
  uint64_t SccFallbackSolves = 0; ///< parent entries outside the cone
  uint64_t PacksPublished = 0;
  uint64_t PacksAdopted = 0;
  uint64_t EntriesAdopted = 0;
  uint64_t DeltasAbsorbed = 0;
};

/// One run's speculation: spawns the workers in the constructor, feeds
/// the parent engine through the EngineHints seams, and stops/joins the
/// workers in finish() (or the destructor — also on a cancellation
/// unwind, so a cancelled parallel solve leaves no thread or shared
/// state behind).
class SccSpeculation final : public EngineHints<TypeLeaf> {
public:
  /// Everything a worker needs to rebuild a self-contained analysis
  /// context. Assembled by the analyzer on the parent thread *before*
  /// any worker starts; workers only copy from it.
  struct Env {
    NormalizeOptions Norm;   ///< Cancel cleared; workers arm their own
    WideningOptions Widen;   ///< Database/Cancel cleared; see below
    std::vector<TypeGraph> Database; ///< type database, copied per task
    TypeLeaf::Constants ConstProto;  ///< pre-primed constants prototype
    std::shared_ptr<const FrozenOpTier> SharedOps; ///< frozen tier
    std::shared_ptr<const SharedCache> SharedAnchor; ///< keep-alive
  };

  /// \p ParentOps/\p ParentCtx/\p ParentSyms belong to the parent
  /// engine's run and are touched only from the parent thread (inside
  /// the EngineHints callbacks). \p Snapshot must already contain the
  /// parsed program; it is *copied* here, on the parent thread, before
  /// any worker exists — the parent interns into its table mid-solve,
  /// so workers may never read it directly.
  SccSpeculation(const NProgram &NProg, const CallGraph &CG,
                 const SymbolTable &Snapshot, FunctorId Entry,
                 const EngineOptions &EngOpts,
                 const TypeLeaf::Context &ParentCtx, OpCache &ParentOps,
                 SymbolTable &ParentSyms, Env WorkerEnv,
                 const SccSolveOptions &Opts);
  ~SccSpeculation() override;

  SccSpeculation(const SccSpeculation &) = delete;
  SccSpeculation &operator=(const SccSpeculation &) = delete;

  /// Stops and joins the workers, then returns the final counters.
  /// Idempotent; called by the analyzer right after the parent solve.
  SccSolveStats finish();

  /// Number of predicates in the (possibly depth-truncated) cone —
  /// also the basis of EngineOptions::ExpectedEntries.
  size_t coneSize() const { return Cone.size(); }

  // EngineHints seams (parent thread only).
  void atCheckpoint() override;
  bool tryAdopt(FunctorId Pred, const PatSub<TypeLeaf> &In,
                const std::function<bool(FunctorId)> &Fresh,
                std::vector<PackEntry> &Out) override;
  void noteInlineEntry(FunctorId Pred) override;

private:
  /// One speculative result set: the memo table of a from-empty solve
  /// of (Root, top) plus the task's harvested op-cache delta.
  struct Pack {
    FunctorId Root = InvalidFunctor;
    bool Converged = false;
    bool SymsStable = false; ///< worker table did not grow past snapshot
    std::vector<FunctorId> Touched;
    std::vector<PackEntry> Entries; ///< creation order, root first
  };
  struct Published {
    uint64_t Seq = 0; ///< (task, member) rank for deterministic drains
    std::shared_ptr<Pack> P;
    std::shared_ptr<const CacheDelta> Delta;
  };
  /// One ready-count task: solve every member predicate of one SCC.
  struct Task {
    uint32_t Scc = 0;      ///< condensation index (reverse topo)
    uint64_t SeqBase = 0;  ///< publication rank of the first member
    std::vector<std::pair<FunctorId, uint32_t>> Members; ///< (pred, arity)
  };

  void workerLoop();
  void runTask(const Task &T, const CancelSignal &Stop);
  void drainPublished();
  void stopWorkers();

  // Immutable after construction (shared read-only with workers).
  const NProgram &NProg;
  SymbolTable Snapshot; ///< private pre-solve copy; see constructor doc
  EngineOptions WorkerEngOpts;
  Env WEnv;
  uint32_t SnapSymbols = 0;
  uint32_t SnapFunctors = 0;
  std::vector<FunctorId> Cone;
  std::unordered_set<FunctorId> ConeSet;
  std::vector<Task> Tasks;
  std::vector<std::vector<uint32_t>> TaskCallers; ///< cone-local reverse edges

  // Parent-thread-only state (EngineHints side).
  const TypeLeaf::Context &ParentCtx;
  OpCache &ParentOps;
  SymbolTable &ParentSyms;
  std::unordered_map<FunctorId, std::shared_ptr<Pack>> PackStore;
  SccSolveStats Stats;
  bool Finished = false;

  // Scheduling state, guarded by Mu.
  std::mutex Mu;
  std::condition_variable ReadyCV;
  std::vector<uint32_t> Pending; ///< unfinished cone-callee tasks
  std::vector<uint32_t> Ready;   ///< dispatchable task indices
  bool Stopping = false;

  // Publication queue, guarded by PubMu; ownership of the queued packs
  // and deltas transfers to the parent at drain.
  std::mutex PubMu;
  std::vector<Published> PubQueue;
  std::atomic<bool> HasPub{false};

  std::shared_ptr<CancelToken> StopTok;
  std::atomic<uint32_t> Busy{0};
  std::atomic<uint32_t> PeakBusy{0};
  std::atomic<uint64_t> PacksPublishedCount{0};
  std::vector<std::thread> Threads;
};

} // namespace gaia

#endif // GAIA_SCCSCHEDULER_H
