//===- gaia/Engine.h - The GAIA top-down fixpoint algorithm ---------------==//
///
/// \file
/// The generic top-down fixpoint algorithm of Le Charlier & Van
/// Hentenryck (TOPLAS'94) as summarized in Section 4 of the paper: given
/// a normalized program and an abstract domain (Pat over some leaf), it
/// computes a small but sufficient subset of the least fixpoint (or a
/// postfixpoint) of the abstract semantics needed to answer a query.
///
/// The engine is polyvariant: each predicate may have several
/// (input pattern, output pattern) tuples. Memoization plus a dependency
/// graph avoid redundant computation. The widening is applied in the two
/// places Section 7.1 names:
///   1. on procedure *results* (every memo-table update), and
///   2. on procedure *calls*: a recursive descent that produces a new
///      input pattern for a predicate already on the call stack widens
///      it against the stacked pattern, bounding the set of input
///      patterns along any recursion.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_ENGINE_H
#define GAIA_ENGINE_H

#include "pat/PatSub.h"
#include "prolog/Normalize.h"
#include "support/Cancellation.h"
#include "support/SmallPtrMap.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

namespace gaia {

/// Engine behaviour knobs.
struct EngineOptions {
  /// If set, arithmetic comparisons (</2 etc.) refine both arguments to
  /// Int. Off by default: comparison arguments are *expressions* (1+2 <
  /// 4 succeeds), so the refinement is only sound for programs that
  /// compare evaluated numbers — which the paper's system, having no
  /// integer type at all, never assumed.
  bool RefineArithComparisons = false;
  /// Polyvariance cap. Section 9 observes that "the analyzer allocates
  /// a new input pattern whenever needed, which can be very demanding"
  /// and proposes "to limit the number of input patterns for each
  /// procedure by collapsing them" — this implements that remedy: once
  /// a predicate has this many memo entries, further input patterns are
  /// widened against the most recent entry, turning the pattern stream
  /// into a finite widening chain. 0 = unbounded (the paper's measured
  /// configuration, pathological on PR/RE-style programs).
  uint32_t MaxInputPatterns = 8;
  /// Defensive bound on both fixpoint loops (the local per-entry loop
  /// and the global stabilization loop in solve). The widening
  /// guarantees both terminate; if that guarantee is ever broken, the
  /// engine falls back to a top output for the offending entry instead
  /// of looping forever — or, as the pre-fix code did under NDEBUG,
  /// silently returning a dirty (non-converged, unsound-as-final)
  /// result. Aborts are counted in EngineStats::FixpointAborts.
  uint32_t MaxFixpointRounds = 10000;
  /// Optional cooperative stop condition (deadline and/or cancellation
  /// token; support/Cancellation.h), polled at the same per-round
  /// checkpoints the fixpoint budget uses. A tripped signal throws
  /// CancelledError out of solve(); the analyzer facade owns the
  /// handler. Null = never cancelled. Non-owning: the pointee must
  /// outlive the engine run.
  const CancelSignal *Cancel = nullptr;
  /// Expected memo-table size, typically derived from the entry's
  /// static call cone (the SCC pass computes the cone anyway). When
  /// nonzero the engine pre-sizes Entries/ByPred/ByKey/Stack instead of
  /// growing them through repeated reallocation on the solve hot path.
  /// 0 = no reserve (the pre-reserve behavior, kept for A/B runs).
  size_t ExpectedEntries = 0;
};

/// Process-global GAIA_TRACE flag, computed once. Engines used to call
/// std::getenv per construction; a batch run constructs thousands of
/// engines across worker threads, and getenv is not guaranteed
/// thread-safe against the environment, so the lookup happens exactly
/// once (thread-safe static initialization).
inline bool engineTraceEnabled() {
  static const bool Enabled = std::getenv("GAIA_TRACE") != nullptr;
  return Enabled;
}

/// Statistics matching Table 3's measurements, plus the cache layer's
/// hit/miss counters.
struct EngineStats {
  /// Number of times a (predicate, input) entry was (re)analyzed.
  uint64_t ProcedureIterations = 0;
  /// Number of clause analyses.
  uint64_t ClauseIterations = 0;
  /// Number of memo-table entries created (polyvariance).
  uint64_t InputPatterns = 0;
  /// Wall-clock seconds inside solve().
  double SolveSeconds = 0;
  /// Memo-table lookups, and how many entries the hashed lookup actually
  /// compared with the full Sub::equal (the pre-hash-consing code
  /// compared every same-predicate entry on every lookup).
  uint64_t EntryLookups = 0;
  uint64_t EntryCompares = 0;
  /// Dirty recomputations skipped because every recorded dependency
  /// still had its recorded version (the invalidation was spurious).
  uint64_t RecomputesSkipped = 0;
  /// Times a fixpoint loop exhausted EngineOptions::MaxFixpointRounds
  /// and fell back to a top output. Nonzero means the result is a sound
  /// over-approximation but the analysis did not converge normally.
  uint64_t FixpointAborts = 0;
  /// Graph-operation cache counters, filled in by the analyzer from the
  /// OpCache layer (zero when the leaf domain runs uncached).
  uint64_t OpCacheHits = 0;
  uint64_t OpCacheMisses = 0;
  /// Operation results and intern lookups resolved in the batch
  /// runtime's frozen shared tier (zero for cold runs; see
  /// runtime/SharedCache.h).
  uint64_t OpCacheSharedHits = 0;
  uint64_t InternSharedHits = 0;
  /// Distinct graph languages hash-consed by the interner (shared tier
  /// plus the run's private delta).
  uint64_t InternedGraphs = 0;
  /// Pf-set interner counters (support/PfSetInterner.h), filled in by
  /// the analyzer from the widening scratch (zero when uncached).
  uint64_t PfSetHits = 0;
  uint64_t PfSetMisses = 0;
  uint64_t PfSetSharedHits = 0;
  /// SCC-scheduled parallel mode (gaia/SccScheduler.h), zero for
  /// sequential runs: strongly-connected components in the entry's
  /// static call cone, the peak number of concurrently busy speculation
  /// workers, and the demands the parent thread solved inline because
  /// they fell outside the speculated cone (the escape hatch).
  uint32_t SccCount = 0;
  uint32_t SccParallelism = 0;
  uint64_t SccFallbackSolves = 0;
  double pfSetHitRate() const {
    uint64_t Total = PfSetHits + PfSetMisses + PfSetSharedHits;
    return Total ? double(PfSetHits + PfSetSharedHits) / double(Total) : 0.0;
  }
};

/// Hint channel of the SCC-scheduled parallel mode. The engine stays a
/// strictly sequential algorithm; a hint provider (gaia/SccScheduler.h)
/// may accelerate it through exactly two result-preserving seams:
///
///   - atCheckpoint(): called at the same per-round checkpoints the
///     cancellation poll uses. The provider absorbs speculative workers'
///     exact op-cache deltas here; by the cache-exactness invariant this
///     can only turn misses into hits, never change a result.
///   - tryAdopt(): called when solveCall is about to create the memo
///     entry (Pred, In). The provider may hand back a *pack* — the full
///     memo table of a finished from-empty solve of exactly (Pred, In),
///     in creation order — under a guard (checked via \p Fresh) that
///     makes installing it byte-equivalent to the compute the engine
///     would otherwise run (see DESIGN.md "Intra-analysis parallelism").
///
/// All calls happen on the engine's own thread.
template <typename Leaf> class EngineHints {
public:
  using Sub = PatSub<Leaf>;
  /// One adoptable memo entry; packs list them in creation order with
  /// the solved root first.
  struct PackEntry {
    FunctorId Pred = InvalidFunctor;
    Sub In = Sub::bottom(0);
    Sub Out = Sub::bottom(0);
  };

  virtual ~EngineHints() = default;
  virtual void atCheckpoint() {}
  /// \p Fresh reports whether the engine has no memo entry at all for a
  /// predicate (the adoption guard must hold for every predicate a pack
  /// touches, including \p Pred itself). On success fills \p Out and
  /// returns true.
  virtual bool tryAdopt(FunctorId Pred, const Sub &In,
                        const std::function<bool(FunctorId)> &Fresh,
                        std::vector<PackEntry> &Out) {
    (void)Pred;
    (void)In;
    (void)Fresh;
    (void)Out;
    return false;
  }
  /// The engine created (Pred, In) inline — either no pack covered it
  /// or the guard failed. Lets the provider count escape-hatch solves.
  virtual void noteInlineEntry(FunctorId Pred) { (void)Pred; }
};

template <typename Leaf> class Engine {
public:
  using Sub = PatSub<Leaf>;
  using Ctx = typename Leaf::Context;

  /// One memo-table tuple (Bin, p, Bout).
  struct Tuple {
    FunctorId Pred = InvalidFunctor;
    Sub In = Sub::bottom(0);
    Sub Out = Sub::bottom(0);
  };

  Engine(const NProgram &Prog, const Ctx &C,
         const EngineOptions &Opts = {})
      : Prog(Prog), C(C), Opts(Opts), Trace(engineTraceEnabled()) {
    if (Opts.ExpectedEntries != 0) {
      // Pre-size the memo structures from the call-cone estimate so the
      // solve loop does not grow them through repeated reallocation.
      Entries.reserve(Opts.ExpectedEntries);
      ByPred.reserve(Opts.ExpectedEntries);
      ByKey.reserve(Opts.ExpectedEntries);
      Stack.reserve(Opts.ExpectedEntries);
    }
  }

  /// Installs the parallel mode's hint provider (null = sequential, the
  /// default). Non-owning; the provider must outlive the solve.
  void setHints(EngineHints<Leaf> *H) { Hints = H; }

  /// Analyzes the query \p Pred with input pattern \p In (one slot per
  /// argument) and returns the output pattern.
  Sub solve(FunctorId Pred, const Sub &In);

  const EngineStats &stats() const { return Stats; }

  /// All memo-table tuples, for reporting and tag extraction.
  std::vector<Tuple> tuples() const {
    std::vector<Tuple> Result;
    for (const auto &E : Entries)
      Result.push_back(Tuple{E->Pred, E->In, E->Out});
    return Result;
  }

private:
  struct Entry {
    FunctorId Pred = InvalidFunctor;
    Sub In = Sub::bottom(0);
    Sub Out = Sub::bottom(0);
    uint64_t Version = 0;
    bool Computed = false;
    bool Dirty = true;
    bool OnStack = false;
    bool UsedRecursively = false;
    /// Callee -> latest version read this pass. Hub predicates can
    /// accumulate hundreds of dependencies; the hybrid map keeps
    /// recordDep O(1) instead of a per-call linear scan.
    SmallPtrMap<Entry, uint64_t> Deps;
    /// Entries whose last pass used this one (reverse of Deps).
    SmallPtrSet<Entry> Dependents;
  };

  Entry *solveCall(FunctorId Pred, Sub In, Entry *Caller);
  bool tryAdoptPack(FunctorId Pred, const Sub &In, Entry **RootOut);
  void compute(Entry *E);
  Sub analyzeClause(const NClause &Cl, const Sub &In, Entry *E);
  void invalidateDependents(Entry *Changed);
  Entry *findEntry(FunctorId Pred, const Sub &In);
  uint64_t entryKey(FunctorId Pred, const Sub &In) const;
  void recordDep(Entry *From, Entry *To);
  bool depsUnchanged(const Entry *E) const;
  void abortFixpoint(Entry *E);

  const NProgram &Prog;
  Ctx C;
  EngineOptions Opts;
  bool Trace = false;
  std::vector<std::unique_ptr<Entry>> Entries;
  /// Per-predicate entry buckets (creation order preserved; drives the
  /// polyvariance cap).
  std::unordered_map<FunctorId, std::vector<Entry *>> ByPred;
  /// Hashed memo-table index: (predicate, canonical input key) buckets.
  /// Lookup verifies candidates with Sub::equal, so a hash collision
  /// costs a comparison, never correctness.
  std::unordered_map<uint64_t, std::vector<Entry *>> ByKey;
  std::vector<Entry *> Stack;
  EngineStats Stats;
  /// Parallel-mode hint provider (null for sequential runs).
  EngineHints<Leaf> *Hints = nullptr;
  /// Reused buffer for pack adoption (avoids a per-adoption allocation).
  std::vector<typename EngineHints<Leaf>::PackEntry> AdoptScratch;
};

//===----------------------------------------------------------------------===//
// Implementation (template).
//===----------------------------------------------------------------------===//

template <typename Leaf>
uint64_t Engine<Leaf>::entryKey(FunctorId Pred, const Sub &In) const {
  std::size_t Seed = Pred;
  hashCombine(Seed, In.canonKey(C));
  return Seed;
}

template <typename Leaf>
typename Engine<Leaf>::Entry *Engine<Leaf>::findEntry(FunctorId Pred,
                                                      const Sub &In) {
  ++Stats.EntryLookups;
  auto It = ByKey.find(entryKey(Pred, In));
  if (It == ByKey.end())
    return nullptr;
  for (Entry *E : It->second) {
    if (E->Pred != Pred)
      continue;
    ++Stats.EntryCompares;
    if (Sub::equal(C, E->In, In))
      return E;
  }
  return nullptr;
}

template <typename Leaf>
void Engine<Leaf>::recordDep(Entry *From, Entry *To) {
  // One Deps slot per callee, holding the latest version read. A pass
  // that read two different versions of the same callee was dirtied in
  // between and repeats, so only the final version matters for the
  // depsUnchanged check.
  bool Inserted;
  From->Deps.lookupOrInsert(To, Inserted) = To->Version;
  To->Dependents.insert(From);
}

template <typename Leaf>
bool Engine<Leaf>::depsUnchanged(const Entry *E) const {
  for (const auto &[D, V] : E->Deps)
    if (D->Dirty || D->Version != V)
      return false;
  return true;
}

template <typename Leaf> void Engine<Leaf>::abortFixpoint(Entry *E) {
  // Fixpoint budget exhausted: the only sound terminating answer is top.
  // This path must exist in release builds — returning the current
  // (dirty) approximation as if final would be unsound.
  ++Stats.FixpointAborts;
  E->Out = Sub::top(C, E->In.numSlots());
  ++E->Version;
  invalidateDependents(E);
  E->Dirty = false;
}

template <typename Leaf>
typename Engine<Leaf>::Sub Engine<Leaf>::solve(FunctorId Pred,
                                               const Sub &In) {
  auto Start = std::chrono::steady_clock::now();
  Entry *E = solveCall(Pred, In, nullptr);
  // Iterate to a global fixpoint: recursive dependencies may have left
  // dirty entries; recompute until the query entry is clean.
  unsigned Rounds = 0;
  while (E->Dirty) {
    if (Opts.Cancel)
      Opts.Cancel->poll();
    if (Hints)
      Hints->atCheckpoint();
    if (Rounds++ >= Opts.MaxFixpointRounds) {
      abortFixpoint(E);
      break;
    }
    if (depsUnchanged(E)) {
      // Spurious invalidation: every dependency still has the version
      // this entry's last pass observed, so recomputing cannot change
      // the output.
      ++Stats.RecomputesSkipped;
      E->Dirty = false;
      break;
    }
    compute(E);
  }
  Stats.SolveSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  return E->Out;
}

template <typename Leaf>
typename Engine<Leaf>::Entry *
Engine<Leaf>::solveCall(FunctorId Pred, Sub In, Entry *Caller) {
  // Input widening against the innermost stacked pattern of the same
  // predicate: bounds the input patterns produced along a recursion.
  // A recursive call below the stacked pattern reuses it outright
  // (sound by monotonicity); otherwise the call pattern is widened
  // against it, so the chain of patterns along any recursion is a
  // widening chain and therefore finite.
  for (auto It = Stack.rbegin(), End = Stack.rend(); It != End; ++It) {
    Entry *SE = *It;
    if (SE->Pred != Pred)
      continue;
    if (Sub::leq(C, In, SE->In))
      In = SE->In;
    else
      In = Sub::widen(C, SE->In, In);
    break;
  }

  // Polyvariance cap: collapse further patterns into a widening chain
  // anchored at the predicate's most recent entry.
  if (Opts.MaxInputPatterns != 0) {
    auto It = ByPred.find(Pred);
    if (It != ByPred.end() && It->second.size() >= Opts.MaxInputPatterns) {
      Entry *Last = It->second.back();
      if (Sub::leq(C, In, Last->In))
        In = Last->In;
      else
        In = Sub::widen(C, Last->In, In);
    }
  }

  Entry *E = findEntry(Pred, In);
  if (!E) {
    // Parallel mode: a speculative worker may already have solved
    // exactly (Pred, In) from an empty table. Under the adoption guard
    // installing its pack is byte-equivalent to the compute below, so
    // the memo table (entries, creation order, cap anchors) evolves
    // bit-identically to the sequential run — only the skipped
    // ProcedureIterations/ClauseIterations work counters differ.
    if (Hints && tryAdoptPack(Pred, In, &E)) {
      if (Caller)
        recordDep(Caller, E);
      return E;
    }
    Entries.push_back(std::make_unique<Entry>());
    E = Entries.back().get();
    E->Pred = Pred;
    E->In = std::move(In);
    E->Out = Sub::bottom(E->In.numSlots());
    ByPred[Pred].push_back(E);
    ByKey[entryKey(Pred, E->In)].push_back(E);
    ++Stats.InputPatterns;
    if (Hints)
      Hints->noteInlineEntry(Pred);
    if (Trace)
      std::fprintf(stderr, "[gaia] new input pattern for %s (from %s):\n%s",
                   C.Syms.functorString(Pred).c_str(),
                   Caller ? C.Syms.functorString(Caller->Pred).c_str()
                          : "<query>",
                   E->In.print(C).c_str());
  }

  if (E->OnStack) {
    E->UsedRecursively = true;
    if (Caller)
      recordDep(Caller, E);
    return E; // current approximation
  }
  if (E->Computed && E->Dirty && depsUnchanged(E)) {
    // Version-checked skip: the entry was invalidated transitively, but
    // every direct dependency still carries the version its last pass
    // used — the output cannot change, so don't recompute it.
    ++Stats.RecomputesSkipped;
    E->Dirty = false;
  } else if (!E->Computed || E->Dirty) {
    compute(E);
  }
  // Record the dependency *after* the entry settles, so the version the
  // caller stores is the version whose output it actually reads —
  // recording before compute would make the first depsUnchanged check
  // after any settle see a spurious mismatch.
  if (Caller)
    recordDep(Caller, E);
  return E;
}

template <typename Leaf>
bool Engine<Leaf>::tryAdoptPack(FunctorId Pred, const Sub &In,
                                Entry **RootOut) {
  AdoptScratch.clear();
  auto Fresh = [this](FunctorId Q) {
    auto It = ByPred.find(Q);
    return It == ByPred.end() || It->second.empty();
  };
  if (!Hints->tryAdopt(Pred, In, Fresh, AdoptScratch) ||
      AdoptScratch.empty())
    return false;
  Entry *Root = nullptr;
  for (auto &PE : AdoptScratch) {
    Entries.push_back(std::make_unique<Entry>());
    Entry *E = Entries.back().get();
    E->Pred = PE.Pred;
    E->In = std::move(PE.In);
    E->Out = std::move(PE.Out);
    // Adopted entries are final: their cone reached its fixpoint in the
    // pack's from-empty solve, and (as in a sequential run, where fully
    // converged subtrees record no dependencies that can still change)
    // nothing can dirty them afterwards.
    E->Version = 1;
    E->Computed = true;
    E->Dirty = false;
    ByPred[E->Pred].push_back(E);
    ByKey[entryKey(E->Pred, E->In)].push_back(E);
    ++Stats.InputPatterns;
    if (!Root)
      Root = E; // packs list the solved root first
  }
  AdoptScratch.clear();
  assert(Root->Pred == Pred && Sub::equal(C, Root->In, In) &&
         "pack root must be the entry being created");
  (void)Pred;
  (void)In;
  if (Trace)
    std::fprintf(stderr, "[gaia] adopted pack for %s (%zu entries)\n",
                 C.Syms.functorString(Root->Pred).c_str(),
                 Entries.size());
  *RootOut = Root;
  return true;
}

template <typename Leaf> void Engine<Leaf>::compute(Entry *E) {
  const NProcedure *Proc = Prog.find(E->Pred);
  assert(Proc && "solveCall must only be used for defined predicates");
  E->OnStack = true;
  Stack.push_back(E);

  unsigned LocalRounds = 0;
  while (true) {
    if (Opts.Cancel)
      Opts.Cancel->poll();
    if (Hints)
      Hints->atCheckpoint();
    E->Dirty = false;
    E->UsedRecursively = false;
    // Unlink the reverse edges of the previous pass before rebuilding
    // Deps: a callee this pass no longer reads must not keep E in its
    // Dependents set, or its future version bumps would keep spuriously
    // dirtying E (and re-running the depsUnchanged scan) for the rest of
    // the run. Dropped dependencies are common — polyvariant entries
    // migrate as call patterns evolve along a recursion.
    for (const auto &[Dep, Version] : E->Deps)
      Dep->Dependents.erase(E);
    E->Deps.clear();
    ++Stats.ProcedureIterations;
    ++LocalRounds;
    if (Trace)
      std::fprintf(stderr,
                   "[gaia] pass %llu: %s (entry v%llu, round %u, "
                   "stack %zu, entries %zu)\n",
                   static_cast<unsigned long long>(
                       Stats.ProcedureIterations),
                   C.Syms.functorString(E->Pred).c_str(),
                   static_cast<unsigned long long>(E->Version),
                   LocalRounds, Stack.size(), Entries.size());

    Sub NewOut = Sub::bottom(E->In.numSlots());
    for (const NClause &Cl : Proc->Clauses) {
      ++Stats.ClauseIterations;
      Sub ClauseOut = analyzeClause(Cl, E->In, E);
      if (!ClauseOut.isBottom())
        NewOut = Sub::join(C, NewOut, ClauseOut);
    }

    Sub Widened = Sub::widen(C, E->Out, NewOut);
    bool Changed = !Sub::leq(C, Widened, E->Out);
    if (Changed) {
      E->Out = std::move(Widened);
      ++E->Version;
      invalidateDependents(E);
    }
    // Repeat while this entry participates in recursion and its result
    // is still in flux, or a callee's change invalidated this pass.
    bool Again = (Changed && E->UsedRecursively) || E->Dirty;
    if (!Again)
      break;
    if (LocalRounds >= Opts.MaxFixpointRounds) {
      abortFixpoint(E);
      break;
    }
  }

  Stack.pop_back();
  E->OnStack = false;
  E->Computed = true;
}

template <typename Leaf>
typename Engine<Leaf>::Sub
Engine<Leaf>::analyzeClause(const NClause &Cl, const Sub &In, Entry *E) {
  Sub B = Sub::extendForClause(C, In, Cl.NumVars);
  for (const NOp &Op : Cl.Ops) {
    if (B.isBottom())
      break;
    switch (Op.K) {
    case NOp::Kind::UnifyVar:
      B.unifyVars(C, Op.A, Op.B);
      break;
    case NOp::Kind::UnifyFunc:
      B.unifyFunc(C, Op.A, Op.Fn, Op.Args);
      break;
    case NOp::Kind::Call: {
      Sub CallIn = B.project(C, Op.Args);
      Entry *Callee = solveCall(Op.Fn, std::move(CallIn), E);
      B.applyCallResult(C, Op.Args, Callee->Out);
      break;
    }
    case NOp::Kind::Builtin:
      switch (Op.BK) {
      case BuiltinKind::Fail:
        B = Sub::bottom(B.numSlots());
        break;
      case BuiltinKind::Is:
        B.refineSlot(C, Op.Args[0], Leaf::intValue(C));
        break;
      case BuiltinKind::ArithTest:
        if (Opts.RefineArithComparisons) {
          B.refineSlot(C, Op.Args[0], Leaf::intValue(C));
          if (!B.isBottom())
            B.refineSlot(C, Op.Args[1], Leaf::intValue(C));
        }
        break;
      case BuiltinKind::TypeInt:
        B.refineSlot(C, Op.Args[0], Leaf::intValue(C));
        break;
      case BuiltinKind::Length:
        B.refineSlot(C, Op.Args[0], Leaf::listValue(C));
        if (!B.isBottom())
          B.refineSlot(C, Op.Args[1], Leaf::intValue(C));
        break;
      case BuiltinKind::Arg:
        B.refineSlot(C, Op.Args[0], Leaf::intValue(C));
        break;
      case BuiltinKind::True:
      case BuiltinKind::TypeTest:
      case BuiltinKind::NotEq:
      case BuiltinKind::Opaque:
      case BuiltinKind::Unify:
      case BuiltinKind::TermEq:
      case BuiltinKind::None:
        break; // no refinement (sound)
      }
      break;
    }
  }
  if (B.isBottom())
    return Sub::bottom(Cl.Arity);
  // Project the clause state onto the head arguments.
  std::vector<uint32_t> HeadSlots(Cl.Arity);
  for (uint32_t I = 0; I != Cl.Arity; ++I)
    HeadSlots[I] = I;
  return B.project(C, HeadSlots);
}

template <typename Leaf>
void Engine<Leaf>::invalidateDependents(Entry *Changed) {
  // Mark (transitively) every entry that used Changed. Transitive
  // dependents must be marked even though the intermediate entry's
  // version has not been bumped yet: recomputing it may change it, so
  // anything built on it is suspect.
  std::vector<Entry *> Work{Changed};
  while (!Work.empty()) {
    Entry *X = Work.back();
    Work.pop_back();
    for (Entry *F : X->Dependents) {
      if (F->Dirty || F == X)
        continue;
      F->Dirty = true;
      Work.push_back(F);
    }
  }
}

} // namespace gaia

#endif // GAIA_ENGINE_H
