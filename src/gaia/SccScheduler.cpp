//===- gaia/SccScheduler.cpp ------------------------------------------------=//

#include "gaia/SccScheduler.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace gaia;

SccSpeculation::SccSpeculation(const NProgram &NProg, const CallGraph &CG,
                               const SymbolTable &Snapshot, FunctorId Entry,
                               const EngineOptions &EngOpts,
                               const TypeLeaf::Context &ParentCtx,
                               OpCache &ParentOps, SymbolTable &ParentSyms,
                               Env WorkerEnv, const SccSolveOptions &Opts)
    : NProg(NProg), Snapshot(Snapshot), WorkerEngOpts(EngOpts),
      WEnv(std::move(WorkerEnv)), ParentCtx(ParentCtx), ParentOps(ParentOps),
      ParentSyms(ParentSyms) {
  // Workers must not observe the parent's cancellation plumbing: each
  // task arms its own signal on the scheduler's stop token, and the
  // parent's deadline reaches them through stopWorkers() on unwind.
  WorkerEngOpts.Cancel = nullptr;
  SnapSymbols = Snapshot.numSymbols();
  SnapFunctors = Snapshot.numFunctors();

  Cone = CG.reachableFrom(Entry, Opts.MaxConeDepth);
  ConeSet.insert(Cone.begin(), Cone.end());
  if (Opts.SolverThreads <= 1 || Cone.empty())
    return;

  // Condensation filtered to the cone: one task per component whose
  // members all lie inside it. With a truncated cone (the escape-hatch
  // test hook) a component can straddle the boundary; such components
  // are not speculated — their callers' ready counts must count only
  // in-cone callee tasks, or dispatch would stall forever waiting on
  // components that never run.
  Condensation Cond = CG.condense();
  std::vector<uint32_t> TaskOf(Cond.Sccs.size(), ~0u);
  for (uint32_t I = 0; I != Cond.Sccs.size(); ++I) {
    bool InCone = !Cond.Sccs[I].empty();
    for (FunctorId P : Cond.Sccs[I])
      InCone = InCone && ConeSet.count(P) != 0;
    if (!InCone)
      continue;
    TaskOf[I] = static_cast<uint32_t>(Tasks.size());
    Task T;
    T.Scc = I;
    for (FunctorId P : Cond.Sccs[I])
      T.Members.emplace_back(P, Snapshot.functorArity(P));
    Tasks.push_back(std::move(T));
  }
  Stats.SccCount = static_cast<uint32_t>(Tasks.size());
  if (Tasks.empty())
    return;

  // Per-task publication ranks: one slot per member, in (task, member)
  // order, so the parent's drains absorb deltas deterministically no
  // matter which worker finished first.
  uint64_t Seq = 0;
  for (Task &T : Tasks) {
    T.SeqBase = Seq;
    Seq += T.Members.size();
  }

  Pending.assign(Tasks.size(), 0);
  TaskCallers.assign(Tasks.size(), {});
  for (uint32_t I = 0; I != Cond.Sccs.size(); ++I) {
    if (TaskOf[I] == ~0u)
      continue;
    for (uint32_t J : Cond.CalleeSccs[I]) {
      if (TaskOf[J] == ~0u)
        continue;
      ++Pending[TaskOf[I]];
      TaskCallers[TaskOf[J]].push_back(TaskOf[I]);
    }
  }
  for (uint32_t I = 0; I != Tasks.size(); ++I)
    if (Pending[I] == 0)
      Ready.push_back(I);

  StopTok = std::make_shared<CancelToken>();
  uint32_t Workers = std::min<uint32_t>(Opts.SolverThreads - 1,
                                        static_cast<uint32_t>(Tasks.size()));
  Threads.reserve(Workers);
  for (uint32_t I = 0; I != Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

SccSpeculation::~SccSpeculation() { stopWorkers(); }

void SccSpeculation::stopWorkers() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  if (StopTok)
    StopTok->cancel();
  ReadyCV.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
}

void SccSpeculation::workerLoop() {
  for (;;) {
    uint32_t TaskIdx;
    {
      std::unique_lock<std::mutex> L(Mu);
      ReadyCV.wait(L, [this] { return Stopping || !Ready.empty(); });
      if (Stopping)
        return;
      // Claim the lowest ready index: a deterministic *preference*
      // (completion order still depends on timing; result determinism
      // comes from the Seq-sorted drain, not from here).
      auto It = std::min_element(Ready.begin(), Ready.end());
      TaskIdx = *It;
      Ready.erase(It);
    }

    uint32_t NowBusy = Busy.fetch_add(1, std::memory_order_relaxed) + 1;
    uint32_t Peak = PeakBusy.load(std::memory_order_relaxed);
    while (NowBusy > Peak &&
           !PeakBusy.compare_exchange_weak(Peak, NowBusy,
                                           std::memory_order_relaxed))
      ;

    CancelSignal Stop;
    Stop.armToken(StopTok);
    try {
      runTask(Tasks[TaskIdx], Stop);
    } catch (const CancelledError &) {
      // Shutdown raced the task; its results are simply never published.
    } catch (...) {
      // Speculation is advisory: a failed task only costs its hints.
    }
    Busy.fetch_sub(1, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> L(Mu);
      for (uint32_t Caller : TaskCallers[TaskIdx]) {
        assert(Pending[Caller] != 0 && "ready-count underflow");
        if (--Pending[Caller] == 0)
          Ready.push_back(Caller);
      }
    }
    ReadyCV.notify_all();
  }
}

void SccSpeculation::runTask(const Task &T, const CancelSignal &Stop) {
  for (size_t MemberIdx = 0; MemberIdx != T.Members.size(); ++MemberIdx) {
    Stop.poll();
    auto [Pred, Arity] = T.Members[MemberIdx];

    // A fully private analysis universe per member: its own symbol
    // table, cache over the shared frozen tier, constants, and database
    // copies (TypeGraph's lazy derived caches are per-value, so copies
    // made here fill privately; the shared node storage is only ever
    // const-read).
    SymbolTable WSyms = Snapshot;
    NormalizeOptions WNorm = WEnv.Norm;
    WNorm.Cancel = &Stop;
    std::vector<TypeGraph> WDatabase = WEnv.Database;
    WideningOptions WWiden = WEnv.Widen;
    WWiden.Norm = WNorm;
    WWiden.Database = WDatabase.empty() ? nullptr : &WDatabase;
    WWiden.Cancel = &Stop;
    OpCache WOps(WSyms, WNorm, WEnv.SharedOps);
    WideningStats WS;
    TypeLeaf::Context WC{WSyms,
                         WNorm,
                         WWiden,
                         &WS,
                         &WOps,
                         std::make_shared<TypeLeaf::Constants>(WEnv.ConstProto),
                         WEnv.SharedAnchor};
    EngineOptions EO = WorkerEngOpts;
    EO.Cancel = &Stop;

    Engine<TypeLeaf> Eng(NProg, WC, EO);
    PatSub<TypeLeaf> In = PatSub<TypeLeaf>::top(WC, Arity);
    Eng.solve(Pred, In);

    // The pack is adoptable only if the solve converged (an aborted
    // fixpoint's top outputs are sound but not what the parent would
    // compute) and the worker interned nothing new (functor ids in the
    // carried graphs are then the parent's ids verbatim). The delta
    // needs neither guard: absorbDelta relocates by (name, arity).
    std::shared_ptr<Pack> P = std::make_shared<Pack>();
    P->Root = Pred;
    P->Converged = Eng.stats().FixpointAborts == 0;
    P->SymsStable = WSyms.numSymbols() == SnapSymbols &&
                    WSyms.numFunctors() == SnapFunctors;
    std::unordered_set<FunctorId> Touched;
    for (auto &Tup : Eng.tuples()) {
      if (Touched.insert(Tup.Pred).second)
        P->Touched.push_back(Tup.Pred);
      P->Entries.push_back(
          PackEntry{Tup.Pred, std::move(Tup.In), std::move(Tup.Out)});
    }
    assert(!P->Entries.empty() && P->Entries.front().Pred == Pred &&
           "pack must list the solved root first");

    std::shared_ptr<const CacheDelta> Delta = WOps.harvestDelta(0);
    bool Publishable = P->Converged && P->SymsStable;
    {
      std::lock_guard<std::mutex> L(PubMu);
      PubQueue.push_back(Published{T.SeqBase + MemberIdx,
                                   Publishable ? std::move(P) : nullptr,
                                   std::move(Delta)});
      HasPub.store(true, std::memory_order_release);
    }
    if (Publishable)
      PacksPublishedCount.fetch_add(1, std::memory_order_relaxed);
  }
}

void SccSpeculation::drainPublished() {
  if (!HasPub.load(std::memory_order_acquire))
    return;
  std::vector<Published> Batch;
  {
    std::lock_guard<std::mutex> L(PubMu);
    Batch.swap(PubQueue);
    HasPub.store(false, std::memory_order_relaxed);
  }
  // Ownership of every queued pack and delta has now transferred to the
  // parent thread — workers hold no references to them. Deterministic
  // absorb order regardless of worker completion timing:
  std::sort(Batch.begin(), Batch.end(),
            [](const Published &A, const Published &B) { return A.Seq < B.Seq; });
  for (Published &Pub : Batch) {
    if (Pub.Delta) {
      ParentOps.absorbDelta(ParentSyms, *Pub.Delta);
      ++Stats.DeltasAbsorbed;
    }
    if (Pub.P)
      PackStore[Pub.P->Root] = std::move(Pub.P);
  }
}

void SccSpeculation::atCheckpoint() { drainPublished(); }

bool SccSpeculation::tryAdopt(FunctorId Pred, const PatSub<TypeLeaf> &In,
                              const std::function<bool(FunctorId)> &Fresh,
                              std::vector<PackEntry> &Out) {
  drainPublished();
  auto It = PackStore.find(Pred);
  if (It == PackStore.end())
    return false;
  const Pack &P = *It->second;
  // Replay-equivalence guard. Freshness of every touched predicate
  // (including the root — ByPred-empty subsumes the on-stack check,
  // since stacked entries live in ByPred) guarantees the pack's solve
  // saw exactly the memo-table evolution the parent's compute would
  // produce: same entries, same creation order, same polyvariance-cap
  // anchors. If any predicate already has entries the replay diverges,
  // and it never becomes fresh again — drop the pack.
  for (FunctorId Q : P.Touched)
    if (!Fresh(Q)) {
      PackStore.erase(It);
      return false;
    }
  // Input match is checked in the *parent's* context: the pack's graphs
  // carry stale worker intern ids, which the parent cache's epoch check
  // ignores. A mismatch keeps the pack — a later demand of the same
  // predicate may still match (and if the mismatching demand created an
  // entry, the freshness guard retires the pack next time).
  if (!PatSub<TypeLeaf>::equal(ParentCtx, P.Entries.front().In, In))
    return false;
  Out = P.Entries;
  PackStore.erase(It);
  ++Stats.PacksAdopted;
  Stats.EntriesAdopted += Out.size();
  return true;
}

void SccSpeculation::noteInlineEntry(FunctorId Pred) {
  if (!ConeSet.count(Pred))
    ++Stats.SccFallbackSolves;
}

SccSolveStats SccSpeculation::finish() {
  if (!Finished) {
    stopWorkers();
    // Late publications are discarded, not absorbed: the parent's cache
    // should leave the solve in the same state a checkpoint-driven run
    // left it, and post-solve hints can no longer help anyone.
    {
      std::lock_guard<std::mutex> L(PubMu);
      PubQueue.clear();
      HasPub.store(false, std::memory_order_relaxed);
    }
    PackStore.clear();
    Stats.SccParallelism = PeakBusy.load(std::memory_order_relaxed);
    Stats.PacksPublished = PacksPublishedCount.load(std::memory_order_relaxed);
    Finished = true;
  }
  return Stats;
}
