//===- gaia/Engine.cpp - Explicit instantiations ----------------------------=//

#include "gaia/Engine.h"

#include "domains/PFLeaf.h"
#include "domains/TypeLeaf.h"

namespace gaia {

template class Engine<TypeLeaf>;
template class Engine<PFLeaf>;

} // namespace gaia
