//===- typegraph/Widening.cpp ----------------------------------------------=//

#include "typegraph/Widening.h"

#include "support/Debug.h"
#include "support/Hashing.h"
#include "typegraph/GraphOps.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace gaia;

namespace {

/// A topological clash: or-vertex Vo of the old graph corresponds to
/// or-vertex Vn of the new graph but their pf-sets or depths differ
/// (Definition 7.2, filtered to widening clashes by Definition 7.3).
struct Clash {
  NodeId Vo;
  NodeId Vn;
};

static bool pfSubset(const std::vector<FunctorId> &A,
                     const std::vector<FunctorId> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

/// Computes the widening clashes WTC(Go, Gn) by walking the
/// correspondence relation of Definition 7.1: descend through pairs of
/// vertices as long as they agree on depth and pf-set; or-pairs that
/// disagree are topological clashes.
static std::vector<Clash> wideningClashes(const TypeGraph &Go,
                                          const TypeGraph::Topology &TopoO,
                                          const TypeGraph &Gn,
                                          const TypeGraph::Topology &TopoN,
                                          const SymbolTable &Syms) {
  std::vector<Clash> Result;
  std::unordered_set<std::pair<NodeId, NodeId>, PairHash> Visited;
  std::deque<std::pair<NodeId, NodeId>> Queue;
  Queue.emplace_back(Go.root(), Gn.root());
  while (!Queue.empty()) {
    auto [Vo, Vn] = Queue.front();
    Queue.pop_front();
    if (!Visited.insert({Vo, Vn}).second)
      continue;
    const TGNode &No = Go.node(Vo);
    const TGNode &Nn = Gn.node(Vn);
    if (No.Kind == NodeKind::Func && Nn.Kind == NodeKind::Func) {
      assert(No.Fn == Nn.Fn && "corresponding functor vertices must agree");
      for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
        Queue.emplace_back(No.Succs[J], Nn.Succs[J]);
      continue;
    }
    if (No.Kind != NodeKind::Or || Nn.Kind != NodeKind::Or)
      continue; // leaf pairs carry no information
    bool SameDepth = TopoO.Depth[Vo] == TopoN.Depth[Vn];
    std::vector<FunctorId> PfO = Go.pfSet(Vo, Syms);
    std::vector<FunctorId> PfN = Gn.pfSet(Vn, Syms);
    if (SameDepth && PfO == PfN) {
      // Same pf-set plus sorted successors => positional correspondence.
      // Beware Isolated-Any: both must be plain alternatives.
      if (No.Succs.size() == Nn.Succs.size())
        for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
          Queue.emplace_back(No.Succs[J], Nn.Succs[J]);
      continue;
    }
    // Topological clash; keep it if it is a widening clash (Def 7.3).
    if (PfN.empty())
      continue;
    bool PfClash = PfO != PfN && SameDepth;
    bool DepthClash = TopoO.Depth[Vo] < TopoN.Depth[Vn];
    if (PfClash || DepthClash)
      Result.push_back({Vo, Vn});
  }
  // Deterministic processing order: shallow clash vertices first.
  std::sort(Result.begin(), Result.end(), [&](const Clash &A, const Clash &B) {
    if (TopoN.Depth[A.Vn] != TopoN.Depth[B.Vn])
      return TopoN.Depth[A.Vn] < TopoN.Depth[B.Vn];
    if (A.Vn != B.Vn)
      return A.Vn < B.Vn;
    return A.Vo < B.Vo;
  });
  return Result;
}

/// Walks the or-vertex ancestors of \p V (nearest first) via tree parents.
static std::vector<NodeId> orAncestors(const TypeGraph &G,
                                       const TypeGraph::Topology &Topo,
                                       NodeId V) {
  std::vector<NodeId> Result;
  for (NodeId P = Topo.Parent[V]; P != InvalidNode; P = Topo.Parent[P])
    if (G.node(P).Kind == NodeKind::Or)
      Result.push_back(P);
  return Result;
}

/// Splices \p Rep in place of the subtree rooted at or-vertex \p Va.
/// Implementation of detail::graftReplace; see the header comment there
/// for why every incoming edge must be redirected.
static TypeGraph graftReplaceImpl(const TypeGraph &G, NodeId Va,
                                  const TypeGraph &Rep,
                                  const TypeGraph::Topology &Topo) {
  TypeGraph Out = G; // copy; ids are preserved
  NodeId RepRoot = copySubgraph(Rep, Rep.root(), Out);
  if (Va == G.root()) {
    Out.setRoot(RepRoot);
    return Out.compact();
  }
  assert(Topo.Parent[Va] != InvalidNode &&
         "non-root vertex must have a parent");
  // Redirect every edge into Va. Besides the tree-parent edge, Va may
  // have incoming back/cross edges (cycle introduction creates them);
  // leaving any of them in place would keep the replaced subtree alive.
  uint32_t Old = G.numNodes(); // freshly copied Rep nodes need no rewrite
  for (NodeId V = 0; V != Old; ++V)
    for (NodeId &S : Out.node(V).Succs)
      if (S == Va)
        S = RepRoot;
  return Out.compact();
}

/// One pass of the widen() loop: try the cycle introduction rule, then
/// the replacement rule. Returns true if a transformation was applied
/// (mutating \p Gn).
static bool applyOneTransform(const TypeGraph &Go, TypeGraph &Gn,
                              const SymbolTable &Syms,
                              const WideningOptions &Opts,
                              WideningStats *Stats,
                              NormalizeScratch *Scratch) {
  TypeGraph::Topology TopoO = Go.computeTopology();
  TypeGraph::Topology TopoN = Gn.computeTopology();
  std::vector<Clash> Clashes = wideningClashes(Go, TopoO, Gn, TopoN, Syms);
  if (Clashes.empty())
    return false;

  // Cycle introduction rule (Definition 7.4).
  for (const Clash &C : Clashes) {
    if (C.Vn == Gn.root())
      continue; // no incoming edge to redirect
    std::vector<FunctorId> PfN = Gn.pfSet(C.Vn, Syms);
    for (NodeId Va : orAncestors(Gn, TopoN, C.Vn)) {
      if (TopoO.Depth[C.Vo] < TopoN.Depth[Va])
        continue;
      std::vector<FunctorId> PfA = Gn.pfSet(Va, Syms);
      if (!pfSubset(PfN, PfA))
        continue;
      if (!vertexIncludes(Gn, Va, Gn, C.Vn, Syms))
        continue;
      // Redirect the tree edge (parent(Vn), Vn) to Va.
      NodeId Parent = TopoN.Parent[C.Vn];
      for (NodeId &S : Gn.node(Parent).Succs)
        if (S == C.Vn)
          S = Va;
      Gn = Gn.compact();
      if (Stats)
        ++Stats->CycleIntroductions;
      return true;
    }
  }

  // Replacement rule (Definition 7.5).
  for (const Clash &C : Clashes) {
    std::vector<FunctorId> PfN = Gn.pfSet(C.Vn, Syms);
    bool DepthClash = TopoO.Depth[C.Vo] < TopoN.Depth[C.Vn];
    for (NodeId Va : orAncestors(Gn, TopoN, C.Vn)) {
      if (TopoO.Depth[C.Vo] < TopoN.Depth[Va])
        continue;
      if (vertexIncludes(Gn, Va, Gn, C.Vn, Syms))
        continue; // cycle introduction territory, already failed on pf
      std::vector<FunctorId> PfA = Gn.pfSet(Va, Syms);
      if (!pfSubset(PfN, PfA) && !DepthClash)
        continue;
      uint64_t OldSize = Gn.sizeMetric();
      // The conclusion's extension: prefer a type from the database
      // that covers both clash vertices, if it shrinks the graph.
      if (Opts.Database) {
        const TypeGraph *Best = nullptr;
        for (const TypeGraph &D : *Opts.Database) {
          if (!vertexIncludes(D, D.root(), Gn, Va, Syms) ||
              !vertexIncludes(D, D.root(), Gn, C.Vn, Syms))
            continue;
          if (!Best || D.sizeMetric() < Best->sizeMetric())
            Best = &D;
        }
        if (Best) {
          TypeGraph Candidate = graftReplaceImpl(Gn, Va, *Best, TopoN);
          if (Candidate.sizeMetric() < OldSize) {
            Gn = std::move(Candidate);
            if (Stats) {
              ++Stats->Replacements;
              ++Stats->DatabaseHits;
            }
            return true;
          }
        }
      }
      // Replace Va by an upper bound of Va and Vn, computed with the
      // collapsing union (the paper's growth-avoiding union variant);
      // fall back to Any. Either must strictly decrease the size of the
      // graph (Figure 7).
      TypeGraph Rep =
          collapsingUnionFrom(Gn, {Va, C.Vn}, Syms, Opts.Norm, Scratch);
      TypeGraph Candidate = graftReplaceImpl(Gn, Va, Rep, TopoN);
      if (Candidate.sizeMetric() < OldSize) {
        Gn = std::move(Candidate);
        if (Stats)
          ++Stats->Replacements;
        return true;
      }
      TypeGraph AnyRep = TypeGraph::makeAny();
      Candidate = graftReplaceImpl(Gn, Va, AnyRep, TopoN);
      if (Candidate.sizeMetric() < OldSize) {
        Gn = std::move(Candidate);
        if (Stats)
          ++Stats->Replacements;
        return true;
      }
      // Cannot shrink here; try the next ancestor / clash.
    }
  }
  return false;
}

} // namespace

TypeGraph gaia::graphWiden(const TypeGraph &Gold, const TypeGraph &Gnew,
                           const SymbolTable &Syms,
                           const WideningOptions &Opts,
                           WideningStats *Stats, NormalizeScratch *Scratch) {
  if (Stats)
    ++Stats->Invocations;
  if (graphIncludes(Gold, Gnew, Syms))
    return Gold;
  if (Opts.Mode == WidenMode::DepthK) {
    // Baseline strategy: truncate the union at DepthK or-levels. This
    // is what the paper's widening is measured against.
    NormalizeOptions Truncate = Opts.Norm;
    Truncate.MaxDepth = Opts.DepthK;
    TypeGraph U = graphUnion(Gold, Gnew, Syms, Opts.Norm, Scratch);
    return normalizeGraph(U, Syms, Truncate, Scratch);
  }
  if (Gold.isBottomGraph())
    return normalizeGraph(Gnew, Syms, Opts.Norm, Scratch);
  TypeGraph Gn = graphUnion(Gold, Gnew, Syms, Opts.Norm, Scratch);

  uint32_t Transforms = 0;
  while (applyOneTransform(Gold, Gn, Syms, Opts, Stats, Scratch)) {
    ++Transforms;
    if (Transforms > Opts.MaxTransforms) {
      // Defensive budget exhausted. The paper proves the transformation
      // loop terminates; if an implementation bug (or an adversarial
      // input) breaks that proof, collapsing to Any is the only sound
      // answer that also guarantees the widening chain stays finite.
      // This must work in release builds: the previous assert compiled
      // away under NDEBUG and silently returned a possibly ever-growing
      // graph, breaking the engine's termination argument.
      if (Stats)
        ++Stats->BudgetExhaustions;
      return TypeGraph::makeAny();
    }
  }
  // Cycle introduction can make previously distinct vertices
  // language-equivalent; re-normalize (exactly language-preserving) so
  // results stay minimal and canonical.
  if (Transforms != 0)
    Gn = normalizeGraph(Gn, Syms, Opts.Norm, Scratch);
#ifndef NDEBUG
  assert(graphIncludes(Gn, Gold, Syms) && "widening must include old graph");
  assert(graphIncludes(Gn, Gnew, Syms) && "widening must include new graph");
#endif
  return Gn;
}

TypeGraph gaia::detail::graftReplace(const TypeGraph &G, NodeId Va,
                                     const TypeGraph &Rep,
                                     const TypeGraph::Topology &Topo) {
  return graftReplaceImpl(G, Va, Rep, Topo);
}
