//===- typegraph/Widening.cpp ----------------------------------------------=//
///
/// Scratch-based implementation of the Section 7 widening. The transform
/// loop runs entirely on caller-owned WideningScratch buffers:
///
///   - the old graph's topology (depths, parents, or-ancestors, interned
///     pf-set ids) comes from its per-graph cache and is computed once
///     per distinct value, not once per transform;
///   - the evolving graph's topology lives in reusable scratch arrays,
///     double-buffered so a transform's depth changes can be diffed;
///   - pf-set comparisons are PfSetInterner id compares / mask-guarded
///     subset walks, never vector materializations;
///   - transforms mutate the graph in place (append + edge redirection)
///     instead of copy + compact per step — compaction happens once, at
///     the final normalization, which renumbers canonically anyway. All
///     order-sensitive decisions are made on BFS positions, which are
///     invariant under compaction, so the transform sequence is
///     bit-identical to the historic copy-per-step implementation;
///   - the correspondence re-walk after a transform is *incremental*: a
///     pair whose cone held no clash in the previous walk and whose
///     graph region is untouched (no structural edit, no depth change)
///     is skipped wholesale. Dirty regions are found by diffing the
///     double-buffered depths plus the edit sites, and propagated
///     backwards over a reverse-CSR of the graph.
///
//===----------------------------------------------------------------------===//

#include "typegraph/Widening.h"

#include "support/Debug.h"
#include "support/Hashing.h"
#include "typegraph/GraphOps.h"

#include <algorithm>

using namespace gaia;

namespace {

/// Per-pair walk flags (WideningScratch::Flags).
constexpr uint8_t FlagClash = 1;      ///< pair is a widening clash
constexpr uint8_t FlagReachClash = 2; ///< a clash is reachable from it

/// Splices \p Rep in place of the subtree rooted at or-vertex \p Va.
/// Implementation of detail::graftReplace; see the header comment there
/// for why every incoming edge must be redirected. (The widening loop
/// itself commits replacements in place; this copy-based variant remains
/// the exported, independently testable specification of the edit.)
static TypeGraph graftReplaceImpl(const TypeGraph &G, NodeId Va,
                                  const TypeGraph &Rep,
                                  const TypeGraph::Topology &Topo) {
  TypeGraph Out = G; // copy; ids are preserved
  NodeId RepRoot = copySubgraph(Rep, Rep.root(), Out);
  if (Va == G.root()) {
    Out.setRoot(RepRoot);
    return Out.compact();
  }
  assert(Topo.Parent[Va] != InvalidNode &&
         "non-root vertex must have a parent");
  (void)Topo; // assert-only under NDEBUG
  // Redirect every edge into Va. Besides the tree-parent edge, Va may
  // have incoming back/cross edges (cycle introduction creates them);
  // leaving any of them in place would keep the replaced subtree alive.
  uint32_t Old = G.numNodes(); // freshly copied Rep nodes need no rewrite
  for (NodeId V = 0; V != Old; ++V)
    for (NodeId &S : Out.node(V).Succs)
      if (S == Va)
        S = RepRoot;
  return Out.compact();
}

/// One widening run: Gold fixed, Gn evolving under the transform rules.
class WidenRun {
public:
  WidenRun(const TypeGraph &Go, TypeGraph &Gn, const SymbolTable &Syms,
           const WideningOptions &Opts, WideningStats *Stats,
           NormalizeScratch *NScratch, WideningScratch &W)
      : Go(Go), Gn(Gn), CGn(Gn), Syms(Syms), Opts(Opts), Stats(Stats),
        NScratch(NScratch), W(W), TopoO(Go.topology(Syms, W.PfSets)) {
    // Forget any clean-cone state a previous widening left behind.
    W.Clean.begin();
  }

  /// One pass of the widen() loop: recompute (incrementally) the clash
  /// relation, then try the cycle introduction rule and the replacement
  /// rule. Returns true if a transformation was applied (mutating Gn).
  bool applyOneTransform() {
    buildGnTopo();
    clashWalk();
    if (W.Clashes.empty())
      return false;
    rebuildClean();
    return cycleIntroduction() || replacement();
  }

private:
  //===--------------------------------------------------------------------//
  // Topology of the evolving graph, in scratch.
  //===--------------------------------------------------------------------//

  void buildGnTopo() {
    // Keep last iteration's depths for the incremental dirty diff, then
    // refill through the same helper that builds the per-graph caches.
    W.PrevDepth.swap(W.GnTopo.Depth);
    Gn.fillTopology(Syms, W.PfSets, W.GnTopo, W.BfsPos, W.OrAnc, W.Pf);
  }

  //===--------------------------------------------------------------------//
  // Dirty-region propagation for the incremental re-walk.
  //===--------------------------------------------------------------------//

  /// Marks (in ReachMark/ReachEpoch) every vertex of Gn from which a
  /// *dirty* vertex is reachable. Dirty = structurally edited by the last
  /// transform, newly appended, or BFS depth changed (depth enters the
  /// clash conditions, so a depth shift can surface clashes in a
  /// structurally untouched cone).
  void propagateDirty() {
    uint32_t N = Gn.numNodes();
    uint64_t Epoch = W.beginReachEpoch(N);
    W.Worklist.clear();
    auto Seed = [&](NodeId V) {
      if (W.ReachMark[V] != Epoch) {
        W.ReachMark[V] = Epoch;
        W.Worklist.push_back(V);
      }
    };
    uint32_t PrevN = static_cast<uint32_t>(W.PrevDepth.size());
    for (NodeId V = 0; V != PrevN && V != N; ++V)
      if (W.GnTopo.Depth[V] != W.PrevDepth[V])
        Seed(V);
    for (NodeId V = PrevN; V < N; ++V)
      Seed(V);
    for (NodeId V : W.DirtyStruct)
      Seed(V);

    // Reverse CSR over the reachable part of Gn.
    W.PredOff.assign(N + 1, 0);
    for (NodeId V : W.GnTopo.BfsOrder)
      for (NodeId S : CGn.node(V).Succs)
        ++W.PredOff[S + 1];
    for (uint32_t I = 0; I != N; ++I)
      W.PredOff[I + 1] += W.PredOff[I];
    W.PredDat.resize(W.PredOff[N]);
    W.CsrFill.assign(W.PredOff.begin(), W.PredOff.end() - 1);
    for (NodeId V : W.GnTopo.BfsOrder)
      for (NodeId S : CGn.node(V).Succs)
        W.PredDat[W.CsrFill[S]++] = V;

    while (!W.Worklist.empty()) {
      NodeId V = W.Worklist.back();
      W.Worklist.pop_back();
      for (uint32_t I = W.PredOff[V], E = W.PredOff[V + 1]; I != E; ++I) {
        NodeId P = W.PredDat[I];
        if (W.ReachMark[P] != Epoch) {
          W.ReachMark[P] = Epoch;
          W.Worklist.push_back(P);
        }
      }
    }
  }

  bool reachesDirty(NodeId V) const {
    return W.ReachMark[V] == W.ReachEpoch;
  }

  //===--------------------------------------------------------------------//
  // The correspondence walk (Definitions 7.1-7.3).
  //===--------------------------------------------------------------------//

  /// Walks the correspondence relation of Definition 7.1 from the roots,
  /// collecting widening clashes into W.Clashes (sorted shallow-first in
  /// the canonical BFS order). Pairs certified clash-free by the previous
  /// walk whose Gn cone is untouched are skipped wholesale.
  void clashWalk(bool AllowSkip = true) {
    bool Skip = AllowSkip && HavePrev;
    if (Skip)
      propagateDirty();
    W.WalkSeen.begin();
    W.Pairs.clear();
    W.Edges.clear();
    W.Flags.clear();
    W.Clashes.clear();
    auto PairIndex = [&](NodeId Vo, NodeId Vn) {
      auto [Val, Inserted] =
          W.WalkSeen.insert(Vo, Vn, static_cast<uint32_t>(W.Pairs.size()));
      if (Inserted) {
        W.Pairs.emplace_back(Vo, Vn);
        W.Flags.push_back(0);
      }
      return Val;
    };
    PairIndex(Go.root(), Gn.root());
    for (uint32_t I = 0; I != W.Pairs.size(); ++I) {
      auto [Vo, Vn] = W.Pairs[I];
      if (Skip && W.Clean.find(Vo, Vn) && !reachesDirty(Vn)) {
        // Clash-free last walk, nothing in the cone changed: the re-walk
        // would reproduce exactly no clashes below this pair.
        if (Stats)
          ++Stats->IncrementalSkips;
        continue;
      }
      const TGNode &No = Go.node(Vo);
      const TGNode &Nn = CGn.node(Vn);
      auto Child = [&](NodeId A, NodeId B) {
        uint32_t C = PairIndex(A, B);
        W.Edges.emplace_back(I, C);
      };
      if (No.Kind == NodeKind::Func && Nn.Kind == NodeKind::Func) {
        assert(No.Fn == Nn.Fn && "corresponding functor vertices must agree");
        for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
          Child(No.Succs[J], Nn.Succs[J]);
        continue;
      }
      if (No.Kind != NodeKind::Or || Nn.Kind != NodeKind::Or)
        continue; // leaf pairs carry no information
      bool SameDepth = TopoO.Topo.Depth[Vo] == W.GnTopo.Depth[Vn];
      PfSetId PfO = TopoO.Pf[Vo];
      PfSetId PfN = W.Pf[Vn];
      if (SameDepth && PfO == PfN) {
        // Same pf-set plus sorted successors => positional
        // correspondence. Beware Isolated-Any: both must be plain
        // alternatives.
        if (No.Succs.size() == Nn.Succs.size())
          for (size_t J = 0, E = No.Succs.size(); J != E; ++J)
            Child(No.Succs[J], Nn.Succs[J]);
        continue;
      }
      // Topological clash; keep it if it is a widening clash (Def 7.3).
      if (W.PfSets.isEmpty(PfN))
        continue;
      bool PfClash = PfO != PfN && SameDepth;
      bool DepthClash = TopoO.Topo.Depth[Vo] < W.GnTopo.Depth[Vn];
      if (PfClash || DepthClash) {
        W.Flags[I] |= FlagClash;
        W.Clashes.emplace_back(Vo, Vn);
      }
    }
    // Deterministic processing order: shallow clash vertices first. BFS
    // position order equals the (depth, compacted id) order the historic
    // implementation sorted by — compact() numbers by BFS position.
    std::sort(W.Clashes.begin(), W.Clashes.end(),
              [&](const std::pair<NodeId, NodeId> &A,
                  const std::pair<NodeId, NodeId> &B) {
                if (A.second != B.second)
                  return W.BfsPos[A.second] < W.BfsPos[B.second];
                return A.first < B.first;
              });
    if (Stats && AllowSkip) { // the debug audit walk below must not tick
      ++Stats->ClashWalks;
      Stats->Clashes += W.Clashes.size();
    }
#ifndef NDEBUG
    if (Skip) {
      // Incremental-walk audit: the skip rule must reproduce the full
      // walk's clash list exactly. Snapshot and restore the pair-graph
      // buffers around the full re-walk, so rebuildClean consumes the
      // *incremental* walk's state — debug builds must execute exactly
      // the schedule release builds ship.
      auto SavedPairs = W.Pairs;
      auto SavedEdges = W.Edges;
      auto SavedFlags = W.Flags;
      auto Incremental = W.Clashes;
      clashWalk(/*AllowSkip=*/false);
      assert(Incremental == W.Clashes &&
             "incremental clash re-walk diverged from the full walk");
      W.Pairs = std::move(SavedPairs);
      W.Edges = std::move(SavedEdges);
      W.Flags = std::move(SavedFlags);
      W.Clashes = std::move(Incremental);
    }
#endif
    HavePrev = true;
  }

  /// Rebuilds the clean-cone table from the walk just performed: a pair
  /// is clean iff no clash pair is reachable from it in the pair graph.
  void rebuildClean() {
    uint32_t P = static_cast<uint32_t>(W.Pairs.size());
    // Reverse CSR over the pair graph (edge target -> sources).
    W.PredOff.assign(P + 1, 0);
    for (const auto &[From, To] : W.Edges)
      ++W.PredOff[To + 1];
    for (uint32_t I = 0; I != P; ++I)
      W.PredOff[I + 1] += W.PredOff[I];
    W.PredDat.resize(W.PredOff[P]);
    W.CsrFill.assign(W.PredOff.begin(), W.PredOff.end() - 1);
    for (const auto &[From, To] : W.Edges)
      W.PredDat[W.CsrFill[To]++] = From;
    W.PairWork.clear();
    for (uint32_t I = 0; I != P; ++I)
      if (W.Flags[I] & FlagClash) {
        W.Flags[I] |= FlagReachClash;
        W.PairWork.push_back(I);
      }
    while (!W.PairWork.empty()) {
      uint32_t I = W.PairWork.back();
      W.PairWork.pop_back();
      for (uint32_t J = W.PredOff[I], E = W.PredOff[I + 1]; J != E; ++J) {
        uint32_t Pred = W.PredDat[J];
        if (!(W.Flags[Pred] & FlagReachClash)) {
          W.Flags[Pred] |= FlagReachClash;
          W.PairWork.push_back(Pred);
        }
      }
    }
    W.Clean.begin();
    for (uint32_t I = 0; I != P; ++I)
      if (!(W.Flags[I] & FlagReachClash))
        W.Clean.insert(W.Pairs[I].first, W.Pairs[I].second);
  }

  //===--------------------------------------------------------------------//
  // The transform rules (Definitions 7.4 and 7.5).
  //===--------------------------------------------------------------------//

  /// Cycle introduction rule (Definition 7.4).
  bool cycleIntroduction() {
    for (auto [Vo, Vn] : W.Clashes) {
      if (Vn == Gn.root())
        continue; // no incoming edge to redirect
      PfSetId PfN = W.Pf[Vn];
      for (NodeId Va = W.OrAnc[Vn]; Va != InvalidNode; Va = W.OrAnc[Va]) {
        if (TopoO.Topo.Depth[Vo] < W.GnTopo.Depth[Va])
          continue;
        if (!W.PfSets.subsetOf(PfN, W.Pf[Va]))
          continue;
        if (!vertexIncludes(Gn, Va, Gn, Vn, Syms, &W))
          continue;
        // Redirect the tree edge (parent(Vn), Vn) to Va.
        NodeId Parent = W.GnTopo.Parent[Vn];
        for (NodeId &S : Gn.node(Parent).Succs)
          if (S == Vn)
            S = Va;
        W.DirtyStruct.clear();
        W.DirtyStruct.push_back(Parent);
        if (Stats)
          ++Stats->CycleIntroductions;
        return true;
      }
    }
    return false;
  }

  /// Replacement rule (Definition 7.5).
  bool replacement() {
    // Size of the current graph (reachable vertices + edges): the rule
    // only fires on a strict decrease (Figure 7). The topology is
    // current, so this is a pass over BfsOrder, not a fresh BFS.
    uint64_t OldSize = 0;
    for (NodeId V : W.GnTopo.BfsOrder)
      OldSize += 1 + CGn.node(V).Succs.size();

    for (auto [Vo, Vn] : W.Clashes) {
      PfSetId PfN = W.Pf[Vn];
      bool DepthClash = TopoO.Topo.Depth[Vo] < W.GnTopo.Depth[Vn];
      for (NodeId Va = W.OrAnc[Vn]; Va != InvalidNode; Va = W.OrAnc[Va]) {
        if (TopoO.Topo.Depth[Vo] < W.GnTopo.Depth[Va])
          continue;
        if (vertexIncludes(Gn, Va, Gn, Vn, Syms, &W))
          continue; // cycle introduction territory, already failed on pf
        if (!W.PfSets.subsetOf(PfN, W.Pf[Va]) && !DepthClash)
          continue;
        // The conclusion's extension: prefer a type from the database
        // that covers both clash vertices, if it shrinks the graph.
        if (Opts.Database) {
          const TypeGraph *Best = nullptr;
          for (const TypeGraph &D : *Opts.Database) {
            if (!vertexIncludes(D, D.root(), Gn, Va, Syms, &W) ||
                !vertexIncludes(D, D.root(), Gn, Vn, Syms, &W))
              continue;
            if (!Best || D.sizeMetric() < Best->sizeMetric())
              Best = &D;
          }
          if (Best && sizeWithRedirect(Va, *Best) < OldSize) {
            commitReplace(Va, *Best);
            if (Stats) {
              ++Stats->Replacements;
              ++Stats->DatabaseHits;
            }
            return true;
          }
        }
        // Replace Va by an upper bound of Va and Vn, computed with the
        // collapsing union (the paper's growth-avoiding union variant);
        // fall back to Any. Either must strictly decrease the size of
        // the graph (Figure 7).
        W.StartBuf.assign({Va, Vn});
        TypeGraph Rep =
            collapsingUnionFrom(Gn, W.StartBuf, Syms, Opts.Norm, NScratch);
        if (sizeWithRedirect(Va, Rep) < OldSize) {
          commitReplace(Va, Rep);
          if (Stats)
            ++Stats->Replacements;
          return true;
        }
        TypeGraph AnyRep = TypeGraph::makeAny();
        if (sizeWithRedirect(Va, AnyRep) < OldSize) {
          commitReplace(Va, AnyRep);
          if (Stats)
            ++Stats->Replacements;
          return true;
        }
        // Cannot shrink here; try the next ancestor / clash.
      }
    }
    return false;
  }

  /// Size of the graph graftReplace(Gn, Va, Rep) would have, without
  /// building it: a BFS over Gn with every edge into Va read as an edge
  /// onto Rep's root (Rep ids offset past Gn's).
  uint64_t sizeWithRedirect(NodeId Va, const TypeGraph &Rep) {
    uint32_t N = Gn.numNodes();
    uint64_t Epoch = W.beginNodeEpoch(size_t(N) + Rep.numNodes());
    W.Worklist.clear();
    auto Push = [&](NodeId X) {
      if (W.NodeMark[X] != Epoch) {
        W.NodeMark[X] = Epoch;
        W.Worklist.push_back(X);
      }
    };
    Push(Gn.root() == Va ? N + Rep.root() : Gn.root());
    uint64_t Size = 0;
    while (!W.Worklist.empty()) {
      NodeId X = W.Worklist.back();
      W.Worklist.pop_back();
      const TGNode &Nd = X < N ? CGn.node(X) : Rep.node(X - N);
      Size += 1 + Nd.Succs.size();
      if (X < N) {
        for (NodeId S : Nd.Succs)
          Push(S == Va ? N + Rep.root() : S);
      } else {
        for (NodeId S : Nd.Succs)
          Push(N + S);
      }
    }
    return Size;
  }

  /// Commits the replacement in place: append a copy of Rep, redirect
  /// every edge into Va (and the root, if Va is the root) onto it. The
  /// orphaned subtree stays as garbage until the final compaction —
  /// surviving vertices keep their ids, which is what lets the next
  /// clash walk run incrementally.
  void commitReplace(NodeId Va, const TypeGraph &Rep) {
    uint32_t Old = Gn.numNodes();
    NodeId RepRoot = copySubgraph(Rep, Rep.root(), Gn);
    W.DirtyStruct.clear();
    if (Va == Gn.root()) {
      Gn.setRoot(RepRoot);
      // Everything moved; the next walk starts from scratch.
      HavePrev = false;
      return;
    }
    for (NodeId V = 0; V != Old; ++V) {
      bool Touched = false;
      for (NodeId &S : Gn.node(V).Succs)
        if (S == Va) {
          S = RepRoot;
          Touched = true;
        }
      if (Touched)
        W.DirtyStruct.push_back(V);
    }
  }

  const TypeGraph &Go;
  TypeGraph &Gn;
  /// Read-only alias of Gn: pure reads must resolve to the const
  /// node() overload, which neither drops the derived caches nor runs
  /// the copy-on-write ownership check.
  const TypeGraph &CGn;
  const SymbolTable &Syms;
  const WideningOptions &Opts;
  WideningStats *Stats;
  NormalizeScratch *NScratch;
  WideningScratch &W;
  const TypeGraph::TopoCache &TopoO;
  bool HavePrev = false;
};

/// Shared implementation: \p CheckInclusion is false when the caller has
/// already refuted Gnew <= Gold (detail::graphWidenNotIncluded).
static TypeGraph widenImpl(const TypeGraph &Gold, const TypeGraph &Gnew,
                           const SymbolTable &Syms,
                           const WideningOptions &Opts,
                           WideningStats *Stats, NormalizeScratch *Scratch,
                           WideningScratch *WS, bool CheckInclusion) {
  WideningScratch &W = gaia::detail::wideningScratchOr(WS);
  if (Stats)
    ++Stats->Invocations;
  if (CheckInclusion && graphIncludes(Gold, Gnew, Syms, &W))
    return Gold;
  if (Opts.Mode == WidenMode::DepthK) {
    // Baseline strategy: truncate the union at DepthK or-levels. This
    // is what the paper's widening is measured against.
    NormalizeOptions Truncate = Opts.Norm;
    Truncate.MaxDepth = Opts.DepthK;
    TypeGraph U = graphUnion(Gold, Gnew, Syms, Opts.Norm, Scratch);
    return normalizeGraph(U, Syms, Truncate, Scratch);
  }
  if (Gold.isBottomGraph())
    return normalizeGraph(Gnew, Syms, Opts.Norm, Scratch);
  TypeGraph Gn = graphUnion(Gold, Gnew, Syms, Opts.Norm, Scratch);

  WidenRun Run(Gold, Gn, Syms, Opts, Stats, Scratch, W);
  uint32_t Transforms = 0;
  if (Opts.Cancel)
    Opts.Cancel->poll();
  while (Run.applyOneTransform()) {
    if (Opts.Cancel)
      Opts.Cancel->poll();
    ++Transforms;
    if (Transforms > Opts.MaxTransforms) {
      // Defensive budget exhausted. The paper proves the transformation
      // loop terminates; if an implementation bug (or an adversarial
      // input) breaks that proof, collapsing to Any is the only sound
      // answer that also guarantees the widening chain stays finite.
      // This must work in release builds: the previous assert compiled
      // away under NDEBUG and silently returned a possibly ever-growing
      // graph, breaking the engine's termination argument.
      if (Stats)
        ++Stats->BudgetExhaustions;
      return TypeGraph::makeAny();
    }
  }
  // Cycle introduction can make previously distinct vertices
  // language-equivalent; re-normalize (exactly language-preserving) so
  // results stay minimal and canonical. This is also where the garbage
  // the in-place transforms left behind is dropped.
  if (Transforms != 0)
    Gn = normalizeGraph(Gn, Syms, Opts.Norm, Scratch);
#ifndef NDEBUG
  assert(graphIncludes(Gn, Gold, Syms, &W) &&
         "widening must include old graph");
  assert(graphIncludes(Gn, Gnew, Syms, &W) &&
         "widening must include new graph");
#endif
  return Gn;
}

} // namespace

TypeGraph gaia::graphWiden(const TypeGraph &Gold, const TypeGraph &Gnew,
                           const SymbolTable &Syms,
                           const WideningOptions &Opts,
                           WideningStats *Stats, NormalizeScratch *Scratch,
                           WideningScratch *WS) {
  return widenImpl(Gold, Gnew, Syms, Opts, Stats, Scratch, WS,
                   /*CheckInclusion=*/true);
}

TypeGraph gaia::detail::graphWidenNotIncluded(
    const TypeGraph &Gold, const TypeGraph &Gnew, const SymbolTable &Syms,
    const WideningOptions &Opts, WideningStats *Stats,
    NormalizeScratch *Scratch, WideningScratch *WS) {
  assert(!graphIncludes(Gold, Gnew, Syms, WS) &&
         "caller promised the inclusion check was already refuted");
  return widenImpl(Gold, Gnew, Syms, Opts, Stats, Scratch, WS,
                   /*CheckInclusion=*/false);
}

TypeGraph gaia::detail::graftReplace(const TypeGraph &G, NodeId Va,
                                     const TypeGraph &Rep,
                                     const TypeGraph::Topology &Topo) {
  return graftReplaceImpl(G, Va, Rep, Topo);
}
