//===- typegraph/GraphOps.cpp ----------------------------------------------=//

#include "typegraph/GraphOps.h"

#include "support/Debug.h"
#include "support/Hashing.h"
#include "support/SmallVector.h"

#include <unordered_map>
#include <unordered_set>

using namespace gaia;

namespace {

/// Leaf/functor constituents of a vertex position, looking through nested
/// or-vertices. On normalized graphs this is just the successor list of an
/// or-vertex (Flip-Flop forbids or-or edges, so the seen-set stays tiny),
/// but the helper is robust to raw product output too. Inline storage:
/// no heap traffic on the normalized fast path.
struct Constituents {
  bool IsAny = false;
  bool HasInt = false;
  SmallVector<NodeId, 8> Funcs;
};

static Constituents constituentsOf(const TypeGraph &G, NodeId V) {
  Constituents C;
  SmallVector<NodeId, 8> Stack{V};
  SmallVector<NodeId, 8> SeenOr;
  while (!Stack.empty()) {
    NodeId X = Stack.back();
    Stack.pop_back();
    const TGNode &N = G.node(X);
    switch (N.Kind) {
    case NodeKind::Any:
      C.IsAny = true;
      break;
    case NodeKind::Int:
      C.HasInt = true;
      break;
    case NodeKind::Func:
      C.Funcs.push_back(X);
      break;
    case NodeKind::Or:
      if (std::find(SeenOr.begin(), SeenOr.end(), X) == SeenOr.end()) {
        SeenOr.push_back(X);
        for (NodeId S : N.Succs)
          Stack.push_back(S);
      }
      break;
    }
  }
  return C;
}

/// Inclusion check over the product of reachable position pairs. On
/// normalized (deterministic, pruned) graphs the local condition at every
/// reachable pair is necessary and sufficient: every vertex is productive,
/// so a local failure always has a concrete term witness. The visited set
/// is the scratch's epoch-marked pair table: a warm check allocates
/// nothing.
class InclusionChecker {
public:
  InclusionChecker(const TypeGraph &G1, const TypeGraph &G2,
                   const SymbolTable &Syms, PairTable &Visited)
      : G1(G1), G2(G2), Syms(Syms), Visited(Visited) {
    Visited.begin();
  }

  bool check(NodeId V1, NodeId V2) {
    if (!Visited.insert(V1, V2).second)
      return true;
    Constituents C1 = constituentsOf(G1, V1);
    Constituents C2 = constituentsOf(G2, V2);
    if (C2.IsAny)
      return true;
    if (C1.IsAny)
      return false;
    if (C1.HasInt && !C2.HasInt)
      return false;
    for (NodeId F1 : C1.Funcs) {
      FunctorId Fn = G1.node(F1).Fn;
      if (C2.HasInt && Syms.isIntegerLiteral(Fn))
        continue;
      NodeId Match = InvalidNode;
      for (NodeId F2 : C2.Funcs)
        if (G2.node(F2).Fn == Fn) {
          Match = F2;
          break;
        }
      if (Match == InvalidNode)
        return false;
      const TGNode &N1 = G1.node(F1);
      const TGNode &N2 = G2.node(Match);
      assert(N1.Succs.size() == N2.Succs.size() && "arity mismatch");
      for (size_t J = 0, E = N1.Succs.size(); J != E; ++J)
        if (!check(N1.Succs[J], N2.Succs[J]))
          return false;
    }
    return true;
  }

private:
  const TypeGraph &G1;
  const TypeGraph &G2;
  const SymbolTable &Syms;
  PairTable &Visited;
};

} // namespace

WideningScratch &gaia::detail::wideningScratchOr(WideningScratch *WS) {
  static thread_local WideningScratch TLS;
  return WS ? *WS : TLS;
}

bool gaia::graphIncludes(const TypeGraph &G2, const TypeGraph &G1,
                         const SymbolTable &Syms, WideningScratch *WS) {
  if (G1.isBottomGraph())
    return true;
  if (G2.isBottomGraph())
    return false;
  InclusionChecker C(G1, G2, Syms, detail::wideningScratchOr(WS).Incl);
  return C.check(G1.root(), G2.root());
}

bool gaia::vertexIncludes(const TypeGraph &G2, NodeId V2, const TypeGraph &G1,
                          NodeId V1, const SymbolTable &Syms,
                          WideningScratch *WS) {
  InclusionChecker C(G1, G2, Syms, detail::wideningScratchOr(WS).Incl);
  return C.check(V1, V2);
}

bool gaia::graphEquals(const TypeGraph &A, const TypeGraph &B,
                       const SymbolTable &Syms, WideningScratch *WS) {
  return graphIncludes(A, B, Syms, WS) && graphIncludes(B, A, Syms, WS);
}

NodeId gaia::copySubgraph(const TypeGraph &From, NodeId V, TypeGraph &Out) {
  // Iterative two-phase copy: create all reachable nodes, then wire
  // edges. Ids are dense, so the memo is a flat remap array instead of a
  // hash map. Reserving the source size up front (an upper bound on the
  // reachable part) keeps the node vector from reallocating mid-copy.
  Out.reserveNodes(Out.numNodes() + From.numNodes());
  std::vector<NodeId> Remap(From.numNodes(), InvalidNode);
  SmallVector<NodeId, 16> Order;
  SmallVector<NodeId, 16> Stack{V};
  while (!Stack.empty()) {
    NodeId X = Stack.back();
    Stack.pop_back();
    if (Remap[X] != InvalidNode)
      continue;
    const TGNode &N = From.node(X);
    NodeId Copy = InvalidNode;
    switch (N.Kind) {
    case NodeKind::Any:
      Copy = Out.addAny();
      break;
    case NodeKind::Int:
      Copy = Out.addInt();
      break;
    case NodeKind::Func:
      Copy = Out.addFunc(N.Fn, {});
      break;
    case NodeKind::Or:
      Copy = Out.addOr({});
      break;
    }
    Remap[X] = Copy;
    Order.push_back(X);
    for (NodeId S : N.Succs)
      Stack.push_back(S);
  }
  for (NodeId X : Order) {
    SuccList Succs;
    Succs.reserve(From.node(X).Succs.size());
    for (NodeId S : From.node(X).Succs)
      Succs.push_back(Remap[S]);
    Out.node(Remap[X]).Succs = std::move(Succs);
  }
  return Remap[V];
}

namespace {

/// Product construction for intersection. The product memo is the
/// scratch's epoch-marked pair table.
class Intersector {
public:
  Intersector(const TypeGraph &G1, const TypeGraph &G2,
              const SymbolTable &Syms, PairTable &Memo)
      : G1(G1), G2(G2), Syms(Syms), Memo(Memo) {
    Memo.begin();
  }

  NodeId intersect(NodeId V1, NodeId V2) {
    if (const uint32_t *Hit = Memo.find(V1, V2))
      return *Hit;
    NodeId Or = Out.addOr({});
    Memo.insert(V1, V2, Or);

    Constituents C1 = constituentsOf(G1, V1);
    Constituents C2 = constituentsOf(G2, V2);
    SuccList Children;
    if (C1.IsAny) {
      appendCopyOfConstituents(C2, G2, Children);
    } else if (C2.IsAny) {
      appendCopyOfConstituents(C1, G1, Children);
    } else {
      if (C1.HasInt && C2.HasInt)
        Children.push_back(Out.addInt());
      if (C1.HasInt)
        for (NodeId F2 : C2.Funcs)
          if (Syms.isIntegerLiteral(G2.node(F2).Fn))
            Children.push_back(Out.addFunc(G2.node(F2).Fn, {}));
      if (C2.HasInt)
        for (NodeId F1 : C1.Funcs)
          if (Syms.isIntegerLiteral(G1.node(F1).Fn))
            Children.push_back(Out.addFunc(G1.node(F1).Fn, {}));
      for (NodeId F1 : C1.Funcs)
        for (NodeId F2 : C2.Funcs) {
          const TGNode &N1 = G1.node(F1);
          const TGNode &N2 = G2.node(F2);
          if (N1.Fn != N2.Fn)
            continue;
          SuccList Args;
          Args.reserve(N1.Succs.size());
          for (size_t J = 0, E = N1.Succs.size(); J != E; ++J)
            Args.push_back(intersect(N1.Succs[J], N2.Succs[J]));
          Children.push_back(Out.addFunc(N1.Fn, std::move(Args)));
        }
    }
    Out.node(Or).Succs = std::move(Children);
    return Or;
  }

  TypeGraph take(NodeId Root) {
    Out.setRoot(Root);
    return std::move(Out);
  }

private:
  void appendCopyOfConstituents(const Constituents &C, const TypeGraph &Src,
                                SuccList &Children) {
    if (C.IsAny) {
      Children.push_back(Out.addAny());
      return;
    }
    if (C.HasInt)
      Children.push_back(Out.addInt());
    for (NodeId F : C.Funcs)
      Children.push_back(copySubgraph(Src, F, Out));
  }

  const TypeGraph &G1;
  const TypeGraph &G2;
  const SymbolTable &Syms;
  TypeGraph Out;
  PairTable &Memo;
};

} // namespace

TypeGraph gaia::graphIntersect(const TypeGraph &G1, const TypeGraph &G2,
                               const SymbolTable &Syms,
                               const NormalizeOptions &Opts,
                               NormalizeScratch *Scratch,
                               WideningScratch *WS) {
  if (G1.isBottomGraph() || G2.isBottomGraph())
    return TypeGraph::makeBottom();
  Intersector I(G1, G2, Syms, detail::wideningScratchOr(WS).ProductMemo);
  NodeId Root = I.intersect(G1.root(), G2.root());
  TypeGraph Raw = I.take(Root);
  return normalizeGraph(Raw, Syms, Opts, Scratch);
}

TypeGraph gaia::graphUnion(const TypeGraph &G1, const TypeGraph &G2,
                           const SymbolTable &Syms,
                           const NormalizeOptions &Opts,
                           NormalizeScratch *Scratch) {
  if (G1.isBottomGraph())
    return normalizeGraph(G2, Syms, Opts, Scratch);
  if (G2.isBottomGraph())
    return normalizeGraph(G1, Syms, Opts, Scratch);
  TypeGraph Out;
  Out.reserveNodes(G1.numNodes() + G2.numNodes() + 1);
  NodeId R1 = copySubgraph(G1, G1.root(), Out);
  NodeId R2 = copySubgraph(G2, G2.root(), Out);
  Out.setRoot(Out.addOr({R1, R2}));
  return normalizeGraph(Out, Syms, Opts, Scratch);
}

bool gaia::graphRestrict(const TypeGraph &V, FunctorId Fn,
                         const SymbolTable &Syms,
                         const NormalizeOptions &Opts,
                         std::vector<TypeGraph> &ArgsOut,
                         NormalizeScratch *Scratch) {
  uint32_t Arity = Syms.functorArity(Fn);
  ArgsOut.clear();
  if (V.isBottomGraph())
    return false;
  const TGNode &Root = V.node(V.root());
  // Scan the root or-vertex's alternatives.
  for (NodeId S : Root.Succs) {
    const TGNode &N = V.node(S);
    if (N.Kind == NodeKind::Any) {
      // Any admits every functor with Any arguments.
      for (uint32_t I = 0; I != Arity; ++I)
        ArgsOut.push_back(TypeGraph::makeAny());
      return true;
    }
    if (N.Kind == NodeKind::Int) {
      if (Syms.isIntegerLiteral(Fn))
        return true; // literal below Int; no arguments
      continue;
    }
    if (N.Kind == NodeKind::Func && N.Fn == Fn) {
      for (NodeId ArgOr : N.Succs)
        ArgsOut.push_back(normalizeFrom(V, {ArgOr}, Syms, Opts, Scratch));
      return true;
    }
  }
  return false;
}

TypeGraph gaia::graphConstruct(FunctorId Fn,
                               const std::vector<TypeGraph> &Args,
                               const SymbolTable &Syms,
                               const NormalizeOptions &Opts,
                               NormalizeScratch *Scratch) {
  assert(Syms.functorArity(Fn) == Args.size() && "arity mismatch");
  TypeGraph G;
  SuccList ArgOrs;
  ArgOrs.reserve(Args.size());
  bool AnyArgBottom = false;
  for (const TypeGraph &A : Args) {
    if (A.isBottomGraph())
      AnyArgBottom = true;
    ArgOrs.push_back(copySubgraph(A, A.root(), G));
  }
  if (AnyArgBottom)
    return TypeGraph::makeBottom();
  NodeId F = G.addFunc(Fn, std::move(ArgOrs));
  G.setRoot(G.addOr({F}));
  return normalizeGraph(G, Syms, Opts, Scratch);
}
