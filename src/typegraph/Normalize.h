//===- typegraph/Normalize.h - Restore the cosmetic restrictions ----------==//
///
/// \file
/// Normalization re-establishes the paper's graph restrictions after a
/// product construction (union, intersection) or any other surgery:
///
///   1. *Determinize*: a subset construction over or-closures merges
///      same-functor alternatives, enforcing the Principal-Functor
///      restriction, Isolated-Any, and Int absorption of integer
///      literals. Unproductive (empty-denotation) states are pruned.
///   2. *Unfold*: the deterministic automaton is unfolded into a tree
///      whose only non-tree edges point back to or-vertices on the
///      current root path — exactly Flip-Flop + Or-Cycle + No-Sharing.
///
/// The or-degree cap of Section 9 ("the algorithms are then generalized
/// to replace an or-vertex with too many successors by an any-vertex")
/// is applied during determinization.
///
/// The pipeline is engineered to be allocation-light: the entry points
/// accept a caller-owned NormalizeScratch whose buffers (epoch-marked
/// visited sets, closure stacks, the partition-refinement tables of the
/// minimizer) are reused across calls instead of reallocated, and
/// results carry a normalization certificate (TypeGraph::markNormalized)
/// so re-normalizing an already-canonical graph is a copy.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_NORMALIZE_H
#define GAIA_TYPEGRAPH_NORMALIZE_H

#include "support/Hashing.h"
#include "typegraph/TypeGraph.h"

#include <unordered_map>

namespace gaia {

class CancelSignal; // support/Cancellation.h

/// Tuning knobs for normalization. OrCap = 0 means "unbounded" (the
/// paper's default configuration); 5 and 2 reproduce Table 3's capped
/// rows. MaxNodes is a defensive bound on unfolding: beyond it the
/// remaining structure collapses to Any (a sound over-approximation).
struct NormalizeOptions {
  uint32_t OrCap = 0;
  uint32_t MaxNodes = 100000;
  /// Depth bound (0 = unlimited): or-vertices deeper than this many
  /// or-levels collapse to Any. This is NOT used by the paper's system;
  /// it implements the classic depth-k abstraction used as the
  /// alternative-baseline widening in bench/widening_ablation (Section 7
  /// contrasts the paper's widening against finite-subdomain approaches
  /// of this kind).
  uint32_t MaxDepth = 0;
  /// Optional cooperative stop condition (support/Cancellation.h),
  /// polled inside the subset-construction worklist and the minimizer's
  /// refinement rounds. The engine's per-round checkpoints bound the
  /// fixpoint loops, but one normalization of a blown-up graph can burn
  /// an entire deadline between two such checkpoints — these are the
  /// inner poll points that close that gap. Not part of the
  /// normalization certificate: cancellation never changes a produced
  /// result, it only decides whether one is produced. The pointee must
  /// outlive every normalization run under these options (the analyzer
  /// arms it per job; warm-up and ad-hoc callers leave it null).
  const CancelSignal *Cancel = nullptr;
};

/// Reusable buffers for the normalization pipeline and the graph
/// operations built on it. One instance per analysis (owned by the
/// operation cache / leaf context); passing nullptr to the entry points
/// falls back to a thread-local instance, so ad-hoc callers (tests,
/// examples) stay allocation-correct without owning one. Not re-entrant
/// across threads; the epoch discipline makes it re-entrant across
/// sequential uses within one normalization (each traversal opens a
/// fresh epoch).
class NormalizeScratch {
public:
  /// Opens a new visited-epoch over \p NumNodes node ids and returns the
  /// epoch tag; `mark`/`marked` then cost one array access each.
  uint64_t beginEpoch(uint32_t NumNodes) {
    if (SeenMark.size() < NumNodes)
      SeenMark.resize(NumNodes, 0);
    return ++Epoch;
  }
  bool marked(NodeId V) const { return SeenMark[V] == Epoch; }
  void mark(NodeId V) { SeenMark[V] = Epoch; }

  /// DFS stack shared by the non-reentrant leaf traversals (or-closure
  /// expansion, constituent scans, subgraph copies).
  std::vector<NodeId> Stack;
  /// Closure-key assembly buffer (closureKey output before dedup-copy).
  std::vector<NodeId> KeyBuf;
  /// Minimizer: signature buffer and the two partition tables, reused so
  /// the bucket arrays survive across calls. Transparent (U64View)
  /// lookups: a state whose signature block already exists costs a probe,
  /// not a vector materialization.
  std::unordered_map<std::vector<uint64_t>, uint32_t, U64VectorHash,
                     U64VectorEq>
      Blocks;
  std::unordered_map<std::vector<uint64_t>, uint32_t, U64VectorHash,
                     U64VectorEq>
      NextBlocks;
  std::vector<uint64_t> SigBuf;

private:
  std::vector<uint64_t> SeenMark;
  uint64_t Epoch = 0;
};

/// Returns an equivalent (or minimally over-approximated, if a cap fires)
/// graph satisfying all restrictions, rooted at \p G's root. If \p G
/// carries a normalization certificate for \p Opts the call is a copy.
TypeGraph normalizeGraph(const TypeGraph &G, const SymbolTable &Syms,
                         const NormalizeOptions &Opts = {},
                         NormalizeScratch *Scratch = nullptr);

/// Normalizes the union of the denotations of \p Start inside \p G into a
/// fresh self-contained graph. This is the workhorse behind subgraph
/// extraction (leaf-domain restriction) and the replacement rule of the
/// widening operator.
TypeGraph normalizeFrom(const TypeGraph &G, const std::vector<NodeId> &Start,
                        const SymbolTable &Syms,
                        const NormalizeOptions &Opts = {},
                        NormalizeScratch *Scratch = nullptr);

/// The minimal deterministic automaton equivalent to a graph. Unlike the
/// graph itself (bound by No-Sharing), automaton states are shared, so
/// this is the natural structure for displaying results as tree grammars
/// the way the paper does.
struct GrammarAutomaton {
  struct State {
    bool IsAny = false;
    bool HasInt = false;
    std::vector<std::pair<FunctorId, std::vector<uint32_t>>> Trans;
  };
  std::vector<State> States; ///< only reachable, productive states
  uint32_t Root = 0;
  bool Empty = false; ///< graph denotes the empty set
};

/// Determinizes, prunes and minimizes \p G into its canonical automaton.
GrammarAutomaton buildAutomaton(const TypeGraph &G, const SymbolTable &Syms,
                                NormalizeScratch *Scratch = nullptr);

/// The "variant of the union operation which avoids creating or-vertices
/// which would lead to a growth in size" (Section 7.2.2), used by the
/// widening's replacement rule. Like normalizeFrom, but the subset
/// construction collapses a state into any ancestor state whose
/// constituent set covers it, over-approximating the union while tying
/// recursion into cycles. The result includes the denotations of all
/// \p Start vertices and is usually much smaller than the exact union.
TypeGraph collapsingUnionFrom(const TypeGraph &G,
                              const std::vector<NodeId> &Start,
                              const SymbolTable &Syms,
                              const NormalizeOptions &Opts = {},
                              NormalizeScratch *Scratch = nullptr);

} // namespace gaia

#endif // GAIA_TYPEGRAPH_NORMALIZE_H
