//===- typegraph/OpCache.cpp -----------------------------------------------=//

#include "typegraph/OpCache.h"

#include "typegraph/GraphOps.h"

#include <algorithm>

using namespace gaia;

bool OpCache::includes(const TypeGraph &Big, const TypeGraph &Small) {
  CanonId B = Interned.intern(Big);
  CanonId S = Interned.intern(Small);
  if (B == S)
    return true; // same language
  auto Key = std::make_pair(B, S);
  if (Shared) {
    auto It = Shared->Incl.find(Key);
    if (It != Shared->Incl.end()) {
      ++St.SharedHits;
      return It->second != 0;
    }
  }
  auto It = Incl.find(Key);
  if (It != Incl.end()) {
    ++St.Hits;
    return It->second != 0;
  }
  ++St.Misses;
  bool Result = graphIncludes(Interned.graph(B), Interned.graph(S), Syms);
  Incl.emplace(Key, Result ? 1 : 0);
  return Result;
}

TypeGraph OpCache::unionOf(const TypeGraph &A, const TypeGraph &B) {
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Union.find(Key);
    if (It != Shared->Union.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Union.find(Key);
  if (It != Union.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  CanonId R = Interned.intern(graphUnion(Interned.graph(IA),
                                         Interned.graph(IB), Syms, Norm,
                                         &Scratch));
  Union.emplace(Key, R);
  return Interned.graph(R);
}

TypeGraph OpCache::intersectOf(const TypeGraph &A, const TypeGraph &B) {
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Inter.find(Key);
    if (It != Shared->Inter.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Inter.find(Key);
  if (It != Inter.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  CanonId R = Interned.intern(graphIntersect(Interned.graph(IA),
                                             Interned.graph(IB), Syms, Norm,
                                             &Scratch));
  Inter.emplace(Key, R);
  return Interned.graph(R);
}

TypeGraph OpCache::widenOf(const TypeGraph &Old, const TypeGraph &New,
                           const WideningOptions &Opts,
                           WideningStats *WStats) {
  CanonId IO = Interned.intern(Old);
  CanonId IN = Interned.intern(New);
  auto Key = std::make_pair(IO, IN); // widening is not commutative
  if (Shared) {
    auto It = Shared->Widen.find(Key);
    if (It != Shared->Widen.end()) {
      ++St.SharedHits;
      if (WStats)
        ++WStats->CacheHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Widen.find(Key);
  if (It != Widen.end()) {
    ++St.Hits;
    if (WStats)
      ++WStats->CacheHits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  CanonId R = Interned.intern(graphWiden(Interned.graph(IO),
                                         Interned.graph(IN), Syms, Opts,
                                         WStats, &Scratch));
  Widen.emplace(Key, R);
  return Interned.graph(R);
}

bool OpCache::restrictOf(const TypeGraph &V, FunctorId Fn,
                         std::vector<TypeGraph> &ArgsOut) {
  CanonId Id = Interned.intern(V);
  auto Key = std::make_pair(Id, static_cast<uint32_t>(Fn));
  auto Unpack = [&](const RestrictMemo &M) {
    ArgsOut.clear();
    for (CanonId A : M.Args)
      ArgsOut.push_back(Interned.graph(A));
    return M.Ok;
  };
  if (Shared) {
    auto It = Shared->Restrict.find(Key);
    if (It != Shared->Restrict.end()) {
      ++St.SharedHits;
      return Unpack(It->second);
    }
  }
  auto It = Restrict.find(Key);
  if (It != Restrict.end()) {
    ++St.Hits;
    return Unpack(It->second);
  }
  ++St.Misses;
  RestrictMemo R;
  R.Ok = graphRestrict(Interned.graph(Id), Fn, Syms, Norm, ArgsOut,
                       &Scratch);
  for (const TypeGraph &A : ArgsOut)
    R.Args.push_back(Interned.intern(A));
  // Hand back the canonical representatives: they carry their interner
  // caches, so downstream operations on these values intern in O(1).
  bool Ok = Unpack(R);
  Restrict.emplace(Key, std::move(R));
  return Ok;
}

TypeGraph OpCache::constructOf(FunctorId Fn,
                               const std::vector<TypeGraph> &Args) {
  std::vector<uint32_t> Key;
  Key.reserve(Args.size() + 1);
  Key.push_back(Fn);
  for (const TypeGraph &A : Args)
    Key.push_back(Interned.intern(A));
  if (Shared) {
    auto It = Shared->Construct.find(Key);
    if (It != Shared->Construct.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Construct.find(Key);
  if (It != Construct.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  CanonId R =
      Interned.intern(graphConstruct(Fn, Args, Syms, Norm, &Scratch));
  Construct.emplace(std::move(Key), R);
  return Interned.graph(R);
}

std::shared_ptr<const FrozenOpTier> OpCache::freeze() const {
  auto T = std::make_shared<FrozenOpTier>();
  T->Intern = Interned.freeze();
  T->Norm = Norm;
  // Merge: the shared tier's results first, then the private delta. Keys
  // never conflict on semantics (both tiers record the same pure
  // function of the operand languages), so emplace's keep-first policy
  // is immaterial.
  if (Shared) {
    T->Incl = Shared->Incl;
    T->Union = Shared->Union;
    T->Inter = Shared->Inter;
    T->Widen = Shared->Widen;
    T->Restrict = Shared->Restrict;
    T->Construct = Shared->Construct;
  }
  T->Incl.insert(Incl.begin(), Incl.end());
  T->Union.insert(Union.begin(), Union.end());
  T->Inter.insert(Inter.begin(), Inter.end());
  T->Widen.insert(Widen.begin(), Widen.end());
  T->Restrict.insert(Restrict.begin(), Restrict.end());
  T->Construct.insert(Construct.begin(), Construct.end());
  return T;
}
