//===- typegraph/OpCache.cpp -----------------------------------------------=//

#include "typegraph/OpCache.h"

#include "support/FaultInject.h"
#include "typegraph/GraphOps.h"

#include <algorithm>
#include <utility>

using namespace gaia;

bool OpCache::includes(const TypeGraph &Big, const TypeGraph &Small) {
  GAIA_FAULT_POINT(OpCacheLookup);
  CanonId B = Interned.intern(Big);
  CanonId S = Interned.intern(Small);
  if (B == S)
    return true; // same language
  auto Key = std::make_pair(B, S);
  if (Shared) {
    auto It = Shared->Incl.find(Key);
    if (It != Shared->Incl.end()) {
      ++St.SharedHits;
      return It->second != 0;
    }
  }
  auto It = Incl.find(Key);
  if (It != Incl.end()) {
    ++St.Hits;
    ++It->second.Hits;
    return It->second.Value != 0;
  }
  ++St.Misses;
  bool Result =
      graphIncludes(Interned.graph(B), Interned.graph(S), Syms, &WScratch);
  Incl.emplace(Key, Counted<uint8_t>{uint8_t(Result ? 1 : 0)});
  return Result;
}

TypeGraph OpCache::unionOf(const TypeGraph &A, const TypeGraph &B) {
  GAIA_FAULT_POINT(OpCacheLookup);
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  // X U X = X — but only a *certified* canonical graph is known to be a
  // fixed point of re-normalization (a MaxNodes/MaxDepth truncation
  // withholds the certificate precisely because it breaks idempotence),
  // so an uncertified operand falls through to the historic compute.
  if (IA == IB && certified(IA)) {
    ++St.Hits;
    return Interned.graph(IA);
  }
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Union.find(Key);
    if (It != Shared->Union.end()) {
      ++St.SharedHits;
      // The result id may never pass through intern() this batch, so
      // its compaction-liveness touch happens at the map hit.
      Shared->Intern->touch(It->second);
      return Interned.graph(It->second);
    }
  }
  auto It = Union.find(Key);
  if (It != Union.end()) {
    ++St.Hits;
    ++It->second.Hits;
    return Interned.graph(It->second.Value);
  }
  ++St.Misses;
  // Inclusion fast path: when one language contains the other, the
  // union *is* the container — determinize/minimize are functions of
  // the operand language, and the container's certificate proves its
  // canonical unfold fits the bounds, so the computed union would
  // reproduce the container bit-for-bit and intern to exactly its id.
  // (Without the certificate a MaxNodes/MaxDepth truncation could fire
  // on the recomputation and over-approximate; the guard keeps the
  // shortcut unobservable in every configuration.) The inclusion checks
  // are memoized product walks, far cheaper than determinize + minimize
  // + unfold, and the recorded memo makes the next lookup a plain hit.
  if (certified(IA) && includes(Interned.graph(IA), Interned.graph(IB))) {
    Union.emplace(Key, Counted<CanonId>{IA});
    return Interned.graph(IA);
  }
  if (certified(IB) && includes(Interned.graph(IB), Interned.graph(IA))) {
    Union.emplace(Key, Counted<CanonId>{IB});
    return Interned.graph(IB);
  }
  CanonId R = Interned.intern(graphUnion(Interned.graph(IA),
                                         Interned.graph(IB), Syms, Norm,
                                         &Scratch));
  Union.emplace(Key, Counted<CanonId>{R});
  return Interned.graph(R);
}

TypeGraph OpCache::intersectOf(const TypeGraph &A, const TypeGraph &B) {
  GAIA_FAULT_POINT(OpCacheLookup);
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  if (IA == IB && certified(IA)) { // X /\ X = X (see unionOf)
    ++St.Hits;
    return Interned.graph(IA);
  }
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Inter.find(Key);
    if (It != Shared->Inter.end()) {
      ++St.SharedHits;
      Shared->Intern->touch(It->second);
      return Interned.graph(It->second);
    }
  }
  auto It = Inter.find(Key);
  if (It != Inter.end()) {
    ++St.Hits;
    ++It->second.Hits;
    return Interned.graph(It->second.Value);
  }
  ++St.Misses;
  // Inclusion fast path (see unionOf): the intersection with a
  // containing language is the contained operand itself — guarded on
  // the *returned* operand's certificate for the same reason.
  if (certified(IB) && includes(Interned.graph(IA), Interned.graph(IB))) {
    Inter.emplace(Key, Counted<CanonId>{IB});
    return Interned.graph(IB);
  }
  if (certified(IA) && includes(Interned.graph(IB), Interned.graph(IA))) {
    Inter.emplace(Key, Counted<CanonId>{IA});
    return Interned.graph(IA);
  }
  CanonId R = Interned.intern(graphIntersect(Interned.graph(IA),
                                             Interned.graph(IB), Syms, Norm,
                                             &Scratch, &WScratch));
  Inter.emplace(Key, Counted<CanonId>{R});
  return Interned.graph(R);
}

TypeGraph OpCache::widenOf(const TypeGraph &Old, const TypeGraph &New,
                           const WideningOptions &Opts,
                           WideningStats *WStats) {
  GAIA_FAULT_POINT(OpCacheLookup);
  CanonId IO = Interned.intern(Old);
  CanonId IN = Interned.intern(New);
  if (IO == IN) { // X <= X, so X V X = X (the includes() fast path)
    ++St.Hits;
    if (WStats)
      ++WStats->Invocations;
    return Interned.graph(IO);
  }
  auto Key = std::make_pair(IO, IN); // widening is not commutative
  if (Shared) {
    auto It = Shared->Widen.find(Key);
    if (It != Shared->Widen.end()) {
      ++St.SharedHits;
      Shared->Intern->touch(It->second);
      if (WStats)
        ++WStats->CacheHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Widen.find(Key);
  if (It != Widen.end()) {
    ++St.Hits;
    ++It->second.Hits;
    if (WStats)
      ++WStats->CacheHits;
    return Interned.graph(It->second.Value);
  }
  ++St.Misses;
  // Inclusion fast path: graphWiden's first step returns Old when New
  // is already included; routing the check through the memoized
  // includes() lets repeated no-op widenings skip the uncached walk.
  // When it is refuted, the NotIncluded entry point skips graphWiden's
  // own entry check so the product walk is not repeated.
  if (includes(Interned.graph(IO), Interned.graph(IN))) {
    if (WStats)
      ++WStats->Invocations;
    Widen.emplace(Key, Counted<CanonId>{IO});
    return Interned.graph(IO);
  }
  CanonId R = Interned.intern(detail::graphWidenNotIncluded(
      Interned.graph(IO), Interned.graph(IN), Syms, Opts, WStats, &Scratch,
      &WScratch));
  Widen.emplace(Key, Counted<CanonId>{R});
  return Interned.graph(R);
}

bool OpCache::restrictOf(const TypeGraph &V, FunctorId Fn,
                         std::vector<TypeGraph> &ArgsOut) {
  GAIA_FAULT_POINT(OpCacheLookup);
  CanonId Id = Interned.intern(V);
  auto Key = std::make_pair(Id, static_cast<uint32_t>(Fn));
  auto Unpack = [&](const RestrictMemo &M) {
    ArgsOut.clear();
    for (CanonId A : M.Args)
      ArgsOut.push_back(Interned.graph(A));
    return M.Ok;
  };
  if (Shared) {
    auto It = Shared->Restrict.find(Key);
    if (It != Shared->Restrict.end()) {
      ++St.SharedHits;
      for (CanonId A : It->second.Args)
        Shared->Intern->touch(A);
      return Unpack(It->second);
    }
  }
  auto It = Restrict.find(Key);
  if (It != Restrict.end()) {
    ++St.Hits;
    ++It->second.Hits;
    return Unpack(It->second.Value);
  }
  ++St.Misses;
  Counted<RestrictMemo> R;
  R.Value.Ok = graphRestrict(Interned.graph(Id), Fn, Syms, Norm, ArgsOut,
                             &Scratch);
  for (const TypeGraph &A : ArgsOut)
    R.Value.Args.push_back(Interned.intern(A));
  // Hand back the canonical representatives: they carry their interner
  // caches, so downstream operations on these values intern in O(1).
  bool Ok = Unpack(R.Value);
  Restrict.emplace(Key, std::move(R));
  return Ok;
}

TypeGraph OpCache::constructOf(FunctorId Fn,
                               const std::vector<TypeGraph> &Args) {
  GAIA_FAULT_POINT(OpCacheLookup);
  std::vector<uint32_t> Key;
  Key.reserve(Args.size() + 1);
  Key.push_back(Fn);
  for (const TypeGraph &A : Args)
    Key.push_back(Interned.intern(A));
  if (Shared) {
    auto It = Shared->Construct.find(Key);
    if (It != Shared->Construct.end()) {
      ++St.SharedHits;
      Shared->Intern->touch(It->second);
      return Interned.graph(It->second);
    }
  }
  auto It = Construct.find(Key);
  if (It != Construct.end()) {
    ++St.Hits;
    ++It->second.Hits;
    return Interned.graph(It->second.Value);
  }
  ++St.Misses;
  CanonId R =
      Interned.intern(graphConstruct(Fn, Args, Syms, Norm, &Scratch));
  Construct.emplace(std::move(Key), Counted<CanonId>{R});
  return Interned.graph(R);
}

std::shared_ptr<const FrozenOpTier> OpCache::freeze() const {
  FrozenOpTier::Builder B;

  // Pf pre-pass: make sure every pf-set a widening over a tier graph
  // could ask for — i.e. every or-vertex pf-set of every canonical
  // graph — is interned before the pf tier is frozen. (Interning is the
  // side effect; the topology caches built here on *private* canon
  // graphs are a bonus for the rest of this cache's lifetime.)
  for (CanonId Id = 0; Id != Interned.size(); ++Id)
    Interned.graph(Id).topology(Syms, WScratch.PfSets);
  B.Pf = WScratch.PfSets.freeze();

  // Unsealed: the topology priming below still writes the frozen graphs'
  // lazily-filled caches. Sealed right after, before any worker can see
  // the tier.
  B.Intern = Interned.freeze(/*SealStorage=*/false);
  // Prime every canonical graph's topology cache against the *frozen*
  // pf tier: the pre-pass guarantees every lookup hits the tier, so the
  // caches are tagged with the tier's epoch and are valid under every
  // worker interner layered over it — concurrent widenings never write.
  {
    PfSetInterner Primer(B.Pf);
    for (CanonId Id = 0; Id != B.Intern->size(); ++Id) {
      const TypeGraph &G = B.Intern->Canon[Id];
      G.topology(Syms, Primer);
      assert(Primer.honorsEpoch(G.topoCacheIfPresent()->PfEpoch) &&
             G.topoCacheIfPresent()->PfEpoch == B.Pf->Epoch &&
             "frozen graph topology must be tier-tagged");
    }
  }
  B.Intern->sealStorage();
  B.Norm = Norm;
  // Merge: the shared tier's results first, then the private delta. Keys
  // never conflict on semantics (both tiers record the same pure
  // function of the operand languages), so emplace's keep-first policy
  // is immaterial.
  if (Shared) {
    B.Incl.insert(Shared->Incl.begin(), Shared->Incl.end());
    B.Union.insert(Shared->Union.begin(), Shared->Union.end());
    B.Inter.insert(Shared->Inter.begin(), Shared->Inter.end());
    B.Widen.insert(Shared->Widen.begin(), Shared->Widen.end());
    B.Restrict.insert(Shared->Restrict.begin(), Shared->Restrict.end());
    B.Construct.insert(Shared->Construct.begin(), Shared->Construct.end());
  }
  // The per-entry heat counters stay behind: the tier stores plain
  // results (heat is a property of a delta, not of frozen entries).
  for (const auto &[K, V] : Incl)
    B.Incl.emplace(K, V.Value);
  for (const auto &[K, V] : Union)
    B.Union.emplace(K, V.Value);
  for (const auto &[K, V] : Inter)
    B.Inter.emplace(K, V.Value);
  for (const auto &[K, V] : Widen)
    B.Widen.emplace(K, V.Value);
  for (const auto &[K, V] : Restrict)
    B.Restrict.emplace(K, V.Value);
  for (const auto &[K, V] : Construct)
    B.Construct.emplace(K, V.Value);

  auto T = std::make_shared<const FrozenOpTier>(std::move(B));
  T->sealStorage();
  return T;
}

std::shared_ptr<const CacheDelta>
OpCache::harvestDelta(uint32_t MinHits) const {
  auto D = std::make_shared<CacheDelta>();
  auto G = [&](CanonId Id) -> const TypeGraph & {
    return Interned.graph(Id);
  };

  // Hot privately-interned languages: even without a hot operation
  // entry, promoting the language spares the next batch the automaton
  // fallback on first contact.
  for (uint32_t I = 0; I != Interned.deltaSize(); ++I)
    if (Interned.deltaHits(I) >= MinHits)
      D->Graphs.push_back({InvalidCanon, Interned.deltaGraph(I)});

  for (const auto &[K, V] : Incl)
    if (V.Hits >= MinHits)
      D->Incl.push_back({G(K.first), G(K.second), V.Value != 0});
  for (const auto &[K, V] : Union)
    if (V.Hits >= MinHits)
      D->Union.push_back({G(K.first), G(K.second), G(V.Value)});
  for (const auto &[K, V] : Inter)
    if (V.Hits >= MinHits)
      D->Inter.push_back({G(K.first), G(K.second), G(V.Value)});
  for (const auto &[K, V] : Widen)
    if (V.Hits >= MinHits)
      D->Widen.push_back({G(K.first), G(K.second), G(V.Value)});
  for (const auto &[K, V] : Restrict)
    if (V.Hits >= MinHits) {
      CacheDelta::RestrictEntry E;
      E.V = G(K.first);
      E.Name = Syms.functorName(K.second);
      E.Arity = Syms.functorArity(K.second);
      E.Ok = V.Value.Ok;
      for (CanonId A : V.Value.Args)
        E.Args.push_back(G(A));
      D->Restrict.push_back(std::move(E));
    }
  for (const auto &[K, V] : Construct)
    if (V.Hits >= MinHits) {
      CacheDelta::ConstructEntry E;
      E.Name = Syms.functorName(K[0]);
      E.Arity = Syms.functorArity(K[0]);
      for (size_t I = 1; I != K.size(); ++I)
        E.Args.push_back(G(K[I]));
      E.R = G(V.Value);
      D->Construct.push_back(std::move(E));
    }

  if (D->entryCount() == 0)
    return nullptr;
  // Copied last: a cold harvest shouldn't pay for a table snapshot.
  D->Syms = Syms;
  return D;
}

uint64_t OpCache::absorbDelta(SymbolTable &TargetSyms, const CacheDelta &D,
                              RelocationTable<CanonId> *GraphReloc) {
  assert(&TargetSyms == &Syms &&
         "absorb target must be the table this cache was built over");

  // Functor relocation: the delta's functor ids -> this table's, matched
  // by (name, arity); unknown functors are interned. Appending functors
  // never reorders existing names, so the name-rank sort order behind
  // canonical or-successor ordering is stable and already-normalized
  // graphs in this cache stay canonical.
  const uint32_t NumF = D.Syms.numFunctors();
  RelocationTable<uint32_t> FReloc(NumF);
  bool Identity = true;
  for (uint32_t F = 0; F != NumF; ++F) {
    FunctorId T =
        TargetSyms.functor(D.Syms.functorName(F), D.Syms.functorArity(F));
    FReloc.set(F, T);
    Identity = Identity && T == F;
  }

  // Import one carried graph into this cache's id space. The identity
  // fast path passes the value straight to the interner (the common
  // case: promotion onto the tier the delta's job ran over, where the
  // job's table snapshot started from this very table). Otherwise the
  // functor ids are rewritten through the table and the graph is
  // re-normalized: the rewrite preserves the canonical shape (successor
  // sort order depends on functor *names*, which relocation preserves)
  // but invalidates the certificate, and normalizeGraph re-earns it.
  auto Import = [&](const TypeGraph &In) {
    if (Identity)
      return In;
    TypeGraph C = In;
    for (NodeId V = 0; V != C.numNodes(); ++V)
      if (std::as_const(C).node(V).Kind == NodeKind::Func)
        C.node(V).Fn = FReloc.map(std::as_const(C).node(V).Fn);
    return normalizeGraph(C, TargetSyms, Norm, &Scratch);
  };
  auto InternG = [&](const TypeGraph &In) {
    return Interned.intern(Import(In));
  };

  uint64_t Absorbed = 0;
  for (const CacheDelta::GraphEntry &E : D.Graphs) {
    CanonId New = InternG(E.G);
    if (GraphReloc && E.OldId != InvalidCanon)
      GraphReloc->set(E.OldId, New);
    ++Absorbed;
  }
  for (const CacheDelta::InclEntry &E : D.Incl) {
    CanonId B = InternG(E.Big), S = InternG(E.Small);
    if (B == S)
      continue; // the same-id fast path answers this without a memo
    Absorbed += Incl
                    .emplace(std::make_pair(B, S),
                             Counted<uint8_t>{uint8_t(E.Result ? 1 : 0)})
                    .second;
  }
  for (const CacheDelta::PairEntry &E : D.Union) {
    CanonId A = InternG(E.A), B = InternG(E.B);
    Absorbed += Union
                    .emplace(std::make_pair(std::min(A, B), std::max(A, B)),
                             Counted<CanonId>{InternG(E.R)})
                    .second;
  }
  for (const CacheDelta::PairEntry &E : D.Inter) {
    CanonId A = InternG(E.A), B = InternG(E.B);
    Absorbed += Inter
                    .emplace(std::make_pair(std::min(A, B), std::max(A, B)),
                             Counted<CanonId>{InternG(E.R)})
                    .second;
  }
  for (const CacheDelta::PairEntry &E : D.Widen) {
    // Widening is not commutative: A is Old, B is New, key order as-is.
    CanonId A = InternG(E.A), B = InternG(E.B);
    Absorbed += Widen
                    .emplace(std::make_pair(A, B),
                             Counted<CanonId>{InternG(E.R)})
                    .second;
  }
  for (const CacheDelta::RestrictEntry &E : D.Restrict) {
    FunctorId Fn = TargetSyms.functor(E.Name, E.Arity);
    Counted<RestrictMemo> M;
    M.Value.Ok = E.Ok;
    for (const TypeGraph &A : E.Args)
      M.Value.Args.push_back(InternG(A));
    Absorbed +=
        Restrict
            .emplace(std::make_pair(InternG(E.V), static_cast<uint32_t>(Fn)),
                     std::move(M))
            .second;
  }
  for (const CacheDelta::ConstructEntry &E : D.Construct) {
    std::vector<uint32_t> Key;
    Key.reserve(E.Args.size() + 1);
    Key.push_back(TargetSyms.functor(E.Name, E.Arity));
    for (const TypeGraph &A : E.Args)
      Key.push_back(InternG(A));
    Absorbed +=
        Construct.emplace(std::move(Key), Counted<CanonId>{InternG(E.R)})
            .second;
  }
  return Absorbed;
}
