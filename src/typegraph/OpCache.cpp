//===- typegraph/OpCache.cpp -----------------------------------------------=//

#include "typegraph/OpCache.h"

#include "typegraph/GraphOps.h"

#include <algorithm>

using namespace gaia;

bool OpCache::includes(const TypeGraph &Big, const TypeGraph &Small) {
  CanonId B = Interned.intern(Big);
  CanonId S = Interned.intern(Small);
  if (B == S)
    return true; // same language
  auto Key = std::make_pair(B, S);
  if (Shared) {
    auto It = Shared->Incl.find(Key);
    if (It != Shared->Incl.end()) {
      ++St.SharedHits;
      return It->second != 0;
    }
  }
  auto It = Incl.find(Key);
  if (It != Incl.end()) {
    ++St.Hits;
    return It->second != 0;
  }
  ++St.Misses;
  bool Result =
      graphIncludes(Interned.graph(B), Interned.graph(S), Syms, &WScratch);
  Incl.emplace(Key, Result ? 1 : 0);
  return Result;
}

TypeGraph OpCache::unionOf(const TypeGraph &A, const TypeGraph &B) {
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  // X U X = X — but only a *certified* canonical graph is known to be a
  // fixed point of re-normalization (a MaxNodes/MaxDepth truncation
  // withholds the certificate precisely because it breaks idempotence),
  // so an uncertified operand falls through to the historic compute.
  if (IA == IB && certified(IA)) {
    ++St.Hits;
    return Interned.graph(IA);
  }
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Union.find(Key);
    if (It != Shared->Union.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Union.find(Key);
  if (It != Union.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  // Inclusion fast path: when one language contains the other, the
  // union *is* the container — determinize/minimize are functions of
  // the operand language, and the container's certificate proves its
  // canonical unfold fits the bounds, so the computed union would
  // reproduce the container bit-for-bit and intern to exactly its id.
  // (Without the certificate a MaxNodes/MaxDepth truncation could fire
  // on the recomputation and over-approximate; the guard keeps the
  // shortcut unobservable in every configuration.) The inclusion checks
  // are memoized product walks, far cheaper than determinize + minimize
  // + unfold, and the recorded memo makes the next lookup a plain hit.
  if (certified(IA) && includes(Interned.graph(IA), Interned.graph(IB))) {
    Union.emplace(Key, IA);
    return Interned.graph(IA);
  }
  if (certified(IB) && includes(Interned.graph(IB), Interned.graph(IA))) {
    Union.emplace(Key, IB);
    return Interned.graph(IB);
  }
  CanonId R = Interned.intern(graphUnion(Interned.graph(IA),
                                         Interned.graph(IB), Syms, Norm,
                                         &Scratch));
  Union.emplace(Key, R);
  return Interned.graph(R);
}

TypeGraph OpCache::intersectOf(const TypeGraph &A, const TypeGraph &B) {
  CanonId IA = Interned.intern(A);
  CanonId IB = Interned.intern(B);
  if (IA == IB && certified(IA)) { // X /\ X = X (see unionOf)
    ++St.Hits;
    return Interned.graph(IA);
  }
  auto Key = std::make_pair(std::min(IA, IB), std::max(IA, IB));
  if (Shared) {
    auto It = Shared->Inter.find(Key);
    if (It != Shared->Inter.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Inter.find(Key);
  if (It != Inter.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  // Inclusion fast path (see unionOf): the intersection with a
  // containing language is the contained operand itself — guarded on
  // the *returned* operand's certificate for the same reason.
  if (certified(IB) && includes(Interned.graph(IA), Interned.graph(IB))) {
    Inter.emplace(Key, IB);
    return Interned.graph(IB);
  }
  if (certified(IA) && includes(Interned.graph(IB), Interned.graph(IA))) {
    Inter.emplace(Key, IA);
    return Interned.graph(IA);
  }
  CanonId R = Interned.intern(graphIntersect(Interned.graph(IA),
                                             Interned.graph(IB), Syms, Norm,
                                             &Scratch, &WScratch));
  Inter.emplace(Key, R);
  return Interned.graph(R);
}

TypeGraph OpCache::widenOf(const TypeGraph &Old, const TypeGraph &New,
                           const WideningOptions &Opts,
                           WideningStats *WStats) {
  CanonId IO = Interned.intern(Old);
  CanonId IN = Interned.intern(New);
  if (IO == IN) { // X <= X, so X V X = X (the includes() fast path)
    ++St.Hits;
    if (WStats)
      ++WStats->Invocations;
    return Interned.graph(IO);
  }
  auto Key = std::make_pair(IO, IN); // widening is not commutative
  if (Shared) {
    auto It = Shared->Widen.find(Key);
    if (It != Shared->Widen.end()) {
      ++St.SharedHits;
      if (WStats)
        ++WStats->CacheHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Widen.find(Key);
  if (It != Widen.end()) {
    ++St.Hits;
    if (WStats)
      ++WStats->CacheHits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  // Inclusion fast path: graphWiden's first step returns Old when New
  // is already included; routing the check through the memoized
  // includes() lets repeated no-op widenings skip the uncached walk.
  // When it is refuted, the NotIncluded entry point skips graphWiden's
  // own entry check so the product walk is not repeated.
  if (includes(Interned.graph(IO), Interned.graph(IN))) {
    if (WStats)
      ++WStats->Invocations;
    Widen.emplace(Key, IO);
    return Interned.graph(IO);
  }
  CanonId R = Interned.intern(detail::graphWidenNotIncluded(
      Interned.graph(IO), Interned.graph(IN), Syms, Opts, WStats, &Scratch,
      &WScratch));
  Widen.emplace(Key, R);
  return Interned.graph(R);
}

bool OpCache::restrictOf(const TypeGraph &V, FunctorId Fn,
                         std::vector<TypeGraph> &ArgsOut) {
  CanonId Id = Interned.intern(V);
  auto Key = std::make_pair(Id, static_cast<uint32_t>(Fn));
  auto Unpack = [&](const RestrictMemo &M) {
    ArgsOut.clear();
    for (CanonId A : M.Args)
      ArgsOut.push_back(Interned.graph(A));
    return M.Ok;
  };
  if (Shared) {
    auto It = Shared->Restrict.find(Key);
    if (It != Shared->Restrict.end()) {
      ++St.SharedHits;
      return Unpack(It->second);
    }
  }
  auto It = Restrict.find(Key);
  if (It != Restrict.end()) {
    ++St.Hits;
    return Unpack(It->second);
  }
  ++St.Misses;
  RestrictMemo R;
  R.Ok = graphRestrict(Interned.graph(Id), Fn, Syms, Norm, ArgsOut,
                       &Scratch);
  for (const TypeGraph &A : ArgsOut)
    R.Args.push_back(Interned.intern(A));
  // Hand back the canonical representatives: they carry their interner
  // caches, so downstream operations on these values intern in O(1).
  bool Ok = Unpack(R);
  Restrict.emplace(Key, std::move(R));
  return Ok;
}

TypeGraph OpCache::constructOf(FunctorId Fn,
                               const std::vector<TypeGraph> &Args) {
  std::vector<uint32_t> Key;
  Key.reserve(Args.size() + 1);
  Key.push_back(Fn);
  for (const TypeGraph &A : Args)
    Key.push_back(Interned.intern(A));
  if (Shared) {
    auto It = Shared->Construct.find(Key);
    if (It != Shared->Construct.end()) {
      ++St.SharedHits;
      return Interned.graph(It->second);
    }
  }
  auto It = Construct.find(Key);
  if (It != Construct.end()) {
    ++St.Hits;
    return Interned.graph(It->second);
  }
  ++St.Misses;
  CanonId R =
      Interned.intern(graphConstruct(Fn, Args, Syms, Norm, &Scratch));
  Construct.emplace(std::move(Key), R);
  return Interned.graph(R);
}

std::shared_ptr<const FrozenOpTier> OpCache::freeze() const {
  FrozenOpTier::Builder B;

  // Pf pre-pass: make sure every pf-set a widening over a tier graph
  // could ask for — i.e. every or-vertex pf-set of every canonical
  // graph — is interned before the pf tier is frozen. (Interning is the
  // side effect; the topology caches built here on *private* canon
  // graphs are a bonus for the rest of this cache's lifetime.)
  for (CanonId Id = 0; Id != Interned.size(); ++Id)
    Interned.graph(Id).topology(Syms, WScratch.PfSets);
  B.Pf = WScratch.PfSets.freeze();

  // Unsealed: the topology priming below still writes the frozen graphs'
  // lazily-filled caches. Sealed right after, before any worker can see
  // the tier.
  B.Intern = Interned.freeze(/*SealStorage=*/false);
  // Prime every canonical graph's topology cache against the *frozen*
  // pf tier: the pre-pass guarantees every lookup hits the tier, so the
  // caches are tagged with the tier's epoch and are valid under every
  // worker interner layered over it — concurrent widenings never write.
  {
    PfSetInterner Primer(B.Pf);
    for (CanonId Id = 0; Id != B.Intern->size(); ++Id) {
      const TypeGraph &G = B.Intern->Canon[Id];
      G.topology(Syms, Primer);
      assert(Primer.honorsEpoch(G.topoCacheIfPresent()->PfEpoch) &&
             G.topoCacheIfPresent()->PfEpoch == B.Pf->Epoch &&
             "frozen graph topology must be tier-tagged");
    }
  }
  B.Intern->sealStorage();
  B.Norm = Norm;
  // Merge: the shared tier's results first, then the private delta. Keys
  // never conflict on semantics (both tiers record the same pure
  // function of the operand languages), so emplace's keep-first policy
  // is immaterial.
  if (Shared) {
    B.Incl.insert(Shared->Incl.begin(), Shared->Incl.end());
    B.Union.insert(Shared->Union.begin(), Shared->Union.end());
    B.Inter.insert(Shared->Inter.begin(), Shared->Inter.end());
    B.Widen.insert(Shared->Widen.begin(), Shared->Widen.end());
    B.Restrict.insert(Shared->Restrict.begin(), Shared->Restrict.end());
    B.Construct.insert(Shared->Construct.begin(), Shared->Construct.end());
  }
  B.Incl.insert(Incl.begin(), Incl.end());
  B.Union.insert(Union.begin(), Union.end());
  B.Inter.insert(Inter.begin(), Inter.end());
  B.Widen.insert(Widen.begin(), Widen.end());
  B.Restrict.insert(Restrict.begin(), Restrict.end());
  B.Construct.insert(Construct.begin(), Construct.end());

  auto T = std::make_shared<const FrozenOpTier>(std::move(B));
  T->sealStorage();
  return T;
}
