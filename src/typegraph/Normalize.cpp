//===- typegraph/Normalize.cpp ---------------------------------------------=//

#include "typegraph/Normalize.h"

#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

using namespace gaia;

namespace {

/// Sentinel constituents inside state keys. Any two Any leaves (resp. Int
/// leaves) are interchangeable, so they canonicalize to one marker each;
/// nullary functor vertices are canonicalized to their functor id (high
/// bit set) because their denotation is determined by the functor alone.
/// This canonicalization is what makes the subset test of the collapsing
/// union meaningful across graphs.
constexpr NodeId AnyMarker = 0xFFFFFFFE;
constexpr NodeId IntMarker = 0xFFFFFFFD;
constexpr NodeId NullaryFlag = 0x80000000;

static bool isNullaryMarker(NodeId V) {
  return (V & NullaryFlag) != 0 && V != AnyMarker && V != IntMarker;
}

/// Deterministic-automaton state produced by the subset construction.
struct DetState {
  bool IsAny = false;
  bool HasInt = false;
  /// Sorted by functor (name, arity); each entry maps a functor to the
  /// ids of the argument states.
  std::vector<std::pair<FunctorId, std::vector<uint32_t>>> Trans;
  bool Productive = false;
};

/// Expands \p Roots through nested or-vertices into leaf/functor
/// constituents and canonicalizes into a sorted unique key.
static std::vector<NodeId> closureKey(const TypeGraph &G,
                                      const std::vector<NodeId> &Roots) {
  std::vector<NodeId> Key;
  std::vector<NodeId> Stack(Roots.begin(), Roots.end());
  std::vector<bool> SeenOr(G.numNodes(), false);
  bool HasAny = false, HasInt = false;
  while (!Stack.empty()) {
    NodeId V = Stack.back();
    Stack.pop_back();
    const TGNode &N = G.node(V);
    switch (N.Kind) {
    case NodeKind::Any:
      HasAny = true;
      break;
    case NodeKind::Int:
      HasInt = true;
      break;
    case NodeKind::Func:
      if (N.Succs.empty()) {
        assert((N.Fn & NullaryFlag) == 0 && "functor id overflows marker");
        Key.push_back(N.Fn | NullaryFlag);
      } else {
        Key.push_back(V);
      }
      break;
    case NodeKind::Or:
      if (!SeenOr[V]) {
        SeenOr[V] = true;
        for (NodeId S : N.Succs)
          Stack.push_back(S);
      }
      break;
    }
  }
  if (HasAny)
    return {AnyMarker};
  std::sort(Key.begin(), Key.end());
  Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
  if (HasInt)
    Key.push_back(IntMarker);
  return Key;
}

/// Shared machinery for both subset constructions: state storage,
/// transition computation, productivity pruning and the unfolding step.
class DetBuilderBase {
public:
  DetBuilderBase(const TypeGraph &G, const SymbolTable &Syms,
                 const NormalizeOptions &Opts)
      : G(G), Syms(Syms), Opts(Opts) {}

protected:
  /// Computes the functor transitions of state \p Id from its key. Each
  /// argument state is requested through \p ArgState, which differs
  /// between the exact and the collapsing construction.
  template <typename ArgStateFn>
  void computeTransitions(uint32_t Id, ArgStateFn ArgState) {
    std::vector<NodeId> Key = StateKeys[Id];
    if (!Key.empty() && Key[0] == AnyMarker) {
      States[Id].IsAny = true;
      return;
    }
    bool HasInt = !Key.empty() && Key.back() == IntMarker;

    // Group functor constituents by functor id.
    std::unordered_map<FunctorId, std::vector<NodeId>> Groups;
    std::vector<FunctorId> Order;
    for (NodeId V : Key) {
      if (V == IntMarker)
        continue;
      FunctorId Fn =
          isNullaryMarker(V) ? (V & ~NullaryFlag) : G.node(V).Fn;
      if (HasInt && Syms.isIntegerLiteral(Fn))
        continue; // absorbed by Int
      auto [It, Inserted] = Groups.emplace(Fn, std::vector<NodeId>{});
      if (Inserted)
        Order.push_back(Fn);
      if (!isNullaryMarker(V))
        It->second.push_back(V);
    }
    std::sort(Order.begin(), Order.end(), [&](FunctorId A, FunctorId B) {
      const std::string &NA = Syms.functorName(A);
      const std::string &NB = Syms.functorName(B);
      if (NA != NB)
        return NA < NB;
      return Syms.functorArity(A) < Syms.functorArity(B);
    });

    // Or-degree cap of Section 9.
    uint32_t Degree = static_cast<uint32_t>(Order.size()) + (HasInt ? 1 : 0);
    if (Opts.OrCap != 0 && Degree > Opts.OrCap) {
      States[Id].IsAny = true;
      return;
    }

    std::vector<std::pair<FunctorId, std::vector<uint32_t>>> Trans;
    for (FunctorId Fn : Order) {
      uint32_t Arity = Syms.functorArity(Fn);
      std::vector<uint32_t> Args;
      Args.reserve(Arity);
      for (uint32_t J = 0; J != Arity; ++J) {
        std::vector<NodeId> ArgRoots;
        for (NodeId V : Groups[Fn])
          ArgRoots.push_back(G.node(V).Succs[J]);
        Args.push_back(ArgState(ArgRoots));
      }
      Trans.emplace_back(Fn, std::move(Args));
    }
    States[Id].HasInt = HasInt;
    States[Id].Trans = std::move(Trans);
  }

  void computeProductivity() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (DetState &S : States) {
        if (S.Productive)
          continue;
        bool Prod = S.IsAny || S.HasInt;
        if (!Prod) {
          for (const auto &[Fn, Args] : S.Trans) {
            bool AllProd = true;
            for (uint32_t A : Args)
              if (!States[A].Productive) {
                AllProd = false;
                break;
              }
            if (AllProd) {
              Prod = true;
              break;
            }
          }
        }
        if (Prod) {
          S.Productive = true;
          Changed = true;
        }
      }
    }
    for (DetState &S : States) {
      std::erase_if(S.Trans, [&](const auto &T) {
        for (uint32_t A : T.second)
          if (!States[A].Productive)
            return true;
        return false;
      });
    }
  }

  NodeId unfold(uint32_t St, TypeGraph &Out,
                std::vector<std::pair<uint32_t, NodeId>> &Path) {
    for (const auto &[S, N] : Path)
      if (S == St)
        return N; // back edge to an ancestor or-vertex
    const DetState &State = States[St];
    NodeId Or = Out.addOr({});
    std::vector<NodeId> Children;
    if (State.IsAny || Out.numNodes() > Opts.MaxNodes ||
        (Opts.MaxDepth != 0 && Path.size() >= Opts.MaxDepth)) {
      Children.push_back(Out.addAny());
      Out.node(Or).Succs = std::move(Children);
      return Or;
    }
    Path.emplace_back(St, Or);
    if (State.HasInt)
      Children.push_back(Out.addInt());
    for (const auto &[Fn, Args] : State.Trans) {
      std::vector<NodeId> ArgOrs;
      ArgOrs.reserve(Args.size());
      for (uint32_t A : Args)
        ArgOrs.push_back(unfold(A, Out, Path));
      Children.push_back(Out.addFunc(Fn, std::move(ArgOrs)));
    }
    Path.pop_back();
    Out.node(Or).Succs = std::move(Children);
    return Or;
  }

  /// Merges language-equivalent states (Myhill-Nerode partition
  /// refinement on the deterministic automaton). Keeps the graphs the
  /// analysis manipulates canonical and small — the paper's central
  /// engineering concern.
  uint32_t minimize(uint32_t Root) {
    // Initial partition: by (IsAny, HasInt, functor list).
    std::map<std::vector<uint64_t>, uint32_t> BlockIds;
    std::vector<uint32_t> Block(States.size(), 0);
    auto InitKey = [&](const DetState &S) {
      std::vector<uint64_t> Key;
      Key.push_back(S.IsAny ? 1 : 0);
      Key.push_back(S.HasInt ? 1 : 0);
      for (const auto &[Fn, Args] : S.Trans)
        Key.push_back(Fn);
      return Key;
    };
    for (size_t I = 0; I != States.size(); ++I) {
      auto Key = InitKey(States[I]);
      auto [It, Inserted] =
          BlockIds.emplace(Key, static_cast<uint32_t>(BlockIds.size()));
      Block[I] = It->second;
    }
    // Refine until stable.
    while (true) {
      std::map<std::vector<uint64_t>, uint32_t> NextIds;
      std::vector<uint32_t> Next(States.size(), 0);
      for (size_t I = 0; I != States.size(); ++I) {
        std::vector<uint64_t> Key;
        Key.push_back(Block[I]);
        for (const auto &[Fn, Args] : States[I].Trans) {
          Key.push_back(Fn);
          for (uint32_t A : Args)
            Key.push_back(Block[A]);
        }
        auto [It, Inserted] =
            NextIds.emplace(Key, static_cast<uint32_t>(NextIds.size()));
        Next[I] = It->second;
      }
      bool Stable = NextIds.size() == BlockIds.size();
      Block = std::move(Next);
      BlockIds = std::move(NextIds);
      if (Stable)
        break;
    }
    // Rebuild one representative state per block.
    std::vector<DetState> Merged(BlockIds.size());
    std::vector<bool> Done(BlockIds.size(), false);
    for (size_t I = 0; I != States.size(); ++I) {
      uint32_t B = Block[I];
      if (Done[B])
        continue;
      Done[B] = true;
      DetState S = States[I];
      for (auto &[Fn, Args] : S.Trans)
        for (uint32_t &A : Args)
          A = Block[A];
      Merged[B] = std::move(S);
    }
    uint32_t NewRoot = Block[Root];
    States = std::move(Merged);
    return NewRoot;
  }

  TypeGraph finish(uint32_t Root) {
    computeProductivity();
    if (!States[Root].Productive)
      return TypeGraph::makeBottom();
    Root = minimize(Root);
    TypeGraph Out;
    std::vector<std::pair<uint32_t, NodeId>> Path;
    NodeId OutRoot = unfold(Root, Out, Path);
    Out.setRoot(OutRoot);
    Out.sortOrSuccessors(Syms);
    TypeGraph Result = Out.compact();
#ifndef NDEBUG
    std::string Why;
    assert(Result.validate(Syms, &Why) && "normalization must restore all "
                                          "restrictions");
#endif
    return Result;
  }

  const TypeGraph &G;
  const SymbolTable &Syms;
  const NormalizeOptions &Opts;
  std::vector<DetState> States;
  std::vector<std::vector<NodeId>> StateKeys;
};

/// Exact subset construction (worklist based): language-preserving.
class Determinizer : public DetBuilderBase {
public:
  using DetBuilderBase::DetBuilderBase;

  TypeGraph run(const std::vector<NodeId> &Start) {
    uint32_t Root = stateFor(Start);
    while (!Worklist.empty()) {
      uint32_t Id = Worklist.front();
      Worklist.pop_front();
      computeTransitions(
          Id, [this](const std::vector<NodeId> &Roots) {
            return stateFor(Roots);
          });
    }
    return finish(Root);
  }

  GrammarAutomaton automaton(const std::vector<NodeId> &Start) {
    uint32_t Root = stateFor(Start);
    while (!Worklist.empty()) {
      uint32_t Id = Worklist.front();
      Worklist.pop_front();
      computeTransitions(
          Id, [this](const std::vector<NodeId> &Roots) {
            return stateFor(Roots);
          });
    }
    computeProductivity();
    GrammarAutomaton A;
    if (!States[Root].Productive) {
      A.Empty = true;
      return A;
    }
    Root = minimize(Root);
    // Keep only states reachable from the root.
    std::vector<uint32_t> Remap(States.size(), ~0u);
    std::vector<uint32_t> Work{Root};
    Remap[Root] = 0;
    A.States.emplace_back();
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      GrammarAutomaton::State St;
      St.IsAny = States[S].IsAny;
      St.HasInt = States[S].HasInt;
      for (const auto &[Fn, Args] : States[S].Trans) {
        std::vector<uint32_t> NewArgs;
        for (uint32_t Arg : Args) {
          if (Remap[Arg] == ~0u) {
            Remap[Arg] = static_cast<uint32_t>(A.States.size());
            A.States.emplace_back();
            Work.push_back(Arg);
          }
          NewArgs.push_back(Remap[Arg]);
        }
        St.Trans.emplace_back(Fn, std::move(NewArgs));
      }
      A.States[Remap[S]] = std::move(St);
    }
    A.Root = 0;
    return A;
  }

private:
  uint32_t stateFor(const std::vector<NodeId> &Roots) {
    std::vector<NodeId> Key = closureKey(G, Roots);
    auto It = StateIds.find(Key);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(States.size());
    States.emplace_back();
    StateKeys.push_back(Key);
    StateIds.emplace(std::move(Key), Id);
    Worklist.push_back(Id);
    return Id;
  }

  std::unordered_map<std::vector<NodeId>, uint32_t, IdVectorHash> StateIds;
  std::deque<uint32_t> Worklist;
};

/// The collapsing union used by the widening's replacement rule: a DFS
/// subset construction that reuses an *ancestor* state whenever the new
/// state's constituents are a subset of the ancestor's. This is the
/// paper's "variant of the union operation which avoids creating
/// or-vertices which would lead to a growth in size": reusing the
/// ancestor over-approximates (the ancestor's language contains the
/// state's) and ties the recursion into a cycle instead of unrolling.
class Collapser : public DetBuilderBase {
public:
  using DetBuilderBase::DetBuilderBase;

  TypeGraph run(const std::vector<NodeId> &Start) {
    uint32_t Root = stateFor(closureKey(G, Start));
    return finish(Root);
  }

private:
  uint32_t stateFor(const std::vector<NodeId> &Key) {
    auto It = StateIds.find(Key);
    if (It != StateIds.end())
      return It->second;
    // Collapse into an ancestor whose constituents cover this state.
    for (auto PIt = PathKeys.rbegin(), PEnd = PathKeys.rend(); PIt != PEnd;
         ++PIt) {
      const std::vector<NodeId> &AncKey = StateKeys[*PIt];
      if (AncKey.size() == 1 && AncKey[0] == AnyMarker)
        return *PIt; // Any covers everything
      if (std::includes(AncKey.begin(), AncKey.end(), Key.begin(), Key.end()))
        return *PIt;
    }
    uint32_t Id = static_cast<uint32_t>(States.size());
    States.emplace_back();
    StateKeys.push_back(Key);
    StateIds.emplace(Key, Id);
    PathKeys.push_back(Id);
    computeTransitions(Id, [this](const std::vector<NodeId> &Roots) {
      return stateFor(closureKey(G, Roots));
    });
    PathKeys.pop_back();
    return Id;
  }

  std::unordered_map<std::vector<NodeId>, uint32_t, IdVectorHash> StateIds;
  std::vector<uint32_t> PathKeys;
};

} // namespace

TypeGraph gaia::normalizeGraph(const TypeGraph &G, const SymbolTable &Syms,
                               const NormalizeOptions &Opts) {
  if (G.root() == InvalidNode)
    return TypeGraph::makeBottom();
  return Determinizer(G, Syms, Opts).run({G.root()});
}

TypeGraph gaia::normalizeFrom(const TypeGraph &G,
                              const std::vector<NodeId> &Start,
                              const SymbolTable &Syms,
                              const NormalizeOptions &Opts) {
  if (Start.empty())
    return TypeGraph::makeBottom();
  return Determinizer(G, Syms, Opts).run(Start);
}

TypeGraph gaia::collapsingUnionFrom(const TypeGraph &G,
                                    const std::vector<NodeId> &Start,
                                    const SymbolTable &Syms,
                                    const NormalizeOptions &Opts) {
  if (Start.empty())
    return TypeGraph::makeBottom();
  return Collapser(G, Syms, Opts).run(Start);
}

GrammarAutomaton gaia::buildAutomaton(const TypeGraph &G,
                                      const SymbolTable &Syms) {
  if (G.root() == InvalidNode || G.isBottomGraph()) {
    GrammarAutomaton A;
    A.Empty = true;
    return A;
  }
  NormalizeOptions Opts;
  return Determinizer(G, Syms, Opts).automaton({G.root()});
}
