//===- typegraph/Normalize.cpp ---------------------------------------------=//

#include "typegraph/Normalize.h"

#include "support/Cancellation.h"
#include "support/Debug.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"
#include "support/SmallVector.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

using namespace gaia;

namespace {

/// Sentinel constituents inside state keys. Any two Any leaves (resp. Int
/// leaves) are interchangeable, so they canonicalize to one marker each;
/// nullary functor vertices are canonicalized to their functor id (high
/// bit set) because their denotation is determined by the functor alone.
/// This canonicalization is what makes the subset test of the collapsing
/// union meaningful across graphs.
constexpr NodeId AnyMarker = 0xFFFFFFFE;
constexpr NodeId IntMarker = 0xFFFFFFFD;
constexpr NodeId NullaryFlag = 0x80000000;

static bool isNullaryMarker(NodeId V) {
  return (V & NullaryFlag) != 0 && V != AnyMarker && V != IntMarker;
}

/// The thread-local fallback scratch for callers that do not own one.
static NormalizeScratch &scratchOr(NormalizeScratch *S) {
  static thread_local NormalizeScratch TLS;
  return S ? *S : TLS;
}

/// Deterministic-automaton state produced by the subset construction.
struct DetState {
  bool IsAny = false;
  bool HasInt = false;
  /// Sorted by functor (name, arity); each entry maps a functor to the
  /// ids of the argument states.
  std::vector<std::pair<FunctorId, std::vector<uint32_t>>> Trans;
  bool Productive = false;
};

/// Expands \p Roots through nested or-vertices into leaf/functor
/// constituents and canonicalizes into a sorted unique key, assembled in
/// \p Scratch.KeyBuf (valid until the next closureKey call).
static void closureKey(const TypeGraph &G, const NodeId *Roots,
                       size_t NumRoots, NormalizeScratch &Scratch) {
  std::vector<NodeId> &Key = Scratch.KeyBuf;
  std::vector<NodeId> &Stack = Scratch.Stack;
  Key.clear();
  Stack.assign(Roots, Roots + NumRoots);
  Scratch.beginEpoch(G.numNodes());
  bool HasAny = false, HasInt = false;
  while (!Stack.empty()) {
    NodeId V = Stack.back();
    Stack.pop_back();
    const TGNode &N = G.node(V);
    switch (N.Kind) {
    case NodeKind::Any:
      HasAny = true;
      break;
    case NodeKind::Int:
      HasInt = true;
      break;
    case NodeKind::Func:
      if (N.Succs.empty()) {
        assert((N.Fn & NullaryFlag) == 0 && "functor id overflows marker");
        Key.push_back(N.Fn | NullaryFlag);
      } else {
        Key.push_back(V);
      }
      break;
    case NodeKind::Or:
      if (!Scratch.marked(V)) {
        Scratch.mark(V);
        for (NodeId S : N.Succs)
          Stack.push_back(S);
      }
      break;
    }
  }
  if (HasAny) {
    Key.assign(1, AnyMarker);
    return;
  }
  std::sort(Key.begin(), Key.end());
  Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
  if (HasInt)
    Key.push_back(IntMarker);
}

/// Transparent (vector / raw-span) hashing for the state-key map, so a
/// lookup of the scratch key buffer does not materialize a vector.
struct KeyView {
  const NodeId *Data;
  size_t Size;
};
struct KeyHash {
  using is_transparent = void;
  size_t operator()(const std::vector<NodeId> &V) const {
    return hash(V.data(), V.size());
  }
  size_t operator()(const KeyView &K) const { return hash(K.Data, K.Size); }
  static size_t hash(const NodeId *D, size_t N) {
    std::size_t Seed = N;
    for (size_t I = 0; I != N; ++I)
      hashCombine(Seed, D[I]);
    return Seed;
  }
};
struct KeyEq {
  using is_transparent = void;
  static bool eq(const NodeId *A, size_t NA, const NodeId *B, size_t NB) {
    return NA == NB && std::equal(A, A + NA, B);
  }
  bool operator()(const std::vector<NodeId> &A,
                  const std::vector<NodeId> &B) const {
    return eq(A.data(), A.size(), B.data(), B.size());
  }
  bool operator()(const KeyView &A, const std::vector<NodeId> &B) const {
    return eq(A.Data, A.Size, B.data(), B.size());
  }
  bool operator()(const std::vector<NodeId> &A, const KeyView &B) const {
    return eq(A.data(), A.size(), B.Data, B.Size);
  }
  bool operator()(const KeyView &A, const KeyView &B) const {
    return eq(A.Data, A.Size, B.Data, B.Size);
  }
};

/// Shared machinery for both subset constructions: state storage,
/// transition computation, productivity pruning and the unfolding step.
class DetBuilderBase {
public:
  DetBuilderBase(const TypeGraph &G, const SymbolTable &Syms,
                 const NormalizeOptions &Opts, NormalizeScratch &Scratch)
      : G(G), Syms(Syms), Opts(Opts), Scratch(Scratch) {}

protected:
  /// Computes the functor transitions of state \p Id from its key. Each
  /// argument state is requested through \p ArgState, which differs
  /// between the exact and the collapsing construction. Re-entrant (the
  /// collapsing construction recurses through ArgState), so the
  /// per-invocation buffers are inline-storage locals, not scratch.
  template <typename ArgStateFn>
  void computeTransitions(uint32_t Id, ArgStateFn ArgState) {
    // StateKeys is a deque: growth through ArgState's state creation
    // does not invalidate this reference.
    const std::vector<NodeId> &Key = StateKeys[Id];
    if (!Key.empty() && Key[0] == AnyMarker) {
      States[Id].IsAny = true;
      return;
    }
    bool HasInt = !Key.empty() && Key.back() == IntMarker;

    // Functor constituents in (name, arity) order via the memoized
    // functor ranks; a stable sort keeps same-functor members in key
    // (ascending vertex id) order, matching the historic grouping.
    struct FnConst {
      FunctorId Fn;
      NodeId V; ///< InvalidNode for nullary markers
    };
    SmallVector<FnConst, 8> Consts;
    for (NodeId V : Key) {
      if (V == IntMarker)
        continue;
      FunctorId Fn = isNullaryMarker(V) ? (V & ~NullaryFlag) : G.node(V).Fn;
      if (HasInt && Syms.isIntegerLiteral(Fn))
        continue; // absorbed by Int
      Consts.push_back({Fn, isNullaryMarker(V) ? InvalidNode : V});
    }
    std::stable_sort(Consts.begin(), Consts.end(),
                     [&](const FnConst &A, const FnConst &B) {
                       return Syms.functorRank(A.Fn) <
                              Syms.functorRank(B.Fn);
                     });

    // Or-degree cap of Section 9 (count distinct functors).
    uint32_t Degree = HasInt ? 1 : 0;
    for (size_t I = 0; I != Consts.size(); ++I)
      if (I == 0 || Consts[I].Fn != Consts[I - 1].Fn)
        ++Degree;
    if (Opts.OrCap != 0 && Degree > Opts.OrCap) {
      States[Id].IsAny = true;
      return;
    }

    std::vector<std::pair<FunctorId, std::vector<uint32_t>>> Trans;
    for (size_t I = 0; I != Consts.size();) {
      FunctorId Fn = Consts[I].Fn;
      size_t E = I;
      while (E != Consts.size() && Consts[E].Fn == Fn)
        ++E;
      uint32_t Arity = Syms.functorArity(Fn);
      std::vector<uint32_t> Args;
      Args.reserve(Arity);
      for (uint32_t J = 0; J != Arity; ++J) {
        SmallVector<NodeId, 8> ArgRoots;
        for (size_t K = I; K != E; ++K)
          if (Consts[K].V != InvalidNode)
            ArgRoots.push_back(G.node(Consts[K].V).Succs[J]);
        Args.push_back(ArgState(ArgRoots.data(), ArgRoots.size()));
      }
      Trans.emplace_back(Fn, std::move(Args));
      I = E;
    }
    States[Id].HasInt = HasInt;
    States[Id].Trans = std::move(Trans);
  }

  void computeProductivity() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (DetState &S : States) {
        if (S.Productive)
          continue;
        bool Prod = S.IsAny || S.HasInt;
        if (!Prod) {
          for (const auto &[Fn, Args] : S.Trans) {
            bool AllProd = true;
            for (uint32_t A : Args)
              if (!States[A].Productive) {
                AllProd = false;
                break;
              }
            if (AllProd) {
              Prod = true;
              break;
            }
          }
        }
        if (Prod) {
          S.Productive = true;
          Changed = true;
        }
      }
    }
    for (DetState &S : States) {
      std::erase_if(S.Trans, [&](const auto &T) {
        for (uint32_t A : T.second)
          if (!States[A].Productive)
            return true;
        return false;
      });
    }
  }

  NodeId unfold(uint32_t St, TypeGraph &Out,
                std::vector<std::pair<uint32_t, NodeId>> &Path) {
    for (const auto &[S, N] : Path)
      if (S == St)
        return N; // back edge to an ancestor or-vertex
    const DetState &State = States[St];
    NodeId Or = Out.addOr({});
    if (State.IsAny || Out.numNodes() > Opts.MaxNodes ||
        (Opts.MaxDepth != 0 && Path.size() >= Opts.MaxDepth)) {
      // A defensive-bound collapse (node or depth budget) loses the
      // certificate: re-normalizing the truncated result may merge the
      // states the truncation made equivalent.
      if (!State.IsAny)
        Truncated = true;
      NodeId Leaf = Out.addAny();
      Out.node(Or).Succs = {Leaf};
      return Or;
    }
    Path.emplace_back(St, Or);
    SuccList Children;
    if (State.HasInt)
      Children.push_back(Out.addInt());
    for (const auto &[Fn, Args] : State.Trans) {
      SuccList ArgOrs;
      ArgOrs.reserve(Args.size());
      for (uint32_t A : Args)
        ArgOrs.push_back(unfold(A, Out, Path));
      Children.push_back(Out.addFunc(Fn, std::move(ArgOrs)));
    }
    Path.pop_back();
    Out.node(Or).Succs = std::move(Children);
    return Or;
  }

  /// Merges language-equivalent states (Myhill-Nerode partition
  /// refinement on the deterministic automaton). Keeps the graphs the
  /// analysis manipulates canonical and small — the paper's central
  /// engineering concern. Uses the scratch-owned hash tables: the
  /// partition signature of a state is an integer sequence, so ordering
  /// the blocks by a tree map (as the seed implementation did) bought
  /// nothing but O(log n) vector comparisons per state per round.
  uint32_t minimize(uint32_t Root) {
    auto &BlockIds = Scratch.Blocks;
    auto &NextIds = Scratch.NextBlocks;
    std::vector<uint64_t> &Sig = Scratch.SigBuf;
    BlockIds.clear();
    // Transparent probe-then-copy: the signature buffer is only
    // materialized into the table for genuinely new blocks.
    auto BlockFor = [&Sig](auto &Ids) {
      auto It = Ids.find(U64View{Sig.data(), Sig.size()});
      if (It != Ids.end())
        return It->second;
      return Ids.emplace(Sig, static_cast<uint32_t>(Ids.size()))
          .first->second;
    };
    // Initial partition: by (IsAny, HasInt, functor list).
    std::vector<uint32_t> Block(States.size(), 0);
    for (size_t I = 0; I != States.size(); ++I) {
      const DetState &S = States[I];
      Sig.clear();
      Sig.push_back(S.IsAny ? 1 : 0);
      Sig.push_back(S.HasInt ? 1 : 0);
      for (const auto &[Fn, Args] : S.Trans)
        Sig.push_back(Fn);
      Block[I] = BlockFor(BlockIds);
    }
    // Refine until stable.
    std::vector<uint32_t> Next(States.size(), 0);
    while (true) {
      // One refinement round touches every state; on a large automaton
      // the rounds-until-stable tail is the other place a deadline can
      // silently burn.
      if (Opts.Cancel)
        Opts.Cancel->poll();
      NextIds.clear();
      for (size_t I = 0; I != States.size(); ++I) {
        Sig.clear();
        Sig.push_back(Block[I]);
        for (const auto &[Fn, Args] : States[I].Trans) {
          Sig.push_back(Fn);
          for (uint32_t A : Args)
            Sig.push_back(Block[A]);
        }
        Next[I] = BlockFor(NextIds);
      }
      bool Stable = NextIds.size() == BlockIds.size();
      Block.swap(Next);
      std::swap(BlockIds, NextIds);
      if (Stable)
        break;
    }
    // Rebuild one representative state per block.
    std::vector<DetState> Merged(BlockIds.size());
    std::vector<bool> Done(BlockIds.size(), false);
    for (size_t I = 0; I != States.size(); ++I) {
      uint32_t B = Block[I];
      if (Done[B])
        continue;
      Done[B] = true;
      DetState S = States[I];
      for (auto &[Fn, Args] : S.Trans)
        for (uint32_t &A : Args)
          A = Block[A];
      Merged[B] = std::move(S);
    }
    uint32_t NewRoot = Block[Root];
    States = std::move(Merged);
    return NewRoot;
  }

  TypeGraph finish(uint32_t Root) {
    computeProductivity();
    if (!States[Root].Productive)
      return TypeGraph::makeBottom();
    Root = minimize(Root);
    TypeGraph Out;
    std::vector<std::pair<uint32_t, NodeId>> Path;
    NodeId OutRoot = unfold(Root, Out, Path);
    Out.setRoot(OutRoot);
    Out.sortOrSuccessors(Syms);
    TypeGraph Result = Out.compact();
#ifndef NDEBUG
    std::string Why;
    assert(Result.validate(Syms, &Why) && "normalization must restore all "
                                          "restrictions");
#endif
    // Certify the result: a second normalization under the same options
    // would reproduce it, unless a defensive unfold bound fired (the
    // or-cap is applied before minimization and is idempotent).
    if (!Truncated)
      Result.markNormalized(Opts.OrCap, Opts.MaxNodes, Opts.MaxDepth);
    return Result;
  }

  const TypeGraph &G;
  const SymbolTable &Syms;
  const NormalizeOptions &Opts;
  NormalizeScratch &Scratch;
  std::vector<DetState> States;
  std::deque<std::vector<NodeId>> StateKeys;
  bool Truncated = false;
};

/// Exact subset construction (worklist based): language-preserving.
class Determinizer : public DetBuilderBase {
public:
  using DetBuilderBase::DetBuilderBase;

  TypeGraph run(const std::vector<NodeId> &Start) {
    uint32_t Root = stateFor(Start.data(), Start.size());
    drainWorklist();
    return finish(Root);
  }

  GrammarAutomaton automaton(const std::vector<NodeId> &Start) {
    uint32_t Root = stateFor(Start.data(), Start.size());
    drainWorklist();
    computeProductivity();
    GrammarAutomaton A;
    if (!States[Root].Productive) {
      A.Empty = true;
      return A;
    }
    Root = minimize(Root);
    // Keep only states reachable from the root.
    std::vector<uint32_t> Remap(States.size(), ~0u);
    std::vector<uint32_t> Work{Root};
    Remap[Root] = 0;
    A.States.emplace_back();
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      GrammarAutomaton::State St;
      St.IsAny = States[S].IsAny;
      St.HasInt = States[S].HasInt;
      for (const auto &[Fn, Args] : States[S].Trans) {
        std::vector<uint32_t> NewArgs;
        for (uint32_t Arg : Args) {
          if (Remap[Arg] == ~0u) {
            Remap[Arg] = static_cast<uint32_t>(A.States.size());
            A.States.emplace_back();
            Work.push_back(Arg);
          }
          NewArgs.push_back(Remap[Arg]);
        }
        St.Trans.emplace_back(Fn, std::move(NewArgs));
      }
      A.States[Remap[S]] = std::move(St);
    }
    A.Root = 0;
    return A;
  }

private:
  void drainWorklist() {
    // Worklist ids are assigned densely, so the list is just "next state
    // to process": every state >= Cursor still needs its transitions.
    while (Cursor != States.size()) {
      uint32_t Id = Cursor++;
      // The subset construction is the one normalization phase with no
      // a-priori size bound (state count can be exponential in the input
      // before a cap fires), so this is where a deadline-carrying job
      // polls between the engine's per-round checkpoints.
      if (Opts.Cancel && (Id & 63u) == 0)
        Opts.Cancel->poll();
      computeTransitions(Id, [this](const NodeId *Roots, size_t N) {
        return stateFor(Roots, N);
      });
    }
  }

  uint32_t stateFor(const NodeId *Roots, size_t NumRoots) {
    closureKey(G, Roots, NumRoots, Scratch);
    const std::vector<NodeId> &Key = Scratch.KeyBuf;
    auto It = StateIds.find(KeyView{Key.data(), Key.size()});
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(States.size());
    States.emplace_back();
    StateKeys.push_back(Key);
    StateIds.emplace(Key, Id);
    return Id;
  }

  std::unordered_map<std::vector<NodeId>, uint32_t, KeyHash, KeyEq> StateIds;
  uint32_t Cursor = 0;
};

/// The collapsing union used by the widening's replacement rule: a DFS
/// subset construction that reuses an *ancestor* state whenever the new
/// state's constituents are a subset of the ancestor's. This is the
/// paper's "variant of the union operation which avoids creating
/// or-vertices which would lead to a growth in size": reusing the
/// ancestor over-approximates (the ancestor's language contains the
/// state's) and ties the recursion into a cycle instead of unrolling.
class Collapser : public DetBuilderBase {
public:
  using DetBuilderBase::DetBuilderBase;

  TypeGraph run(const std::vector<NodeId> &Start) {
    closureKey(G, Start.data(), Start.size(), Scratch);
    uint32_t Root = stateFor(Scratch.KeyBuf);
    return finish(Root);
  }

private:
  uint32_t stateFor(const std::vector<NodeId> &KeyIn) {
    auto It = StateIds.find(KeyIn);
    if (It != StateIds.end())
      return It->second;
    // Collapse into an ancestor whose constituents cover this state.
    for (auto PIt = PathKeys.rbegin(), PEnd = PathKeys.rend(); PIt != PEnd;
         ++PIt) {
      const std::vector<NodeId> &AncKey = StateKeys[*PIt];
      if (AncKey.size() == 1 && AncKey[0] == AnyMarker)
        return *PIt; // Any covers everything
      if (std::includes(AncKey.begin(), AncKey.end(), KeyIn.begin(),
                        KeyIn.end()))
        return *PIt;
    }
    std::vector<NodeId> Key = KeyIn; // own it; the recursion below
                                     // clobbers the scratch buffer
    uint32_t Id = static_cast<uint32_t>(States.size());
    // Same rationale as Determinizer::drainWorklist: state creation is
    // the unbounded dimension of the collapsing construction.
    if (Opts.Cancel && (Id & 63u) == 0)
      Opts.Cancel->poll();
    States.emplace_back();
    StateKeys.push_back(Key);
    StateIds.emplace(std::move(Key), Id);
    PathKeys.push_back(Id);
    computeTransitions(Id, [this](const NodeId *Roots, size_t N) {
      closureKey(G, Roots, N, Scratch);
      return stateFor(Scratch.KeyBuf);
    });
    PathKeys.pop_back();
    return Id;
  }

  std::unordered_map<std::vector<NodeId>, uint32_t, KeyHash, KeyEq> StateIds;
  std::vector<uint32_t> PathKeys;
};

} // namespace

TypeGraph gaia::normalizeGraph(const TypeGraph &G, const SymbolTable &Syms,
                               const NormalizeOptions &Opts,
                               NormalizeScratch *Scratch) {
  if (G.root() == InvalidNode)
    return TypeGraph::makeBottom();
  // A certified graph is a fixed point of this pipeline for these
  // options: copying it (certificate and interner caches included) is
  // exactly what the full construction would rebuild.
  if (G.isNormalizedFor(Opts.OrCap, Opts.MaxNodes, Opts.MaxDepth))
    return G;
  // Chaos probe after the certificate fast path: only normalizations
  // that actually run the determinizer can fault.
  GAIA_FAULT_POINT(Normalize);
  return Determinizer(G, Syms, Opts, scratchOr(Scratch)).run({G.root()});
}

TypeGraph gaia::normalizeFrom(const TypeGraph &G,
                              const std::vector<NodeId> &Start,
                              const SymbolTable &Syms,
                              const NormalizeOptions &Opts,
                              NormalizeScratch *Scratch) {
  if (Start.empty())
    return TypeGraph::makeBottom();
  return Determinizer(G, Syms, Opts, scratchOr(Scratch)).run(Start);
}

TypeGraph gaia::collapsingUnionFrom(const TypeGraph &G,
                                    const std::vector<NodeId> &Start,
                                    const SymbolTable &Syms,
                                    const NormalizeOptions &Opts,
                                    NormalizeScratch *Scratch) {
  if (Start.empty())
    return TypeGraph::makeBottom();
  return Collapser(G, Syms, Opts, scratchOr(Scratch)).run(Start);
}

GrammarAutomaton gaia::buildAutomaton(const TypeGraph &G,
                                      const SymbolTable &Syms,
                                      NormalizeScratch *Scratch) {
  if (G.root() == InvalidNode || G.isBottomGraph()) {
    GrammarAutomaton A;
    A.Empty = true;
    return A;
  }
  NormalizeOptions Opts;
  return Determinizer(G, Syms, Opts, scratchOr(Scratch))
      .automaton({G.root()});
}
