//===- typegraph/CacheDelta.h - Portable harvest of hot cache entries -----==//
///
/// \file
/// A value-carrying snapshot of cache entries destined for another
/// OpCache: the currency of the tier lifecycle (runtime/SharedCache.h).
/// Two producers fill one:
///
///   - OpCache::harvestDelta — the hot entries of a job's private delta
///     (per-entry hit counters cleared a threshold), harvested after the
///     job so a later promoteAndRefreeze can merge them into the next
///     frozen tier instead of discarding them with the worker cache;
///   - SharedCache compaction — the entries of a frozen tier still live
///     under the generational touch policy, re-absorbed into a fresh
///     cache to rebuild the tier densely.
///
/// Entries carry operand and result *graphs by value* plus a snapshot of
/// the symbol table they were built against — never raw canonical ids,
/// which are meaningless outside their source interner. The consumer
/// (OpCache::absorbDelta) relocates functor ids by (name, arity) through
/// a RelocationTable and re-interns every graph, so a delta is portable
/// across workers, tiers, and compaction rebuilds; exactness is
/// preserved because every cached operation is a pure function of the
/// operand languages.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_CACHEDELTA_H
#define GAIA_TYPEGRAPH_CACHEDELTA_H

#include "support/GraphInterner.h"
#include "support/StringInterner.h"
#include "typegraph/TypeGraph.h"

#include <string>
#include <vector>

namespace gaia {

struct CacheDelta {
  /// A hot language worth re-interning into the target even without a
  /// hot operation entry (saves the automaton fallback on next use).
  struct GraphEntry {
    /// Id in the *source* cache; InvalidCanon for worker harvests (the
    /// private id has no meaning downstream). Compaction sets it so
    /// absorbDelta can fill the old-id -> new-id relocation table.
    CanonId OldId = InvalidCanon;
    TypeGraph G;
  };
  /// Operand/result triple of a commutative or ordered pair operation
  /// (union / intersection / widening; for widening A is Old, B is New).
  struct PairEntry {
    TypeGraph A, B, R;
  };
  struct InclEntry {
    TypeGraph Big, Small;
    bool Result = false;
  };
  /// Functors travel as (name, arity): ids are table-relative, names are
  /// not.
  struct RestrictEntry {
    TypeGraph V;
    std::string Name;
    uint32_t Arity = 0;
    bool Ok = false;
    std::vector<TypeGraph> Args;
  };
  struct ConstructEntry {
    std::string Name;
    uint32_t Arity = 0;
    std::vector<TypeGraph> Args;
    TypeGraph R;
  };

  /// Snapshot of the table the carried graphs' functor ids refer to.
  SymbolTable Syms;
  std::vector<GraphEntry> Graphs;
  std::vector<InclEntry> Incl;
  std::vector<PairEntry> Union;
  std::vector<PairEntry> Inter;
  std::vector<PairEntry> Widen;
  std::vector<RestrictEntry> Restrict;
  std::vector<ConstructEntry> Construct;

  uint64_t entryCount() const {
    return Graphs.size() + Incl.size() + Union.size() + Inter.size() +
           Widen.size() + Restrict.size() + Construct.size();
  }
};

} // namespace gaia

#endif // GAIA_TYPEGRAPH_CACHEDELTA_H
