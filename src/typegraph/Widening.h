//===- typegraph/Widening.h - The paper's widening operator ---------------==//
///
/// \file
/// The novel widening operator of Section 7, the paper's key technical
/// contribution. Given the old graph g_o and a new graph g_new:
///
///   g_o V g_new = g_o                      if g_new <= g_o
///               = widen(g_o, g_o U g_new)  otherwise
///
/// `widen` repeatedly exploits *topological clashes* between g_o and g_n:
/// positions where the correspondence relation (Definition 7.1) meets
/// or-vertices with different pf-sets or different depths — the places
/// where g_n grew relative to g_o. Each clash is resolved by:
///
///   - the *cycle introduction rule* (Definition 7.4): redirect the edge
///     into the clash vertex v_n to an ancestor v_a with
///     pf(v_n) ⊆ pf(v_a) and v_a >= v_n, or
///   - the *replacement rule* (Definition 7.5): when no such ancestor is
///     large enough, replace the ancestor by an upper bound of v_a and
///     v_n that strictly decreases the size of the graph,
///
/// until no rule applies. Remaining clashes are allowed to grow the graph
/// — that growth introduces fresh pf-sets along a branch, which is what
/// bounds the number of times V can grow a graph (Theorem 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_WIDENING_H
#define GAIA_TYPEGRAPH_WIDENING_H

#include "support/Cancellation.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Normalize.h"
#include "typegraph/TypeGraph.h"

#include <cstdint>

namespace gaia {

/// Widening strategy selector. `Paper` is Section 7's operator.
/// `DepthK` is the finite-subdomain alternative the paper contrasts
/// against (Bruynooghe & Janssens bound functor occurrences on paths;
/// the classic depth-k abstraction is the comparable baseline): the
/// union of the iterates truncated at k or-levels. It terminates
/// trivially but cannot represent structure below depth k.
enum class WidenMode : uint8_t { Paper, DepthK };

/// Knobs for the widening. MaxTransforms is a defensive bound on the
/// transformation loop (the paper proves termination; the cap guards
/// implementation bugs). If the budget is ever exhausted the widening
/// gives up on shrinking and returns the Any graph — a sound,
/// terminating fallback that works in release builds too (it used to be
/// a debug-only assert, which made NDEBUG builds silently return a
/// possibly ever-growing graph). Exhaustions are counted in
/// WideningStats::BudgetExhaustions.
struct WideningOptions {
  NormalizeOptions Norm;
  uint32_t MaxTransforms = 512;
  WidenMode Mode = WidenMode::Paper;
  /// Truncation depth for WidenMode::DepthK.
  uint32_t DepthK = 4;
  /// Optional type database (the extension proposed in the paper's
  /// conclusion): when the replacement rule must replace an ancestor,
  /// a database type covering both clash vertices is preferred over the
  /// ad-hoc collapsing union when it also shrinks the graph. Graphs
  /// must be normalized; not owned.
  const std::vector<TypeGraph> *Database = nullptr;
  /// Optional cooperative stop condition (support/Cancellation.h),
  /// polled once per transform-loop iteration — the widening's analogue
  /// of the engine's per-round checkpoint, since a single adversarial
  /// widening can burn the whole MaxTransforms budget between engine
  /// polls. A tripped signal throws CancelledError; the analyzer facade
  /// owns the handler. Null = never cancelled; not owned.
  const CancelSignal *Cancel = nullptr;
};

/// Statistics for benchmarks/ablations: how often each rule fired.
struct WideningStats {
  uint64_t CycleIntroductions = 0;
  uint64_t Replacements = 0;
  uint64_t DatabaseHits = 0;
  uint64_t Invocations = 0;
  /// Times the transformation budget collapsed the result to Any.
  uint64_t BudgetExhaustions = 0;
  /// Widenings answered by the OpCache memo layer (the rule counters
  /// above only tick on actual recomputations).
  uint64_t CacheHits = 0;
  /// Widening clashes found across all correspondence walks (Def 7.3).
  uint64_t Clashes = 0;
  /// Correspondence walks performed (one per transform-loop iteration).
  uint64_t ClashWalks = 0;
  /// Pair cones skipped by the incremental re-walk because they were
  /// clash-free in the previous walk and no vertex in them changed.
  uint64_t IncrementalSkips = 0;
};

/// Computes Gold V Gnew. Both inputs must be normalized; the result is
/// normalized and includes both inputs. \p WS provides the reusable
/// buffers of the widening hot loop (pair tables, topology arrays, the
/// pf-set interner); nullptr falls back to a thread-local instance.
TypeGraph graphWiden(const TypeGraph &Gold, const TypeGraph &Gnew,
                     const SymbolTable &Syms,
                     const WideningOptions &Opts = {},
                     WideningStats *Stats = nullptr,
                     NormalizeScratch *Scratch = nullptr,
                     WideningScratch *WS = nullptr);

namespace detail {

/// graphWiden for callers that have already established — and memoized —
/// that \p Gnew is NOT included in \p Gold (typegraph/OpCache.cpp's
/// widenOf runs the check through its inclusion memo): skips the entry
/// inclusion test so the product walk is not repeated uncached.
TypeGraph graphWidenNotIncluded(const TypeGraph &Gold, const TypeGraph &Gnew,
                                const SymbolTable &Syms,
                                const WideningOptions &Opts,
                                WideningStats *Stats,
                                NormalizeScratch *Scratch,
                                WideningScratch *WS);

/// Splices a copy of \p Rep in place of the subtree rooted at or-vertex
/// \p Va of \p G, redirecting *every* incoming edge of \p Va (not just
/// the BFS-tree parent edge) to the replacement. Mid-widening graphs can
/// carry multiple incoming edges on an or-vertex (back edges created by
/// the cycle introduction rule); redirecting only the tree edge would
/// leave the others pointing at the stale subtree. Exposed for tests.
TypeGraph graftReplace(const TypeGraph &G, NodeId Va, const TypeGraph &Rep,
                       const TypeGraph::Topology &Topo);

} // namespace detail

} // namespace gaia

#endif // GAIA_TYPEGRAPH_WIDENING_H
