//===- typegraph/GrammarPrinter.h - Display graphs as tree grammars -------==//
///
/// \file
/// Renders a type graph in the regular-tree-grammar notation the paper
/// uses to present results (Section 6.7):
///
///   T ::= [] | cons(Any,T).
///   T1 ::= c(Any) | d(Any).
///
/// '.'/2 is displayed as `cons`, matching the paper. Or-vertices whose
/// only alternative is Any (resp. Int) are inlined as `Any` (`Int`).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_GRAMMARPRINTER_H
#define GAIA_TYPEGRAPH_GRAMMARPRINTER_H

#include "typegraph/TypeGraph.h"

#include <string>

namespace gaia {

/// Renders \p G as a tree grammar; the first rule is the root. The empty
/// graph prints as "T ::= $empty.".
std::string printGrammar(const TypeGraph &G, const SymbolTable &Syms);

/// Renders a single alternative line (no trailing newline), used by
/// reports that show one argument per line.
std::string printGrammarInline(const TypeGraph &G, const SymbolTable &Syms);

} // namespace gaia

#endif // GAIA_TYPEGRAPH_GRAMMARPRINTER_H
