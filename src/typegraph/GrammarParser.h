//===- typegraph/GrammarParser.h - Parse tree-grammar notation ------------==//
///
/// \file
/// Parses the regular-tree-grammar notation used throughout the paper
/// (and by GrammarPrinter) into a normalized type graph. This makes
/// golden tests readable: expected analysis results are written exactly
/// as the paper prints them, e.g.
///
///   T ::= [] | cons(T1,T).
///   T1 ::= c(Any) | d(Any).
///
/// Conventions: nonterminals start with an upper-case letter; `Any` and
/// `Int` are reserved leaves; `cons` means '.'/2; the first rule is the
/// root. Nested functor terms are allowed as arguments and denote
/// anonymous single-alternative nonterminals.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_GRAMMARPARSER_H
#define GAIA_TYPEGRAPH_GRAMMARPARSER_H

#include "typegraph/TypeGraph.h"

#include <optional>
#include <string>
#include <string_view>

namespace gaia {

/// Parses \p Text; returns the normalized graph or std::nullopt (with a
/// message in \p Err if non-null) on a syntax error.
std::optional<TypeGraph> parseGrammar(std::string_view Text,
                                      SymbolTable &Syms,
                                      std::string *Err = nullptr);

} // namespace gaia

#endif // GAIA_TYPEGRAPH_GRAMMARPARSER_H
