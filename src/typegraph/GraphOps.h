//===- typegraph/GraphOps.h - Inclusion, intersection, union --------------==//
///
/// \file
/// The three primitive operations of Section 6.9:
///   - g1 <= g2  : denotation inclusion (exact on normalized graphs),
///   - g1 /\ g2  : intersection (used for abstract unification, since type
///                 graphs are downward closed under instantiation),
///   - g1 \/ g2  : union (a direct construction followed by
///                 normalization).
///
/// All binary constructions return normalized graphs. Inclusion requires
/// the right-hand side to be deterministic (principal-functor restricted)
/// and both sides pruned of unproductive vertices — which normalization
/// guarantees; every graph handled by the analyzer is normalized.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_GRAPHOPS_H
#define GAIA_TYPEGRAPH_GRAPHOPS_H

#include "typegraph/Normalize.h"
#include "typegraph/TypeGraph.h"

namespace gaia {

/// True if Cc(G1) is a subset of Cc(G2).
bool graphIncludes(const TypeGraph &G2, const TypeGraph &G1,
                   const SymbolTable &Syms);

/// True if the denotation of vertex \p V1 of \p G1 is included in the
/// denotation of vertex \p V2 of \p G2. \p G1 and \p G2 may alias (the
/// widening compares vertices of one graph).
bool vertexIncludes(const TypeGraph &G2, NodeId V2, const TypeGraph &G1,
                    NodeId V1, const SymbolTable &Syms);

/// Semantic equality (inclusion both ways).
bool graphEquals(const TypeGraph &A, const TypeGraph &B,
                 const SymbolTable &Syms);

/// Returns a normalized G3 with Cc(G1) ∩ Cc(G2) ⊆ Cc(G3) (exact except
/// when a cap fires).
TypeGraph graphIntersect(const TypeGraph &G1, const TypeGraph &G2,
                         const SymbolTable &Syms,
                         const NormalizeOptions &Opts = {},
                         NormalizeScratch *Scratch = nullptr);

/// Returns a normalized G3 with Cc(G1) ∪ Cc(G2) ⊆ Cc(G3).
TypeGraph graphUnion(const TypeGraph &G1, const TypeGraph &G2,
                     const SymbolTable &Syms,
                     const NormalizeOptions &Opts = {},
                     NormalizeScratch *Scratch = nullptr);

/// Restricts \p V to terms with principal functor \p Fn (the leaf-domain
/// unification primitive): returns false if no such terms exist;
/// otherwise fills \p ArgsOut with one normalized graph per argument.
/// \p V must be normalized.
bool graphRestrict(const TypeGraph &V, FunctorId Fn, const SymbolTable &Syms,
                   const NormalizeOptions &Opts,
                   std::vector<TypeGraph> &ArgsOut,
                   NormalizeScratch *Scratch = nullptr);

/// Builds the normalized graph denoting f(a1, ..., an) from normalized
/// argument graphs (bottom if any argument is bottom).
TypeGraph graphConstruct(FunctorId Fn, const std::vector<TypeGraph> &Args,
                         const SymbolTable &Syms,
                         const NormalizeOptions &Opts,
                         NormalizeScratch *Scratch = nullptr);

/// Deep-copies the structure reachable from \p V in \p From into \p Out,
/// returning the id of the copy. Used by product constructions.
NodeId copySubgraph(const TypeGraph &From, NodeId V, TypeGraph &Out);

} // namespace gaia

#endif // GAIA_TYPEGRAPH_GRAPHOPS_H
