//===- typegraph/GraphOps.h - Inclusion, intersection, union --------------==//
///
/// \file
/// The three primitive operations of Section 6.9:
///   - g1 <= g2  : denotation inclusion (exact on normalized graphs),
///   - g1 /\ g2  : intersection (used for abstract unification, since type
///                 graphs are downward closed under instantiation),
///   - g1 \/ g2  : union (a direct construction followed by
///                 normalization).
///
/// All binary constructions return normalized graphs. Inclusion requires
/// the right-hand side to be deterministic (principal-functor restricted)
/// and both sides pruned of unproductive vertices — which normalization
/// guarantees; every graph handled by the analyzer is normalized.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_GRAPHOPS_H
#define GAIA_TYPEGRAPH_GRAPHOPS_H

#include "support/PfSetInterner.h"
#include "typegraph/Normalize.h"
#include "typegraph/TypeGraph.h"

namespace gaia {

/// Epoch-marked open-addressing hash table over (NodeId, NodeId) keys
/// with a uint32_t payload. The product traversals (inclusion check,
/// intersection, the widening's correspondence walk) need one visited
/// set / memo per call; `begin()` forgets the previous call's entries in
/// O(1) instead of deallocating, so a warm table performs no heap
/// traffic at all.
class PairTable {
public:
  /// Opens a new epoch; all previous entries become invisible.
  void begin() {
    ++Epoch;
    Count = 0;
    if (Slots.empty())
      Slots.resize(256);
  }

  /// Inserts (A, B) -> Val if absent (begin() must have been called).
  /// Returns the payload slot (existing or new) and whether the key was
  /// inserted.
  std::pair<uint32_t &, bool> insert(NodeId A, NodeId B, uint32_t Val = 0) {
    assert(Epoch != 0 && "PairTable::begin() not called");
    if ((Count + 1) * 4 >= Slots.size() * 3)
      grow();
    size_t I = probe(A, B);
    Slot &S = Slots[I];
    if (S.Mark == Epoch)
      return {S.Val, false};
    S.Mark = Epoch;
    S.Key = key(A, B);
    S.Val = Val;
    ++Count;
    return {S.Val, true};
  }

  /// Returns the payload of (A, B) in the current epoch, or null.
  const uint32_t *find(NodeId A, NodeId B) const {
    if (Slots.empty())
      return nullptr;
    size_t I = probe(A, B);
    return Slots[I].Mark == Epoch ? &Slots[I].Val : nullptr;
  }

private:
  struct Slot {
    uint64_t Key = 0;
    uint64_t Mark = 0;
    uint32_t Val = 0;
  };
  static uint64_t key(NodeId A, NodeId B) {
    return (uint64_t(A) << 32) | B;
  }
  /// First slot that holds (A, B) in this epoch or is free. Capacity is a
  /// power of two; linear probing.
  size_t probe(NodeId A, NodeId B) const {
    uint64_t K = key(A, B);
    uint64_t H = K * 0x9E3779B97F4A7C15ull;
    size_t Mask = Slots.size() - 1;
    size_t I = (H >> 32) & Mask;
    while (Slots[I].Mark == Epoch && Slots[I].Key != K)
      I = (I + 1) & Mask;
    return I;
  }
  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 256 : Old.size() * 2, Slot{});
    for (const Slot &S : Old) {
      if (S.Mark != Epoch)
        continue;
      uint64_t H = S.Key * 0x9E3779B97F4A7C15ull;
      size_t Mask = Slots.size() - 1;
      size_t I = (H >> 32) & Mask;
      while (Slots[I].Mark == Epoch)
        I = (I + 1) & Mask;
      Slots[I] = S;
    }
  }

  std::vector<Slot> Slots;
  uint64_t Epoch = 0;
  size_t Count = 0;
};

/// Reusable buffers for the pairwise graph operations and the Section 7
/// widening loop, mirroring NormalizeScratch: one instance per analysis
/// (owned by the operation cache), threaded through every entry point;
/// passing nullptr falls back to a thread-local instance. Owns the
/// analysis' pf-set interner (optionally layered over a frozen shared
/// tier, runtime/SharedCache.h) — pf-set ids are what the widening's
/// topology caches and clash tests are keyed on.
///
/// The widening-loop members (walk/clean tables, topology arrays, dirty
/// propagation buffers) are implementation state of typegraph/Widening.cpp;
/// they live here so a warm widening performs no allocations.
class WideningScratch {
public:
  explicit WideningScratch(std::shared_ptr<const FrozenPfTier> SharedPf =
                               nullptr)
      : PfSets(std::move(SharedPf)) {}

  WideningScratch(const WideningScratch &) = delete;
  WideningScratch &operator=(const WideningScratch &) = delete;

  /// Interned principal-functor sets (support/PfSetInterner.h).
  PfSetInterner PfSets;
  /// Visited set of the inclusion checker.
  PairTable Incl;
  /// Product memo of the intersection construction.
  PairTable ProductMemo;

  // --- widening loop state (see typegraph/Widening.cpp) ---
  /// Correspondence-walk visited set, mapping pair -> walk index.
  PairTable WalkSeen;
  /// Pairs whose cone was clash-free in the previous walk.
  PairTable Clean;
  std::vector<std::pair<NodeId, NodeId>> Pairs;     ///< walk pair list
  std::vector<std::pair<uint32_t, uint32_t>> Edges; ///< pair-graph edges
  std::vector<uint8_t> Flags;                       ///< per-pair walk flags
  std::vector<std::pair<NodeId, NodeId>> Clashes;
  /// Gn topology, filled by TypeGraph::fillTopology (the same code that
  /// fills the per-graph caches); PrevDepth double-buffers the depths
  /// for the incremental dirty diff.
  TypeGraph::Topology GnTopo;
  std::vector<uint32_t> PrevDepth;
  std::vector<NodeId> OrAnc;
  std::vector<uint32_t> BfsPos, Pf;
  /// Dirty-region propagation: structurally touched nodes, reverse-CSR
  /// adjacency, epoch-marked node sets.
  std::vector<NodeId> DirtyStruct, Worklist;
  std::vector<uint32_t> PredOff, PredDat, CsrFill;
  std::vector<uint64_t> NodeMark, ReachMark;
  uint64_t NodeEpoch = 0, ReachEpoch = 0;
  std::vector<NodeId> StartBuf; ///< collapsing-union start vertices
  std::vector<uint32_t> PairWork;

  uint64_t beginNodeEpoch(size_t N) {
    if (NodeMark.size() < N)
      NodeMark.resize(N, 0);
    return ++NodeEpoch;
  }
  uint64_t beginReachEpoch(size_t N) {
    if (ReachMark.size() < N)
      ReachMark.resize(N, 0);
    return ++ReachEpoch;
  }
};

namespace detail {
/// The thread-local fallback for callers that do not own a scratch.
WideningScratch &wideningScratchOr(WideningScratch *WS);
} // namespace detail

/// True if Cc(G1) is a subset of Cc(G2).
bool graphIncludes(const TypeGraph &G2, const TypeGraph &G1,
                   const SymbolTable &Syms, WideningScratch *WS = nullptr);

/// True if the denotation of vertex \p V1 of \p G1 is included in the
/// denotation of vertex \p V2 of \p G2. \p G1 and \p G2 may alias (the
/// widening compares vertices of one graph).
bool vertexIncludes(const TypeGraph &G2, NodeId V2, const TypeGraph &G1,
                    NodeId V1, const SymbolTable &Syms,
                    WideningScratch *WS = nullptr);

/// Semantic equality (inclusion both ways).
bool graphEquals(const TypeGraph &A, const TypeGraph &B,
                 const SymbolTable &Syms, WideningScratch *WS = nullptr);

/// Returns a normalized G3 with Cc(G1) ∩ Cc(G2) ⊆ Cc(G3) (exact except
/// when a cap fires).
TypeGraph graphIntersect(const TypeGraph &G1, const TypeGraph &G2,
                         const SymbolTable &Syms,
                         const NormalizeOptions &Opts = {},
                         NormalizeScratch *Scratch = nullptr,
                         WideningScratch *WS = nullptr);

/// Returns a normalized G3 with Cc(G1) ∪ Cc(G2) ⊆ Cc(G3).
TypeGraph graphUnion(const TypeGraph &G1, const TypeGraph &G2,
                     const SymbolTable &Syms,
                     const NormalizeOptions &Opts = {},
                     NormalizeScratch *Scratch = nullptr);

/// Restricts \p V to terms with principal functor \p Fn (the leaf-domain
/// unification primitive): returns false if no such terms exist;
/// otherwise fills \p ArgsOut with one normalized graph per argument.
/// \p V must be normalized.
bool graphRestrict(const TypeGraph &V, FunctorId Fn, const SymbolTable &Syms,
                   const NormalizeOptions &Opts,
                   std::vector<TypeGraph> &ArgsOut,
                   NormalizeScratch *Scratch = nullptr);

/// Builds the normalized graph denoting f(a1, ..., an) from normalized
/// argument graphs (bottom if any argument is bottom).
TypeGraph graphConstruct(FunctorId Fn, const std::vector<TypeGraph> &Args,
                         const SymbolTable &Syms,
                         const NormalizeOptions &Opts,
                         NormalizeScratch *Scratch = nullptr);

/// Deep-copies the structure reachable from \p V in \p From into \p Out,
/// returning the id of the copy. Used by product constructions.
NodeId copySubgraph(const TypeGraph &From, NodeId V, TypeGraph &Out);

} // namespace gaia

#endif // GAIA_TYPEGRAPH_GRAPHOPS_H
