//===- typegraph/GrammarPrinter.cpp ----------------------------------------=//

#include "typegraph/GrammarPrinter.h"

#include "support/Debug.h"
#include "typegraph/Normalize.h"

#include <cctype>
#include <sstream>
#include <vector>

using namespace gaia;

namespace {

static std::string atomText(const SymbolTable &Syms, FunctorId Fn) {
  const std::string &Name = Syms.functorName(Fn);
  if (Fn == Syms.consFunctor())
    return "cons";
  if (Name == "[]" || Name == "{}" || Name == "!" || Name == ";")
    return Name;
  bool Simple = !Name.empty() &&
                (std::islower(static_cast<unsigned char>(Name[0])) ||
                 std::isdigit(static_cast<unsigned char>(Name[0])) ||
                 Name[0] == '-');
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '-')
      Simple = false;
  if (Simple)
    return Name;
  return "'" + Name + "'";
}

/// Prints the minimal automaton of a graph as a tree grammar, sharing
/// nonterminals exactly the way the paper's figures do.
class Printer {
public:
  Printer(const TypeGraph &G, const SymbolTable &Syms)
      : A(buildAutomaton(G, Syms)), Syms(Syms) {}

  std::string run() {
    if (A.Empty)
      return "T ::= $empty.\n";
    assignNames();
    std::ostringstream OS;
    for (uint32_t S : RuleOrder) {
      const GrammarAutomaton::State &St = A.States[S];
      OS << Names[S] << " ::= ";
      bool First = true;
      if (St.IsAny) {
        OS << "Any";
        First = false;
      }
      if (St.HasInt) {
        if (!First)
          OS << " | ";
        OS << "Int";
        First = false;
      }
      for (const auto &[Fn, Args] : St.Trans) {
        if (!First)
          OS << " | ";
        First = false;
        OS << altText(Fn, Args);
      }
      if (First)
        OS << "$empty";
      OS << ".\n";
    }
    return OS.str();
  }

  std::string runInline() {
    if (A.Empty)
      return "$empty";
    const GrammarAutomaton::State &Root = A.States[A.Root];
    if (Root.IsAny)
      return "Any";
    if (Root.HasInt && Root.Trans.empty())
      return "Int";
    std::string Text = run();
    std::string Out;
    for (char C : Text) {
      if (C == '\n') {
        if (!Out.empty() && Out.back() != ' ')
          Out += "  ";
        continue;
      }
      Out += C;
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    return Out;
  }

private:
  /// True if references to state \p S print inline (Any / Int states).
  bool isInline(uint32_t S) const {
    const GrammarAutomaton::State &St = A.States[S];
    return St.IsAny || (St.HasInt && St.Trans.empty());
  }

  void assignNames() {
    Names.assign(A.States.size(), "");
    // Breadth-first from the root for stable, readable numbering.
    std::vector<uint32_t> Queue{A.Root};
    std::vector<bool> Seen(A.States.size(), false);
    Seen[A.Root] = true;
    unsigned Counter = 0;
    for (size_t I = 0; I != Queue.size(); ++I) {
      uint32_t S = Queue[I];
      if (S == A.Root || !isInline(S)) {
        Names[S] = Counter == 0 ? "T" : "T" + std::to_string(Counter);
        ++Counter;
        RuleOrder.push_back(S);
      }
      for (const auto &[Fn, Args] : A.States[S].Trans)
        for (uint32_t Arg : Args)
          if (!Seen[Arg]) {
            Seen[Arg] = true;
            Queue.push_back(Arg);
          }
    }
  }

  std::string refText(uint32_t S) const {
    if (isInline(S) && S != A.Root) {
      const GrammarAutomaton::State &St = A.States[S];
      return St.IsAny ? "Any" : "Int";
    }
    return Names[S];
  }

  std::string altText(FunctorId Fn, const std::vector<uint32_t> &Args) {
    std::string Text = atomText(Syms, Fn);
    if (Args.empty())
      return Text;
    Text += "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Text += ",";
      Text += refText(Args[I]);
    }
    Text += ")";
    return Text;
  }

  GrammarAutomaton A;
  const SymbolTable &Syms;
  std::vector<std::string> Names;
  std::vector<uint32_t> RuleOrder;
};

} // namespace

std::string gaia::printGrammar(const TypeGraph &G, const SymbolTable &Syms) {
  return Printer(G, Syms).run();
}

std::string gaia::printGrammarInline(const TypeGraph &G,
                                     const SymbolTable &Syms) {
  return Printer(G, Syms).runInline();
}
