//===- typegraph/OpCache.h - Memoized graph operations over canonical ids -==//
///
/// \file
/// Memoization layer over the Section 6.9 operations (union,
/// intersection, inclusion), the Section 7 widening, and the two
/// leaf-domain unification primitives (principal-functor restriction and
/// construction — by call count the hottest graph operations of the
/// analysis). Operands are hash-consed through a GraphInterner, so cache
/// keys are canonical-id tuples and semantic equality (`equals`) is an
/// O(1) id comparison.
///
/// The cache is exact: graph operations are pure functions of the
/// operand *languages* (all inputs are normalized, and normalization is
/// canonical), so a hit returns a graph language-equal to what
/// recomputation would produce — the property tests in
/// tests/InternerPropertyTest.cpp assert exactly this.
///
/// One OpCache per analysis, threaded through TypeLeaf::Context; the
/// normalization options (or-cap) and widening options are fixed for the
/// cache's lifetime, matching how the analyzer configures a run.
///
/// For the batch runtime (src/runtime/) the cache is *two-tier*:
/// `freeze()` snapshots a populated OpCache (result maps plus the
/// interner) into an immutable FrozenOpTier, and a fresh OpCache
/// constructed over that tier consults it lock-free before its private
/// delta maps. The tier is never written after freezing, so any number
/// of concurrent per-worker caches can share one; results frozen from a
/// warmup run are exact for every later run with the same normalization
/// and widening options (the runtime's SharedCache gates on that).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_OPCACHE_H
#define GAIA_TYPEGRAPH_OPCACHE_H

#include "support/GraphInterner.h"
#include "support/Relocation.h"
#include "typegraph/CacheDelta.h"
#include "typegraph/Normalize.h"
#include "typegraph/Widening.h"

#include <unordered_map>

namespace gaia {

/// Hit/miss counters, surfaced in EngineStats by the analyzer and in the
/// Table 3 bench output.
struct OpCacheStats {
  uint64_t Hits = 0;       ///< resolved in the private delta maps
  uint64_t Misses = 0;     ///< computed and recorded in the delta
  uint64_t SharedHits = 0; ///< resolved in the frozen shared tier
  double hitRate() const {
    uint64_t Total = Hits + SharedHits + Misses;
    return Total ? double(Hits + SharedHits) / double(Total) : 0.0;
  }
  double sharedHitRate() const {
    uint64_t Total = Hits + SharedHits + Misses;
    return Total ? double(SharedHits) / double(Total) : 0.0;
  }
};

/// Memoized outcome of a principal-functor restriction.
struct RestrictMemo {
  bool Ok = false;
  SmallVector<CanonId, 4> Args;
};

/// Delta-map value wrapper: the memoized result plus a cheap per-entry
/// heat counter. harvestDelta promotes entries whose count clears the
/// caller's threshold; the counter never reaches the frozen tier.
template <typename T> struct Counted {
  T Value;
  uint32_t Hits = 0;
};

/// An immutable snapshot of a populated OpCache: the read-only shared
/// tier of the batch runtime. Keys and values are canonical ids of the
/// embedded FrozenInternTier; lookups are const and lock-free, safe for
/// unsynchronized concurrent readers. Construct via OpCache::freeze().
/// The recorded results are valid only for runs whose normalization and
/// widening configuration matches the one the source cache ran with.
///
/// Freeze discipline (gaia-lint `freeze-fields` / `freeze-methods`):
/// every field is const and no mutating member function exists; in audit
/// builds (GAIA_AUDIT) the result maps live in a FrozenArena sealed to
/// PROT_READ once freeze() completes.
struct FrozenOpTier {
  using PairU8Map =
      FrozenMap<std::pair<CanonId, CanonId>, uint8_t, PairHash>;
  using PairIdMap =
      FrozenMap<std::pair<CanonId, CanonId>, CanonId, PairHash>;
  using RestrictMap =
      FrozenMap<std::pair<CanonId, uint32_t>, RestrictMemo, PairHash>;
  using ConstructMap =
      FrozenMap<std::vector<uint32_t>, CanonId, IdVectorHash>;

  /// Mutable staging area for freeze(); in audit builds the maps already
  /// draw from the tier's arena.
  struct Builder {
    Builder()
        : Arena(makeTierArena()),
          Incl(makeFrozenContainer<PairU8Map>(Arena)),
          Union(makeFrozenContainer<PairIdMap>(Arena)),
          Inter(makeFrozenContainer<PairIdMap>(Arena)),
          Widen(makeFrozenContainer<PairIdMap>(Arena)),
          Restrict(makeFrozenContainer<RestrictMap>(Arena)),
          Construct(makeFrozenContainer<ConstructMap>(Arena)) {}
    std::shared_ptr<FrozenArena> Arena;
    std::shared_ptr<const FrozenInternTier> Intern;
    std::shared_ptr<const FrozenPfTier> Pf;
    NormalizeOptions Norm;
    PairU8Map Incl;
    PairIdMap Union;
    PairIdMap Inter;
    PairIdMap Widen;
    RestrictMap Restrict;
    ConstructMap Construct;
  };

  explicit FrozenOpTier(Builder &&B)
      : Arena(std::move(B.Arena)), Intern(std::move(B.Intern)),
        Pf(std::move(B.Pf)), Norm(B.Norm), Incl(std::move(B.Incl)),
        Union(std::move(B.Union)), Inter(std::move(B.Inter)),
        Widen(std::move(B.Widen)), Restrict(std::move(B.Restrict)),
        Construct(std::move(B.Construct)) {}

  /// Container teardown writes into the storage it releases, so the last
  /// reference lifts the audit seal before the members destruct.
  ~FrozenOpTier() {
    if (Arena)
      Arena->unseal();
  }

  /// Audit-build storage arena (null otherwise); declared first so it
  /// outlives the maps it backs.
  const std::shared_ptr<FrozenArena> Arena;
  const std::shared_ptr<const FrozenInternTier> Intern;
  /// Frozen pf-set tier (support/PfSetInterner.h). Every pf-set of every
  /// canonical graph in Intern is recorded here, and every canonical
  /// graph's topology cache is primed against it at freeze() time under
  /// this tier's epoch — so concurrent widenings over tier graphs are
  /// pure reads.
  const std::shared_ptr<const FrozenPfTier> Pf;
  const NormalizeOptions Norm;
  const PairU8Map Incl;
  const PairIdMap Union;
  const PairIdMap Inter;
  const PairIdMap Widen;
  const RestrictMap Restrict;
  const ConstructMap Construct;

  uint64_t resultCount() const {
    return Incl.size() + Union.size() + Inter.size() + Widen.size() +
           Restrict.size() + Construct.size();
  }

  /// Seals the arena (audit builds): every later write to tier storage
  /// faults. No-op without GAIA_AUDIT.
  void sealStorage() const {
    if (Arena)
      Arena->seal();
  }
};

/// Memo cache for the memoized graph operations. Not thread-safe; may
/// be layered over a FrozenOpTier, which is only ever read.
class OpCache {
public:
  OpCache(const SymbolTable &Syms, const NormalizeOptions &Norm,
          std::shared_ptr<const FrozenOpTier> SharedTier = nullptr)
      : Shared(std::move(SharedTier)),
        Interned(Syms, Shared ? Shared->Intern : nullptr),
        WScratch(Shared ? Shared->Pf : nullptr), Syms(Syms), Norm(Norm) {}

  /// True if Cc(Small) is a subset of Cc(Big).
  bool includes(const TypeGraph &Big, const TypeGraph &Small);
  /// Cached graphUnion (commutative: keys are unordered id pairs).
  TypeGraph unionOf(const TypeGraph &A, const TypeGraph &B);
  /// Cached graphIntersect (commutative).
  TypeGraph intersectOf(const TypeGraph &A, const TypeGraph &B);
  /// Cached graphWiden. \p Opts must be stable across the cache's
  /// lifetime (the analyzer fixes it per run); \p WStats is bumped with
  /// a CacheHits tick instead of the full rule counters on a hit.
  TypeGraph widenOf(const TypeGraph &Old, const TypeGraph &New,
                    const WideningOptions &Opts, WideningStats *WStats);
  /// Cached graphRestrict: restricts \p V to principal functor \p Fn,
  /// filling \p ArgsOut with one normalized graph per argument.
  bool restrictOf(const TypeGraph &V, FunctorId Fn,
                  std::vector<TypeGraph> &ArgsOut);
  /// Cached graphConstruct: the normalized graph denoting f(a1,...,an).
  TypeGraph constructOf(FunctorId Fn, const std::vector<TypeGraph> &Args);

  /// Semantic equality as a canonical-id comparison.
  bool equals(const TypeGraph &A, const TypeGraph &B) {
    return Interned.intern(A) == Interned.intern(B);
  }

  /// Canonical id of \p G — the per-slot key the engine's memo-table
  /// lookup hashes over.
  CanonId canonId(const TypeGraph &G) { return Interned.intern(G); }

  GraphInterner &interner() { return Interned; }
  const GraphInterner &interner() const { return Interned; }
  /// The analysis' pf-set interner (lives in the widening scratch,
  /// layered over the shared tier's frozen pf sets when one is given).
  PfSetInterner &pfSets() { return WScratch.PfSets; }
  const PfSetStats &pfStats() const { return WScratch.PfSets.stats(); }
  WideningScratch &wideningScratch() { return WScratch; }
  const FrozenOpTier *sharedTier() const { return Shared.get(); }
  const OpCacheStats &stats() const { return St; }

  /// Snapshots this cache (shared tier included, ids preserved) into an
  /// immutable tier safe for unsynchronized concurrent lookups.
  std::shared_ptr<const FrozenOpTier> freeze() const;

  /// Harvests the hot part of the private delta — entries (and privately
  /// interned languages) re-resolved at least \p MinHits times — as a
  /// portable value-carrying CacheDelta. Returns null when nothing
  /// cleared the threshold. MinHits 0 harvests the entire delta.
  std::shared_ptr<const CacheDelta> harvestDelta(uint32_t MinHits) const;

  /// Merges \p D into this cache's private delta: functor ids are
  /// relocated into \p TargetSyms by (name, arity), every carried graph
  /// is re-interned, and entries land as ordinary delta entries (a
  /// following freeze() bakes them into the tier). \p TargetSyms must be
  /// the table this cache was constructed over; it grows by the delta's
  /// unknown symbols. Results stay exact only if the delta was produced
  /// under the same normalization/widening configuration as this cache —
  /// the lifecycle gates that via SharedCache::compatibleWith. When
  /// \p GraphReloc is non-null, each graph entry carrying a source id
  /// records its old-id -> new-id mapping there (compaction's relocation
  /// table). Returns the number of entries newly recorded.
  uint64_t absorbDelta(SymbolTable &TargetSyms, const CacheDelta &D,
                       RelocationTable<CanonId> *GraphReloc = nullptr);

private:
  /// True if \p Id's canonical graph carries a normalization certificate
  /// for this cache's options — the precondition of the equality and
  /// inclusion fast paths (re-normalizing a certified graph reproduces
  /// it bit-for-bit; an uncertified one may have been truncated).
  bool certified(CanonId Id) const {
    return Interned.graph(Id).isNormalizedFor(Norm.OrCap, Norm.MaxNodes,
                                              Norm.MaxDepth);
  }

  /// Read-only shared tier (may be null). Declared before the interner:
  /// the interner is constructed over the tier's intern layer.
  std::shared_ptr<const FrozenOpTier> Shared;
  GraphInterner Interned;
  /// Widening/pairwise-op scratch (owns the pf-set interner, layered
  /// over the shared tier's frozen pf sets). Mutable so the const
  /// freeze() can run the pf pre-pass through it.
  mutable WideningScratch WScratch;
  const SymbolTable &Syms;
  NormalizeOptions Norm;
  /// Scratch buffers handed to every underlying graph operation, so the
  /// whole analysis shares one set of normalization work arrays.
  NormalizeScratch Scratch;
  std::unordered_map<std::pair<CanonId, CanonId>, Counted<uint8_t>, PairHash>
      Incl;
  std::unordered_map<std::pair<CanonId, CanonId>, Counted<CanonId>, PairHash>
      Union;
  std::unordered_map<std::pair<CanonId, CanonId>, Counted<CanonId>, PairHash>
      Inter;
  std::unordered_map<std::pair<CanonId, CanonId>, Counted<CanonId>, PairHash>
      Widen;
  /// (value id, functor) -> restriction outcome.
  std::unordered_map<std::pair<CanonId, uint32_t>, Counted<RestrictMemo>,
                     PairHash>
      Restrict;
  /// [functor, arg ids...] -> constructed graph id.
  std::unordered_map<std::vector<uint32_t>, Counted<CanonId>, IdVectorHash>
      Construct;
  OpCacheStats St;
};

} // namespace gaia

#endif // GAIA_TYPEGRAPH_OPCACHE_H
