//===- typegraph/OpCache.h - Memoized graph operations over canonical ids -==//
///
/// \file
/// Memoization layer over the Section 6.9 operations (union,
/// intersection, inclusion), the Section 7 widening, and the two
/// leaf-domain unification primitives (principal-functor restriction and
/// construction — by call count the hottest graph operations of the
/// analysis). Operands are hash-consed through a GraphInterner, so cache
/// keys are canonical-id tuples and semantic equality (`equals`) is an
/// O(1) id comparison.
///
/// The cache is exact: graph operations are pure functions of the
/// operand *languages* (all inputs are normalized, and normalization is
/// canonical), so a hit returns a graph language-equal to what
/// recomputation would produce — the property tests in
/// tests/InternerPropertyTest.cpp assert exactly this.
///
/// One OpCache per analysis, threaded through TypeLeaf::Context; the
/// normalization options (or-cap) and widening options are fixed for the
/// cache's lifetime, matching how the analyzer configures a run.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_OPCACHE_H
#define GAIA_TYPEGRAPH_OPCACHE_H

#include "support/GraphInterner.h"
#include "typegraph/Normalize.h"
#include "typegraph/Widening.h"

#include <unordered_map>

namespace gaia {

/// Hit/miss counters, surfaced in EngineStats by the analyzer and in the
/// Table 3 bench output.
struct OpCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? double(Hits) / double(Total) : 0.0;
  }
};

/// Memo cache for the four binary graph operations. Not thread-safe.
class OpCache {
public:
  OpCache(const SymbolTable &Syms, const NormalizeOptions &Norm)
      : Interned(Syms), Syms(Syms), Norm(Norm) {}

  /// True if Cc(Small) is a subset of Cc(Big).
  bool includes(const TypeGraph &Big, const TypeGraph &Small);
  /// Cached graphUnion (commutative: keys are unordered id pairs).
  TypeGraph unionOf(const TypeGraph &A, const TypeGraph &B);
  /// Cached graphIntersect (commutative).
  TypeGraph intersectOf(const TypeGraph &A, const TypeGraph &B);
  /// Cached graphWiden. \p Opts must be stable across the cache's
  /// lifetime (the analyzer fixes it per run); \p WStats is bumped with
  /// a CacheHits tick instead of the full rule counters on a hit.
  TypeGraph widenOf(const TypeGraph &Old, const TypeGraph &New,
                    const WideningOptions &Opts, WideningStats *WStats);
  /// Cached graphRestrict: restricts \p V to principal functor \p Fn,
  /// filling \p ArgsOut with one normalized graph per argument.
  bool restrictOf(const TypeGraph &V, FunctorId Fn,
                  std::vector<TypeGraph> &ArgsOut);
  /// Cached graphConstruct: the normalized graph denoting f(a1,...,an).
  TypeGraph constructOf(FunctorId Fn, const std::vector<TypeGraph> &Args);

  /// Semantic equality as a canonical-id comparison.
  bool equals(const TypeGraph &A, const TypeGraph &B) {
    return Interned.intern(A) == Interned.intern(B);
  }

  /// Canonical id of \p G — the per-slot key the engine's memo-table
  /// lookup hashes over.
  CanonId canonId(const TypeGraph &G) { return Interned.intern(G); }

  GraphInterner &interner() { return Interned; }
  const OpCacheStats &stats() const { return St; }

private:
  GraphInterner Interned;
  const SymbolTable &Syms;
  NormalizeOptions Norm;
  /// Scratch buffers handed to every underlying graph operation, so the
  /// whole analysis shares one set of normalization work arrays.
  NormalizeScratch Scratch;
  std::unordered_map<std::pair<CanonId, CanonId>, uint8_t, PairHash> Incl;
  std::unordered_map<std::pair<CanonId, CanonId>, CanonId, PairHash> Union;
  std::unordered_map<std::pair<CanonId, CanonId>, CanonId, PairHash> Inter;
  std::unordered_map<std::pair<CanonId, CanonId>, CanonId, PairHash> Widen;
  /// (value id, functor) -> restriction outcome.
  struct RestrictResult {
    bool Ok = false;
    SmallVector<CanonId, 4> Args;
  };
  std::unordered_map<std::pair<CanonId, uint32_t>, RestrictResult, PairHash>
      Restrict;
  /// [functor, arg ids...] -> constructed graph id.
  std::unordered_map<std::vector<uint32_t>, CanonId, IdVectorHash> Construct;
  OpCacheStats St;
};

} // namespace gaia

#endif // GAIA_TYPEGRAPH_OPCACHE_H
