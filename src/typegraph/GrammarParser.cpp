//===- typegraph/GrammarParser.cpp -----------------------------------------=//

#include "typegraph/GrammarParser.h"

#include "typegraph/Normalize.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <vector>

using namespace gaia;

namespace {

enum class TokKind : uint8_t {
  NonTerm, // T, T1, S ...
  Atom,    // lower-case, quoted, symbolic, integers, []
  LParen,
  RParen,
  Comma,
  Bar,
  Dot,
  Def, // ::=
  End,
  Error,
};

struct Token {
  TokKind Kind;
  std::string Text;
};

class GrammarLexer {
public:
  explicit GrammarLexer(std::string_view Text) : Text(Text) {}

  Token next() {
    skipSpace();
    if (Pos >= Text.size())
      return {TokKind::End, ""};
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      return {TokKind::LParen, "("};
    }
    if (C == ')') {
      ++Pos;
      return {TokKind::RParen, ")"};
    }
    if (C == ',') {
      ++Pos;
      return {TokKind::Comma, ","};
    }
    if (C == '|') {
      ++Pos;
      return {TokKind::Bar, "|"};
    }
    if (C == '.') {
      ++Pos;
      return {TokKind::Dot, "."};
    }
    if (Text.compare(Pos, 3, "::=") == 0) {
      Pos += 3;
      return {TokKind::Def, "::="};
    }
    if (C == '\'') {
      size_t Start = ++Pos;
      while (Pos < Text.size() && Text[Pos] != '\'')
        ++Pos;
      if (Pos >= Text.size())
        return {TokKind::Error, "unterminated quoted atom"};
      std::string Name(Text.substr(Start, Pos - Start));
      ++Pos;
      return {TokKind::Atom, Name};
    }
    if (Text.compare(Pos, 2, "[]") == 0) {
      Pos += 2;
      return {TokKind::Atom, "[]"};
    }
    if (std::isupper(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      return {TokKind::NonTerm, std::string(Text.substr(Start, Pos - Start))};
    }
    if (std::islower(static_cast<unsigned char>(C)) ||
        std::isdigit(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      return {TokKind::Atom, std::string(Text.substr(Start, Pos - Start))};
    }
    // Symbolic atoms like +, *, -, $empty.
    static const std::string SymChars = "+-*/\\^<>=~:?@#&$";
    if (SymChars.find(C) != std::string::npos) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (SymChars.find(Text[Pos]) != std::string::npos ||
              std::isalnum(static_cast<unsigned char>(Text[Pos]))))
        ++Pos;
      return {TokKind::Atom, std::string(Text.substr(Start, Pos - Start))};
    }
    return {TokKind::Error, std::string("unexpected character '") + C + "'"};
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

class GrammarParserImpl {
public:
  GrammarParserImpl(std::string_view Text, SymbolTable &Syms)
      : Lexer(Text), Syms(Syms) {
    advance();
  }

  std::optional<TypeGraph> parse(std::string *Err) {
    // First pass requires rule heads before references; we build or-nodes
    // for nonterminals lazily instead, then check all were defined.
    while (Tok.Kind != TokKind::End) {
      if (!parseRule()) {
        if (Err)
          *Err = Error;
        return std::nullopt;
      }
    }
    if (RuleOrder.empty()) {
      if (Err)
        *Err = "no rules";
      return std::nullopt;
    }
    // Deterministic diagnostic regardless of hash order: report the
    // alphabetically first undefined nonterminal.
    std::vector<std::string_view> Undefined;
    for (const auto &[Name, Info] : NonTerms)
      if (!Info.Defined)
        Undefined.push_back(Name);
    if (!Undefined.empty()) {
      if (Err)
        *Err = "undefined nonterminal " +
               std::string(*std::min_element(Undefined.begin(),
                                             Undefined.end()));
      return std::nullopt;
    }
    G.setRoot(NonTerms.at(RuleOrder.front()).Node);
    return normalizeGraph(G, Syms);
  }

private:
  struct NTInfo {
    NodeId Node = InvalidNode;
    bool Defined = false;
  };

  void advance() { Tok = Lexer.next(); }

  bool fail(const std::string &Msg) {
    Error = Msg;
    return false;
  }

  NodeId orNodeFor(const std::string &Name) {
    auto [It, Inserted] = NonTerms.emplace(Name, NTInfo{});
    if (Inserted)
      It->second.Node = G.addOr({});
    return It->second.Node;
  }

  bool parseRule() {
    if (Tok.Kind != TokKind::NonTerm)
      return fail("expected nonterminal at rule start, got '" + Tok.Text +
                  "'");
    std::string Head = Tok.Text;
    advance();
    if (Tok.Kind != TokKind::Def)
      return fail("expected ::=");
    advance();
    NodeId Or = orNodeFor(Head);
    NTInfo &Info = NonTerms.at(Head);
    if (Info.Defined)
      return fail("duplicate rule for " + Head);
    Info.Defined = true;
    RuleOrder.push_back(Head);

    std::vector<NodeId> Alts;
    while (true) {
      NodeId Alt;
      if (!parseAlt(Alt))
        return false;
      if (Alt != InvalidNode)
        Alts.push_back(Alt);
      if (Tok.Kind == TokKind::Bar) {
        advance();
        continue;
      }
      break;
    }
    if (Tok.Kind != TokKind::Dot)
      return fail("expected '.' at end of rule");
    advance();
    G.node(Or).Succs = std::move(Alts);
    return true;
  }

  /// Parses one alternative: Any | Int | atom | atom(args). Returns
  /// InvalidNode (with success) for the $empty marker.
  bool parseAlt(NodeId &Result) {
    if (Tok.Kind == TokKind::NonTerm) {
      if (Tok.Text == "Any") {
        Result = G.addAny();
        advance();
        return true;
      }
      if (Tok.Text == "Int") {
        Result = G.addInt();
        advance();
        return true;
      }
      return fail("nonterminal '" + Tok.Text +
                  "' cannot be a whole alternative (wrap it: the paper's "
                  "notation allows it, write the referenced rules inline)");
    }
    if (Tok.Kind != TokKind::Atom)
      return fail("expected alternative, got '" + Tok.Text + "'");
    std::string Name = Tok.Text;
    advance();
    if (Name == "$empty") {
      Result = InvalidNode;
      return true;
    }
    std::vector<NodeId> Args;
    if (Tok.Kind == TokKind::LParen) {
      advance();
      while (true) {
        NodeId Arg;
        if (!parseArg(Arg))
          return false;
        Args.push_back(Arg);
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
      if (Tok.Kind != TokKind::RParen)
        return fail("expected ')'");
      advance();
    }
    FunctorId Fn = Name == "cons" && Args.size() == 2
                       ? Syms.consFunctor()
                       : Syms.functor(Name, static_cast<uint32_t>(Args.size()));
    Result = G.addFunc(Fn, std::move(Args));
    return true;
  }

  /// Parses an argument position: Any | Int | NonTerm | nested term.
  bool parseArg(NodeId &Result) {
    if (Tok.Kind == TokKind::NonTerm) {
      if (Tok.Text == "Any") {
        NodeId Leaf = G.addAny();
        Result = G.addOr({Leaf});
        advance();
        return true;
      }
      if (Tok.Text == "Int") {
        NodeId Leaf = G.addInt();
        Result = G.addOr({Leaf});
        advance();
        return true;
      }
      Result = orNodeFor(Tok.Text);
      advance();
      return true;
    }
    // Nested functor term: wrap in an anonymous or-vertex.
    NodeId Alt;
    if (!parseAlt(Alt))
      return false;
    if (Alt == InvalidNode)
      return fail("$empty is not a valid argument");
    Result = G.addOr({Alt});
    return true;
  }

  GrammarLexer Lexer;
  SymbolTable &Syms;
  Token Tok;
  std::string Error;
  TypeGraph G;
  std::unordered_map<std::string, NTInfo> NonTerms;
  std::vector<std::string> RuleOrder;
};

} // namespace

std::optional<TypeGraph> gaia::parseGrammar(std::string_view Text,
                                            SymbolTable &Syms,
                                            std::string *Err) {
  GrammarParserImpl P(Text, Syms);
  return P.parse(Err);
}
