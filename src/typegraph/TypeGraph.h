//===- typegraph/TypeGraph.h - Type graphs (disjunctive rational trees) ---==//
///
/// \file
/// Type graphs in the sense of Bruynooghe & Janssens as used by Van
/// Hentenryck, Cortesi & Le Charlier, "Type Analysis of Prolog Using Type
/// Graphs" (PLDI'94 / JLP'95), Section 6.
///
/// A type graph is a rooted directed graph whose vertices are:
///   - any-vertices   (denote the set of all terms),
///   - int-vertices   (denote all integers; the paper's "more types (e.g.
///                     Integer) can be added easily" extension),
///   - functor-vertices f/n (denote terms f(t1..tn) with ti in the i-th
///                     successor's denotation),
///   - or-vertices    (denote the union of their successors' denotations).
///
/// The analyzer keeps graphs in the paper's *cosmetic restrictions*:
///   Flip-Flop, Or-Cycle, No-Sharing, Isolated-Any, and the (expressive)
///   Principal-Functor restriction; `validate` checks all of them and
///   `normalizeGraph` (typegraph/Normalize.h) re-establishes them.
///
/// Graphs are value types: nodes live in a vector and refer to each other
/// by dense 32-bit ids, so no manual memory management is needed (the
/// awkward part of the original C system). Successor lists use inline
/// small-buffer storage (or- and functor-arity is almost always <= 2 on
/// the Section 9 programs). The node vector itself is *copy-on-write*:
/// copying a graph bumps a reference count, and the first mutation of a
/// shared graph detaches a private clone. The analysis engine moves
/// thousands of graph values per clause iteration (substitution frames,
/// memo tables, cache lookups returning canonical representatives), and
/// virtually none of them are ever mutated — under COW they all share
/// one allocation. Mutation detaches, so values keep value semantics;
/// concurrently shared frozen-tier graphs are never mutated in place
/// (a worker's copy detaches before writing).
///
/// A graph additionally carries *derived-result caches* that mutation
/// invalidates and copies preserve:
///   - a normalization certificate (`isNormalizedFor`) recording the
///     NormalizeOptions the graph is known to satisfy, letting
///     re-normalization of an already-canonical graph short-circuit;
///   - the BFS-structural signature (`support/GraphInterner.h`), so
///     hash-consing the same value repeatedly does not re-walk the graph;
///   - the interner's (epoch, canonical id) pair, making repeat interning
///     of a cached value O(1);
///   - a *topology cache* (`topology`): BFS depth/parent/order, nearest
///     or-ancestor links, and one interned pf-set id per vertex
///     (support/PfSetInterner.h), so the Section 7 widening — which used
///     to rebuild all of this on every call — reuses one immutable
///     snapshot shared by every copy of the value.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_TYPEGRAPH_H
#define GAIA_TYPEGRAPH_TYPEGRAPH_H

#include "support/SmallVector.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gaia {

class PfSetInterner; // support/PfSetInterner.h

/// Dense id of a vertex inside one TypeGraph.
using NodeId = uint32_t;
constexpr NodeId InvalidNode = ~0u;

/// Successor list of a vertex: inline up to 2 entries (the dominant or-
/// degree and functor arity), heap beyond.
using SuccList = SmallVector<NodeId, 2>;

/// Vertex kinds. `Any` and `Int` are leaves; `Func` carries a functor and
/// has one successor per argument; `Or` is a disjunction.
enum class NodeKind : uint8_t { Any, Int, Func, Or };

/// One vertex of a type graph.
struct TGNode {
  NodeKind Kind = NodeKind::Any;
  /// Functor, valid iff Kind == Func.
  FunctorId Fn = InvalidFunctor;
  /// Ordered successors. Empty for Any/Int. For Func: one per argument.
  /// For Or: the alternatives (sorted by functor name; see
  /// TypeGraph::sortOrSuccessors).
  SuccList Succs;
};

/// A rooted type graph. See file comment.
class TypeGraph {
public:
  TypeGraph() = default;

  /// Adds an any-vertex and returns its id.
  NodeId addAny();
  /// Adds an int-vertex and returns its id.
  NodeId addInt();
  /// Adds a functor-vertex \p Fn with argument or-vertices \p Args.
  NodeId addFunc(FunctorId Fn, SuccList Args);
  /// Adds an or-vertex with alternatives \p Alts.
  NodeId addOr(SuccList Alts);

  void setRoot(NodeId Root) {
    invalidateDerived();
    RootId = Root;
  }
  NodeId root() const { return RootId; }

  const TGNode &node(NodeId Id) const {
    assert(NodesP && Id < NodesP->size() && "node id out of range");
    return (*NodesP)[Id];
  }
  /// Mutable vertex access. Conservatively drops the derived-result
  /// caches, and detaches the node storage if it is shared with other
  /// values: callers that take a mutable reference are editing
  /// structure. The reference is invalidated by any later mutation of
  /// the graph (detach or growth) — do not hold it across one.
  TGNode &node(NodeId Id) {
    assert(NodesP && Id < NodesP->size() && "node id out of range");
    invalidateDerived();
    return mutableNodes()[Id];
  }

  uint32_t numNodes() const {
    return NodesP ? static_cast<uint32_t>(NodesP->size()) : 0;
  }

  /// Reserves storage for \p N vertices (does not invalidate caches;
  /// detaches shared storage).
  void reserveNodes(uint32_t N) { mutableNodes().reserve(N); }

  /// True if the graph denotes the empty set *syntactically*: the root is
  /// an or-vertex without successors. (The paper forbids empty or-vertices;
  /// we use exactly one, the root of the canonical bottom graph.)
  bool isBottomGraph() const {
    if (RootId == InvalidNode)
      return true;
    const TGNode &Root = node(RootId);
    return Root.Kind == NodeKind::Or && Root.Succs.empty();
  }

  /// The canonical empty graph.
  static TypeGraph makeBottom();
  /// The canonical graph denoting all terms: an or-root with an any-leaf.
  static TypeGraph makeAny();
  /// The canonical graph denoting all integers.
  static TypeGraph makeInt();
  /// Or-root over f(Any,...,Any).
  static TypeGraph makeFunctorOfAny(const SymbolTable &Syms, FunctorId Fn);
  /// The canonical list graph  T ::= [] | cons(Any, T), used by input
  /// pattern specs and tag checks.
  static TypeGraph makeAnyList(SymbolTable &Syms);

  /// Breadth-first topology of the reachable part: depth (root = 1, as in
  /// the paper where depth is the length of the shortest path), BFS tree
  /// parent, and the BFS order. Unreachable nodes get Depth = 0 and
  /// Parent = InvalidNode.
  struct Topology {
    std::vector<uint32_t> Depth;
    std::vector<NodeId> Parent;
    std::vector<NodeId> BfsOrder;
  };
  Topology computeTopology() const;

  /// The mutation-invalidated, copy-preserved topology snapshot used by
  /// the widening fast path: the BFS topology plus, per vertex, the BFS
  /// position (the canonical ordering compact() numbers by), the nearest
  /// strict or-ancestor along BFS-tree parents, and the interned pf-set
  /// id (or-vertices only; InvalidPfSet elsewhere). PfEpoch tags which
  /// interner the ids belong to.
  struct TopoCache {
    Topology Topo;
    /// Node -> position in Topo.BfsOrder (~0u for unreachable nodes).
    std::vector<uint32_t> BfsPos;
    /// Node -> nearest strict or-vertex ancestor via tree parents
    /// (InvalidNode at the root / for unreachable nodes).
    std::vector<NodeId> OrAnc;
    /// Node -> interned pf-set id; InvalidPfSet for non-or vertices.
    std::vector<uint32_t> Pf;
    uint64_t PfEpoch = 0;
  };

  /// Returns the cached topology, building it on first use (or when the
  /// cached pf-set ids belong to an interner \p Pf does not honor). The
  /// snapshot is immutable and shared by copies of this value, so
  /// rebuilds replace the pointer — they never mutate the pointee, which
  /// concurrent readers of a frozen shared tier may hold.
  const TopoCache &topology(const SymbolTable &Syms, PfSetInterner &Pf) const;

  /// The cached topology if one is present (for readers that can cope
  /// with a miss, e.g. sizeMetric), else null.
  const TopoCache *topoCacheIfPresent() const { return Topo.get(); }

  /// The one implementation of the BFS + or-ancestor + pf-set assembly,
  /// shared by topology() (filling the per-graph cache) and the
  /// widening's scratch arrays (typegraph/Widening.cpp) — the two sides
  /// of the correspondence walk must compute these identically, so they
  /// must not have separate copies that can drift. Returns true if
  /// every interned pf id lies in \p Pf's shared tier.
  bool fillTopology(const SymbolTable &Syms, PfSetInterner &Pf,
                    Topology &Topo, std::vector<uint32_t> &BfsPos,
                    std::vector<NodeId> &OrAnc,
                    std::vector<uint32_t> &PfIds) const;

  /// Principal-functor set of a vertex (paper Section 6.3): functors of the
  /// functor-successors of an or-vertex, {f} for a functor-vertex f, and
  /// the empty set for any-vertices. An Int successor contributes the
  /// reserved '$int' pseudo-functor. The result is sorted.
  std::vector<FunctorId> pfSet(NodeId Id, const SymbolTable &Syms) const;

  /// Sorts the successors of every or-vertex by (functor name, arity),
  /// with any-vertices first and int-vertices via their '$int' name. The
  /// paper assumes this order for the correspondence relation. Uses the
  /// symbol table's memoized functor ranks, so a comparison is two
  /// integer loads instead of a string compare.
  void sortOrSuccessors(const SymbolTable &Syms);

  /// Returns a copy containing only the nodes reachable from the root,
  /// renumbered in BFS order (a deterministic canonical numbering).
  TypeGraph compact() const;

  /// Paper's size(g): number of reachable vertices plus edges.
  uint64_t sizeMetric() const;

  /// Checks all cosmetic restrictions plus the principal-functor
  /// restriction and successor sortedness. On failure returns false and,
  /// if \p Why is non-null, stores a diagnostic.
  bool validate(const SymbolTable &Syms, std::string *Why = nullptr) const;

  //===--------------------------------------------------------------------//
  // Derived-result caches. All are invalidated by any mutation and
  // preserved by copies/moves, so a canonical graph handed out by the
  // interner keeps its certificate and ids through the value plumbing.
  //===--------------------------------------------------------------------//

  /// Records that this graph is an output of normalization under the
  /// given option values (or one of the canonical constructors, which
  /// are normalized under *any* options — pass OptionIndependent).
  enum class NormScope : uint8_t { ForOptions, OptionIndependent };
  void markNormalized(uint32_t OrCap, uint32_t MaxNodes, uint32_t MaxDepth,
                      NormScope Scope = NormScope::ForOptions) {
    NormValid = true;
    NormUniversal = Scope == NormScope::OptionIndependent;
    NormOrCap = OrCap;
    NormMaxNodes = MaxNodes;
    NormMaxDepth = MaxDepth;
  }
  /// True if the graph is certified canonical for these option values,
  /// i.e. normalizeGraph with them would reproduce it structurally.
  bool isNormalizedFor(uint32_t OrCap, uint32_t MaxNodes,
                       uint32_t MaxDepth) const {
    return NormValid &&
           (NormUniversal || (NormOrCap == OrCap && NormMaxNodes == MaxNodes &&
                              NormMaxDepth == MaxDepth));
  }

  /// Cached BFS-structural signature (see support/GraphInterner.h). The
  /// mutators clear it; structuralHash fills it on first use.
  bool structSigValid() const { return SigValid; }
  uint64_t structSig() const { return Sig; }
  void setStructSig(uint64_t S) const {
    Sig = S;
    SigValid = true;
  }

  /// Cached (interner epoch, canonical id): a graph that has been
  /// interned remembers its id, so re-interning the same value — the
  /// single hottest operation of the cached analysis — is a tag compare.
  /// The scheme is tier-aware: epochs are drawn from one process-wide
  /// counter shared by live interners and frozen shared tiers
  /// (support/GraphInterner.h), so a cached id can never alias across
  /// tiers — an interner honors exactly its own epoch and (when layered
  /// over a frozen tier) the tier's epoch, whose ids form the dense
  /// prefix of its id space. Values resolved against a frozen tier are
  /// tagged with the *tier's* epoch, making their ids portable across
  /// every worker sharing that tier.
  uint64_t internEpoch() const { return InternEpoch; }
  uint32_t internId() const { return InternId; }
  void setInternCache(uint64_t Epoch, uint32_t Id) const {
    InternEpoch = Epoch;
    InternId = Id;
  }

  /// Debug-mode staleness audit: recomputes every derived cache this
  /// graph currently carries and checks it against the stored value (the
  /// structural signature against a fresh BFS hash, the topology cache
  /// against a fresh BFS, the normalization certificate against
  /// validate()). A mutator that forgot to invalidate shows up here as a
  /// loud failure instead of a wrong canonical id. Returns false and
  /// fills \p Why on mismatch.
  bool cachesFresh(const SymbolTable &Syms, std::string *Why = nullptr) const;
  void assertCachesFresh(const SymbolTable &Syms) const {
#ifndef NDEBUG
    std::string Why;
    assert(cachesFresh(Syms, &Why) && "stale derived cache");
#else
    (void)Syms;
#endif
  }

private:
  void invalidateDerived() {
    NormValid = false;
    SigValid = false;
    InternEpoch = 0;
    Topo.reset();
  }

  /// Copy-on-write access to the node storage: detaches a private clone
  /// when the vector is shared with other graph values. use_count() == 1
  /// guarantees sole ownership, so in-place mutation is safe even when
  /// other threads hold *other* graphs (they share only via copies,
  /// which detach before writing on their side).
  std::vector<TGNode> &mutableNodes() {
    if (!NodesP)
      NodesP = std::make_shared<std::vector<TGNode>>();
    else if (NodesP.use_count() > 1)
      NodesP = std::make_shared<std::vector<TGNode>>(*NodesP);
    return *NodesP;
  }

  /// Shared node storage (null for the default-constructed empty graph).
  std::shared_ptr<std::vector<TGNode>> NodesP;
  NodeId RootId = InvalidNode;

  /// Normalization certificate.
  bool NormValid = false;
  bool NormUniversal = false;
  uint32_t NormOrCap = 0;
  uint32_t NormMaxNodes = 0;
  uint32_t NormMaxDepth = 0;

  /// Structural signature and interner caches (mutable: filled through
  /// const lookups).
  mutable bool SigValid = false;
  mutable uint64_t Sig = 0;
  mutable uint64_t InternEpoch = 0;
  mutable uint32_t InternId = 0;
  /// Topology snapshot (mutable: filled through const lookups; the
  /// pointee is immutable, copies share it).
  mutable std::shared_ptr<const TopoCache> Topo;
};

/// Key used when comparing or-successors and pf-sets: orders functors by
/// (name, arity); Any sorts first.
struct SuccOrder {
  const SymbolTable &Syms;
  bool operator()(const std::pair<NodeKind, FunctorId> &A,
                  const std::pair<NodeKind, FunctorId> &B) const;
};

} // namespace gaia

#endif // GAIA_TYPEGRAPH_TYPEGRAPH_H
