//===- typegraph/TypeGraph.h - Type graphs (disjunctive rational trees) ---==//
///
/// \file
/// Type graphs in the sense of Bruynooghe & Janssens as used by Van
/// Hentenryck, Cortesi & Le Charlier, "Type Analysis of Prolog Using Type
/// Graphs" (PLDI'94 / JLP'95), Section 6.
///
/// A type graph is a rooted directed graph whose vertices are:
///   - any-vertices   (denote the set of all terms),
///   - int-vertices   (denote all integers; the paper's "more types (e.g.
///                     Integer) can be added easily" extension),
///   - functor-vertices f/n (denote terms f(t1..tn) with ti in the i-th
///                     successor's denotation),
///   - or-vertices    (denote the union of their successors' denotations).
///
/// The analyzer keeps graphs in the paper's *cosmetic restrictions*:
///   Flip-Flop, Or-Cycle, No-Sharing, Isolated-Any, and the (expressive)
///   Principal-Functor restriction; `validate` checks all of them and
///   `normalizeGraph` (typegraph/Normalize.h) re-establishes them.
///
/// Graphs are value types: nodes live in a vector and refer to each other
/// by dense 32-bit ids, so copying is a vector copy and no manual memory
/// management is needed (the awkward part of the original C system).
/// Successor lists use inline small-buffer storage (or- and functor-arity
/// is almost always <= 2 on the Section 9 programs), so copying a graph
/// performs one allocation for the node vector instead of one per vertex.
///
/// A graph additionally carries *derived-result caches* that mutation
/// invalidates and copies preserve:
///   - a normalization certificate (`isNormalizedFor`) recording the
///     NormalizeOptions the graph is known to satisfy, letting
///     re-normalization of an already-canonical graph short-circuit;
///   - the BFS-structural signature (`support/GraphInterner.h`), so
///     hash-consing the same value repeatedly does not re-walk the graph;
///   - the interner's (epoch, canonical id) pair, making repeat interning
///     of a cached value O(1).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_TYPEGRAPH_TYPEGRAPH_H
#define GAIA_TYPEGRAPH_TYPEGRAPH_H

#include "support/SmallVector.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace gaia {

/// Dense id of a vertex inside one TypeGraph.
using NodeId = uint32_t;
constexpr NodeId InvalidNode = ~0u;

/// Successor list of a vertex: inline up to 2 entries (the dominant or-
/// degree and functor arity), heap beyond.
using SuccList = SmallVector<NodeId, 2>;

/// Vertex kinds. `Any` and `Int` are leaves; `Func` carries a functor and
/// has one successor per argument; `Or` is a disjunction.
enum class NodeKind : uint8_t { Any, Int, Func, Or };

/// One vertex of a type graph.
struct TGNode {
  NodeKind Kind = NodeKind::Any;
  /// Functor, valid iff Kind == Func.
  FunctorId Fn = InvalidFunctor;
  /// Ordered successors. Empty for Any/Int. For Func: one per argument.
  /// For Or: the alternatives (sorted by functor name; see
  /// TypeGraph::sortOrSuccessors).
  SuccList Succs;
};

/// A rooted type graph. See file comment.
class TypeGraph {
public:
  TypeGraph() = default;

  /// Adds an any-vertex and returns its id.
  NodeId addAny();
  /// Adds an int-vertex and returns its id.
  NodeId addInt();
  /// Adds a functor-vertex \p Fn with argument or-vertices \p Args.
  NodeId addFunc(FunctorId Fn, SuccList Args);
  /// Adds an or-vertex with alternatives \p Alts.
  NodeId addOr(SuccList Alts);

  void setRoot(NodeId Root) {
    invalidateDerived();
    RootId = Root;
  }
  NodeId root() const { return RootId; }

  const TGNode &node(NodeId Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  /// Mutable vertex access. Conservatively drops the derived-result
  /// caches: callers that take a mutable reference are editing structure.
  TGNode &node(NodeId Id) {
    assert(Id < Nodes.size() && "node id out of range");
    invalidateDerived();
    return Nodes[Id];
  }

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }

  /// True if the graph denotes the empty set *syntactically*: the root is
  /// an or-vertex without successors. (The paper forbids empty or-vertices;
  /// we use exactly one, the root of the canonical bottom graph.)
  bool isBottomGraph() const {
    return RootId == InvalidNode ||
           (node(RootId).Kind == NodeKind::Or && node(RootId).Succs.empty());
  }

  /// The canonical empty graph.
  static TypeGraph makeBottom();
  /// The canonical graph denoting all terms: an or-root with an any-leaf.
  static TypeGraph makeAny();
  /// The canonical graph denoting all integers.
  static TypeGraph makeInt();
  /// Or-root over f(Any,...,Any).
  static TypeGraph makeFunctorOfAny(const SymbolTable &Syms, FunctorId Fn);
  /// The canonical list graph  T ::= [] | cons(Any, T), used by input
  /// pattern specs and tag checks.
  static TypeGraph makeAnyList(SymbolTable &Syms);

  /// Breadth-first topology of the reachable part: depth (root = 1, as in
  /// the paper where depth is the length of the shortest path), BFS tree
  /// parent, and the BFS order. Unreachable nodes get Depth = 0 and
  /// Parent = InvalidNode.
  struct Topology {
    std::vector<uint32_t> Depth;
    std::vector<NodeId> Parent;
    std::vector<NodeId> BfsOrder;
  };
  Topology computeTopology() const;

  /// Principal-functor set of a vertex (paper Section 6.3): functors of the
  /// functor-successors of an or-vertex, {f} for a functor-vertex f, and
  /// the empty set for any-vertices. An Int successor contributes the
  /// reserved '$int' pseudo-functor. The result is sorted.
  std::vector<FunctorId> pfSet(NodeId Id, const SymbolTable &Syms) const;

  /// Sorts the successors of every or-vertex by (functor name, arity),
  /// with any-vertices first and int-vertices via their '$int' name. The
  /// paper assumes this order for the correspondence relation. Uses the
  /// symbol table's memoized functor ranks, so a comparison is two
  /// integer loads instead of a string compare.
  void sortOrSuccessors(const SymbolTable &Syms);

  /// Returns a copy containing only the nodes reachable from the root,
  /// renumbered in BFS order (a deterministic canonical numbering).
  TypeGraph compact() const;

  /// Paper's size(g): number of reachable vertices plus edges.
  uint64_t sizeMetric() const;

  /// Checks all cosmetic restrictions plus the principal-functor
  /// restriction and successor sortedness. On failure returns false and,
  /// if \p Why is non-null, stores a diagnostic.
  bool validate(const SymbolTable &Syms, std::string *Why = nullptr) const;

  //===--------------------------------------------------------------------//
  // Derived-result caches. All are invalidated by any mutation and
  // preserved by copies/moves, so a canonical graph handed out by the
  // interner keeps its certificate and ids through the value plumbing.
  //===--------------------------------------------------------------------//

  /// Records that this graph is an output of normalization under the
  /// given option values (or one of the canonical constructors, which
  /// are normalized under *any* options — pass OptionIndependent).
  enum class NormScope : uint8_t { ForOptions, OptionIndependent };
  void markNormalized(uint32_t OrCap, uint32_t MaxNodes, uint32_t MaxDepth,
                      NormScope Scope = NormScope::ForOptions) {
    NormValid = true;
    NormUniversal = Scope == NormScope::OptionIndependent;
    NormOrCap = OrCap;
    NormMaxNodes = MaxNodes;
    NormMaxDepth = MaxDepth;
  }
  /// True if the graph is certified canonical for these option values,
  /// i.e. normalizeGraph with them would reproduce it structurally.
  bool isNormalizedFor(uint32_t OrCap, uint32_t MaxNodes,
                       uint32_t MaxDepth) const {
    return NormValid &&
           (NormUniversal || (NormOrCap == OrCap && NormMaxNodes == MaxNodes &&
                              NormMaxDepth == MaxDepth));
  }

  /// Cached BFS-structural signature (see support/GraphInterner.h). The
  /// mutators clear it; structuralHash fills it on first use.
  bool structSigValid() const { return SigValid; }
  uint64_t structSig() const { return Sig; }
  void setStructSig(uint64_t S) const {
    Sig = S;
    SigValid = true;
  }

  /// Cached (interner epoch, canonical id): a graph that has been
  /// interned remembers its id, so re-interning the same value — the
  /// single hottest operation of the cached analysis — is a tag compare.
  /// The scheme is tier-aware: epochs are drawn from one process-wide
  /// counter shared by live interners and frozen shared tiers
  /// (support/GraphInterner.h), so a cached id can never alias across
  /// tiers — an interner honors exactly its own epoch and (when layered
  /// over a frozen tier) the tier's epoch, whose ids form the dense
  /// prefix of its id space. Values resolved against a frozen tier are
  /// tagged with the *tier's* epoch, making their ids portable across
  /// every worker sharing that tier.
  uint64_t internEpoch() const { return InternEpoch; }
  uint32_t internId() const { return InternId; }
  void setInternCache(uint64_t Epoch, uint32_t Id) const {
    InternEpoch = Epoch;
    InternId = Id;
  }

private:
  void invalidateDerived() {
    NormValid = false;
    SigValid = false;
    InternEpoch = 0;
  }

  std::vector<TGNode> Nodes;
  NodeId RootId = InvalidNode;

  /// Normalization certificate.
  bool NormValid = false;
  bool NormUniversal = false;
  uint32_t NormOrCap = 0;
  uint32_t NormMaxNodes = 0;
  uint32_t NormMaxDepth = 0;

  /// Structural signature and interner caches (mutable: filled through
  /// const lookups).
  mutable bool SigValid = false;
  mutable uint64_t Sig = 0;
  mutable uint64_t InternEpoch = 0;
  mutable uint32_t InternId = 0;
};

/// Key used when comparing or-successors and pf-sets: orders functors by
/// (name, arity); Any sorts first.
struct SuccOrder {
  const SymbolTable &Syms;
  bool operator()(const std::pair<NodeKind, FunctorId> &A,
                  const std::pair<NodeKind, FunctorId> &B) const;
};

} // namespace gaia

#endif // GAIA_TYPEGRAPH_TYPEGRAPH_H
