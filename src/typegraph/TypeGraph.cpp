//===- typegraph/TypeGraph.cpp ---------------------------------------------=//

#include "typegraph/TypeGraph.h"

#include "support/Debug.h"
#include "support/FaultInject.h"
#include "support/GraphInterner.h" // structuralHash, for the cachesFresh audit
#include "support/PfSetInterner.h"

#include <algorithm>
#include <set>

using namespace gaia;

NodeId TypeGraph::addAny() {
  invalidateDerived();
  std::vector<TGNode> &Ns = mutableNodes();
  Ns.push_back(TGNode{NodeKind::Any, InvalidFunctor, {}});
  return static_cast<NodeId>(Ns.size() - 1);
}

NodeId TypeGraph::addInt() {
  invalidateDerived();
  std::vector<TGNode> &Ns = mutableNodes();
  Ns.push_back(TGNode{NodeKind::Int, InvalidFunctor, {}});
  return static_cast<NodeId>(Ns.size() - 1);
}

NodeId TypeGraph::addFunc(FunctorId Fn, SuccList Args) {
  GAIA_FAULT_POINT(Alloc); // chaos probe: throws std::bad_alloc
  invalidateDerived();
  std::vector<TGNode> &Ns = mutableNodes();
  Ns.push_back(TGNode{NodeKind::Func, Fn, std::move(Args)});
  return static_cast<NodeId>(Ns.size() - 1);
}

NodeId TypeGraph::addOr(SuccList Alts) {
  GAIA_FAULT_POINT(Alloc); // chaos probe: throws std::bad_alloc
  invalidateDerived();
  std::vector<TGNode> &Ns = mutableNodes();
  Ns.push_back(TGNode{NodeKind::Or, InvalidFunctor, std::move(Alts)});
  return static_cast<NodeId>(Ns.size() - 1);
}

TypeGraph TypeGraph::makeBottom() {
  TypeGraph G;
  G.setRoot(G.addOr({}));
  G.markNormalized(0, 0, 0, NormScope::OptionIndependent);
  return G;
}

TypeGraph TypeGraph::makeAny() {
  TypeGraph G;
  NodeId Leaf = G.addAny();
  G.setRoot(G.addOr({Leaf}));
  G.markNormalized(0, 0, 0, NormScope::OptionIndependent);
  return G;
}

TypeGraph TypeGraph::makeInt() {
  TypeGraph G;
  NodeId Leaf = G.addInt();
  G.setRoot(G.addOr({Leaf}));
  G.markNormalized(0, 0, 0, NormScope::OptionIndependent);
  return G;
}

TypeGraph TypeGraph::makeFunctorOfAny(const SymbolTable &Syms, FunctorId Fn) {
  TypeGraph G;
  uint32_t Arity = Syms.functorArity(Fn);
  SuccList Args;
  Args.reserve(Arity);
  for (uint32_t I = 0; I != Arity; ++I) {
    NodeId Leaf = G.addAny();
    Args.push_back(G.addOr({Leaf}));
  }
  NodeId F = G.addFunc(Fn, std::move(Args));
  G.setRoot(G.addOr({F}));
  // Every or-vertex has degree 1 and every deeper or-vertex is Any, so
  // normalization under any or-cap / depth bound reproduces this graph.
  G.markNormalized(0, 0, 0, NormScope::OptionIndependent);
  return G;
}

TypeGraph TypeGraph::makeAnyList(SymbolTable &Syms) {
  TypeGraph G;
  NodeId Nil = G.addFunc(Syms.nilFunctor(), {});
  NodeId HeadLeaf = G.addAny();
  NodeId Head = G.addOr({HeadLeaf});
  // Tail or-vertex is the root itself; create the root first as an empty
  // or-vertex and patch its successors afterwards.
  NodeId Root = G.addOr({});
  NodeId Cons = G.addFunc(Syms.consFunctor(), {Head, Root});
  G.node(Root).Succs = {Nil, Cons};
  G.setRoot(Root);
  G.sortOrSuccessors(Syms);
  // The root has or-degree 2, so this shape only survives caps >= 2 (or
  // uncapped); it is not certified option-independent.
  return G;
}

TypeGraph::Topology TypeGraph::computeTopology() const {
  Topology T;
  T.Depth.assign(numNodes(), 0);
  T.Parent.assign(numNodes(), InvalidNode);
  if (RootId == InvalidNode)
    return T;
  const std::vector<TGNode> &Ns = *NodesP;
  // BfsOrder doubles as the BFS queue: nodes are appended once and
  // scanned once, avoiding a separate deque allocation.
  T.BfsOrder.reserve(Ns.size());
  T.BfsOrder.push_back(RootId);
  T.Depth[RootId] = 1;
  for (size_t Head = 0; Head != T.BfsOrder.size(); ++Head) {
    NodeId V = T.BfsOrder[Head];
    for (NodeId S : Ns[V].Succs) {
      if (T.Depth[S] != 0)
        continue;
      T.Depth[S] = T.Depth[V] + 1;
      T.Parent[S] = V;
      T.BfsOrder.push_back(S);
    }
  }
  return T;
}

bool TypeGraph::fillTopology(const SymbolTable &Syms, PfSetInterner &Pf,
                             Topology &T, std::vector<uint32_t> &BfsPos,
                             std::vector<NodeId> &OrAnc,
                             std::vector<uint32_t> &PfIds) const {
  uint32_t N = numNodes();
  T.Depth.assign(N, 0);
  T.Parent.assign(N, InvalidNode);
  T.BfsOrder.clear();
  BfsPos.assign(N, ~0u);
  OrAnc.assign(N, InvalidNode);
  PfIds.assign(N, InvalidPfSet);
  bool AllShared = Pf.sharedSize() != 0;
  if (RootId == InvalidNode)
    return AllShared;
  T.BfsOrder.reserve(N);
  T.BfsOrder.push_back(RootId);
  T.Depth[RootId] = 1;
  for (size_t Head = 0; Head != T.BfsOrder.size(); ++Head) {
    NodeId V = T.BfsOrder[Head];
    for (NodeId S : node(V).Succs) {
      if (T.Depth[S] != 0)
        continue;
      T.Depth[S] = T.Depth[V] + 1;
      T.Parent[S] = V;
      T.BfsOrder.push_back(S);
    }
  }
  SmallVector<FunctorId, 8> Buf;
  for (size_t I = 0; I != T.BfsOrder.size(); ++I) {
    NodeId V = T.BfsOrder[I];
    BfsPos[V] = static_cast<uint32_t>(I);
    const TGNode &Nd = node(V);
    // Nearest strict or-ancestor: the tree parent if it is an or-vertex,
    // else the parent's own nearest or-ancestor (parents precede their
    // children in BFS order).
    NodeId P = T.Parent[V];
    if (P != InvalidNode)
      OrAnc[V] = node(P).Kind == NodeKind::Or ? P : OrAnc[P];
    if (Nd.Kind != NodeKind::Or)
      continue;
    Buf.clear();
    for (NodeId S : Nd.Succs) {
      const TGNode &SN = node(S);
      if (SN.Kind == NodeKind::Func)
        Buf.push_back(SN.Fn);
      else if (SN.Kind == NodeKind::Int)
        Buf.push_back(Syms.intFunctor());
    }
    std::sort(Buf.begin(), Buf.end());
    Buf.erase(std::unique(Buf.begin(), Buf.end()), Buf.end());
    PfIds[V] = Pf.intern(Buf.data(), Buf.size());
    AllShared = AllShared && PfIds[V] < Pf.sharedSize();
  }
  return AllShared;
}

const TypeGraph::TopoCache &TypeGraph::topology(const SymbolTable &Syms,
                                                PfSetInterner &Pf) const {
  if (Topo && Pf.honorsEpoch(Topo->PfEpoch))
    return *Topo;
  // Build a fresh immutable snapshot and swap the pointer: the old
  // pointee (if any) may be shared with copies of this value and must
  // not be written. Frozen shared-tier graphs have their snapshot
  // precomputed under the tier's pf epoch at freeze time, so concurrent
  // readers never reach this rebuild path.
  auto C = std::make_shared<TopoCache>();
  bool AllShared =
      fillTopology(Syms, Pf, C->Topo, C->BfsPos, C->OrAnc, C->Pf);
  // Tag with the frozen tier's epoch when every pf id lives in the tier:
  // the cache is then valid under *every* interner layered over that
  // tier, which is what lets OpCache::freeze prime one snapshot per
  // canonical graph for all concurrent workers.
  C->PfEpoch = AllShared ? Pf.sharedEpoch() : Pf.epoch();
  Topo = std::move(C);
  return *Topo;
}

bool TypeGraph::cachesFresh(const SymbolTable &Syms, std::string *Why) const {
  auto Fail = [&](const char *Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Topo) {
    Topology Fresh = computeTopology();
    if (Fresh.Depth != Topo->Topo.Depth || Fresh.Parent != Topo->Topo.Parent ||
        Fresh.BfsOrder != Topo->Topo.BfsOrder)
      return Fail("stale topology cache (BFS disagrees)");
    for (size_t I = 0; I != Fresh.BfsOrder.size(); ++I)
      if (Topo->BfsPos[Fresh.BfsOrder[I]] != I)
        return Fail("stale topology cache (BfsPos disagrees)");
    for (NodeId V : Fresh.BfsOrder) {
      bool IsOr = node(V).Kind == NodeKind::Or;
      if (IsOr != (Topo->Pf[V] != InvalidPfSet))
        return Fail("stale topology cache (pf-set id shape disagrees)");
    }
  }
  if (SigValid) {
    // Recompute through the real structuralHash on an uncached twin
    // (copy-on-write makes the copy a refcount bump; setRoot drops its
    // caches without touching the shared nodes), so the audit can never
    // drift from the production hash.
    TypeGraph Twin = *this;
    Twin.setRoot(RootId);
    if (structuralHash(Twin) != Sig)
      return Fail("stale structural signature");
  }
  if (NormValid && !validate(Syms))
    return Fail("normalization certificate on an invalid graph");
  return true;
}

std::vector<FunctorId> TypeGraph::pfSet(NodeId Id,
                                        const SymbolTable &Syms) const {
  const TGNode &N = node(Id);
  std::vector<FunctorId> Result;
  switch (N.Kind) {
  case NodeKind::Any:
    return Result;
  case NodeKind::Int:
    Result.push_back(Syms.intFunctor());
    return Result;
  case NodeKind::Func:
    Result.push_back(N.Fn);
    return Result;
  case NodeKind::Or:
    for (NodeId S : N.Succs) {
      const TGNode &SN = node(S);
      if (SN.Kind == NodeKind::Func)
        Result.push_back(SN.Fn);
      else if (SN.Kind == NodeKind::Int)
        Result.push_back(Syms.intFunctor());
    }
    std::sort(Result.begin(), Result.end());
    Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
    return Result;
  }
  GAIA_UNREACHABLE("covered switch");
}

bool SuccOrder::operator()(const std::pair<NodeKind, FunctorId> &A,
                           const std::pair<NodeKind, FunctorId> &B) const {
  // Any-vertices first; then order by (name, arity).
  bool AAny = A.first == NodeKind::Any;
  bool BAny = B.first == NodeKind::Any;
  if (AAny != BAny)
    return AAny;
  if (AAny)
    return false;
  auto KeyOf = [&](const std::pair<NodeKind, FunctorId> &X)
      -> std::pair<const std::string &, uint32_t> {
    if (X.first == NodeKind::Int) {
      static const std::string IntName = "$int";
      return {IntName, 0};
    }
    return {Syms.functorName(X.second), Syms.functorArity(X.second)};
  };
  auto KA = KeyOf(A);
  auto KB = KeyOf(B);
  if (KA.first != KB.first)
    return KA.first < KB.first;
  return KA.second < KB.second;
}

void TypeGraph::sortOrSuccessors(const SymbolTable &Syms) {
  // Integer sort keys: 0 for Any (always first), 1 + functor rank
  // otherwise, with Int mapping to the reserved '$int'/0 functor. The
  // rank order is exactly the (name, arity) order SuccOrder defines, so
  // the result is identical to sorting with string comparisons.
  auto KeyOf = [&](NodeId Id) -> uint64_t {
    const TGNode &N = node(Id);
    if (N.Kind == NodeKind::Any)
      return 0;
    FunctorId Fn = N.Kind == NodeKind::Int ? Syms.intFunctor() : N.Fn;
    return 1 + static_cast<uint64_t>(Syms.functorRank(Fn));
  };
  for (TGNode &N : mutableNodes()) {
    if (N.Kind != NodeKind::Or || N.Succs.size() < 2)
      continue;
    std::stable_sort(N.Succs.begin(), N.Succs.end(),
                     [&](NodeId A, NodeId B) { return KeyOf(A) < KeyOf(B); });
  }
  invalidateDerived();
}

TypeGraph TypeGraph::compact() const {
  TypeGraph Out;
  if (RootId == InvalidNode)
    return makeBottom();
  Topology Fresh;
  if (!Topo)
    Fresh = computeTopology();
  const Topology &T = Topo ? Topo->Topo : Fresh;
  Out.reserveNodes(static_cast<uint32_t>(T.BfsOrder.size()));
  std::vector<NodeId> Remap(numNodes(), InvalidNode);
  for (NodeId V : T.BfsOrder) {
    const TGNode &N = node(V);
    switch (N.Kind) {
    case NodeKind::Any:
      Remap[V] = Out.addAny();
      break;
    case NodeKind::Int:
      Remap[V] = Out.addInt();
      break;
    case NodeKind::Func:
      Remap[V] = Out.addFunc(N.Fn, {});
      break;
    case NodeKind::Or:
      Remap[V] = Out.addOr({});
      break;
    }
  }
  for (NodeId V : T.BfsOrder) {
    SuccList NewSuccs;
    NewSuccs.reserve(node(V).Succs.size());
    for (NodeId S : node(V).Succs) {
      assert(Remap[S] != InvalidNode && "successor of reachable node "
                                        "must be reachable");
      NewSuccs.push_back(Remap[S]);
    }
    Out.node(Remap[V]).Succs = std::move(NewSuccs);
  }
  Out.setRoot(Remap[RootId]);
  return Out;
}

uint64_t TypeGraph::sizeMetric() const {
  if (RootId == InvalidNode)
    return 0;
  // Reuse the topology snapshot when one is cached (the widening asks
  // for sizes between transforms, where the snapshot is already hot).
  if (Topo) {
    uint64_t Size = 0;
    for (NodeId V : Topo->Topo.BfsOrder)
      Size += 1 + node(V).Succs.size();
    return Size;
  }
  Topology T = computeTopology();
  uint64_t Size = 0;
  for (NodeId V : T.BfsOrder)
    Size += 1 + node(V).Succs.size();
  return Size;
}

bool TypeGraph::validate(const SymbolTable &Syms, std::string *Why) const {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (RootId == InvalidNode)
    return Fail("no root");
  Topology T = computeTopology();

  if (node(RootId).Kind != NodeKind::Or)
    return Fail("Flip-Flop: root is not an or-vertex");

  for (NodeId V : T.BfsOrder) {
    const TGNode &N = node(V);
    switch (N.Kind) {
    case NodeKind::Any:
    case NodeKind::Int:
      if (!N.Succs.empty())
        return Fail("leaf vertex with successors");
      break;
    case NodeKind::Func: {
      if (N.Succs.size() != Syms.functorArity(N.Fn))
        return Fail("functor vertex arity mismatch for " +
                    Syms.functorString(N.Fn));
      for (NodeId S : N.Succs)
        if (node(S).Kind != NodeKind::Or)
          return Fail("Flip-Flop: functor successor is not an or-vertex");
      break;
    }
    case NodeKind::Or: {
      // Isolated-Any: an any-successor must be the only successor.
      if (N.Succs.size() > 1)
        for (NodeId S : N.Succs)
          if (node(S).Kind == NodeKind::Any)
            return Fail("Isolated-Any violated");
      std::set<FunctorId> Seen;
      bool SawInt = false;
      for (NodeId S : N.Succs) {
        const TGNode &SN = node(S);
        if (SN.Kind == NodeKind::Or)
          return Fail("Flip-Flop: or successor of or-vertex");
        if (SN.Kind == NodeKind::Int) {
          if (SawInt)
            return Fail("duplicate Int successor");
          SawInt = true;
        }
        if (SN.Kind == NodeKind::Func) {
          // Principal functor restriction.
          if (!Seen.insert(SN.Fn).second)
            return Fail("Principal-Functor violated on " +
                        Syms.functorString(SN.Fn));
          // Int absorbs integer literals; keeping both is redundant.
          if (SawInt && Syms.isIntegerLiteral(SN.Fn))
            return Fail("integer literal alongside Int successor");
        }
      }
      // Successor sortedness.
      SuccOrder Order{Syms};
      for (size_t I = 1; I < N.Succs.size(); ++I) {
        const TGNode &A = node(N.Succs[I - 1]);
        const TGNode &B = node(N.Succs[I]);
        if (Order({B.Kind, B.Fn}, {A.Kind, A.Fn}))
          return Fail("or-successors not sorted");
      }
      break;
    }
    }
  }

  // No-Sharing and Or-Cycle: every edge is either a BFS-tree edge or a
  // back edge to an or-vertex on the tree path from the root (an
  // ancestor). This is equivalent to the paper's formulation: removing
  // the last edge of every canonical cycle leaves a tree.
  // Compute ancestor sets lazily by walking parents.
  auto IsAncestor = [&](NodeId A, NodeId V) {
    for (NodeId P = V; P != InvalidNode; P = T.Parent[P])
      if (P == A)
        return true;
    return false;
  };
  for (NodeId V : T.BfsOrder) {
    for (NodeId S : node(V).Succs) {
      if (T.Parent[S] == V)
        continue; // tree edge
      // Non-tree edge: must go to an or-vertex ancestor of V.
      if (node(S).Kind != NodeKind::Or)
        return Fail("Or-Cycle: back edge to non-or vertex");
      if (!IsAncestor(S, V))
        return Fail("No-Sharing: cross edge detected");
    }
  }
  return true;
}
