//===- pat/PatSub.h - The generic pattern domain Pat(R) -------------------==//
///
/// \file
/// The generic pattern domain of Cortesi, Le Charlier & Van Hentenryck
/// (POPL'94) as used in Section 5 of the paper. An abstract substitution
/// over n "slots" (clause variables or call arguments) consists of:
///
///   - a *same-value* component: each slot maps to a subterm index, and
///     two slots mapping to the same index are known to be equal;
///   - a *pattern* component: a subterm index may carry a frame
///     f(i1, ..., ik) naming its principal functor and the indices of
///     its arguments;
///   - an *R-component*: frameless (leaf) indices carry a value of the
///     generic leaf domain (type graphs for Pat(Type), the one-point
///     domain for the principal-functor baseline).
///
/// All operations the GAIA engine needs are provided: abstract
/// unification, projection (RESTRG), clause extension, call-result
/// integration (EXTG/EXTC), upper bound, widening, and ordering. The
/// interaction rule of Section 5 is implemented in joinOrWiden: when the
/// same subterm is bound to different functors in the two inputs, the
/// indices below are removed from Pat and replaced by an equivalent
/// value in the leaf domain.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PAT_PATSUB_H
#define GAIA_PAT_PATSUB_H

#include "prolog/Builtins.h"
#include "support/Debug.h"
#include "support/StringInterner.h"

#include <cassert>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gaia {

template <typename Leaf> class PatSub {
public:
  using Value = typename Leaf::Value;
  using Ctx = typename Leaf::Context;

  /// The substitution with \p NumSlots unconstrained slots.
  static PatSub top(const Ctx &C, uint32_t NumSlots) {
    PatSub S;
    S.Slots.reserve(NumSlots);
    for (uint32_t I = 0; I != NumSlots; ++I)
      S.Slots.push_back(S.newLeaf(Leaf::any(C)));
    return S;
  }

  /// The failed substitution.
  static PatSub bottom(uint32_t NumSlots) {
    PatSub S;
    S.IsBottom = true;
    S.Slots.assign(NumSlots, 0);
    return S;
  }

  bool isBottom() const { return IsBottom; }
  uint32_t numSlots() const { return static_cast<uint32_t>(Slots.size()); }

  //===--------------------------------------------------------------------//
  // Abstract unification.
  //===--------------------------------------------------------------------//

  /// Xa = Xb.
  void unifyVars(const Ctx &C, uint32_t SlotA, uint32_t SlotB) {
    if (IsBottom)
      return;
    unifyIndices(C, find(Slots[SlotA]), find(Slots[SlotB]));
  }

  /// Xa = f(Xb1, ..., Xbk).
  void unifyFunc(const Ctx &C, uint32_t SlotA, FunctorId Fn,
                 const std::vector<uint32_t> &ArgSlots) {
    if (IsBottom)
      return;
    std::vector<uint32_t> ArgIdx;
    ArgIdx.reserve(ArgSlots.size());
    for (uint32_t S : ArgSlots)
      ArgIdx.push_back(find(Slots[S]));
    imposeFrame(C, find(Slots[SlotA]), Fn, ArgIdx);
  }

  /// Refines slot \p Slot with leaf value \p V (e.g. Int for is/2).
  void refineSlot(const Ctx &C, uint32_t Slot, const Value &V) {
    if (IsBottom)
      return;
    refineWithValue(C, find(Slots[Slot]), V);
  }

  //===--------------------------------------------------------------------//
  // Projection and extension (RESTRG / EXTG / EXTC of the framework).
  //===--------------------------------------------------------------------//

  /// Projects onto \p OutSlots: the result has one slot per entry,
  /// preserving frames, same-value information and leaf values.
  PatSub project(const Ctx &, const std::vector<uint32_t> &OutSlots) const {
    if (IsBottom)
      return bottom(static_cast<uint32_t>(OutSlots.size()));
    PatSub R;
    std::map<uint32_t, uint32_t> Remap; // my index -> new index
    for (uint32_t S : OutSlots)
      R.Slots.push_back(copyInto(R, find(Slots[S]), Remap));
    return R;
  }

  /// Entry to a clause with \p NumVars variables whose first slots are
  /// the head arguments described by \p CallPat.
  static PatSub extendForClause(const Ctx &C, const PatSub &CallPat,
                                uint32_t NumVars) {
    assert(NumVars >= CallPat.numSlots() && "clause has fewer vars than "
                                            "head arguments");
    if (CallPat.IsBottom)
      return bottom(NumVars);
    PatSub R;
    std::map<uint32_t, uint32_t> Remap;
    for (uint32_t S = 0; S != CallPat.numSlots(); ++S)
      R.Slots.push_back(CallPat.copyInto(R, CallPat.find(CallPat.Slots[S]),
                                         Remap));
    for (uint32_t V = CallPat.numSlots(); V != NumVars; ++V)
      R.Slots.push_back(R.newLeaf(Leaf::any(C)));
    return R;
  }

  /// Integrates the callee's output pattern \p Out for a call whose
  /// arguments were \p ArgSlots (EXTC): caller subterms are refined with
  /// the callee's frames, leaf values, and same-value equalities.
  void applyCallResult(const Ctx &C, const std::vector<uint32_t> &ArgSlots,
                       const PatSub &Out) {
    if (IsBottom)
      return;
    if (Out.IsBottom) {
      markBottom();
      return;
    }
    assert(ArgSlots.size() == Out.numSlots() && "call arity mismatch");
    std::map<uint32_t, uint32_t> Memo; // out index -> my index
    for (size_t R = 0; R != ArgSlots.size(); ++R) {
      applyPair(C, find(Slots[ArgSlots[R]]), Out,
                Out.find(Out.Slots[R]), Memo);
      if (IsBottom)
        return;
    }
  }

  //===--------------------------------------------------------------------//
  // Lattice operations.
  //===--------------------------------------------------------------------//

  /// Least upper bound (the UNION operation of GAIA).
  static PatSub join(const Ctx &C, const PatSub &A, const PatSub &B) {
    return joinOrWiden(C, A, B, /*Widen=*/false);
  }

  /// Widening (the WIDEN operation): the upper bound on Pat with the
  /// leaf upper bound replaced by the leaf widening, old value first.
  static PatSub widen(const Ctx &C, const PatSub &Old, const PatSub &New) {
    return joinOrWiden(C, Old, New, /*Widen=*/true);
  }

  /// Ordering: true if A's concretization is included in B's. May
  /// conservatively return false when A carries a leaf where B carries a
  /// frame.
  static bool leq(const Ctx &C, const PatSub &A, const PatSub &B) {
    if (A.IsBottom)
      return true;
    if (B.IsBottom)
      return false;
    assert(A.numSlots() == B.numSlots() && "slot count mismatch");
    std::map<uint32_t, uint32_t> BToA;
    for (uint32_t S = 0; S != A.numSlots(); ++S)
      if (!leqPair(C, A, A.find(A.Slots[S]), B, B.find(B.Slots[S]), BToA))
        return false;
    return true;
  }

  static bool equal(const Ctx &C, const PatSub &A, const PatSub &B) {
    return leq(C, A, B) && leq(C, B, A);
  }

  //===--------------------------------------------------------------------//
  // Inspection.
  //===--------------------------------------------------------------------//

  /// The leaf-domain value describing slot \p Slot's whole subterm
  /// (frames are folded back via Leaf::construct).
  Value slotValue(const Ctx &C, uint32_t Slot) const {
    if (IsBottom)
      return Leaf::bottom(C);
    std::map<uint32_t, Value> Memo;
    std::vector<uint32_t> Path;
    return termValue(C, find(Slots[Slot]), Memo, Path);
  }

  /// Frame of slot \p Slot, if any: the principal functor.
  std::optional<FunctorId> slotFrame(uint32_t Slot) const {
    if (IsBottom)
      return std::nullopt;
    const Sub &S = Subs[find(Slots[Slot])];
    if (!S.HasFrame)
      return std::nullopt;
    return S.Fn;
  }

  /// True if slots \p A and \p B are known equal.
  bool sameValue(uint32_t A, uint32_t B) const {
    return !IsBottom && find(Slots[A]) == find(Slots[B]);
  }

  /// Canonical hash key: substitutions that are `equal` produce equal
  /// keys, so the engine's memo table can bucket entries by key and only
  /// run the full semantic comparison within a bucket. The key hashes
  /// the discovery-order renaming of the reachable subterm indices (the
  /// same-value partition), each frame's functor, and each leaf's
  /// canonical value key (Leaf::canonKey) — exactly the components
  /// `equal` compares.
  uint64_t canonKey(const Ctx &C) const {
    if (IsBottom)
      return 0xB0770Bu + numSlots();
    std::size_t Seed = numSlots();
    std::map<uint32_t, uint32_t> Number; // representative -> discovery id
    for (uint32_t S : Slots)
      keyIndex(C, S, Number, Seed);
    return Seed;
  }

  /// Renders the substitution for diagnostics: one line per slot.
  std::string print(const Ctx &C) const;

private:
  /// One subterm.
  struct Sub {
    bool HasFrame = false;
    FunctorId Fn = InvalidFunctor;
    std::vector<uint32_t> FrameArgs;
    Value Prop; ///< valid iff !HasFrame
  };

  uint32_t newLeaf(Value V) {
    Sub S;
    S.Prop = std::move(V);
    Subs.push_back(std::move(S));
    Parent.push_back(static_cast<uint32_t>(Subs.size() - 1));
    return static_cast<uint32_t>(Subs.size() - 1);
  }

  uint32_t newFrame(FunctorId Fn, std::vector<uint32_t> Args) {
    Sub S;
    S.HasFrame = true;
    S.Fn = Fn;
    S.FrameArgs = std::move(Args);
    Subs.push_back(std::move(S));
    Parent.push_back(static_cast<uint32_t>(Subs.size() - 1));
    return static_cast<uint32_t>(Subs.size() - 1);
  }

  uint32_t find(uint32_t I) const {
    while (Parent[I] != I)
      I = Parent[I];
    return I;
  }

  void markBottom() {
    IsBottom = true;
    Subs.clear();
    Parent.clear();
    for (uint32_t &S : Slots)
      S = 0;
  }

  /// Merges index \p J into \p I (both representatives).
  void link(uint32_t I, uint32_t J) {
    if (I != J)
      Parent[J] = I;
  }

  /// Abstract unification of two subterm indices.
  void unifyIndices(const Ctx &C, uint32_t I, uint32_t J) {
    I = find(I);
    J = find(J);
    if (I == J || IsBottom)
      return;
    Sub &SI = Subs[I];
    Sub &SJ = Subs[J];
    if (SI.HasFrame && SJ.HasFrame) {
      if (SI.Fn != SJ.Fn) {
        markBottom();
        return;
      }
      std::vector<uint32_t> ArgsI = SI.FrameArgs;
      std::vector<uint32_t> ArgsJ = SJ.FrameArgs;
      link(I, J);
      for (size_t K = 0; K != ArgsI.size(); ++K) {
        unifyIndices(C, ArgsI[K], ArgsJ[K]);
        if (IsBottom)
          return;
      }
      return;
    }
    if (SI.HasFrame && !SJ.HasFrame) {
      // Push J's leaf value through I's frame.
      Value V = SJ.Prop;
      link(I, J);
      refineWithValue(C, I, V);
      return;
    }
    if (!SI.HasFrame && SJ.HasFrame) {
      Value V = SI.Prop;
      link(J, I);
      refineWithValue(C, J, V);
      return;
    }
    // Both leaves.
    Value M = Leaf::meet(C, SI.Prop, SJ.Prop);
    if (Leaf::isBottom(C, M)) {
      markBottom();
      return;
    }
    SI.Prop = std::move(M);
    link(I, J);
  }

  /// Ensures index \p I has frame \p Fn with argument indices \p ArgIdx.
  void imposeFrame(const Ctx &C, uint32_t I, FunctorId Fn,
                   const std::vector<uint32_t> &ArgIdx) {
    I = find(I);
    Sub &SI = Subs[I];
    if (SI.HasFrame) {
      if (SI.Fn != Fn) {
        markBottom();
        return;
      }
      std::vector<uint32_t> Args = SI.FrameArgs;
      for (size_t K = 0; K != Args.size(); ++K) {
        unifyIndices(C, Args[K], ArgIdx[K]);
        if (IsBottom)
          return;
      }
      return;
    }
    // Leaf: split its value at Fn and refine the argument subterms.
    std::vector<Value> ArgVals;
    if (!Leaf::restrictTo(C, SI.Prop, Fn, ArgVals)) {
      markBottom();
      return;
    }
    SI.HasFrame = true;
    SI.Fn = Fn;
    SI.FrameArgs = ArgIdx;
    SI.Prop = Value();
    assert(ArgVals.size() == ArgIdx.size() && "restrictTo arity mismatch");
    for (size_t K = 0; K != ArgIdx.size(); ++K) {
      refineWithValue(C, ArgIdx[K], ArgVals[K]);
      if (IsBottom)
        return;
    }
  }

  /// Intersects subterm \p I with leaf value \p V, pushing through
  /// frames. Frames are normally acyclic, but rational structures can
  /// arise from unifications like X = f(Y), X = Y; the depth budget cuts
  /// the recursion there (skipping a refinement is sound — it only loses
  /// precision).
  void refineWithValue(const Ctx &C, uint32_t I, const Value &V,
                       unsigned Depth = 0) {
    constexpr unsigned MaxRefineDepth = 64;
    if (Depth > MaxRefineDepth)
      return;
    I = find(I);
    Sub &SI = Subs[I];
    if (!SI.HasFrame) {
      Value M = Leaf::meet(C, SI.Prop, V);
      if (Leaf::isBottom(C, M)) {
        markBottom();
        return;
      }
      SI.Prop = std::move(M);
      return;
    }
    std::vector<Value> ArgVals;
    if (!Leaf::restrictTo(C, V, SI.Fn, ArgVals)) {
      markBottom();
      return;
    }
    std::vector<uint32_t> Args = SI.FrameArgs;
    for (size_t K = 0; K != Args.size(); ++K) {
      refineWithValue(C, Args[K], ArgVals[K], Depth + 1);
      if (IsBottom)
        return;
    }
  }

  /// canonKey helper: hashes the subterm \p I (frames recursively, leaves
  /// via Leaf::canonKey) under a discovery-order renaming of the indices.
  /// Rational frame cycles terminate because an index is numbered before
  /// its arguments are visited.
  void keyIndex(const Ctx &C, uint32_t I, std::map<uint32_t, uint32_t> &Number,
                std::size_t &Seed) const {
    I = find(I);
    auto [It, Inserted] =
        Number.emplace(I, static_cast<uint32_t>(Number.size()));
    hashCombine(Seed, It->second);
    if (!Inserted)
      return; // same-value reference to an already hashed subterm
    const Sub &S = Subs[I];
    if (!S.HasFrame) {
      hashCombine(Seed, 0x1eafu);
      hashCombine(Seed, Leaf::canonKey(C, S.Prop));
      return;
    }
    hashCombine(Seed, 0xf7a3eu);
    hashCombine(Seed, S.Fn);
    for (uint32_t A : S.FrameArgs)
      keyIndex(C, A, Number, Seed);
  }

  /// Copies the subterm \p I into \p R, preserving sharing via \p Remap.
  uint32_t copyInto(PatSub &R, uint32_t I,
                    std::map<uint32_t, uint32_t> &Remap) const {
    I = find(I);
    auto It = Remap.find(I);
    if (It != Remap.end())
      return It->second;
    const Sub &S = Subs[I];
    if (!S.HasFrame) {
      uint32_t N = R.newLeaf(S.Prop);
      Remap.emplace(I, N);
      return N;
    }
    uint32_t N = R.newFrame(S.Fn, {});
    Remap.emplace(I, N);
    std::vector<uint32_t> Args;
    Args.reserve(S.FrameArgs.size());
    for (uint32_t A : S.FrameArgs)
      Args.push_back(copyInto(R, A, Remap));
    R.Subs[N].FrameArgs = std::move(Args);
    return N;
  }

  /// Folds a subterm back into a single leaf value. Rational cycles
  /// (possible after unifications like X = f(Y), X = Y) are cut with Any.
  Value termValue(const Ctx &C, uint32_t I, std::map<uint32_t, Value> &Memo,
                  std::vector<uint32_t> &Path) const {
    I = find(I);
    auto It = Memo.find(I);
    if (It != Memo.end())
      return It->second;
    const Sub &S = Subs[I];
    if (!S.HasFrame) {
      Memo.emplace(I, S.Prop);
      return S.Prop;
    }
    for (uint32_t P : Path)
      if (P == I)
        return Leaf::any(C); // rational cycle: over-approximate
    Path.push_back(I);
    std::vector<Value> Args;
    Args.reserve(S.FrameArgs.size());
    for (uint32_t A : S.FrameArgs)
      Args.push_back(termValue(C, A, Memo, Path));
    Path.pop_back();
    Value V = Leaf::construct(C, S.Fn, Args);
    Memo.emplace(I, V);
    return V;
  }

  /// EXTC helper: imposes the callee subterm (\p Out, \p J) onto the
  /// caller subterm \p I. \p Memo carries out-index -> caller-index so
  /// the callee's same-value equalities transfer to the caller.
  void applyPair(const Ctx &C, uint32_t I, const PatSub &Out, uint32_t J,
                 std::map<uint32_t, uint32_t> &Memo) {
    if (IsBottom)
      return;
    I = find(I);
    J = Out.find(J);
    auto It = Memo.find(J);
    if (It != Memo.end()) {
      // The callee says this subterm equals a previously seen one.
      unifyIndices(C, I, It->second);
      return;
    }
    Memo.emplace(J, I);
    const Sub &SJ = Out.Subs[J];
    if (!SJ.HasFrame) {
      refineWithValue(C, I, SJ.Prop);
      return;
    }
    // Callee knows the frame. Ensure the caller has it too.
    uint32_t Irep = find(I);
    if (!Subs[Irep].HasFrame) {
      std::vector<Value> ArgVals;
      if (!Leaf::restrictTo(C, Subs[Irep].Prop, SJ.Fn, ArgVals)) {
        markBottom();
        return;
      }
      std::vector<uint32_t> FreshArgs;
      FreshArgs.reserve(ArgVals.size());
      for (Value &V : ArgVals)
        FreshArgs.push_back(newLeaf(std::move(V)));
      Sub &SI = Subs[Irep];
      SI.HasFrame = true;
      SI.Fn = SJ.Fn;
      SI.FrameArgs = std::move(FreshArgs);
      SI.Prop = Value();
    } else if (Subs[Irep].Fn != SJ.Fn) {
      markBottom();
      return;
    }
    std::vector<uint32_t> MyArgs = Subs[Irep].FrameArgs;
    std::vector<uint32_t> OutArgs = SJ.FrameArgs;
    for (size_t K = 0; K != MyArgs.size(); ++K) {
      applyPair(C, MyArgs[K], Out, OutArgs[K], Memo);
      if (IsBottom)
        return;
    }
  }

  /// Shared implementation of join and widen.
  static PatSub joinOrWiden(const Ctx &C, const PatSub &A, const PatSub &B,
                            bool Widen) {
    if (A.IsBottom)
      return B;
    if (B.IsBottom)
      return A;
    assert(A.numSlots() == B.numSlots() && "slot count mismatch");
    PatSub R;
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> Memo;
    for (uint32_t S = 0; S != A.numSlots(); ++S)
      R.Slots.push_back(combine(C, A, A.find(A.Slots[S]), B,
                                B.find(B.Slots[S]), R, Memo, Widen));
    return R;
  }

  static uint32_t combine(const Ctx &C, const PatSub &A, uint32_t IA,
                          const PatSub &B, uint32_t IB, PatSub &R,
                          std::map<std::pair<uint32_t, uint32_t>, uint32_t>
                              &Memo,
                          bool Widen) {
    IA = A.find(IA);
    IB = B.find(IB);
    auto Key = std::make_pair(IA, IB);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    const Sub &SA = A.Subs[IA];
    const Sub &SB = B.Subs[IB];
    if (SA.HasFrame && SB.HasFrame && SA.Fn == SB.Fn) {
      uint32_t N = R.newFrame(SA.Fn, {});
      Memo.emplace(Key, N);
      std::vector<uint32_t> Args;
      Args.reserve(SA.FrameArgs.size());
      for (size_t K = 0; K != SA.FrameArgs.size(); ++K)
        Args.push_back(combine(C, A, SA.FrameArgs[K], B, SB.FrameArgs[K],
                               R, Memo, Widen));
      R.Subs[N].FrameArgs = std::move(Args);
      return N;
    }
    // Frames disagree (or a leaf is involved): drop to the leaf domain.
    // This is exactly the Pat/Type interaction of Section 5: the indices
    // in the subtrees are replaced by an equivalent type graph.
    std::map<uint32_t, Value> MemoA, MemoB;
    std::vector<uint32_t> PathA, PathB;
    Value VA = A.termValue(C, IA, MemoA, PathA);
    Value VB = B.termValue(C, IB, MemoB, PathB);
    Value V = Widen ? Leaf::widen(C, VA, VB) : Leaf::join(C, VA, VB);
    uint32_t N = R.newLeaf(std::move(V));
    Memo.emplace(Key, N);
    return N;
  }

  static bool leqPair(const Ctx &C, const PatSub &A, uint32_t IA,
                      const PatSub &B, uint32_t IB,
                      std::map<uint32_t, uint32_t> &BToA) {
    IA = A.find(IA);
    IB = B.find(IB);
    auto It = BToA.find(IB);
    if (It != BToA.end())
      return It->second == IA; // B's same-value must hold in A
    BToA.emplace(IB, IA);
    const Sub &SB = B.Subs[IB];
    const Sub &SA = A.Subs[IA];
    if (!SB.HasFrame) {
      std::map<uint32_t, Value> Memo;
      std::vector<uint32_t> Path;
      Value VA = A.termValue(C, IA, Memo, Path);
      return Leaf::includes(C, SB.Prop, VA);
    }
    if (!SA.HasFrame)
      return false; // conservative: A lacks structure B asserts
    if (SA.Fn != SB.Fn)
      return false;
    for (size_t K = 0; K != SA.FrameArgs.size(); ++K)
      if (!leqPair(C, A, SA.FrameArgs[K], B, SB.FrameArgs[K], BToA))
        return false;
    return true;
  }

  std::string printIndex(const Ctx &C, uint32_t I, unsigned Depth) const {
    I = find(I);
    const Sub &S = Subs[I];
    if (!S.HasFrame)
      return "#" + std::to_string(I) + ":" + Leaf::print(C, S.Prop);
    if (Depth > 4)
      return "#" + std::to_string(I) + ":...";
    std::string Out = "#" + std::to_string(I) + ":" +
                      C.Syms.functorName(S.Fn);
    if (!S.FrameArgs.empty()) {
      Out += "(";
      for (size_t K = 0; K != S.FrameArgs.size(); ++K) {
        if (K)
          Out += ",";
        Out += printIndex(C, S.FrameArgs[K], Depth + 1);
      }
      Out += ")";
    }
    return Out;
  }

  bool IsBottom = false;
  std::vector<uint32_t> Slots;
  std::vector<Sub> Subs;
  std::vector<uint32_t> Parent;
};

template <typename Leaf>
std::string PatSub<Leaf>::print(const Ctx &C) const {
  if (IsBottom)
    return "<bottom>\n";
  std::string Out;
  for (uint32_t S = 0; S != numSlots(); ++S) {
    Out += "X" + std::to_string(S) + " = " +
           printIndex(C, Slots[S], 0) + "\n";
  }
  return Out;
}

} // namespace gaia

#endif // GAIA_PAT_PATSUB_H
