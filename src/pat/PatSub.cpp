//===- pat/PatSub.cpp - Explicit instantiations -----------------------------=//

#include "pat/PatSub.h"

#include "domains/PFLeaf.h"
#include "domains/TypeLeaf.h"

namespace gaia {

template class PatSub<TypeLeaf>;
template class PatSub<PFLeaf>;

} // namespace gaia
