//===- runtime/TierLifecycle.cpp -------------------------------------------=//

#include "runtime/TierLifecycle.h"

#include <cassert>

using namespace gaia;

TierLifecycle::TierLifecycle(std::shared_ptr<const SharedCache> Initial,
                             LifecyclePolicy P)
    : Tier(std::move(Initial)), Policy(P) {
  assert(Tier && "lifecycle needs an initial tier");
}

void TierLifecycle::compact(const std::shared_ptr<const SharedCache> &Base,
                            uint32_t KeepGens, bool Eviction) {
  CompactionPolicy CP;
  CP.KeepGens = KeepGens;
  Tier = Base->compactAndRefreeze(CP);
  ++St.Compactions;
  if (Eviction)
    ++St.Evictions;
  St.DroppedGraphs += Tier->stats().DroppedGraphs;
  BatchesSinceCompact = 0;
}

const std::shared_ptr<const SharedCache> &
TierLifecycle::endBatch(const std::vector<JobOutcome> &Outcomes) {
  ++St.Batches;
  ++BatchesSinceCompact;

  // Promotion: merge the batch's surviving hot deltas into tier N+1.
  // Jobs without a delta contribute nothing (the common steady-state
  // case once the tier already holds everything hot).
  std::vector<std::shared_ptr<const CacheDelta>> Deltas;
  for (const JobOutcome &O : Outcomes)
    if (O.Result.Delta)
      Deltas.push_back(O.Result.Delta);
  if (!Deltas.empty()) {
    Tier = Tier->promoteAndRefreeze(Deltas);
    ++St.Promotions;
    St.PromotedEntries += Tier->stats().AbsorbedEntries;
  }

  // Generation boundary: everything the *next* batch touches is tagged
  // with the new generation; entries untouched for KeepGens generations
  // become compaction fodder.
  Tier->ops()->Intern->advanceGeneration();

  // All compactions this rotation rebuild from the SAME base tier: a
  // freshly compacted tier restarts its touch history at generation 0
  // (every survivor is live by definition), so tightening the window on
  // one would drop nothing — eviction retries must re-read the history
  // the batches actually wrote.
  const std::shared_ptr<const SharedCache> Base = Tier;
  bool TriedCurrentKeep = false;
  if (Policy.CompactEvery != 0 &&
      BatchesSinceCompact >= Policy.CompactEvery) {
    compact(Base, Policy.KeepGens, /*Eviction=*/false);
    TriedCurrentKeep = true;
  }

  // Budget eviction: shrink the liveness window one generation at a
  // time until the tier fits. KeepGens = 0 keeps only entries touched in
  // the latest generation — if the tier still exceeds the budget then,
  // the working set simply doesn't fit and we stop (the budget is a
  // target, not a guarantee against an oversized working set).
  if (Policy.MaxTierBytes != 0) {
    uint32_t Keep = Policy.KeepGens;
    while (Tier->tierBytes() > Policy.MaxTierBytes) {
      if (TriedCurrentKeep) {
        if (Keep == 0)
          break;
        --Keep;
      }
      compact(Base, Keep, /*Eviction=*/true);
      TriedCurrentKeep = true;
    }
  }

  return Tier;
}
