//===- runtime/Resilience.cpp ----------------------------------------------=//

#include "runtime/Resilience.h"

#include "core/InputPattern.h"
#include "runtime/SharedCache.h"
#include "support/FaultInject.h"

#include <chrono>
#include <exception>

using namespace gaia;

const char *gaia::recoveryRungName(RecoveryRung R) {
  switch (R) {
  case RecoveryRung::None:
    return "none";
  case RecoveryRung::ColdRetry:
    return "cold-retry";
  case RecoveryRung::TightBudgets:
    return "tight-budgets";
  case RecoveryRung::WidenToTop:
    return "widen-to-top";
  case RecoveryRung::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

AnalysisResult gaia::containedAnalyze(const std::string &Source,
                                      const std::string &GoalSpec,
                                      const AnalyzerOptions &Opts) noexcept {
  try {
    return analyzeProgram(Source, GoalSpec, Opts);
  } catch (const std::exception &E) {
    AnalysisResult R;
    R.Fail = FailKind::Exception;
    R.Error = E.what();
    R.Converged = false;
    return R;
  } catch (...) {
    AnalysisResult R;
    R.Fail = FailKind::Exception;
    R.Error = "unknown exception escaped the analysis";
    R.Converged = false;
    return R;
  }
}

ResilienceManager::ResilienceManager(ResilienceOptions O) : Opts(O) {}

uint64_t ResilienceManager::fingerprint(const AnalysisJob &Job) {
  // Identity is the analysis input, not the reporting key: two jobs with
  // the same source and goal hit the same engine paths, so they share a
  // quarantine verdict.
  uint64_t H = std::hash<std::string>{}(Job.Source);
  uint64_t G = std::hash<std::string>{}(Job.GoalSpec);
  return H ^ (G * 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

bool ResilienceManager::ladderEligible(const AnalysisResult &R) {
  return !R.Ok &&
         (R.Fail == FailKind::Deadline || R.Fail == FailKind::Exception);
}

AnalysisResult ResilienceManager::widenToTopResult(const AnalysisJob &Job) {
  AnalysisResult R;
  R.Syms = std::make_shared<SymbolTable>();
  R.Converged = false;
  R.Degraded = true;
  std::string Err;
  std::optional<InputPattern> Pattern =
      parseInputPattern(Job.GoalSpec, &Err);
  if (!Pattern) {
    // An unparseable goal has no arity to build outputs for; this is a
    // deterministic input failure, not a degradable one.
    R.Error = Err;
    R.Fail = FailKind::BadQuery;
    R.Degraded = false;
    return R;
  }
  R.Ok = true;
  // Sound over-approximation of *any* behaviour of the job: the query
  // may succeed, and every argument may be anything. This is exactly
  // the engine's own abort-to-top answer, built without the engine.
  R.QuerySucceeds = true;
  for (uint32_t I = 0; I != Pattern->arity(); ++I)
    R.QueryOutput.push_back(TypeGraph::makeAny());
  return R;
}

bool ResilienceManager::isQuarantined(const AnalysisJob &Job) const {
  std::lock_guard<std::mutex> L(M);
  return Quarantine.count(fingerprint(Job)) != 0;
}

bool ResilienceManager::preCheck(const AnalysisJob &Job, AnalysisResult &Out,
                                 RecoveryRung &Rung, bool *Probe) {
  if (Probe)
    *Probe = false;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Quarantine.find(fingerprint(Job));
    if (It == Quarantine.end())
      return false;
    if (Opts.QuarantineProbeAfter != 0 &&
        It->second >= Opts.QuarantineProbeAfter) {
      // TTL expired: let this request through as a probe. The counter
      // resets now, so a caller that never reports the probe's outcome
      // degrades to "probe every QuarantineProbeAfter requests" rather
      // than probing on every subsequent one.
      It->second = 0;
      ++St.QuarantineProbes;
      if (Probe)
        *Probe = true;
      return false;
    }
    ++It->second;
    ++St.QuarantineShortCircuits;
  }
  Out = widenToTopResult(Job);
  Rung = RecoveryRung::Quarantined;
  return true;
}

void ResilienceManager::probeResult(const AnalysisJob &Job, bool Restored) {
  std::lock_guard<std::mutex> L(M);
  uint64_t F = fingerprint(Job);
  auto It = Quarantine.find(F);
  if (It == Quarantine.end())
    return; // released by a concurrent probe already
  if (Restored) {
    Quarantine.erase(It);
    Exhaustions.erase(F);
    ++St.QuarantineReleases;
  } else {
    It->second = 0; // failed probe: re-arm for a full TTL window
  }
}

AnalysisResult ResilienceManager::recover(const AnalysisJob &Job,
                                          const AnalyzerOptions &BaseOpts,
                                          AnalysisResult First,
                                          const Attempt &RunAttempt,
                                          RecoveryRung &Rung,
                                          uint32_t &Attempts) {
  {
    std::lock_guard<std::mutex> L(M);
    ++St.FirstAttemptFailures;
  }

  // Rung 1: cold retry. Bypassing the shared tier rules out the only
  // cross-job state as the failure source; for transient faults the
  // retry alone is usually enough.
  AnalyzerOptions Cold = BaseOpts;
  Cold.Shared = nullptr;
  {
    std::lock_guard<std::mutex> L(M);
    ++St.ColdRetries;
  }
  AnalysisResult R = RunAttempt(Cold, Attempts++);
  if (R.Ok) {
    std::lock_guard<std::mutex> L(M);
    ++St.ColdRetrySuccesses;
    // A ladder success resets the exhaustion streak: quarantine is for
    // jobs that exhaust *consecutively* (a deterministic poison job
    // always does), not for transient faults spread over many repeats
    // of the same query.
    Exhaustions.erase(fingerprint(Job));
    Rung = RecoveryRung::ColdRetry;
    return R;
  }
  if (!ladderEligible(R)) {
    // The retry surfaced a deterministic failure (e.g. the first attempt
    // died to a transient fault before reaching the parser, the retry
    // reached it and found a parse error): report that, it is the more
    // precise diagnosis.
    Rung = RecoveryRung::ColdRetry;
    return R;
  }

  // Rung 2: cold + tightened budgets. A job that blew its deadline gets
  // budgets small enough to converge coarsely or abort-to-top quickly
  // (MaxInputPatterns = 1 collapses polyvariance, the usual blowup).
  AnalyzerOptions Tight = Cold;
  Tight.MaxFixpointRounds = Opts.TightMaxFixpointRounds;
  Tight.MaxInputPatterns = Opts.TightMaxInputPatterns;
  Tight.CollectDelta = false; // a coarse run's entries must not promote
  {
    std::lock_guard<std::mutex> L(M);
    ++St.TightRetries;
  }
  R = RunAttempt(Tight, Attempts++);
  if (R.Ok) {
    std::lock_guard<std::mutex> L(M);
    ++St.TightRetrySuccesses;
    Exhaustions.erase(fingerprint(Job)); // success: streak broken
    Rung = RecoveryRung::TightBudgets;
    // Tight budgets can change precision relative to the configured run:
    // the answer is sound but not the normal output — fingerprint-level
    // consumers must be able to tell.
    R.Degraded = true;
    return R;
  }

  // Ladder exhausted: the sound floor, plus quarantine bookkeeping so a
  // repeat offender stops reaching workers at all.
  {
    std::lock_guard<std::mutex> L(M);
    ++St.WidenToTopFallbacks;
    uint64_t F = fingerprint(Job);
    if (++Exhaustions[F] >= Opts.QuarantineThreshold &&
        !Quarantine.count(F)) {
      Quarantine.emplace(F, 0u);
      Exhaustions.erase(F);
      ++St.QuarantinedJobs;
    }
  }
  Rung = RecoveryRung::WidenToTop;
  AnalysisResult Floor = widenToTopResult(Job);
  if (Floor.Ok && !First.Error.empty())
    Floor.Error = "degraded to top after: " + First.Error;
  return Floor;
}

ResilienceStats ResilienceManager::stats() const {
  std::lock_guard<std::mutex> L(M);
  return St;
}

JobOutcome gaia::runContainedJob(const AnalysisJob &Job,
                                 const AnalyzerOptions &Opts,
                                 ResilienceManager *Res,
                                 uint64_t FaultSaltBase) noexcept {
  JobOutcome O;
  auto Start = std::chrono::steady_clock::now();
  // Belt over the containment: containedAnalyze and the ladder are
  // themselves noexcept/contained, but this function is the last frame
  // before a worker loop — an escape here would terminate the process,
  // so even "impossible" throws (an allocator failure building the
  // outcome string, say) get converted to a structured failure.
  try {
    bool Probe = false;
    if (Res && Res->preCheck(Job, O.Result, O.Rung, &Probe)) {
      // Quarantined: answered from the floor without running anything.
      O.Attempts = 0;
      O.Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      return O;
    }

    // One contained attempt. The chaos fault stream (a no-op unless the
    // build has GAIA_FAULT_INJECT) is armed per (job, attempt), so the
    // fault plan depends only on the batch composition and the seed —
    // never on which worker drew the job — and a retry draws a fresh
    // stream, making injected faults behave like transient errors.
    auto RunAttempt = [&](const AnalyzerOptions &AOpts,
                          uint32_t AttemptIdx) {
#ifdef GAIA_FAULT_INJECT
      faultinject::JobScope Scope(FaultSaltBase + AttemptIdx);
      AnalysisResult R = containedAnalyze(Job.Source, Job.GoalSpec, AOpts);
      O.FaultFires += Scope.fires();
      return R;
#else
      (void)FaultSaltBase;
      (void)AttemptIdx;
      return containedAnalyze(Job.Source, Job.GoalSpec, AOpts);
#endif
    };

    O.Result = RunAttempt(Opts, 0);
    if (!O.Result.Ok && Res && ResilienceManager::ladderEligible(O.Result))
      O.Result = Res->recover(Job, Opts, std::move(O.Result), RunAttempt,
                              O.Rung, O.Attempts);
    if (Probe)
      Res->probeResult(Job, O.Result.Ok && !O.Result.Degraded);
  } catch (...) {
    O.Result = AnalysisResult();
    O.Result.Fail = FailKind::Exception;
    O.Result.Error = "exception escaped the job runner";
    O.Result.Converged = false;
  }
  O.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return O;
}
