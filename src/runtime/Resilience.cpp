//===- runtime/Resilience.cpp ----------------------------------------------=//

#include "runtime/Resilience.h"

#include "core/InputPattern.h"
#include "runtime/SharedCache.h"

#include <exception>

using namespace gaia;

const char *gaia::recoveryRungName(RecoveryRung R) {
  switch (R) {
  case RecoveryRung::None:
    return "none";
  case RecoveryRung::ColdRetry:
    return "cold-retry";
  case RecoveryRung::TightBudgets:
    return "tight-budgets";
  case RecoveryRung::WidenToTop:
    return "widen-to-top";
  case RecoveryRung::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

AnalysisResult gaia::containedAnalyze(const std::string &Source,
                                      const std::string &GoalSpec,
                                      const AnalyzerOptions &Opts) noexcept {
  try {
    return analyzeProgram(Source, GoalSpec, Opts);
  } catch (const std::exception &E) {
    AnalysisResult R;
    R.Fail = FailKind::Exception;
    R.Error = E.what();
    R.Converged = false;
    return R;
  } catch (...) {
    AnalysisResult R;
    R.Fail = FailKind::Exception;
    R.Error = "unknown exception escaped the analysis";
    R.Converged = false;
    return R;
  }
}

ResilienceManager::ResilienceManager(ResilienceOptions O) : Opts(O) {}

uint64_t ResilienceManager::fingerprint(const AnalysisJob &Job) {
  // Identity is the analysis input, not the reporting key: two jobs with
  // the same source and goal hit the same engine paths, so they share a
  // quarantine verdict.
  uint64_t H = std::hash<std::string>{}(Job.Source);
  uint64_t G = std::hash<std::string>{}(Job.GoalSpec);
  return H ^ (G * 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

bool ResilienceManager::ladderEligible(const AnalysisResult &R) {
  return !R.Ok &&
         (R.Fail == FailKind::Deadline || R.Fail == FailKind::Exception);
}

AnalysisResult ResilienceManager::widenToTopResult(const AnalysisJob &Job) {
  AnalysisResult R;
  R.Syms = std::make_shared<SymbolTable>();
  R.Converged = false;
  R.Degraded = true;
  std::string Err;
  std::optional<InputPattern> Pattern =
      parseInputPattern(Job.GoalSpec, &Err);
  if (!Pattern) {
    // An unparseable goal has no arity to build outputs for; this is a
    // deterministic input failure, not a degradable one.
    R.Error = Err;
    R.Fail = FailKind::BadQuery;
    R.Degraded = false;
    return R;
  }
  R.Ok = true;
  // Sound over-approximation of *any* behaviour of the job: the query
  // may succeed, and every argument may be anything. This is exactly
  // the engine's own abort-to-top answer, built without the engine.
  R.QuerySucceeds = true;
  for (uint32_t I = 0; I != Pattern->arity(); ++I)
    R.QueryOutput.push_back(TypeGraph::makeAny());
  return R;
}

bool ResilienceManager::isQuarantined(const AnalysisJob &Job) const {
  std::lock_guard<std::mutex> L(M);
  return Quarantine.count(fingerprint(Job)) != 0;
}

bool ResilienceManager::preCheck(const AnalysisJob &Job, AnalysisResult &Out,
                                 RecoveryRung &Rung) {
  {
    std::lock_guard<std::mutex> L(M);
    if (!Quarantine.count(fingerprint(Job)))
      return false;
    ++St.QuarantineShortCircuits;
  }
  Out = widenToTopResult(Job);
  Rung = RecoveryRung::Quarantined;
  return true;
}

AnalysisResult ResilienceManager::recover(const AnalysisJob &Job,
                                          const AnalyzerOptions &BaseOpts,
                                          AnalysisResult First,
                                          const Attempt &RunAttempt,
                                          RecoveryRung &Rung,
                                          uint32_t &Attempts) {
  {
    std::lock_guard<std::mutex> L(M);
    ++St.FirstAttemptFailures;
  }

  // Rung 1: cold retry. Bypassing the shared tier rules out the only
  // cross-job state as the failure source; for transient faults the
  // retry alone is usually enough.
  AnalyzerOptions Cold = BaseOpts;
  Cold.Shared = nullptr;
  {
    std::lock_guard<std::mutex> L(M);
    ++St.ColdRetries;
  }
  AnalysisResult R = RunAttempt(Cold, Attempts++);
  if (R.Ok) {
    std::lock_guard<std::mutex> L(M);
    ++St.ColdRetrySuccesses;
    // A ladder success resets the exhaustion streak: quarantine is for
    // jobs that exhaust *consecutively* (a deterministic poison job
    // always does), not for transient faults spread over many repeats
    // of the same query.
    Exhaustions.erase(fingerprint(Job));
    Rung = RecoveryRung::ColdRetry;
    return R;
  }
  if (!ladderEligible(R)) {
    // The retry surfaced a deterministic failure (e.g. the first attempt
    // died to a transient fault before reaching the parser, the retry
    // reached it and found a parse error): report that, it is the more
    // precise diagnosis.
    Rung = RecoveryRung::ColdRetry;
    return R;
  }

  // Rung 2: cold + tightened budgets. A job that blew its deadline gets
  // budgets small enough to converge coarsely or abort-to-top quickly
  // (MaxInputPatterns = 1 collapses polyvariance, the usual blowup).
  AnalyzerOptions Tight = Cold;
  Tight.MaxFixpointRounds = Opts.TightMaxFixpointRounds;
  Tight.MaxInputPatterns = Opts.TightMaxInputPatterns;
  Tight.CollectDelta = false; // a coarse run's entries must not promote
  {
    std::lock_guard<std::mutex> L(M);
    ++St.TightRetries;
  }
  R = RunAttempt(Tight, Attempts++);
  if (R.Ok) {
    std::lock_guard<std::mutex> L(M);
    ++St.TightRetrySuccesses;
    Exhaustions.erase(fingerprint(Job)); // success: streak broken
    Rung = RecoveryRung::TightBudgets;
    // Tight budgets can change precision relative to the configured run:
    // the answer is sound but not the normal output — fingerprint-level
    // consumers must be able to tell.
    R.Degraded = true;
    return R;
  }

  // Ladder exhausted: the sound floor, plus quarantine bookkeeping so a
  // repeat offender stops reaching workers at all.
  {
    std::lock_guard<std::mutex> L(M);
    ++St.WidenToTopFallbacks;
    uint64_t F = fingerprint(Job);
    if (++Exhaustions[F] >= Opts.QuarantineThreshold &&
        !Quarantine.count(F)) {
      Quarantine.insert(F);
      Exhaustions.erase(F);
      ++St.QuarantinedJobs;
    }
  }
  Rung = RecoveryRung::WidenToTop;
  AnalysisResult Floor = widenToTopResult(Job);
  if (Floor.Ok && !First.Error.empty())
    Floor.Error = "degraded to top after: " + First.Error;
  return Floor;
}

ResilienceStats ResilienceManager::stats() const {
  std::lock_guard<std::mutex> L(M);
  return St;
}
