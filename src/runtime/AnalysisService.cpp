//===- runtime/AnalysisService.cpp -----------------------------------------=//

#include "runtime/AnalysisService.h"

#include <algorithm>
#include <deque>
#include <thread>

using namespace gaia;

const char *gaia::admitPolicyName(AdmitPolicy P) {
  switch (P) {
  case AdmitPolicy::Block:
    return "block";
  case AdmitPolicy::RejectNewest:
    return "reject-newest";
  case AdmitPolicy::ShedEarliestToMiss:
    return "shed-earliest-to-miss";
  }
  return "unknown";
}

const char *gaia::overloadStateName(OverloadState S) {
  switch (S) {
  case OverloadState::Healthy:
    return "healthy";
  case OverloadState::Saturated:
    return "saturated";
  case OverloadState::Shedding:
    return "shedding";
  }
  return "unknown";
}

namespace {

double msSince(ServiceClock::TimePoint From, ServiceClock::TimePoint To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

/// The structured refusal every non-admitted job gets. Never an
/// exception, never silent: FailKind::Rejected with a reason.
JobOutcome rejectedOutcome(const std::string &Why) {
  JobOutcome O;
  O.Result.Ok = false;
  O.Result.Fail = FailKind::Rejected;
  O.Result.Error = Why;
  O.Result.Converged = false;
  O.Attempts = 0;
  return O;
}

} // namespace

/// One worker thread's identity card. All fields are guarded by
/// Impl::M. The slot object — not the thread index — is what a worker
/// loop holds, so a poisoned slot swapped out of Impl::Slots stays
/// valid for the straggler that still owns it.
struct AnalysisService::WorkerSlot {
  explicit WorkerSlot(uint32_t Index) : Index(Index) {}

  const uint32_t Index;
  bool Busy = false;
  uint64_t Seq = 0; ///< admission seq of the running job (Busy only)
  ServiceClock::TimePoint BusySince{};
  uint32_t DeadlineMs = 0; ///< running job's deadline (0 = unwatched)
  std::shared_ptr<CancelToken> Cancel;
  bool CancelArmed = false; ///< watchdog rung 1 fired for this job
  bool Poisoned = false;    ///< watchdog rung 2: exit after current job
};

/// Everything the service's threads touch. shared_ptr-owned (by the
/// facade, by every worker, by the watchdog), so a detached straggler
/// can outlive the facade without dangling.
struct AnalysisService::Impl {
  explicit Impl(ServiceOptions O) : Options(std::move(O)) {
    if (Options.QueueCapacity == 0)
      Options.QueueCapacity = 1;
    Tier = Options.Shared;
    if (Tier)
      Lifecycle =
          std::make_unique<TierLifecycle>(Tier, Options.Lifecycle);
  }

  /// One admitted-but-unstarted job.
  struct Entry {
    AnalysisJob Job;
    uint32_t DeadlineMs = 0; ///< resolved (request override or default)
    bool HasDeadline = false;
    ServiceClock::TimePoint EnqueuedAt{};
    ServiceClock::TimePoint DeadlineAt{}; ///< meaningful iff HasDeadline
    ServiceTicketPtr Ticket;
    uint64_t Seq = 0;
  };

  /// Recomputes the overload state from the queue head's age. Requires M.
  void refreshOverload() {
    OverloadState S = OverloadState::Healthy;
    if (!Queue.empty()) {
      const Entry &Head = Queue.front();
      double AgeMs = msSince(Head.EnqueuedAt, ServiceClock::now());
      double ShedAtMs = Head.HasDeadline
                            ? Options.SheddingAgeFraction * Head.DeadlineMs
                            : 0;
      if (Head.HasDeadline && AgeMs >= ShedAtMs)
        S = OverloadState::Shedding;
      else if (Queue.size() >=
                   static_cast<size_t>(Options.SaturatedDepthFraction *
                                       Options.QueueCapacity) ||
               (Head.HasDeadline && AgeMs >= 0.5 * ShedAtMs))
        S = OverloadState::Saturated;
    }
    State = S;
  }

  ServiceOptions Options; ///< immutable after construction
  std::mutex M;
  std::condition_variable NotEmpty; ///< workers wait for jobs / shutdown
  std::condition_variable NotFull;  ///< Block-policy submitters wait here
  std::condition_variable Idle;     ///< drain waits for a quiet service
  std::condition_variable WatchCV;  ///< watchdog's interruptible timer

  std::deque<Entry> Queue;                        ///< guarded by M
  std::vector<std::shared_ptr<WorkerSlot>> Slots; ///< guarded by M
  std::vector<std::thread> Threads; ///< mutated only by ctor/watchdog/drain
  std::thread Watchdog;

  bool Draining = false; ///< admission closed
  bool Stopping = false; ///< workers must exit
  bool Drained = false;  ///< drain() finished
  uint64_t NextSeq = 0;
  uint32_t Busy = 0; ///< workers currently running a job
  ServiceStats St;   ///< counters + PeakQueueDepth (gauges built on read)
  OverloadState State = OverloadState::Healthy;
  double EwmaJobMs = 0;

  /// Deltas harvested from completed jobs, for the drain-time rotation.
  std::vector<std::shared_ptr<const CacheDelta>> Deltas;
  std::unique_ptr<TierLifecycle> Lifecycle; ///< null when tierless
  std::shared_ptr<const SharedCache> Tier;  ///< guarded by M after drain
};

AnalysisService::AnalysisService(ServiceOptions Options)
    : In(std::make_shared<Impl>(std::move(Options))) {
  uint32_t N = In->Options.Workers;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  In->Slots.reserve(N);
  In->Threads.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    auto Slot = std::make_shared<WorkerSlot>(I);
    In->Slots.push_back(Slot);
    In->Threads.emplace_back(&AnalysisService::workerLoop, In, Slot);
  }
  if (In->Options.WatchdogPollMs != 0)
    In->Watchdog = std::thread(&AnalysisService::watchdogLoop, In);
}

AnalysisService::~AnalysisService() {
  if (!drained())
    drain(std::chrono::milliseconds(0));
}

ServiceTicketPtr AnalysisService::submit(ServiceRequest R) {
  return submitImpl(std::move(R),
                    In->Options.Admission == AdmitPolicy::Block);
}

ServiceTicketPtr AnalysisService::trySubmit(ServiceRequest R) {
  return submitImpl(std::move(R), /*AllowBlock=*/false);
}

ServiceTicketPtr AnalysisService::submitImpl(ServiceRequest R,
                                             bool AllowBlock) {
  auto Ticket = std::make_shared<ServiceTicket>();
  uint32_t DeadlineMs =
      R.DeadlineMs != 0 ? R.DeadlineMs : In->Options.Opts.DeadlineMs;

  // A ticket shed out of the queue by ShedEarliestToMiss; fulfilled
  // after the lock drops.
  ServiceTicketPtr Evicted;
  ServiceOutcome EvictedOut;

  {
    std::unique_lock<std::mutex> L(In->M);
    ++In->St.Submitted;

    auto rejectLocked = [&](uint64_t &Counter, const std::string &Why) {
      ++Counter;
      L.unlock();
      ServiceOutcome O;
      O.Outcome = rejectedOutcome(Why);
      Ticket->fulfill(std::move(O));
      return Ticket;
    };

    if (In->Draining)
      return rejectLocked(In->St.RejectedDraining,
                          "rejected: service is draining");

    // Overload shedding at admission: when the queue head is already
    // past its horizon, a deadline-carrying newcomer whose estimated
    // wait exceeds its own deadline would only be shed later at dequeue
    // — refuse it now, while the caller can still do something about it.
    In->refreshOverload();
    if (In->State == OverloadState::Shedding && DeadlineMs != 0) {
      uint32_t W = std::max<uint32_t>(
          1, static_cast<uint32_t>(In->Threads.size()));
      double EstWaitMs =
          static_cast<double>(In->Queue.size() + 1) * In->EwmaJobMs / W;
      if (EstWaitMs >= DeadlineMs)
        return rejectLocked(In->St.RejectedShedding,
                            "rejected: shed at admission under overload");
    }

    if (In->Queue.size() >= In->Options.QueueCapacity) {
      AdmitPolicy P = In->Options.Admission;
      if (P == AdmitPolicy::Block && !AllowBlock)
        P = AdmitPolicy::RejectNewest; // trySubmit never blocks
      switch (P) {
      case AdmitPolicy::Block:
        In->NotFull.wait(L, [&] {
          return In->Draining ||
                 In->Queue.size() < In->Options.QueueCapacity;
        });
        if (In->Draining)
          return rejectLocked(In->St.RejectedDraining,
                              "rejected: service is draining");
        break;
      case AdmitPolicy::RejectNewest:
        return rejectLocked(In->St.RejectedQueueFull,
                            "rejected: admission queue full");
      case AdmitPolicy::ShedEarliestToMiss: {
        // Evict the queued job with the nearest deadline — the one most
        // likely to miss anyway — but only if the newcomer's horizon is
        // farther (no deadline = infinitely far). Otherwise the newcomer
        // IS the earliest-to-miss: reject it instead.
        auto Victim = In->Queue.end();
        for (auto It = In->Queue.begin(); It != In->Queue.end(); ++It)
          if (It->HasDeadline &&
              (Victim == In->Queue.end() ||
               It->DeadlineAt < Victim->DeadlineAt))
            Victim = It;
        bool NewcomerFarther =
            Victim != In->Queue.end() &&
            (DeadlineMs == 0 ||
             ServiceClock::now() + std::chrono::milliseconds(DeadlineMs) >
                 Victim->DeadlineAt);
        if (!NewcomerFarther)
          return rejectLocked(In->St.RejectedQueueFull,
                              "rejected: admission queue full");
        ++In->St.ShedQueued;
        Evicted = Victim->Ticket;
        EvictedOut.Outcome =
            rejectedOutcome("rejected: shed for a later-deadline job");
        EvictedOut.LatencyMs =
            msSince(Victim->EnqueuedAt, ServiceClock::now());
        EvictedOut.Seq = Victim->Seq;
        In->Queue.erase(Victim);
        break;
      }
      }
    }

    Impl::Entry E;
    E.Job = std::move(R.Job);
    E.DeadlineMs = DeadlineMs;
    E.HasDeadline = DeadlineMs != 0;
    E.EnqueuedAt = ServiceClock::now();
    if (E.HasDeadline)
      E.DeadlineAt = E.EnqueuedAt + std::chrono::milliseconds(DeadlineMs);
    E.Ticket = Ticket;
    E.Seq = ++In->NextSeq;
    ++In->St.Admitted;
    In->Queue.push_back(std::move(E));
    In->St.PeakQueueDepth = std::max(
        In->St.PeakQueueDepth, static_cast<uint32_t>(In->Queue.size()));
  }
  if (Evicted)
    Evicted->fulfill(std::move(EvictedOut));
  In->NotEmpty.notify_one();
  return Ticket;
}

void AnalysisService::workerLoop(std::shared_ptr<Impl> In,
                                 std::shared_ptr<WorkerSlot> Slot) {
  for (;;) {
    Impl::Entry E;
    {
      std::unique_lock<std::mutex> L(In->M);
      In->NotEmpty.wait(L, [&] {
        return In->Stopping || Slot->Poisoned || !In->Queue.empty();
      });
      if (In->Stopping || Slot->Poisoned)
        return;
      E = std::move(In->Queue.front());
      In->Queue.pop_front();

      // Dequeue-time shed: a job whose deadline expired while queued
      // would only burn a worker to produce FailKind::Deadline; answer
      // it structurally instead.
      if (E.HasDeadline && ServiceClock::now() >= E.DeadlineAt) {
        ++In->St.ShedQueued;
        bool Quiet = In->Queue.empty() && In->Busy == 0;
        L.unlock();
        In->NotFull.notify_one();
        ServiceOutcome O;
        O.Outcome = rejectedOutcome("rejected: deadline expired in queue");
        O.LatencyMs = msSince(E.EnqueuedAt, ServiceClock::now());
        O.Seq = E.Seq;
        E.Ticket->fulfill(std::move(O));
        if (Quiet)
          In->Idle.notify_all();
        continue;
      }

      Slot->Busy = true;
      Slot->Seq = E.Seq;
      Slot->BusySince = ServiceClock::now();
      Slot->DeadlineMs = E.DeadlineMs;
      Slot->Cancel = E.Ticket->token();
      Slot->CancelArmed = false;
      ++In->Busy;
    }
    In->NotFull.notify_one();

    // The deadline is end-to-end from admission: a job that waited gets
    // only its remaining budget (floored at 1ms so the analyzer's own
    // poll reports Deadline rather than us guessing here).
    AnalyzerOptions JobOpts = In->Options.Opts;
    JobOpts.Shared = In->Options.Shared;
    JobOpts.CollectDelta = In->Options.CollectDeltas;
    JobOpts.DeltaMinHits = In->Options.DeltaMinHits;
    JobOpts.Cancel = Slot->Cancel;
    if (E.HasDeadline) {
      double RemainMs = msSince(ServiceClock::now(), E.DeadlineAt);
      JobOpts.DeadlineMs =
          static_cast<uint32_t>(std::max(1.0, RemainMs));
    }

    JobOutcome O = runContainedJob(E.Job, JobOpts,
                                   In->Options.Resilience.get(),
                                   E.Seq * 251);
    O.Worker = Slot->Index;

    ServiceOutcome Out;
    double JobMs = O.Seconds * 1e3;
    Out.LatencyMs = msSince(E.EnqueuedAt, ServiceClock::now());
    Out.Seq = E.Seq;
    Out.Ran = true;
    Out.Outcome = std::move(O);

    bool ExitPoisoned = false;
    {
      std::lock_guard<std::mutex> L(In->M);
      ++In->St.Completed;
      if (E.HasDeadline && ServiceClock::now() > E.DeadlineAt)
        ++In->St.DeadlineMissed;
      In->EwmaJobMs = In->EwmaJobMs == 0
                          ? JobMs
                          : 0.8 * In->EwmaJobMs + 0.2 * JobMs;
      if (Out.Outcome.Result.Delta)
        In->Deltas.push_back(Out.Outcome.Result.Delta);
      Slot->Busy = false;
      Slot->Cancel = nullptr;
      Slot->DeadlineMs = 0;
      Slot->CancelArmed = false;
      --In->Busy;
      ExitPoisoned = Slot->Poisoned;
    }
    E.Ticket->fulfill(std::move(Out));
    {
      std::lock_guard<std::mutex> L(In->M);
      if (In->Queue.empty() && In->Busy == 0)
        In->Idle.notify_all();
    }
    // A poisoned slot's thread has already been replaced (and this
    // thread detached): deliver the result, then disappear quietly.
    if (ExitPoisoned)
      return;
  }
}

void AnalysisService::watchdogLoop(std::shared_ptr<Impl> In) {
  const auto Poll = std::chrono::milliseconds(In->Options.WatchdogPollMs);
  std::unique_lock<std::mutex> L(In->M);
  while (!In->Stopping) {
    In->WatchCV.wait_for(L, Poll);
    if (In->Stopping)
      return;
    In->refreshOverload();
    for (size_t I = 0; I != In->Slots.size(); ++I) {
      WorkerSlot &S = *In->Slots[I];
      if (!S.Busy || S.DeadlineMs == 0)
        continue;
      double ElapsedMs = msSince(S.BusySince, ServiceClock::now());
      if (!S.CancelArmed &&
          ElapsedMs >
              In->Options.WatchdogCancelMultiple * S.DeadlineMs) {
        // Rung 1: the job blew well past its deadline without the
        // cooperative signal unwinding it — arm the token so the next
        // poll point (if the job ever reaches one) stops it.
        S.Cancel->cancel();
        S.CancelArmed = true;
        ++In->St.WatchdogCancels;
      } else if (S.CancelArmed && !S.Poisoned &&
                 ElapsedMs >
                     In->Options.WatchdogPoisonMultiple * S.DeadlineMs) {
        // Rung 2: the cancel didn't land — the worker is wedged between
        // poll points. Poison the slot, abandon the thread to unwind on
        // its own (everything it touches is shared_ptr-owned), and
        // spawn a replacement so capacity self-heals. This detach is
        // the one argued suppression of gaia-lint's no-detached-thread
        // rule: join here would block the watchdog on the very thread
        // it decided is stuck.
        S.Poisoned = true;
        ++In->St.WatchdogPoisoned;
        In->Threads[I].detach();
        auto Fresh =
            std::make_shared<WorkerSlot>(static_cast<uint32_t>(I));
        In->Slots[I] = Fresh;
        In->Threads[I] =
            std::thread(&AnalysisService::workerLoop, In, Fresh);
        ++In->St.WorkersReplaced;
        In->NotEmpty.notify_all();
      }
    }
  }
}

void AnalysisService::drain(std::chrono::milliseconds FlushBudget) {
  {
    std::lock_guard<std::mutex> L(In->M);
    if (In->Drained)
      return;
    In->Draining = true;
  }
  // Wake Block-policy submitters (they reject now) and the watchdog.
  In->NotFull.notify_all();
  In->WatchCV.notify_all();

  std::deque<Impl::Entry> Shed;
  {
    std::unique_lock<std::mutex> L(In->M);
    // Flush phase: workers keep dequeuing; the budget is real wall time
    // (not ServiceClock — a test that skews the clock to age the queue
    // must not also shrink the flush window).
    auto Until = std::chrono::steady_clock::now() + FlushBudget;
    In->Idle.wait_until(L, Until, [&] {
      return In->Queue.empty() && In->Busy == 0;
    });
    // Shed phase: whatever is still queued gets a structured refusal,
    // and in-flight jobs are cancelled — drain must terminate even if
    // the queue could never flush in the budget.
    Shed.swap(In->Queue);
    In->St.ShedQueued += Shed.size();
    for (const auto &Slot : In->Slots)
      if (Slot->Busy && Slot->Cancel)
        Slot->Cancel->cancel();
    In->Stopping = true;
  }
  In->NotEmpty.notify_all();
  In->NotFull.notify_all();
  In->WatchCV.notify_all();
  for (Impl::Entry &E : Shed) {
    ServiceOutcome O;
    O.Outcome = rejectedOutcome("rejected: shed at drain");
    O.LatencyMs = msSince(E.EnqueuedAt, ServiceClock::now());
    O.Seq = E.Seq;
    E.Ticket->fulfill(std::move(O));
  }

  // Join the watchdog first: it is the only other mutator of Threads,
  // so after this join the vector is stable. A worker the watchdog
  // already detached is not joinable and cannot block shutdown.
  if (In->Watchdog.joinable())
    In->Watchdog.join();
  for (std::thread &T : In->Threads)
    if (T.joinable())
      T.join();

  {
    std::lock_guard<std::mutex> L(In->M);
    if (In->Lifecycle) {
      // The rotation reads only Result.Delta from each outcome, so the
      // harvested deltas are wrapped in minimal JobOutcome shells.
      std::vector<JobOutcome> Wrap(In->Deltas.size());
      for (size_t I = 0; I != In->Deltas.size(); ++I)
        Wrap[I].Result.Delta = In->Deltas[I];
      In->Deltas.clear();
      In->Tier = In->Lifecycle->endBatch(Wrap);
    }
    In->Drained = true;
  }
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> L(In->M);
  In->refreshOverload();
  ServiceStats S = In->St;
  S.QueueDepth = static_cast<uint32_t>(In->Queue.size());
  S.OldestQueuedMs =
      In->Queue.empty()
          ? 0
          : msSince(In->Queue.front().EnqueuedAt, ServiceClock::now());
  S.BusyWorkers = In->Busy;
  S.Workers = static_cast<uint32_t>(In->Threads.size());
  S.State = In->State;
  S.AvgJobMs = In->EwmaJobMs;
  return S;
}

OverloadState AnalysisService::overloadState() const {
  std::lock_guard<std::mutex> L(In->M);
  In->refreshOverload();
  return In->State;
}

uint32_t AnalysisService::workers() const {
  std::lock_guard<std::mutex> L(In->M);
  return static_cast<uint32_t>(In->Threads.size());
}

bool AnalysisService::drained() const {
  std::lock_guard<std::mutex> L(In->M);
  return In->Drained;
}

std::shared_ptr<const SharedCache> AnalysisService::tier() const {
  std::lock_guard<std::mutex> L(In->M);
  return In->Tier;
}

LifecycleStats AnalysisService::lifecycleStats() const {
  std::lock_guard<std::mutex> L(In->M);
  return In->Lifecycle ? In->Lifecycle->stats() : LifecycleStats{};
}
