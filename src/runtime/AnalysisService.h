//===- runtime/AnalysisService.h - Resident analysis front-end ------------==//
///
/// \file
/// The resident serving layer over the AnalysisPool/ResilienceManager/
/// TierLifecycle stack: where AnalysisPool::run dispatches one fixed
/// batch and blocks, AnalysisService accepts a continuous stream of
/// submissions and makes *load* — not just individual jobs — unable to
/// take the process down. Design (see DESIGN.md, "Serving and
/// overload"):
///
///   - a bounded MPMC admission queue with an explicit policy: Block
///     (classic backpressure), RejectNewest (fail fast), or the
///     deadline-aware ShedEarliestToMiss (evict the queued job most
///     likely to blow its deadline in favour of one that can still make
///     it). Rejection is never an exception and never silent: every
///     refused or shed job's ticket is fulfilled with a structured
///     AnalysisResult carrying FailKind::Rejected.
///   - backpressure surfaced to callers: trySubmit never blocks, and
///     ServiceStats exposes queue depth/age gauges plus an overload
///     state machine (Healthy -> Saturated -> Shedding) driven by queue
///     age against per-request deadlines. Under sustained overload the
///     service sheds at admission instead of burning workers on jobs
///     that would blow their deadline waiting.
///   - a watchdog thread for the failure cooperative cancellation
///     cannot handle: a worker wedged *between* poll points. Past a
///     wall-clock multiple of the job's deadline the watchdog arms the
///     job's cancel token; past a larger multiple it poisons the worker
///     slot, detaches the stuck thread (the one argued detach in this
///     codebase — the thread is left to unwind on its own) and spawns a
///     replacement so capacity self-heals. Everything a stuck thread
///     can still touch is owned by a shared_ptr state block, so it can
///     never dangle, and its ticket is still fulfilled when it finally
///     comes home.
///   - a graceful lifecycle: drain(budget) closes admission, flushes
///     the queue for up to the budget, sheds the remainder with
///     structured results, runs the TierLifecycle::endBatch promotion
///     path over the deltas completed jobs harvested, and joins the
///     workers. The post-drain tier serves a fresh batch bit-identically
///     (caching is observationally invisible; see ROADMAP).
///
/// All queue-side time arithmetic goes through ServiceClock
/// (support/Clock.h) so tests can age the queue without sleeping.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_ANALYSISSERVICE_H
#define GAIA_RUNTIME_ANALYSISSERVICE_H

#include "runtime/Resilience.h"
#include "runtime/SharedCache.h"
#include "runtime/TierLifecycle.h"
#include "support/Clock.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace gaia {

/// What happens when a submission finds the admission queue full.
enum class AdmitPolicy : uint8_t {
  Block,             ///< submit() waits for space (trySubmit still fails fast)
  RejectNewest,      ///< the new submission is rejected
  ShedEarliestToMiss,///< evict the queued job with the nearest deadline —
                     ///< the one most likely to miss — if the newcomer's
                     ///< horizon is farther; otherwise reject the newcomer
};

const char *admitPolicyName(AdmitPolicy P);

/// Queue-age-driven overload ladder. Healthy: jobs flow. Saturated: the
/// queue is deep (or aging) enough that callers should back off —
/// admission still accepts. Shedding: the queue head has waited past
/// its deadline horizon; deadline-carrying submissions that cannot be
/// served in time are rejected at admission.
enum class OverloadState : uint8_t { Healthy, Saturated, Shedding };

const char *overloadStateName(OverloadState S);

struct ServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  uint32_t Workers = 0;
  /// Bound on admitted-but-unstarted jobs. The queue is the only elastic
  /// buffer in the service; everything beyond it is policy.
  uint32_t QueueCapacity = 64;
  AdmitPolicy Admission = AdmitPolicy::Block;
  /// Analyzer configuration applied to every job. Opts.DeadlineMs is the
  /// default per-request deadline (a ServiceRequest may override it);
  /// the deadline is end-to-end from admission, so a job that waited in
  /// the queue runs with only its remaining budget.
  AnalyzerOptions Opts;
  /// Initial frozen shared tier (may be null: jobs run cold and drain()
  /// skips the lifecycle rotation).
  std::shared_ptr<const SharedCache> Shared;
  /// Optional retry-with-degradation ladder, as in PoolOptions.
  std::shared_ptr<ResilienceManager> Resilience;
  /// Lifecycle policy for the drain-time endBatch rotation.
  LifecyclePolicy Lifecycle;
  /// Harvest hot delta-cache entries from completed jobs; drain()'s
  /// rotation promotes them into the next tier.
  bool CollectDeltas = false;
  uint32_t DeltaMinHits = 2;
  /// Overload state machine: Saturated when queue depth reaches this
  /// fraction of QueueCapacity (or the head has aged half its shedding
  /// horizon).
  double SaturatedDepthFraction = 0.5;
  /// Shedding when the queue head has waited this fraction of its own
  /// deadline (1.0 = the head has already missed it while queued).
  double SheddingAgeFraction = 1.0;
  /// Watchdog scan period in milliseconds; 0 disables the watchdog
  /// thread entirely (cooperative cancellation remains).
  uint32_t WatchdogPollMs = 50;
  /// Arm the job's cancel token when it has run past this multiple of
  /// its deadline (only deadline-carrying jobs are watched).
  double WatchdogCancelMultiple = 2.0;
  /// Poison the worker slot and spawn a replacement past this multiple.
  double WatchdogPoisonMultiple = 4.0;
};

/// One submission: the job plus an optional per-request deadline
/// override (0 = use ServiceOptions::Opts.DeadlineMs).
struct ServiceRequest {
  AnalysisJob Job;
  uint32_t DeadlineMs = 0;
};

/// What a ticket resolves to.
struct ServiceOutcome {
  /// The analysis outcome (or the structured Rejected result for jobs
  /// the serving layer refused or shed).
  JobOutcome Outcome;
  /// True when the job reached the analysis stack (including quarantine
  /// short-circuits); false when admission control or shedding answered
  /// it with FailKind::Rejected.
  bool Ran = false;
  /// Submission-to-fulfillment latency on the service clock.
  double LatencyMs = 0;
  /// Admission sequence number (0 for jobs rejected at admission).
  uint64_t Seq = 0;
};

/// The caller's handle on one submission. Fulfilled exactly once — by a
/// worker, by admission control, or by drain-time shedding — and safe
/// to wait on from any thread.
class ServiceTicket {
public:
  /// Blocks until the outcome is available.
  const ServiceOutcome &wait() const {
    std::unique_lock<std::mutex> L(M);
    CV.wait(L, [&] { return Done; });
    return Out;
  }

  /// Non-blocking readiness check.
  bool done() const {
    std::lock_guard<std::mutex> L(M);
    return Done;
  }

  /// Cooperative caller-side cancellation of this job: the worker polls
  /// the same token the watchdog escalates on. The ticket still resolves
  /// (with FailKind::Cancelled if the cancel lands mid-run).
  void cancel() { Token->cancel(); }

private:
  friend class AnalysisService;

  void fulfill(ServiceOutcome O) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Done)
        return; // fulfillment is first-writer-wins
      Out = std::move(O);
      Done = true;
    }
    CV.notify_all();
  }

  std::shared_ptr<CancelToken> token() const { return Token; }

  mutable std::mutex M;
  mutable std::condition_variable CV;
  ServiceOutcome Out;
  bool Done = false;
  std::shared_ptr<CancelToken> Token = std::make_shared<CancelToken>();
};

using ServiceTicketPtr = std::shared_ptr<ServiceTicket>;

/// Counters are monotone over the service's lifetime; gauges are a
/// snapshot taken under the service lock by stats().
struct ServiceStats {
  // Counters.
  uint64_t Submitted = 0;          ///< submit/trySubmit calls
  uint64_t Admitted = 0;           ///< entered the queue
  uint64_t Completed = 0;          ///< ran on a worker to a structured result
  uint64_t RejectedQueueFull = 0;  ///< refused by the admission policy
  uint64_t RejectedDraining = 0;   ///< submitted after drain began
  uint64_t RejectedShedding = 0;   ///< shed at admission under overload
  uint64_t ShedQueued = 0;         ///< admitted but shed before running
                                   ///< (deadline expired queued, policy
                                   ///< eviction, or drain)
  uint64_t DeadlineMissed = 0;     ///< completed past their deadline
  uint64_t WatchdogCancels = 0;    ///< stuck jobs whose token was armed
  uint64_t WatchdogPoisoned = 0;   ///< worker slots poisoned
  uint64_t WorkersReplaced = 0;    ///< replacement threads spawned
  // Gauges.
  uint32_t QueueDepth = 0;
  uint32_t PeakQueueDepth = 0;
  double OldestQueuedMs = 0;       ///< age of the queue head (0 if empty)
  uint32_t BusyWorkers = 0;
  uint32_t Workers = 0;
  OverloadState State = OverloadState::Healthy;
  double AvgJobMs = 0;             ///< EWMA of completed-job run time
};

/// The resident front-end. Construction starts the workers (and the
/// watchdog); drain() is the graceful shutdown; the destructor drains
/// with a zero flush budget (shedding anything still queued) if the
/// caller did not.
class AnalysisService {
public:
  explicit AnalysisService(ServiceOptions Options);
  ~AnalysisService();

  AnalysisService(const AnalysisService &) = delete;
  AnalysisService &operator=(const AnalysisService &) = delete;

  /// Submits one job under the admission policy. Always returns a
  /// ticket; a refused job's ticket is already fulfilled with
  /// FailKind::Rejected. Block policy: blocks while the queue is full.
  ServiceTicketPtr submit(ServiceRequest R);

  /// Backpressure fast path: never blocks regardless of policy. A full
  /// queue (or a draining service) yields an immediately-fulfilled
  /// Rejected ticket the caller can inspect to back off.
  ServiceTicketPtr trySubmit(ServiceRequest R);

  ServiceStats stats() const;
  OverloadState overloadState() const;
  uint32_t workers() const;

  /// Graceful shutdown. Closes admission (later submissions are
  /// Rejected), lets workers flush the queue for up to \p FlushBudget
  /// of real wall time, sheds whatever is still queued with structured
  /// Rejected results, cancels in-flight jobs past the budget, joins
  /// the workers and the watchdog, and runs the TierLifecycle::endBatch
  /// promotion over the harvested deltas. Call at most once (the
  /// destructor calls it with a zero budget if needed); a stuck worker
  /// that the watchdog already detached does not block the join.
  void drain(std::chrono::milliseconds FlushBudget);

  bool drained() const;

  /// The current frozen tier: the construction-time tier until drain(),
  /// the promoted one after. Null when the service was built tierless.
  std::shared_ptr<const SharedCache> tier() const;

  /// Lifecycle counters for the drain-time rotation (zeros when the
  /// service was built tierless).
  LifecycleStats lifecycleStats() const;

private:
  struct Impl;
  struct WorkerSlot;

  static void workerLoop(std::shared_ptr<Impl> In,
                         std::shared_ptr<WorkerSlot> Slot);
  static void watchdogLoop(std::shared_ptr<Impl> In);

  ServiceTicketPtr submitImpl(ServiceRequest R, bool AllowBlock);

  /// Everything workers (and a detached straggler) can touch, owned by
  /// shared_ptr exactly like AnalysisPool's Batch: the service object
  /// may die while a poisoned thread is still unwinding.
  std::shared_ptr<Impl> In;
};

} // namespace gaia

#endif // GAIA_RUNTIME_ANALYSISSERVICE_H
