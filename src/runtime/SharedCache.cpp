//===- runtime/SharedCache.cpp ---------------------------------------------=//

#include "runtime/SharedCache.h"

#include <chrono>

using namespace gaia;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Flat per-entry overhead charged for a hash-map node (bucket slot +
/// node header). A constant, so the estimate is deterministic across
/// allocators and runs — what the soak bench's plateau gate needs.
constexpr uint64_t MapNodeOverhead = 32;

uint64_t graphBytes(const TypeGraph &G) {
  uint64_t B = sizeof(TypeGraph);
  B += uint64_t(G.numNodes()) * sizeof(TGNode);
  for (NodeId V = 0; V != G.numNodes(); ++V)
    if (G.node(V).Succs.size() > 2) // beyond SuccList's inline capacity
      B += G.node(V).Succs.size() * sizeof(NodeId);
  return B;
}

/// Deterministic byte estimate of a frozen tier's resident data. Node
/// storage lives in heap shared_ptr blocks even in audit builds, so
/// arena bytes alone undercount; this walks what the tier actually
/// keeps alive. Stable given the same tier contents.
uint64_t estimateTierBytes(const FrozenOpTier &T) {
  uint64_t B = 0;
  const FrozenInternTier &IT = *T.Intern;
  for (const TypeGraph &G : IT.Canon)
    B += graphBytes(G);
  for (const TypeGraph &G : IT.Aliases)
    B += graphBytes(G);
  B += IT.Canon.size() * sizeof(std::atomic<uint32_t>); // touch array
  for (const auto &[Hash, Entries] : IT.StructBuckets) {
    (void)Hash;
    B += MapNodeOverhead +
         Entries.size() * sizeof(std::pair<const TypeGraph *, CanonId>);
  }
  for (const auto &[Key, Id] : IT.AutoMap) {
    (void)Id;
    B += MapNodeOverhead + Key.size() * sizeof(uint64_t);
  }
  const FrozenPfTier &PT = *T.Pf;
  B += PT.Pool.size() * sizeof(FunctorId);
  B += PT.Sets.size() * sizeof(FrozenPfTier::Entry);
  for (const auto &[Hash, Ids] : PT.Buckets) {
    (void)Hash;
    B += MapNodeOverhead + Ids.size() * sizeof(PfSetId);
  }
  B += T.Incl.size() * (sizeof(std::pair<CanonId, CanonId>) + 1 +
                        MapNodeOverhead);
  B += (T.Union.size() + T.Inter.size() + T.Widen.size()) *
       (sizeof(std::pair<CanonId, CanonId>) + sizeof(CanonId) +
        MapNodeOverhead);
  for (const auto &[Key, Memo] : T.Restrict) {
    (void)Key;
    B += MapNodeOverhead + sizeof(std::pair<CanonId, uint32_t>) +
         sizeof(RestrictMemo) + Memo.Args.size() * sizeof(CanonId);
  }
  for (const auto &[Key, Id] : T.Construct) {
    (void)Id;
    B += MapNodeOverhead + Key.size() * sizeof(uint32_t) + sizeof(CanonId);
  }
  return B;
}

uint64_t arenaBytes(const FrozenOpTier &T) {
  uint64_t B = 0;
  if (T.Arena)
    B += T.Arena->bytesAllocated();
  if (T.Intern->Arena)
    B += T.Intern->Arena->bytesAllocated();
  if (T.Pf->Arena)
    B += T.Pf->Arena->bytesAllocated();
  return B;
}

} // namespace

void SharedCache::primeAndFillStats() {
  // Pre-prime the leaf constants: resolve each against the frozen tier
  // so the cached (epoch, id) pairs survive into every job's copy. A
  // constant whose language the tier does not hold simply stays
  // unprimed (the job's delta interner picks it up on first use).
  Consts.AnyList = TypeGraph::makeAnyList(Syms);
  {
    GraphInterner Primer(Syms, Ops->Intern);
    Primer.intern(Consts.Any);
    Primer.intern(Consts.Int);
    Primer.intern(Consts.Bottom);
    Primer.intern(*Consts.AnyList);
  }

  // Warm the functor-rank memo so every job's snapshot copy starts with
  // valid ranks instead of each recomputing them on first sort.
  if (Syms.numFunctors() != 0)
    Syms.functorRank(0);

  St.Graphs = Ops->Intern->size();
  St.OpResults = Ops->resultCount();
  St.PfSets = Ops->Pf->size();
  St.Symbols = Syms.numSymbols();
  St.TierBytes = estimateTierBytes(*Ops);
  St.ArenaBytes = arenaBytes(*Ops);
}

std::shared_ptr<const SharedCache>
SharedCache::build(const std::vector<AnalysisJob> &Warmup,
                   const AnalyzerOptions &Opts, std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    return nullptr;
  };
  if (Opts.Domain != DomainKind::TypeGraphs)
    return Fail("shared cache requires the type-graph domain");
  if (!Opts.UseOpCache)
    return Fail("shared cache requires UseOpCache");

  auto Start = std::chrono::steady_clock::now();
  // Cannot use make_shared: the constructor is private.
  std::shared_ptr<SharedCache> SC(new SharedCache());
  SC->BuiltOpts = Opts;
  SC->BuiltOpts.Shared = nullptr;

  // One accumulating table + cache across all warmup jobs; the cache may
  // itself sit on a previous batch's tier (freeze() merges the two).
  // The table must then start from that tier's snapshot so the frozen
  // graphs' functor ids keep meaning the same symbols.
  const SharedCache *Prev = nullptr;
  if (Opts.Shared && Opts.Shared->compatibleWith(Opts))
    Prev = Opts.Shared.get();
  if (Prev)
    SC->Syms = Prev->symbols();
  NormalizeOptions Norm;
  Norm.OrCap = Opts.OrCap;
  OpCache Warm(SC->Syms, Norm, Prev ? Prev->ops() : nullptr);

  AnalyzerOptions WarmOpts = Opts;
  WarmOpts.Shared = nullptr;
  for (const AnalysisJob &Job : Warmup) {
    AnalysisResult R = analyzeProgramWarm(SC->Syms, Warm, Job.Source,
                                          Job.GoalSpec, WarmOpts);
    if (!R.Ok)
      return Fail("warmup job " + Job.Key + ": " + R.Error);
    SC->St.AllConverged = SC->St.AllConverged && R.Converged;
    ++SC->St.WarmupJobs;
  }

  SC->Ops = Warm.freeze();
  // Stacking a warmup on a previous tier preserves that tier's id
  // prefix, so the touch history stays meaningful — carry it over.
  if (Prev)
    SC->Ops->Intern->seedTouchesFrom(*Prev->ops()->Intern);

  SC->primeAndFillStats();
  SC->St.WarmupSeconds = secondsSince(Start);
  return SC;
}

std::shared_ptr<const SharedCache> SharedCache::promoteAndRefreeze(
    const std::vector<std::shared_ptr<const CacheDelta>> &Deltas) const {
  auto Start = std::chrono::steady_clock::now();
  std::shared_ptr<SharedCache> SC(new SharedCache());
  SC->BuiltOpts = BuiltOpts;
  SC->St.WarmupJobs = St.WarmupJobs;
  SC->St.AllConverged = St.AllConverged;

  // Same table, same functor ids: the absorb below hits its identity
  // fast path for deltas harvested from jobs that ran over this tier
  // (their snapshots started from this very table). Deltas from foreign
  // tables relocate by (name, arity) instead — still exact.
  SC->Syms = Syms;
  NormalizeOptions Norm;
  Norm.OrCap = BuiltOpts.OrCap;
  OpCache Warm(SC->Syms, Norm, Ops);
  for (const std::shared_ptr<const CacheDelta> &D : Deltas)
    if (D)
      SC->St.AbsorbedEntries += Warm.absorbDelta(SC->Syms, *D);

  // Stacking freeze: this tier's ids [0, size) are the new tier's
  // prefix, absorbed entries append past them. Touch history carries
  // over so compaction liveness spans refreezes (absorbed entries start
  // at the current generation — they are hot by construction).
  SC->Ops = Warm.freeze();
  SC->Ops->Intern->seedTouchesFrom(*Ops->Intern);

  SC->primeAndFillStats();
  SC->St.WarmupSeconds = secondsSince(Start);
  return SC;
}

std::shared_ptr<const SharedCache>
SharedCache::compactAndRefreeze(const CompactionPolicy &Policy,
                                RelocationTable<CanonId> *GraphReloc) const {
  auto Start = std::chrono::steady_clock::now();
  const FrozenInternTier &IT = *Ops->Intern;
  const uint32_t Gen = IT.generation();
  auto Live = [&](CanonId Id) {
    return IT.touchGeneration(Id) + Policy.KeepGens >= Gen;
  };

  // Harvest the generationally-live slice of the tier into a value-
  // carrying delta. Graphs are COPIED out of the (possibly sealed)
  // arena: re-interning writes the graph's lazily-filled cache fields,
  // and those writes must land on heap-side copies, never on a
  // PROT_READ tier. An operation entry survives only if every graph it
  // references survives — otherwise its key could not be expressed in
  // the compacted id space.
  CacheDelta D;
  for (CanonId Id = 0; Id != IT.size(); ++Id)
    if (Live(Id))
      D.Graphs.push_back({Id, IT.Canon[Id]});
  for (const auto &[K, V] : Ops->Incl)
    if (Live(K.first) && Live(K.second))
      D.Incl.push_back({IT.Canon[K.first], IT.Canon[K.second], V != 0});
  for (const auto &[K, V] : Ops->Union)
    if (Live(K.first) && Live(K.second) && Live(V))
      D.Union.push_back({IT.Canon[K.first], IT.Canon[K.second], IT.Canon[V]});
  for (const auto &[K, V] : Ops->Inter)
    if (Live(K.first) && Live(K.second) && Live(V))
      D.Inter.push_back({IT.Canon[K.first], IT.Canon[K.second], IT.Canon[V]});
  for (const auto &[K, V] : Ops->Widen)
    if (Live(K.first) && Live(K.second) && Live(V))
      D.Widen.push_back({IT.Canon[K.first], IT.Canon[K.second], IT.Canon[V]});
  for (const auto &[K, V] : Ops->Restrict) {
    bool Keep = Live(K.first);
    for (CanonId A : V.Args)
      Keep = Keep && Live(A);
    if (!Keep)
      continue;
    CacheDelta::RestrictEntry E;
    E.V = IT.Canon[K.first];
    E.Name = Syms.functorName(K.second);
    E.Arity = Syms.functorArity(K.second);
    E.Ok = V.Ok;
    for (CanonId A : V.Args)
      E.Args.push_back(IT.Canon[A]);
    D.Restrict.push_back(std::move(E));
  }
  for (const auto &[K, V] : Ops->Construct) {
    bool Keep = Live(V);
    for (size_t I = 1; I != K.size(); ++I)
      Keep = Keep && Live(K[I]);
    if (!Keep)
      continue;
    CacheDelta::ConstructEntry E;
    E.Name = Syms.functorName(K[0]);
    E.Arity = Syms.functorArity(K[0]);
    for (size_t I = 1; I != K.size(); ++I)
      E.Args.push_back(IT.Canon[K[I]]);
    E.R = IT.Canon[V];
    D.Construct.push_back(std::move(E));
  }
  D.Syms = Syms;

  std::shared_ptr<SharedCache> SC(new SharedCache());
  SC->BuiltOpts = BuiltOpts;
  SC->St.WarmupJobs = St.WarmupJobs;
  SC->St.AllConverged = St.AllConverged;

  // The symbol table is kept whole even when graphs die: functor ids
  // are stable for the cache's lifetime, which is what lets promotion
  // absorb worker deltas over the identity fast path. (Symbols are tiny
  // next to graphs; compacting them would re-key every surviving graph
  // for marginal savings.)
  SC->Syms = Syms;
  NormalizeOptions Norm;
  Norm.OrCap = BuiltOpts.OrCap;
  // A FRESH cache — no shared tier underneath — so survivors renumber
  // densely from 0. The relocation table records old-id -> new-id for
  // every survivor; dropped ids keep the Dropped sentinel. Pf-sets are
  // not relocated: freeze()'s pf pre-pass re-derives them from the
  // surviving graphs (so pf id 0 = the empty set holds by construction).
  OpCache Fresh(SC->Syms, Norm, nullptr);
  RelocationTable<CanonId> LocalReloc(IT.size());
  RelocationTable<CanonId> *Reloc = GraphReloc ? GraphReloc : &LocalReloc;
  if (GraphReloc)
    *GraphReloc = RelocationTable<CanonId>(IT.size());
  SC->St.AbsorbedEntries = Fresh.absorbDelta(SC->Syms, D, Reloc);
  SC->St.DroppedGraphs = IT.size() - Reloc->liveCount();

  // Compacted tier: generation counter and touch history restart at 0
  // (every survivor was live by definition; staleness accrues afresh).
  SC->Ops = Fresh.freeze();

  SC->primeAndFillStats();
  SC->St.WarmupSeconds = secondsSince(Start);
  return SC;
}

bool SharedCache::compatibleWith(const AnalyzerOptions &Opts) const {
  if (Opts.Domain != DomainKind::TypeGraphs || !Opts.UseOpCache)
    return false;
  // Everything that shapes cached graph-operation results must match:
  // the normalization cap and the widening configuration (including the
  // type database the widening may consult). Engine-level knobs
  // (polyvariance cap, fixpoint budget, arithmetic refinement) do not
  // change what a graph operation returns, only which operations run.
  if (Opts.OrCap != BuiltOpts.OrCap)
    return false;
  if (Opts.Widening != BuiltOpts.Widening)
    return false;
  if (Opts.Widening == WidenMode::DepthK && Opts.DepthK != BuiltOpts.DepthK)
    return false;
  return Opts.TypeDatabase == BuiltOpts.TypeDatabase;
}
