//===- runtime/SharedCache.cpp ---------------------------------------------=//

#include "runtime/SharedCache.h"

#include <chrono>

using namespace gaia;

std::shared_ptr<const SharedCache>
SharedCache::build(const std::vector<AnalysisJob> &Warmup,
                   const AnalyzerOptions &Opts, std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    return nullptr;
  };
  if (Opts.Domain != DomainKind::TypeGraphs)
    return Fail("shared cache requires the type-graph domain");
  if (!Opts.UseOpCache)
    return Fail("shared cache requires UseOpCache");

  auto Start = std::chrono::steady_clock::now();
  // Cannot use make_shared: the constructor is private.
  std::shared_ptr<SharedCache> SC(new SharedCache());
  SC->BuiltOpts = Opts;
  SC->BuiltOpts.Shared = nullptr;

  // One accumulating table + cache across all warmup jobs; the cache may
  // itself sit on a previous batch's tier (freeze() merges the two).
  // The table must then start from that tier's snapshot so the frozen
  // graphs' functor ids keep meaning the same symbols.
  const SharedCache *Prev = nullptr;
  if (Opts.Shared && Opts.Shared->compatibleWith(Opts))
    Prev = Opts.Shared.get();
  if (Prev)
    SC->Syms = Prev->symbols();
  NormalizeOptions Norm;
  Norm.OrCap = Opts.OrCap;
  OpCache Warm(SC->Syms, Norm, Prev ? Prev->ops() : nullptr);

  AnalyzerOptions WarmOpts = Opts;
  WarmOpts.Shared = nullptr;
  for (const AnalysisJob &Job : Warmup) {
    AnalysisResult R = analyzeProgramWarm(SC->Syms, Warm, Job.Source,
                                          Job.GoalSpec, WarmOpts);
    if (!R.Ok)
      return Fail("warmup job " + Job.Key + ": " + R.Error);
    SC->St.AllConverged = SC->St.AllConverged && R.Converged;
    ++SC->St.WarmupJobs;
  }

  SC->Ops = Warm.freeze();

  // Pre-prime the leaf constants: resolve each against the frozen tier
  // so the cached (epoch, id) pairs survive into every job's copy. A
  // constant whose language the warmup never produced simply stays
  // unprimed (the job's delta interner picks it up on first use).
  SC->Consts.AnyList = TypeGraph::makeAnyList(SC->Syms);
  {
    GraphInterner Primer(SC->Syms, SC->Ops->Intern);
    Primer.intern(SC->Consts.Any);
    Primer.intern(SC->Consts.Int);
    Primer.intern(SC->Consts.Bottom);
    Primer.intern(*SC->Consts.AnyList);
  }

  // Warm the functor-rank memo so every job's snapshot copy starts with
  // valid ranks instead of each recomputing them on first sort.
  if (SC->Syms.numFunctors() != 0)
    SC->Syms.functorRank(0);

  SC->St.Graphs = SC->Ops->Intern->size();
  SC->St.OpResults = SC->Ops->resultCount();
  SC->St.PfSets = SC->Ops->Pf->size();
  SC->St.Symbols = SC->Syms.numSymbols();
  SC->St.WarmupSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return SC;
}

bool SharedCache::compatibleWith(const AnalyzerOptions &Opts) const {
  if (Opts.Domain != DomainKind::TypeGraphs || !Opts.UseOpCache)
    return false;
  // Everything that shapes cached graph-operation results must match:
  // the normalization cap and the widening configuration (including the
  // type database the widening may consult). Engine-level knobs
  // (polyvariance cap, fixpoint budget, arithmetic refinement) do not
  // change what a graph operation returns, only which operations run.
  if (Opts.OrCap != BuiltOpts.OrCap)
    return false;
  if (Opts.Widening != BuiltOpts.Widening)
    return false;
  if (Opts.Widening == WidenMode::DepthK && Opts.DepthK != BuiltOpts.DepthK)
    return false;
  return Opts.TypeDatabase == BuiltOpts.TypeDatabase;
}
