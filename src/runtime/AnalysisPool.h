//===- runtime/AnalysisPool.h - Concurrent batch-analysis worker pool -----==//
///
/// \file
/// Runs batches of analysis jobs (program x query x options) over a
/// fixed pool of worker threads. Each job is fully independent: it gets
/// its own symbol-table copy, its own mutable delta cache, and (when the
/// pool carries a SharedCache) a read-only view of the frozen shared
/// tier — workers synchronize only on the job queue, never inside an
/// analysis, which is why per-job results are bit-identical to a
/// sequential run regardless of worker count or scheduling.
///
/// The pool's threads are started once and persist across run() calls,
/// so repeated batches (the serving shape: many small request waves)
/// don't pay thread start-up per wave.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_ANALYSISPOOL_H
#define GAIA_RUNTIME_ANALYSISPOOL_H

#include "runtime/Resilience.h"
#include "runtime/SharedCache.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace gaia {

struct PoolOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  uint32_t Workers = 0;
  /// Frozen shared cache tier every job reads through (may be null: the
  /// batch runs cold, each job building caches from scratch).
  std::shared_ptr<const SharedCache> Shared;
  /// Analyzer configuration applied to every job of a batch.
  AnalyzerOptions Opts;
  /// Harvest each job's hot delta-cache entries into
  /// JobOutcome::Result.Delta (AnalyzerOptions::CollectDelta per job).
  /// The lifecycle controller feeds them into promoteAndRefreeze.
  bool CollectDeltas = false;
  /// Per-entry hit threshold for the harvest.
  uint32_t DeltaMinHits = 2;
  /// Optional retry-with-degradation ladder (runtime/Resilience.h),
  /// shared across workers (and poolable across pools). Null = no
  /// retries: a failed job reports its structured failure as-is.
  /// Exception containment is unconditional either way — a worker
  /// thread never dies to a job.
  std::shared_ptr<ResilienceManager> Resilience;
};

// JobOutcome — one finished job — lives in runtime/Resilience.h so the
// whole containment stack (pool, service, lifecycle) shares one result
// shape.

/// Aggregate figures for one run() call.
struct BatchStats {
  uint32_t Jobs = 0;
  double WallSeconds = 0;
  double JobsPerSecond = 0;
  /// Summed op-cache counters across jobs.
  uint64_t SharedHits = 0; ///< resolved in the frozen shared tier
  uint64_t DeltaHits = 0;  ///< resolved in a job's private delta
  uint64_t Misses = 0;     ///< computed fresh
  uint64_t InternSharedHits = 0;
  bool AllOk = true;
  bool AllConverged = true;
  /// Jobs whose final result (after any ladder) is still a failure.
  uint32_t Failed = 0;
  /// Ok jobs whose result came from a degrading rung (tight budgets or
  /// the widen-to-top floor) rather than the configured analysis.
  uint32_t Degraded = 0;
  /// Ok jobs rescued by a non-degrading retry (the cold rung).
  uint32_t Recovered = 0;
  /// "<job key>: <error>" for the first failed job in job order (empty
  /// when Failed == 0); the bench/gate chain surfaces it.
  std::string FirstError;

  double sharedHitRate() const {
    uint64_t Total = SharedHits + DeltaHits + Misses;
    return Total ? double(SharedHits) / double(Total) : 0.0;
  }
};

/// Fixed worker pool. run() dispatches one batch and blocks until it
/// completes; it is not re-entrant (one batch at a time — callers
/// wanting overlap use several pools).
class AnalysisPool {
public:
  explicit AnalysisPool(PoolOptions Options);
  ~AnalysisPool();

  AnalysisPool(const AnalysisPool &) = delete;
  AnalysisPool &operator=(const AnalysisPool &) = delete;

  uint32_t workers() const { return static_cast<uint32_t>(Threads.size()); }

  /// Runs every job of \p Jobs and returns their outcomes in job order.
  /// Aggregate throughput figures land in \p Stats when non-null.
  std::vector<JobOutcome> run(const std::vector<AnalysisJob> &Jobs,
                              BatchStats *Stats = nullptr);

  /// Replaces the shared tier jobs of subsequent batches read through.
  /// Safe between run() calls (the tier-lifecycle rotation point): run()
  /// is not re-entrant, so no batch is in flight, and parked workers
  /// re-acquire the pool mutex before touching options — the store here
  /// happens-before their next claim.
  void setShared(std::shared_ptr<const SharedCache> Shared);

private:
  /// One dispatched batch. Owns copies of the jobs and the result slots:
  /// a worker that woke for this batch but lost every claim race may
  /// still inspect it after run() has returned and the caller's vectors
  /// are gone, so the batch is kept alive by shared_ptr and owns
  /// everything such a straggler can touch.
  struct Batch {
    std::vector<AnalysisJob> Jobs;
    std::vector<JobOutcome> Out;
    std::atomic<size_t> Next{0}; ///< next unclaimed job index
    size_t Completed = 0;        ///< guarded by the pool mutex
  };

  void workerLoop(uint32_t WorkerIndex);
  /// Thin wrapper over runContainedJob (runtime/Resilience.h): applies
  /// the pool's per-batch options and stamps the worker index. noexcept:
  /// no per-job failure reaches workerLoop (a throw here would take the
  /// whole process down).
  JobOutcome runOne(const AnalysisJob &Job, uint32_t WorkerIndex,
                    size_t JobIndex) const noexcept;

  PoolOptions Options;
  std::vector<std::thread> Threads;
  std::mutex M;
  std::condition_variable WorkCV; ///< workers wait for a batch
  std::condition_variable DoneCV; ///< run() waits for completion
  std::shared_ptr<Batch> Cur;     ///< guarded by M (claim index is atomic)
  bool Stopping = false;
};

} // namespace gaia

#endif // GAIA_RUNTIME_ANALYSISPOOL_H
