//===- runtime/SharedCache.h - Frozen cross-request cache tier ------------==//
///
/// \file
/// The shared, read-only cache tier of the concurrent batch-analysis
/// runtime. A SharedCache is built by running a *warmup pass* (typically
/// the batch's distinct programs, or a previous batch) against one
/// accumulating symbol table and operation cache, then freezing the
/// result:
///
///   - a SymbolTable snapshot every job copies, so functor ids of
///     already-known symbols agree with the ids baked into the frozen
///     graphs (new symbols append past the snapshot in the job's private
///     copy);
///   - a FrozenInternTier (support/GraphInterner.h): every graph
///     language the warmup saw, with precomputed signatures, safe for
///     unsynchronized concurrent lookups;
///   - a FrozenOpTier (typegraph/OpCache.h): every graph-operation
///     result the warmup computed, keyed on frozen canonical ids;
///   - pre-primed TypeLeaf constants whose intern caches carry the
///     frozen tier's epoch, so every job's constant uses are O(1) from
///     the first touch.
///
/// Jobs lay a private mutable delta (their own GraphInterner/OpCache)
/// over the tier; misses fall through and are recorded privately, so
/// workers never synchronize on anything. Cached results are exact
/// (pure functions of operand languages), which is why per-job results
/// are bit-identical to a cold sequential run — the property
/// bench/throughput.cpp and tests/AnalysisPoolTest.cpp assert.
///
/// The frozen results are only valid for runs with the same
/// normalization and widening configuration as the warmup;
/// `compatibleWith` gates that, and the analyzer silently bypasses an
/// incompatible tier (correctness never depends on the cache).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_SHAREDCACHE_H
#define GAIA_RUNTIME_SHAREDCACHE_H

#include "core/Analyzer.h"
#include "domains/TypeLeaf.h"
#include "support/Relocation.h"
#include "typegraph/CacheDelta.h"
#include "typegraph/OpCache.h"

#include <memory>
#include <string>
#include <vector>

namespace gaia {

/// One batch-analysis request: a program, a goal, a display key.
struct AnalysisJob {
  std::string Key;      ///< label for reporting ("QU", "PR#2", ...)
  std::string Source;   ///< Prolog source text
  std::string GoalSpec; ///< input pattern, e.g. "nreverse(any,any)"
};

/// Generational-compaction policy (see compactAndRefreeze).
struct CompactionPolicy {
  /// An entry survives when its last touch is within this many
  /// generations of the tier's current one (0 = current generation
  /// only). Generations advance via TierLifecycle between batches.
  uint32_t KeepGens = 1;
};

/// Immutable after construction; share one instance across any number of
/// concurrent workers via shared_ptr (AnalyzerOptions::Shared).
///
/// Tier lifecycle (DESIGN.md "Tier lifecycle"): build() freezes a warmup
/// into tier N; promoteAndRefreeze stacks hot worker-delta entries into
/// tier N+1 (ids preserved); compactAndRefreeze rebuilds a tier keeping
/// only generationally-live entries, renumbering the dense id spaces
/// through explicit RelocationTables. All three produce observationally
/// identical analysis results — every cached entry is an exact pure
/// function of operand languages, so presence or absence of an entry
/// changes only timing, never output.
class SharedCache {
public:
  struct BuildStats {
    uint32_t WarmupJobs = 0;
    double WarmupSeconds = 0;  ///< total warmup analysis + freeze time
    uint64_t Graphs = 0;       ///< distinct languages in the frozen tier
    uint64_t OpResults = 0;    ///< frozen operation results
    uint64_t PfSets = 0;       ///< distinct pf-sets in the frozen tier
    uint32_t Symbols = 0;      ///< symbol-table snapshot size
    bool AllConverged = true;  ///< every warmup analysis converged
    /// Deterministic byte estimate of the frozen tier's resident data
    /// (graphs, buckets, op maps, pf pool) — the figure the lifecycle
    /// budget and the bench plateau gate act on. An estimate because
    /// node storage is heap-side shared_ptr blocks; exact arena bytes
    /// are reported separately under GAIA_AUDIT.
    uint64_t TierBytes = 0;
    /// Exact bytes in the mprotect-sealed tier arenas (GAIA_AUDIT
    /// builds; 0 otherwise).
    uint64_t ArenaBytes = 0;
    /// Entries newly recorded from absorbed deltas (promotion) or kept
    /// through a rebuild (compaction).
    uint64_t AbsorbedEntries = 0;
    /// Graph ids dropped by compaction (0 for build/promotion).
    uint64_t DroppedGraphs = 0;
  };

  /// Runs \p Warmup sequentially under \p Opts against one accumulating
  /// cache and freezes it. Returns null (with \p Err set) if a warmup
  /// job fails to parse or analyze, or if \p Opts cannot use the op
  /// cache (PF domain / UseOpCache off). \p Opts.Shared, if set, is the
  /// tier to layer the warmup itself over — freezing a batch on top of a
  /// previous batch's cache.
  static std::shared_ptr<const SharedCache>
  build(const std::vector<AnalysisJob> &Warmup, const AnalyzerOptions &Opts,
        std::string *Err = nullptr);

  /// Builds tier N+1 from this tier plus the surviving hot entries of
  /// \p Deltas (harvested from jobs that ran over this tier — see
  /// AnalyzerOptions::CollectDelta). Stacking: every id of this tier is
  /// preserved, absorbed entries append past them, and the touch history
  /// carries over so compaction liveness spans refreezes. Null deltas in
  /// the vector are skipped. The promoted tier serves bit-identical
  /// results: absorbed entries are exact.
  std::shared_ptr<const SharedCache> promoteAndRefreeze(
      const std::vector<std::shared_ptr<const CacheDelta>> &Deltas) const;

  /// Rebuilds the tier keeping only entries whose operand/result graph
  /// ids were all touched within \p Policy.KeepGens generations of the
  /// current one. Survivors are renumbered densely; \p GraphReloc (when
  /// non-null) receives the old-id -> new-id table, with dropped ids
  /// mapping to RelocationTable::Dropped. Pf-sets are re-derived from
  /// the surviving graphs (their ids are rebuilt, not relocated), and
  /// the symbol table is kept whole — functor ids are stable for the
  /// cache's lifetime, which is what makes promotion cheap. The
  /// compacted tier is observationally invisible: dropped entries are
  /// recomputed on demand and recomputation is exact.
  std::shared_ptr<const SharedCache>
  compactAndRefreeze(const CompactionPolicy &Policy,
                     RelocationTable<CanonId> *GraphReloc = nullptr) const;

  /// The deterministic tier byte estimate (stats().TierBytes).
  uint64_t tierBytes() const { return St.TierBytes; }

  /// True if a run configured with \p Opts may consult this tier: the
  /// cached results are functions of the operand languages *and* of the
  /// normalization / widening configuration, so everything that shapes
  /// them must match the warmup configuration.
  bool compatibleWith(const AnalyzerOptions &Opts) const;

  /// The frozen symbol-table snapshot jobs seed their private copy from.
  const SymbolTable &symbols() const { return Syms; }

  /// The frozen operation tier (owns the frozen intern tier).
  const std::shared_ptr<const FrozenOpTier> &ops() const { return Ops; }

  /// Canonical leaf constants whose intern caches carry the frozen
  /// tier's epoch. Jobs copy them (Constants are mutable, and workers
  /// must not share mutable state).
  const TypeLeaf::Constants &leafConstants() const { return Consts; }

  const BuildStats &stats() const { return St; }

  SharedCache(const SharedCache &) = delete;
  SharedCache &operator=(const SharedCache &) = delete;

private:
  SharedCache() = default;

  /// Shared tail of build / promote / compact: primes the leaf constants
  /// against the freshly frozen tier, warms the functor-rank memo, and
  /// fills the size and byte figures of St.
  void primeAndFillStats();

  SymbolTable Syms;
  std::shared_ptr<const FrozenOpTier> Ops;
  TypeLeaf::Constants Consts;
  /// The warmup configuration compatibleWith compares against (Shared
  /// cleared; engine-only knobs are ignored by the comparison).
  AnalyzerOptions BuiltOpts;
  BuildStats St;
};

} // namespace gaia

#endif // GAIA_RUNTIME_SHAREDCACHE_H
