//===- runtime/SharedCache.h - Frozen cross-request cache tier ------------==//
///
/// \file
/// The shared, read-only cache tier of the concurrent batch-analysis
/// runtime. A SharedCache is built by running a *warmup pass* (typically
/// the batch's distinct programs, or a previous batch) against one
/// accumulating symbol table and operation cache, then freezing the
/// result:
///
///   - a SymbolTable snapshot every job copies, so functor ids of
///     already-known symbols agree with the ids baked into the frozen
///     graphs (new symbols append past the snapshot in the job's private
///     copy);
///   - a FrozenInternTier (support/GraphInterner.h): every graph
///     language the warmup saw, with precomputed signatures, safe for
///     unsynchronized concurrent lookups;
///   - a FrozenOpTier (typegraph/OpCache.h): every graph-operation
///     result the warmup computed, keyed on frozen canonical ids;
///   - pre-primed TypeLeaf constants whose intern caches carry the
///     frozen tier's epoch, so every job's constant uses are O(1) from
///     the first touch.
///
/// Jobs lay a private mutable delta (their own GraphInterner/OpCache)
/// over the tier; misses fall through and are recorded privately, so
/// workers never synchronize on anything. Cached results are exact
/// (pure functions of operand languages), which is why per-job results
/// are bit-identical to a cold sequential run — the property
/// bench/throughput.cpp and tests/AnalysisPoolTest.cpp assert.
///
/// The frozen results are only valid for runs with the same
/// normalization and widening configuration as the warmup;
/// `compatibleWith` gates that, and the analyzer silently bypasses an
/// incompatible tier (correctness never depends on the cache).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_SHAREDCACHE_H
#define GAIA_RUNTIME_SHAREDCACHE_H

#include "core/Analyzer.h"
#include "domains/TypeLeaf.h"
#include "typegraph/OpCache.h"

#include <memory>
#include <string>
#include <vector>

namespace gaia {

/// One batch-analysis request: a program, a goal, a display key.
struct AnalysisJob {
  std::string Key;      ///< label for reporting ("QU", "PR#2", ...)
  std::string Source;   ///< Prolog source text
  std::string GoalSpec; ///< input pattern, e.g. "nreverse(any,any)"
};

/// Immutable after construction; share one instance across any number of
/// concurrent workers via shared_ptr (AnalyzerOptions::Shared).
class SharedCache {
public:
  struct BuildStats {
    uint32_t WarmupJobs = 0;
    double WarmupSeconds = 0;  ///< total warmup analysis + freeze time
    uint64_t Graphs = 0;       ///< distinct languages in the frozen tier
    uint64_t OpResults = 0;    ///< frozen operation results
    uint64_t PfSets = 0;       ///< distinct pf-sets in the frozen tier
    uint32_t Symbols = 0;      ///< symbol-table snapshot size
    bool AllConverged = true;  ///< every warmup analysis converged
  };

  /// Runs \p Warmup sequentially under \p Opts against one accumulating
  /// cache and freezes it. Returns null (with \p Err set) if a warmup
  /// job fails to parse or analyze, or if \p Opts cannot use the op
  /// cache (PF domain / UseOpCache off). \p Opts.Shared, if set, is the
  /// tier to layer the warmup itself over — freezing a batch on top of a
  /// previous batch's cache.
  static std::shared_ptr<const SharedCache>
  build(const std::vector<AnalysisJob> &Warmup, const AnalyzerOptions &Opts,
        std::string *Err = nullptr);

  /// True if a run configured with \p Opts may consult this tier: the
  /// cached results are functions of the operand languages *and* of the
  /// normalization / widening configuration, so everything that shapes
  /// them must match the warmup configuration.
  bool compatibleWith(const AnalyzerOptions &Opts) const;

  /// The frozen symbol-table snapshot jobs seed their private copy from.
  const SymbolTable &symbols() const { return Syms; }

  /// The frozen operation tier (owns the frozen intern tier).
  const std::shared_ptr<const FrozenOpTier> &ops() const { return Ops; }

  /// Canonical leaf constants whose intern caches carry the frozen
  /// tier's epoch. Jobs copy them (Constants are mutable, and workers
  /// must not share mutable state).
  const TypeLeaf::Constants &leafConstants() const { return Consts; }

  const BuildStats &stats() const { return St; }

  SharedCache(const SharedCache &) = delete;
  SharedCache &operator=(const SharedCache &) = delete;

private:
  SharedCache() = default;

  SymbolTable Syms;
  std::shared_ptr<const FrozenOpTier> Ops;
  TypeLeaf::Constants Consts;
  /// The warmup configuration compatibleWith compares against (Shared
  /// cleared; engine-only knobs are ignored by the comparison).
  AnalyzerOptions BuiltOpts;
  BuildStats St;
};

} // namespace gaia

#endif // GAIA_RUNTIME_SHAREDCACHE_H
