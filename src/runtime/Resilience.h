//===- runtime/Resilience.h - Failure containment and degradation ---------==//
///
/// \file
/// The serving runtime's failure-handling layer: exception containment
/// for worker threads plus the retry-with-degradation ladder. Design
/// (see DESIGN.md, "Failure taxonomy and degradation ladder"):
///
///   attempt 0: the configured run (shared tier, normal budgets)
///   rung 1:    retry *cold* — bypass the shared tier, ruling out the
///              one piece of cross-job state as the failure source
///   rung 2:    retry cold with tightened budgets — a pathological job
///              converges (coarsely) or aborts fast instead of burning
///              its deadline again
///   rung 3:    the widen-to-top floor — the sound answer the engine's
///              own abort path already defines: every output is Any.
///              Always succeeds; maximally imprecise (Degraded = true).
///
/// Only transient-shaped failures climb the ladder (Deadline and
/// Exception). Deterministic input failures (ParseError, BadQuery)
/// retry identically and are returned as-is; a Cancelled job's caller
/// asked for the unwind and gets it.
///
/// A job that exhausts rungs 1–2 repeatedly — consecutively, with no
/// intervening ladder success — is *quarantined*: the manager remembers
/// its (source, goal) fingerprint and answers it from the widen-to-top
/// floor immediately, so a poison job never re-enters the hot path to
/// take a worker hostage again.
///
/// The manager is shared by all workers of a pool (and may be shared by
/// several pools); every method is thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_RESILIENCE_H
#define GAIA_RUNTIME_RESILIENCE_H

#include "core/Analyzer.h"

#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace gaia {

struct AnalysisJob; // runtime/SharedCache.h

/// Ladder configuration.
struct ResilienceOptions {
  /// Rung-2 budget overrides: a retry that previously blew a deadline
  /// gets budgets small enough to terminate (or abort-to-top) quickly.
  uint32_t TightMaxFixpointRounds = 256;
  uint32_t TightMaxInputPatterns = 1;
  /// Consecutive ladder exhaustions (rungs 1-2 both failed, with no
  /// intervening ladder success for the same fingerprint) before the
  /// job is quarantined. A deterministic poison job always exhausts
  /// consecutively; transient faults spread over repeats of the same
  /// query break the streak on every recovery.
  uint32_t QuarantineThreshold = 2;
};

/// Which rung produced a job's final result.
enum class RecoveryRung : uint8_t {
  None,        ///< first attempt succeeded (or failure was not eligible)
  ColdRetry,   ///< rung 1: shared tier bypassed
  TightBudgets,///< rung 2: cold + tightened budgets
  WidenToTop,  ///< rung 3: the sound floor
  Quarantined, ///< answered from the floor without touching a worker
};

const char *recoveryRungName(RecoveryRung R);

/// Per-rung counters (monotone; read under the manager's lock).
struct ResilienceStats {
  uint64_t FirstAttemptFailures = 0;
  uint64_t ColdRetries = 0;
  uint64_t ColdRetrySuccesses = 0;
  uint64_t TightRetries = 0;
  uint64_t TightRetrySuccesses = 0;
  uint64_t WidenToTopFallbacks = 0;
  uint64_t QuarantinedJobs = 0;         ///< fingerprints ever quarantined
  uint64_t QuarantineShortCircuits = 0; ///< jobs answered from quarantine
};

/// Runs analyzeProgram with full exception containment: any C++
/// exception that escapes the analysis (parser, std::bad_alloc, an
/// internal invariant, an injected chaos fault) is converted into a
/// structured failure (Ok = false, Fail = FailKind::Exception, Error =
/// what()). This is the only analysis entry point AnalysisPool workers
/// use; with it, a worker thread cannot die to a per-job failure.
AnalysisResult containedAnalyze(const std::string &Source,
                                const std::string &GoalSpec,
                                const AnalyzerOptions &Opts) noexcept;

class ResilienceManager {
public:
  /// One analysis attempt: runs the job under the given options and
  /// returns its (contained — the callable must not throw) result. The
  /// attempt index distinguishes retries, e.g. for fault-stream seeding.
  using Attempt =
      std::function<AnalysisResult(const AnalyzerOptions &, uint32_t)>;

  explicit ResilienceManager(ResilienceOptions Opts = {});

  /// Quarantine short-circuit: when \p Job is quarantined, fills \p Out
  /// with the widen-to-top floor result, sets \p Rung, and returns true
  /// — the caller must not run the job. Returns false otherwise.
  bool preCheck(const AnalysisJob &Job, AnalysisResult &Out,
                RecoveryRung &Rung);

  /// True when \p R is a failure the ladder may retry (Deadline or
  /// Exception). ParseError/BadQuery are deterministic; Cancelled is the
  /// caller's own request.
  static bool ladderEligible(const AnalysisResult &R);

  /// Runs the ladder for \p Job after its first attempt failed with
  /// \p First (which must be ladderEligible). \p RunAttempt performs one
  /// retry; \p BaseOpts are the job's configured options. On return,
  /// \p Rung is the rung that produced the result and \p Attempts has
  /// been incremented once per retry performed.
  AnalysisResult recover(const AnalysisJob &Job,
                         const AnalyzerOptions &BaseOpts,
                         AnalysisResult First, const Attempt &RunAttempt,
                         RecoveryRung &Rung, uint32_t &Attempts);

  /// The sound floor: Ok, Degraded, every output slot Any. Built without
  /// running the engine (a floor that could itself fail is no floor).
  static AnalysisResult widenToTopResult(const AnalysisJob &Job);

  ResilienceStats stats() const;
  ResilienceOptions options() const { return Opts; }
  bool isQuarantined(const AnalysisJob &Job) const;

private:
  static uint64_t fingerprint(const AnalysisJob &Job);

  const ResilienceOptions Opts;
  mutable std::mutex M;
  ResilienceStats St;
  /// fingerprint -> consecutive ladder exhaustions so far (reset by any
  /// ladder success for the fingerprint; not yet quarantined).
  std::unordered_map<uint64_t, uint32_t> Exhaustions;
  std::unordered_set<uint64_t> Quarantine;
};

} // namespace gaia

#endif // GAIA_RUNTIME_RESILIENCE_H
