//===- runtime/Resilience.h - Failure containment and degradation ---------==//
///
/// \file
/// The serving runtime's failure-handling layer: exception containment
/// for worker threads plus the retry-with-degradation ladder. Design
/// (see DESIGN.md, "Failure taxonomy and degradation ladder"):
///
///   attempt 0: the configured run (shared tier, normal budgets)
///   rung 1:    retry *cold* — bypass the shared tier, ruling out the
///              one piece of cross-job state as the failure source
///   rung 2:    retry cold with tightened budgets — a pathological job
///              converges (coarsely) or aborts fast instead of burning
///              its deadline again
///   rung 3:    the widen-to-top floor — the sound answer the engine's
///              own abort path already defines: every output is Any.
///              Always succeeds; maximally imprecise (Degraded = true).
///
/// Only transient-shaped failures climb the ladder (Deadline and
/// Exception). Deterministic input failures (ParseError, BadQuery)
/// retry identically and are returned as-is; a Cancelled job's caller
/// asked for the unwind and gets it.
///
/// A job that exhausts rungs 1–2 repeatedly — consecutively, with no
/// intervening ladder success — is *quarantined*: the manager remembers
/// its (source, goal) fingerprint and answers it from the widen-to-top
/// floor immediately, so a poison job never re-enters the hot path to
/// take a worker hostage again.
///
/// Quarantine is not a life sentence: a fingerprint condemned by a run
/// of *transient* faults (an injected bad_alloc streak, a deadline blown
/// under momentary overload) would otherwise be stuck on the floor
/// forever. After QuarantineProbeAfter short-circuits the next request
/// for the fingerprint is let through as a *probe*; a probe that earns a
/// non-degraded result releases the quarantine, a probe that fails (or
/// only survives degraded) re-arms it for another TTL window.
///
/// The manager is shared by all workers of a pool (and may be shared by
/// several pools); every method is thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_RESILIENCE_H
#define GAIA_RUNTIME_RESILIENCE_H

#include "core/Analyzer.h"

#include <functional>
#include <mutex>
#include <unordered_map>

namespace gaia {

struct AnalysisJob; // runtime/SharedCache.h

/// Ladder configuration.
struct ResilienceOptions {
  /// Rung-2 budget overrides: a retry that previously blew a deadline
  /// gets budgets small enough to terminate (or abort-to-top) quickly.
  uint32_t TightMaxFixpointRounds = 256;
  uint32_t TightMaxInputPatterns = 1;
  /// Consecutive ladder exhaustions (rungs 1-2 both failed, with no
  /// intervening ladder success for the same fingerprint) before the
  /// job is quarantined. A deterministic poison job always exhausts
  /// consecutively; transient faults spread over repeats of the same
  /// query break the streak on every recovery.
  uint32_t QuarantineThreshold = 2;
  /// Count-based quarantine TTL: after this many quarantine
  /// short-circuits for a fingerprint, the next request probes through
  /// to a real run so a transiently-condemned job can re-earn full
  /// service (the probe's outcome is reported back via probeResult).
  /// 0 restores the pre-TTL behaviour: quarantine is permanent.
  uint32_t QuarantineProbeAfter = 8;
};

/// Which rung produced a job's final result.
enum class RecoveryRung : uint8_t {
  None,        ///< first attempt succeeded (or failure was not eligible)
  ColdRetry,   ///< rung 1: shared tier bypassed
  TightBudgets,///< rung 2: cold + tightened budgets
  WidenToTop,  ///< rung 3: the sound floor
  Quarantined, ///< answered from the floor without touching a worker
};

const char *recoveryRungName(RecoveryRung R);

/// One finished job (the unit both AnalysisPool batches and
/// AnalysisService tickets deliver).
struct JobOutcome {
  AnalysisResult Result;
  double Seconds = 0;  ///< wall time of this job on its worker
  uint32_t Worker = 0; ///< index of the worker that ran it
  /// Which resilience rung produced Result (None: the first attempt —
  /// or the job failed with no ladder configured / an ineligible kind).
  RecoveryRung Rung = RecoveryRung::None;
  /// Analysis attempts consumed (1 = no retries; 0 = quarantined jobs,
  /// which never reach the engine).
  uint32_t Attempts = 1;
  /// Injected chaos faults that fired during this job's attempts (0
  /// unless the build has GAIA_FAULT_INJECT and a fault plan is armed).
  uint64_t FaultFires = 0;
};

/// Per-rung counters (monotone; read under the manager's lock).
struct ResilienceStats {
  uint64_t FirstAttemptFailures = 0;
  uint64_t ColdRetries = 0;
  uint64_t ColdRetrySuccesses = 0;
  uint64_t TightRetries = 0;
  uint64_t TightRetrySuccesses = 0;
  uint64_t WidenToTopFallbacks = 0;
  uint64_t QuarantinedJobs = 0;         ///< fingerprints ever quarantined
  uint64_t QuarantineShortCircuits = 0; ///< jobs answered from quarantine
  uint64_t QuarantineProbes = 0;   ///< TTL expiries let through as probes
  uint64_t QuarantineReleases = 0; ///< probes that re-earned full service
};

/// Runs analyzeProgram with full exception containment: any C++
/// exception that escapes the analysis (parser, std::bad_alloc, an
/// internal invariant, an injected chaos fault) is converted into a
/// structured failure (Ok = false, Fail = FailKind::Exception, Error =
/// what()). This is the only analysis entry point AnalysisPool workers
/// use; with it, a worker thread cannot die to a per-job failure.
AnalysisResult containedAnalyze(const std::string &Source,
                                const std::string &GoalSpec,
                                const AnalyzerOptions &Opts) noexcept;

class ResilienceManager {
public:
  /// One analysis attempt: runs the job under the given options and
  /// returns its (contained — the callable must not throw) result. The
  /// attempt index distinguishes retries, e.g. for fault-stream seeding.
  using Attempt =
      std::function<AnalysisResult(const AnalyzerOptions &, uint32_t)>;

  explicit ResilienceManager(ResilienceOptions Opts = {});

  /// Quarantine short-circuit: when \p Job is quarantined, fills \p Out
  /// with the widen-to-top floor result, sets \p Rung, and returns true
  /// — the caller must not run the job. Returns false otherwise.
  /// When the fingerprint's quarantine TTL has expired the job is let
  /// through as a *probe*: preCheck returns false, sets \p Probe (when
  /// non-null) to true, and the caller must report how the probe fared
  /// via probeResult() — dropping the report leaves the fingerprint
  /// quarantined with a reset TTL window, which is safe but slow.
  bool preCheck(const AnalysisJob &Job, AnalysisResult &Out,
                RecoveryRung &Rung, bool *Probe = nullptr);

  /// Reports a probe's outcome. \p Restored means the job earned a
  /// non-degraded Ok (first attempt or the cold rung): the fingerprint
  /// is released from quarantine and its exhaustion history cleared.
  /// Otherwise the quarantine re-arms for another TTL window.
  void probeResult(const AnalysisJob &Job, bool Restored);

  /// True when \p R is a failure the ladder may retry (Deadline or
  /// Exception). ParseError/BadQuery are deterministic; Cancelled is the
  /// caller's own request.
  static bool ladderEligible(const AnalysisResult &R);

  /// Runs the ladder for \p Job after its first attempt failed with
  /// \p First (which must be ladderEligible). \p RunAttempt performs one
  /// retry; \p BaseOpts are the job's configured options. On return,
  /// \p Rung is the rung that produced the result and \p Attempts has
  /// been incremented once per retry performed.
  AnalysisResult recover(const AnalysisJob &Job,
                         const AnalyzerOptions &BaseOpts,
                         AnalysisResult First, const Attempt &RunAttempt,
                         RecoveryRung &Rung, uint32_t &Attempts);

  /// The sound floor: Ok, Degraded, every output slot Any. Built without
  /// running the engine (a floor that could itself fail is no floor).
  static AnalysisResult widenToTopResult(const AnalysisJob &Job);

  ResilienceStats stats() const;
  ResilienceOptions options() const { return Opts; }
  bool isQuarantined(const AnalysisJob &Job) const;

private:
  static uint64_t fingerprint(const AnalysisJob &Job);

  const ResilienceOptions Opts;
  mutable std::mutex M;
  ResilienceStats St;
  /// fingerprint -> consecutive ladder exhaustions so far (reset by any
  /// ladder success for the fingerprint; not yet quarantined).
  std::unordered_map<uint64_t, uint32_t> Exhaustions;
  /// fingerprint -> short-circuits served since quarantine (or since the
  /// last failed probe). Membership is the quarantine verdict; the count
  /// is the TTL clock.
  std::unordered_map<uint64_t, uint32_t> Quarantine;
};

/// Runs one job end-to-end under the full containment stack shared by
/// AnalysisPool workers and AnalysisService workers: quarantine
/// preCheck (with probe-through reporting), one contained attempt with
/// a deterministic per-(job, attempt) chaos-fault scope, and — when
/// \p Res is non-null and the failure is ladder-eligible — the recovery
/// ladder. \p FaultSaltBase seeds the fault stream (the convention is
/// job-index * 251; the attempt index is added per retry), so the fault
/// plan depends only on job identity, never on which worker ran it.
/// noexcept: this is the last frame before a worker loop — even
/// "impossible" throws become structured failures.
JobOutcome runContainedJob(const AnalysisJob &Job,
                           const AnalyzerOptions &Opts,
                           ResilienceManager *Res,
                           uint64_t FaultSaltBase) noexcept;

} // namespace gaia

#endif // GAIA_RUNTIME_RESILIENCE_H
