//===- runtime/TierLifecycle.h - Managed cache-tier lifecycle -------------==//
///
/// \file
/// The control plane over SharedCache's tier operations: a
/// TierLifecycle owns the current frozen tier of a long-running batch
/// service and rotates it between batches —
///
///   promote   hot worker-delta entries (harvested via
///             AnalyzerOptions::CollectDelta) merge into tier N+1
///             instead of dying with their jobs;
///   compact   every CompactEvery batches, the tier is rebuilt keeping
///             only generationally-live entries, renumbered through
///             relocation tables;
///   evict     when the deterministic tier byte estimate exceeds
///             MaxTierBytes, compaction re-runs with progressively
///             stricter liveness until the tier fits (or nothing more
///             can go).
///
/// The controller is single-threaded by design: it runs on the batch
/// driver's thread between AnalysisPool::run calls, where no worker is
/// in flight. Every tier it installs is observationally invisible —
/// cached entries are exact, so rotation changes memory and timing,
/// never analysis results (bench/tier_lifecycle.cpp asserts the
/// fingerprints).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_RUNTIME_TIERLIFECYCLE_H
#define GAIA_RUNTIME_TIERLIFECYCLE_H

#include "runtime/AnalysisPool.h"
#include "runtime/SharedCache.h"

#include <memory>
#include <vector>

namespace gaia {

struct LifecyclePolicy {
  /// Hit threshold a worker-delta entry must clear to be promoted
  /// (mirrors AnalyzerOptions::DeltaMinHits on the jobs).
  uint32_t PromoteMinHits = 2;
  /// Compact every this many batches (0 = never compact on cadence;
  /// the budget below can still force one).
  uint32_t CompactEvery = 0;
  /// Liveness window handed to CompactionPolicy on cadence compactions.
  uint32_t KeepGens = 1;
  /// Byte budget on the tier estimate (SharedCache::tierBytes);
  /// 0 = unbounded. Exceeding it triggers eviction: compaction with the
  /// liveness window shrunk until the tier fits.
  uint64_t MaxTierBytes = 0;
};

struct LifecycleStats {
  uint32_t Batches = 0;
  uint32_t Promotions = 0;       ///< refreezes that absorbed >= 1 delta
  uint64_t PromotedEntries = 0;  ///< entries absorbed across promotions
  uint32_t Compactions = 0;      ///< cadence + eviction rebuilds
  uint32_t Evictions = 0;        ///< budget-forced compactions
  uint64_t DroppedGraphs = 0;    ///< graph ids dropped across compactions
};

/// Not thread-safe; call endBatch between pool batches only.
class TierLifecycle {
public:
  TierLifecycle(std::shared_ptr<const SharedCache> Initial,
                LifecyclePolicy Policy);

  /// The tier jobs of the next batch should read through.
  const std::shared_ptr<const SharedCache> &current() const { return Tier; }

  /// Rotates the tier after a batch: absorbs the outcomes' harvested
  /// deltas (promotion), advances the touch generation, and compacts on
  /// cadence or over budget. Returns the tier to install for the next
  /// batch (same pointer as current()).
  const std::shared_ptr<const SharedCache> &
  endBatch(const std::vector<JobOutcome> &Outcomes);

  const LifecycleStats &stats() const { return St; }
  const LifecyclePolicy &policy() const { return Policy; }

private:
  void compact(const std::shared_ptr<const SharedCache> &Base,
               uint32_t KeepGens, bool Eviction);

  std::shared_ptr<const SharedCache> Tier;
  LifecyclePolicy Policy;
  LifecycleStats St;
  uint32_t BatchesSinceCompact = 0;
};

} // namespace gaia

#endif // GAIA_RUNTIME_TIERLIFECYCLE_H
