//===- runtime/AnalysisPool.cpp --------------------------------------------=//

#include "runtime/AnalysisPool.h"

#include <chrono>

using namespace gaia;

AnalysisPool::AnalysisPool(PoolOptions O) : Options(std::move(O)) {
  uint32_t N = Options.Workers;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  Threads.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

AnalysisPool::~AnalysisPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

JobOutcome AnalysisPool::runOne(const AnalysisJob &Job, uint32_t WorkerIndex,
                                size_t JobIndex) const noexcept {
  try {
    AnalyzerOptions JobOpts = Options.Opts;
    JobOpts.Shared = Options.Shared;
    JobOpts.CollectDelta = Options.CollectDeltas;
    JobOpts.DeltaMinHits = Options.DeltaMinHits;
    JobOutcome O = runContainedJob(Job, JobOpts, Options.Resilience.get(),
                                   static_cast<uint64_t>(JobIndex) * 251);
    O.Worker = WorkerIndex;
    return O;
  } catch (...) {
    // The per-batch option copy above is the only code outside
    // runContainedJob's own containment; an allocator failure there
    // still must not reach workerLoop.
    JobOutcome O;
    O.Worker = WorkerIndex;
    O.Result.Fail = FailKind::Exception;
    O.Result.Error = "exception escaped the job runner";
    O.Result.Converged = false;
    return O;
  }
}

void AnalysisPool::workerLoop(uint32_t WorkerIndex) {
  for (;;) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> L(M);
      // Wake for shutdown or for a batch that still has unclaimed jobs;
      // a drained batch keeps workers parked until run() retires it.
      WorkCV.wait(L, [&] {
        return Stopping ||
               (Cur && Cur->Next.load(std::memory_order_relaxed) <
                           Cur->Jobs.size());
      });
      if (Stopping)
        return;
      B = Cur;
    }
    for (;;) {
      size_t I = B->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= B->Jobs.size())
        break;
      B->Out[I] = runOne(B->Jobs[I], WorkerIndex, I);
      {
        std::lock_guard<std::mutex> L(M);
        if (++B->Completed == B->Jobs.size())
          DoneCV.notify_one();
      }
    }
  }
}

void AnalysisPool::setShared(std::shared_ptr<const SharedCache> Shared) {
  std::lock_guard<std::mutex> L(M);
  Options.Shared = std::move(Shared);
}

std::vector<JobOutcome> AnalysisPool::run(const std::vector<AnalysisJob> &Jobs,
                                          BatchStats *Stats) {
  std::vector<JobOutcome> Out(Jobs.size());
  auto Start = std::chrono::steady_clock::now();
  if (!Jobs.empty()) {
    auto B = std::make_shared<Batch>();
    B->Jobs = Jobs;
    B->Out.resize(Jobs.size());
    {
      std::lock_guard<std::mutex> L(M);
      Cur = B;
    }
    WorkCV.notify_all();
    {
      std::unique_lock<std::mutex> L(M);
      DoneCV.wait(L, [&] { return B->Completed == B->Jobs.size(); });
      Cur = nullptr;
      // Completed workers are parked; only the Out slots move. A
      // straggler still holding the batch reads Jobs.size() and the
      // atomic claim index, never Out, so the move is unobserved.
      Out = std::move(B->Out);
    }
  }
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  if (Stats) {
    BatchStats S;
    S.Jobs = static_cast<uint32_t>(Jobs.size());
    S.WallSeconds = Wall;
    S.JobsPerSecond = Wall > 0 ? double(Jobs.size()) / Wall : 0.0;
    for (size_t I = 0; I != Out.size(); ++I) {
      const JobOutcome &O = Out[I];
      S.SharedHits += O.Result.Stats.OpCacheSharedHits;
      S.DeltaHits += O.Result.Stats.OpCacheHits;
      S.Misses += O.Result.Stats.OpCacheMisses;
      S.InternSharedHits += O.Result.Stats.InternSharedHits;
      S.AllOk = S.AllOk && O.Result.Ok;
      S.AllConverged = S.AllConverged && O.Result.Converged;
      if (!O.Result.Ok) {
        ++S.Failed;
        if (S.FirstError.empty())
          S.FirstError = Jobs[I].Key + ": " + O.Result.Error;
      } else if (O.Result.Degraded) {
        ++S.Degraded;
      } else if (O.Rung == RecoveryRung::ColdRetry) {
        ++S.Recovered;
      }
    }
    *Stats = S;
  }
  return Out;
}
