//===- domains/TypeLeaf.cpp -------------------------------------------------=//

#include "domains/TypeLeaf.h"

#include "typegraph/GrammarPrinter.h"

using namespace gaia;

bool TypeLeaf::restrictTo(const Context &Ctx, const Value &V, FunctorId Fn,
                          std::vector<Value> &ArgsOut) {
  uint32_t Arity = Ctx.Syms.functorArity(Fn);
  ArgsOut.clear();
  if (V.isBottomGraph())
    return false;
  const TGNode &Root = V.node(V.root());
  // Scan the root or-vertex's alternatives.
  for (NodeId S : Root.Succs) {
    const TGNode &N = V.node(S);
    if (N.Kind == NodeKind::Any) {
      // Any admits every functor with Any arguments.
      for (uint32_t I = 0; I != Arity; ++I)
        ArgsOut.push_back(TypeGraph::makeAny());
      return true;
    }
    if (N.Kind == NodeKind::Int) {
      if (Ctx.Syms.isIntegerLiteral(Fn))
        return true; // literal below Int; no arguments
      continue;
    }
    if (N.Kind == NodeKind::Func && N.Fn == Fn) {
      for (NodeId ArgOr : N.Succs)
        ArgsOut.push_back(normalizeFrom(V, {ArgOr}, Ctx.Syms, Ctx.Norm));
      return true;
    }
  }
  return false;
}

TypeLeaf::Value TypeLeaf::construct(const Context &Ctx, FunctorId Fn,
                                    const std::vector<Value> &Args) {
  assert(Ctx.Syms.functorArity(Fn) == Args.size() && "arity mismatch");
  TypeGraph G;
  std::vector<NodeId> ArgOrs;
  ArgOrs.reserve(Args.size());
  bool AnyArgBottom = false;
  for (const Value &A : Args) {
    if (A.isBottomGraph())
      AnyArgBottom = true;
    ArgOrs.push_back(copySubgraph(A, A.root(), G));
  }
  if (AnyArgBottom)
    return TypeGraph::makeBottom();
  NodeId F = G.addFunc(Fn, std::move(ArgOrs));
  G.setRoot(G.addOr({F}));
  return normalizeGraph(G, Ctx.Syms, Ctx.Norm);
}

std::string TypeLeaf::print(const Context &Ctx, const Value &V) {
  return printGrammarInline(V, Ctx.Syms);
}
