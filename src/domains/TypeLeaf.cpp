//===- domains/TypeLeaf.cpp -------------------------------------------------=//

#include "domains/TypeLeaf.h"

#include "typegraph/GrammarPrinter.h"

using namespace gaia;

// restrictTo and construct live in typegraph/GraphOps.cpp as
// graphRestrict / graphConstruct (shared with the OpCache memo layer);
// the adapter methods in the header dispatch between the cached and the
// raw implementations.

std::string TypeLeaf::print(const Context &Ctx, const Value &V) {
  return printGrammarInline(V, Ctx.Syms);
}
