//===- domains/PFLeaf.h - One-point leaf domain (principal functors) ------==//
///
/// \file
/// The trivial R-domain: leaves carry no information. Pat(PFLeaf) is
/// exactly the "pattern domain preserving only principal functors" that
/// Section 9 compares against in Tables 4 and 5 (the domain of [17],
/// roughly Taylor's domain): all type information comes from the frame
/// and same-value components of Pat(R).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_DOMAINS_PFLEAF_H
#define GAIA_DOMAINS_PFLEAF_H

#include "typegraph/TypeGraph.h"

#include <string>
#include <vector>

namespace gaia {

/// One-point leaf domain. Every leaf denotes "any term".
struct PFLeaf {
  /// Unit value.
  struct Value {};

  struct Context {
    SymbolTable &Syms;
  };

  static Value any(const Context &) { return {}; }
  static Value intValue(const Context &) { return {}; }
  static Value listValue(const Context &) { return {}; }
  static Value bottom(const Context &) { return {}; }

  static bool isBottom(const Context &, const Value &) { return false; }
  static bool isAny(const Context &, const Value &) { return true; }

  static bool includes(const Context &, const Value &, const Value &) {
    return true;
  }
  static Value meet(const Context &, const Value &, const Value &) {
    return {};
  }
  static Value join(const Context &, const Value &, const Value &) {
    return {};
  }
  static Value widen(const Context &, const Value &, const Value &) {
    return {};
  }

  static bool restrictTo(const Context &Ctx, const Value &, FunctorId Fn,
                         std::vector<Value> &ArgsOut) {
    ArgsOut.assign(Ctx.Syms.functorArity(Fn), Value{});
    return true;
  }
  static Value construct(const Context &, FunctorId,
                         const std::vector<Value> &) {
    return {};
  }

  static TypeGraph toGraph(const Context &, const Value &) {
    return TypeGraph::makeAny();
  }

  /// One-point domain: every value is equal, so one canonical key.
  static uint64_t canonKey(const Context &, const Value &) { return 0; }

  static std::string print(const Context &, const Value &) { return "Any"; }
};

} // namespace gaia

#endif // GAIA_DOMAINS_PFLEAF_H
