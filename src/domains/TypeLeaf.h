//===- domains/TypeLeaf.h - Type-graph leaf domain for Pat(R) -------------==//
///
/// \file
/// The R-domain of the paper's system Pat(Type): each leaf subterm of a
/// pattern carries a type graph. This adapter exposes the type-graph
/// operations in the shape the generic pattern domain expects.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_DOMAINS_TYPELEAF_H
#define GAIA_DOMAINS_TYPELEAF_H

#include "typegraph/GraphOps.h"
#include "typegraph/OpCache.h"
#include "typegraph/Widening.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gaia {

class SharedCache; // runtime/SharedCache.h

/// Leaf domain whose values are type graphs. All operations are pure;
/// the Context carries the symbol table, normalization knobs (or-degree
/// cap), widening statistics, and (optionally) the hash-consing
/// operation cache every op is routed through.
struct TypeLeaf {
  using Value = TypeGraph;

  /// Lazily built canonical leaf constants, shared by all copies of one
  /// Context. The stored instances are interned once (their intern cache
  /// rides along on every copy handed out), so the constant-returning
  /// accessors — called on every builtin refinement — cost a graph copy,
  /// not a re-normalization or a re-hash.
  struct Constants {
    TypeGraph Any = TypeGraph::makeAny();
    TypeGraph Int = TypeGraph::makeInt();
    TypeGraph Bottom = TypeGraph::makeBottom();
    std::optional<TypeGraph> AnyList;
  };

  struct Context {
    SymbolTable &Syms;
    NormalizeOptions Norm;
    WideningOptions Widen;
    WideningStats *WStats = nullptr;
    /// Optional memo layer (support/GraphInterner.h + typegraph/OpCache.h).
    /// When set, includes/meet/join/widen/restrictTo/construct hit the
    /// canonical-id caches and canonKey returns interner ids; when null
    /// every op recomputes (tests that probe the raw operations construct
    /// contexts this way).
    OpCache *Ops = nullptr;
    std::shared_ptr<Constants> Consts = std::make_shared<Constants>();
    /// Keep-alive anchor for the batch runtime's frozen shared cache
    /// tier (runtime/SharedCache.h). When the analyzer runs a job over a
    /// shared tier, Ops' frozen maps, the interner's frozen prefix and
    /// the pre-primed Consts all point into the SharedCache; holding the
    /// refcount here guarantees they outlive every value this context
    /// hands out, even if the pool swaps its cache mid-batch.
    std::shared_ptr<const SharedCache> Shared;
  };

  static Value any(const Context &Ctx) {
    return primed(Ctx, Ctx.Consts->Any);
  }
  static Value intValue(const Context &Ctx) {
    return primed(Ctx, Ctx.Consts->Int);
  }
  static Value listValue(const Context &Ctx) {
    if (!Ctx.Consts->AnyList)
      Ctx.Consts->AnyList = TypeGraph::makeAnyList(Ctx.Syms);
    return primed(Ctx, *Ctx.Consts->AnyList);
  }
  static Value bottom(const Context &Ctx) {
    return primed(Ctx, Ctx.Consts->Bottom);
  }

  static bool isBottom(const Context &, const Value &V) {
    return V.isBottomGraph();
  }
  static bool isAny(const Context &Ctx, const Value &V) {
    return includes(Ctx, V, any(Ctx));
  }

  static bool includes(const Context &Ctx, const Value &Big,
                       const Value &Small) {
    if (Ctx.Ops)
      return Ctx.Ops->includes(Big, Small);
    return graphIncludes(Big, Small, Ctx.Syms);
  }
  static Value meet(const Context &Ctx, const Value &A, const Value &B) {
    if (Ctx.Ops)
      return Ctx.Ops->intersectOf(A, B);
    return graphIntersect(A, B, Ctx.Syms, Ctx.Norm);
  }
  static Value join(const Context &Ctx, const Value &A, const Value &B) {
    if (Ctx.Ops)
      return Ctx.Ops->unionOf(A, B);
    return graphUnion(A, B, Ctx.Syms, Ctx.Norm);
  }
  static Value widen(const Context &Ctx, const Value &Old,
                     const Value &New) {
    WideningOptions Opts = Ctx.Widen;
    Opts.Norm = Ctx.Norm;
    if (Ctx.Ops)
      return Ctx.Ops->widenOf(Old, New, Opts, Ctx.WStats);
    return graphWiden(Old, New, Ctx.Syms, Opts, Ctx.WStats);
  }

  /// Canonical key for memo-table hashing: equal values (language
  /// equality) map to equal keys. With the op cache this is the interned
  /// canonical id; otherwise the BFS-structural hash, which is canonical
  /// on normalized values (every Value the engine manipulates is one).
  static uint64_t canonKey(const Context &Ctx, const Value &V) {
    if (Ctx.Ops)
      return Ctx.Ops->canonId(V);
    return structuralHash(V);
  }

  /// Restricts \p V to terms with principal functor \p Fn. Returns false
  /// if no such terms exist (abstract unification fails); otherwise
  /// fills \p ArgsOut with one value per argument.
  static bool restrictTo(const Context &Ctx, const Value &V, FunctorId Fn,
                         std::vector<Value> &ArgsOut) {
    if (Ctx.Ops)
      return Ctx.Ops->restrictOf(V, Fn, ArgsOut);
    return graphRestrict(V, Fn, Ctx.Syms, Ctx.Norm, ArgsOut);
  }

  /// Builds the value f(a1, ..., an) from argument values.
  static Value construct(const Context &Ctx, FunctorId Fn,
                         const std::vector<Value> &Args) {
    if (Ctx.Ops)
      return Ctx.Ops->constructOf(Fn, Args);
    return graphConstruct(Fn, Args, Ctx.Syms, Ctx.Norm);
  }

  /// The type graph describing the value (identity here; the PF leaf
  /// returns Any). Lets clients extract graphs uniformly.
  static TypeGraph toGraph(const Context &, const Value &V) { return V; }

  static std::string print(const Context &Ctx, const Value &V);

private:
  /// Returns a copy of the shared constant, priming its intern cache on
  /// first use so every copy interns in O(1).
  static Value primed(const Context &Ctx, const TypeGraph &G) {
    if (Ctx.Ops)
      Ctx.Ops->canonId(G);
    return G;
  }
};

} // namespace gaia

#endif // GAIA_DOMAINS_TYPELEAF_H
