//===- domains/PFLeaf.cpp ----------------------------------------------------=//
// PFLeaf is header-only; this file anchors the library target.

#include "domains/PFLeaf.h"
