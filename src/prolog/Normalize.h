//===- prolog/Normalize.h - Normalized clauses for the analyzer -----------==//
///
/// \file
/// The fixpoint engine consumes clauses in the normalized form of the
/// GAIA framework (Le Charlier & Van Hentenryck, TOPLAS'94): clause
/// variables are numbered 0..NumVars-1 with the first Arity variables
/// being the head arguments, and the body is a sequence of primitive
/// operations:
///
///   UnifyVar  Xi = Xj
///   UnifyFunc Xi = f(Xj1, ..., Xjn)     (arguments are variables)
///   Call      q(Xi1, ..., Xim)          (user predicate)
///   Builtin   b(Xi1, ..., Xim)          (abstract builtin semantics)
///
/// Nested structures are flattened through fresh variables; disjunctions
/// and if-then-else are expanded into multiple normalized clauses (the
/// collecting semantics ignores clause selection, so this is exact for
/// ';' and a sound over-approximation for '->').
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_NORMALIZE_H
#define GAIA_PROLOG_NORMALIZE_H

#include "prolog/Builtins.h"
#include "prolog/Program.h"

#include <set>

namespace gaia {

/// One primitive operation of a normalized clause body.
struct NOp {
  enum class Kind : uint8_t { UnifyVar, UnifyFunc, Call, Builtin };
  Kind K = Kind::UnifyVar;
  /// UnifyVar: the two variables. UnifyFunc: A is the bound variable.
  uint32_t A = 0, B = 0;
  /// UnifyFunc: the functor; Call/Builtin: the predicate.
  FunctorId Fn = InvalidFunctor;
  /// UnifyFunc: argument variables; Call/Builtin: argument variables.
  std::vector<uint32_t> Args;
  /// Builtin only.
  BuiltinKind BK = BuiltinKind::None;
};

/// A normalized clause.
struct NClause {
  uint32_t NumVars = 0;
  uint32_t Arity = 0; ///< variables 0..Arity-1 are the head arguments
  std::vector<NOp> Ops;
  uint32_t Line = 0;
};

/// All normalized clauses of one predicate.
struct NProcedure {
  FunctorId Fn = InvalidFunctor;
  std::vector<NClause> Clauses;
};

/// A normalized program, the unit the fixpoint engine runs on.
class NProgram {
public:
  /// Normalizes \p Prog. Goals calling predicates that are neither
  /// defined nor builtin are treated as opaque builtins (sound) and
  /// recorded in unknownPredicates().
  static NProgram fromProgram(const Program &Prog, SymbolTable &Syms);

  const std::vector<NProcedure> &procedures() const { return Procs; }

  const NProcedure *find(FunctorId Fn) const {
    auto It = Index.find(Fn);
    return It == Index.end() ? nullptr : &Procs[It->second];
  }

  const std::set<FunctorId> &unknownPredicates() const { return Unknown; }

  /// Paper Table 1 "program points": one point before and after each
  /// primitive operation, i.e. sum of (#ops + 1) over clauses.
  uint64_t numProgramPoints() const;

private:
  std::vector<NProcedure> Procs;
  std::unordered_map<FunctorId, size_t> Index;
  std::set<FunctorId> Unknown;
};

} // namespace gaia

#endif // GAIA_PROLOG_NORMALIZE_H
