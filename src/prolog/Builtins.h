//===- prolog/Builtins.h - Builtin predicate table ------------------------==//
///
/// \file
/// Classifies builtin predicates by their abstract behaviour. The
/// collecting semantics only needs how a builtin's *success* constrains
/// its arguments: type graphs are closed under instantiation, so "no
/// refinement" (output = input) is always a sound approximation; the
/// kinds below add precision where cheap (arithmetic implies Int,
/// length/2 implies a list, ==/2 implies identity).
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_BUILTINS_H
#define GAIA_PROLOG_BUILTINS_H

#include "support/StringInterner.h"

#include <cstdint>

namespace gaia {

enum class BuiltinKind : uint8_t {
  None,      ///< Not a builtin.
  True,      ///< Succeeds without refinement (true, !, write, nl, ...).
  Fail,      ///< Never succeeds (fail, false).
  Is,        ///< is/2: first argument becomes Int.
  ArithTest, ///< </2 etc.: both arguments become Int.
  TypeInt,   ///< integer/1, number/1: argument becomes Int.
  TypeTest,  ///< var/1, atom/1, ...: succeeds without refinement.
  TermEq,    ///< ==/2: success implies identity; abstract unification.
  Unify,     ///< =/2: abstract unification.
  NotEq,     ///< \=/2, \==/2: no refinement.
  Length,    ///< length/2: list and Int.
  Arg,       ///< arg/3: first argument becomes Int.
  Opaque,    ///< \+/1, not/1, call/1: succeeds, arguments ignored.
};

/// Returns the abstract kind of \p Name / \p Arity, or BuiltinKind::None.
BuiltinKind builtinKind(const std::string &Name, uint32_t Arity);

/// Convenience overload on an interned functor.
BuiltinKind builtinKind(const SymbolTable &Syms, FunctorId Fn);

} // namespace gaia

#endif // GAIA_PROLOG_BUILTINS_H
