//===- prolog/Normalize.cpp -------------------------------------------------=//

#include "prolog/Normalize.h"

#include "support/Debug.h"

#include <unordered_map>

using namespace gaia;

namespace {

/// Expands control constructs in a body into alternative goal sequences.
/// ';' is exact under the collecting semantics; '(C -> T ; E)' becomes
/// the alternatives (C,T) and E, a sound over-approximation that ignores
/// the commit.
class ControlExpander {
public:
  ControlExpander(const SymbolTable &Syms, size_t MaxPaths)
      : Syms(Syms), MaxPaths(MaxPaths) {}

  std::vector<std::vector<Term>> expand(const std::vector<Term> &Body) {
    std::vector<std::vector<Term>> Paths{{}};
    for (const Term &Goal : Body) {
      std::vector<std::vector<Term>> Alts = alternatives(Goal);
      std::vector<std::vector<Term>> Next;
      for (const std::vector<Term> &P : Paths)
        for (const std::vector<Term> &A : Alts) {
          if (Next.size() >= MaxPaths) {
            // Too many paths: keep the goal opaque instead of expanding.
            Next.clear();
            for (const std::vector<Term> &P2 : Paths) {
              Next.push_back(P2);
              Next.back().push_back(Goal);
            }
            goto doneGoal;
          }
          Next.push_back(P);
          Next.back().insert(Next.back().end(), A.begin(), A.end());
        }
    doneGoal:
      Paths = std::move(Next);
    }
    return Paths;
  }

private:
  bool isNamed(const Term &T, const char *Name, uint32_t Arity) const {
    return T.isCompound() && T.arity() == Arity &&
           Syms.name(T.name()) == Name;
  }

  std::vector<std::vector<Term>> alternatives(const Term &Goal) {
    if (isNamed(Goal, ",", 2)) {
      std::vector<Term> Flat;
      flattenConjunction(Goal, Syms, Flat);
      ControlExpander Sub(Syms, MaxPaths);
      return Sub.expand(Flat);
    }
    if (isNamed(Goal, ";", 2)) {
      const Term &L = Goal.args()[0];
      const Term &R = Goal.args()[1];
      std::vector<std::vector<Term>> Result;
      if (isNamed(L, "->", 2)) {
        // (C -> T ; E): alternatives are the sequences of (C, T) and E.
        std::vector<Term> Seq{L.args()[0], L.args()[1]};
        ControlExpander Sub(Syms, MaxPaths);
        for (auto &A : Sub.expand(Seq))
          Result.push_back(std::move(A));
      } else {
        for (auto &A : alternatives(L))
          Result.push_back(std::move(A));
      }
      for (auto &A : alternatives(R))
        Result.push_back(std::move(A));
      return Result;
    }
    if (isNamed(Goal, "->", 2)) {
      std::vector<Term> Seq{Goal.args()[0], Goal.args()[1]};
      ControlExpander Sub(Syms, MaxPaths);
      return Sub.expand(Seq);
    }
    return {{Goal}};
  }

  const SymbolTable &Syms;
  size_t MaxPaths;
};

/// Normalizes one clause path (head + expanded body) into an NClause.
class ClauseNormalizer {
public:
  ClauseNormalizer(SymbolTable &Syms, const Program &Prog,
                   std::set<FunctorId> &Unknown)
      : Syms(Syms), Prog(Prog), Unknown(Unknown) {}

  NClause run(const Term &Head, const std::vector<Term> &Body,
              uint32_t Line) {
    NClause C;
    C.Line = Line;
    C.Arity = Head.isCompound() ? Head.arity() : 0;

    // Head arguments: fresh variables become the argument slots
    // directly; anything else unifies with the slot.
    NumVars = C.Arity;
    std::vector<std::pair<uint32_t, const Term *>> HeadExtra;
    if (Head.isCompound()) {
      for (uint32_t I = 0; I != C.Arity; ++I) {
        const Term &Arg = Head.args()[I];
        if (Arg.isVar() && !VarMap.count(Arg.name())) {
          VarMap.emplace(Arg.name(), I);
          continue;
        }
        HeadExtra.emplace_back(I, &Arg);
      }
    }
    for (const auto &[Slot, T] : HeadExtra)
      unifyVarTerm(Slot, *T);

    for (const Term &Goal : Body)
      emitGoal(Goal);

    C.NumVars = NumVars;
    C.Ops = std::move(Ops);
    return C;
  }

private:
  uint32_t freshVar() { return NumVars++; }

  uint32_t varIndex(const Term &V) {
    assert(V.isVar() && "expected variable");
    auto [It, Inserted] = VarMap.emplace(V.name(), NumVars);
    if (Inserted)
      ++NumVars;
    return It->second;
  }

  /// Emits ops binding variable \p X to term \p T.
  void unifyVarTerm(uint32_t X, const Term &T) {
    if (T.isVar()) {
      uint32_t Y = varIndex(T);
      if (Y == X)
        return;
      NOp Op;
      Op.K = NOp::Kind::UnifyVar;
      Op.A = X;
      Op.B = Y;
      Ops.push_back(std::move(Op));
      return;
    }
    // Atom, integer or compound: bind the functor, then the arguments.
    NOp Op;
    Op.K = NOp::Kind::UnifyFunc;
    Op.A = X;
    Op.Fn = T.functor(Syms);
    std::vector<std::pair<uint32_t, const Term *>> Pending;
    if (T.isCompound()) {
      for (const Term &Arg : T.args()) {
        if (Arg.isVar()) {
          Op.Args.push_back(varIndex(Arg));
        } else {
          uint32_t V = freshVar();
          Op.Args.push_back(V);
          Pending.emplace_back(V, &Arg);
        }
      }
    }
    Ops.push_back(std::move(Op));
    for (const auto &[V, Sub] : Pending)
      unifyVarTerm(V, *Sub);
  }

  /// Flattens a goal argument to a variable index.
  uint32_t argVar(const Term &T) {
    if (T.isVar())
      return varIndex(T);
    uint32_t V = freshVar();
    unifyVarTerm(V, T);
    return V;
  }

  void emitGoal(const Term &Goal) {
    if (Goal.isVar() || Goal.isInt()) {
      // Call through a variable: opaque.
      NOp Op;
      Op.K = NOp::Kind::Builtin;
      Op.BK = BuiltinKind::Opaque;
      Op.Fn = Syms.functor("call", 1);
      Ops.push_back(std::move(Op));
      return;
    }
    const std::string &Name = Syms.name(Goal.name());
    uint32_t Arity = Goal.arity();
    BuiltinKind BK = builtinKind(Name, Arity);

    if (BK == BuiltinKind::Unify || BK == BuiltinKind::TermEq) {
      // =/2 and ==/2 become unification ops directly.
      const Term &L = Goal.args()[0];
      const Term &R = Goal.args()[1];
      if (L.isVar()) {
        unifyVarTerm(varIndex(L), R);
      } else if (R.isVar()) {
        unifyVarTerm(varIndex(R), L);
      } else {
        uint32_t V = freshVar();
        unifyVarTerm(V, L);
        unifyVarTerm(V, R);
      }
      return;
    }

    if (BK == BuiltinKind::Opaque) {
      // Ignore the wrapped goal entirely: \+/not/call succeed without
      // visible bindings under our approximation.
      NOp Op;
      Op.K = NOp::Kind::Builtin;
      Op.BK = BK;
      Op.Fn = Goal.functor(Syms);
      Ops.push_back(std::move(Op));
      return;
    }

    FunctorId Fn = Goal.functor(Syms);
    bool IsCall = BK == BuiltinKind::None && Prog.defines(Fn);
    if (BK == BuiltinKind::None && !IsCall) {
      Unknown.insert(Fn);
      BK = BuiltinKind::True; // sound: succeed without refinement
    }

    NOp Op;
    Op.K = IsCall ? NOp::Kind::Call : NOp::Kind::Builtin;
    Op.Fn = Fn;
    Op.BK = BK;
    std::vector<uint32_t> Args;
    Args.reserve(Arity);
    for (const Term &Arg : Goal.args())
      Args.push_back(argVar(Arg));
    Op.Args = std::move(Args);
    Ops.push_back(std::move(Op));
  }

  SymbolTable &Syms;
  const Program &Prog;
  std::set<FunctorId> &Unknown;
  std::unordered_map<SymbolId, uint32_t> VarMap;
  std::vector<NOp> Ops;
  uint32_t NumVars = 0;
};

} // namespace

NProgram NProgram::fromProgram(const Program &Prog, SymbolTable &Syms) {
  NProgram NP;
  constexpr size_t MaxPaths = 64;
  for (const Procedure &P : Prog.procedures()) {
    NProcedure NProc;
    NProc.Fn = P.Fn;
    for (const Clause &C : P.Clauses) {
      ControlExpander Expander(Syms, MaxPaths);
      std::vector<std::vector<Term>> Paths = Expander.expand(C.Body);
      for (const std::vector<Term> &Body : Paths) {
        ClauseNormalizer N(Syms, Prog, NP.Unknown);
        NProc.Clauses.push_back(N.run(C.Head, Body, C.Line));
      }
    }
    NP.Index.emplace(NProc.Fn, NP.Procs.size());
    NP.Procs.push_back(std::move(NProc));
  }
  return NP;
}

uint64_t NProgram::numProgramPoints() const {
  uint64_t Points = 0;
  for (const NProcedure &P : Procs)
    for (const NClause &C : P.Clauses)
      Points += C.Ops.size() + 1;
  return Points;
}
