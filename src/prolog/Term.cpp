//===- prolog/Term.cpp ------------------------------------------------------=//

#include "prolog/Term.h"

#include "support/Debug.h"

using namespace gaia;

FunctorId Term::functor(SymbolTable &Syms) const {
  switch (Kind) {
  case TermKind::Var:
    GAIA_UNREACHABLE("variables have no functor");
  case TermKind::Int:
    return Syms.functor(std::to_string(IntVal), 0);
  case TermKind::Atom:
    return Syms.functor(Name, 0);
  case TermKind::Compound:
    return Syms.functor(Name, arity());
  }
  GAIA_UNREACHABLE("covered switch");
}

std::string Term::toString(const SymbolTable &Syms) const {
  switch (Kind) {
  case TermKind::Var:
    return Syms.name(Name);
  case TermKind::Int:
    return std::to_string(IntVal);
  case TermKind::Atom:
    return Syms.name(Name);
  case TermKind::Compound: {
    // Render lists in bracket notation for readability.
    if (Syms.name(Name) == "." && arity() == 2) {
      std::string Out = "[" + Children[0].toString(Syms);
      const Term *Tail = &Children[1];
      while (Tail->isCompound() && Syms.name(Tail->name()) == "." &&
             Tail->arity() == 2) {
        Out += "," + Tail->args()[0].toString(Syms);
        Tail = &Tail->args()[1];
      }
      if (Tail->isAtom() && Syms.name(Tail->name()) == "[]")
        return Out + "]";
      return Out + "|" + Tail->toString(Syms) + "]";
    }
    std::string Out = Syms.name(Name) + "(";
    for (uint32_t I = 0, E = arity(); I != E; ++I) {
      if (I)
        Out += ",";
      Out += Children[I].toString(Syms);
    }
    return Out + ")";
  }
  }
  GAIA_UNREACHABLE("covered switch");
}
