//===- prolog/CallGraph.cpp -------------------------------------------------=//

#include "prolog/CallGraph.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace gaia;

const std::vector<FunctorId> CallGraph::Empty;

void gaia::forEachUserCall(const Term &Goal, const Program &Prog,
                           SymbolTable &Syms,
                           const std::function<void(FunctorId)> &OnCall) {
  if (!Goal.isCallable())
    return;
  const std::string &Name = Syms.name(Goal.name());
  if (Goal.arity() == 2 && (Name == "," || Name == ";" || Name == "->")) {
    forEachUserCall(Goal.args()[0], Prog, Syms, OnCall);
    forEachUserCall(Goal.args()[1], Prog, Syms, OnCall);
    return;
  }
  if (Goal.arity() == 1 &&
      (Name == "\\+" || Name == "not" || Name == "call")) {
    forEachUserCall(Goal.args()[0], Prog, Syms, OnCall);
    return;
  }
  FunctorId Fn = Goal.functor(Syms);
  if (Prog.defines(Fn))
    OnCall(Fn);
}

CallGraph::CallGraph(const Program &Prog, SymbolTable &Syms) {
  for (const Procedure &P : Prog.procedures()) {
    Preds.push_back(P.Fn);
    std::vector<FunctorId> &Out = Callees[P.Fn];
    std::set<FunctorId> Seen;
    for (const Clause &C : P.Clauses)
      for (const Term &Goal : C.Body)
        forEachUserCall(Goal, Prog, Syms, [&](FunctorId Fn) {
          if (Seen.insert(Fn).second)
            Out.push_back(Fn);
        });
  }
}

const std::vector<FunctorId> &CallGraph::callees(FunctorId Fn) const {
  auto It = Callees.find(Fn);
  return It == Callees.end() ? Empty : It->second;
}

std::vector<std::vector<FunctorId>>
CallGraph::stronglyConnectedComponents() const {
  // Tarjan's algorithm (iterative bookkeeping kept simple; programs are
  // small).
  std::vector<std::vector<FunctorId>> SCCs;
  std::unordered_map<FunctorId, uint32_t> IndexOf, LowLink;
  std::vector<FunctorId> Stack;
  std::set<FunctorId> OnStack;
  uint32_t NextIndex = 0;

  std::function<void(FunctorId)> StrongConnect = [&](FunctorId V) {
    IndexOf[V] = NextIndex;
    LowLink[V] = NextIndex;
    ++NextIndex;
    Stack.push_back(V);
    OnStack.insert(V);
    for (FunctorId W : callees(V)) {
      if (!IndexOf.count(W)) {
        StrongConnect(W);
        LowLink[V] = std::min(LowLink[V], LowLink[W]);
      } else if (OnStack.count(W)) {
        LowLink[V] = std::min(LowLink[V], IndexOf[W]);
      }
    }
    if (LowLink[V] == IndexOf[V]) {
      std::vector<FunctorId> SCC;
      while (true) {
        FunctorId W = Stack.back();
        Stack.pop_back();
        OnStack.erase(W);
        SCC.push_back(W);
        if (W == V)
          break;
      }
      SCCs.push_back(std::move(SCC));
    }
  };

  for (FunctorId P : Preds)
    if (!IndexOf.count(P))
      StrongConnect(P);
  return SCCs;
}

Condensation CallGraph::condense() const {
  Condensation C;
  C.Sccs = stronglyConnectedComponents();
  for (uint32_t I = 0; I != C.Sccs.size(); ++I)
    for (FunctorId P : C.Sccs[I])
      C.SccOf.emplace(P, I);
  C.CalleeSccs.resize(C.Sccs.size());
  C.CallerSccs.resize(C.Sccs.size());
  for (uint32_t I = 0; I != C.Sccs.size(); ++I) {
    std::set<uint32_t> Seen;
    for (FunctorId P : C.Sccs[I])
      for (FunctorId Q : callees(P)) {
        uint32_t J = C.SccOf.at(Q);
        if (J != I && Seen.insert(J).second) {
          // Tarjan emits callees first, so cross edges always point at
          // earlier components — the property the reverse-topological
          // ready-count dispatch rests on.
          assert(J < I && "condensation edge against reverse-topo order");
          C.CalleeSccs[I].push_back(J);
          C.CallerSccs[J].push_back(I);
        }
      }
    std::sort(C.CalleeSccs[I].begin(), C.CalleeSccs[I].end());
  }
  return C;
}

std::vector<uint32_t> Condensation::initialReadyCounts() const {
  std::vector<uint32_t> Counts(Sccs.size());
  for (uint32_t I = 0; I != Sccs.size(); ++I)
    Counts[I] = static_cast<uint32_t>(CalleeSccs[I].size());
  return Counts;
}

std::vector<uint32_t> Condensation::readyOrder() const {
  std::vector<uint32_t> Counts = initialReadyCounts();
  std::vector<bool> Done(Sccs.size(), false);
  std::vector<uint32_t> Order;
  Order.reserve(Sccs.size());
  for (size_t Step = 0; Step != Sccs.size(); ++Step) {
    uint32_t Pick = ~0u;
    for (uint32_t I = 0; I != Sccs.size(); ++I)
      if (!Done[I] && Counts[I] == 0) {
        Pick = I;
        break;
      }
    assert(Pick != ~0u && "ready-count dispatch stalled on a DAG");
    Done[Pick] = true;
    Order.push_back(Pick);
    for (uint32_t Caller : CallerSccs[Pick]) {
      assert(Counts[Caller] != 0 && "ready-count underflow");
      --Counts[Caller];
    }
  }
  return Order;
}

std::vector<FunctorId> CallGraph::reachableFrom(FunctorId Entry,
                                                uint32_t MaxDepth) const {
  std::vector<FunctorId> Out;
  if (Callees.find(Entry) == Callees.end())
    return Out;
  std::set<FunctorId> Seen{Entry};
  // BFS so the depth cut is by call distance from the entry.
  std::vector<std::pair<FunctorId, uint32_t>> Work{{Entry, 0}};
  for (size_t I = 0; I != Work.size(); ++I) {
    auto [P, D] = Work[I];
    Out.push_back(P);
    if (D >= MaxDepth)
      continue;
    for (FunctorId Q : callees(P))
      if (Seen.insert(Q).second)
        Work.push_back({Q, D + 1});
  }
  return Out;
}
