//===- prolog/Term.h - Parse-level Prolog terms ---------------------------==//
///
/// \file
/// Immutable parse-level representation of Prolog terms. Atoms and
/// compounds carry interned symbol ids; variables carry the interned id
/// of their (source) name. Terms are value types with vector children.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_TERM_H
#define GAIA_PROLOG_TERM_H

#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace gaia {

enum class TermKind : uint8_t { Var, Int, Atom, Compound };

/// A Prolog term as produced by the parser.
class Term {
public:
  static Term mkVar(SymbolId Name) {
    Term T;
    T.Kind = TermKind::Var;
    T.Name = Name;
    return T;
  }
  static Term mkInt(int64_t Value) {
    Term T;
    T.Kind = TermKind::Int;
    T.IntVal = Value;
    return T;
  }
  static Term mkAtom(SymbolId Name) {
    Term T;
    T.Kind = TermKind::Atom;
    T.Name = Name;
    return T;
  }
  static Term mkCompound(SymbolId Name, std::vector<Term> Args) {
    assert(!Args.empty() && "compound term needs arguments; use mkAtom");
    Term T;
    T.Kind = TermKind::Compound;
    T.Name = Name;
    T.Children = std::move(Args);
    return T;
  }

  TermKind kind() const { return Kind; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isInt() const { return Kind == TermKind::Int; }
  bool isAtom() const { return Kind == TermKind::Atom; }
  bool isCompound() const { return Kind == TermKind::Compound; }
  bool isCallable() const { return isAtom() || isCompound(); }

  SymbolId name() const {
    assert(Kind != TermKind::Int && "integers have no name");
    return Name;
  }
  int64_t intValue() const {
    assert(Kind == TermKind::Int && "not an integer");
    return IntVal;
  }
  const std::vector<Term> &args() const { return Children; }
  uint32_t arity() const { return static_cast<uint32_t>(Children.size()); }

  /// Functor id of a callable or integer term (atom => arity 0).
  /// Integers are interned as arity-0 functors spelled in decimal,
  /// matching the type-graph view of integer literals. Interns into
  /// \p Syms; the term itself is not modified.
  FunctorId functor(SymbolTable &Syms) const;

  /// Renders the term in (mostly canonical) Prolog syntax.
  std::string toString(const SymbolTable &Syms) const;

private:
  TermKind Kind = TermKind::Atom;
  SymbolId Name = InvalidSymbol;
  int64_t IntVal = 0;
  std::vector<Term> Children;
};

} // namespace gaia

#endif // GAIA_PROLOG_TERM_H
