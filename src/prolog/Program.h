//===- prolog/Program.h - Parsed Prolog programs --------------------------==//
///
/// \file
/// A Program groups parsed clauses by predicate, preserving source order
/// (the analyzer's clause iteration order and the paper's metrics depend
/// on it). Bodies are stored as flattened conjunctions; control
/// constructs (;, ->, \+) remain single goals and are handled during
/// normalization.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_PROGRAM_H
#define GAIA_PROLOG_PROGRAM_H

#include "prolog/Term.h"

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gaia {

/// One clause: Head :- Body1, ..., BodyN (facts have an empty body).
struct Clause {
  Term Head;
  std::vector<Term> Body;
  uint32_t Line = 0;
};

/// All clauses of one predicate.
struct Procedure {
  FunctorId Fn = InvalidFunctor;
  std::vector<Clause> Clauses;
};

/// A parsed program.
class Program {
public:
  /// Parses \p Source. Returns std::nullopt on syntax error, with a
  /// "line N: message" diagnostic in \p Err if non-null.
  static std::optional<Program> parse(std::string_view Source,
                                      SymbolTable &Syms,
                                      std::string *Err = nullptr,
                                      uint32_t *ErrLine = nullptr);

  const std::vector<Procedure> &procedures() const { return Procs; }

  /// Returns the procedure for \p Fn, or nullptr if undefined.
  const Procedure *find(FunctorId Fn) const {
    auto It = Index.find(Fn);
    return It == Index.end() ? nullptr : &Procs[It->second];
  }

  /// True if \p Fn has clauses in this program.
  bool defines(FunctorId Fn) const { return Index.count(Fn) != 0; }

  /// Directives (":- goal" clauses), kept for completeness.
  const std::vector<Term> &directives() const { return Directives; }

  uint32_t numClauses() const;

private:
  void addClause(Clause C, SymbolTable &Syms);

  std::vector<Procedure> Procs;
  std::unordered_map<FunctorId, size_t> Index;
  std::vector<Term> Directives;
};

/// Flattens a conjunction term (a,b,c) into a goal list.
void flattenConjunction(const Term &T, const SymbolTable &Syms,
                        std::vector<Term> &Out);

} // namespace gaia

#endif // GAIA_PROLOG_PROGRAM_H
