//===- prolog/Program.cpp ---------------------------------------------------=//

#include "prolog/Program.h"

#include "prolog/Parser.h"

using namespace gaia;

void gaia::flattenConjunction(const Term &T, const SymbolTable &Syms,
                              std::vector<Term> &Out) {
  if (T.isCompound() && T.arity() == 2 && Syms.name(T.name()) == ",") {
    flattenConjunction(T.args()[0], Syms, Out);
    flattenConjunction(T.args()[1], Syms, Out);
    return;
  }
  Out.push_back(T);
}

void Program::addClause(Clause C, SymbolTable &Syms) {
  FunctorId Fn = C.Head.functor(Syms);
  auto It = Index.find(Fn);
  if (It == Index.end()) {
    Index.emplace(Fn, Procs.size());
    Procs.push_back(Procedure{Fn, {}});
    Procs.back().Clauses.push_back(std::move(C));
    return;
  }
  Procs[It->second].Clauses.push_back(std::move(C));
}

uint32_t Program::numClauses() const {
  uint32_t N = 0;
  for (const Procedure &P : Procs)
    N += static_cast<uint32_t>(P.Clauses.size());
  return N;
}

std::optional<Program> Program::parse(std::string_view Source,
                                      SymbolTable &Syms, std::string *Err,
                                      uint32_t *ErrLine) {
  Parser P(Source, Syms);
  Program Prog;
  while (true) {
    std::optional<Term> T = P.parseClause();
    if (!T) {
      if (P.hadError()) {
        if (Err)
          *Err = "line " + std::to_string(P.errorLine()) + ": " + P.error();
        if (ErrLine)
          *ErrLine = P.errorLine();
        return std::nullopt;
      }
      break; // end of input
    }
    // Directive?
    if (T->isCompound() && T->arity() == 1 &&
        Syms.name(T->name()) == ":-") {
      Prog.Directives.push_back(T->args()[0]);
      continue;
    }
    Clause C;
    if (T->isCompound() && T->arity() == 2 &&
        Syms.name(T->name()) == ":-") {
      C.Head = T->args()[0];
      flattenConjunction(T->args()[1], Syms, C.Body);
    } else {
      C.Head = *T;
    }
    if (!C.Head.isCallable()) {
      if (Err)
        *Err = "clause head is not callable: " + C.Head.toString(Syms);
      return std::nullopt;
    }
    Prog.addClause(std::move(C), Syms);
  }
  return Prog;
}
