//===- prolog/Lexer.h - Prolog tokenizer ----------------------------------==//
///
/// \file
/// A standard Prolog tokenizer: atoms (alphanumeric, symbolic, quoted,
/// solo), variables, integers (including 0'c character codes), strings,
/// punctuation, the clause-terminating dot, and both comment styles.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_LEXER_H
#define GAIA_PROLOG_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>

namespace gaia {

enum class TokKind : uint8_t {
  Atom,
  Var,
  Int,
  Str,
  LParen,  // '(' preceded by a layout character
  LParenF, // '(' immediately after an atom: opens an argument list
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Bar,
  End, // clause-terminating '.'
  Eof,
  Error,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   // atom/var name, error message
  int64_t IntVal = 0; // integers
  uint32_t Line = 0;
};

/// Tokenizes Prolog source text. Call next() until Eof or Error.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  Token next();

  uint32_t line() const { return Line; }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char take() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }
  bool skipLayoutAndComments(std::string *Err);
  Token makeError(const std::string &Msg);

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  bool PrevWasAtomLike = false;
};

} // namespace gaia

#endif // GAIA_PROLOG_LEXER_H
