//===- prolog/Lexer.cpp -----------------------------------------------------=//

#include "prolog/Lexer.h"

#include <cctype>

using namespace gaia;

static bool isSymbolChar(char C) {
  static const std::string SymChars = "+-*/\\^<>=~:.?@#&$";
  return SymChars.find(C) != std::string::npos;
}

static bool isAlnumChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

Token Lexer::makeError(const std::string &Msg) {
  return Token{TokKind::Error, Msg, 0, Line};
}

bool Lexer::skipLayoutAndComments(std::string *Err) {
  while (Pos < Src.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      take();
      continue;
    }
    if (C == '%') {
      while (Pos < Src.size() && peek() != '\n')
        take();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      take();
      take();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        take();
      if (Pos >= Src.size()) {
        if (Err)
          *Err = "unterminated block comment";
        return false;
      }
      take();
      take();
      continue;
    }
    break;
  }
  return true;
}

Token Lexer::next() {
  bool WasAtomLike = PrevWasAtomLike;
  PrevWasAtomLike = false;

  size_t Before = Pos;
  std::string Err;
  if (!skipLayoutAndComments(&Err))
    return makeError(Err);
  bool SawLayout = Pos != Before;
  if (Pos >= Src.size())
    return Token{TokKind::Eof, "", 0, Line};

  uint32_t TokLine = Line;
  char C = peek();

  // Punctuation.
  switch (C) {
  case '(': {
    take();
    TokKind K =
        (WasAtomLike && !SawLayout) ? TokKind::LParenF : TokKind::LParen;
    return Token{K, "(", 0, TokLine};
  }
  case ')':
    take();
    return Token{TokKind::RParen, ")", 0, TokLine};
  case '[':
    take();
    return Token{TokKind::LBracket, "[", 0, TokLine};
  case ']':
    take();
    PrevWasAtomLike = true; // "[]" handled by parser; ']' ends a term
    return Token{TokKind::RBracket, "]", 0, TokLine};
  case '{':
    take();
    return Token{TokKind::LBrace, "{", 0, TokLine};
  case '}':
    take();
    PrevWasAtomLike = true;
    return Token{TokKind::RBrace, "}", 0, TokLine};
  case ',':
    take();
    return Token{TokKind::Comma, ",", 0, TokLine};
  case '|':
    take();
    return Token{TokKind::Bar, "|", 0, TokLine};
  case '!':
    take();
    PrevWasAtomLike = true;
    return Token{TokKind::Atom, "!", 0, TokLine};
  case ';':
    take();
    PrevWasAtomLike = true;
    return Token{TokKind::Atom, ";", 0, TokLine};
  default:
    break;
  }

  // Quoted atom.
  if (C == '\'') {
    take();
    std::string Text;
    while (true) {
      if (Pos >= Src.size())
        return makeError("unterminated quoted atom");
      char Q = take();
      if (Q == '\'') {
        if (peek() == '\'') { // escaped quote
          take();
          Text += '\'';
          continue;
        }
        break;
      }
      if (Q == '\\' && Pos < Src.size()) {
        char E = take();
        switch (E) {
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        case '\\':
          Text += '\\';
          break;
        case '\'':
          Text += '\'';
          break;
        default:
          Text += E;
          break;
        }
        continue;
      }
      Text += Q;
    }
    PrevWasAtomLike = true;
    return Token{TokKind::Atom, Text, 0, TokLine};
  }

  // String.
  if (C == '"') {
    take();
    std::string Text;
    while (true) {
      if (Pos >= Src.size())
        return makeError("unterminated string");
      char Q = take();
      if (Q == '"')
        break;
      Text += Q;
    }
    PrevWasAtomLike = true;
    return Token{TokKind::Str, Text, 0, TokLine};
  }

  // Integer (including 0'c character codes).
  if (std::isdigit(static_cast<unsigned char>(C))) {
    if (C == '0' && peek(1) == '\'' && Pos + 2 < Src.size()) {
      take();
      take();
      char Ch = take();
      PrevWasAtomLike = true;
      return Token{TokKind::Int, std::string(1, Ch),
                   static_cast<int64_t>(static_cast<unsigned char>(Ch)),
                   TokLine};
    }
    int64_t Value = 0;
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (take() - '0');
    PrevWasAtomLike = true;
    return Token{TokKind::Int, std::to_string(Value), Value, TokLine};
  }

  // Variable.
  if (std::isupper(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (Pos < Src.size() && isAlnumChar(peek()))
      Text += take();
    PrevWasAtomLike = true;
    return Token{TokKind::Var, Text, 0, TokLine};
  }

  // Alphanumeric atom.
  if (std::islower(static_cast<unsigned char>(C))) {
    std::string Text;
    while (Pos < Src.size() && isAlnumChar(peek()))
      Text += take();
    PrevWasAtomLike = true;
    return Token{TokKind::Atom, Text, 0, TokLine};
  }

  // Symbolic atom or the clause-terminating dot. A '.' terminates the
  // clause when followed by layout, a comment, or end of input.
  if (isSymbolChar(C)) {
    if (C == '.') {
      char After = peek(1);
      if (After == '\0' ||
          std::isspace(static_cast<unsigned char>(After)) || After == '%') {
        take();
        return Token{TokKind::End, ".", 0, TokLine};
      }
    }
    std::string Text;
    while (Pos < Src.size() && isSymbolChar(peek()))
      Text += take();
    PrevWasAtomLike = true;
    return Token{TokKind::Atom, Text, 0, TokLine};
  }

  return makeError(std::string("unexpected character '") + C + "'");
}
