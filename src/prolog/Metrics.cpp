//===- prolog/Metrics.cpp ---------------------------------------------------=//

#include "prolog/Metrics.h"

#include "support/Debug.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace gaia;

const std::vector<FunctorId> CallGraph::Empty;

namespace {

/// Walks a goal term, invoking \p OnCall for every leaf goal that calls a
/// user-defined predicate. Looks through ',', ';', '->', '\+', 'not' and
/// 'call', matching how the paper counts goals in control constructs.
static void forEachCall(const Term &Goal, const Program &Prog,
                        SymbolTable &Syms,
                        const std::function<void(FunctorId)> &OnCall) {
  if (!Goal.isCallable())
    return;
  const std::string &Name = Syms.name(Goal.name());
  if (Goal.arity() == 2 &&
      (Name == "," || Name == ";" || Name == "->")) {
    forEachCall(Goal.args()[0], Prog, Syms, OnCall);
    forEachCall(Goal.args()[1], Prog, Syms, OnCall);
    return;
  }
  if (Goal.arity() == 1 &&
      (Name == "\\+" || Name == "not" || Name == "call")) {
    forEachCall(Goal.args()[0], Prog, Syms, OnCall);
    return;
  }
  FunctorId Fn = Goal.functor(Syms);
  if (Prog.defines(Fn))
    OnCall(Fn);
}

} // namespace

CallGraph::CallGraph(const Program &Prog, SymbolTable &Syms) {
  for (const Procedure &P : Prog.procedures()) {
    Preds.push_back(P.Fn);
    std::vector<FunctorId> &Out = Callees[P.Fn];
    std::set<FunctorId> Seen;
    for (const Clause &C : P.Clauses)
      for (const Term &Goal : C.Body)
        forEachCall(Goal, Prog, Syms, [&](FunctorId Fn) {
          if (Seen.insert(Fn).second)
            Out.push_back(Fn);
        });
  }
}

const std::vector<FunctorId> &CallGraph::callees(FunctorId Fn) const {
  auto It = Callees.find(Fn);
  return It == Callees.end() ? Empty : It->second;
}

std::vector<std::vector<FunctorId>>
CallGraph::stronglyConnectedComponents() const {
  // Tarjan's algorithm (iterative bookkeeping kept simple; programs are
  // small).
  std::vector<std::vector<FunctorId>> SCCs;
  std::unordered_map<FunctorId, uint32_t> IndexOf, LowLink;
  std::vector<FunctorId> Stack;
  std::set<FunctorId> OnStack;
  uint32_t NextIndex = 0;

  std::function<void(FunctorId)> StrongConnect = [&](FunctorId V) {
    IndexOf[V] = NextIndex;
    LowLink[V] = NextIndex;
    ++NextIndex;
    Stack.push_back(V);
    OnStack.insert(V);
    for (FunctorId W : callees(V)) {
      if (!IndexOf.count(W)) {
        StrongConnect(W);
        LowLink[V] = std::min(LowLink[V], LowLink[W]);
      } else if (OnStack.count(W)) {
        LowLink[V] = std::min(LowLink[V], IndexOf[W]);
      }
    }
    if (LowLink[V] == IndexOf[V]) {
      std::vector<FunctorId> SCC;
      while (true) {
        FunctorId W = Stack.back();
        Stack.pop_back();
        OnStack.erase(W);
        SCC.push_back(W);
        if (W == V)
          break;
      }
      SCCs.push_back(std::move(SCC));
    }
  };

  for (FunctorId P : Preds)
    if (!IndexOf.count(P))
      StrongConnect(P);
  return SCCs;
}

SizeMetrics gaia::computeSizeMetrics(const Program &Prog,
                                     const NProgram &NProg,
                                     SymbolTable &Syms, FunctorId Entry) {
  SizeMetrics M;
  M.NumProcedures = static_cast<uint32_t>(Prog.procedures().size());
  M.NumClauses = Prog.numClauses();
  M.NumProgramPoints = NProg.numProgramPoints();

  for (const Procedure &P : Prog.procedures())
    for (const Clause &C : P.Clauses)
      for (const Term &Goal : C.Body)
        forEachCall(Goal, Prog, Syms, [&](FunctorId) { ++M.NumGoals; });

  // Static call tree: unfold the call graph from the entry, cutting
  // calls back to predicates on the current path ([15]).
  CallGraph CG(Prog, Syms);
  constexpr uint64_t Budget = 1000000;
  std::set<FunctorId> Path;
  std::function<uint64_t(FunctorId)> TreeSize =
      [&](FunctorId P) -> uint64_t {
    uint64_t Size = 1;
    Path.insert(P);
    for (FunctorId Q : CG.callees(P)) {
      if (Path.count(Q))
        continue;
      Size += TreeSize(Q);
      if (Size > Budget)
        break;
    }
    Path.erase(P);
    return std::min(Size, Budget);
  };
  M.StaticCallTreeSize = Prog.defines(Entry) ? TreeSize(Entry) : 0;
  return M;
}

RecursionMetrics gaia::classifyRecursion(const Program &Prog,
                                         SymbolTable &Syms) {
  RecursionMetrics M;
  CallGraph CG(Prog, Syms);

  // Predicates in SCCs of size > 1 are mutually recursive.
  std::set<FunctorId> Mutual;
  for (const std::vector<FunctorId> &SCC :
       CG.stronglyConnectedComponents())
    if (SCC.size() > 1)
      for (FunctorId P : SCC)
        Mutual.insert(P);

  for (const Procedure &P : Prog.procedures()) {
    if (Mutual.count(P.Fn)) {
      ++M.MutuallyRecursive;
      continue;
    }
    const std::vector<FunctorId> &Callees = CG.callees(P.Fn);
    bool SelfRecursive =
        std::find(Callees.begin(), Callees.end(), P.Fn) != Callees.end();
    if (!SelfRecursive) {
      ++M.NonRecursive;
      continue;
    }
    // Tail recursive iff every clause has at most one recursive call and
    // that call is the final goal of the clause.
    bool Tail = true;
    for (const Clause &C : P.Clauses) {
      uint32_t RecCalls = 0;
      for (const Term &Goal : C.Body)
        forEachCall(Goal, Prog, Syms, [&](FunctorId Fn) {
          if (Fn == P.Fn)
            ++RecCalls;
        });
      if (RecCalls == 0)
        continue;
      bool LastIsDirectRecursive =
          !C.Body.empty() && C.Body.back().isCallable() &&
          C.Body.back().functor(Syms) == P.Fn;
      if (RecCalls > 1 || !LastIsDirectRecursive) {
        Tail = false;
        break;
      }
    }
    if (Tail)
      ++M.TailRecursive;
    else
      ++M.LocallyRecursive;
  }
  return M;
}
