//===- prolog/Metrics.cpp ---------------------------------------------------=//

#include "prolog/Metrics.h"

#include "support/Debug.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace gaia;

SizeMetrics gaia::computeSizeMetrics(const Program &Prog,
                                     const NProgram &NProg,
                                     SymbolTable &Syms, FunctorId Entry) {
  CallGraph CG(Prog, Syms);
  return computeSizeMetrics(Prog, NProg, Syms, Entry, CG);
}

SizeMetrics gaia::computeSizeMetrics(const Program &Prog,
                                     const NProgram &NProg,
                                     SymbolTable &Syms, FunctorId Entry,
                                     const CallGraph &CG) {
  SizeMetrics M;
  M.NumProcedures = static_cast<uint32_t>(Prog.procedures().size());
  M.NumClauses = Prog.numClauses();
  M.NumProgramPoints = NProg.numProgramPoints();

  for (const Procedure &P : Prog.procedures())
    for (const Clause &C : P.Clauses)
      for (const Term &Goal : C.Body)
        forEachUserCall(Goal, Prog, Syms, [&](FunctorId) { ++M.NumGoals; });

  // Static call tree: unfold the call graph from the entry, cutting
  // calls back to predicates on the current path ([15]).
  constexpr uint64_t Budget = 1000000;
  std::set<FunctorId> Path;
  std::function<uint64_t(FunctorId)> TreeSize =
      [&](FunctorId P) -> uint64_t {
    uint64_t Size = 1;
    Path.insert(P);
    for (FunctorId Q : CG.callees(P)) {
      if (Path.count(Q))
        continue;
      Size += TreeSize(Q);
      if (Size > Budget)
        break;
    }
    Path.erase(P);
    return std::min(Size, Budget);
  };
  M.StaticCallTreeSize = Prog.defines(Entry) ? TreeSize(Entry) : 0;
  return M;
}

RecursionMetrics gaia::classifyRecursion(const Program &Prog,
                                         SymbolTable &Syms) {
  RecursionMetrics M;
  CallGraph CG(Prog, Syms);

  // Predicates in SCCs of size > 1 are mutually recursive.
  std::set<FunctorId> Mutual;
  for (const std::vector<FunctorId> &SCC :
       CG.stronglyConnectedComponents())
    if (SCC.size() > 1)
      for (FunctorId P : SCC)
        Mutual.insert(P);

  for (const Procedure &P : Prog.procedures()) {
    if (Mutual.count(P.Fn)) {
      ++M.MutuallyRecursive;
      continue;
    }
    const std::vector<FunctorId> &Callees = CG.callees(P.Fn);
    bool SelfRecursive =
        std::find(Callees.begin(), Callees.end(), P.Fn) != Callees.end();
    if (!SelfRecursive) {
      ++M.NonRecursive;
      continue;
    }
    // Tail recursive iff every clause has at most one recursive call and
    // that call is the final goal of the clause.
    bool Tail = true;
    for (const Clause &C : P.Clauses) {
      uint32_t RecCalls = 0;
      for (const Term &Goal : C.Body)
        forEachUserCall(Goal, Prog, Syms, [&](FunctorId Fn) {
          if (Fn == P.Fn)
            ++RecCalls;
        });
      if (RecCalls == 0)
        continue;
      bool LastIsDirectRecursive =
          !C.Body.empty() && C.Body.back().isCallable() &&
          C.Body.back().functor(Syms) == P.Fn;
      if (RecCalls > 1 || !LastIsDirectRecursive) {
        Tail = false;
        break;
      }
    }
    if (Tail)
      ++M.TailRecursive;
    else
      ++M.LocallyRecursive;
  }
  return M;
}
