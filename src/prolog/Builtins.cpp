//===- prolog/Builtins.cpp --------------------------------------------------=//

#include "prolog/Builtins.h"

#include <map>

using namespace gaia;

BuiltinKind gaia::builtinKind(const std::string &Name, uint32_t Arity) {
  static const std::map<std::pair<std::string, uint32_t>, BuiltinKind>
      Table = {
          {{"true", 0}, BuiltinKind::True},
          {{"!", 0}, BuiltinKind::True},
          {{"nl", 0}, BuiltinKind::True},
          {{"fail", 0}, BuiltinKind::Fail},
          {{"false", 0}, BuiltinKind::Fail},
          {{"halt", 0}, BuiltinKind::Fail},
          {{"write", 1}, BuiltinKind::True},
          {{"writeln", 1}, BuiltinKind::True},
          {{"print", 1}, BuiltinKind::True},
          {{"read", 1}, BuiltinKind::True},
          {{"tab", 1}, BuiltinKind::True},
          {{"put", 1}, BuiltinKind::True},
          {{"get0", 1}, BuiltinKind::TypeInt},
          {{"get", 1}, BuiltinKind::TypeInt},
          {{"is", 2}, BuiltinKind::Is},
          {{"<", 2}, BuiltinKind::ArithTest},
          {{">", 2}, BuiltinKind::ArithTest},
          {{"=<", 2}, BuiltinKind::ArithTest},
          {{">=", 2}, BuiltinKind::ArithTest},
          {{"=:=", 2}, BuiltinKind::ArithTest},
          {{"=\\=", 2}, BuiltinKind::ArithTest},
          {{"integer", 1}, BuiltinKind::TypeInt},
          {{"number", 1}, BuiltinKind::TypeInt},
          {{"var", 1}, BuiltinKind::TypeTest},
          {{"nonvar", 1}, BuiltinKind::TypeTest},
          {{"atom", 1}, BuiltinKind::TypeTest},
          {{"atomic", 1}, BuiltinKind::TypeTest},
          {{"ground", 1}, BuiltinKind::TypeTest},
          {{"callable", 1}, BuiltinKind::TypeTest},
          {{"is_list", 1}, BuiltinKind::TypeTest},
          {{"==", 2}, BuiltinKind::TermEq},
          {{"=", 2}, BuiltinKind::Unify},
          {{"\\=", 2}, BuiltinKind::NotEq},
          {{"\\==", 2}, BuiltinKind::NotEq},
          {{"@<", 2}, BuiltinKind::NotEq},
          {{"@>", 2}, BuiltinKind::NotEq},
          {{"@=<", 2}, BuiltinKind::NotEq},
          {{"@>=", 2}, BuiltinKind::NotEq},
          {{"compare", 3}, BuiltinKind::True},
          {{"length", 2}, BuiltinKind::Length},
          {{"functor", 3}, BuiltinKind::True},
          {{"arg", 3}, BuiltinKind::Arg},
          {{"=..", 2}, BuiltinKind::True},
          {{"name", 2}, BuiltinKind::True},
          {{"\\+", 1}, BuiltinKind::Opaque},
          {{"not", 1}, BuiltinKind::Opaque},
          {{"call", 1}, BuiltinKind::Opaque},
          // All-solutions predicates: the collected list is Any (its
          // element structure is not tracked), the goal is opaque.
          {{"setof", 3}, BuiltinKind::True},
          {{"bagof", 3}, BuiltinKind::True},
          {{"findall", 3}, BuiltinKind::True},
          {{"assert", 1}, BuiltinKind::True},
          {{"asserta", 1}, BuiltinKind::True},
          {{"assertz", 1}, BuiltinKind::True},
          {{"retract", 1}, BuiltinKind::True},
      };
  auto It = Table.find({Name, Arity});
  return It == Table.end() ? BuiltinKind::None : It->second;
}

BuiltinKind gaia::builtinKind(const SymbolTable &Syms, FunctorId Fn) {
  return builtinKind(Syms.functorName(Fn), Syms.functorArity(Fn));
}
