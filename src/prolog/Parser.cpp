//===- prolog/Parser.cpp ----------------------------------------------------=//

#include "prolog/Parser.h"

#include <map>

using namespace gaia;

// Standard operator table (subset sufficient for the benchmark suite).
static const std::map<std::string, Parser::OpInfo> &infixTable() {
  using Fix = Parser::OpInfo::Fix;
  static const std::map<std::string, Parser::OpInfo> Table = {
      {":-", {1200, Fix::XFX}},  {"-->", {1200, Fix::XFX}},
      {";", {1100, Fix::XFY}},   {"->", {1050, Fix::XFY}},
      {",", {1000, Fix::XFY}},   {"=", {700, Fix::XFX}},
      {"\\=", {700, Fix::XFX}},  {"==", {700, Fix::XFX}},
      {"\\==", {700, Fix::XFX}}, {"@<", {700, Fix::XFX}},
      {"@>", {700, Fix::XFX}},   {"@=<", {700, Fix::XFX}},
      {"@>=", {700, Fix::XFX}},  {"is", {700, Fix::XFX}},
      {"=..", {700, Fix::XFX}},  {"=:=", {700, Fix::XFX}},
      {"=\\=", {700, Fix::XFX}}, {"<", {700, Fix::XFX}},
      {">", {700, Fix::XFX}},    {"=<", {700, Fix::XFX}},
      {">=", {700, Fix::XFX}},   {"+", {500, Fix::YFX}},
      {"-", {500, Fix::YFX}},    {"/\\", {500, Fix::YFX}},
      {"\\/", {500, Fix::YFX}},  {"xor", {500, Fix::YFX}},
      {"*", {400, Fix::YFX}},    {"/", {400, Fix::YFX}},
      {"//", {400, Fix::YFX}},   {"mod", {400, Fix::YFX}},
      {"<<", {400, Fix::YFX}},   {">>", {400, Fix::YFX}},
      {"**", {200, Fix::XFX}},   {"^", {200, Fix::XFY}},
  };
  return Table;
}

static const std::map<std::string, Parser::OpInfo> &prefixTable() {
  using Fix = Parser::OpInfo::Fix;
  static const std::map<std::string, Parser::OpInfo> Table = {
      {":-", {1200, Fix::FX}}, {"?-", {1200, Fix::FX}},
      {"\\+", {900, Fix::FY}}, {"not", {900, Fix::FY}},
      {"-", {200, Fix::FY}},   {"+", {200, Fix::FY}},
      {"\\", {200, Fix::FY}},
  };
  return Table;
}

const Parser::OpInfo *Parser::infixOp(const std::string &Name) {
  auto It = infixTable().find(Name);
  return It == infixTable().end() ? nullptr : &It->second;
}

const Parser::OpInfo *Parser::prefixOp(const std::string &Name) {
  auto It = prefixTable().find(Name);
  return It == prefixTable().end() ? nullptr : &It->second;
}

Parser::Parser(std::string_view Source, SymbolTable &Syms)
    : Lex(Source), Syms(Syms) {
  advance();
}

void Parser::advance() { Tok = Lex.next(); }

bool Parser::fail(const std::string &Msg) {
  if (ErrorMsg.empty()) {
    ErrorMsg = Msg;
    ErrorLine = Tok.Line;
  }
  return false;
}

bool Parser::peekIsTermStart() const {
  switch (Tok.Kind) {
  case TokKind::Atom:
  case TokKind::Var:
  case TokKind::Int:
  case TokKind::Str:
  case TokKind::LParen:
  case TokKind::LParenF:
  case TokKind::LBracket:
  case TokKind::LBrace:
    return true;
  default:
    return false;
  }
}

std::optional<Term> Parser::parseClause() {
  if (Tok.Kind == TokKind::Eof)
    return std::nullopt;
  if (Tok.Kind == TokKind::Error) {
    fail(Tok.Text);
    return std::nullopt;
  }
  unsigned Prec;
  std::optional<Term> T = parseExpr(1200, Prec);
  if (!T)
    return std::nullopt;
  if (Tok.Kind != TokKind::End) {
    fail("expected '.' at end of clause, got '" + Tok.Text + "'");
    return std::nullopt;
  }
  advance();
  return T;
}

std::optional<Term> Parser::parseExpr(unsigned MaxPrec, unsigned &OutPrec) {
  unsigned LeftPrec;
  std::optional<Term> Left = parsePrimary(MaxPrec, LeftPrec);
  if (!Left)
    return std::nullopt;

  while (true) {
    std::string OpName;
    if (Tok.Kind == TokKind::Atom) {
      OpName = Tok.Text;
    } else if (Tok.Kind == TokKind::Comma) {
      OpName = ",";
    } else {
      break;
    }
    const OpInfo *Op = infixOp(OpName);
    if (!Op || Op->Prec > MaxPrec)
      break;
    unsigned LeftMax =
        Op->Fixity == OpInfo::Fix::YFX ? Op->Prec : Op->Prec - 1;
    unsigned RightMax =
        Op->Fixity == OpInfo::Fix::XFY ? Op->Prec : Op->Prec - 1;
    if (LeftPrec > LeftMax)
      break;
    advance();
    unsigned RightPrec;
    std::optional<Term> Right = parseExpr(RightMax, RightPrec);
    if (!Right)
      return std::nullopt;
    Left = Term::mkCompound(Syms.intern(OpName),
                            {std::move(*Left), std::move(*Right)});
    LeftPrec = Op->Prec;
  }
  OutPrec = LeftPrec;
  return Left;
}

std::optional<Term> Parser::parseArgList(SymbolId Functor) {
  // Current token is LParenF; parse comma-separated args at priority 999.
  advance();
  std::vector<Term> Args;
  while (true) {
    unsigned Prec;
    std::optional<Term> Arg = parseExpr(999, Prec);
    if (!Arg)
      return std::nullopt;
    Args.push_back(std::move(*Arg));
    if (Tok.Kind == TokKind::Comma) {
      advance();
      continue;
    }
    break;
  }
  if (Tok.Kind != TokKind::RParen) {
    fail("expected ')' in argument list");
    return std::nullopt;
  }
  advance();
  return Term::mkCompound(Functor, std::move(Args));
}

std::optional<Term> Parser::parseList() {
  // Current token is '['.
  advance();
  if (Tok.Kind == TokKind::RBracket) {
    advance();
    return Term::mkAtom(Syms.intern("[]"));
  }
  std::vector<Term> Elems;
  std::optional<Term> Tail;
  while (true) {
    unsigned Prec;
    std::optional<Term> E = parseExpr(999, Prec);
    if (!E)
      return std::nullopt;
    Elems.push_back(std::move(*E));
    if (Tok.Kind == TokKind::Comma) {
      advance();
      continue;
    }
    if (Tok.Kind == TokKind::Bar) {
      advance();
      unsigned TPrec;
      Tail = parseExpr(999, TPrec);
      if (!Tail)
        return std::nullopt;
    }
    break;
  }
  if (Tok.Kind != TokKind::RBracket) {
    fail("expected ']' in list");
    return std::nullopt;
  }
  advance();
  Term Result = Tail ? std::move(*Tail) : Term::mkAtom(Syms.intern("[]"));
  SymbolId Dot = Syms.intern(".");
  for (auto It = Elems.rbegin(), E = Elems.rend(); It != E; ++It)
    Result = Term::mkCompound(Dot, {std::move(*It), std::move(Result)});
  return Result;
}

std::optional<Term> Parser::parsePrimary(unsigned MaxPrec,
                                         unsigned &OutPrec) {
  OutPrec = 0;
  switch (Tok.Kind) {
  case TokKind::Int: {
    Term T = Term::mkInt(Tok.IntVal);
    advance();
    return T;
  }
  case TokKind::Var: {
    std::string Name = Tok.Text;
    advance();
    // Each '_' denotes a distinct variable.
    if (Name == "_")
      Name = "_G" + std::to_string(FreshVarCounter++);
    return Term::mkVar(Syms.intern(Name));
  }
  case TokKind::Str: {
    // Strings are lists of character codes.
    std::string Text = Tok.Text;
    advance();
    Term Result = Term::mkAtom(Syms.intern("[]"));
    SymbolId Dot = Syms.intern(".");
    for (auto It = Text.rbegin(), E = Text.rend(); It != E; ++It)
      Result = Term::mkCompound(
          Dot, {Term::mkInt(static_cast<unsigned char>(*It)),
                std::move(Result)});
    return Result;
  }
  case TokKind::LParen:
  case TokKind::LParenF: {
    advance();
    unsigned Prec;
    std::optional<Term> T = parseExpr(1200, Prec);
    if (!T)
      return std::nullopt;
    if (Tok.Kind != TokKind::RParen) {
      fail("expected ')'");
      return std::nullopt;
    }
    advance();
    return T;
  }
  case TokKind::LBracket:
    return parseList();
  case TokKind::LBrace: {
    advance();
    if (Tok.Kind == TokKind::RBrace) {
      advance();
      return Term::mkAtom(Syms.intern("{}"));
    }
    unsigned Prec;
    std::optional<Term> T = parseExpr(1200, Prec);
    if (!T)
      return std::nullopt;
    if (Tok.Kind != TokKind::RBrace) {
      fail("expected '}'");
      return std::nullopt;
    }
    advance();
    return Term::mkCompound(Syms.intern("{}"), {std::move(*T)});
  }
  case TokKind::Atom: {
    std::string Name = Tok.Text;
    advance();
    if (Tok.Kind == TokKind::LParenF)
      return parseArgList(Syms.intern(Name));
    // Negative integer literal.
    if (Name == "-" && Tok.Kind == TokKind::Int) {
      Term T = Term::mkInt(-Tok.IntVal);
      advance();
      return T;
    }
    // Prefix operator.
    if (const OpInfo *Op = prefixOp(Name)) {
      if (Op->Prec <= MaxPrec && peekIsTermStart() &&
          !(Tok.Kind == TokKind::Atom && infixOp(Tok.Text) &&
            !prefixOp(Tok.Text))) {
        unsigned ArgMax =
            Op->Fixity == OpInfo::Fix::FY ? Op->Prec : Op->Prec - 1;
        unsigned ArgPrec;
        std::optional<Term> Arg = parseExpr(ArgMax, ArgPrec);
        if (!Arg)
          return std::nullopt;
        OutPrec = Op->Prec;
        return Term::mkCompound(Syms.intern(Name), {std::move(*Arg)});
      }
    }
    // Plain atom. If the atom is an operator name used as a term, its
    // priority is the operator priority; we conservatively report 0,
    // which accepts slightly more than standard Prolog.
    return Term::mkAtom(Syms.intern(Name));
  }
  case TokKind::End:
    fail("unexpected '.'");
    return std::nullopt;
  case TokKind::Error:
    fail(Tok.Text);
    return std::nullopt;
  default:
    fail("unexpected token '" + Tok.Text + "'");
    return std::nullopt;
  }
}
