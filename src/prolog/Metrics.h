//===- prolog/Metrics.h - Program size and recursion metrics --------------==//
///
/// \file
/// Computes the measurements of the paper's Tables 1 and 2:
///
///   Table 1: number of procedures, clauses, program points, goals
///            (procedure calls), and the static call-tree size of [15]
///            (the static call graph unfolded from the entry predicate
///            with recursive back-calls removed).
///
///   Table 2: the syntactic form of procedures: tail recursive, locally
///            recursive ("more than one recursive call or a nonterminal
///            recursive call"), mutually recursive, or non-recursive.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_METRICS_H
#define GAIA_PROLOG_METRICS_H

#include "prolog/Normalize.h"
#include "prolog/Program.h"

namespace gaia {

/// Table 1 row.
struct SizeMetrics {
  uint32_t NumProcedures = 0;
  uint32_t NumClauses = 0;
  uint64_t NumProgramPoints = 0;
  uint32_t NumGoals = 0;
  uint64_t StaticCallTreeSize = 0;
};

/// Table 2 row. A procedure lands in exactly one class.
struct RecursionMetrics {
  uint32_t TailRecursive = 0;
  uint32_t LocallyRecursive = 0;
  uint32_t MutuallyRecursive = 0;
  uint32_t NonRecursive = 0;
};

/// The static call graph: for each procedure, the set of user-defined
/// predicates its bodies call (including calls under \+, ; and ->).
class CallGraph {
public:
  CallGraph(const Program &Prog, SymbolTable &Syms);

  const std::vector<FunctorId> &callees(FunctorId Fn) const;
  const std::vector<FunctorId> &predicates() const { return Preds; }

  /// Strongly connected components in reverse topological order
  /// (Tarjan). Each component lists its member predicates.
  std::vector<std::vector<FunctorId>> stronglyConnectedComponents() const;

private:
  std::vector<FunctorId> Preds;
  std::unordered_map<FunctorId, std::vector<FunctorId>> Callees;
  static const std::vector<FunctorId> Empty;
};

/// Computes the Table 1 metrics. \p Entry is the benchmark's top-level
/// predicate (the root of the static call tree).
SizeMetrics computeSizeMetrics(const Program &Prog, const NProgram &NProg,
                               SymbolTable &Syms, FunctorId Entry);

/// Computes the Table 2 classification.
RecursionMetrics classifyRecursion(const Program &Prog, SymbolTable &Syms);

} // namespace gaia

#endif // GAIA_PROLOG_METRICS_H
