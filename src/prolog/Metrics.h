//===- prolog/Metrics.h - Program size and recursion metrics --------------==//
///
/// \file
/// Computes the measurements of the paper's Tables 1 and 2:
///
///   Table 1: number of procedures, clauses, program points, goals
///            (procedure calls), and the static call-tree size of [15]
///            (the static call graph unfolded from the entry predicate
///            with recursive back-calls removed).
///
///   Table 2: the syntactic form of procedures: tail recursive, locally
///            recursive ("more than one recursive call or a nonterminal
///            recursive call"), mutually recursive, or non-recursive.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_METRICS_H
#define GAIA_PROLOG_METRICS_H

#include "prolog/CallGraph.h"
#include "prolog/Normalize.h"
#include "prolog/Program.h"

namespace gaia {

/// Table 1 row.
struct SizeMetrics {
  uint32_t NumProcedures = 0;
  uint32_t NumClauses = 0;
  uint64_t NumProgramPoints = 0;
  uint32_t NumGoals = 0;
  uint64_t StaticCallTreeSize = 0;
};

/// Table 2 row. A procedure lands in exactly one class.
struct RecursionMetrics {
  uint32_t TailRecursive = 0;
  uint32_t LocallyRecursive = 0;
  uint32_t MutuallyRecursive = 0;
  uint32_t NonRecursive = 0;
};

// CallGraph (with SCCs and the scheduler-facing condensation) lives in
// prolog/CallGraph.h; Metrics is one of its two clients.

/// Computes the Table 1 metrics. \p Entry is the benchmark's top-level
/// predicate (the root of the static call tree).
SizeMetrics computeSizeMetrics(const Program &Prog, const NProgram &NProg,
                               SymbolTable &Syms, FunctorId Entry);

/// Overload for callers that already built the call graph (the analyzer
/// builds one anyway for the engine's call-cone reserve and the
/// parallel scheduler); identical results, one construction.
SizeMetrics computeSizeMetrics(const Program &Prog, const NProgram &NProg,
                               SymbolTable &Syms, FunctorId Entry,
                               const CallGraph &CG);

/// Computes the Table 2 classification.
RecursionMetrics classifyRecursion(const Program &Prog, SymbolTable &Syms);

} // namespace gaia

#endif // GAIA_PROLOG_METRICS_H
