//===- prolog/Parser.h - Operator-precedence Prolog parser ----------------==//
///
/// \file
/// Parses Prolog source into Terms using the standard operator table
/// (:-, ;, ->, comma, \+, the 700-level relational operators, arithmetic
/// at 500/400/200, unary minus). List and curly syntax, strings (as
/// character-code lists) and negative literals are supported.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_PARSER_H
#define GAIA_PROLOG_PARSER_H

#include "prolog/Lexer.h"
#include "prolog/Term.h"

#include <optional>

namespace gaia {

/// Parses a sequence of clause terms (each terminated by '.').
class Parser {
public:
  Parser(std::string_view Source, SymbolTable &Syms);

  /// Parses the next clause term. Returns std::nullopt at end of input or
  /// on error (check error()).
  std::optional<Term> parseClause();

  bool hadError() const { return !ErrorMsg.empty(); }
  const std::string &error() const { return ErrorMsg; }
  uint32_t errorLine() const { return ErrorLine; }

  /// Operator-table entry (public so the table in the implementation
  /// file can name it).
  struct OpInfo {
    uint16_t Prec;
    enum class Fix : uint8_t { XFX, XFY, YFX, FY, FX } Fixity;
  };

private:
  void advance();
  bool fail(const std::string &Msg);
  std::optional<Term> parseExpr(unsigned MaxPrec, unsigned &OutPrec);
  std::optional<Term> parsePrimary(unsigned MaxPrec, unsigned &OutPrec);
  std::optional<Term> parseArgList(SymbolId Functor);
  std::optional<Term> parseList();
  bool peekIsTermStart() const;

  static const OpInfo *infixOp(const std::string &Name);
  static const OpInfo *prefixOp(const std::string &Name);

  Lexer Lex;
  SymbolTable &Syms;
  Token Tok;
  std::string ErrorMsg;
  uint32_t ErrorLine = 0;
  uint32_t FreshVarCounter = 0;
};

} // namespace gaia

#endif // GAIA_PROLOG_PARSER_H
