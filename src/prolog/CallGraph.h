//===- prolog/CallGraph.h - Static call graph, SCCs, condensation ---------==//
///
/// \file
/// The static call graph over a program's user-defined predicates, with
/// the derived structures two clients consume:
///
///   - prolog/Metrics.h: Tarjan SCCs for the Table 2 recursion
///     classification and the static call-tree size of Table 1;
///   - gaia/SccScheduler.h: the SCC *condensation* — the DAG of
///     strongly-connected components in reverse topological order, with
///     ready counts — which schedules the speculative workers of the
///     intra-analysis parallel mode (one SCC becomes ready when every
///     SCC it calls has stabilized).
///
/// The SCC code used to live inside Metrics.cpp; it is hoisted here so
/// there is exactly one implementation under test for both clients.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_PROLOG_CALLGRAPH_H
#define GAIA_PROLOG_CALLGRAPH_H

#include "prolog/Program.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace gaia {

/// Walks a goal term, invoking \p OnCall for every leaf goal that calls
/// a user-defined predicate. Looks through ',', ';', '->', '\+', 'not'
/// and 'call', matching how the paper counts goals in control
/// constructs.
void forEachUserCall(const Term &Goal, const Program &Prog,
                     SymbolTable &Syms,
                     const std::function<void(FunctorId)> &OnCall);

/// The SCC condensation of a call graph: components in *reverse
/// topological order* (Tarjan emits every component after the
/// components it calls, so CalleeSccs[I] only ever names indices < I),
/// plus the edge lists and ready counts the scheduler's ready-count
/// dispatch runs on.
struct Condensation {
  /// Components in reverse topological order; each lists its member
  /// predicates in Tarjan pop order (deterministic for a given program).
  std::vector<std::vector<FunctorId>> Sccs;
  /// Predicate -> index into Sccs.
  std::unordered_map<FunctorId, uint32_t> SccOf;
  /// Distinct cross-component callee edges (indices < own index).
  std::vector<std::vector<uint32_t>> CalleeSccs;
  /// Reverse edges: the components that call this one.
  std::vector<std::vector<uint32_t>> CallerSccs;

  /// Ready-count seed for the scheduler: component I may be dispatched
  /// once initialReadyCounts()[I] completions have been observed among
  /// CalleeSccs[I].
  std::vector<uint32_t> initialReadyCounts() const;

  /// Deterministic single-consumer simulation of the ready-count
  /// schedule (lowest ready index first). Used by tests to pin the
  /// scheduling properties: the result is a permutation of all
  /// components in which every component appears after all of its
  /// callee components.
  std::vector<uint32_t> readyOrder() const;
};

/// The static call graph: for each procedure, the set of user-defined
/// predicates its bodies call (including calls under \+, ; and ->).
class CallGraph {
public:
  CallGraph(const Program &Prog, SymbolTable &Syms);

  const std::vector<FunctorId> &callees(FunctorId Fn) const;
  const std::vector<FunctorId> &predicates() const { return Preds; }

  /// Strongly connected components in reverse topological order
  /// (Tarjan). Each component lists its member predicates.
  std::vector<std::vector<FunctorId>> stronglyConnectedComponents() const;

  /// The full condensation (SCC DAG + ready counts).
  Condensation condense() const;

  /// Predicates reachable from \p Entry (inclusive, when defined) in
  /// call-graph edge order, cut at \p MaxDepth edges from the entry
  /// (the parallel mode's test hook for simulating demands that escape
  /// the speculated cone). The result is closed under callees when
  /// MaxDepth is unbounded.
  std::vector<FunctorId> reachableFrom(FunctorId Entry,
                                       uint32_t MaxDepth = ~0u) const;

private:
  std::vector<FunctorId> Preds;
  std::unordered_map<FunctorId, std::vector<FunctorId>> Callees;
  static const std::vector<FunctorId> Empty;
};

} // namespace gaia

#endif // GAIA_PROLOG_CALLGRAPH_H
