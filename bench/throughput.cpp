//===- bench/throughput.cpp - Concurrent batch-analysis throughput --------==//
///
/// \file
/// Measures the batch runtime (runtime/AnalysisPool.h + SharedCache.h):
/// the ten Section 9 programs x repeated query variants, run over worker
/// pools of 1/2/4/8 threads layered on one frozen shared cache tier.
/// Reports jobs/sec, scaling efficiency and shared-tier hit rates, and
/// — the part that gates — verifies every job's result is bit-identical
/// to a cold sequential analyzeProgram run: same procedure/clause
/// iteration counts, same query output grammars, same Table 4/5 tag
/// tables. Any divergence exits non-zero.
///
/// Writes machine-readable BENCH_throughput.json (override the path
/// with BENCH_THROUGHPUT_JSON; empty string skips the file). Repeat
/// factor via BENCH_THROUGHPUT_REPEAT (default 4).
///
/// Note on scaling: jobs/sec scales with *physical cores*. The JSON
/// records hardware_concurrency so the regression gate
/// (bench/check_bench_regression.py) can tier the 8-worker scaling
/// floor by the machine's core count (3x with >= 8 hardware threads,
/// 1.5x with 4-7, skipped below).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "runtime/AnalysisPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <sys/resource.h>
#include <thread>
#include <vector>

using namespace gaia;

namespace {

struct WorkerRun {
  uint32_t Workers = 0;
  BatchStats St;
  bool Identical = true;
};

long peakRssKb() {
  struct rusage U {};
  getrusage(RUSAGE_SELF, &U);
  return U.ru_maxrss; // KiB on Linux
}

} // namespace

int main(int argc, char **argv) {
  (void)argc;
  (void)argv;
  unsigned Repeat = 4;
  if (const char *E = std::getenv("BENCH_THROUGHPUT_REPEAT"))
    Repeat = std::max(1u, static_cast<unsigned>(std::strtoul(E, nullptr, 10)));

  std::vector<AnalysisJob> Queries = serviceQueryMix();
  std::vector<AnalysisJob> Batch;
  for (unsigned R = 0; R != Repeat; ++R)
    Batch.insert(Batch.end(), Queries.begin(), Queries.end());

  // Warmup pass: the batch's distinct programs under their published
  // goals. The variant goals are *not* warmed — a realistic request mix
  // hits the tier partially and fills worker deltas for the rest.
  std::vector<AnalysisJob> Warmup;
  for (const BenchmarkProgram &B : table123Suite())
    Warmup.push_back({B.Key, B.Source, B.GoalSpec});
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  if (!Cache) {
    std::fprintf(stderr, "error: shared cache build failed: %s\n",
                 Err.c_str());
    return 1;
  }

  // Sequential oracle: one cold run per distinct query.
  std::map<std::string, std::string> Oracle;
  double OracleSeconds = 0;
  for (const AnalysisJob &Q : Queries) {
    AnalysisResult R = analyzeProgram(Q.Source, Q.GoalSpec);
    if (!R.Ok) {
      std::fprintf(stderr, "error: oracle %s: %s\n", Q.Key.c_str(),
                   R.Error.c_str());
      return 1;
    }
    OracleSeconds += R.Stats.SolveSeconds;
    Oracle[Q.Key + "|" + Q.GoalSpec] = analysisFingerprint(R);
  }

  unsigned Hardware = std::thread::hardware_concurrency();
  std::printf("=== batch-analysis throughput ===\n");
  std::printf("jobs: %zu (%zu distinct queries x %u), hardware threads: %u\n",
              Batch.size(), Queries.size(), Repeat, Hardware);
  std::printf("warmup: %.3fs, %llu graphs, %llu op results, %u symbols\n",
              Cache->stats().WarmupSeconds,
              static_cast<unsigned long long>(Cache->stats().Graphs),
              static_cast<unsigned long long>(Cache->stats().OpResults),
              Cache->stats().Symbols);
  std::printf("sequential cold solve total: %.3fs (oracle pass)\n\n",
              OracleSeconds);
  std::printf("workers  wall(s)   jobs/s  speedup  eff%%  shared%%  "
              "identical\n");

  // The timed waves are the shared queue-free capacity measurement
  // (bench/BenchUtil.h) — service_soak derives its load multiples from
  // the same helper over the same mix, so "4x capacity" there means 4x
  // what these rows report.
  std::map<uint32_t, bool> IdenticalByWorkers;
  auto Verify = [&](uint32_t Workers, const std::vector<JobOutcome> &Out) {
    bool Identical = true;
    for (size_t I = 0; I != Out.size(); ++I) {
      const AnalysisJob &J = Batch[I];
      if (analysisFingerprint(Out[I].Result) !=
          Oracle[J.Key + "|" + J.GoalSpec]) {
        std::fprintf(stderr, "MISMATCH: %s (%s) on %u workers\n",
                     J.Key.c_str(), J.GoalSpec.c_str(), Workers);
        Identical = false;
      }
    }
    IdenticalByWorkers[Workers] = Identical;
  };
  std::vector<CapacityPoint> Points =
      measureQueueFreeCapacity(Batch, Cache, {1, 2, 4, 8}, Verify);

  std::vector<WorkerRun> Runs;
  bool AllIdentical = true;
  uint32_t TotalFailed = 0;
  std::string FirstError;
  double Base = 0;
  for (const CapacityPoint &P : Points) {
    WorkerRun Run;
    Run.Workers = P.Workers;
    Run.St = P.St;
    Run.Identical = IdenticalByWorkers[P.Workers];
    AllIdentical = AllIdentical && Run.Identical;
    TotalFailed += Run.St.Failed;
    if (FirstError.empty() && !Run.St.FirstError.empty())
      FirstError = Run.St.FirstError;
    if (Run.Workers == 1)
      Base = Run.St.JobsPerSecond;
    double Speedup = Base > 0 ? Run.St.JobsPerSecond / Base : 0;
    std::printf("%7u %8.3f %8.1f %8.2f %5.1f %8.1f  %s\n", Run.Workers,
                Run.St.WallSeconds, Run.St.JobsPerSecond, Speedup,
                100.0 * Speedup / Run.Workers,
                100.0 * Run.St.sharedHitRate(),
                Run.Identical ? "yes" : "NO");
    Runs.push_back(Run);
  }
  std::printf("\n");

  const char *JsonPath = std::getenv("BENCH_THROUGHPUT_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_throughput.json";
  if (*JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    double MaxJps = 0;
    for (const WorkerRun &R : Runs)
      MaxJps = std::max(MaxJps, R.St.JobsPerSecond);
    const WorkerRun &Last = Runs.back();
    std::fprintf(F,
                 "{\n  \"hardware_concurrency\": %u,\n"
                 "  \"jobs\": %zu,\n  \"distinct_queries\": %zu,\n"
                 "  \"repeat\": %u,\n  \"warmup_seconds\": %.6f,\n"
                 "  \"shared_graphs\": %llu,\n  \"shared_op_results\": "
                 "%llu,\n  \"sequential_cold_seconds\": %.6f,\n",
                 Hardware, Batch.size(), Queries.size(), Repeat,
                 Cache->stats().WarmupSeconds,
                 static_cast<unsigned long long>(Cache->stats().Graphs),
                 static_cast<unsigned long long>(Cache->stats().OpResults),
                 OracleSeconds);
    std::fprintf(F, "  \"runs\": [\n");
    for (size_t I = 0; I != Runs.size(); ++I) {
      const WorkerRun &R = Runs[I];
      std::fprintf(
          F,
          "    {\"workers\": %u, \"wall_seconds\": %.6f, "
          "\"jobs_per_sec\": %.2f, \"shared_hit_rate\": %.4f, "
          "\"identical\": %s}%s\n",
          R.Workers, R.St.WallSeconds, R.St.JobsPerSecond,
          R.St.sharedHitRate(), R.Identical ? "true" : "false",
          I + 1 != Runs.size() ? "," : "");
    }
    double Scaling = Base > 0 ? Last.St.JobsPerSecond / Base : 0;
    // Total jobs executed across all measured + untimed waves (2 waves x
    // 4 worker counts), normalized per 10k jobs: the steady-state memory
    // figure the lifecycle budget machinery targets.
    size_t Executed = Batch.size() * 2 * Runs.size();
    double RssPer10k =
        Executed ? double(peakRssKb()) * 10000.0 / double(Executed) : 0;
    std::fprintf(F,
                 "  ],\n  \"jobs_per_sec_1w\": %.2f,\n"
                 "  \"jobs_per_sec_max\": %.2f,\n"
                 "  \"scaling_8w_over_1w\": %.3f,\n"
                 "  \"scaling_efficiency_8w\": %.3f,\n"
                 "  \"tier_bytes\": %llu,\n"
                 "  \"tier_arena_bytes\": %llu,\n"
                 "  \"peak_rss_kb\": %ld,\n"
                 "  \"peak_rss_per_10k_jobs\": %.1f,\n"
                 "  \"failed_jobs\": %u,\n"
                 "  \"first_error\": \"%s\",\n"
                 "  \"identical_all\": %s\n}\n",
                 Base, MaxJps, Scaling, Scaling / 8.0,
                 static_cast<unsigned long long>(Cache->tierBytes()),
                 static_cast<unsigned long long>(Cache->stats().ArenaBytes),
                 peakRssKb(), RssPer10k, TotalFailed,
                 jsonEscape(FirstError).c_str(),
                 AllIdentical ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s (max %.1f jobs/s, 8w/1w scaling %.2fx)\n",
                JsonPath, MaxJps, Scaling);
  }

  if (!AllIdentical) {
    std::fprintf(stderr,
                 "FAIL: concurrent results diverged from the sequential "
                 "oracle\n");
    return 1;
  }
  return 0;
}
