//===- bench/chaos_soak.cpp - Fault-containment soak -----------------------==//
///
/// \file
/// The serving runtime's chaos soak: a large batch of mixed jobs — the
/// ten Section 9 programs x query variants, with a malformed program
/// salted in every ~97th slot — run through AnalysisPool with the
/// resilience ladder attached. In a -DGAIA_FAULT_INJECT=ON build with
/// GAIA_FAULT_P set (CI uses 1e-3), the deterministic fault streams
/// throw synthetic exceptions at the op-cache/normalize/intern/alloc
/// seams; in a production build this degenerates to a clean soak of the
/// same invariants.
///
/// The soak passes only when
///   * the process survives (workers contain every fault),
///   * every failed job carries a structured FailKind (never None),
///   * each malformed job fails alone with ParseError (or — with
///     injection armed — was pushed onto the degradation floor by
///     faults that pre-empted its parse),
///   * every well-formed job ends Ok (the ladder's floor guarantee),
///     and
///   * every well-formed, non-degraded result is bit-identical to the
///     sequential oracle (faults and retries never corrupt a result
///     that reports success at full precision).
///
/// Writes BENCH_chaos.json (override with BENCH_CHAOS_JSON; empty
/// string skips). Job count via CHAOS_JOBS (default 10000), workers
/// via CHAOS_WORKERS (default 8).
///
//===----------------------------------------------------------------------===//

#include "runtime/AnalysisPool.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "support/FaultInject.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

using namespace gaia;

namespace {

/// The distinct well-formed (program, goal) queries of the mix: each
/// Section 9 program's published goal plus first-argument variants.
std::vector<AnalysisJob> distinctQueries() {
  std::vector<AnalysisJob> Queries;
  for (const BenchmarkProgram &B : table123Suite()) {
    Queries.push_back({B.Key, B.Source, B.GoalSpec});
    for (const char *Spec : {"list", "int"}) {
      std::string Goal = B.GoalSpec;
      size_t Pos = Goal.find("any");
      if (Pos == std::string::npos)
        continue;
      Goal.replace(Pos, 3, Spec);
      Queries.push_back({B.Key + "#" + Spec, B.Source, Goal});
    }
  }
  return Queries;
}

/// Minimal JSON string escaping (error strings can carry quotes and
/// newlines from source excerpts).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *E = std::getenv(Name))
    return std::max(1u, static_cast<unsigned>(std::strtoul(E, nullptr, 10)));
  return Default;
}

} // namespace

int main(int argc, char **argv) {
  (void)argc;
  (void)argv;
  unsigned TotalJobs = envUnsigned("CHAOS_JOBS", 10000);
  unsigned Workers = envUnsigned("CHAOS_WORKERS", 8);
  const char *FaultP = std::getenv("GAIA_FAULT_P");

  // The malformed program: a clause with an empty body. Its goal is
  // well-formed on purpose — the failure must come from the program
  // parser, tagged with the offending line.
  const AnalysisJob Malformed{"malformed", "p(a).\nq(X) :- .\n", "p(any)"};
  const unsigned MalformedEvery = 97;

  std::vector<AnalysisJob> Queries = distinctQueries();
  std::vector<AnalysisJob> Batch;
  Batch.reserve(TotalJobs);
  unsigned MalformedJobs = 0;
  for (unsigned I = 0; I != TotalJobs; ++I) {
    if (I % MalformedEvery == MalformedEvery - 1) {
      Batch.push_back(Malformed);
      ++MalformedJobs;
    } else {
      Batch.push_back(Queries[I % Queries.size()]);
    }
  }

  // Warm shared tier from the published goals. Warm-up and oracle run
  // on this thread, outside any JobScope: their fault streams are
  // disarmed, so they cannot fault and the oracle is exact.
  std::vector<AnalysisJob> Warmup;
  for (const BenchmarkProgram &B : table123Suite())
    Warmup.push_back({B.Key, B.Source, B.GoalSpec});
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  if (!Cache) {
    std::fprintf(stderr, "error: shared cache build failed: %s\n", Err.c_str());
    return 1;
  }

  std::map<std::string, std::string> Oracle;
  for (const AnalysisJob &Q : Queries) {
    AnalysisResult R = analyzeProgram(Q.Source, Q.GoalSpec);
    if (!R.Ok) {
      std::fprintf(stderr, "error: oracle %s: %s\n", Q.Key.c_str(),
                   R.Error.c_str());
      return 1;
    }
    Oracle[Q.Key + "|" + Q.GoalSpec] = analysisFingerprint(R);
  }

  // The soak measures the ladder, so quarantine is disabled: the batch
  // repeats ~30 distinct queries hundreds of times, and under injected
  // transient faults a fingerprint-keyed quarantine would collapse the
  // whole tail of a repeated query onto the degraded floor. Quarantine
  // semantics have their own deterministic unit tests (ResilienceTest).
  ResilienceOptions RO;
  RO.QuarantineThreshold = std::numeric_limits<uint32_t>::max();
  auto Manager = std::make_shared<ResilienceManager>(RO);
  PoolOptions PO;
  PO.Workers = Workers;
  PO.Shared = Cache;
  PO.Resilience = Manager;
  AnalysisPool Pool(PO);

  std::printf("=== chaos soak ===\n");
  std::printf("jobs: %u (%u malformed), workers: %u, fault injection: %s"
              " (GAIA_FAULT_P=%s)\n",
              TotalJobs, MalformedJobs, Pool.workers(),
#ifdef GAIA_FAULT_INJECT
              "compiled in",
#else
              "compiled out",
#endif
              FaultP ? FaultP : "unset");

  BatchStats St;
  std::vector<JobOutcome> Out = Pool.run(Batch, &St);

  // Invariant sweep.
  unsigned Violations = 0;
  uint64_t FaultFires = 0;
  std::map<std::string, uint64_t> FailKinds;
  std::map<std::string, uint64_t> Rungs;
  auto violate = [&](size_t I, const char *What) {
    if (Violations < 20)
      std::fprintf(stderr, "VIOLATION: job %zu (%s): %s\n", I,
                   Batch[I].Key.c_str(), What);
    ++Violations;
  };
  for (size_t I = 0; I != Out.size(); ++I) {
    const JobOutcome &O = Out[I];
    const AnalysisResult &R = O.Result;
    FaultFires += O.FaultFires;
    if (!R.Ok)
      ++FailKinds[failKindName(R.Fail)];
    if (O.Rung != RecoveryRung::None)
      ++Rungs[recoveryRungName(O.Rung)];

    if (!R.Ok && R.Fail == FailKind::None)
      violate(I, "failure without a FailKind");
    bool IsMalformed = Batch[I].Key == Malformed.Key;
    if (IsMalformed) {
      // Normal path: ParseError, untouched by the ladder. With faults
      // armed, an injected throw can pre-empt the parse; the ladder may
      // then legitimately land such a job on the degradation floor.
      bool StructuredParse = !R.Ok && R.Fail == FailKind::ParseError;
      bool FloorAfterFaults = R.Ok && R.Degraded;
      if (!StructuredParse && !FloorAfterFaults)
        violate(I, "malformed job neither ParseError nor degraded floor");
    } else {
      if (!R.Ok)
        violate(I, "well-formed job escaped the ladder's floor");
      else if (!R.Degraded &&
               analysisFingerprint(R) !=
                   Oracle[Batch[I].Key + "|" + Batch[I].GoalSpec])
        violate(I, "non-degraded result diverged from the oracle");
      // The headline determinism guarantee: a job whose fault streams
      // never fired took the ordinary path and must be indistinguishable
      // from a fault-free run — full precision, oracle-identical.
      if (O.FaultFires == 0 && R.Ok && R.Degraded)
        violate(I, "fault-free job reported a degraded result");
    }
  }

  ResilienceStats RS = Manager->stats();
  std::printf("wall: %.3fs (%.1f jobs/s)\n", St.WallSeconds, St.JobsPerSecond);
  std::printf("failed: %u, degraded: %u, recovered: %u, fault fires: %llu\n",
              St.Failed, St.Degraded, St.Recovered,
              static_cast<unsigned long long>(FaultFires));
  std::printf("ladder: %llu first-attempt failures, %llu cold retries "
              "(%llu ok), %llu tight retries (%llu ok), %llu floor, "
              "%llu quarantined, %llu short-circuits\n",
              static_cast<unsigned long long>(RS.FirstAttemptFailures),
              static_cast<unsigned long long>(RS.ColdRetries),
              static_cast<unsigned long long>(RS.ColdRetrySuccesses),
              static_cast<unsigned long long>(RS.TightRetries),
              static_cast<unsigned long long>(RS.TightRetrySuccesses),
              static_cast<unsigned long long>(RS.WidenToTopFallbacks),
              static_cast<unsigned long long>(RS.QuarantinedJobs),
              static_cast<unsigned long long>(RS.QuarantineShortCircuits));
  for (const auto &[Kind, N] : FailKinds)
    std::printf("  fail %-12s %llu\n", Kind.c_str(),
                static_cast<unsigned long long>(N));
  for (const auto &[Rung, N] : Rungs)
    std::printf("  rung %-12s %llu\n", Rung.c_str(),
                static_cast<unsigned long long>(N));

  const char *JsonPath = std::getenv("BENCH_CHAOS_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_chaos.json";
  if (*JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"jobs\": %u,\n  \"malformed_jobs\": %u,\n"
                 "  \"workers\": %u,\n  \"fault_inject\": %s,\n"
                 "  \"fault_p\": \"%s\",\n  \"wall_seconds\": %.6f,\n"
                 "  \"jobs_per_sec\": %.2f,\n  \"failed_jobs\": %u,\n"
                 "  \"degraded_jobs\": %u,\n  \"recovered_jobs\": %u,\n"
                 "  \"fault_fires\": %llu,\n  \"first_error\": \"%s\",\n",
                 TotalJobs, MalformedJobs, Pool.workers(),
#ifdef GAIA_FAULT_INJECT
                 "true",
#else
                 "false",
#endif
                 FaultP ? jsonEscape(FaultP).c_str() : "", St.WallSeconds,
                 St.JobsPerSecond, St.Failed, St.Degraded, St.Recovered,
                 static_cast<unsigned long long>(FaultFires),
                 jsonEscape(St.FirstError).c_str());
    std::fprintf(F, "  \"fail_kinds\": {");
    bool First = true;
    for (const auto &[Kind, N] : FailKinds) {
      std::fprintf(F, "%s\"%s\": %llu", First ? "" : ", ", Kind.c_str(),
                   static_cast<unsigned long long>(N));
      First = false;
    }
    std::fprintf(F, "},\n  \"rungs\": {");
    First = true;
    for (const auto &[Rung, N] : Rungs) {
      std::fprintf(F, "%s\"%s\": %llu", First ? "" : ", ", Rung.c_str(),
                   static_cast<unsigned long long>(N));
      First = false;
    }
    std::fprintf(F,
                 "},\n  \"ladder\": {\"first_attempt_failures\": %llu, "
                 "\"cold_retries\": %llu, \"cold_retry_successes\": %llu, "
                 "\"tight_retries\": %llu, \"tight_retry_successes\": %llu, "
                 "\"widen_to_top_fallbacks\": %llu, \"quarantined_jobs\": "
                 "%llu, \"quarantine_short_circuits\": %llu},\n",
                 static_cast<unsigned long long>(RS.FirstAttemptFailures),
                 static_cast<unsigned long long>(RS.ColdRetries),
                 static_cast<unsigned long long>(RS.ColdRetrySuccesses),
                 static_cast<unsigned long long>(RS.TightRetries),
                 static_cast<unsigned long long>(RS.TightRetrySuccesses),
                 static_cast<unsigned long long>(RS.WidenToTopFallbacks),
                 static_cast<unsigned long long>(RS.QuarantinedJobs),
                 static_cast<unsigned long long>(RS.QuarantineShortCircuits));
    std::fprintf(F, "  \"invariant_violations\": %u\n}\n", Violations);
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }

  if (Violations) {
    std::fprintf(stderr, "FAIL: %u invariant violation(s)\n", Violations);
    return 1;
  }
  std::printf("PASS: all %u jobs contained, structured, and sound\n",
              TotalJobs);
  return 0;
}
